(* Tier-1 tests of the observability layer: the mockable clock, the JSON
   emitter/parser, the pure histogram core (qcheck properties), the metrics
   registry, and the trace recorder + Chrome trace-event validator. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* Metrics/trace state is process-wide; every test that enables collection
   must leave it disabled and empty for the next one. *)
let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let with_trace f =
  Obs.Trace.reset ();
  Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
    f

(* --- clock -------------------------------------------------------------- *)

let test_clock_mock () =
  let t = ref 1_000L in
  Obs.Clock.with_source
    (fun () -> !t)
    (fun () ->
      check Alcotest.int64 "mocked now" 1_000L (Obs.Clock.now_ns ());
      t := 3_500_000_000L;
      check (Alcotest.float 1e-4) "elapsed under mock" 3.5
        (Obs.Clock.elapsed 1_000L));
  (* Restored: the real clock is nowhere near the mock's epoch. *)
  checkb "real clock restored" true (Obs.Clock.now_ns () > 1_000_000_000_000L)

let test_clock_monotonic_clamp () =
  let t = ref 5_000L in
  Obs.Clock.with_source
    (fun () -> !t)
    (fun () ->
      check Alcotest.int64 "initial" 5_000L (Obs.Clock.now_ns ());
      t := 2_000L;
      (* The source stepped backwards; the reported time must not. *)
      check Alcotest.int64 "clamped" 5_000L (Obs.Clock.now_ns ());
      checkb "elapsed never negative" true (Obs.Clock.elapsed 5_000L >= 0.);
      t := 9_000L;
      check Alcotest.int64 "catches up" 9_000L (Obs.Clock.now_ns ()))

let test_clock_units () =
  check (Alcotest.float 1e-12) "ns_to_s" 1.5 (Obs.Clock.ns_to_s 1_500_000_000L)

(* --- json --------------------------------------------------------------- *)

let test_json_escaping () =
  check Alcotest.string "escape" {|"a\"b\\c\n\td\u0001"|}
    (Obs.Json.escape_string "a\"b\\c\n\td\001");
  check Alcotest.string "compact obj" {|{"k":[1,true,null,"x"]}|}
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ( "k",
              Obs.Json.List
                [
                  Obs.Json.Int 1; Obs.Json.Bool true; Obs.Json.Null;
                  Obs.Json.String "x";
                ] );
          ]))

let test_json_nonfinite () =
  check Alcotest.string "nan -> null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check Alcotest.string "inf -> null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_parse () =
  let ok s = Result.get_ok (Obs.Json.of_string s) in
  checkb "ints" true (ok "[1, -2, 0]" = Obs.Json.(List [ Int 1; Int (-2); Int 0 ]));
  checkb "unicode escape" true (ok {|"A"|} = Obs.Json.String "A");
  checkb "surrogate pair" true
    (ok {|"😀"|} = Obs.Json.String "\xf0\x9f\x98\x80");
  checkb "nested" true
    (ok {|{"a": {"b": [1.5]}}|}
    = Obs.Json.(Obj [ ("a", Obj [ ("b", List [ Float 1.5 ]) ]) ]));
  (match Obs.Json.of_string "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse should fail on missing value");
  match Obs.Json.of_string "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse should fail on unterminated array"

let json_gen =
  let open QCheck.Gen in
  (* Printable-ish strings plus control characters: exercises escaping. *)
  let str = string_size ~gen:(map Char.chr (int_range 1 126)) (int_bound 12) in
  sized @@ fix (fun self n ->
      if n = 0 then
        oneof
          [
            return Obs.Json.Null;
            map (fun b -> Obs.Json.Bool b) bool;
            map (fun i -> Obs.Json.Int i) int;
            map (fun s -> Obs.Json.String s) str;
            (* Finite floats only: non-finite serialize to null by design. *)
            map (fun f -> Obs.Json.Float f) (float_bound_inclusive 1e9);
          ]
      else
        oneof
          [
            map (fun l -> Obs.Json.List l) (list_size (int_bound 4) (self (n / 2)));
            map
              (fun kvs -> Obs.Json.Obj kvs)
              (list_size (int_bound 4)
                 (pair str (self (n / 2))));
          ])

(* Structural equality modulo duplicate object keys: the parser keeps all
   of them, but [member] sees the first, so just compare re-serializations. *)
let test_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json round-trip"
    (QCheck.make json_gen)
    (fun j ->
      let s = Obs.Json.to_string j in
      match Obs.Json.of_string s with
      | Error e -> QCheck.Test.fail_reportf "reparse failed on %s: %s" s e
      | Ok j' -> Obs.Json.to_string j' = s)

let test_json_pretty_roundtrip =
  QCheck.Test.make ~count:200 ~name:"pretty json reparses to same"
    (QCheck.make json_gen)
    (fun j ->
      match Obs.Json.of_string (Obs.Json.to_string ~pretty:true j) with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok j' -> Obs.Json.to_string j' = Obs.Json.to_string j)

(* --- untrusted-input limits (the wire protocol's parser) ---------------- *)

let test_json_limits () =
  let limits = { Obs.Json.max_depth = 4; max_bytes = 64 } in
  (match Obs.Json.parse ~limits "[[[1]]]" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 3 rejected: %s" (Obs.Json.error_to_string e));
  (match Obs.Json.parse ~limits "[[[[1]]]]" with
  | Error { kind = Obs.Json.Too_deep 4; _ } -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Obs.Json.error_to_string e)
  | Ok _ -> Alcotest.fail "depth 5 accepted");
  (match Obs.Json.parse ~limits (String.make 100 ' ' ^ "1") with
  | Error { kind = Obs.Json.Too_large { limit = 64; _ }; _ } -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Obs.Json.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized document accepted");
  (* A stack-burning payload under default limits must come back as a
     typed error, not a stack overflow. *)
  match Obs.Json.parse (String.make 100_000 '[') with
  | Error { kind = Obs.Json.Too_deep _; _ } -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Obs.Json.error_to_string e)
  | Ok _ -> Alcotest.fail "bomb accepted"

(* Fuzz: the parser is total — arbitrary bytes never raise, and whatever
   it accepts must re-serialize and reparse to the same document. *)
let test_json_fuzz_total =
  let arb =
    QCheck.make
      ~print:(fun s -> Printf.sprintf "%S" s)
      QCheck.Gen.(
        oneof
          [
            (* Raw bytes. *)
            string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 80);
            (* JSON-ish punctuation soup: much denser in near-misses. *)
            string_size
              ~gen:(oneofl [ '{'; '}'; '['; ']'; '"'; ':'; ','; '0'; '1';
                             'e'; '.'; '-'; '+'; 'n'; 't'; 'f'; '\\'; ' ' ])
              (int_bound 80);
          ])
  in
  QCheck.Test.make ~count:2_000 ~name:"parse never raises, accepts imply roundtrip"
    arb
    (fun s ->
      let limits = { Obs.Json.max_depth = 16; max_bytes = 1024 } in
      match Obs.Json.parse ~limits s with
      | exception e ->
          QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) s
      | Error _ -> true
      | Ok j -> (
          match Obs.Json.parse ~limits:Obs.Json.default_limits
                  (Obs.Json.to_string j)
          with
          | Ok j' -> Obs.Json.to_string j' = Obs.Json.to_string j
          | Error e ->
              QCheck.Test.fail_reportf "accepted %S but reparse failed: %s" s
                (Obs.Json.error_to_string e)))

(* --- histogram core (pure, property-tested) ----------------------------- *)

let obs_list_gen =
  QCheck.(list_of_size Gen.(int_bound 200) (float_bound_exclusive 1e12))

let hist_of xs =
  let b = Obs.Metrics.Hist.create () in
  List.iter (Obs.Metrics.Hist.add b) xs;
  b

let test_hist_count_conservation =
  QCheck.Test.make ~count:300 ~name:"hist count conservation"
    obs_list_gen
    (fun xs -> Obs.Metrics.Hist.count (hist_of xs) = List.length xs)

let test_hist_merge_assoc =
  QCheck.Test.make ~count:300 ~name:"hist merge associative+commutative"
    (QCheck.triple obs_list_gen obs_list_gen obs_list_gen)
    (fun (a, b, c) ->
      let ha = hist_of a and hb = hist_of b and hc = hist_of c in
      let open Obs.Metrics.Hist in
      merge (merge ha hb) hc = merge ha (merge hb hc)
      && merge ha hb = merge hb ha
      && merge (merge ha hb) hc = hist_of (a @ b @ c))

let test_hist_quantile_monotone =
  QCheck.Test.make ~count:300 ~name:"hist quantile monotone in q"
    (QCheck.pair obs_list_gen (QCheck.pair (QCheck.float_bound_inclusive 1.) (QCheck.float_bound_inclusive 1.)))
    (fun (xs, (q1, q2)) ->
      let h = hist_of xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Obs.Metrics.Hist.quantile h lo <= Obs.Metrics.Hist.quantile h hi)

let test_hist_quantile_bounds =
  QCheck.Test.make ~count:300 ~name:"hist q=1 covers the max"
    (QCheck.pair QCheck.(float_bound_exclusive 1e12) obs_list_gen)
    (fun (x, xs) ->
      let xs = x :: xs in
      let top = List.fold_left Float.max 0. xs in
      Obs.Metrics.Hist.quantile (hist_of xs) 1. >= top)

let test_hist_buckets () =
  let open Obs.Metrics.Hist in
  check Alcotest.int "bucket of 0" 0 (bucket_of 0.);
  check Alcotest.int "bucket of 0.5" 0 (bucket_of 0.5);
  check Alcotest.int "bucket of 1" 1 (bucket_of 1.);
  check Alcotest.int "bucket of 2" 2 (bucket_of 2.);
  check Alcotest.int "bucket of 3" 2 (bucket_of 3.);
  check Alcotest.int "bucket of 4" 3 (bucket_of 4.);
  check Alcotest.int "negative clamps to 0" 0 (bucket_of (-5.));
  check Alcotest.int "top bucket absorbs" (nbuckets - 1) (bucket_of 1e300);
  check (Alcotest.float 0.) "empty quantile" 0. (quantile (create ()) 0.5)

(* --- metrics registry --------------------------------------------------- *)

let test_metrics_disabled_noop () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled false;
  let c = Obs.Metrics.counter "t.disabled.c" in
  let h = Obs.Metrics.histogram "t.disabled.h" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Obs.Metrics.observe h 3.;
  check Alcotest.int "counter stays 0" 0 (Obs.Metrics.counter_value c);
  match List.assoc "t.disabled.h" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Histogram s -> check Alcotest.int "hist stays empty" 0 s.count
  | _ -> Alcotest.fail "wrong kind in snapshot"

let test_metrics_counter_gauge () =
  with_metrics @@ fun () ->
  let c = Obs.Metrics.counter "t.c" in
  let g = Obs.Metrics.gauge "t.g" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Obs.Metrics.set g 2.5;
  check Alcotest.int "counter" 42 (Obs.Metrics.counter_value c);
  check (Alcotest.float 0.) "gauge" 2.5 (Obs.Metrics.gauge_value g);
  checkb "find-or-create returns same handle" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter "t.c") = 42)

let test_metrics_cross_domain () =
  with_metrics @@ fun () ->
  let c = Obs.Metrics.counter "t.par.c" in
  let h = Obs.Metrics.histogram "t.par.h" in
  let worker () =
    for i = 1 to 1000 do
      Obs.Metrics.incr c;
      Obs.Metrics.observe h (float_of_int i)
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  check Alcotest.int "4 domains x 1000" 4000 (Obs.Metrics.counter_value c);
  match List.assoc "t.par.h" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Histogram s ->
      check Alcotest.int "all observations merged" 4000 s.count;
      check (Alcotest.float 0.) "exact max" 1000. s.max;
      checkb "quantiles ordered" true (s.p50 <= s.p90 && s.p90 <= s.p99);
      checkb "quantiles clamp to max" true (s.p99 <= s.max)
  | _ -> Alcotest.fail "wrong kind"

let test_metrics_kind_collision () =
  let _c = Obs.Metrics.counter "t.kind" in
  (match Obs.Metrics.gauge "t.kind" with
  | _ -> Alcotest.fail "kind collision must raise"
  | exception Invalid_argument _ -> ());
  match Obs.Metrics.histogram "t.kind" with
  | _ -> Alcotest.fail "kind collision must raise"
  | exception Invalid_argument _ -> ()

let test_metrics_json_and_reset () =
  with_metrics @@ fun () ->
  let c = Obs.Metrics.counter "t.json.c" in
  Obs.Metrics.add c 7;
  let j = Obs.Metrics.to_json () in
  (match Obs.Json.member j "t.json.c" with
  | Some (Obs.Json.Int 7) -> ()
  | _ -> Alcotest.fail "counter missing from to_json");
  (* And the dump must be parseable by our own parser. *)
  (match Obs.Json.of_string (Obs.Json.to_string ~pretty:true j) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("metrics JSON does not reparse: " ^ e));
  Obs.Metrics.reset ();
  check Alcotest.int "reset zeroes, handle survives" 0
    (Obs.Metrics.counter_value c)

(* qcheck: arbitrary per-domain operation lists hammered at ONE counter and
   ONE histogram from concurrently spawned domains must merge to exactly
   the sequential sum — the per-domain cells may lose no update and
   double-count none, whatever the interleaving. *)
let test_metrics_merge_is_sequential_sum =
  let ops_gen =
    (* One (counter increment, histogram observation) list per domain. *)
    QCheck.(
      list_of_size
        Gen.(1 -- 4)
        (list_of_size Gen.(int_bound 200)
           (pair (int_bound 50) (float_bound_exclusive 1e9))))
  in
  QCheck.Test.make ~count:20 ~name:"cross-domain merge = sequential sum"
    ops_gen (fun per_domain ->
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.set_enabled false;
          Obs.Metrics.reset ())
        (fun () ->
          let c = Obs.Metrics.counter "t.q.c" in
          let h = Obs.Metrics.histogram "t.q.h" in
          let apply ops =
            List.iter
              (fun (k, x) ->
                Obs.Metrics.add c k;
                Obs.Metrics.observe h x)
              ops
          in
          let ds =
            List.map (fun ops -> Domain.spawn (fun () -> apply ops)) per_domain
          in
          List.iter Domain.join ds;
          let want_count =
            List.fold_left (fun a ops -> a + List.length ops) 0 per_domain
          in
          let want_sum =
            List.fold_left
              (fun a ops -> List.fold_left (fun a (k, _) -> a + k) a ops)
              0 per_domain
          in
          let got_sum = Obs.Metrics.counter_value c in
          if got_sum <> want_sum then
            QCheck.Test.fail_reportf "counter merged to %d, sequential sum %d"
              got_sum want_sum;
          match List.assoc "t.q.h" (Obs.Metrics.snapshot ()) with
          | Obs.Metrics.Histogram s ->
              if s.Obs.Metrics.count <> want_count then
                QCheck.Test.fail_reportf
                  "histogram merged %d observations, expected %d"
                  s.Obs.Metrics.count want_count;
              if want_count > 0 then begin
                let want_max =
                  List.fold_left
                    (fun a ops ->
                      List.fold_left (fun a (_, x) -> Float.max a x) a ops)
                    0. per_domain
                in
                if s.Obs.Metrics.max <> want_max then
                  QCheck.Test.fail_reportf
                    "histogram max %g, sequential max %g" s.Obs.Metrics.max
                    want_max
              end;
              true
          | _ | (exception Not_found) ->
              QCheck.Test.fail_reportf "histogram missing from snapshot"))

(* --- trace recorder + validator ----------------------------------------- *)

let test_trace_disabled_records_nothing () =
  Obs.Trace.reset ();
  Obs.Trace.set_enabled false;
  Obs.Trace.span "t.off" (fun () -> ());
  Obs.Trace.instant "t.off.i";
  check Alcotest.int "no events" 0 (List.length (Obs.Trace.events ()))

let test_trace_spans () =
  with_trace @@ fun () ->
  Obs.Trace.span ~cat:"test" "outer" (fun () ->
      Obs.Trace.span ~cat:"test" "inner" (fun () -> ());
      Obs.Trace.instant ~cat:"test" "mark");
  let evs = Obs.Trace.events () in
  check Alcotest.int "3 events" 3 (List.length evs);
  let names = List.map (fun e -> e.Obs.Trace.name) evs in
  (* Sorted by start time: outer starts first, then inner, then the mark. *)
  check (Alcotest.list Alcotest.string) "order" [ "outer"; "inner"; "mark" ]
    names;
  List.iter
    (fun e ->
      checkb "ts >= 0" true (e.Obs.Trace.ts_ns >= 0L);
      checkb "dur >= 0" true (e.Obs.Trace.dur_ns >= 0L))
    evs;
  let outer = List.nth evs 0 and inner = List.nth evs 1 in
  checkb "outer contains inner" true
    (outer.Obs.Trace.dur_ns >= inner.Obs.Trace.dur_ns);
  match Obs.Trace.validate (Obs.Trace.to_json ()) with
  | Ok v ->
      check Alcotest.int "validator counts" 3 v.Obs.Trace.total_events;
      check
        (Alcotest.list Alcotest.string)
        "span names" [ "inner"; "outer" ] v.Obs.Trace.span_names
  | Error e -> Alcotest.fail e

let test_trace_span_survives_raise () =
  with_trace @@ fun () ->
  (try Obs.Trace.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  check Alcotest.int "event recorded despite raise" 1
    (List.length (Obs.Trace.events ()))

let test_trace_write_and_validate_file () =
  with_trace @@ fun () ->
  Obs.Trace.span "t.file" (fun () -> ());
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let n = Obs.Trace.write path in
      check Alcotest.int "one event written" 1 n;
      match Obs.Trace.validate_file path with
      | Ok v -> check Alcotest.int "file validates" 1 v.Obs.Trace.total_events
      | Error e -> Alcotest.fail e)

let validate_str s =
  Obs.Trace.validate (Result.get_ok (Obs.Json.of_string s))

let test_validator_accepts () =
  (* Bare array form, B/E pairs, metadata events without timing. *)
  match
    validate_str
      {|[{"name":"a","ph":"B","ts":1,"tid":0},
         {"name":"a","ph":"E","ts":5,"tid":0},
         {"name":"thread_name","ph":"M","pid":1,"tid":0,
          "args":{"name":"main"}},
         {"name":"x","ph":"X","ts":6,"dur":2,"tid":0}]|}
  with
  | Ok v ->
      check Alcotest.int "events" 4 v.Obs.Trace.total_events;
      check (Alcotest.list Alcotest.int) "tids" [ 0 ] v.Obs.Trace.tids
  | Error e -> Alcotest.fail e

let test_validator_rejects () =
  let rejects s = checkb s true (Result.is_error (validate_str s)) in
  rejects {|[{"name":"a","ph":"E","ts":1,"tid":0}]|};
  (* unbalanced E *)
  rejects {|[{"name":"a","ph":"B","ts":1,"tid":0}]|};
  (* unclosed B *)
  rejects
    {|[{"name":"a","ph":"X","ts":5,"dur":1,"tid":0},
       {"name":"b","ph":"X","ts":3,"dur":1,"tid":0}]|};
  (* backwards ts on one tid *)
  rejects {|[{"name":"a","ph":"X","ts":1,"tid":0}]|};
  (* X without dur *)
  rejects {|[{"name":"a","ph":"X","ts":1,"dur":-2,"tid":0}]|};
  (* negative dur *)
  rejects {|[{"ph":"X","ts":1,"dur":1,"tid":0}]|};
  (* missing name *)
  rejects {|[{"name":"a","ph":"X","ts":1,"dur":1}]|};
  (* missing tid *)
  rejects {|[{"name":"a","ph":"?","ts":1,"tid":0}]|};
  (* unknown phase *)
  rejects {|[42]|};
  (* not an object *)
  rejects {|{"notTraceEvents": []}|}
(* missing traceEvents *)

let test_validator_interleaved_tids () =
  (* Monotonicity is per-tid: interleaved timestamps across tids are fine. *)
  match
    validate_str
      {|[{"name":"a","ph":"X","ts":10,"dur":1,"tid":0},
         {"name":"b","ph":"X","ts":5,"dur":1,"tid":1},
         {"name":"c","ph":"X","ts":11,"dur":1,"tid":0},
         {"name":"d","ph":"X","ts":6,"dur":1,"tid":1}]|}
  with
  | Ok v -> check (Alcotest.list Alcotest.int) "tids" [ 0; 1 ] v.Obs.Trace.tids
  | Error e -> Alcotest.fail e

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "mockable source" `Quick test_clock_mock;
          Alcotest.test_case "monotonic clamp" `Quick
            test_clock_monotonic_clamp;
          Alcotest.test_case "unit conversion" `Quick test_clock_units;
        ] );
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "parser" `Quick test_json_parse;
          Alcotest.test_case "limits" `Quick test_json_limits;
          q test_json_roundtrip;
          q test_json_pretty_roundtrip;
          q test_json_fuzz_total;
        ] );
      ( "hist",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_hist_buckets;
          q test_hist_count_conservation;
          q test_hist_merge_assoc;
          q test_hist_quantile_monotone;
          q test_hist_quantile_bounds;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_metrics_disabled_noop;
          Alcotest.test_case "counter and gauge" `Quick
            test_metrics_counter_gauge;
          Alcotest.test_case "cross-domain merge" `Quick
            test_metrics_cross_domain;
          Alcotest.test_case "kind collision raises" `Quick
            test_metrics_kind_collision;
          Alcotest.test_case "json dump and reset" `Quick
            test_metrics_json_and_reset;
          q test_metrics_merge_is_sequential_sum;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "span nesting" `Quick test_trace_spans;
          Alcotest.test_case "span survives raise" `Quick
            test_trace_span_survives_raise;
          Alcotest.test_case "write + validate_file" `Quick
            test_trace_write_and_validate_file;
          Alcotest.test_case "validator accepts" `Quick test_validator_accepts;
          Alcotest.test_case "validator rejects" `Quick test_validator_rejects;
          Alcotest.test_case "per-tid monotonicity" `Quick
            test_validator_interleaved_tids;
        ] );
    ]
