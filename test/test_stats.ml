(* Tests for the RNG / distributions / summary substrate. *)

module Rng = Fstats.Rng
module Dist = Fstats.Dist
module Summary = Fstats.Summary

let draws rng n f = List.init n (fun _ -> f rng)

let test_determinism () =
  let a = draws (Rng.create ~seed:42) 100 (fun r -> Rng.int r 1000) in
  let b = draws (Rng.create ~seed:42) 100 (fun r -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" a b;
  let c = draws (Rng.create ~seed:43) 100 (fun r -> Rng.int r 1000) in
  Alcotest.(check bool) "different seed, different stream" false (a = c)

let test_split_independence () =
  (* The child stream depends only on the parent state at split time, not on
     what the parent draws afterwards. *)
  let p1 = Rng.create ~seed:7 in
  let c1 = Rng.split p1 in
  let _ = draws p1 50 (fun r -> Rng.int r 10) in
  let child_draws1 = draws c1 20 (fun r -> Rng.int r 1000) in
  let p2 = Rng.create ~seed:7 in
  let c2 = Rng.split p2 in
  let child_draws2 = draws c2 20 (fun r -> Rng.int r 1000) in
  Alcotest.(check (list int)) "child unaffected by parent" child_draws1
    child_draws2

let test_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "int_in in range" true (x >= -5 && x <= 5);
    let f = Rng.unit_float rng in
    Alcotest.(check bool) "unit_float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_shuffle () =
  let rng = Rng.create ~seed:5 in
  let original = List.init 50 Fun.id in
  let shuffled = Rng.shuffle rng original in
  Alcotest.(check (list int))
    "shuffle is a permutation" original
    (List.sort Stdlib.compare shuffled);
  let p = Rng.permutation rng 100 in
  Alcotest.(check (list int))
    "permutation covers 0..n-1"
    (List.init 100 Fun.id)
    (List.sort Stdlib.compare (Array.to_list p))

let mean_of f rng n =
  let s = Summary.create () in
  for _ = 1 to n do
    Summary.add s (f rng)
  done;
  Summary.mean s

let test_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let m = mean_of (fun r -> Dist.exponential r ~rate:0.5) rng 20_000 in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f ≈ 2.0" m)
    true
    (Float.abs (m -. 2.0) < 0.1)

let test_lognormal_median () =
  let rng = Rng.create ~seed:12 in
  let xs =
    List.init 20_001 (fun _ -> Dist.lognormal rng ~mu:(log 100.) ~sigma:1.5)
  in
  let med = Summary.median xs in
  Alcotest.(check bool)
    (Printf.sprintf "median %.1f ≈ 100" med)
    true
    (med > 80. && med < 125.)

let test_geometric () =
  let rng = Rng.create ~seed:13 in
  let m =
    mean_of (fun r -> float_of_int (Dist.geometric r ~p:0.25)) rng 20_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f ≈ 3.0" m)
    true
    (Float.abs (m -. 3.0) < 0.15);
  Alcotest.(check int) "p=1 gives 0" 0 (Dist.geometric rng ~p:1.)

let test_poisson () =
  let rng = Rng.create ~seed:14 in
  let m = mean_of (fun r -> float_of_int (Dist.poisson r ~mean:7.5)) rng 20_000 in
  Alcotest.(check bool)
    (Printf.sprintf "small-mean %.3f ≈ 7.5" m)
    true
    (Float.abs (m -. 7.5) < 0.2);
  let m =
    mean_of (fun r -> float_of_int (Dist.poisson r ~mean:800.)) rng 5_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "large-mean %.1f ≈ 800" m)
    true
    (Float.abs (m -. 800.) < 5.)

let test_weibull_pareto_normal () =
  let rng = Rng.create ~seed:17 in
  (* Weibull median = scale · (ln 2)^(1/shape). *)
  let xs = List.init 20_001 (fun _ -> Dist.weibull rng ~shape:1.5 ~scale:10.) in
  let med = Summary.median xs in
  let expected = 10. *. (log 2. ** (1. /. 1.5)) in
  Alcotest.(check bool)
    (Printf.sprintf "weibull median %.2f ≈ %.2f" med expected)
    true
    (Float.abs (med -. expected) < 0.5);
  (* Pareto median = scale · 2^(1/shape); support starts at scale. *)
  let xs = List.init 20_001 (fun _ -> Dist.pareto rng ~shape:2. ~scale:3.) in
  List.iter
    (fun x -> Alcotest.(check bool) "pareto support" true (x >= 3.))
    xs;
  let med = Summary.median xs in
  Alcotest.(check bool)
    (Printf.sprintf "pareto median %.2f ≈ %.2f" med (3. *. sqrt 2.))
    true
    (Float.abs (med -. (3. *. sqrt 2.)) < 0.2);
  let s = Summary.create () in
  for _ = 1 to 20_000 do
    Summary.add s (Dist.normal rng ~mean:5. ~std:2.)
  done;
  Alcotest.(check bool) "normal mean" true (Float.abs (Summary.mean s -. 5.) < 0.1);
  Alcotest.(check bool) "normal std" true (Float.abs (Summary.stddev s -. 2.) < 0.1);
  let u = Dist.uniform rng ~lo:2. ~hi:7. in
  Alcotest.(check bool) "uniform bounds" true (u >= 2. && u < 7.)

let test_zipf () =
  let w = Dist.zipf_weights ~n:10 ~s:1.0 in
  let total = Array.fold_left ( +. ) 0. w in
  Alcotest.(check (float 1e-9)) "normalized" 1.0 total;
  for i = 0 to 8 do
    Alcotest.(check bool) "monotone decreasing" true (w.(i) > w.(i + 1))
  done;
  let rng = Rng.create ~seed:15 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let r = Dist.zipf rng ~n:10 ~s:1.0 in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 most frequent" true
    (Array.for_all (fun c -> c <= counts.(0)) counts)

let test_categorical_zero_weight () =
  let rng = Rng.create ~seed:16 in
  for _ = 1 to 1000 do
    let i = Dist.categorical rng [| 0.; 1.; 0.; 2. |] in
    Alcotest.(check bool) "never picks zero-weight index" true (i = 1 || i = 3)
  done

let test_split_integer () =
  let shares = Dist.split_integer ~total:10 ~weights:[| 1.; 1.; 1. |] in
  Alcotest.(check int) "sums to total" 10 (Array.fold_left ( + ) 0 shares);
  Array.iter
    (fun s -> Alcotest.(check bool) "at least one" true (s >= 1))
    shares;
  let shares = Dist.split_integer ~total:100 ~weights:[| 3.; 1. |] in
  Alcotest.(check bool)
    (Printf.sprintf "roughly proportional: %d vs %d" shares.(0) shares.(1))
    true
    (shares.(0) > shares.(1) && abs (shares.(0) - 74) <= 2);
  Alcotest.check_raises "total < parts"
    (Invalid_argument "Dist.split_integer: total < parts") (fun () ->
      ignore (Dist.split_integer ~total:2 ~weights:[| 1.; 1.; 1. |]))

let test_summary () =
  let s = Summary.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.138089935 (Summary.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Summary.max s);
  Alcotest.(check int) "count" 8 (Summary.count s);
  Alcotest.(check (float 1e-9))
    "empty mean" 0.
    (Summary.mean (Summary.create ()));
  Alcotest.(check (float 1e-9))
    "median" 4.5
    (Summary.median [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ]);
  Alcotest.(check (float 1e-9))
    "p0 = min" 2.0
    (Summary.percentile [ 2.; 4.; 9. ] ~p:0.);
  Alcotest.(check (float 1e-9))
    "p100 = max" 9.0
    (Summary.percentile [ 2.; 4.; 9. ] ~p:100.)

let qcheck_welford =
  QCheck.Test.make ~name:"welford matches naive variance" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Summary.of_list xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. (n -. 1.)
      in
      Float.abs (Summary.variance s -. var) < 1e-6 *. (1. +. var))

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "shuffle & permutation" `Quick test_shuffle;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "lognormal median" `Quick test_lognormal_median;
          Alcotest.test_case "geometric mean" `Quick test_geometric;
          Alcotest.test_case "poisson mean" `Quick test_poisson;
          Alcotest.test_case "weibull/pareto/normal" `Quick
            test_weibull_pareto_normal;
          Alcotest.test_case "zipf" `Quick test_zipf;
          Alcotest.test_case "categorical zero weights" `Quick
            test_categorical_zero_weight;
          Alcotest.test_case "split_integer" `Quick test_split_integer;
        ] );
      ( "summary",
        [
          Alcotest.test_case "summary stats" `Quick test_summary;
          QCheck_alcotest.to_alcotest qcheck_welford;
        ] );
    ]
