(* Tests for the SWF format, the synthetic trace models, and the
   scenario partitioning. *)

module Swf = Workload.Swf
module Traces = Workload.Traces
module Scenario = Workload.Scenario

(* --- SWF ---------------------------------------------------------------- *)

let sample_swf =
  "; Computer: test cluster\n\
   ; MaxProcs: 8\n\
   1 0 2 30 1 -1 -1 1 -1 -1 1 4 -1 -1 -1 -1 -1 -1\n\
   2 10 0 60 2 -1 -1 2 -1 -1 1 5 -1 -1 -1 -1 -1 -1\n\
   \n\
   3 5 1 -1 1 -1 -1 1 -1 -1 0 6 -1 -1 -1 -1 -1 -1\n\
   4 20 0 15 0 -1 -1 0 -1 -1 1 7 -1 -1 -1 -1 -1 -1\n"

let test_parse () =
  let t = Swf.parse_string sample_swf in
  Alcotest.(check int) "two header lines" 2 (List.length t.Swf.header);
  (* job 3 has run_time −1 and job 4 has 0 processors: both skipped. *)
  Alcotest.(check int) "two valid entries" 2 (List.length t.Swf.entries);
  let e1 = List.hd t.Swf.entries in
  Alcotest.(check int) "job id" 1 e1.Swf.job_id;
  Alcotest.(check int) "submit" 0 e1.Swf.submit;
  Alcotest.(check int) "run time" 30 e1.Swf.run_time;
  Alcotest.(check int) "processors" 1 e1.Swf.processors;
  Alcotest.(check int) "user" 4 e1.Swf.user

let test_parse_line_edge_cases () =
  Alcotest.(check bool) "comment" true (Swf.parse_line "; foo" = None);
  Alcotest.(check bool) "blank" true (Swf.parse_line "   " = None);
  Alcotest.(check bool) "garbage" true (Swf.parse_line "a b c" = None);
  Alcotest.(check bool) "short line" true (Swf.parse_line "1 2 3" = None);
  (* Tabs as separators are accepted. *)
  Alcotest.(check bool) "tabs" true
    (Swf.parse_line "1\t0\t0\t10\t1\t-1\t-1\t1\t-1\t-1\t1\t2\t-1\t-1\t-1\t-1\t-1\t-1"
     <> None)

let test_roundtrip () =
  let t = Swf.parse_string sample_swf in
  let t' = Swf.parse_string (Swf.to_string t) in
  Alcotest.(check int) "entries survive" (List.length t.Swf.entries)
    (List.length t'.Swf.entries);
  List.iter2
    (fun (a : Swf.entry) (b : Swf.entry) ->
      Alcotest.(check bool) "entry equal" true (a = b))
    t.Swf.entries t'.Swf.entries

let test_to_jobs_expansion () =
  let t = Swf.parse_string sample_swf in
  let jobs = Swf.to_jobs ~org_of_user:(fun u -> u mod 2) t in
  (* Entry 1: 1 processor; entry 2: 2 processors → 3 sequential jobs. *)
  Alcotest.(check int) "parallel jobs sequentialized" 3 (List.length jobs);
  let of_user5 =
    List.filter (fun (j : Core.Job.t) -> j.Core.Job.user = 5) jobs
  in
  Alcotest.(check int) "two copies of the 2-proc job" 2 (List.length of_user5);
  List.iter
    (fun (j : Core.Job.t) ->
      Alcotest.(check int) "same duration" 60 j.Core.Job.size;
      Alcotest.(check int) "org from user" 1 j.Core.Job.org)
    of_user5

(* --- Synthetic traces ------------------------------------------------------ *)

let test_models_registered () =
  Alcotest.(check int) "four models" 4 (List.length Traces.all);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Traces.name ^ " resolvable") true
        (Traces.by_name m.Traces.name = Some m))
    Traces.all;
  Alcotest.(check bool) "unknown model" true (Traces.by_name "nope" = None)

let test_generate_determinism () =
  let gen seed =
    Traces.generate Traces.lpc_egee
      ~rng:(Fstats.Rng.create ~seed)
      ~machines:16 ~duration:20_000 ()
  in
  Alcotest.(check bool) "same seed same trace" true (gen 3 = gen 3);
  Alcotest.(check bool) "different seed different trace" false (gen 3 = gen 4)

let test_generate_shape () =
  List.iter
    (fun model ->
      let entries =
        Traces.generate model
          ~rng:(Fstats.Rng.create ~seed:8)
          ~machines:16 ~duration:50_000 ()
      in
      Alcotest.(check bool)
        (model.Traces.name ^ " nonempty")
        true
        (List.length entries > 0);
      let sorted = ref true and last = ref 0 in
      List.iter
        (fun (e : Swf.entry) ->
          if e.Swf.submit < !last then sorted := false;
          last := e.Swf.submit;
          Alcotest.(check bool) "submit within window" true
            (e.Swf.submit >= 0 && e.Swf.submit < 50_000);
          Alcotest.(check bool) "positive run time" true (e.Swf.run_time >= 1);
          Alcotest.(check bool) "valid user" true
            (e.Swf.user >= 0 && e.Swf.user < model.Traces.native_users))
        entries;
      Alcotest.(check bool) (model.Traces.name ^ " sorted") true !sorted)
    Traces.all

let test_generate_load_calibration () =
  (* The offered work should track load · machines · duration within a
     factor accounting for the heavy-tailed size draw. *)
  let model = Traces.lpc_egee in
  let machines = 32 and duration = 200_000 in
  let entries =
    Traces.generate model
      ~rng:(Fstats.Rng.create ~seed:10)
      ~machines ~duration ()
  in
  let work =
    List.fold_left (fun acc (e : Swf.entry) -> acc + e.Swf.run_time) 0 entries
  in
  let target = model.Traces.load *. float_of_int (machines * duration) in
  let ratio = float_of_int work /. target in
  Alcotest.(check bool)
    (Printf.sprintf "offered work ratio %.2f in [0.4, 2.5]" ratio)
    true
    (ratio > 0.4 && ratio < 2.5)

(* --- Scenario ---------------------------------------------------------------- *)

let spec = Scenario.default ~norgs:5 ~machines:20 ~horizon:10_000 Traces.lpc_egee

let test_machine_split () =
  let rng = Fstats.Rng.create ~seed:12 in
  let split = Scenario.machine_split spec ~rng in
  Alcotest.(check int) "five orgs" 5 (Array.length split);
  Alcotest.(check int) "sums to pool" 20 (Array.fold_left ( + ) 0 split);
  Array.iter
    (fun m -> Alcotest.(check bool) "at least 1 machine" true (m >= 1))
    split;
  let uniform =
    Scenario.machine_split { spec with Scenario.endowment = Scenario.Uniform }
      ~rng
  in
  Array.iter (fun m -> Alcotest.(check int) "uniform 4 each" 4 m) uniform;
  let exact =
    Scenario.machine_split
      { spec with Scenario.endowment = Scenario.Exact [| 10; 4; 3; 2; 1 |] }
      ~rng
  in
  Alcotest.(check (array int)) "exact" [| 10; 4; 3; 2; 1 |] exact

let test_user_map () =
  let rng = Fstats.Rng.create ~seed:13 in
  let map = Scenario.user_map spec ~rng in
  Alcotest.(check int) "all users mapped" 56 (Array.length map);
  let seen = Array.make 5 false in
  Array.iter (fun org -> seen.(org) <- true) map;
  Alcotest.(check bool) "every org has a user" true (Array.for_all Fun.id seen)

let test_instance_assembly () =
  let i = Scenario.instance spec ~seed:21 in
  Alcotest.(check int) "orgs" 5 (Core.Instance.organizations i);
  Alcotest.(check int) "machines" 20 (Core.Instance.total_machines i);
  Alcotest.(check bool) "has jobs" true (Core.Instance.job_count i > 0);
  Array.iter
    (fun (j : Core.Job.t) ->
      Alcotest.(check bool) "released before horizon" true
        (j.Core.Job.release < 10_000))
    i.Core.Instance.jobs;
  let i2 = Scenario.instance spec ~seed:21 in
  Alcotest.(check bool) "deterministic" true
    (i.Core.Instance.jobs = i2.Core.Instance.jobs
    && i.Core.Instance.machines = i2.Core.Instance.machines)

let test_window_instances () =
  let rng = Fstats.Rng.create ~seed:19 in
  let trace =
    Traces.generate Traces.lpc_egee ~rng ~machines:16 ~duration:100_000 ()
  in
  let wspec = Scenario.default ~norgs:4 ~machines:12 ~horizon:20_000 Traces.lpc_egee in
  let windows = Scenario.window_instances wspec ~seed:3 ~trace ~count:5 in
  Alcotest.(check int) "five windows" 5 (List.length windows);
  List.iter
    (fun i ->
      Alcotest.(check int) "machines" 12 (Core.Instance.total_machines i);
      Array.iter
        (fun (j : Core.Job.t) ->
          Alcotest.(check bool) "shifted into window" true
            (j.Core.Job.release >= 0 && j.Core.Job.release < 20_000))
        i.Core.Instance.jobs)
    windows;
  (* Windows differ (different sub-traces). *)
  let counts = List.map Core.Instance.job_count windows in
  Alcotest.(check bool) "windows differ" true
    (List.length (List.sort_uniq Stdlib.compare counts) > 1);
  Alcotest.check_raises "trace too short"
    (Invalid_argument "Scenario.window_instances: trace shorter than the horizon")
    (fun () ->
      ignore
        (Scenario.window_instances
           (Scenario.default ~horizon:200_000 Traces.lpc_egee)
           ~seed:1 ~trace ~count:1))

(* The unbounded submission stream behind `fairsched serve`/`loadgen`:
   prefix-consistent (a longer read never rewrites an earlier entry),
   ordered, ranked in arrival order, and in agreement with
   [split_and_map]'s user→organization assignment. *)
let test_submission_stream () =
  let sspec = Scenario.default ~norgs:3 ~machines:6 ~horizon:5_000 Traces.lpc_egee in
  let seed = 11 in
  let take n = List.of_seq (Seq.take n (Scenario.submission_stream sspec ~seed)) in
  let short = take 40 and long = take 160 in
  Alcotest.(check int) "long prefix complete" 160 (List.length long);
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && is_prefix a' b'
    | _ :: _, [] -> false
  in
  Alcotest.(check bool) "prefix-consistent" true (is_prefix short long);
  Alcotest.(check bool) "replayable" true (take 160 = long);
  (* Releases never decrease — entries can be fed to a live daemon as-is —
     and per-org ranks count up from 0 in arrival order. *)
  let next_rank = Array.make 3 0 in
  List.fold_left
    (fun last (j : Core.Job.t) ->
      Alcotest.(check bool) "release non-decreasing" true
        (j.Core.Job.release >= last);
      Alcotest.(check int) "fifo rank" next_rank.(j.Core.Job.org)
        j.Core.Job.index;
      next_rank.(j.Core.Job.org) <- j.Core.Job.index + 1;
      Alcotest.(check bool) "positive size" true (j.Core.Job.size > 0);
      j.Core.Job.release)
    0 long
  |> ignore;
  (* The org assignment agrees with the shared derivation. *)
  let _, user_map = Scenario.split_and_map sspec ~seed in
  List.iter
    (fun (j : Core.Job.t) ->
      Alcotest.(check int) "org = user_map(user)"
        user_map.(j.Core.Job.user) j.Core.Job.org)
    long

let qcheck_swf_fuzz =
  QCheck.Test.make ~name:"parser never raises on garbage" ~count:500
    QCheck.(string_gen QCheck.Gen.printable)
    (fun garbage ->
      let (_ : Swf.t) = Swf.parse_string garbage in
      (match Swf.parse_line garbage with Some _ | None -> ());
      true)

let qcheck_swf_numeric_fuzz =
  QCheck.Test.make ~name:"parser tolerates arbitrary numeric fields" ~count:500
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20) int)
    (fun fields ->
      let line = String.concat " " (List.map string_of_int fields) in
      (match Swf.parse_line line with
      | Some e ->
          e.Swf.run_time > 0 && e.Swf.processors >= 1 && e.Swf.submit >= 0
      | None -> true))

let test_save_load_file () =
  let rng = Fstats.Rng.create ~seed:14 in
  let entries =
    Traces.generate Traces.pik_iplex ~rng ~machines:8 ~duration:5_000 ()
  in
  let path = Filename.temp_file "fairsched" ".swf" in
  Swf.save path { Swf.header = [ "test" ]; entries };
  let loaded = Swf.load path in
  Sys.remove path;
  Alcotest.(check int) "file roundtrip" (List.length entries)
    (List.length loaded.Swf.entries)

(* The corrupt fixture has, in order: a comment, a valid entry, a
   non-numeric line, an entry with a non-integer submit field, a
   status-failed entry (run time -1, data not corruption), a line with too
   few fields, and a second valid entry. *)
let test_parse_report_corrupt () =
  let t, report = Swf.load_report "fixtures/corrupt.swf" in
  Alcotest.(check int) "entries kept" 2 (List.length t.Swf.entries);
  Alcotest.(check int) "report entries" 2 report.Swf.entries;
  Alcotest.(check int) "comments" 1 report.Swf.comments;
  Alcotest.(check int) "filtered (status-failed)" 1 report.Swf.filtered;
  Alcotest.(check (list int)) "malformed line numbers" [ 3; 4; 6 ]
    (List.map fst report.Swf.malformed);
  List.iter
    (fun (_, reason) ->
      Alcotest.(check bool) "reason is non-empty" true (reason <> ""))
    report.Swf.malformed;
  (* pp_report renders without raising *)
  Alcotest.(check bool) "pp_report mentions malformed count" true
    (Format.asprintf "%a" Swf.pp_report report <> "")

let test_strict_raises_on_corrupt () =
  match Swf.load ~strict:true "fixtures/corrupt.swf" with
  | exception Swf.Parse_error { line = 3; _ } -> ()
  | exception Swf.Parse_error { line; _ } ->
      Alcotest.failf "Parse_error on wrong line %d" line
  | _ -> Alcotest.fail "expected Parse_error"

let test_strict_accepts_filtered () =
  (* Strict mode still accepts status-failed entries — real archive traces
     contain them. *)
  let t, report = Swf.parse_report ~strict:true sample_swf in
  Alcotest.(check int) "entries" 2 (List.length t.Swf.entries);
  Alcotest.(check int) "filtered" 2 report.Swf.filtered;
  Alcotest.(check (list int)) "no malformed lines" []
    (List.map fst report.Swf.malformed)

let () =
  Alcotest.run "workload"
    [
      ( "swf",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "parse edge cases" `Quick
            test_parse_line_edge_cases;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "to_jobs expansion" `Quick test_to_jobs_expansion;
          Alcotest.test_case "file save/load" `Quick test_save_load_file;
          Alcotest.test_case "corrupt fixture report" `Quick
            test_parse_report_corrupt;
          Alcotest.test_case "strict raises on corrupt" `Quick
            test_strict_raises_on_corrupt;
          Alcotest.test_case "strict accepts filtered" `Quick
            test_strict_accepts_filtered;
        ] );
      ( "swf-fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_swf_fuzz; qcheck_swf_numeric_fuzz ] );
      ( "traces",
        [
          Alcotest.test_case "models registered" `Quick test_models_registered;
          Alcotest.test_case "determinism" `Quick test_generate_determinism;
          Alcotest.test_case "shape" `Quick test_generate_shape;
          Alcotest.test_case "load calibration" `Quick
            test_generate_load_calibration;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "machine split" `Quick test_machine_split;
          Alcotest.test_case "user map" `Quick test_user_map;
          Alcotest.test_case "instance assembly" `Quick test_instance_assembly;
          Alcotest.test_case "submission stream" `Quick test_submission_stream;
          Alcotest.test_case "window sampling" `Quick test_window_instances;
        ] );
    ]
