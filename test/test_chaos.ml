(* Tests for lib/chaos: the fault-injection plan language and shim
   mechanics, the corruption fuzzer's mutations, and — with real forks
   dying at injected crash points — the WAL/snapshot protocol's crash
   windows: a torn multi-record append recovers to a consistent prefix,
   and a crash anywhere in the snapshot write/fsync/rename window never
   loses or double-applies a record. *)

let ( let@ ) f x = f x

let with_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fairsched-chaos-test-%d-%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
      in
      try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* --- Plan language ----------------------------------------------------------- *)

let test_spec_roundtrip () =
  let rt s expect =
    match Chaos.Fs.of_string s with
    | Error msg -> Alcotest.failf "%s rejected: %s" s msg
    | Ok rules -> (
        Alcotest.(check bool) s true (rules = expect);
        (* The printer's canonical form parses back to the same plan. *)
        match Chaos.Fs.of_string (Chaos.Fs.to_string rules) with
        | Ok rules' -> Alcotest.(check bool) (s ^ " reparse") true (rules = rules')
        | Error msg -> Alcotest.failf "%s reparse: %s" s msg)
  in
  rt "crash@before-snapshot-rename"
    [
      {
        Chaos.Fs.target = "before-snapshot-rename";
        nth = 1;
        sticky = false;
        action = Chaos.Fs.Crash;
      };
    ];
  rt "enospc@wal-fsync:3+"
    [
      {
        Chaos.Fs.target = "wal-fsync";
        nth = 3;
        sticky = true;
        action = Chaos.Fs.Fail Unix.ENOSPC;
      };
    ];
  rt "torn@wal-append:2=10,eio@snap-write"
    [
      {
        Chaos.Fs.target = "wal-append";
        nth = 2;
        sticky = false;
        action = Chaos.Fs.Torn 10;
      };
      {
        Chaos.Fs.target = "snap-write";
        nth = 1;
        sticky = false;
        action = Chaos.Fs.Fail Unix.EIO;
      };
    ];
  rt "short@wal-append=4"
    [
      {
        Chaos.Fs.target = "wal-append";
        nth = 1;
        sticky = false;
        action = Chaos.Fs.Short 4;
      };
    ]

let test_spec_rejects () =
  let bad s =
    match Chaos.Fs.of_string s with
    | Ok _ -> Alcotest.failf "%S accepted" s
    | Error _ -> ()
  in
  bad "nonsense";
  bad "crash";
  bad "crash@";
  bad "explode@wal-append";
  bad "crash@x:0";
  bad "crash@x:-1";
  bad "short@wal-append";
  bad "torn@wal-append";
  bad "crash@x=5";
  bad "enospc@wal-fsync=5"

(* --- Shim mechanics ---------------------------------------------------------- *)

let test_fs_rules () =
  let@ dir = with_tmpdir in
  Fun.protect ~finally:Chaos.Fs.disarm @@ fun () ->
  let path = Filename.concat dir "scratch" in
  let fd =
    Chaos.Fs.openfile ~site:"t-open" path
      [ Unix.O_CREAT; Unix.O_WRONLY ]
      0o644
  in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let b = Bytes.of_string "hello" in
  let w () = Chaos.Fs.write ~site:"t-write" fd b 0 5 in
  Chaos.Fs.arm
    [
      {
        Chaos.Fs.target = "t-write";
        nth = 2;
        sticky = false;
        action = Chaos.Fs.Fail Unix.EIO;
      };
    ];
  Alcotest.(check int) "hit 1 passes" 5 (w ());
  (try
     ignore (w ());
     Alcotest.fail "hit 2 must fail EIO"
   with Unix.Unix_error (Unix.EIO, _, _) -> ());
  Alcotest.(check int) "hit 3 passes (not sticky)" 5 (w ());
  Alcotest.(check int) "hits counted" 3 (Chaos.Fs.hits "t-write");
  Alcotest.(check int) "one injection" 1 (Chaos.Fs.injected ());
  Chaos.Fs.arm
    [
      {
        Chaos.Fs.target = "t-write";
        nth = 1;
        sticky = true;
        action = Chaos.Fs.Fail Unix.ENOSPC;
      };
    ];
  Alcotest.(check int) "arm resets counters" 0 (Chaos.Fs.hits "t-write");
  for _ = 1 to 2 do
    try
      ignore (w ());
      Alcotest.fail "sticky ENOSPC must keep failing"
    with Unix.Unix_error (Unix.ENOSPC, _, _) -> ()
  done;
  Chaos.Fs.arm
    [
      {
        Chaos.Fs.target = "t-write";
        nth = 1;
        sticky = false;
        action = Chaos.Fs.Short 2;
      };
    ];
  Alcotest.(check int) "short write truncates the count" 2 (w ());
  Chaos.Fs.disarm ();
  Alcotest.(check bool) "disarmed" false (Chaos.Fs.armed ());
  Alcotest.(check int) "passthrough after disarm" 5 (w ())

(* --- Fuzz mutations ---------------------------------------------------------- *)

let test_fuzz_apply () =
  let s = "aaaa\nbbbb\ncccc\n" in
  let check label expect m =
    Alcotest.(check string) label expect (Chaos.Fuzz.apply s m)
  in
  check "bit flip" "aaac\nbbbb\ncccc\n"
    (Chaos.Fuzz.Bit_flip { offset = 3; bit = 1 });
  check "truncate" "aaaa\nb" (Chaos.Fuzz.Truncate { length = 6 });
  check "dup line" "aaaa\nbbbb\nbbbb\ncccc\n"
    (Chaos.Fuzz.Dup_line { line = 1 });
  check "swap lines" "cccc\nbbbb\naaaa\n"
    (Chaos.Fuzz.Swap_lines { a = 0; b = 2 });
  check "drop line" "aaaa\ncccc\n" (Chaos.Fuzz.Drop_line { line = 1 });
  check "garbage tail" (s ^ "{\"re") (Chaos.Fuzz.Garbage_tail { bytes = "{\"re" });
  (* Out-of-range coordinates clamp instead of raising. *)
  ignore (Chaos.Fuzz.apply s (Chaos.Fuzz.Bit_flip { offset = 9999; bit = 0 }));
  ignore (Chaos.Fuzz.apply s (Chaos.Fuzz.Drop_line { line = 9999 }));
  ignore (Chaos.Fuzz.apply s (Chaos.Fuzz.Truncate { length = 9999 }));
  Alcotest.(check string) "empty input unchanged" ""
    (Chaos.Fuzz.apply "" (Chaos.Fuzz.Bit_flip { offset = 0; bit = 3 }))

let test_fuzz_random () =
  let s = "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n" in
  let rng = Fstats.Rng.create ~seed:11 in
  for _ = 1 to 500 do
    let m = Chaos.Fuzz.random rng s in
    Alcotest.(check bool)
      (Chaos.Fuzz.describe m) true
      (String.length (Chaos.Fuzz.describe m) > 0);
    (* Every drawn mutation applies cleanly and actually mutates (or
       provably may not: a dup of an empty trailing segment can't
       happen on this input, so inequality must hold). *)
    ignore (Chaos.Fuzz.apply s m)
  done

(* --- Crash windows (real forks) ---------------------------------------------- *)

let mk_config () =
  match
    Service.Config.make ~machines:[| 2; 2 |] ~horizon:1_000
      ~algorithm:"fairshare" ~seed:1 ()
  with
  | Ok c -> c
  | Error msg -> Alcotest.failf "config: %s" msg

let records =
  [
    Service.Wal.Submit
      { seq = 1; org = 0; user = 0; release = 1; size = 2; cid = 3; cseq = 1 };
    Service.Wal.Submit
      { seq = 2; org = 1; user = 1; release = 2; size = 1; cid = 3; cseq = 2 };
    Service.Wal.Fault
      { seq = 3; time = 4; event = Faults.Event.Fail 0; cid = 0; cseq = 0 };
    Service.Wal.Submit
      { seq = 4; org = 0; user = 2; release = 5; size = 1; cid = 3; cseq = 3 };
  ]

(* Run [f] in a fork with [rules] armed; the child must die at the
   planned crash point (status 137), everything it flushed before the
   kill left on disk for the parent to inspect. *)
let fork_chaos ~rules f =
  match Unix.fork () with
  | 0 ->
      Chaos.Fs.arm rules;
      (try f () with _ -> ());
      Unix._exit 0 (* reaching here means the crash never fired *)
  | pid -> (
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED code ->
          Alcotest.(check int) "child died at the crash point"
            Chaos.Fs.exit_code code
      | _ -> Alcotest.fail "child killed by signal")

let recover_ok dir =
  match Service.Wal.recover ~dir with
  | Ok r -> r
  | Error e ->
      Alcotest.failf "recover: %s" (Service.Wal.boot_error_to_string e)

let rec prefix_of xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && prefix_of xs' ys'
  | _ :: _, [] -> false

(* A batch of appends torn mid-write: recovery keeps exactly the records
   whose lines made it out whole — a consistent prefix, never a half
   record, never a reordering. *)
let test_torn_multi_record () =
  let@ dir = with_tmpdir in
  let config = mk_config () in
  fork_chaos
    ~rules:
      [
        {
          Chaos.Fs.target = "wal-append";
          nth = 2;
          sticky = false;
          action = Chaos.Fs.Torn 30;
        };
      ]
    (fun () ->
      match Service.Wal.create ~dir ~config () with
      | Error _ -> ()
      | Ok w ->
          Service.Wal.append w (List.nth records 0);
          ignore (Service.Wal.sync w);
          (* First batch durable; the second one tears mid-write. *)
          Service.Wal.append w (List.nth records 1);
          Service.Wal.append w (List.nth records 2);
          Service.Wal.append w (List.nth records 3);
          ignore (Service.Wal.sync w));
  let r = recover_ok dir in
  Alcotest.(check bool)
    "recovered records are a prefix" true
    (prefix_of r.Service.Wal.r_records records);
  Alcotest.(check bool)
    "the acked batch survived" true
    (List.length r.Service.Wal.r_records >= 1);
  Alcotest.(check int)
    "last_seq matches the prefix"
    (List.length r.Service.Wal.r_records)
    r.Service.Wal.r_last_seq

(* Kill the process at every site and gap of the snapshot
   write → fsync → rename → dir-fsync protocol: whichever snapshot
   version survives, recovery merges it with the WAL into exactly the
   original records — old-or-new atomicity, no loss, no double apply. *)
let test_snapshot_rename_atomicity () =
  let windows =
    [
      "snap-open";
      "snap-write";
      "snap-fsync";
      "after-snapshot-write";
      "before-snapshot-rename";
      "snap-rename";
      "after-snapshot-rename";
      "dir-fsync";
    ]
  in
  List.iter
    (fun window ->
      let@ dir = with_tmpdir in
      let config = mk_config () in
      (* Golden state: snapshot covering seqs 1-2, WAL holding 1-4. *)
      (match
         Service.Wal.write_snapshot ~dir
           {
             Service.Wal.config;
             last_seq = 2;
             records = [ List.nth records 0; List.nth records 1 ];
           }
       with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: golden snapshot: %s" window msg);
      (match Service.Wal.create ~dir ~config () with
      | Ok w ->
          List.iter (Service.Wal.append w) records;
          (match Service.Wal.sync w with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: golden sync: %s" window msg);
          Service.Wal.close w
      | Error msg -> Alcotest.failf "%s: golden wal: %s" window msg);
      fork_chaos
        ~rules:
          [
            {
              Chaos.Fs.target = window;
              nth = 1;
              sticky = false;
              action = Chaos.Fs.Crash;
            };
          ]
        (fun () ->
          ignore
            (Service.Wal.write_snapshot ~dir
               { Service.Wal.config; last_seq = 4; records }));
      let r = recover_ok dir in
      Alcotest.(check bool)
        (window ^ ": records intact")
        true
        (r.Service.Wal.r_records = records);
      Alcotest.(check int) (window ^ ": last seq") 4 r.Service.Wal.r_last_seq;
      Alcotest.(check bool)
        (window ^ ": no orphaned tmp after recovery")
        false
        (Sys.file_exists (Service.Wal.snapshot_path ~dir ^ ".tmp")))
    windows

let () =
  Random.self_init ();
  Alcotest.run "chaos"
    [
      ( "spec",
        [
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "rejects" `Quick test_spec_rejects;
        ] );
      ("fs", [ Alcotest.test_case "rules" `Quick test_fs_rules ]);
      ( "fuzz",
        [
          Alcotest.test_case "apply" `Quick test_fuzz_apply;
          Alcotest.test_case "random" `Quick test_fuzz_random;
        ] );
      ( "crash-windows",
        [
          Alcotest.test_case "torn-multi-record" `Quick test_torn_multi_record;
          Alcotest.test_case "snapshot-rename-atomicity" `Quick
            test_snapshot_rename_atomicity;
        ] );
    ]
