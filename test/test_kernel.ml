(* Golden-fixture guard for the simulation kernel refactor.

   Every registered policy is run over a fixed set of scenarios — with and
   without faults, related speeds, checkpoints, and restart budgets — and
   the full observable outcome (utility vectors, parts, kill counters,
   event count, busy time, checkpoint snapshots) is compared byte-for-byte
   against fixtures captured from the pre-kernel engine.  Any divergence
   means the `lib/kernel` extraction changed simulation semantics.

   Regenerate (only when a semantic change is intended and understood):

     dune exec test/test_kernel.exe -- capture > test/fixtures/kernel_golden.csv
*)

open Core

type scenario = {
  sname : string;
  instance : Instance.t;
  faults : Faults.Event.timed list;
  max_restarts : int option;
  checkpoints : int list;
}

let mk_jobs specs =
  List.map
    (fun (org, release, size) -> Job.make ~org ~index:0 ~release ~size ())
    specs

(* lpc_egee at its native load is near-empty below hour scale; ~load:1.0
   over a 20k horizon yields ~85 jobs across all three organizations. *)
let trace_instance ~seed =
  Workload.Scenario.instance
    (Workload.Scenario.default ~norgs:3 ~machines:8 ~horizon:20_000 ~load:1.0
       Workload.Traces.lpc_egee)
    ~seed

let related_instance () =
  Instance.make_related
    ~speeds:[| 2.0; 1.0; 1.0; 0.5 |]
    ~machines:[| 2; 1; 1 |]
    ~jobs:
      (mk_jobs
         [
           (0, 0, 12); (0, 4, 6); (0, 40, 9); (1, 0, 10); (1, 9, 5);
           (1, 70, 8); (2, 2, 14); (2, 30, 4); (2, 90, 11);
         ])
    ~horizon:300

let scenarios () =
  let base = trace_instance ~seed:2013 in
  let churn_faults =
    Faults.Model.random
      ~rng:(Fstats.Rng.create ~seed:(2013 lxor 0xfa017))
      ~machines:(Instance.total_machines base)
      ~horizon:20_000
      ~mtbf:(Faults.Model.Exponential { mean = 2_000. })
      ~mttr:(Faults.Model.Exponential { mean = 200. })
      ()
  in
  let related = related_instance () in
  let related_faults =
    Faults.Model.scripted
      [
        { Faults.Model.machine = 0; down_at = 5; up_at = 25 };
        { Faults.Model.machine = 3; down_at = 10; up_at = 60 };
        { Faults.Model.machine = 1; down_at = 100; up_at = 140 };
      ]
  in
  [
    {
      sname = "base";
      instance = base;
      faults = [];
      max_restarts = None;
      checkpoints = [ 7_000; 14_000 ];
    };
    {
      sname = "churn";
      instance = base;
      faults = churn_faults;
      max_restarts = None;
      checkpoints = [ 10_000 ];
    };
    {
      sname = "churn-budget";
      instance = base;
      faults = churn_faults;
      max_restarts = Some 1;
      checkpoints = [];
    };
    {
      sname = "speeds";
      instance = related;
      faults = [];
      max_restarts = None;
      checkpoints = [ 150 ];
    };
    {
      sname = "speeds-churn";
      instance = related;
      faults = related_faults;
      max_restarts = Some 0;
      checkpoints = [ 150 ];
    };
  ]

let ints arr = String.concat ";" (List.map string_of_int (Array.to_list arr))

let line_of sc policy_name =
  let maker = Algorithms.Registry.find_exn policy_name in
  let r =
    Sim.Driver.run ~record:true ~checkpoints:sc.checkpoints ~faults:sc.faults
      ?max_restarts:sc.max_restarts ~instance:sc.instance
      ~rng:(Fstats.Rng.create ~seed:77)
      maker
  in
  let snaps =
    String.concat "|"
      (List.map
         (fun (s : Sim.Driver.snapshot) ->
           Printf.sprintf "%d:%s:%s" s.Sim.Driver.at
             (ints s.Sim.Driver.psi_scaled)
             (ints s.Sim.Driver.parts_at))
         r.Sim.Driver.checkpoints)
  in
  Printf.sprintf "%s,%s,%s,%s,%d,%d,%d,%d,%d,%s" sc.sname policy_name
    (ints r.Sim.Driver.utilities_scaled)
    (ints r.Sim.Driver.parts)
    r.Sim.Driver.killed r.Sim.Driver.abandoned r.Sim.Driver.wasted
    r.Sim.Driver.events
    (Schedule.busy_time r.Sim.Driver.schedule
       ~upto:sc.instance.Instance.horizon)
    snaps

let all_lines () =
  List.concat_map
    (fun sc ->
      List.map (fun name -> line_of sc name) Algorithms.Registry.all_names)
    (scenarios ())

let fixture_path = "fixtures/kernel_golden.csv"

let read_fixture () =
  let ic = open_in fixture_path in
  let rec go acc =
    match input_line ic with
    | line -> go (if line = "" then acc else line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_golden () =
  let expected = read_fixture () in
  let got = all_lines () in
  Alcotest.(check int)
    "fixture covers every (scenario, policy) pair" (List.length expected)
    (List.length got);
  List.iter2
    (fun e g ->
      let key l = match String.split_on_char ',' l with
        | s :: p :: _ -> s ^ "/" ^ p
        | _ -> l
      in
      Alcotest.(check string) (key e) e g)
    expected got

(* --- Within-instant order: extensions under kernel faults ---------------

   The canonical phase order is completions -> faults -> releases -> round:
   a machine that fails at instant t is unusable for jobs starting at t, and
   a machine that recovers at t is usable at t itself.  These tests pin that
   contract for the extension simulators, which gained fault injection
   through the kernel. *)

module Rigid = Extensions.Rigid
module Preemptive = Extensions.Preemptive

let outage ~machine ~down_at ~up_at = { Faults.Model.machine; down_at; up_at }

let rjob ~org ~index ~release ~size ~width =
  { Rigid.job = Job.make ~org ~index ~release ~size (); width }

let test_rigid_fail_blocks_same_instant () =
  (* The only machine fails at the job's release instant: the fault lands
     before the scheduling round, so the job must wait (not start-then-die)
     and start exactly at the recovery instant. *)
  let instance =
    Rigid.make_instance ~machines:1
      ~jobs:[ rjob ~org:0 ~index:0 ~release:3 ~size:2 ~width:1 ]
      ~horizon:15
  in
  let faults =
    Faults.Model.scripted [ outage ~machine:0 ~down_at:3 ~up_at:10 ]
  in
  let run = Rigid.simulate ~faults instance Rigid.Fifo_fit in
  Alcotest.(check int) "never killed" 0 run.Rigid.killed;
  (match run.Rigid.placements with
  | [ (_, start) ] -> Alcotest.(check int) "starts at recovery instant" 10 start
  | ps -> Alcotest.failf "expected one placement, got %d" (List.length ps));
  Alcotest.(check int) "all work done" 2 run.Rigid.busy_time

let test_rigid_restart_budget () =
  (* An outage kills the running job.  With budget 0 it is abandoned; with
     the default unbounded budget it resubmits and restarts at recovery. *)
  let instance =
    Rigid.make_instance ~machines:1
      ~jobs:[ rjob ~org:0 ~index:0 ~release:0 ~size:10 ~width:1 ]
      ~horizon:20
  in
  let faults =
    Faults.Model.scripted [ outage ~machine:0 ~down_at:4 ~up_at:6 ]
  in
  let capped = Rigid.simulate ~faults ~max_restarts:0 instance Rigid.Fifo_fit in
  Alcotest.(check int) "killed" 1 capped.Rigid.killed;
  Alcotest.(check int) "abandoned under budget 0" 1 capped.Rigid.abandoned;
  Alcotest.(check int) "wasted = width * progress" 4 capped.Rigid.wasted;
  Alcotest.(check int) "no surviving placement" 0
    (List.length capped.Rigid.placements);
  let retried = Rigid.simulate ~faults instance Rigid.Fifo_fit in
  Alcotest.(check int) "no abandon when unbounded" 0 retried.Rigid.abandoned;
  match retried.Rigid.placements with
  | [ (_, start) ] -> Alcotest.(check int) "restarts at recovery" 6 start
  | ps -> Alcotest.failf "expected one placement, got %d" (List.length ps)

let test_preemptive_outage_slots () =
  (* One machine, one size-5 job at 0, outage [2,4): slots 0 and 1 execute,
     slots 2 and 3 are down (a failure at t removes slot t itself), slot 4
     executes again (recovery at t is usable in slot t) — so the executed
     slots are exactly {0,1,4,5,6} and ψsp follows. *)
  let instance =
    Instance.make ~machines:[| 1 |]
      ~jobs:[ Job.make ~org:0 ~index:0 ~release:0 ~size:5 () ]
      ~horizon:10
  in
  let faults =
    Faults.Model.scripted [ outage ~machine:0 ~down_at:2 ~up_at:4 ]
  in
  let run = Preemptive.simulate ~faults ~instance Preemptive.Equal_share in
  Alcotest.(check int) "job completes" 1 run.Preemptive.completed_jobs;
  Alcotest.(check int) "no part lost to the fault" 5 run.Preemptive.parts.(0);
  Alcotest.(check int) "psi over slots {0,1,4,5,6}"
    (2 * (10 + 9 + 6 + 5 + 4))
    run.Preemptive.utilities_scaled.(0)

(* Random small rigid/preemptive workloads under random disjoint outage
   windows. *)
let fault_case_gen =
  let gen =
    QCheck.Gen.(
      let* machines = int_range 1 3 in
      let* njobs = int_range 0 8 in
      let* jobs =
        list_size (return njobs)
          (let* org = int_range 0 2 in
           let* release = int_range 0 15 in
           let* size = int_range 1 5 in
           let* width = int_range 1 machines in
           return (org, release, size, width))
      in
      let* outages =
        (* Per machine, 0..2 disjoint windows built from positive gaps. *)
        flatten_l
          (List.init machines (fun m ->
               let* k = int_range 0 2 in
               let* gaps = list_size (return k) (pair (int_range 1 10) (int_range 1 8)) in
               let _, wins =
                 List.fold_left
                   (fun (t, acc) (gap, len) ->
                     let down_at = t + gap in
                     let up_at = down_at + len in
                     (up_at, outage ~machine:m ~down_at ~up_at :: acc))
                   (0, []) gaps
               in
               return wins))
      in
      return (machines, jobs, List.concat outages))
  in
  QCheck.make
    ~print:(fun (machines, jobs, outages) ->
      Printf.sprintf "m=%d jobs=[%s] outages=[%s]" machines
        (String.concat "; "
           (List.map
              (fun (o, r, s, w) -> Printf.sprintf "(%d,%d,%d,%d)" o r s w)
              jobs))
        (String.concat "; "
           (List.map
              (fun (o : Faults.Model.outage) ->
                Printf.sprintf "m%d:[%d,%d)" o.Faults.Model.machine
                  o.Faults.Model.down_at o.Faults.Model.up_at)
              outages)))
    gen

let horizon_p = 40

(* Machines up during instant t, treating [down_at, up_at) as down — the
   within-instant contract. *)
let up_at outages t =
  fun m ->
  not
    (List.exists
       (fun (o : Faults.Model.outage) ->
         o.Faults.Model.machine = m
         && o.Faults.Model.down_at <= t
         && t < o.Faults.Model.up_at)
       outages)

let prop_rigid_capacity_respects_outages =
  QCheck.Test.make
    ~name:"rigid: surviving attempts fit inside up machines at every instant"
    ~count:200 fault_case_gen
    (fun (machines, jobs, outages) ->
      let jobs =
        List.mapi
          (fun i (org, release, size, width) ->
            rjob ~org ~index:i ~release ~size ~width)
          jobs
      in
      let instance = Rigid.make_instance ~machines ~jobs ~horizon:horizon_p in
      let faults = Faults.Model.scripted outages in
      let run = Rigid.simulate ~faults instance Rigid.Fifo_fit in
      List.for_all
        (fun t ->
          let busy =
            List.fold_left
              (fun acc ((r : Rigid.rigid_job), start) ->
                if start <= t && t < start + r.Rigid.job.Job.size then
                  acc + r.Rigid.width
                else acc)
              0 run.Rigid.placements
          in
          let up =
            List.length
              (List.filter (up_at outages t) (List.init machines Fun.id))
          in
          busy <= up)
        (List.init horizon_p Fun.id))

let prop_preemptive_parts_bounded_by_uptime =
  QCheck.Test.make
    ~name:"preemptive: executed parts never exceed surviving capacity"
    ~count:200 fault_case_gen
    (fun (machines, jobs, outages) ->
      let jobs =
        List.map
          (fun (org, release, size, _) ->
            Job.make ~org ~index:0 ~release ~size ())
          jobs
      in
      let instance =
        (* Jobs span orgs 0..2; all machines belong to org 0 (zero-endowment
           orgs are legal and Equal_share ignores shares). *)
        Instance.make ~machines:[| machines; 0; 0 |] ~jobs ~horizon:horizon_p
      in
      let faults = Faults.Model.scripted outages in
      let run = Preemptive.simulate ~faults ~instance Preemptive.Equal_share in
      let executed = Array.fold_left ( + ) 0 run.Preemptive.parts in
      let capacity =
        (machines * horizon_p)
        - Faults.Model.downtime ~machines ~horizon:horizon_p faults
      in
      executed <= capacity)

(* --- Stats: counters, aggregation, JSON round-trip ---------------------- *)

let sample_stats () =
  let s = Kernel.Stats.create () in
  s.Kernel.Stats.instants <- 1;
  s.Kernel.Stats.completions <- 2;
  s.Kernel.Stats.fault_events <- 3;
  s.Kernel.Stats.kills <- 4;
  s.Kernel.Stats.abandoned <- 5;
  s.Kernel.Stats.wasted <- 6;
  s.Kernel.Stats.releases <- 7;
  s.Kernel.Stats.rounds <- 8;
  s.Kernel.Stats.starts <- 9;
  s.Kernel.Stats.heap_pops <- 10;
  s

let test_stats_copy_reset () =
  let s = sample_stats () in
  let c = Kernel.Stats.copy s in
  Kernel.Stats.reset s;
  Alcotest.(check int) "reset zeroes" 0 s.Kernel.Stats.heap_pops;
  (* The copy is independent of the original. *)
  Alcotest.(check int) "copy unaffected by reset" 10 c.Kernel.Stats.heap_pops;
  Alcotest.(check int) "copy keeps instants" 1 c.Kernel.Stats.instants

let test_stats_add_total () =
  let a = sample_stats () and b = sample_stats () in
  Kernel.Stats.add a b;
  Alcotest.(check int) "add sums instants" 2 a.Kernel.Stats.instants;
  Alcotest.(check int) "add sums heap_pops" 20 a.Kernel.Stats.heap_pops;
  let t = Kernel.Stats.total [ sample_stats (); sample_stats (); sample_stats () ] in
  Alcotest.(check int) "total sums starts" 27 t.Kernel.Stats.starts;
  Alcotest.(check int) "total sums wasted" 18 t.Kernel.Stats.wasted

let test_stats_json_roundtrip () =
  let s = sample_stats () in
  let parsed =
    match Obs.Json.of_string (Kernel.Stats.to_json s) with
    | Ok j -> j
    | Error e -> Alcotest.fail ("stats JSON does not reparse: " ^ e)
  in
  match Kernel.Stats.of_json parsed with
  | Ok s' ->
      Alcotest.(check bool) "round-trips exactly" true (s = s')
  | Error e -> Alcotest.fail ("of_json failed: " ^ e)

let test_stats_of_json_errors () =
  let reject s =
    match Obs.Json.of_string s with
    | Error e -> Alcotest.fail e
    | Ok j ->
        Alcotest.(check bool) ("rejects " ^ s) true
          (Result.is_error (Kernel.Stats.of_json j))
  in
  reject "{}";
  reject {|{"instants": "many"}|};
  reject "[1,2,3]"

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "capture" then begin
    List.iter print_endline (all_lines ());
    exit 0
  end;
  Alcotest.run "kernel"
    [
      ( "golden",
        [ Alcotest.test_case "bit-identity across the refactor" `Slow
            test_golden ] );
      ( "within-instant order",
        [
          Alcotest.test_case "rigid: failure blocks same-instant start" `Quick
            test_rigid_fail_blocks_same_instant;
          Alcotest.test_case "rigid: kill, resubmit, budget" `Quick
            test_rigid_restart_budget;
          Alcotest.test_case "preemptive: outage removes exact slots" `Quick
            test_preemptive_outage_slots;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rigid_capacity_respects_outages;
            prop_preemptive_parts_bounded_by_uptime;
          ] );
      ( "stats",
        [
          Alcotest.test_case "copy and reset are independent" `Quick
            test_stats_copy_reset;
          Alcotest.test_case "add and total sum field-wise" `Quick
            test_stats_add_total;
          Alcotest.test_case "JSON round-trip" `Quick
            test_stats_json_roundtrip;
          Alcotest.test_case "of_json rejects malformed input" `Quick
            test_stats_of_json_errors;
        ] );
    ]
