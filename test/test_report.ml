(* Tests for the reporting stack: driver checkpoints, fairness timelines,
   the domain pool, trace analysis, SVG charts and the HTML report. *)

open Core

(* --- Driver checkpoints ----------------------------------------------------- *)

let test_checkpoints () =
  let jobs =
    [
      Job.make ~org:0 ~index:0 ~release:0 ~size:4 ();
      Job.make ~org:1 ~index:0 ~release:2 ~size:3 ();
    ]
  in
  let instance = Instance.make ~machines:[| 1; 1 |] ~jobs ~horizon:20 in
  let r =
    Sim.Driver.run ~checkpoints:[ 3; 10; 50 ] ~instance
      ~rng:(Fstats.Rng.create ~seed:1)
      (Algorithms.Registry.find_exn "fifo")
  in
  (match r.Sim.Driver.checkpoints with
  | [ c3; c10; c_end ] ->
      Alcotest.(check int) "first at 3" 3 c3.Sim.Driver.at;
      (* org0's job ran slots 0,1,2 by t=3: ψ2 = 2(3+2+1) = 12. *)
      Alcotest.(check int) "psi org0 at 3" 12 c3.Sim.Driver.psi_scaled.(0);
      (* org1's job started at 2: one part by 3. *)
      Alcotest.(check int) "psi org1 at 3" 2 c3.Sim.Driver.psi_scaled.(1);
      Alcotest.(check (array int)) "parts at 3" [| 3; 1 |] c3.Sim.Driver.parts_at;
      Alcotest.(check int) "clamped to horizon" 20 c_end.Sim.Driver.at;
      (* At 10 everything completed: utilities match the final values at 10. *)
      Alcotest.(check int) "psi org0 at 10"
        (Utility.Psp.of_schedule_scaled r.Sim.Driver.schedule ~org:0 ~at:10)
        c10.Sim.Driver.psi_scaled.(0)
  | l -> Alcotest.failf "expected 3 checkpoints, got %d" (List.length l));
  (* Checkpoint snapshots agree with a direct run evaluated at that horizon. *)
  let shorter = Instance.make ~machines:[| 1; 1 |] ~jobs ~horizon:10 in
  let r10 =
    Sim.Driver.run ~instance:shorter
      ~rng:(Fstats.Rng.create ~seed:1)
      (Algorithms.Registry.find_exn "fifo")
  in
  let c10 = List.nth r.Sim.Driver.checkpoints 1 in
  Alcotest.(check (array int))
    "snapshot = shorter-horizon run" r10.Sim.Driver.utilities_scaled
    c10.Sim.Driver.psi_scaled

(* --- Fairness timelines ------------------------------------------------------- *)

let test_timelines () =
  let instance =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs:3 ~machines:6 ~horizon:20_000
         Workload.Traces.ricc)
      ~seed:5
  in
  let tls =
    Sim.Fairness.timelines ~instance ~seed:9
      ~checkpoints:[ 5_000; 10_000; 15_000; 20_000 ]
      [
        Algorithms.Registry.find_exn "ref";
        Algorithms.Registry.find_exn "roundrobin";
      ]
  in
  match tls with
  | [ ref_tl; rr_tl ] ->
      Alcotest.(check int) "four points" 4 (List.length rr_tl.Sim.Fairness.points);
      List.iter
        (fun (_, v) ->
          Alcotest.(check (float 1e-9)) "ref vs itself is 0 at every t" 0. v)
        ref_tl.Sim.Fairness.points;
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool) "ratios non-negative" true (v >= 0.))
        rr_tl.Sim.Fairness.points
  | _ -> Alcotest.fail "expected two timelines"

(* --- Pool ---------------------------------------------------------------------- *)

let test_pool_matches_sequential () =
  let tasks = List.init 50 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int))
    "2 workers = sequential" (List.map f tasks)
    (Core.Domain_pool.map ~workers:2 f tasks);
  Alcotest.(check (list int))
    "4 workers = sequential" (List.map f tasks)
    (Core.Domain_pool.map ~workers:4 f tasks);
  Alcotest.(check (list int)) "empty" [] (Core.Domain_pool.map ~workers:3 f [])

let test_pool_propagates_exceptions () =
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      ignore
        (Core.Domain_pool.map ~workers:2
           (fun x -> if x = 3 then failwith "boom" else x)
           [ 1; 2; 3; 4 ]))

let test_pool_experiments_deterministic () =
  let config =
    {
      (Experiments.Tables.table1_config ~instances:2 ~machines:6 ()) with
      Experiments.Tables.horizon = 5_000;
      norgs = 3;
      models = [ Workload.Traces.lpc_egee ];
      algorithms = [ ("roundrobin", Algorithms.Baselines.round_robin) ];
    }
  in
  let means t =
    List.map
      (fun (_, cells) ->
        List.map (fun (_, c) -> c.Experiments.Tables.mean) cells)
      t.Experiments.Tables.rows
  in
  let a = Experiments.Tables.run ~workers:1 config in
  let b = Experiments.Tables.run ~workers:3 config in
  Alcotest.(check (list (list (float 1e-9))))
    "workers do not change results" (means a) (means b)

(* --- Analysis ------------------------------------------------------------------- *)

let test_analysis () =
  let entries =
    [
      { Workload.Swf.job_id = 1; submit = 0; run_time = 100; processors = 1; user = 1 };
      { Workload.Swf.job_id = 2; submit = 3_600; run_time = 200; processors = 2; user = 1 };
      { Workload.Swf.job_id = 3; submit = 7_200; run_time = 300; processors = 1; user = 2 };
    ]
  in
  let a = Workload.Analysis.of_entries ~machines:4 entries in
  Alcotest.(check int) "jobs" 3 a.Workload.Analysis.jobs;
  Alcotest.(check int) "users" 2 a.Workload.Analysis.users;
  Alcotest.(check int) "total work (sequentialized)" (100 + 400 + 300)
    a.Workload.Analysis.total_work;
  Alcotest.(check (float 1e-9)) "median" 200. a.Workload.Analysis.median_size;
  Alcotest.(check int) "span" 7_201 a.Workload.Analysis.span;
  Alcotest.(check (float 1e-6)) "top user share" (2. /. 3.)
    a.Workload.Analysis.top_user_share;
  Alcotest.(check int) "hour bin 0" 1 a.Workload.Analysis.hourly_arrivals.(0);
  Alcotest.(check int) "hour bin 1" 1 a.Workload.Analysis.hourly_arrivals.(1);
  Alcotest.(check int) "hour bin 2" 1 a.Workload.Analysis.hourly_arrivals.(2);
  Alcotest.check_raises "empty" (Invalid_argument "Analysis: empty trace")
    (fun () -> ignore (Workload.Analysis.of_entries ~machines:1 []))

let test_analysis_of_generated () =
  (* Synthetic models should land near their calibration targets. *)
  List.iter
    (fun model ->
      let entries =
        Workload.Traces.generate model
          ~rng:(Fstats.Rng.create ~seed:77)
          ~machines:32 ~duration:200_000 ()
      in
      let a = Workload.Analysis.of_entries ~machines:32 entries in
      let target = model.Workload.Traces.load in
      Alcotest.(check bool)
        (Printf.sprintf "%s load %.2f near target %.2f"
           model.Workload.Traces.name a.Workload.Analysis.offered_load target)
        true
        (a.Workload.Analysis.offered_load > 0.3 *. target
        && a.Workload.Analysis.offered_load < 3. *. target))
    Workload.Traces.all

(* --- SVG -------------------------------------------------------------------------- *)

let assert_svg name s =
  Alcotest.(check bool) (name ^ " opens") true
    (String.length s > 10 && String.sub s 0 4 = "<svg");
  Alcotest.(check bool) (name ^ " closes") true
    (let tail = String.sub s (String.length s - 7) 7 in
     String.trim tail = "</svg>");
  Alcotest.(check bool) (name ^ " no nan") false
    (let lower = String.lowercase_ascii s in
     let contains sub =
       let n = String.length lower and m = String.length sub in
       let rec go i = i + m <= n && (String.sub lower i m = sub || go (i + 1)) in
       go 0
     in
     contains "nan" || contains "inf")

let test_svg_line () =
  let chart =
    Report.Svg.line_chart ~title:"t" ~x_label:"x" ~y_label:"y"
      [
        { Report.Svg.label = "a"; points = [ (0., 1.); (1., 5.); (2., 3.) ] };
        { Report.Svg.label = "b"; points = [ (0., 2.); (2., 0.) ] };
      ]
  in
  assert_svg "line" chart;
  let log =
    Report.Svg.line_chart ~log_y:true ~title:"t" ~x_label:"x" ~y_label:"y"
      [ { Report.Svg.label = "a"; points = [ (0., 0.); (1., 1000.) ] } ]
  in
  assert_svg "log line (zero clamped)" log;
  Alcotest.check_raises "no data" (Invalid_argument "Svg.line_chart: no data")
    (fun () ->
      ignore
        (Report.Svg.line_chart ~title:"t" ~x_label:"x" ~y_label:"y"
           [ { Report.Svg.label = "a"; points = [] } ]))

let test_svg_bar () =
  let chart =
    Report.Svg.bar_chart ~title:"t" ~y_label:"y"
      [
        { Report.Svg.group = "g1"; bars = [ ("a", 3.); ("b", 1.) ] };
        { Report.Svg.group = "g2"; bars = [ ("a", 0.); ("b", 10.) ] };
      ]
  in
  assert_svg "bar" chart;
  assert_svg "bar log"
    (Report.Svg.bar_chart ~log_y:true ~title:"t" ~y_label:"y"
       [ { Report.Svg.group = "g"; bars = [ ("a", 100.) ] } ])

let test_svg_escape () =
  Alcotest.(check string)
    "escapes" "a&lt;b&gt;&amp;&quot;c"
    (Report.Svg.escape "a<b>&\"c")

let qcheck_svg_never_crashes =
  QCheck.Test.make ~name:"line_chart total on random data" ~count:100
    QCheck.(
      small_list
        (pair (float_range (-1000.) 1000.) (float_range (-1000.) 1000.)))
    (fun points ->
      QCheck.assume (points <> []);
      let s =
        Report.Svg.line_chart ~title:"q" ~x_label:"x" ~y_label:"y"
          [ { Report.Svg.label = "s"; points } ]
      in
      String.length s > 0)

(* --- Report builder ------------------------------------------------------------------ *)

let test_report_builds () =
  let config =
    {
      Report.Builder.table_instances = 1;
      table2_instances = 0;
      fig10_instances = 1;
      fig10_max_orgs = 3;
      timeline_instances = 1;
      workers = Some 1;
    }
  in
  (* table2_instances = 0 would make summaries empty; use 1. *)
  let config = { config with Report.Builder.table2_instances = 1 } in
  let html = Report.Builder.build config in
  Alcotest.(check bool) "html document" true
    (String.length html > 1000
    && String.sub html 0 15 = "<!DOCTYPE html>");
  let count sub =
    let n = String.length html and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub html i m = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "six charts" 6 (count "<svg");
  Alcotest.(check bool) "has tables" true (count "<table" >= 2)

let () =
  Alcotest.run "report"
    [
      ( "driver-checkpoints",
        [ Alcotest.test_case "snapshots" `Quick test_checkpoints ] );
      ("timelines", [ Alcotest.test_case "series" `Quick test_timelines ]);
      ( "pool",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_pool_matches_sequential;
          Alcotest.test_case "propagates exceptions" `Quick
            test_pool_propagates_exceptions;
          Alcotest.test_case "experiments deterministic across workers" `Quick
            test_pool_experiments_deterministic;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "hand-built trace" `Quick test_analysis;
          Alcotest.test_case "generated traces near targets" `Quick
            test_analysis_of_generated;
        ] );
      ( "svg",
        [
          Alcotest.test_case "line chart" `Quick test_svg_line;
          Alcotest.test_case "bar chart" `Quick test_svg_bar;
          Alcotest.test_case "escape" `Quick test_svg_escape;
          QCheck_alcotest.to_alcotest qcheck_svg_never_crashes;
        ] );
      ( "builder",
        [ Alcotest.test_case "assembles html" `Slow test_report_builds ] );
    ]
