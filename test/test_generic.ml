(* Tests for the generic-utility machinery (Functions, Ref_generic) and the
   Gantt renderer. *)

open Core

(* --- Utility.Functions ---------------------------------------------------- *)

let sample_schedule () =
  let j1 = Job.make ~org:0 ~index:0 ~release:0 ~size:3 () in
  let j2 = Job.make ~org:0 ~index:1 ~release:1 ~size:2 () in
  let j3 = Job.make ~org:1 ~index:0 ~release:0 ~size:4 () in
  let s =
    Schedule.of_placements ~machines:2
      [
        Schedule.placement ~job:j1 ~start:0 ~machine:0 ();
        Schedule.placement ~job:j2 ~start:3 ~machine:0 ();
        Schedule.placement ~job:j3 ~start:0 ~machine:1 ();
      ]
  in
  (s, [ j1; j2; j3 ])

let test_functions () =
  let s, all_jobs = sample_schedule () in
  let eval (u : Utility.Functions.t) org =
    u.Utility.Functions.eval s ~org ~at:10
  in
  Alcotest.(check (float 1e-9))
    "psp equals module"
    (Utility.Psp.of_schedule s ~org:0 ~at:10)
    (eval Utility.Functions.psp 0);
  Alcotest.(check (float 1e-9)) "throughput org0" 2.
    (eval Utility.Functions.throughput 0);
  Alcotest.(check (float 1e-9)) "cpu time org0" 5.
    (eval Utility.Functions.cpu_time 0);
  Alcotest.(check (float 1e-9)) "neg waiting org0" (-2.)
    (eval Utility.Functions.neg_waiting 0);
  let neg_flow = Utility.Functions.neg_flow_time ~all_jobs in
  Alcotest.(check (float 1e-9)) "neg flow org0" (-.float_of_int (3 + 4))
    (neg_flow.Utility.Functions.eval s ~org:0 ~at:10);
  Alcotest.(check bool) "registry" true
    (Utility.Functions.by_name "psp" <> None);
  Alcotest.(check bool) "unknown" true
    (Utility.Functions.by_name "nope" = None)

(* --- Ref_generic ------------------------------------------------------------ *)

let random_instance ~seed =
  let rng = Fstats.Rng.create ~seed in
  let jobs =
    List.init
      (8 + Fstats.Rng.int rng 10)
      (fun _ ->
        Job.make
          ~org:(Fstats.Rng.int rng 3)
          ~index:0
          ~release:(Fstats.Rng.int rng 15)
          ~size:(1 + Fstats.Rng.int rng 5)
          ())
  in
  Instance.make ~machines:[| 1; 1; 1 |] ~jobs ~horizon:60

let run instance name =
  Sim.Driver.run ~instance
    ~rng:(Fstats.Rng.create ~seed:1)
    (Algorithms.Registry.find_exn name)

let test_ref_generic_structural () =
  for seed = 1 to 5 do
    let instance = random_instance ~seed in
    let r = run instance "ref-generic-psp" in
    let sched = r.Sim.Driver.schedule in
    Alcotest.(check bool) "feasible" true
      (Result.is_ok (Schedule.check_feasible sched));
    Alcotest.(check bool) "fifo" true
      (Result.is_ok (Schedule.check_fifo sched));
    Alcotest.(check bool) "greedy" true
      (Result.is_ok
         (Schedule.check_greedy sched
            ~all_jobs:(Array.to_list instance.Instance.jobs)
            ~upto:instance.Instance.horizon))
  done

let test_ref_generic_close_to_ref () =
  (* The literal Fig. 1 implementation and the ψsp-specialized REF agree up
     to tie-breaking: the utility vectors stay within 1% (L1) of the total
     value. *)
  for seed = 1 to 6 do
    let instance = random_instance ~seed:(100 + seed) in
    let a = run instance "ref" and b = run instance "ref-generic-psp" in
    let ua = a.Sim.Driver.utilities_scaled
    and ub = b.Sim.Driver.utilities_scaled in
    let v = Array.fold_left ( + ) 0 ua in
    let gap = ref 0 in
    Array.iteri (fun i x -> gap := !gap + abs (x - ub.(i))) ua;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: gap %d vs v %d" seed !gap v)
      true
      (float_of_int !gap <= 0.01 *. float_of_int v +. 4.)
  done

let test_ref_generic_other_utility_runs () =
  (* The general algorithm with a different utility still yields a valid
     greedy schedule (the fairness target changes, not feasibility). *)
  let instance = random_instance ~seed:42 in
  let maker =
    Algorithms.Ref_generic.make ~utility:Utility.Functions.cpu_time ()
  in
  let r =
    Sim.Driver.run ~instance ~rng:(Fstats.Rng.create ~seed:1) maker
  in
  Alcotest.(check bool) "feasible" true
    (Result.is_ok (Schedule.check_feasible r.Sim.Driver.schedule));
  Alcotest.(check bool) "greedy" true
    (Result.is_ok
       (Schedule.check_greedy r.Sim.Driver.schedule
          ~all_jobs:(Array.to_list instance.Instance.jobs)
          ~upto:instance.Instance.horizon))

(* --- Gantt -------------------------------------------------------------------- *)

let test_gantt () =
  let s, _ = sample_schedule () in
  let out = Gantt.render ~width:20 s in
  let lines = String.split_on_char '\n' out in
  (* two machine rows + axis row + trailing newline *)
  Alcotest.(check int) "rows" 4 (List.length lines);
  let m0 = List.nth lines 0 in
  Alcotest.(check bool) "row labelled" true
    (String.length m0 > 3 && String.sub m0 0 2 = "m0");
  (* Machine 0 runs org 0 jobs back-to-back for 5 slots then idles. *)
  Alcotest.(check bool) "contains org glyph" true
    (String.contains m0 '0');
  let m1 = List.nth lines 1 in
  Alcotest.(check bool) "machine 1 runs org 1" true (String.contains m1 '1');
  Alcotest.(check bool) "idle glyph present" true (String.contains m1 '-')

let test_org_glyph () =
  Alcotest.(check char) "digit" '7' (Gantt.org_glyph 7);
  Alcotest.(check char) "letter" 'a' (Gantt.org_glyph 10);
  Alcotest.(check char) "wraps" 'z' (Gantt.org_glyph 35);
  Alcotest.(check char) "negative" '?' (Gantt.org_glyph (-1))

let () =
  Alcotest.run "generic"
    [
      ("functions", [ Alcotest.test_case "catalogue" `Quick test_functions ]);
      ( "ref-generic",
        [
          Alcotest.test_case "structural invariants" `Quick
            test_ref_generic_structural;
          Alcotest.test_case "agrees with specialized REF" `Quick
            test_ref_generic_close_to_ref;
          Alcotest.test_case "alternative utility runs" `Quick
            test_ref_generic_other_utility_runs;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "render" `Quick test_gantt;
          Alcotest.test_case "glyphs" `Quick test_org_glyph;
        ] );
    ]
