(* Tests for coalitions, games, and exact / sampled Shapley values. *)

module C = Shapley.Coalition
module Game = Shapley.Game
module Exact = Shapley.Exact
module Sample = Shapley.Sample
module R = Numeric.Rational

let floats = Alcotest.(array (float 1e-9))

(* --- Coalitions ------------------------------------------------------------ *)

let test_coalition_basics () =
  let c = C.add (C.add C.empty 0) 3 in
  Alcotest.(check bool) "mem 0" true (C.mem c 0);
  Alcotest.(check bool) "mem 1" false (C.mem c 1);
  Alcotest.(check int) "size" 2 (C.size c);
  Alcotest.(check (list int)) "members" [ 0; 3 ] (C.members c);
  Alcotest.(check int) "remove" 1 (C.size (C.remove c 3));
  Alcotest.(check bool) "subset" true (C.subset (C.singleton 0) ~of_:c);
  Alcotest.(check bool) "not subset" false (C.subset (C.singleton 1) ~of_:c);
  Alcotest.(check int) "grand size" 5 (C.size (C.grand ~players:5));
  Alcotest.(check int) "union" 3 (C.size (C.union c (C.singleton 1)));
  Alcotest.(check int) "inter" 1 (C.size (C.inter c (C.singleton 3)))

let test_subcoalition_enumeration () =
  let grand = C.grand ~players:4 in
  Alcotest.(check int) "2^4 subsets" 16 (List.length (C.subcoalitions grand));
  let count = ref 0 in
  C.iter_subsets grand (fun _ -> incr count);
  Alcotest.(check int) "iter_subsets visits 16" 16 !count;
  (* iter_subsets of a strict subset visits only its subsets. *)
  let c = C.add (C.add C.empty 1) 3 in
  let visited = ref [] in
  C.iter_subsets c (fun s -> visited := s :: !visited);
  Alcotest.(check int) "4 subsets of a pair" 4 (List.length !visited);
  List.iter
    (fun s ->
      Alcotest.(check bool) "all are subsets" true (C.subset s ~of_:c))
    !visited;
  let by_size = C.proper_subcoalitions_of_grand ~players:4 in
  Alcotest.(check (list int))
    "sizes 1..4 counts" [ 4; 6; 4; 1 ]
    (List.map List.length by_size)

(* --- Exact Shapley ----------------------------------------------------------- *)

let test_additive_game () =
  let weights = [| 3.; 1.; 4.; 1.5 |] in
  let g = Game.additive ~weights in
  Alcotest.check floats "shapley = weights" weights (Exact.subsets g)

let test_unanimity_game () =
  let carrier = C.add (C.add C.empty 1) 2 in
  let g = Game.unanimity ~players:4 ~carrier in
  Alcotest.check floats "1/|carrier| on carrier" [| 0.; 0.5; 0.5; 0. |]
    (Exact.subsets g)

let test_glove_game () =
  (* Two left gloves (players 0,1), one right glove (player 2): the right
     holder gets 2/3, each left holder 1/6. *)
  let g =
    Game.glove ~left:(C.add (C.add C.empty 0) 1) ~right:(C.singleton 2)
  in
  let phi = Exact.subsets g in
  Alcotest.(check (float 1e-9)) "left" (1. /. 6.) phi.(0);
  Alcotest.(check (float 1e-9)) "left" (1. /. 6.) phi.(1);
  Alcotest.(check (float 1e-9)) "right" (2. /. 3.) phi.(2)

let test_airport_game () =
  (* Airport cost game closed form: with ascending costs c_1 <= ... <= c_n,
     player i pays Σ_{j<=i} (c_j − c_{j−1}) / (n − j + 1). *)
  let costs = [| 1.; 3.; 3.; 8. |] in
  let g = Game.airport ~costs in
  let phi = Exact.subsets g in
  let expected =
    [|
      -.(1. /. 4.);
      -.((1. /. 4.) +. (2. /. 3.));
      -.((1. /. 4.) +. (2. /. 3.));
      -.((1. /. 4.) +. (2. /. 3.) +. 5.);
    |]
  in
  Alcotest.check floats "airport closed form" expected phi

let test_weighted_majority () =
  (* [quota 50; weights 49, 49, 2]: all three players are symmetric pivots —
     the classic counterintuitive voting example. *)
  let g = Game.weighted_majority ~quota:50. ~weights:[| 49.; 49.; 2. |] in
  let phi = Exact.subsets g in
  Alcotest.check floats "all pivotal equally"
    [| 1. /. 3.; 1. /. 3.; 1. /. 3. |]
    phi

let random_game ~rng ~players =
  let table = Hashtbl.create 32 in
  Game.make ~players (fun c ->
      if c = C.empty then 0.
      else
        match Hashtbl.find_opt table c with
        | Some v -> v
        | None ->
            let v = Fstats.Rng.float rng 100. in
            Hashtbl.add table c v;
            v)

let test_subsets_vs_permutations () =
  let rng = Fstats.Rng.create ~seed:31 in
  for players = 1 to 5 do
    let g = random_game ~rng ~players in
    let a = Exact.subsets g in
    let b = Exact.permutations g in
    Array.iteri
      (fun u va ->
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "player %d (k=%d)" u players)
          va b.(u))
      a
  done

let test_efficiency_and_dummy () =
  let rng = Fstats.Rng.create ~seed:32 in
  for _ = 1 to 20 do
    let g = random_game ~rng ~players:5 in
    Alcotest.(check bool) "efficiency" true (Exact.efficiency_gap g < 1e-6)
  done;
  (* Dummy player: v(C ∪ {u}) = v(C) for all C → φ_u = 0. *)
  let base = random_game ~rng ~players:3 in
  let g =
    Game.make ~players:4 (fun c -> Game.value base (C.remove c 3))
  in
  let phi = Exact.subsets g in
  Alcotest.(check (float 1e-9)) "dummy gets zero" 0. phi.(3)

let test_symmetry_axiom () =
  (* Players 0 and 1 interchangeable → equal Shapley values. *)
  let g =
    Game.make ~players:3 (fun c ->
        let n01 = (if C.mem c 0 then 1 else 0) + if C.mem c 1 then 1 else 0 in
        let n2 = if C.mem c 2 then 1 else 0 in
        float_of_int ((10 * n01) + (3 * n2) + (n01 * n01) + (5 * n01 * n2)))
  in
  let phi = Exact.subsets g in
  Alcotest.(check (float 1e-9)) "symmetric players" phi.(0) phi.(1)

let test_exact_rational () =
  (* Exact-rational Shapley of the glove game: efficiency holds exactly. *)
  let left = C.add (C.add C.empty 0) 1 and right = C.singleton 2 in
  let value c =
    R.of_int
      (Stdlib.min (C.size (C.inter c left)) (C.size (C.inter c right)))
  in
  let phi = Exact.subsets_exact ~players:3 value in
  Alcotest.(check bool) "phi0 = 1/6" true (R.equal phi.(0) (R.make 1 6));
  Alcotest.(check bool) "phi2 = 2/3" true (R.equal phi.(2) (R.make 2 3));
  Alcotest.(check bool) "exact efficiency" true
    (R.equal (R.sum (Array.to_list phi)) R.one)

let test_restricted () =
  (* Restricting the glove game to {0,2} makes it a two-player market:
     each side gets 1/2. *)
  let g =
    Game.glove ~left:(C.add (C.add C.empty 0) 1) ~right:(C.singleton 2)
  in
  let coalition = C.add (C.add C.empty 0) 2 in
  Alcotest.(check (float 1e-9)) "half" 0.5
    (Exact.restricted g ~coalition ~player:0);
  Alcotest.(check (float 1e-9)) "half" 0.5
    (Exact.restricted g ~coalition ~player:2)

(* --- Monotonicity / supermodularity ------------------------------------------ *)

let test_supermodularity_checks () =
  let carrier = C.add (C.add C.empty 0) 1 in
  Alcotest.(check bool) "unanimity is supermodular" true
    (Game.is_supermodular (Game.unanimity ~players:3 ~carrier));
  Alcotest.(check bool) "unanimity is monotone" true
    (Game.is_monotone (Game.unanimity ~players:3 ~carrier));
  (* The paper's Prop 5.5 game is NOT supermodular. *)
  Alcotest.(check bool) "scheduling game is not supermodular" false
    (Experiments.Worked_examples.prop55_is_supermodular ())

(* --- Banzhaf ------------------------------------------------------------------ *)

let test_banzhaf () =
  (* Additive games: Banzhaf = the weights (every marginal is the weight). *)
  let weights = [| 2.; 5.; 1. |] in
  Alcotest.check floats "additive" weights
    (Exact.banzhaf (Game.additive ~weights));
  (* Glove with two lefts (0,1) and one right (2): marginals computed by
     hand give β = (1/4, 1/4, 3/4). *)
  let g =
    Game.glove ~left:(C.add (C.add C.empty 0) 1) ~right:(C.singleton 2)
  in
  Alcotest.check floats "glove raw" [| 0.25; 0.25; 0.75 |] (Exact.banzhaf g);
  (* Normalized: scaled so the shares sum to v(grand) = 1. *)
  let n = Exact.banzhaf_normalized g in
  Alcotest.(check (float 1e-9)) "normalized sums to v" 1.
    (Array.fold_left ( +. ) 0. n);
  Alcotest.(check (float 1e-9)) "proportions kept" (0.75 /. 1.25) n.(2);
  (* Dummy players get zero; symmetric players get equal values. *)
  let base = random_game ~rng:(Fstats.Rng.create ~seed:51) ~players:3 in
  let with_dummy =
    Game.make ~players:4 (fun c -> Game.value base (C.remove c 3))
  in
  Alcotest.(check (float 1e-9)) "dummy" 0. (Exact.banzhaf with_dummy).(3)

(* --- Sampling ------------------------------------------------------------------ *)

let test_sample_count () =
  (* N = ⌈k²/ε² ln(k/(1−λ))⌉ *)
  let n = Sample.sample_count ~players:5 ~epsilon:0.5 ~confidence:0.9 in
  Alcotest.(check int) "hoeffding bound" 392 n;
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Sample.sample_count: epsilon <= 0") (fun () ->
      ignore (Sample.sample_count ~players:5 ~epsilon:0. ~confidence:0.9))

let test_estimate_additive_exact () =
  (* For an additive game every marginal equals the weight, so even a single
     sampled order recovers the Shapley value exactly. *)
  let weights = [| 2.; 7.; 1. |] in
  let g = Game.additive ~weights in
  let rng = Fstats.Rng.create ~seed:33 in
  Alcotest.check floats "one order suffices" weights (Sample.estimate ~n:1 ~rng g)

let test_estimate_converges () =
  let g =
    Game.glove ~left:(C.add (C.add C.empty 0) 1) ~right:(C.singleton 2)
  in
  let rng = Fstats.Rng.create ~seed:34 in
  let est = Sample.estimate ~n:4000 ~rng g in
  let exact = Exact.subsets g in
  Array.iteri
    (fun u e ->
      Alcotest.(check bool)
        (Printf.sprintf "player %d within 0.05" u)
        true
        (Float.abs (e -. exact.(u)) < 0.05))
    est

let test_plan_structure () =
  let rng = Fstats.Rng.create ~seed:35 in
  let plan = Sample.plan ~rng ~players:4 ~n:10 in
  Alcotest.(check int) "10 orders" 10 (Array.length plan.Sample.orders);
  Array.iteri
    (fun i order ->
      Alcotest.(check (list int))
        (Printf.sprintf "order %d is a permutation" i)
        [ 0; 1; 2; 3 ]
        (List.sort Stdlib.compare (Array.to_list order));
      (* Prefix pairs chain correctly. *)
      let c = ref C.empty in
      Array.iteri
        (fun j u ->
          let before, after = plan.Sample.prefixes.(i).(j) in
          Alcotest.(check int) "before matches chain" !c before;
          Alcotest.(check int) "after adds u" (C.add !c u) after;
          c := after)
        order)
    plan.Sample.orders;
  (* distinct is de-duplicated and covers every coalition in the pairs. *)
  let mem c = Array.exists (fun d -> d = c) plan.Sample.distinct in
  Array.iter
    (Array.iter (fun (b, a) ->
         Alcotest.(check bool) "before in distinct" true (mem b);
         Alcotest.(check bool) "after in distinct" true (mem a)))
    plan.Sample.prefixes;
  let sorted = Array.to_list plan.Sample.distinct in
  Alcotest.(check int) "no duplicates"
    (List.length sorted)
    (List.length (List.sort_uniq Stdlib.compare sorted))

let () =
  Alcotest.run "shapley"
    [
      ( "coalition",
        [
          Alcotest.test_case "basics" `Quick test_coalition_basics;
          Alcotest.test_case "enumeration" `Quick test_subcoalition_enumeration;
        ] );
      ( "exact",
        [
          Alcotest.test_case "additive" `Quick test_additive_game;
          Alcotest.test_case "unanimity" `Quick test_unanimity_game;
          Alcotest.test_case "glove" `Quick test_glove_game;
          Alcotest.test_case "airport" `Quick test_airport_game;
          Alcotest.test_case "weighted majority" `Quick test_weighted_majority;
          Alcotest.test_case "subsets = permutations" `Quick
            test_subsets_vs_permutations;
          Alcotest.test_case "efficiency & dummy" `Quick
            test_efficiency_and_dummy;
          Alcotest.test_case "symmetry" `Quick test_symmetry_axiom;
          Alcotest.test_case "exact rationals" `Quick test_exact_rational;
          Alcotest.test_case "restricted subgame" `Quick test_restricted;
          Alcotest.test_case "supermodularity" `Quick
            test_supermodularity_checks;
          Alcotest.test_case "banzhaf" `Quick test_banzhaf;
        ] );
      ( "sample",
        [
          Alcotest.test_case "hoeffding count" `Quick test_sample_count;
          Alcotest.test_case "additive exact" `Quick
            test_estimate_additive_exact;
          Alcotest.test_case "convergence" `Quick test_estimate_converges;
          Alcotest.test_case "plan structure" `Quick test_plan_structure;
        ] );
    ]
