(* Differential property test of the REF engine: the domain-parallel
   size-staged engine must be BIT-identical to strictly sequential
   execution — same schedule, same utility vectors, zero Δψ between the two
   runs — for both fairness concepts, with and without machine speeds.
   This is the determinism guarantee of DESIGN.md, "Performance
   engineering", checked end-to-end through the driver. *)

open Core

(* Random instances: k in 2..6, optionally related machines. *)
let instance_gen =
  let gen =
    QCheck.Gen.(
      let* norgs = int_range 2 6 in
      let* machines = array_size (return norgs) (int_range 1 2) in
      let* related = bool in
      let* speeds =
        let total = Array.fold_left ( + ) 0 machines in
        array_size (return total) (oneofl [ 0.5; 1.0; 2.0 ])
      in
      let* njobs = int_range 1 20 in
      let* jobs =
        list_size (return njobs)
          (let* org = int_range 0 (norgs - 1) in
           let* release = int_range 0 40 in
           let* size = int_range 1 6 in
           return (org, release, size))
      in
      return (machines, related, speeds, jobs))
  in
  let make (machines, related, speeds, jobs) =
    let jobs =
      List.map
        (fun (org, release, size) -> Job.make ~org ~index:0 ~release ~size ())
        jobs
    in
    if related then Instance.make_related ~speeds ~machines ~jobs ~horizon:120
    else Instance.make ~machines ~jobs ~horizon:120
  in
  let arb =
    QCheck.make
      ~print:(fun raw ->
        Format.asprintf "%a" Instance.pp_detailed (make raw))
      gen
  in
  (arb, make)

let run ~workers ~concept instance =
  Sim.Driver.run ~workers ~instance
    ~rng:(Fstats.Rng.create ~seed:3)
    (Algorithms.Reference.make ~concept ())

let same_schedule a b =
  (* The recorded placement lists must match exactly (machine ids
     included); placements are already sorted by (start, machine). *)
  Schedule.machines a = Schedule.machines b
  && Schedule.placements a = Schedule.placements b

let identical_runs ~concept instance =
  let seq = run ~workers:1 ~concept instance in
  let par = run ~workers:4 ~concept instance in
  let delta, ratio = Sim.Fairness.delta_ratio ~reference:seq par in
  seq.Sim.Driver.utilities_scaled = par.Sim.Driver.utilities_scaled
  && seq.Sim.Driver.parts = par.Sim.Driver.parts
  && seq.Sim.Driver.events = par.Sim.Driver.events
  && same_schedule seq.Sim.Driver.schedule par.Sim.Driver.schedule
  && delta = 0
  && ratio = 0.

let differential_property ~concept ~name =
  let arb, make = instance_gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "parallel REF bit-identical to sequential (%s)" name)
    ~count:40 arb
    (fun raw -> identical_runs ~concept (make raw))

(* Deterministic spot checks at a larger scale than the random draws — the
   exact configuration the ref_scaling bench times. *)
let test_scenario_identical () =
  List.iter
    (fun k ->
      let instance =
        Workload.Scenario.instance
          (Workload.Scenario.default ~norgs:k ~machines:8 ~horizon:6_000
             Workload.Traces.lpc_egee)
          ~seed:21
      in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d scenario" k)
        true
        (identical_runs ~concept:Algorithms.Reference.Shapley_value instance))
    [ 3; 5 ]

let () =
  Alcotest.run "parallel-ref"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            differential_property
              ~concept:Algorithms.Reference.Shapley_value ~name:"shapley";
            differential_property
              ~concept:Algorithms.Reference.Banzhaf_value ~name:"banzhaf";
          ] );
      ( "scenario",
        [
          Alcotest.test_case "bench-scale instances" `Quick
            test_scenario_identical;
        ] );
    ]
