(* Tests for the exact-rational and combinatorics substrate. *)

module R = Numeric.Rational
module C = Numeric.Combinatorics

let rat = Alcotest.testable (Fmt.of_to_string R.to_string) R.equal

(* --- Rational ----------------------------------------------------------- *)

let test_normalization () =
  Alcotest.check rat "6/4 = 3/2" (R.make 3 2) (R.make 6 4);
  Alcotest.check rat "-6/-4 = 3/2" (R.make 3 2) (R.make (-6) (-4));
  Alcotest.check rat "6/-4 = -3/2" (R.make (-3) 2) (R.make 6 (-4));
  Alcotest.check Alcotest.int "den positive" 2 (R.den (R.make 5 (-2)));
  Alcotest.check Alcotest.int "num carries sign" (-5) (R.num (R.make 5 (-2)));
  Alcotest.check rat "0/x = 0" R.zero (R.make 0 17)

let test_zero_den () =
  Alcotest.check_raises "make x 0" R.Division_by_zero (fun () ->
      ignore (R.make 1 0));
  Alcotest.check_raises "inv zero" R.Division_by_zero (fun () ->
      ignore (R.inv R.zero));
  Alcotest.check_raises "div by zero" R.Division_by_zero (fun () ->
      ignore (R.div R.one R.zero))

let test_arithmetic () =
  Alcotest.check rat "1/2 + 1/3 = 5/6" (R.make 5 6)
    (R.add (R.make 1 2) (R.make 1 3));
  Alcotest.check rat "1/2 - 1/3 = 1/6" (R.make 1 6)
    (R.sub (R.make 1 2) (R.make 1 3));
  Alcotest.check rat "2/3 * 3/4 = 1/2" (R.make 1 2)
    (R.mul (R.make 2 3) (R.make 3 4));
  Alcotest.check rat "(2/3) / (4/3) = 1/2" (R.make 1 2)
    (R.div (R.make 2 3) (R.make 4 3));
  Alcotest.check rat "neg" (R.make (-1) 2) (R.neg (R.make 1 2));
  Alcotest.check rat "abs" (R.make 1 2) (R.abs (R.make (-1) 2));
  Alcotest.check rat "mul_int" (R.make 3 2) (R.mul_int (R.make 1 2) 3);
  Alcotest.check rat "div_int" (R.make 1 6) (R.div_int (R.make 1 2) 3)

let test_compare () =
  Alcotest.check Alcotest.bool "1/3 < 1/2" true
    R.Infix.(R.make 1 3 < R.make 1 2);
  Alcotest.check Alcotest.bool "-1/2 < 1/3" true
    R.Infix.(R.make (-1) 2 < R.make 1 3);
  Alcotest.check rat "min" (R.make 1 3) (R.min (R.make 1 3) (R.make 1 2));
  Alcotest.check rat "max" (R.make 1 2) (R.max (R.make 1 3) (R.make 1 2));
  Alcotest.check Alcotest.int "sign neg" (-1) (R.sign (R.make (-3) 7));
  Alcotest.check Alcotest.int "sign zero" 0 (R.sign R.zero)

let test_conversions () =
  Alcotest.check (Alcotest.float 1e-12) "to_float" 0.5
    (R.to_float (R.make 1 2));
  Alcotest.check Alcotest.int "to_int_exn" 7 (R.to_int_exn (R.of_int 7));
  Alcotest.check_raises "to_int_exn non-integer"
    (Invalid_argument "Rational.to_int_exn: not an integer") (fun () ->
      ignore (R.to_int_exn (R.make 1 2)));
  Alcotest.check Alcotest.bool "is_integer" true (R.is_integer (R.make 4 2));
  Alcotest.check Alcotest.string "pp int" "3" (R.to_string (R.make 6 2));
  Alcotest.check Alcotest.string "pp frac" "-3/2" (R.to_string (R.make 3 (-2)))

let test_sum () =
  Alcotest.check rat "sum of 1/i(i+1) telescopes"
    (R.make 9 10)
    (R.sum (List.init 9 (fun i -> R.make 1 ((i + 1) * (i + 2)))))

let small_rat =
  QCheck.map
    (fun (n, d) -> R.make n (1 + abs d))
    QCheck.(pair (int_range (-1000) 1000) (int_range 0 1000))

let qcheck_props =
  [
    QCheck.Test.make ~name:"add commutative" ~count:500
      (QCheck.pair small_rat small_rat) (fun (a, b) ->
        R.equal (R.add a b) (R.add b a));
    QCheck.Test.make ~name:"mul commutative" ~count:500
      (QCheck.pair small_rat small_rat) (fun (a, b) ->
        R.equal (R.mul a b) (R.mul b a));
    QCheck.Test.make ~name:"add associative" ~count:500
      (QCheck.triple small_rat small_rat small_rat) (fun (a, b, c) ->
        R.equal (R.add a (R.add b c)) (R.add (R.add a b) c));
    QCheck.Test.make ~name:"distributivity" ~count:500
      (QCheck.triple small_rat small_rat small_rat) (fun (a, b, c) ->
        R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c)));
    QCheck.Test.make ~name:"sub then add roundtrips" ~count:500
      (QCheck.pair small_rat small_rat) (fun (a, b) ->
        R.equal a (R.add (R.sub a b) b));
    QCheck.Test.make ~name:"nonzero mul/div roundtrips" ~count:500
      (QCheck.pair small_rat small_rat) (fun (a, b) ->
        QCheck.assume (R.sign b <> 0);
        R.equal a (R.mul (R.div a b) b));
    QCheck.Test.make ~name:"compare antisymmetric" ~count:500
      (QCheck.pair small_rat small_rat) (fun (a, b) ->
        R.compare a b = -R.compare b a);
    QCheck.Test.make ~name:"to_float consistent with compare" ~count:500
      (QCheck.pair small_rat small_rat) (fun (a, b) ->
        QCheck.assume (not (R.equal a b));
        Stdlib.compare (R.to_float a) (R.to_float b) = R.compare a b);
  ]

(* --- Combinatorics -------------------------------------------------------- *)

let test_factorial () =
  Alcotest.check Alcotest.int "0!" 1 (C.factorial 0);
  Alcotest.check Alcotest.int "5!" 120 (C.factorial 5);
  Alcotest.check Alcotest.int "20!" 2432902008176640000 (C.factorial 20);
  Alcotest.check_raises "21! overflows"
    (Invalid_argument "Combinatorics.factorial") (fun () ->
      ignore (C.factorial 21));
  Alcotest.check_raises "negative" (Invalid_argument "Combinatorics.factorial")
    (fun () -> ignore (C.factorial (-1)))

let test_binomial () =
  Alcotest.check Alcotest.int "C(5,2)" 10 (C.binomial 5 2);
  Alcotest.check Alcotest.int "C(n,0)" 1 (C.binomial 9 0);
  Alcotest.check Alcotest.int "C(n,n)" 1 (C.binomial 9 9);
  Alcotest.check Alcotest.int "out of range" 0 (C.binomial 5 7);
  Alcotest.check Alcotest.int "negative k" 0 (C.binomial 5 (-1));
  (* Pascal's rule over a small triangle. *)
  for n = 1 to 15 do
    for k = 1 to n - 1 do
      Alcotest.check Alcotest.int
        (Printf.sprintf "pascal %d %d" n k)
        (C.binomial n k)
        (C.binomial (n - 1) (k - 1) + C.binomial (n - 1) k)
    done
  done

let test_shapley_weights () =
  (* For any player, the weights of all sub-coalitions sum to 1:
     Σ_s C(k-1, s) · s!(k-s-1)!/k! = 1. *)
  for k = 1 to 10 do
    let total =
      R.sum
        (List.init k (fun s ->
             R.mul_int (C.shapley_weight ~players:k ~subset:s)
               (C.binomial (k - 1) s)))
    in
    Alcotest.check rat (Printf.sprintf "weights sum to 1 (k=%d)" k) R.one total
  done;
  Alcotest.check rat "update_weight shifts index"
    (C.shapley_weight ~players:5 ~subset:2)
    (C.update_weight ~players:5 ~size:3);
  Alcotest.check (Alcotest.float 1e-15) "float matches rational"
    (R.to_float (C.shapley_weight ~players:7 ~subset:3))
    (C.shapley_weight_float ~players:7 ~subset:3)

let test_permutations_subsets () =
  Alcotest.check Alcotest.int "permutations 4" 24
    (List.length (C.permutations [ 1; 2; 3; 4 ]));
  Alcotest.check Alcotest.int "distinct permutations" 24
    (List.length (List.sort_uniq Stdlib.compare (C.permutations [ 1; 2; 3; 4 ])));
  Alcotest.check Alcotest.int "subsets 5" 32
    (List.length (C.subsets [ 1; 2; 3; 4; 5 ]));
  Alcotest.check Alcotest.bool "subsets distinct" true
    (let s = List.map (List.sort Stdlib.compare) (C.subsets [ 1; 2; 3 ]) in
     List.length (List.sort_uniq Stdlib.compare s) = 8)

let () =
  Alcotest.run "numeric"
    [
      ( "rational",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "zero denominators" `Quick test_zero_den;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "conversions" `Quick test_conversions;
          Alcotest.test_case "sum" `Quick test_sum;
        ] );
      ("rational-properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "combinatorics",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "shapley weights" `Quick test_shapley_weights;
          Alcotest.test_case "permutations & subsets" `Quick
            test_permutations_subsets;
        ] );
    ]
