(* Tests for the experiment harnesses: the worked examples against the
   paper's numbers, and smoke runs of the table/figure pipelines. *)

module WE = Experiments.Worked_examples

let test_figure2_matches_paper () =
  let f = WE.figure2 () in
  Alcotest.(check (float 1e-9)) "psi at 13" 262. f.WE.psi_o1_at_13;
  Alcotest.(check (float 1e-9)) "psi at 14" 297. f.WE.psi_o1_at_14;
  Alcotest.(check int) "flow time" 70 f.WE.flow_time_at_14;
  Alcotest.(check (float 1e-9)) "gain without J(2)1" 4.
    f.WE.gain_without_competitor;
  Alcotest.(check (float 1e-9)) "loss delaying J6" 6. f.WE.loss_delaying_j6;
  Alcotest.(check (float 1e-9)) "loss dropping J9" 10. f.WE.loss_dropping_j9

let test_utilization_rows () =
  List.iter
    (fun (r : WE.utilization_row) ->
      Alcotest.(check (float 1e-9)) "worst is 3/4" 0.75 r.WE.greedy_worst;
      Alcotest.(check (float 1e-9)) "best is optimal" 1.0 r.WE.greedy_best;
      Alcotest.(check (float 1e-9)) "optimum saturates" 1.0 r.WE.optimal;
      Alcotest.(check (float 1e-9)) "tight ratio" 0.75 r.WE.ratio)
    (WE.utilization_sweep [ (2, 2); (4, 3) ])

let test_prop55 () =
  let values = WE.prop55_values () in
  let v mask = List.assoc mask values in
  let c = Shapley.Coalition.add in
  let e = Shapley.Coalition.empty in
  Alcotest.(check (float 1e-9)) "v(a,c)" 4. (v (c (c e 0) 2));
  Alcotest.(check (float 1e-9)) "v(b,c)" 4. (v (c (c e 1) 2));
  Alcotest.(check (float 1e-9)) "v(abc)" 7. (v (c (c (c e 0) 1) 2));
  Alcotest.(check (float 1e-9)) "v(c)" 0. (v (c e 2));
  Alcotest.(check bool) "not supermodular" false (WE.prop55_is_supermodular ())

let tiny_table_config =
  {
    Experiments.Tables.horizon = 5_000;
    instances = 2;
    norgs = 3;
    machines = 6;
    endowment = Workload.Scenario.Uniform;
    algorithms =
      [
        ("rand-15", Algorithms.Rand.rand15);
        ("roundrobin", Algorithms.Baselines.round_robin);
      ];
    models = [ Workload.Traces.ricc ];
    seed = 5;
  }

let test_tables_pipeline () =
  let table = Experiments.Tables.run tiny_table_config in
  Alcotest.(check int) "two rows" 2 (List.length table.Experiments.Tables.rows);
  List.iter
    (fun (_, cells) ->
      Alcotest.(check int) "one model" 1 (List.length cells);
      List.iter
        (fun (_, (cell : Experiments.Tables.cell)) ->
          Alcotest.(check int) "two instances" 2 cell.Experiments.Tables.n;
          Alcotest.(check bool) "ratio non-negative" true
            (cell.Experiments.Tables.mean >= 0.))
        cells)
    table.Experiments.Tables.rows;
  (* CSV has a header plus one line per (algorithm, model). *)
  let csv = Experiments.Tables.to_csv table in
  Alcotest.(check int) "csv lines" 3
    (List.length
       (List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' csv)))

let test_fig10_pipeline () =
  let config =
    {
      (Experiments.Fig10.default_config ~instances:1 ~horizon:5_000
         ~max_orgs:3 ())
      with
      Experiments.Fig10.machines = 6;
      algorithms =
        [
          ("fairshare", Algorithms.Fair_share.fair_share);
          ("roundrobin", Algorithms.Baselines.round_robin);
        ];
    }
  in
  let figure = Experiments.Fig10.run config in
  Alcotest.(check int) "two series" 2
    (List.length figure.Experiments.Fig10.series);
  List.iter
    (fun (s : Experiments.Fig10.series) ->
      Alcotest.(check (list int)) "k = 2, 3"
        [ 2; 3 ]
        (List.map (fun (p : Experiments.Fig10.point) -> p.Experiments.Fig10.norgs)
           s.Experiments.Fig10.points))
    figure.Experiments.Fig10.series

let test_ablations_pipeline () =
  let rows =
    Experiments.Ablations.rand_sample_sweep ~samples:[ 5 ] ~instances:1
      ~horizon:5_000 ~seed:3 ()
  in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check string) "label" "N=5" row.Experiments.Ablations.label;
  Alcotest.(check int) "one algorithm" 1
    (List.length row.Experiments.Ablations.per_algorithm)

let test_hardness_gadget () =
  (* Theorem 5.1's dichotomy holds under REF for every subset of S, and the
     proof's counting comparison answers SUBSETSUM. *)
  let elements = [ 1; 2; 4 ] in
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "dichotomy at x=%d" x)
        true
        (Experiments.Hardness.all_consistent ~elements ~x))
    [ 2; 3 ];
  List.iter
    (fun (x, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "subsetsum x=%d" x)
        expected
        (Experiments.Hardness.subset_sum_exists ~elements ~x);
      Alcotest.(check bool)
        (Printf.sprintf "counting comparison x=%d" x)
        expected
        (Experiments.Hardness.subsets_below ~elements ~x:(x + 1)
        > Experiments.Hardness.subsets_below ~elements ~x))
    [ (3, true); (7, true); (8, false); (6, true); (9, false) ]

let test_decay_sweep () =
  let rows =
    Experiments.Ablations.decay_sweep ~half_lives:[ 1_000. ] ~instances:1
      ~horizon:20_000 ~seed:4 ()
  in
  Alcotest.(check int) "baseline + one half-life" 2 (List.length rows);
  List.iter
    (fun (row : Experiments.Ablations.row) ->
      Alcotest.(check int) "two algorithms" 2
        (List.length row.Experiments.Ablations.per_algorithm))
    rows

let test_estimator_study () =
  let rows =
    Experiments.Estimator_study.run
      (Experiments.Estimator_study.default_config ~trials:60 ())
  in
  Alcotest.(check int) "sweep + hoeffding" 4 (List.length rows);
  let errors = List.map (fun (r : Experiments.Estimator_study.row) -> r.Experiments.Estimator_study.mean_max_abs_err) rows in
  (* Error decreases monotonically in N on this sweep. *)
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "error decreases with N" true (decreasing errors);
  (* The Hoeffding-sized estimator respects the theorem's failure rate. *)
  let hoeffding = List.nth rows 3 in
  Alcotest.(check bool) "violation rate within bound" true
    (float_of_int hoeffding.Experiments.Estimator_study.violations
     /. float_of_int hoeffding.Experiments.Estimator_study.trials
    <= hoeffding.Experiments.Estimator_study.allowed_rate)

let test_stability () =
  let reports = Experiments.Stability.demo ~norgs:3 ~seed:11 () in
  Alcotest.(check int) "four policies" 4 (List.length reports);
  List.iter
    (fun (r : Experiments.Stability.report) ->
      Alcotest.(check int) "2^3 - 2 proper coalitions" 6
        r.Experiments.Stability.coalitions;
      (* Secession can never gain more than the standalone value itself. *)
      Alcotest.(check bool) "excess ratio sane" true
        (r.Experiments.Stability.max_excess_ratio < 1.))
    reports

let test_manipulation_ablation () =
  match Experiments.Ablations.manipulation_sweep () with
  | [ psp; flow ] ->
      Alcotest.(check bool) "splitting futile under psp-fairness" false
        psp.Experiments.Ablations.splitting_pays;
      Alcotest.(check bool) "splitting pays under flow-fairness" true
        flow.Experiments.Ablations.splitting_pays
  | _ -> Alcotest.fail "expected two schedulers"

exception Task_failed of int

let test_pool_map_order () =
  let squares = Core.Domain_pool.map ~workers:2 (fun x -> x * x) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "input order" [ 1; 4; 9; 16; 25 ] squares

let test_pool_map_failure () =
  (* A raising task aborts the map: the first failure (in input order) is
     re-raised on the calling domain, with its backtrace re-attached. *)
  let boom x = if x mod 3 = 0 then raise (Task_failed x) else x in
  Alcotest.check_raises "failure crosses domains" (Task_failed 3) (fun () ->
      ignore (Core.Domain_pool.map ~workers:2 boom [ 1; 2; 3; 4; 5; 6 ]));
  (* workers=1 takes the no-domain path; the exception must still escape. *)
  Alcotest.check_raises "workers=1 fallback" (Task_failed 3) (fun () ->
      ignore (Core.Domain_pool.map ~workers:1 boom [ 1; 2; 3 ]))

let test_parallel_iter () =
  (* Per-index slots: no two tasks share a cell, so the result is
     deterministic however the pool interleaves them. *)
  let check workers =
    let n = 64 in
    let out = Array.make n 0 in
    Core.Domain_pool.parallel_iter ~workers (fun i -> out.(i) <- (i * i) + 1) n;
    Alcotest.(check (array int))
      (Printf.sprintf "workers=%d" workers)
      (Array.init n (fun i -> (i * i) + 1))
      out
  in
  check 1;
  check 2;
  check 4;
  (* The lowest failing index wins, also across domains. *)
  Alcotest.check_raises "exception propagates" (Task_failed 5) (fun () ->
      Core.Domain_pool.parallel_iter ~workers:2
        (fun i -> if i >= 5 then raise (Task_failed i))
        32);
  Alcotest.check_raises "sequential fallback raises too" (Task_failed 5)
    (fun () ->
      Core.Domain_pool.parallel_iter ~workers:1
        (fun i -> if i >= 5 then raise (Task_failed i))
        32)

let test_parallel_iter_nested () =
  (* A task that itself calls parallel_iter must not deadlock: the inner
     call finds the pool busy and runs inline. *)
  let out = Array.make 16 0 in
  Core.Domain_pool.parallel_iter ~workers:2
    (fun i ->
      Core.Domain_pool.parallel_iter ~workers:2
        (fun j -> if j = i mod 4 then out.(i) <- i + j)
        4)
    16;
  Alcotest.(check (array int))
    "nested result"
    (Array.init 16 (fun i -> i + (i mod 4)))
    out

let () =
  Alcotest.run "experiments"
    [
      ( "worked-examples",
        [
          Alcotest.test_case "figure 2" `Quick test_figure2_matches_paper;
          Alcotest.test_case "utilization rows" `Quick test_utilization_rows;
          Alcotest.test_case "prop 5.5" `Quick test_prop55;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "tables" `Quick test_tables_pipeline;
          Alcotest.test_case "fig10" `Quick test_fig10_pipeline;
          Alcotest.test_case "ablations" `Quick test_ablations_pipeline;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map keeps input order" `Quick test_pool_map_order;
          Alcotest.test_case "map propagates failures" `Quick
            test_pool_map_failure;
          Alcotest.test_case "parallel_iter" `Quick test_parallel_iter;
          Alcotest.test_case "parallel_iter nested" `Quick
            test_parallel_iter_nested;
        ] );
      ( "hardness",
        [ Alcotest.test_case "theorem 5.1 gadget" `Quick test_hardness_gadget ]
      );
      ( "manipulation",
        [
          Alcotest.test_case "flow-fairness invites splitting" `Quick
            test_manipulation_ablation;
          Alcotest.test_case "decay sweep" `Quick test_decay_sweep;
          Alcotest.test_case "estimator study (thm 5.6)" `Slow
            test_estimator_study;
          Alcotest.test_case "coalition stability" `Quick test_stability;
        ] );
    ]
