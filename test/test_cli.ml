(* Expect-style checks of the fairsched CLI robustness contract: every user
   error — unknown subcommand, bad flag, failed flag conversion, unreadable
   trace file — exits 2 with a one-line "fairsched: ..." message, never a
   backtrace; successes exit 0. *)

let exe = "../bin/fairsched.exe"

let run_cmd args =
  let cmd = Printf.sprintf "%s %s 2>&1" exe args in
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
  in
  (code, List.rev !lines)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_error args ~expect =
  let code, lines = run_cmd args in
  Alcotest.(check int) (args ^ " exits 2") 2 code;
  Alcotest.(check bool)
    (Printf.sprintf "%s mentions %S" args expect)
    true
    (List.exists (fun l -> contains l expect) lines);
  Alcotest.(check bool)
    (args ^ " prints no backtrace")
    false
    (List.exists (fun l -> contains l "Raised at") lines)

let test_unknown_subcommand () =
  check_error "nosuchcmd" ~expect:"nosuchcmd"

let test_unknown_algorithm () =
  check_error "simulate -a nosuchalgo" ~expect:"unknown algorithm"

let test_unreadable_trace () =
  let code, lines = run_cmd "analyze -f /nonexistent/missing.swf" in
  Alcotest.(check int) "exits 2" 2 code;
  (match lines with
  | [ line ] ->
      Alcotest.(check bool) "one-line fairsched: message" true
        (contains line "fairsched:" && contains line "missing.swf")
  | _ ->
      Alcotest.failf "expected exactly one line of output, got %d"
        (List.length lines))

let test_invalid_flag_values () =
  check_error "churn --mtbf=-5" ~expect:"--mtbf must be positive";
  check_error "churn --mttr=0" ~expect:"--mttr must be positive";
  check_error "table --workers=0" ~expect:"--workers";
  check_error "simulate --horizon=oops" ~expect:"horizon"

let test_malformed_fault_specs () =
  check_error "simulate --faults mtbf:100" ~expect:"missing mttr";
  check_error "simulate --faults mtbf:-3,mttr:5" ~expect:"must be a positive";
  check_error "simulate --faults mtbf:3,mttr:5,dist:zipf" ~expect:"dist";
  check_error "simulate --faults bogus" ~expect:"key:value";
  check_error "simulate --faults mtbf:1,mttr:1,color:red" ~expect:"unknown";
  check_error "timeline --faults mtbf:100" ~expect:"missing mttr"

let test_fault_script_errors () =
  let code, lines =
    run_cmd "simulate --faults-script /nonexistent/x.outages"
  in
  Alcotest.(check int) "missing script exits 2" 2 code;
  Alcotest.(check bool) "names the file" true
    (List.exists (fun l -> contains l "x.outages") lines);
  check_error "simulate --faults mtbf:10,mttr:2 --faults-script fixtures/demo.outages"
    ~expect:"mutually exclusive";
  (* Machine id out of the simulated cluster's range is caught up front. *)
  check_error
    "simulate --orgs 1 --machines 2 --faults-script fixtures/demo.outages"
    ~expect:"out of range"

(* Fault injection through the CLI runs end to end and reports the kernel
   counters. *)
let test_faults_end_to_end () =
  let code, lines =
    run_cmd
      "simulate -a fifo --orgs 2 --horizon 2000 --machines 4 --faults \
       mtbf:300,mttr:60 --max-restarts 2"
  in
  Alcotest.(check int) "simulate --faults exits 0" 0 code;
  let all = String.concat "\n" lines in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("output has " ^ needle) true (contains all needle))
    [ "faults:"; "failures"; "kernel:"; "kills=" ];
  let code, lines =
    run_cmd
      "simulate -a fifo --horizon 2000 --machines 16 --faults-script \
       fixtures/demo.outages"
  in
  Alcotest.(check int) "simulate --faults-script exits 0" 0 code;
  Alcotest.(check bool) "reports the scripted downtime" true
    (contains (String.concat "\n" lines) "3 failures, 3 recoveries")

(* `--estimator` specs are part of the persistent interface (they double as
   algorithm names in service configs), so malformed ones must die with the
   standard exit-2 one-liner — naming what is wrong — before any work. *)
let test_malformed_estimator_specs () =
  check_error "simulate --estimator rand:" ~expect:"missing EPS,CONF";
  check_error "simulate --estimator rand:0.5" ~expect:"missing confidence";
  check_error "simulate --estimator rand:0.5,1.5"
    ~expect:"strictly between 0 and 1";
  check_error "simulate --estimator rand:0.5,0" ~expect:"strictly between";
  check_error "simulate --estimator rand:-1,0.9" ~expect:"EPS must be > 0";
  check_error "simulate --estimator rand:x,0.9" ~expect:"EPS is not a number";
  check_error "simulate --estimator rand:0.5,0.9,7" ~expect:"too many commas";
  check_error "simulate --estimator rand-0" ~expect:"must be positive";
  check_error "simulate --estimator bogus" ~expect:"unknown estimator";
  check_error "serve --estimator rand:0.5" ~expect:"missing confidence";
  (* The cache toggle only exists for estimator-backed algorithms. *)
  check_error "simulate -a fifo --no-value-cache" ~expect:"--no-value-cache"

let test_estimator_end_to_end () =
  let code, lines =
    run_cmd
      "simulate --estimator rand:0.5,0.9 --orgs 6 --machines 12 --horizon \
       2000"
  in
  Alcotest.(check int) "sampled estimator exits 0" 0 code;
  let all = String.concat "\n" lines in
  Alcotest.(check bool) "reports the resolved sample count" true
    (contains all "sampled joining orders at k=6");
  Alcotest.(check bool) "policy is named by its spec" true
    (contains all "rand:0.5,0.9");
  let code, lines =
    run_cmd
      "simulate --estimator exact --no-value-cache --orgs 3 --machines 6 \
       --horizon 2000"
  in
  Alcotest.(check int) "exact estimator with cache off exits 0" 0 code;
  Alcotest.(check bool) "exact resolves to ref" true
    (contains (String.concat "\n" lines) "ref")

let test_success_paths () =
  let code, lines = run_cmd "algorithms" in
  Alcotest.(check int) "algorithms exits 0" 0 code;
  Alcotest.(check bool) "lists ref" true
    (List.exists (fun l -> contains l "ref") lines);
  let code, _ = run_cmd "--help" in
  Alcotest.(check int) "--help exits 0" 0 code

(* The churn study runs end-to-end on a micro-scenario and reports the
   kill/abandon counters. *)
let test_churn_end_to_end () =
  let code, lines =
    run_cmd
      "churn --orgs 2 --machines 3 --horizon 400 --instances 1 \
       --intensities 0,2 --mtbf 100 --mttr 20 --workers 1 --seed 7"
  in
  Alcotest.(check int) "churn exits 0" 0 code;
  let all = String.concat "\n" lines in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("output has " ^ needle) true (contains all needle))
    [ "killed"; "abandoned"; "wasted"; "downtime"; "ref"; "fairshare" ]

(* --- observability flags ----------------------------------------------- *)

let test_obs_happy_path () =
  let trace = Filename.temp_file "cli_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists trace then Sys.remove trace)
    (fun () ->
      let code, lines =
        run_cmd
          (Printf.sprintf
             "simulate --orgs 3 --machines 6 --horizon 2000 --workers 2 \
              --seed 5 --trace %s --metrics"
             trace)
      in
      let all = String.concat "\n" lines in
      Alcotest.(check int) "traced simulate exits 0" 0 code;
      Alcotest.(check bool) "reports the trace file" true
        (contains all ("wrote " ^ trace));
      (* Bare --metrics prints the registry to stdout. *)
      Alcotest.(check bool) "metrics on stdout" true
        (contains all "kernel.round_latency_ns");
      Alcotest.(check bool) "job-wait histogram present" true
        (contains all "sim.job_wait");
      let vcode, vlines = run_cmd ("validate-trace " ^ trace) in
      Alcotest.(check int) "validate-trace exits 0" 0 vcode;
      Alcotest.(check bool) "validator says ok" true
        (List.exists (fun l -> contains l "ok:") vlines))

let test_obs_unwritable_paths () =
  (* Fail fast, before the simulation runs: both flags pre-open the file. *)
  check_error
    "simulate --orgs 2 --machines 2 --horizon 500 --trace \
     /nonexistent/dir/t.json"
    ~expect:"fairsched:";
  check_error
    "simulate --orgs 2 --machines 2 --horizon 500 \
     --metrics=/nonexistent/dir/m.json"
    ~expect:"fairsched:"

let test_validate_trace_rejects_garbage () =
  (* A non-JSON file exits 2 with a one-line parse error. *)
  check_error "validate-trace fixtures/demo.outages" ~expect:"fairsched:";
  check_error "validate-trace /nonexistent/missing.json" ~expect:"fairsched:"

(* --- service flags ------------------------------------------------------ *)

let test_service_flag_errors () =
  (* Malformed listen/target addresses fail in the cmdliner conv. *)
  check_error "serve --listen tcp:host" ~expect:"HOST:PORT";
  check_error "serve --listen tcp:host:99999" ~expect:"port";
  check_error "status --to nonsense" ~expect:"nonsense";
  (* Malformed load-generation rate. *)
  check_error "loadgen --rate=-3" ~expect:"--rate must be >= 0";
  check_error "loadgen --rate=oops" ~expect:"--rate must be >= 0";
  check_error "loadgen --count=0" ~expect:"--count";
  (* Admission-queue and algorithm validation happen before binding. *)
  check_error "serve --queue-cap=0" ~expect:"--queue-cap";
  check_error "serve -a nosuchalgo" ~expect:"unknown algorithm";
  (* An unwritable state dir is a startup error, not a crash. *)
  check_error "serve --listen /tmp/cli-test-unused.sock --state \
               /nonexistent/deep/state"
    ~expect:"fairsched:"

(* Chaos/degrade plans are validated before the daemon binds anything. *)
let test_chaos_flag_errors () =
  check_error "serve --chaos explode@wal-append" ~expect:"unknown action";
  check_error "serve --chaos crash" ~expect:"ACTION@TARGET";
  check_error "serve --chaos crash@x:0" ~expect:"bad hit count";
  check_error "serve --degrade nosuchestimator" ~expect:"unknown --degrade"

(* --- durability inspection (ctl wal-check) ------------------------------ *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_scratch_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fairsched-cli-wal-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e ->
          try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let wal_header =
  "{\"fairsched_wal\":1,\"config\":{\"machines\":[2,2],\"horizon\":1000,\"algorithm\":\"fifo\",\"seed\":1}}\n"

let submit_line seq =
  Printf.sprintf
    "{\"rec\":\"submit\",\"seq\":%d,\"org\":0,\"user\":0,\"release\":%d,\"size\":1}\n"
    seq seq

(* The offline inspector's exit-code contract: 0 for an intact log
   (a torn tail is a survivable crash artifact, diagnosed but fine),
   2 with a typed one-liner naming the damage for anything corrupt. *)
let test_wal_check () =
  with_scratch_dir @@ fun dir ->
  let wal = Filename.concat dir "wal.ndjson" in
  write_file wal (wal_header ^ submit_line 1 ^ submit_line 2);
  let code, lines = run_cmd ("ctl wal-check " ^ wal) in
  Alcotest.(check int) "intact wal exits 0" 0 code;
  let all = String.concat "\n" lines in
  Alcotest.(check bool) "counts the records" true (contains all "2 submit");
  Alcotest.(check bool) "no gaps" true (contains all "seq gaps: none");
  write_file wal (wal_header ^ submit_line 1 ^ "{\"rec\":\"submit\",\"se");
  let code, lines = run_cmd ("ctl wal-check " ^ wal) in
  Alcotest.(check int) "torn tail exits 0" 0 code;
  Alcotest.(check bool) "torn tail diagnosed" true
    (contains (String.concat "\n" lines) "torn tail: line 3");
  write_file wal (wal_header ^ "garbage\n" ^ submit_line 2);
  let code, lines = run_cmd ("ctl wal-check " ^ wal) in
  Alcotest.(check int) "corrupt middle exits 2" 2 code;
  Alcotest.(check bool) "names line and offset" true
    (contains (String.concat "\n" lines) "corrupt at line 2");
  check_error "ctl wal-check" ~expect:"FILE";
  check_error "ctl wal-check /nonexistent/wal.ndjson" ~expect:"fairsched:"

(* A sharded state dir holds one wal-<g>/ segment per org-group, each
   with the same global config in its header; wal-check inspects every
   segment and fails the whole inspection if any one is corrupt. *)
let grouped_wal_header =
  "{\"fairsched_wal\":1,\"config\":{\"machines\":[2,2],\"horizon\":1000,\"algorithm\":\"fifo\",\"seed\":1,\"groups\":2}}\n"

let test_wal_check_segmented () =
  with_scratch_dir @@ fun dir ->
  let seg g = Filename.concat dir (Printf.sprintf "wal-%d" g) in
  Unix.mkdir (seg 0) 0o700;
  Unix.mkdir (seg 1) 0o700;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun g ->
          Array.iter
            (fun e ->
              try Sys.remove (Filename.concat (seg g) e) with Sys_error _ -> ())
            (try Sys.readdir (seg g) with Sys_error _ -> [||]);
          try Unix.rmdir (seg g) with Unix.Unix_error _ -> ())
        [ 0; 1 ])
    (fun () ->
      write_file
        (Filename.concat (seg 0) "wal.ndjson")
        (grouped_wal_header ^ submit_line 1 ^ submit_line 2);
      write_file
        (Filename.concat (seg 1) "wal.ndjson")
        (grouped_wal_header
        ^ "{\"rec\":\"submit\",\"seq\":1,\"org\":1,\"user\":0,\"release\":3,\"size\":1}\n"
        );
      let code, lines = run_cmd ("ctl wal-check " ^ dir) in
      let all = String.concat "\n" lines in
      Alcotest.(check int) "intact segments exit 0" 0 code;
      Alcotest.(check bool) "reports segment 0" true (contains all "segment 0");
      Alcotest.(check bool) "reports segment 1" true (contains all "segment 1");
      write_file
        (Filename.concat (seg 1) "wal.ndjson")
        (grouped_wal_header ^ "garbage\n" ^ submit_line 2);
      let code, lines = run_cmd ("ctl wal-check " ^ dir) in
      Alcotest.(check int) "one corrupt segment exits 2" 2 code;
      Alcotest.(check bool) "names the corrupt count" true
        (contains (String.concat "\n" lines) "1 of 2 segments corrupt"))

(* `--json` is the machine-readable face of the same inspection: one JSON
   document with a per-segment status array, same exit codes (0 intact,
   2 corrupt), and a typed record naming the damage — offset and all. *)
let parse_json lines =
  match Obs.Json.of_string (String.concat "\n" lines) with
  | Ok j -> j
  | Error e ->
      Alcotest.failf "wal-check --json output does not parse: %s" e

let segments doc =
  match Option.bind (Obs.Json.member doc "segments") Obs.Json.get_list with
  | Some segs -> segs
  | None -> Alcotest.fail "wal-check --json lacks a segments array"

let seg_field seg name = Obs.Json.member seg name

let test_wal_check_json () =
  with_scratch_dir @@ fun dir ->
  let wal = Filename.concat dir "wal.ndjson" in
  write_file wal (wal_header ^ submit_line 1 ^ submit_line 2);
  let code, lines = run_cmd ("ctl wal-check --json " ^ wal) in
  Alcotest.(check int) "intact wal exits 0" 0 code;
  (match segments (parse_json lines) with
  | [ seg ] ->
      Alcotest.(check bool) "status ok" true
        (seg_field seg "status" = Some (Obs.Json.String "ok"));
      Alcotest.(check bool) "kind wal" true
        (seg_field seg "kind" = Some (Obs.Json.String "wal"));
      Alcotest.(check bool) "counts submits" true
        (seg_field seg "submits" = Some (Obs.Json.Int 2));
      Alcotest.(check bool) "no torn tail field" true
        (seg_field seg "torn_tail" = None)
  | segs -> Alcotest.failf "expected 1 segment, got %d" (List.length segs));
  (* A torn tail is a survivable crash artifact: still exit 0, but the
     record carries the cut point. *)
  write_file wal (wal_header ^ submit_line 1 ^ "{\"rec\":\"submit\",\"se");
  let code, lines = run_cmd ("ctl wal-check --json " ^ wal) in
  Alcotest.(check int) "torn tail exits 0" 0 code;
  (match segments (parse_json lines) with
  | [ seg ] ->
      Alcotest.(check bool) "torn tail recorded" true
        (match seg_field seg "torn_tail" with
        | Some tt -> Obs.Json.member tt "line" = Some (Obs.Json.Int 3)
        | None -> false)
  | segs -> Alcotest.failf "expected 1 segment, got %d" (List.length segs));
  (* Mid-log garbage is corruption: exit 2 AND a typed record naming the
     line, byte offset, and reason. *)
  write_file wal (wal_header ^ "garbage\n" ^ submit_line 2);
  let code, lines = run_cmd ("ctl wal-check --json " ^ wal) in
  Alcotest.(check int) "corrupt exits 2" 2 code;
  match segments (parse_json lines) with
  | [ seg ] ->
      Alcotest.(check bool) "status corrupt" true
        (seg_field seg "status" = Some (Obs.Json.String "corrupt"));
      Alcotest.(check bool) "names line 2" true
        (seg_field seg "line" = Some (Obs.Json.Int 2));
      Alcotest.(check bool) "carries a byte offset" true
        (match seg_field seg "offset" with
        | Some (Obs.Json.Int n) -> n > 0
        | _ -> false);
      Alcotest.(check bool) "carries a reason" true
        (match seg_field seg "reason" with
        | Some (Obs.Json.String _) -> true
        | _ -> false)
  | segs -> Alcotest.failf "expected 1 segment, got %d" (List.length segs)

let test_wal_check_json_segmented () =
  with_scratch_dir @@ fun dir ->
  let seg_dir g = Filename.concat dir (Printf.sprintf "wal-%d" g) in
  Unix.mkdir (seg_dir 0) 0o700;
  Unix.mkdir (seg_dir 1) 0o700;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun g ->
          Array.iter
            (fun e ->
              try Sys.remove (Filename.concat (seg_dir g) e)
              with Sys_error _ -> ())
            (try Sys.readdir (seg_dir g) with Sys_error _ -> [||]);
          try Unix.rmdir (seg_dir g) with Unix.Unix_error _ -> ())
        [ 0; 1 ])
    (fun () ->
      write_file
        (Filename.concat (seg_dir 0) "wal.ndjson")
        (grouped_wal_header ^ submit_line 1 ^ submit_line 2);
      write_file
        (Filename.concat (seg_dir 1) "wal.ndjson")
        (grouped_wal_header ^ "garbage\n" ^ submit_line 2);
      let code, lines = run_cmd ("ctl wal-check --json " ^ dir) in
      Alcotest.(check int) "one corrupt segment exits 2" 2 code;
      match segments (parse_json lines) with
      | [ s0; s1 ] ->
          (* Each entry is tagged with its org-group. *)
          Alcotest.(check bool) "segment 0 tagged and ok" true
            (seg_field s0 "group" = Some (Obs.Json.Int 0)
            && seg_field s0 "status" = Some (Obs.Json.String "ok"));
          Alcotest.(check bool) "segment 1 tagged and corrupt" true
            (seg_field s1 "group" = Some (Obs.Json.Int 1)
            && seg_field s1 "status" = Some (Obs.Json.String "corrupt"))
      | segs -> Alcotest.failf "expected 2 segments, got %d" (List.length segs))

let test_service_unreachable_daemon () =
  (* Clients against a daemon that is not there: exit 2, one-line message. *)
  check_error "status --to unix:/nonexistent/no-daemon.sock"
    ~expect:"cannot reach daemon";
  check_error "submit --to unix:/nonexistent/no-daemon.sock --org 0 --size 1"
    ~expect:"cannot reach daemon";
  check_error "ctl psi --to unix:/nonexistent/no-daemon.sock"
    ~expect:"cannot reach daemon"

let () =
  Alcotest.run "cli"
    [
      ( "robustness",
        [
          Alcotest.test_case "unknown subcommand" `Quick
            test_unknown_subcommand;
          Alcotest.test_case "unknown algorithm" `Quick test_unknown_algorithm;
          Alcotest.test_case "unreadable trace" `Quick test_unreadable_trace;
          Alcotest.test_case "invalid flag values" `Quick
            test_invalid_flag_values;
          Alcotest.test_case "malformed fault specs" `Quick
            test_malformed_fault_specs;
          Alcotest.test_case "fault script errors" `Quick
            test_fault_script_errors;
          Alcotest.test_case "fault injection end to end" `Quick
            test_faults_end_to_end;
          Alcotest.test_case "malformed estimator specs" `Quick
            test_malformed_estimator_specs;
          Alcotest.test_case "estimator end to end" `Quick
            test_estimator_end_to_end;
          Alcotest.test_case "success paths" `Quick test_success_paths;
        ] );
      ( "churn",
        [ Alcotest.test_case "end to end" `Quick test_churn_end_to_end ] );
      ( "observability",
        [
          Alcotest.test_case "trace + metrics happy path" `Quick
            test_obs_happy_path;
          Alcotest.test_case "unwritable output paths" `Quick
            test_obs_unwritable_paths;
          Alcotest.test_case "validate-trace rejects garbage" `Quick
            test_validate_trace_rejects_garbage;
        ] );
      ( "service",
        [
          Alcotest.test_case "flag errors" `Quick test_service_flag_errors;
          Alcotest.test_case "chaos flag errors" `Quick test_chaos_flag_errors;
          Alcotest.test_case "wal-check" `Quick test_wal_check;
          Alcotest.test_case "wal-check-segmented" `Quick
            test_wal_check_segmented;
          Alcotest.test_case "wal-check --json" `Quick test_wal_check_json;
          Alcotest.test_case "wal-check --json segmented" `Quick
            test_wal_check_json_segmented;
          Alcotest.test_case "unreachable daemon" `Quick
            test_service_unreachable_daemon;
        ] );
    ]
