(* The approximation tier (DESIGN.md §13), differentially tested:

   - the sampled RAND estimator's deviation from the exact Shapley value
     stays within the Theorem 5.6 tolerance ε/k·v(grand) at small k, at the
     rate the confidence parameter promises (checked across many seeds: the
     bound is probabilistic, so single runs may violate it — the *rate*
     must not exceed 1 − confidence, with binomial slack);

   - the cross-instant coalition-value cache is a pure optimization: REF
     and RAND schedules are BIT-identical with the cache on and off, for
     random instances, sequential and parallel alike (the cached value is
     an exact integer polynomial — Tracker.coeffs_scaled — so this is an
     identity, not a tolerance). *)

open Core

(* --- Hoeffding bound across seeds -------------------------------------- *)

let test_bound_across_seeds () =
  let epsilon = 0.5 and confidence = 0.9 in
  let seeds = 30 in
  let violations = ref 0 and checked = ref 0 in
  List.iter
    (fun k ->
      for seed = 1 to seeds do
        let r =
          Experiments.Approx.audit_one ~k ~jobs_per_org:6 ~at:10 ~epsilon
            ~confidence ~seed:(seed * 7919)
        in
        incr checked;
        if not r.Experiments.Approx.within_bound then incr violations
      done)
    [ 4; 5; 6 ];
  (* Violation probability per audit is at most 1 − confidence = 0.1; allow
     the binomial mean plus 4σ so the test only fires on a genuinely broken
     estimator, never on sampling luck. *)
  let n = float_of_int !checked in
  let p = 1. -. confidence in
  let limit = (n *. p) +. (4. *. sqrt (n *. p *. (1. -. p))) in
  if float_of_int !violations > limit then
    Alcotest.failf "bound violated %d/%d times (allowed ~%.0f)" !violations
      !checked limit

(* --- cache on/off bit-identity ----------------------------------------- *)

(* Random small instances, same shape as test_parallel_ref. *)
let instance_gen =
  let gen =
    QCheck.Gen.(
      let* norgs = int_range 2 6 in
      let* machines = array_size (return norgs) (int_range 1 2) in
      let* njobs = int_range 1 20 in
      let* jobs =
        list_size (return njobs)
          (let* org = int_range 0 (norgs - 1) in
           let* release = int_range 0 40 in
           let* size = int_range 1 6 in
           return (org, release, size))
      in
      return (machines, jobs))
  in
  let make (machines, jobs) =
    let jobs =
      List.map
        (fun (org, release, size) -> Job.make ~org ~index:0 ~release ~size ())
        jobs
    in
    Instance.make ~machines ~jobs ~horizon:120
  in
  let arb =
    QCheck.make
      ~print:(fun raw -> Format.asprintf "%a" Instance.pp_detailed (make raw))
      gen
  in
  (arb, make)

let identical a b =
  a.Sim.Driver.utilities_scaled = b.Sim.Driver.utilities_scaled
  && a.Sim.Driver.parts = b.Sim.Driver.parts
  && a.Sim.Driver.events = b.Sim.Driver.events
  && Schedule.placements a.Sim.Driver.schedule
     = Schedule.placements b.Sim.Driver.schedule

let run_ref ~workers ~value_cache instance =
  Sim.Driver.run ~workers ~instance
    ~rng:(Fstats.Rng.create ~seed:3)
    (Algorithms.Reference.make ~value_cache ())

let run_rand ~value_cache instance =
  Sim.Driver.run ~workers:1 ~instance
    ~rng:(Fstats.Rng.create ~seed:3)
    (Algorithms.Rand.rand ~value_cache ~n:15)

let qcheck_ref_cache_identity =
  let arb, make = instance_gen in
  QCheck.Test.make ~count:40
    ~name:"REF value-cache on/off bit-identical (seq + par)" arb (fun raw ->
      let instance = make raw in
      let on = run_ref ~workers:1 ~value_cache:true instance in
      let off = run_ref ~workers:1 ~value_cache:false instance in
      let par_on = run_ref ~workers:4 ~value_cache:true instance in
      let par_off = run_ref ~workers:4 ~value_cache:false instance in
      identical on off && identical on par_on && identical on par_off)

let qcheck_rand_cache_identity =
  let arb, make = instance_gen in
  QCheck.Test.make ~count:40 ~name:"RAND value-cache on/off bit-identical" arb
    (fun raw ->
      let instance = make raw in
      identical
        (run_rand ~value_cache:true instance)
        (run_rand ~value_cache:false instance))

(* The polynomial evaluated by the cache must agree with the direct tracker
   fold at every query instant, not just end-to-end: check Coalition_sim's
   coefficients directly on a stepped simulation. *)
let test_coeffs_agree () =
  let jobs =
    List.concat_map
      (fun org ->
        List.init 5 (fun i ->
            Job.make ~org ~index:i ~release:(2 * i) ~size:(1 + (i mod 3)) ()))
      [ 0; 1; 2 ]
  in
  let instance = Instance.make ~machines:[| 1; 1; 1 |] ~jobs ~horizon:40 in
  let sim = Algorithms.Coalition_sim.create ~instance ~members:0b111 () in
  List.iter (Algorithms.Coalition_sim.add_release sim) jobs;
  let last_epoch = ref (-1) in
  for t = 0 to 30 do
    Algorithms.Coalition_sim.advance_to sim ~time:t
      ~select:Algorithms.Baselines.fifo_select_sim;
    let a, b, c = Algorithms.Coalition_sim.value_coeffs sim in
    let e = Algorithms.Coalition_sim.epoch sim in
    Alcotest.(check int)
      (Printf.sprintf "polynomial = value_scaled at t=%d" t)
      (Algorithms.Coalition_sim.value_scaled sim ~at:t)
      ((((a * t) + b) * t) + c);
    Alcotest.(check bool) "epoch monotone" true (e >= !last_epoch);
    last_epoch := e
  done

let () =
  Alcotest.run "approx"
    [
      ( "hoeffding",
        [
          Alcotest.test_case "sampled error within bound across seeds" `Quick
            test_bound_across_seeds;
        ] );
      ( "value-cache",
        [
          QCheck_alcotest.to_alcotest qcheck_ref_cache_identity;
          QCheck_alcotest.to_alcotest qcheck_rand_cache_identity;
          Alcotest.test_case "coefficients match value_scaled" `Quick
            test_coeffs_agree;
        ] );
    ]
