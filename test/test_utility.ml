(* Tests for ψsp (Theorem 4.1 / Equation 3), its axioms, the incremental
   tracker, and the classic metrics. *)

open Core
module Psp = Utility.Psp
module Tracker = Utility.Tracker
module Metrics = Utility.Metrics

(* --- Closed form ------------------------------------------------------- *)

let test_piece_values () =
  (* A unit job in slot s is worth (t - s) at time t. *)
  Alcotest.(check int) "unit at 0, t=5" (2 * 5) (Psp.piece_scaled ~start:0 ~size:1 ~at:5);
  Alcotest.(check int) "unit at 4, t=5" 2 (Psp.piece_scaled ~start:4 ~size:1 ~at:5);
  (* Not yet started / started at t: worth 0. *)
  Alcotest.(check int) "future job" 0 (Psp.piece_scaled ~start:5 ~size:3 ~at:5);
  (* Completed job (s=0, p=3, t=13): 3·(13-1) = 36. *)
  Alcotest.(check int) "fig2 J1" (2 * 36) (Psp.piece_scaled ~start:0 ~size:3 ~at:13);
  (* Running job: only executed parts count: (s=10, p=4, t=13) → 3·(13-11)=6. *)
  Alcotest.(check int) "fig2 J9 partial" (2 * 6)
    (Psp.piece_scaled ~start:10 ~size:4 ~at:13);
  (* Explicit sum-of-parts cross-check: Σ_{i=s}^{min(s+p-1,t-1)} (t-i). *)
  let brute ~start ~size ~at =
    let total = ref 0 in
    for i = start to Stdlib.min (start + size - 1) (at - 1) do
      if i >= 0 then total := !total + (at - i)
    done;
    2 * !total
  in
  for start = 0 to 6 do
    for size = 1 to 6 do
      for at = 0 to 12 do
        Alcotest.(check int)
          (Printf.sprintf "brute s=%d p=%d t=%d" start size at)
          (brute ~start ~size ~at)
          (Psp.piece_scaled ~start ~size ~at)
      done
    done
  done

let test_figure2 () =
  let pieces = Experiments.Worked_examples.figure2_schedule () in
  Alcotest.(check int) "psi at 13" (2 * 262) (Psp.of_pieces_scaled pieces ~at:13);
  Alcotest.(check int) "psi at 14" (2 * 297) (Psp.of_pieces_scaled pieces ~at:14)

(* --- Axioms (Section 4) -------------------------------------------------- *)

let piece_gen =
  QCheck.map
    (fun (s, p) -> (s, p))
    QCheck.(pair (int_range 0 50) (int_range 1 20))

let qcheck_strategy_resistance =
  (* ψ(σ ∪ {(s,p1)}) + ψ(σ ∪ {(s+p1,p2)}) = ψ(σ ∪ {(s,p1+p2)}) + ψ(σ):
     merging or splitting jobs never changes the utility, at any time. *)
  QCheck.Test.make ~name:"strategy-resistance (merge/split)" ~count:2000
    QCheck.(triple piece_gen (int_range 1 20) (int_range 0 100))
    (fun ((s, p1), p2, at) ->
      Psp.piece_scaled ~start:s ~size:p1 ~at
      + Psp.piece_scaled ~start:(s + p1) ~size:p2 ~at
      = Psp.piece_scaled ~start:s ~size:(p1 + p2) ~at)

let qcheck_start_anonymity =
  (* Delaying a completed job of size p by one slot costs exactly p,
     independently of the job's identity or the rest of the schedule. *)
  QCheck.Test.make ~name:"start-time anonymity" ~count:2000 piece_gen
    (fun (s, p) ->
      let at = s + p + 2 in
      Psp.piece_scaled ~start:s ~size:p ~at
      - Psp.piece_scaled ~start:(s + 1) ~size:p ~at
      = 2 * p)

let qcheck_task_anonymity =
  (* Adding a (s,p) piece increases ψ by an amount independent of the rest
     of the schedule (additivity over pieces). *)
  QCheck.Test.make ~name:"task-count anonymity (additivity)" ~count:500
    QCheck.(pair (small_list piece_gen) piece_gen)
    (fun (sigma, (s, p)) ->
      let at = 100 in
      Psp.of_pieces_scaled ((s, p) :: sigma) ~at
      - Psp.of_pieces_scaled sigma ~at
      = Psp.piece_scaled ~start:s ~size:p ~at)

let qcheck_delay_never_profits =
  QCheck.Test.make ~name:"delaying is never profitable" ~count:1000
    QCheck.(triple piece_gen (int_range 1 10) (int_range 0 120))
    (fun ((s, p), d, at) ->
      Psp.piece_scaled ~start:s ~size:p ~at
      >= Psp.piece_scaled ~start:(s + d) ~size:p ~at)

let test_prop42_flow_time_equivalence () =
  (* For equal-size jobs all completed before t:
     ψsp = constant − p · flow_time. *)
  let rng = Fstats.Rng.create ~seed:20 in
  for _ = 1 to 200 do
    let p = 1 + Fstats.Rng.int rng 5 in
    let n = 1 + Fstats.Rng.int rng 6 in
    let jobs =
      List.init n (fun i ->
          let release = Fstats.Rng.int rng 10 in
          let start = release + Fstats.Rng.int rng 10 in
          (i, release, start))
    in
    let at = 200 in
    let pieces = List.map (fun (_, _, s) -> (s, p)) jobs in
    let psi = float_of_int (Psp.of_pieces_scaled pieces ~at) /. 2. in
    let flow =
      List.fold_left (fun acc (_, r, s) -> acc + (s + p - r)) 0 jobs
    in
    let releases = List.map (fun (_, r, _) -> r) jobs in
    let expected =
      Psp.flow_time_equiv_constant ~sizes:p ~count:n ~releases ~at
      -. (float_of_int p *. float_of_int flow)
    in
    Alcotest.(check (float 1e-6)) "prop 4.2 identity" expected psi
  done

(* --- Tracker ------------------------------------------------------------- *)

let test_tracker_matches_closed_form () =
  (* Simulate random start/complete event sequences and compare the tracker
     against the closed form at every step. *)
  let rng = Fstats.Rng.create ~seed:21 in
  for _ = 1 to 100 do
    let tracker = Tracker.create () in
    let started = ref [] in
    (* (key, start, size) *)
    let active = ref [] in
    let now = ref 0 in
    let key = ref 0 in
    for _ = 1 to 30 do
      now := !now + Fstats.Rng.int rng 5;
      (* Complete any active pieces whose end has passed. *)
      let due, still =
        List.partition (fun (_, s, p) -> s + p <= !now) !active
      in
      List.iter (fun (k, _, p) -> Tracker.on_complete tracker ~key:k ~size:p) due;
      active := still;
      (* Maybe start a new piece now. *)
      if Fstats.Rng.bool rng then begin
        let p = 1 + Fstats.Rng.int rng 6 in
        incr key;
        Tracker.on_start tracker ~key:!key ~start:!now;
        started := (!key, !now, p) :: !started;
        active := (!key, !now, p) :: !active
      end;
      (* The tracker treats still-running pieces as running; the closed form
         must see the same truncation, so evaluate both at [!now]. *)
      let expected =
        List.fold_left
          (fun acc (k, s, p) ->
            let running =
              List.exists (fun (k', _, _) -> k' = k) !active
            in
            let visible = if running then Stdlib.min p (!now - s) else p in
            if visible <= 0 then acc
            else acc + Psp.piece_scaled ~start:s ~size:visible ~at:!now)
          0 !started
      in
      Alcotest.(check int) "tracker = closed form" expected
        (Tracker.value_scaled tracker ~at:!now)
    done
  done

let test_tracker_parts_and_errors () =
  let t = Tracker.create () in
  Tracker.on_start t ~key:1 ~start:0;
  Tracker.on_start t ~key:2 ~start:3;
  Alcotest.(check int) "parts mid-run" (5 + 2) (Tracker.parts t ~at:5);
  Alcotest.(check int) "active" 2 (Tracker.active_count t);
  Tracker.on_complete t ~key:1 ~size:5;
  Alcotest.(check int) "parts after completion" (5 + 2) (Tracker.parts t ~at:5);
  Alcotest.check_raises "unknown key"
    (Invalid_argument "Tracker.on_complete: unknown key") (fun () ->
      Tracker.on_complete t ~key:99 ~size:1);
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Tracker.on_start: duplicate active key") (fun () ->
      Tracker.on_start t ~key:2 ~start:4)

(* --- Metrics --------------------------------------------------------------- *)

let test_metrics () =
  let j1 = Job.make ~org:0 ~index:0 ~release:0 ~size:3 () in
  let j2 = Job.make ~org:0 ~index:1 ~release:1 ~size:2 () in
  let j3 = Job.make ~org:1 ~index:0 ~release:2 ~size:4 () in
  let placements =
    [
      Schedule.placement ~job:j1 ~start:0 ~machine:0 ();
      Schedule.placement ~job:j2 ~start:3 ~machine:0 ();
      Schedule.placement ~job:j3 ~start:2 ~machine:1 ();
    ]
  in
  let s = Schedule.of_placements ~machines:2 placements in
  let all_jobs = [ j1; j2; j3 ] in
  (* Flow at 10: j1: 3-0=3; j2: 5-1=4; j3: 6-2=4. *)
  Alcotest.(check int) "flow time" 11 (Metrics.flow_time s ~all_jobs ~at:10);
  (* Flow at 4: j1 complete (3); j2 running: 4-1=3; j3 running: 4-2=2. *)
  Alcotest.(check int) "flow time online" 8 (Metrics.flow_time s ~all_jobs ~at:4);
  Alcotest.(check int) "flow completed only" 3
    (Metrics.flow_time_completed s ~at:4);
  Alcotest.(check int) "waiting time" (0 + 2 + 0) (Metrics.waiting_time s ~at:10);
  Alcotest.(check int) "throughput at 5" 2 (Metrics.throughput s ~at:5);
  Alcotest.(check int) "org flow" 7
    (Metrics.org_flow_time s ~all_jobs ~org:0 ~at:10);
  (* Unstarted jobs accrue flow: drop j2's placement. *)
  let s2 =
    Schedule.of_placements ~machines:2
      [ List.nth placements 0; List.nth placements 2 ]
  in
  Alcotest.(check int) "unstarted job accrues" (3 + 9 + 4)
    (Metrics.flow_time s2 ~all_jobs ~at:10);
  Alcotest.(check int) "work upper bound caps by released work" 6
    (Metrics.work_upper_bound ~all_jobs ~machines:2 ~upto:3);
  Alcotest.(check int) "work upper bound caps by capacity" 5
    (Metrics.work_upper_bound ~all_jobs ~machines:1 ~upto:5)

let test_jain_index () =
  Alcotest.(check (float 1e-9)) "equal allocations" 1.
    (Metrics.jain_index [ 3.; 3.; 3. ]);
  Alcotest.(check (float 1e-9)) "one takes all" 0.25
    (Metrics.jain_index [ 8.; 0.; 0.; 0. ]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Metrics.jain_index []);
  Alcotest.(check (float 1e-9)) "all zero" 0. (Metrics.jain_index [ 0.; 0. ]);
  Alcotest.(check bool) "bounded" true
    (let v = Metrics.jain_index [ 1.; 2.; 3.; 4. ] in
     v > 0.25 && v < 1.)

let () =
  Alcotest.run "utility"
    [
      ( "psp",
        [
          Alcotest.test_case "piece values" `Quick test_piece_values;
          Alcotest.test_case "figure 2" `Quick test_figure2;
          Alcotest.test_case "prop 4.2 flow-time link" `Quick
            test_prop42_flow_time_equivalence;
        ] );
      ( "axioms",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_strategy_resistance; qcheck_start_anonymity;
            qcheck_task_anonymity; qcheck_delay_never_profits;
          ] );
      ( "tracker",
        [
          Alcotest.test_case "matches closed form" `Quick
            test_tracker_matches_closed_form;
          Alcotest.test_case "parts & errors" `Quick
            test_tracker_parts_and_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "jain index" `Quick test_jain_index;
        ] );
    ]
