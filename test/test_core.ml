(* Tests for the scheduling core: heap, jobs, instances, schedules,
   clusters. *)

open Core

let job ?(org = 0) ?(index = 0) ?(release = 0) ~size () =
  Job.make ~org ~index ~release ~size ()

(* --- Heap ----------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.add h ~prio:p p) [ 5; 1; 9; 3; 7; 3; 0 ];
  Alcotest.(check (option int)) "min" (Some 0) (Heap.min_prio h);
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (p, _) ->
        popped := p :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int))
    "sorted drain" [ 0; 1; 3; 3; 5; 7; 9 ]
    (List.rev !popped)

let test_heap_pop_le () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.add h ~prio:p p) [ 4; 8; 2 ];
  Alcotest.(check (option (pair int int))) "pop_le hits" (Some (2, 2))
    (Heap.pop_le h 3);
  Alcotest.(check (option (pair int int))) "pop_le misses" None
    (Heap.pop_le h 3);
  Alcotest.(check int) "size" 2 (Heap.size h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let qcheck_heap =
  QCheck.Test.make ~name:"heap drains any input sorted" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.add h ~prio:p ()) prios;
      let rec drain acc =
        match Heap.pop h with Some (p, ()) -> drain (p :: acc) | None -> acc
      in
      let drained = List.rev (drain []) in
      drained = List.sort Stdlib.compare prios)

(* --- Job & Instance -------------------------------------------------------- *)

let test_job_validation () =
  Alcotest.check_raises "negative release"
    (Invalid_argument "Job.make: negative release") (fun () ->
      ignore (Job.make ~org:0 ~index:0 ~release:(-1) ~size:1 ()));
  Alcotest.check_raises "zero size" (Invalid_argument "Job.make: size < 1")
    (fun () -> ignore (Job.make ~org:0 ~index:0 ~release:0 ~size:0 ()))

let test_instance_reindexing () =
  (* Jobs given out of order are sorted by release and re-indexed FIFO. *)
  let jobs =
    [
      job ~org:0 ~index:99 ~release:10 ~size:1 ();
      job ~org:0 ~index:42 ~release:5 ~size:2 ();
      job ~org:1 ~index:7 ~release:0 ~size:3 ();
    ]
  in
  let i = Instance.make ~machines:[| 1; 1 |] ~jobs ~horizon:100 in
  let org0 = Instance.jobs_of_org i 0 in
  Alcotest.(check (list int))
    "org 0 re-indexed in release order" [ 0; 1 ]
    (List.map (fun (j : Job.t) -> j.Job.index) org0);
  Alcotest.(check (list int))
    "org 0 releases ascending" [ 5; 10 ]
    (List.map (fun (j : Job.t) -> j.Job.release) org0);
  Alcotest.(check int) "job count" 3 (Instance.job_count i);
  Alcotest.(check int) "total work" 6 (Instance.total_work i);
  Alcotest.(check (float 1e-9)) "share" 0.5 (Instance.share i 0)

let test_instance_validation () =
  Alcotest.check_raises "org out of range"
    (Invalid_argument "Instance.make: job organization out of range")
    (fun () ->
      ignore
        (Instance.make ~machines:[| 1 |]
           ~jobs:[ job ~org:3 ~size:1 () ]
           ~horizon:10));
  Alcotest.check_raises "release at horizon"
    (Invalid_argument "Instance.make: job released at or after the horizon")
    (fun () ->
      ignore
        (Instance.make ~machines:[| 1 |]
           ~jobs:[ job ~release:10 ~size:1 () ]
           ~horizon:10));
  Alcotest.check_raises "no machines"
    (Invalid_argument "Instance.make: no machines at all") (fun () ->
      ignore (Instance.make ~machines:[| 0; 0 |] ~jobs:[] ~horizon:10))

(* --- Schedule --------------------------------------------------------------- *)

let sched machines placements = Schedule.of_placements ~machines placements

let pl ~job:j ~start ~machine = Schedule.placement ~job:j ~start ~machine ()

let test_schedule_metrics () =
  let j1 = job ~org:0 ~index:0 ~size:3 () in
  let j2 = job ~org:1 ~index:0 ~size:5 () in
  let s = sched 2 [ pl ~job:j1 ~start:0 ~machine:0; pl ~job:j2 ~start:2 ~machine:1 ] in
  Alcotest.(check int) "busy upto 4" (3 + 2) (Schedule.busy_time s ~upto:4);
  Alcotest.(check (float 1e-9))
    "utilization" (5. /. 8.)
    (Schedule.utilization s ~upto:4);
  Alcotest.(check int) "makespan" 7 (Schedule.makespan s);
  Alcotest.(check int) "job count" 2 (Schedule.job_count s);
  Alcotest.(check bool) "find" true (Schedule.find s j2 <> None)

let ok = Alcotest.result Alcotest.unit Alcotest.string

let test_schedule_validators () =
  let j1 = job ~org:0 ~index:0 ~size:3 () in
  let j2 = job ~org:0 ~index:1 ~size:3 () in
  (* Overlap on one machine. *)
  let bad =
    sched 1 [ pl ~job:j1 ~start:0 ~machine:0; pl ~job:j2 ~start:2 ~machine:0 ]
  in
  Alcotest.(check bool)
    "overlap detected" true
    (Result.is_error (Schedule.check_feasible bad));
  (* Start before release. *)
  let early = job ~org:0 ~index:0 ~release:5 ~size:1 () in
  let bad = sched 1 [ pl ~job:early ~start:3 ~machine:0 ] in
  Alcotest.(check bool)
    "early start detected" true
    (Result.is_error (Schedule.check_feasible bad));
  (* FIFO violation: index 1 before index 0. *)
  let bad =
    sched 2 [ pl ~job:j1 ~start:5 ~machine:0; pl ~job:j2 ~start:0 ~machine:1 ]
  in
  Alcotest.(check bool)
    "fifo violation detected" true
    (Result.is_error (Schedule.check_fifo bad));
  (* A clean schedule passes everything. *)
  let good =
    sched 2 [ pl ~job:j1 ~start:0 ~machine:0; pl ~job:j2 ~start:0 ~machine:1 ]
  in
  Alcotest.check ok "feasible" (Ok ()) (Schedule.check_feasible good);
  Alcotest.check ok "fifo" (Ok ()) (Schedule.check_fifo good);
  Alcotest.check ok "greedy" (Ok ())
    (Schedule.check_greedy good ~all_jobs:[ j1; j2 ] ~upto:10)

let test_schedule_greedy_check () =
  let j1 = job ~org:0 ~index:0 ~release:0 ~size:2 () in
  let j2 = job ~org:0 ~index:1 ~release:0 ~size:2 () in
  (* Machine 1 idles while j2 waits: not greedy. *)
  let lazy_schedule =
    sched 2 [ pl ~job:j1 ~start:0 ~machine:0; pl ~job:j2 ~start:3 ~machine:1 ]
  in
  Alcotest.(check bool)
    "idle-while-waiting detected" true
    (Result.is_error
       (Schedule.check_greedy lazy_schedule ~all_jobs:[ j1; j2 ] ~upto:10));
  (* A job that never starts while machines idle: also not greedy. *)
  let partial = sched 2 [ pl ~job:j1 ~start:0 ~machine:0 ] in
  Alcotest.(check bool)
    "unstarted job detected" true
    (Result.is_error
       (Schedule.check_greedy partial ~all_jobs:[ j1; j2 ] ~upto:10));
  (* FIFO blocking excuses idleness: j2 waits on j1's start, not machines. *)
  let j_blocked = job ~org:0 ~index:1 ~release:0 ~size:1 () in
  let fifo_wait =
    sched 2
      [ pl ~job:j1 ~start:0 ~machine:0; pl ~job:j_blocked ~start:0 ~machine:1 ]
  in
  Alcotest.check ok "fifo-simultaneous ok" (Ok ())
    (Schedule.check_greedy fifo_wait ~all_jobs:[ j1; j_blocked ] ~upto:10)

(* --- Cluster ----------------------------------------------------------------- *)

let test_cluster_flow () =
  let c = Cluster.create ~machine_owners:[| 0; 0; 1 |] ~norgs:2 () in
  Alcotest.(check int) "machines" 3 (Cluster.machines c);
  Alcotest.(check int) "free" 3 (Cluster.free_count c);
  Alcotest.(check bool) "nothing waiting" false (Cluster.has_waiting c);
  let j1 = job ~org:0 ~index:0 ~size:4 () in
  let j2 = job ~org:0 ~index:1 ~size:2 () in
  let j3 = job ~org:1 ~index:0 ~size:3 () in
  Cluster.release c j1;
  Cluster.release c j2;
  Cluster.release c j3;
  Alcotest.(check (list int)) "waiting orgs" [ 0; 1 ] (Cluster.waiting_orgs c);
  Alcotest.(check int) "queue length" 2 (Cluster.waiting_count c 0);
  let p1 = Cluster.start_front c ~org:0 ~time:0 () in
  Alcotest.(check bool) "front is FIFO" true (Job.equal p1.Schedule.job j1);
  let _ = Cluster.start_front c ~org:0 ~time:0 () in
  let _ = Cluster.start_front c ~org:1 ~time:1 () in
  Alcotest.(check int) "all busy" 0 (Cluster.free_count c);
  Alcotest.(check int) "running org0" 2 (Cluster.running_count c 0);
  Alcotest.(check (option int)) "next completion" (Some 2) (Cluster.next_completion c);
  (match Cluster.pop_completion_le c 2 with
  | Some comp ->
      Alcotest.(check bool) "j2 completes first" true
        (Job.equal comp.Cluster.job j2);
      Alcotest.(check int) "finish" 2 comp.Cluster.finish
  | None -> Alcotest.fail "expected completion");
  Alcotest.(check (option Alcotest.reject)) "nothing due at 2" None
    (Cluster.pop_completion_le c 2);
  Alcotest.(check int) "machine freed" 1 (Cluster.free_count c);
  Alcotest.(check int) "completed work" 2 (Cluster.completed_work c 0)

let test_cluster_machine_pinning () =
  let c = Cluster.create ~machine_owners:[| 0; 1 |] ~norgs:2 () in
  Cluster.release c (job ~org:0 ~index:0 ~size:1 ());
  let p = Cluster.start_front c ~org:0 ~time:0 ~machine:1 () in
  Alcotest.(check int) "pinned machine" 1 p.Schedule.machine;
  Alcotest.(check int) "owner" 1 (Cluster.machine_owner c 1);
  Cluster.release c (job ~org:0 ~index:1 ~size:1 ());
  Alcotest.check_raises "busy machine rejected"
    (Invalid_argument "Cluster.start_front: requested machine is busy")
    (fun () -> ignore (Cluster.start_front c ~org:0 ~time:0 ~machine:1 ()))

let test_cluster_errors () =
  let c = Cluster.create ~machine_owners:[| 0 |] ~norgs:1 () in
  Alcotest.check_raises "empty queue"
    (Invalid_argument "Cluster.start_front: empty queue") (fun () ->
      ignore (Cluster.start_front c ~org:0 ~time:0 ()));
  Cluster.release c (job ~org:0 ~index:0 ~size:5 ());
  let _ = Cluster.start_front c ~org:0 ~time:0 () in
  Cluster.release c (job ~org:0 ~index:1 ~size:5 ());
  Alcotest.check_raises "no free machine"
    (Invalid_argument "Cluster.start_front: no free machine") (fun () ->
      ignore (Cluster.start_front c ~org:0 ~time:1 ()))

let test_cluster_recording () =
  let c = Cluster.create ~record:true ~machine_owners:[| 0; 0 |] ~norgs:1 () in
  Cluster.release c (job ~org:0 ~index:0 ~size:2 ());
  Cluster.release c (job ~org:0 ~index:1 ~size:2 ());
  let _ = Cluster.start_front c ~org:0 ~time:0 () in
  let _ = Cluster.start_front c ~org:0 ~time:0 () in
  let s = Cluster.to_schedule c in
  Alcotest.(check int) "recorded both" 2 (Schedule.job_count s);
  Alcotest.check ok "recorded schedule feasible" (Ok ())
    (Schedule.check_feasible s);
  let c2 = Cluster.create ~machine_owners:[| 0 |] ~norgs:1 () in
  Alcotest.check_raises "no recording"
    (Invalid_argument "Cluster.to_schedule: cluster was not recording")
    (fun () -> ignore (Cluster.to_schedule c2))

(* Model-based test: drive the cluster with random operation sequences and
   compare every observation against a naive list-based reference model. *)
let test_cluster_model_based () =
  let rng = Fstats.Rng.create ~seed:99 in
  for _trial = 1 to 60 do
    let norgs = 1 + Fstats.Rng.int rng 3 in
    let m = 1 + Fstats.Rng.int rng 4 in
    let owners = Array.init m (fun _ -> Fstats.Rng.int rng norgs) in
    let c = Cluster.create ~machine_owners:owners ~norgs () in
    (* Reference model state. *)
    let queues = Array.init norgs (fun _ -> Queue.create ()) in
    let running = ref [] in
    (* (finish, org, machine) *)
    let time = ref 0 in
    let next_index = Array.make norgs 0 in
    for _op = 1 to 40 do
      match Fstats.Rng.int rng 3 with
      | 0 ->
          (* Release a job. *)
          let org = Fstats.Rng.int rng norgs in
          let size = 1 + Fstats.Rng.int rng 5 in
          let j =
            Job.make ~org ~index:next_index.(org) ~release:!time ~size ()
          in
          next_index.(org) <- next_index.(org) + 1;
          Cluster.release c j;
          Queue.add j queues.(org)
      | 1 ->
          (* Start a front job if possible. *)
          let candidates =
            List.filter
              (fun u -> not (Queue.is_empty queues.(u)))
              (List.init norgs Fun.id)
          in
          if candidates <> [] && m - List.length !running > 0 then begin
            let org = List.nth candidates (Fstats.Rng.int rng (List.length candidates)) in
            let p = Cluster.start_front c ~org ~time:!time () in
            let j = Queue.pop queues.(org) in
            Alcotest.(check bool) "FIFO front started" true
              (Job.equal p.Schedule.job j);
            running := (!time + j.Job.size, org, p.Schedule.machine) :: !running
          end
      | _ ->
          (* Advance time and pop due completions. *)
          time := !time + 1 + Fstats.Rng.int rng 3;
          let rec pop () =
            match Cluster.pop_completion_le c !time with
            | Some comp ->
                Alcotest.(check bool) "completion was running" true
                  (List.exists
                     (fun (f, _, mach) ->
                       f = comp.Cluster.finish && mach = comp.Cluster.machine)
                     !running);
                running :=
                  List.filter
                    (fun (_, _, mach) -> mach <> comp.Cluster.machine)
                    !running;
                pop ()
            | None -> ()
          in
          pop ();
          List.iter
            (fun (f, _, _) ->
              Alcotest.(check bool) "no overdue running job" true (f > !time))
            !running;
      (* Invariants checked after every operation. *)
      Alcotest.(check int) "free count" (m - List.length !running)
        (Cluster.free_count c);
      Alcotest.(check int) "waiting orgs"
        (List.length
           (List.filter
              (fun u -> not (Queue.is_empty queues.(u)))
              (List.init norgs Fun.id)))
        (List.length (Cluster.waiting_orgs c));
      for u = 0 to norgs - 1 do
        Alcotest.(check int) "queue length" (Queue.length queues.(u))
          (Cluster.waiting_count c u);
        Alcotest.(check int) "running per org"
          (List.length (List.filter (fun (_, o, _) -> o = u) !running))
          (Cluster.running_count c u)
      done
    done
  done

(* --- Domain pool ------------------------------------------------------- *)

let test_pool_spawn_failure_fallback () =
  (* If Domain.spawn fails at pool creation, the pool must keep working
     with zero helpers: every batch runs sequentially on the caller and
     produces the same results. *)
  Domain_pool.unsafe_reset_for_testing
    ~spawn:(Some (fun _ -> failwith "domain limit reached"));
  Fun.protect
    ~finally:(fun () -> Domain_pool.unsafe_reset_for_testing ~spawn:None)
    (fun () ->
      Alcotest.(check int) "no helpers spawned" 0 (Domain_pool.helpers ());
      let n = 200 in
      let acc = Array.make n 0 in
      Domain_pool.parallel_iter ~workers:8 (fun i -> acc.(i) <- i + 1) n;
      Alcotest.(check int) "all tasks ran on the caller"
        (n * (n + 1) / 2)
        (Array.fold_left ( + ) 0 acc))

exception Task_failed of int

(* parallel_chunks must be indistinguishable from a sequential loop in
   results: every index run exactly once, writes landing in their own slots,
   for any (n, workers, chunk, cutoff) — including the degenerate inline
   cases (workers=1, n <= cutoff, one chunk). *)
let qcheck_parallel_chunks_coverage =
  QCheck.Test.make ~count:60 ~name:"parallel_chunks covers each index once"
    QCheck.(
      quad (int_bound 200) (int_range 1 8) (option (int_range 1 50))
        (int_bound 16))
    (fun (n, workers, chunk, cutoff) ->
      let hits = Array.make (Stdlib.max 1 n) 0 in
      Domain_pool.parallel_chunks ~workers ?chunk ~cutoff
        (fun i -> hits.(i) <- hits.(i) + 1)
        n;
      Array.for_all (( = ) 1) (Array.sub hits 0 n)
      || QCheck.Test.fail_reportf "some index ran %d times"
           (Array.fold_left Stdlib.max 0 hits))

let qcheck_map_chunked_order =
  QCheck.Test.make ~count:60 ~name:"map_chunked = Array.map (order preserved)"
    QCheck.(pair (array_of_size Gen.(int_bound 150) small_int) (int_range 1 8))
    (fun (a, workers) ->
      Domain_pool.map_chunked ~workers ~chunk:3 (fun x -> (2 * x) + 1) a
      = Array.map (fun x -> (2 * x) + 1) a)

(* Exception parity with parallel_iter: same batch of failing tasks ⇒ the
   same (lowest-index) exception out of either dispatcher, and every task
   attempted regardless of earlier failures in its chunk. *)
let qcheck_parallel_chunks_exception_parity =
  QCheck.Test.make ~count:40
    ~name:"parallel_chunks exception parity with parallel_iter"
    QCheck.(
      triple (int_range 1 100)
        (list_of_size Gen.(int_bound 5) (int_bound 99))
        (option (int_range 1 30)))
    (fun (n, fails, chunk) ->
      let fails = List.filter (fun i -> i < n) fails in
      let run dispatch =
        let attempted = Array.make n false in
        let raised =
          try
            dispatch
              (fun i ->
                attempted.(i) <- true;
                if List.mem i fails then raise (Task_failed i))
              n;
            None
          with Task_failed i -> Some i
        in
        (raised, Array.for_all Fun.id attempted)
      in
      let expected =
        if fails = [] then None
        else Some (List.fold_left Stdlib.min max_int fails)
      in
      let iter_raised, iter_all = run (Domain_pool.parallel_iter ~workers:4) in
      let chunk_raised, chunk_all =
        run (Domain_pool.parallel_chunks ~workers:4 ?chunk ~cutoff:2)
      in
      iter_raised = expected && chunk_raised = expected && iter_all
      && chunk_all)

let test_map_chunked_exception () =
  Alcotest.check_raises "first failing index in input order"
    (Task_failed 3)
    (fun () ->
      ignore
        (Domain_pool.map_chunked ~workers:4 ~chunk:2
           (fun i -> if i >= 3 then raise (Task_failed i) else i)
           (Array.init 40 Fun.id)));
  (* Backtrace-preserving re-raise still yields the original exception when
     everything runs inline (cutoff). *)
  Alcotest.check_raises "inline path too" (Task_failed 0) (fun () ->
      ignore
        (Domain_pool.map_chunked ~workers:4 ~cutoff:10
           (fun _ -> raise (Task_failed 0))
           (Array.init 4 Fun.id)))

let () =
  Alcotest.run "core"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "pop_le" `Quick test_heap_pop_le;
          QCheck_alcotest.to_alcotest qcheck_heap;
        ] );
      ( "job-instance",
        [
          Alcotest.test_case "job validation" `Quick test_job_validation;
          Alcotest.test_case "instance reindexing" `Quick
            test_instance_reindexing;
          Alcotest.test_case "instance validation" `Quick
            test_instance_validation;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "metrics" `Quick test_schedule_metrics;
          Alcotest.test_case "validators" `Quick test_schedule_validators;
          Alcotest.test_case "greedy check" `Quick test_schedule_greedy_check;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "flow" `Quick test_cluster_flow;
          Alcotest.test_case "machine pinning" `Quick
            test_cluster_machine_pinning;
          Alcotest.test_case "errors" `Quick test_cluster_errors;
          Alcotest.test_case "recording" `Quick test_cluster_recording;
          Alcotest.test_case "model-based random ops" `Quick
            test_cluster_model_based;
        ] );
      ( "domain-pool",
        [
          Alcotest.test_case "spawn failure falls back" `Quick
            test_pool_spawn_failure_fallback;
          QCheck_alcotest.to_alcotest qcheck_parallel_chunks_coverage;
          QCheck_alcotest.to_alcotest qcheck_map_chunked_order;
          QCheck_alcotest.to_alcotest qcheck_parallel_chunks_exception_parity;
          Alcotest.test_case "map_chunked exception order" `Quick
            test_map_chunked_exception;
        ] );
    ]
