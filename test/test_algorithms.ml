(* Tests for the scheduling algorithms: structural invariants for every
   policy, the paper's propositions (5.4, 5.6), REF's game-theoretic
   properties, and the supporting machinery (Instant, Coalition_sim). *)

open Core

let run ?(record = true) ~instance ~seed name =
  Sim.Driver.run ~record ~instance ~rng:(Fstats.Rng.create ~seed)
    (Algorithms.Registry.find_exn name)

(* Random small instances for property tests. *)
let instance_gen =
  let gen =
    QCheck.Gen.(
      let* norgs = int_range 2 4 in
      let* machines = array_size (return norgs) (int_range 1 3) in
      let* njobs = int_range 1 25 in
      let* jobs =
        list_size (return njobs)
          (let* org = int_range 0 (norgs - 1) in
           let* release = int_range 0 30 in
           let* size = int_range 1 8 in
           return (org, release, size))
      in
      return (machines, jobs))
  in
  let make (machines, jobs) =
    let jobs =
      List.map
        (fun (org, release, size) ->
          Job.make ~org ~index:0 ~release ~size ())
        jobs
    in
    Instance.make ~machines ~jobs ~horizon:100
  in
  let arb =
    QCheck.make
      ~print:(fun (machines, jobs) ->
        Format.asprintf "%a" Instance.pp_detailed (make (machines, jobs)))
      gen
  in
  (arb, make)

let structural_property name =
  let arb, make = instance_gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s produces feasible FIFO greedy schedules" name)
    ~count:60 arb
    (fun raw ->
      let instance = make raw in
      let result = run ~instance ~seed:7 name in
      let sched = result.Sim.Driver.schedule in
      let all_jobs = Array.to_list instance.Instance.jobs in
      Result.is_ok (Schedule.check_feasible sched)
      && Result.is_ok (Schedule.check_fifo sched)
      && Result.is_ok
           (Schedule.check_greedy sched ~all_jobs
              ~upto:instance.Instance.horizon))

let structural_tests =
  List.map structural_property
    [
      "ref"; "ref-banzhaf"; "rand-15"; "directcontr"; "fairshare";
      "utfairshare"; "currfairshare"; "roundrobin"; "fifo"; "random";
      "longest-queue"; "fairshare-decay"; "directcontr-decay";
    ]

(* Driver utilities must equal ψsp recomputed from the recorded schedule —
   ties the incremental trackers to the closed form end-to-end. *)
let consistency_property name =
  let arb, make = instance_gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s utilities match schedule recomputation" name)
    ~count:40 arb
    (fun raw ->
      let instance = make raw in
      let result = run ~instance ~seed:13 name in
      let sched = result.Sim.Driver.schedule in
      let at = instance.Instance.horizon in
      Array.to_list result.Sim.Driver.utilities_scaled
      |> List.mapi (fun org v ->
             v = Utility.Psp.of_schedule_scaled sched ~org ~at)
      |> List.for_all Fun.id)

let consistency_tests =
  List.map consistency_property [ "ref"; "rand-15"; "fairshare"; "roundrobin" ]

let test_determinism () =
  let instance =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs:4 ~machines:8 ~horizon:20_000
         Workload.Traces.lpc_egee)
      ~seed:5
  in
  List.iter
    (fun name ->
      let a = run ~record:false ~instance ~seed:99 name in
      let b = run ~record:false ~instance ~seed:99 name in
      Alcotest.(check (array int))
        (name ^ " deterministic") a.Sim.Driver.utilities_scaled
        b.Sim.Driver.utilities_scaled)
    [ "ref"; "rand-15"; "directcontr"; "fairshare"; "random" ]

(* --- Proposition 5.4: unit jobs → value independent of the greedy rule --- *)

let unit_instance_gen =
  let gen =
    QCheck.Gen.(
      let* norgs = int_range 2 4 in
      let* machines = array_size (return norgs) (int_range 1 2) in
      let* jobs =
        list_size (int_range 1 30)
          (let* org = int_range 0 (norgs - 1) in
           let* release = int_range 0 20 in
           return (org, release))
      in
      return (machines, jobs))
  in
  let make (machines, jobs) =
    let jobs =
      List.map
        (fun (org, release) -> Job.make ~org ~index:0 ~release ~size:1 ())
        jobs
    in
    Instance.make ~machines ~jobs ~horizon:60
  in
  (QCheck.make gen, make)

let qcheck_prop54 =
  let arb, make = unit_instance_gen in
  QCheck.Test.make ~name:"prop 5.4: unit jobs, equal coalition value" ~count:80
    arb
    (fun raw ->
      let instance = make raw in
      let total name =
        let r = run ~record:false ~instance ~seed:3 name in
        Array.fold_left ( + ) 0 r.Sim.Driver.utilities_scaled
      in
      let reference = total "fifo" in
      List.for_all
        (fun name -> total name = reference)
        [ "roundrobin"; "random"; "longest-queue"; "fairshare"; "ref" ])

(* --- Theorem 5.6 flavour: RAND tracks REF closely on unit jobs ----------- *)

let test_rand_close_to_ref_unit_jobs () =
  let rng = Fstats.Rng.create ~seed:41 in
  let jobs =
    List.init 60 (fun _ ->
        Job.make
          ~org:(Fstats.Rng.int rng 3)
          ~index:0
          ~release:(Fstats.Rng.int rng 25)
          ~size:1 ())
  in
  let instance = Instance.make ~machines:[| 1; 1; 1 |] ~jobs ~horizon:80 in
  let ref_r = run ~record:false ~instance ~seed:1 "ref" in
  let rand_r = run ~record:false ~instance ~seed:1 "rand-75" in
  let v_ref =
    float_of_int (Array.fold_left ( + ) 0 ref_r.Sim.Driver.utilities_scaled)
  in
  let delta =
    Array.to_list
      (Array.mapi
         (fun u v -> abs (v - rand_r.Sim.Driver.utilities_scaled.(u)))
         ref_r.Sim.Driver.utilities_scaled)
    |> List.fold_left ( + ) 0
  in
  (* ε = 0.1-ish: the utility vectors differ by well under 10% of v. *)
  Alcotest.(check bool)
    (Printf.sprintf "Δψ = %d vs v = %.0f" delta v_ref)
    true
    (float_of_int delta < 0.1 *. v_ref)

(* --- REF: game-theoretic sanity ------------------------------------------- *)

let test_ref_symmetry () =
  (* Two identical organizations must end with identical utilities when
     their job streams and machines are mirror images. *)
  let jobs =
    List.concat_map
      (fun org ->
        List.init 6 (fun i ->
            Job.make ~org ~index:i ~release:(3 * i) ~size:4 ()))
      [ 0; 1 ]
  in
  let instance = Instance.make ~machines:[| 1; 1 |] ~jobs ~horizon:60 in
  let r = run ~instance ~seed:2 "ref" in
  let u = r.Sim.Driver.utilities_scaled in
  Alcotest.(check bool)
    (Printf.sprintf "|ψ0 − ψ1| small: %d vs %d" u.(0) u.(1))
    true
    (abs (u.(0) - u.(1)) <= 2 * 8)
  (* one job-start granularity of slack *)

let test_ref_contributions_efficiency () =
  (* The REF-computed contributions must satisfy the efficiency axiom:
     Σ_u φ(u) = v(grand) at the evaluation time. *)
  let jobs =
    [
      Job.make ~org:0 ~index:0 ~release:0 ~size:4 ();
      Job.make ~org:0 ~index:1 ~release:1 ~size:3 ();
      Job.make ~org:1 ~index:0 ~release:0 ~size:5 ();
      Job.make ~org:2 ~index:0 ~release:2 ~size:2 ();
    ]
  in
  let instance = Instance.make ~machines:[| 1; 1; 1 |] ~jobs ~horizon:20 in
  let policy, internals =
    Algorithms.Reference.make_with_internals () instance
      ~rng:(Fstats.Rng.create ~seed:1)
  in
  ignore policy;
  (* Drive the real schedule with a fresh REF policy (the one above is only
     used for its internals; both see the same releases). *)
  let rng = Fstats.Rng.create ~seed:1 in
  let result =
    Sim.Driver.run ~instance ~rng (fun _instance ~rng:_ -> policy)
  in
  let trackers =
    Array.init 3 (fun _ -> Utility.Tracker.create ())
  in
  (* Rebuild trackers from the recorded schedule to construct a view. *)
  List.iter
    (fun (p : Schedule.placement) ->
      Utility.Tracker.on_start
        trackers.(p.Schedule.job.Job.org)
        ~key:p.Schedule.job.Job.index ~start:p.Schedule.start;
      if p.Schedule.start + p.Schedule.job.Job.size <= 20 then
        Utility.Tracker.on_complete
          trackers.(p.Schedule.job.Job.org)
          ~key:p.Schedule.job.Job.index ~size:p.Schedule.job.Job.size)
    (Schedule.placements result.Sim.Driver.schedule);
  let cluster =
    Cluster.create ~machine_owners:[| 0; 1; 2 |] ~norgs:3 ()
  in
  let view = { Algorithms.Policy.instance; cluster; trackers } in
  let phi2 =
    Algorithms.Reference.contributions_scaled internals ~view ~time:20
  in
  let v2 =
    Array.fold_left ( + ) 0 result.Sim.Driver.utilities_scaled
  in
  let total_phi2 = Array.fold_left ( +. ) 0. phi2 in
  Alcotest.(check bool)
    (Printf.sprintf "Σφ = %.1f vs v = %d" total_phi2 v2)
    true
    (Float.abs (total_phi2 -. float_of_int v2) < 1e-6)

let test_ref_dummy_org () =
  (* An organization with no jobs and no machines contributes nothing and
     receives nothing. *)
  let jobs =
    [
      Job.make ~org:0 ~index:0 ~release:0 ~size:3 ();
      Job.make ~org:1 ~index:0 ~release:0 ~size:3 ();
    ]
  in
  let instance = Instance.make ~machines:[| 1; 1; 0 |] ~jobs ~horizon:20 in
  let r = run ~instance ~seed:1 "ref" in
  Alcotest.(check int) "dummy utility 0" 0 r.Sim.Driver.utilities_scaled.(2)

let test_ref_rich_org_priority () =
  (* One org contributes 3 machines, the other 1; both flood the system at
     t=0.  The Shapley-fair split should give the rich org clearly more
     utility. *)
  let jobs =
    List.concat_map
      (fun org ->
        List.init 20 (fun i -> Job.make ~org ~index:i ~release:0 ~size:5 ()))
      [ 0; 1 ]
  in
  let instance = Instance.make ~machines:[| 3; 1 |] ~jobs ~horizon:40 in
  let r = run ~instance ~seed:1 "ref" in
  let u = Sim.Driver.utilities r in
  Alcotest.(check bool)
    (Printf.sprintf "rich org ahead: %.0f vs %.0f" u.(0) u.(1))
    true
    (u.(0) > 1.5 *. u.(1))

(* --- Coalition_sim --------------------------------------------------------- *)

let test_coalition_sim_matches_driver () =
  (* A grand-coalition Coalition_sim with the FIFO rule must produce exactly
     the utilities of the driver running the fifo policy. *)
  let instance =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs:3 ~machines:6 ~horizon:10_000
         Workload.Traces.lpc_egee)
      ~seed:9
  in
  let driver_result = run ~record:false ~instance ~seed:1 "fifo" in
  let sim =
    Algorithms.Coalition_sim.create ~instance
      ~members:(Shapley.Coalition.grand ~players:3) ()
  in
  Array.iter (Algorithms.Coalition_sim.add_release sim) instance.Instance.jobs;
  Algorithms.Coalition_sim.advance_to sim ~time:(instance.Instance.horizon - 1)
    ~select:Algorithms.Baselines.fifo_select_sim;
  for org = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "org %d utility" org)
      driver_result.Sim.Driver.utilities_scaled.(org)
      (Algorithms.Coalition_sim.utility_scaled sim ~org
         ~at:instance.Instance.horizon)
  done

let test_coalition_sim_errors () =
  let instance =
    Instance.make ~machines:[| 1; 1 |]
      ~jobs:[ Job.make ~org:0 ~index:0 ~release:0 ~size:1 () ]
      ~horizon:10
  in
  Alcotest.check_raises "empty coalition"
    (Invalid_argument "Coalition_sim.create: empty coalition") (fun () ->
      ignore
        (Algorithms.Coalition_sim.create ~instance
           ~members:Shapley.Coalition.empty ()));
  let sim =
    Algorithms.Coalition_sim.create ~instance
      ~members:(Shapley.Coalition.singleton 1) ()
  in
  Alcotest.check_raises "non-member job"
    (Invalid_argument "Coalition_sim.add_release: job of a non-member")
    (fun () ->
      Algorithms.Coalition_sim.add_release sim
        (Job.make ~org:0 ~index:0 ~release:0 ~size:1 ()))

(* --- Instant counters ------------------------------------------------------- *)

let test_instant () =
  let c = Algorithms.Instant.create ~norgs:3 in
  Algorithms.Instant.bump c ~time:5 ~org:1;
  Algorithms.Instant.bump c ~time:5 ~org:1;
  Alcotest.(check int) "counts within instant" 2
    (Algorithms.Instant.get c ~time:5 ~org:1);
  Alcotest.(check int) "other org zero" 0
    (Algorithms.Instant.get c ~time:5 ~org:0);
  Alcotest.(check int) "resets on new instant" 0
    (Algorithms.Instant.get c ~time:6 ~org:1)

(* --- Fair share behaviour ----------------------------------------------------- *)

let test_fairshare_saturated_shares () =
  (* Under permanent backlog, FAIRSHARE should allocate CPU time roughly in
     proportion to the machine shares (3:1). *)
  let jobs =
    List.concat_map
      (fun org ->
        List.init 80 (fun i -> Job.make ~org ~index:i ~release:0 ~size:5 ()))
      [ 0; 1 ]
  in
  let instance = Instance.make ~machines:[| 3; 1 |] ~jobs ~horizon:100 in
  let r = run ~instance ~seed:1 "fairshare" in
  let parts = r.Sim.Driver.parts in
  let ratio = float_of_int parts.(0) /. float_of_int parts.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "parts ratio %.2f ≈ 3" ratio)
    true
    (ratio > 2.2 && ratio < 3.8)

let test_roundrobin_alternates () =
  (* With one machine and two saturated orgs, round robin alternates. *)
  let jobs =
    List.concat_map
      (fun org ->
        List.init 5 (fun i -> Job.make ~org ~index:i ~release:0 ~size:1 ()))
      [ 0; 1 ]
  in
  let instance = Instance.make ~machines:[| 1; 0 |] ~jobs ~horizon:20 in
  let r = run ~instance ~seed:1 "roundrobin" in
  let starts =
    List.sort
      (fun (a, _) (b, _) -> Stdlib.compare a b)
      (List.map
         (fun (p : Schedule.placement) -> (p.Schedule.start, p.Schedule.job.Job.org))
         (Schedule.placements r.Sim.Driver.schedule))
  in
  let orgs = List.map snd starts in
  Alcotest.(check (list int))
    "alternating orgs" [ 0; 1; 0; 1; 0; 1; 0; 1; 0; 1 ]
    orgs

let () =
  Alcotest.run "algorithms"
    [
      ("structural", List.map QCheck_alcotest.to_alcotest structural_tests);
      ("consistency", List.map QCheck_alcotest.to_alcotest consistency_tests);
      ( "determinism",
        [ Alcotest.test_case "same seed same result" `Quick test_determinism ]
      );
      ( "propositions",
        [
          QCheck_alcotest.to_alcotest qcheck_prop54;
          Alcotest.test_case "rand ≈ ref on unit jobs" `Quick
            test_rand_close_to_ref_unit_jobs;
        ] );
      ( "ref",
        [
          Alcotest.test_case "symmetry" `Quick test_ref_symmetry;
          Alcotest.test_case "contributions efficiency" `Quick
            test_ref_contributions_efficiency;
          Alcotest.test_case "dummy organization" `Quick test_ref_dummy_org;
          Alcotest.test_case "rich org priority" `Quick
            test_ref_rich_org_priority;
        ] );
      ( "coalition-sim",
        [
          Alcotest.test_case "matches driver" `Quick
            test_coalition_sim_matches_driver;
          Alcotest.test_case "errors" `Quick test_coalition_sim_errors;
        ] );
      ("instant", [ Alcotest.test_case "counters" `Quick test_instant ]);
      ( "behaviour",
        [
          Alcotest.test_case "fairshare saturated shares" `Quick
            test_fairshare_saturated_shares;
          Alcotest.test_case "roundrobin alternates" `Quick
            test_roundrobin_alternates;
        ] );
    ]
