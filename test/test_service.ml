(* Tests for the online scheduler daemon (lib/service): config and wire
   round-trips, WAL durability semantics, the batch/served equivalence
   contract, backpressure, and crash recovery with a real kill -9. *)

let ( let@ ) f x = f x

(* --- Config ----------------------------------------------------------------- *)

let mk_config ?speeds ?max_restarts ?workers ?groups
    ?(machines = [| 2; 1; 1 |]) ?(horizon = 60) ?(algorithm = "fifo")
    ?(seed = 7) () =
  match
    Service.Config.make ?speeds ?max_restarts ?workers ?groups ~machines
      ~horizon ~algorithm ~seed ()
  with
  | Ok c -> c
  | Error msg -> Alcotest.failf "config rejected: %s" msg

let test_config_roundtrip () =
  let check c =
    match Service.Config.of_json (Service.Config.to_json c) with
    | Ok c' ->
        Alcotest.(check bool) "round-trips" true (Service.Config.equal c c')
    | Error msg -> Alcotest.failf "of_json: %s" msg
  in
  check (mk_config ());
  check (mk_config ~algorithm:"ref" ~max_restarts:3 ~workers:2 ());
  check (mk_config ~machines:[| 1; 1 |] ~speeds:[| 2.0; 0.5 |] ())

let test_config_validation () =
  let reject ?speeds ?max_restarts ?(machines = [| 1 |]) ?(horizon = 10)
      ?(algorithm = "fifo") label =
    match
      Service.Config.make ?speeds ?max_restarts ~machines ~horizon ~algorithm
        ~seed:0 ()
    with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error _ -> ()
  in
  reject "empty" ~machines:[||];
  reject "negative" ~machines:[| 2; -1 |];
  reject "all zero" ~machines:[| 0; 0 |];
  reject "bad horizon" ~horizon:0;
  reject "unknown algorithm" ~algorithm:"nosuchalgo";
  reject "bad restarts" ~max_restarts:(-1);
  reject "speeds length" ~speeds:[| 1.0; 1.0 |];
  reject "zero speed" ~speeds:[| 0.0 |]

(* --- Addr ------------------------------------------------------------------- *)

let test_addr () =
  let ok s expect =
    match Service.Addr.of_string s with
    | Ok a -> Alcotest.(check string) s expect (Service.Addr.to_string a)
    | Error msg -> Alcotest.failf "%s rejected: %s" s msg
  in
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "/tmp/x.sock" "unix:/tmp/x.sock";
  ok "tcp:127.0.0.1:9000" "tcp:127.0.0.1:9000";
  ok "tcp:localhost:80" "tcp:localhost:80";
  let bad s =
    match Service.Addr.of_string s with
    | Ok _ -> Alcotest.failf "%s accepted" s
    | Error _ -> ()
  in
  bad "";
  bad "unix:";
  bad "tcp:host";
  bad "tcp:host:0";
  bad "tcp:host:99999";
  bad "tcp::123";
  bad "nonsense"

(* --- Protocol --------------------------------------------------------------- *)

let test_protocol_requests () =
  let roundtrip r =
    let line = Service.Protocol.request_to_line r in
    match Service.Protocol.request_of_line (String.trim line) with
    | Ok r' -> Alcotest.(check bool) line true (r = r')
    | Error msg -> Alcotest.failf "%s: %s" line msg
  in
  roundtrip
    (Service.Protocol.Submit
       { org = 1; user = 3; release = 5; size = 2; cid = 0; cseq = 0; trace = 0 });
  roundtrip
    (Service.Protocol.Submit
       { org = 1; user = 3; release = 5; size = 2; cid = 71; cseq = 4; trace = 9 });
  roundtrip
    (Service.Protocol.Fault
       { time = 9; event = Faults.Event.Fail 2; cid = 0; cseq = 0; trace = 0 });
  roundtrip
    (Service.Protocol.Fault
       { time = 12; event = Faults.Event.Recover 2; cid = 3; cseq = 9; trace = 5 });
  roundtrip Service.Protocol.Status;
  roundtrip Service.Protocol.Psi;
  roundtrip Service.Protocol.Snapshot;
  roundtrip (Service.Protocol.Drain { detail = true });
  (match Service.Protocol.request_of_line "{\"op\":\"nosuch\"}" with
  | Ok _ -> Alcotest.fail "unknown op accepted"
  | Error _ -> ());
  match Service.Protocol.request_of_line "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let test_protocol_responses () =
  let roundtrip r =
    let line = Service.Protocol.response_to_line r in
    match Service.Protocol.response_of_line (String.trim line) with
    | Ok r' -> Alcotest.(check bool) line true (r = r')
    | Error msg -> Alcotest.failf "%s: %s" line msg
  in
  roundtrip (Service.Protocol.Submit_ok { seq = 4; org = 1; index = 0; now = 3 });
  roundtrip (Service.Protocol.Fault_ok { seq = 5; now = 9 });
  roundtrip
    (Service.Protocol.Psi_ok
       { now = 7; psi_scaled = [| 4; 0; 9 |]; parts = [| 2; 0; 3 |] });
  roundtrip (Service.Protocol.Snapshot_ok { seq = 11; path = "/tmp/snap" });
  roundtrip
    (Service.Protocol.Error
       {
         code = Service.Protocol.Backpressure;
         msg = "queue full";
         retry_after_ms = None;
       });
  roundtrip
    (Service.Protocol.Error
       {
         code = Service.Protocol.Backpressure;
         msg = "shedding load";
         retry_after_ms = Some 120;
       });
  let stats = Kernel.Stats.create () in
  stats.Kernel.Stats.instants <- 42;
  stats.Kernel.Stats.starts <- 7;
  roundtrip
    (Service.Protocol.Status_ok
       {
         Service.Protocol.now = 10;
         frontier = 12;
         horizon = 100;
         orgs = 3;
         machines = 4;
         accepted = 20;
         rejected = 2;
         queue_depth = 1;
         queue_cap = 1024;
         draining = false;
         waiting = [| 1; 0; 2 |];
         stats;
         job_wait =
           Some { Obs.Metrics.count = 5; p50 = 1.; p90 = 2.; p99 = 4.; max = 4. };
         estimator = "rand:0.1,0.9";
         degraded = true;
         shed = 17;
         ack_ewma_ms = 3.5;
         groups = 2;
         shards = 2;
         fsyncs = 9;
       });
  roundtrip
    (Service.Protocol.Drain_ok
       {
         Service.Protocol.d_now = 99;
         d_psi_scaled = [| 10; 20 |];
         d_parts = [| 5; 6 |];
         d_stats = stats;
         d_schedule = Some [ (0, 0, 1, 2, 3); (1, 0, 4, 0, 2) ];
       })

(* --- WAL -------------------------------------------------------------------- *)

let with_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fairsched-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
      in
      try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let sample_records =
  [
    Service.Wal.Submit
      { seq = 1; org = 0; user = 2; release = 0; size = 3; cid = 0; cseq = 0 };
    Service.Wal.Fault
      { seq = 2; time = 1; event = Faults.Event.Fail 0; cid = 12; cseq = 1 };
    Service.Wal.Submit
      { seq = 3; org = 1; user = 0; release = 2; size = 1; cid = 12; cseq = 2 };
    Service.Wal.Fault
      { seq = 4; time = 3; event = Faults.Event.Recover 0; cid = 0; cseq = 0 };
  ]

let test_wal_roundtrip () =
  let@ dir = with_tmpdir in
  let config = mk_config () in
  let w =
    match Service.Wal.create ~dir ~config () with
    | Ok w -> w
    | Error msg -> Alcotest.failf "create: %s" msg
  in
  List.iter (Service.Wal.append w) sample_records;
  (match Service.Wal.sync w with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "sync: %s" msg);
  Service.Wal.close w;
  match Service.Wal.recover ~dir with
  | Error e ->
      Alcotest.failf "recover: %s" (Service.Wal.boot_error_to_string e)
  | Ok r ->
      Alcotest.(check bool)
        "config recovered" true
        (match r.Service.Wal.r_config with
        | Some c -> Service.Config.equal c config
        | None -> false);
      Alcotest.(check bool)
        "records recovered" true
        (r.Service.Wal.r_records = sample_records);
      Alcotest.(check int) "last seq" 4 r.Service.Wal.r_last_seq

let test_wal_torn_tail () =
  let@ dir = with_tmpdir in
  let config = mk_config () in
  let w =
    match Service.Wal.create ~dir ~config () with
    | Ok w -> w
    | Error msg -> Alcotest.failf "create: %s" msg
  in
  List.iter (Service.Wal.append w) sample_records;
  ignore (Service.Wal.sync w);
  Service.Wal.close w;
  (* Simulate a crash mid-append: a half-written record on the last line. *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Service.Wal.wal_path ~dir)
  in
  output_string oc "{\"rec\":\"submit\",\"seq\":5,\"or";
  close_out oc;
  (match Service.Wal.recover ~dir with
  | Error e ->
      Alcotest.failf "torn tail should recover: %s"
        (Service.Wal.boot_error_to_string e)
  | Ok r ->
      Alcotest.(check int) "torn line dropped" 4 r.Service.Wal.r_last_seq);
  (* A corrupt line in the MIDDLE means damage, not a torn append. *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Service.Wal.wal_path ~dir)
  in
  output_string oc "nsense\n";
  output_string oc
    "{\"rec\":\"submit\",\"seq\":6,\"org\":0,\"user\":0,\"release\":9,\"size\":1}\n";
  close_out oc;
  match Service.Wal.recover ~dir with
  | Ok _ -> Alcotest.fail "corrupt middle line accepted"
  | Error _ -> ()

let test_wal_snapshot_dedupe () =
  let@ dir = with_tmpdir in
  let config = mk_config () in
  (* Snapshot covering seqs 1-2; WAL holding 1-4 (as after a crash between
     snapshot rename and WAL truncation): recovery must not replay 1-2
     twice. *)
  let snap_records = [ List.nth sample_records 0; List.nth sample_records 1 ] in
  (match
     Service.Wal.write_snapshot ~dir
       { Service.Wal.config; last_seq = 2; records = snap_records }
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "write_snapshot: %s" msg);
  let w =
    match Service.Wal.create ~dir ~config () with
    | Ok w -> w
    | Error msg -> Alcotest.failf "create: %s" msg
  in
  List.iter (Service.Wal.append w) sample_records;
  ignore (Service.Wal.sync w);
  Service.Wal.close w;
  match Service.Wal.recover ~dir with
  | Error e ->
      Alcotest.failf "recover: %s" (Service.Wal.boot_error_to_string e)
  | Ok r ->
      Alcotest.(check bool)
        "seq-deduped" true
        (r.Service.Wal.r_records = sample_records);
      Alcotest.(check int) "last seq" 4 r.Service.Wal.r_last_seq

(* A failed sync (ENOSPC here, via the chaos shim) must leave the batch
   pending and the file repairable: the retried sync lands every record
   exactly once, with no interleaved half-records. *)
let test_wal_sync_repair () =
  let@ dir = with_tmpdir in
  let config = mk_config () in
  Fun.protect ~finally:Chaos.Fs.disarm @@ fun () ->
  let w =
    match Service.Wal.create ~dir ~config () with
    | Ok w -> w
    | Error msg -> Alcotest.failf "create: %s" msg
  in
  Service.Wal.append w (List.nth sample_records 0);
  Service.Wal.append w (List.nth sample_records 1);
  Chaos.Fs.arm
    [
      {
        Chaos.Fs.target = "wal-fsync";
        nth = 1;
        sticky = false;
        action = Chaos.Fs.Fail Unix.ENOSPC;
      };
    ];
  (match Service.Wal.sync w with
  | Ok () -> Alcotest.fail "sync must surface ENOSPC"
  | Error _ -> ());
  Alcotest.(check bool) "batch still pending" true (Service.Wal.pending w);
  Chaos.Fs.disarm ();
  (* Space comes back; a later append joins the retried batch in order. *)
  Service.Wal.append w (List.nth sample_records 2);
  (match Service.Wal.sync w with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "retried sync: %s" msg);
  Alcotest.(check bool) "nothing pending" false (Service.Wal.pending w);
  Service.Wal.close w;
  match Service.Wal.recover ~dir with
  | Error e ->
      Alcotest.failf "recover: %s" (Service.Wal.boot_error_to_string e)
  | Ok r ->
      Alcotest.(check bool)
        "each record exactly once, in order" true
        (r.Service.Wal.r_records
        = [
            List.nth sample_records 0;
            List.nth sample_records 1;
            List.nth sample_records 2;
          ])

(* --- Retry policy ------------------------------------------------------------ *)

let test_retry_backoff () =
  let rng = Fstats.Rng.create ~seed:1 in
  let p =
    Service.Retry.policy ~max_attempts:5 ~base_delay_ms:10. ~max_delay_ms:40.
      ~multiplier:2. ~jitter:0. ~budget_ms:0. ()
  in
  let delay ?retry_after_ms attempt =
    match
      Service.Retry.next p ~rng ~attempt ~elapsed_ms:0. ~retry_after_ms
    with
    | Service.Retry.Sleep d -> d
    | Service.Retry.Give_up -> Alcotest.failf "gave up at attempt %d" attempt
  in
  Alcotest.(check (float 0.001)) "attempt 1" 10. (delay 1);
  Alcotest.(check (float 0.001)) "attempt 2 doubles" 20. (delay 2);
  Alcotest.(check (float 0.001)) "attempt 3 doubles" 40. (delay 3);
  Alcotest.(check (float 0.001)) "attempt 4 capped" 40. (delay 4);
  (match
     Service.Retry.next p ~rng ~attempt:5 ~elapsed_ms:0. ~retry_after_ms:None
   with
  | Service.Retry.Give_up -> ()
  | Service.Retry.Sleep _ -> Alcotest.fail "attempt = max_attempts must give up");
  (* The server's hint is a floor, never a cap. *)
  Alcotest.(check (float 0.001))
    "hint raises the delay" 500.
    (delay ~retry_after_ms:500 1);
  Alcotest.(check (float 0.001))
    "hint below backoff is ignored" 20.
    (delay ~retry_after_ms:5 2)

let test_retry_budget_and_jitter () =
  let rng = Fstats.Rng.create ~seed:2 in
  let p =
    Service.Retry.policy ~max_attempts:100 ~base_delay_ms:100. ~jitter:0.
      ~budget_ms:250. ()
  in
  (* Better to fail now than to sleep into certain failure. *)
  (match
     Service.Retry.next p ~rng ~attempt:1 ~elapsed_ms:200. ~retry_after_ms:None
   with
  | Service.Retry.Sleep _ -> Alcotest.fail "slept past the budget"
  | Service.Retry.Give_up -> ());
  (match
     Service.Retry.next p ~rng ~attempt:1 ~elapsed_ms:100. ~retry_after_ms:None
   with
  | Service.Retry.Sleep d ->
      Alcotest.(check (float 0.001)) "within budget" 100. d
  | Service.Retry.Give_up -> Alcotest.fail "budget not yet exhausted");
  let pj =
    Service.Retry.policy ~max_attempts:10 ~base_delay_ms:100. ~max_delay_ms:100.
      ~jitter:0.25 ~budget_ms:0. ()
  in
  for _ = 1 to 200 do
    match
      Service.Retry.next pj ~rng ~attempt:1 ~elapsed_ms:0. ~retry_after_ms:None
    with
    | Service.Retry.Sleep d ->
        if d < 74.999 || d > 125.001 then
          Alcotest.failf "jittered delay %g outside [75, 125]" d
    | Service.Retry.Give_up -> Alcotest.fail "gave up under no budget"
  done

(* --- Overload detector ------------------------------------------------------- *)

let overload_cfg =
  {
    Service.Overload.default with
    queue_high = 0.8;
    queue_low = 0.3;
    ack_high_ms = 1e9;
    (* occupancy alone drives these tests *)
    ack_low_ms = 1e9;
    trip_ms = 100.;
    recover_ms = 200.;
  }

let test_overload_dwell () =
  let now = ref 0.0 in
  let d =
    Service.Overload.create ~config:overload_cfg ~now_ms:(fun () -> !now) ()
  in
  let obs ~t ~depth =
    now := t;
    Service.Overload.observe_queue d ~depth ~cap:10
  in
  let expect label lvl =
    Alcotest.(check bool) label true (Service.Overload.level d = lvl)
  in
  obs ~t:0. ~depth:9;
  expect "high, dwell just started" Service.Overload.Normal;
  obs ~t:50. ~depth:9;
  expect "still within trip dwell" Service.Overload.Normal;
  obs ~t:100. ~depth:9;
  expect "tripped after sustained pressure" Service.Overload.Overloaded;
  (* Calm must also dwell before recovery. *)
  obs ~t:200. ~depth:0;
  obs ~t:350. ~depth:0;
  expect "calm dwell not elapsed" Service.Overload.Overloaded;
  obs ~t:400. ~depth:0;
  expect "recovered after sustained calm" Service.Overload.Normal

let test_overload_no_flap () =
  let now = ref 0.0 in
  let d =
    Service.Overload.create ~config:overload_cfg ~now_ms:(fun () -> !now) ()
  in
  let obs ~t ~depth =
    now := t;
    Service.Overload.observe_queue d ~depth ~cap:10
  in
  (* A burst interrupted by an in-between observation resets the dwell
     clock: pressure must be continuous to trip. *)
  obs ~t:0. ~depth:9;
  obs ~t:90. ~depth:5;
  obs ~t:95. ~depth:9;
  obs ~t:180. ~depth:9;
  Alcotest.(check bool)
    "interrupted pressure does not trip" true
    (Service.Overload.level d = Service.Overload.Normal);
  obs ~t:400. ~depth:9;
  Alcotest.(check bool)
    "re-sustained pressure trips" true
    (Service.Overload.level d = Service.Overload.Overloaded)

let test_overload_ack_signal () =
  let now = ref 0.0 in
  let cfg =
    {
      overload_cfg with
      ack_high_ms = 50.;
      ack_low_ms = 10.;
      alpha = 1.0 (* EWMA = last observation: exact assertions *);
    }
  in
  let d = Service.Overload.create ~config:cfg ~now_ms:(fun () -> !now) () in
  Alcotest.(check int)
    "hint floor before any ack" 25
    (Service.Overload.retry_after_ms d);
  Service.Overload.observe_ack d ~latency_ms:100.;
  now := 150.;
  Service.Overload.observe_ack d ~latency_ms:100.;
  Alcotest.(check bool)
    "ack latency alone trips" true
    (Service.Overload.level d = Service.Overload.Overloaded);
  Alcotest.(check (float 0.001))
    "ewma tracks" 100.
    (Service.Overload.ack_ewma_ms d);
  Alcotest.(check int)
    "hint scales with ewma" 400
    (Service.Overload.retry_after_ms d)

(* --- Online: batch/fed equivalence ------------------------------------------ *)

let spec =
  Workload.Scenario.default ~norgs:3 ~machines:6 ~horizon:5_000 ~users:12
    Workload.Traces.lpc_egee

let batch_result ~algorithm ~seed ?faults instance =
  Sim.Driver.run ?faults ~instance ~rng:(Fstats.Rng.create ~seed)
    (Algorithms.Registry.find_exn algorithm)

let stats_string st = Kernel.Stats.to_json st

let placements_repr schedule =
  Core.Schedule.placements schedule
  |> List.map (fun (p : Core.Schedule.placement) ->
         Printf.sprintf "%d.%d@%d m%d d%d" p.Core.Schedule.job.Core.Job.org
           p.Core.Schedule.job.Core.Job.index p.Core.Schedule.start
           p.Core.Schedule.machine p.Core.Schedule.duration)
  |> String.concat ";"

(* Feed a batch instance's jobs (and optionally a fault trace) one by one
   into an Online.t and check every observable against the closed-loop
   Driver.run on the same instance: schedule, ψsp, parts, kernel stats. *)
let check_equivalence ~algorithm ?(faults = []) instance =
  let seed = 5 in
  let config =
    match
      Service.Config.make
        ~machines:(Array.copy instance.Core.Instance.machines)
        ~horizon:instance.Core.Instance.horizon ~algorithm ~seed ()
    with
    | Ok c -> c
    | Error msg -> Alcotest.failf "config: %s" msg
  in
  let batch =
    batch_result ~algorithm ~seed
      ?faults:(if faults = [] then None else Some faults)
      instance
  in
  let online = Service.Online.create config in
  (* Merge jobs and faults in time order; ties resolved either way (the
     kernel phase order is per-instant, not per-push). *)
  let jobs = Array.to_list instance.Core.Instance.jobs in
  let rec feed jobs faults =
    match (jobs, faults) with
    | [], [] -> ()
    | j :: js, f :: _ when j.Core.Job.release <= f.Faults.Event.time ->
        submit j;
        feed js faults
    | j :: js, [] ->
        submit j;
        feed js faults
    | _, f :: fs ->
        (match Service.Online.fault online ~time:f.Faults.Event.time
                 f.Faults.Event.event
         with
        | Ok () -> ()
        | Error e ->
            Alcotest.failf "fault rejected: %s"
              (Service.Online.error_to_string e));
        feed jobs fs
  and submit (j : Core.Job.t) =
    match
      Service.Online.submit online ~org:j.Core.Job.org ~user:j.Core.Job.user
        ~size:j.Core.Job.size ~release:j.Core.Job.release ()
    with
    | Ok index ->
        Alcotest.(check int) "arrival rank matches batch index"
          j.Core.Job.index index
    | Error e ->
        Alcotest.failf "submit rejected: %s" (Service.Online.error_to_string e)
  in
  feed jobs faults;
  Service.Online.drain online;
  Alcotest.(check (array int))
    (algorithm ^ ": psi identical") batch.Sim.Driver.utilities_scaled
    (Service.Online.psi_scaled online);
  Alcotest.(check (array int))
    (algorithm ^ ": parts identical") batch.Sim.Driver.parts
    (Service.Online.parts online);
  Alcotest.(check string)
    (algorithm ^ ": schedule identical")
    (placements_repr batch.Sim.Driver.schedule)
    (placements_repr (Service.Online.schedule online));
  Alcotest.(check string)
    (algorithm ^ ": kernel stats identical")
    (stats_string batch.Sim.Driver.stats)
    (stats_string (Service.Online.stats online))

let test_equivalence_fifo () =
  check_equivalence ~algorithm:"fifo" (Workload.Scenario.instance spec ~seed:11)

let test_equivalence_random () =
  check_equivalence ~algorithm:"random"
    (Workload.Scenario.instance spec ~seed:12)

let test_equivalence_ref () =
  (* REF is exponential in organizations: keep the instance small. *)
  let small =
    Workload.Scenario.default ~norgs:3 ~machines:4 ~horizon:10_000 ~users:6
      Workload.Traces.lpc_egee
  in
  check_equivalence ~algorithm:"ref" (Workload.Scenario.instance small ~seed:3)

let test_equivalence_faults () =
  let instance = Workload.Scenario.instance spec ~seed:13 in
  let faults =
    [
      { Faults.Event.time = 20; event = Faults.Event.Fail 0 };
      { Faults.Event.time = 45; event = Faults.Event.Recover 0 };
      { Faults.Event.time = 50; event = Faults.Event.Fail 2 };
      { Faults.Event.time = 80; event = Faults.Event.Recover 2 };
    ]
  in
  check_equivalence ~algorithm:"fairshare" ~faults instance

let test_online_admission () =
  let config = mk_config ~machines:[| 1; 1 |] ~horizon:50 () in
  let online = Service.Online.create config in
  let expect_err label r =
    match r with
    | Ok _ -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  expect_err "bad org"
    (Service.Online.submit online ~org:2 ~size:1 ~release:0 ());
  expect_err "bad size"
    (Service.Online.submit online ~org:0 ~size:0 ~release:0 ());
  expect_err "past horizon"
    (Service.Online.submit online ~org:0 ~size:1 ~release:50 ());
  (match Service.Online.submit online ~org:0 ~size:2 ~release:10 () with
  | Ok 0 -> ()
  | Ok i -> Alcotest.failf "first rank %d" i
  | Error e -> Alcotest.failf "rejected: %s" (Service.Online.error_to_string e));
  expect_err "release regression"
    (Service.Online.submit online ~org:0 ~size:1 ~release:5 ());
  expect_err "bad machine"
    (Service.Online.fault online ~time:10 (Faults.Event.Fail 7));
  expect_err "fault time regression"
    (Service.Online.fault online ~time:3 (Faults.Event.Fail 0));
  Service.Online.drain online;
  expect_err "drained"
    (Service.Online.submit online ~org:0 ~size:1 ~release:20 ());
  Alcotest.(check bool) "drain idempotent" true
    (Service.Online.drained online);
  Service.Online.drain online

(* --- Socket-level tests ------------------------------------------------------ *)

(* Fork a daemon, wait for readiness via the ready-pipe trick, run [f],
   then terminate the child.  [f] gets the server's pid so crash tests
   can SIGKILL it. *)
let with_server ?state_dir ?(queue_cap = 1024) ?(drain_batch = 256) ?shards
    ?commit_interval ?chaos ~service addr f =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      (match chaos with
      | None -> ()
      | Some spec -> (
          match Chaos.Fs.of_string spec with
          | Ok rules -> Chaos.Fs.arm rules
          | Error msg ->
              Printf.eprintf "chaos: %s\n%!" msg;
              Stdlib.exit 1));
      let cfg =
        Service.Server.make_config ?state_dir ~queue_cap ~drain_batch ?shards
          ?commit_interval ~addr ~service ()
      in
      let ready () =
        ignore (Unix.write w (Bytes.of_string "R") 0 1);
        Unix.close w
      in
      let code =
        match Service.Server.run ~ready cfg with
        | Ok () -> 0
        | Error msg ->
            Printf.eprintf "server: %s\n%!" msg;
            1
      in
      Stdlib.exit code
  | pid ->
      Unix.close w;
      let buf = Bytes.create 1 in
      let got = try Unix.read r buf 0 1 with Unix.Unix_error _ -> 0 in
      Unix.close r;
      if got = 0 then begin
        ignore (Unix.waitpid [] pid);
        Alcotest.fail "server died before becoming ready"
      end;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () -> f pid)

let connect_retry addr =
  let rec go n =
    match Service.Client.connect addr with
    | Ok c -> c
    | Error e ->
        if n = 0 then
          Alcotest.failf "connect: %s" (Service.Client.error_to_string e)
        else begin
          Unix.sleepf 0.05;
          go (n - 1)
        end
  in
  go 100

let request_ok client req =
  match Service.Client.request client req with
  | Ok resp -> resp
  | Error e ->
      Alcotest.failf "request: %s" (Service.Client.error_to_string e)

let submit_job client (j : Core.Job.t) =
  match
    request_ok client
      (Service.Protocol.Submit
         {
           org = j.Core.Job.org;
           user = j.Core.Job.user;
           release = j.Core.Job.release;
           size = j.Core.Job.size;
           cid = 0;
           cseq = 0;
           trace = 0;
         })
  with
  | Service.Protocol.Submit_ok { index; _ } ->
      Alcotest.(check int) "served rank = batch rank" j.Core.Job.index index
  | Service.Protocol.Error { msg; _ } -> Alcotest.failf "submit: %s" msg
  | _ -> Alcotest.fail "submit: unexpected response"

(* Satellite (c): the golden instance fed through the socket one submission
   at a time must match Sim.Driver.run bit for bit. *)
let test_served_equivalence () =
  let@ dir = with_tmpdir in
  let algorithm = "fairshare" and seed = 5 in
  let instance = Workload.Scenario.instance spec ~seed:21 in
  let batch = batch_result ~algorithm ~seed instance in
  let service =
    match
      Service.Config.make
        ~machines:(Array.copy instance.Core.Instance.machines)
        ~horizon:instance.Core.Instance.horizon ~algorithm ~seed ()
    with
    | Ok c -> c
    | Error msg -> Alcotest.failf "config: %s" msg
  in
  let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
  let@ _pid = with_server ~service addr in
  let client = connect_retry addr in
  Array.iter (submit_job client) instance.Core.Instance.jobs;
  (match request_ok client (Service.Protocol.Drain { detail = true }) with
  | Service.Protocol.Drain_ok r ->
      Alcotest.(check (array int)) "psi identical"
        batch.Sim.Driver.utilities_scaled r.Service.Protocol.d_psi_scaled;
      Alcotest.(check (array int)) "parts identical" batch.Sim.Driver.parts
        r.Service.Protocol.d_parts;
      Alcotest.(check string) "stats identical"
        (stats_string batch.Sim.Driver.stats)
        (stats_string r.Service.Protocol.d_stats);
      let batch_rows =
        Core.Schedule.placements batch.Sim.Driver.schedule
        |> List.map (fun (p : Core.Schedule.placement) ->
               ( p.Core.Schedule.job.Core.Job.org,
                 p.Core.Schedule.job.Core.Job.index,
                 p.Core.Schedule.start,
                 p.Core.Schedule.machine,
                 p.Core.Schedule.duration ))
      in
      Alcotest.(check bool) "schedule identical" true
        (r.Service.Protocol.d_schedule = Some batch_rows)
  | _ -> Alcotest.fail "drain: unexpected response");
  Service.Client.close client

(* The headline durability property: SIGKILL the daemon mid-stream,
   restart on the same state dir, feed the rest — the outcome is
   bit-identical to the uninterrupted batch run.  Only acked submissions
   count: the WAL is fsynced before every ack. *)
let test_crash_recovery () =
  let@ dir = with_tmpdir in
  let state_dir = Filename.concat dir "state" in
  let algorithm = "fairshare" and seed = 5 in
  let instance = Workload.Scenario.instance spec ~seed:22 in
  let batch = batch_result ~algorithm ~seed instance in
  let service =
    match
      Service.Config.make
        ~machines:(Array.copy instance.Core.Instance.machines)
        ~horizon:instance.Core.Instance.horizon ~algorithm ~seed ()
    with
    | Ok c -> c
    | Error msg -> Alcotest.failf "config: %s" msg
  in
  let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
  let jobs = instance.Core.Instance.jobs in
  let split = Array.length jobs / 2 in
  Alcotest.(check bool) "instance non-trivial" true (split > 2);
  (* First life: submit the first half, then SIGKILL — no drain, no
     graceful anything. *)
  (let@ pid = with_server ~state_dir ~service addr in
   let client = connect_retry addr in
   Array.iteri (fun i j -> if i < split then submit_job client j) jobs;
   Unix.kill pid Sys.sigkill;
   ignore (Unix.waitpid [] pid);
   Service.Client.close client);
  (* Second life: recovery replays the WAL; the daemon resumes exactly
     where the acked stream left off. *)
  let@ _pid = with_server ~state_dir ~service addr in
  let client = connect_retry addr in
  (match request_ok client Service.Protocol.Status with
  | Service.Protocol.Status_ok st ->
      Alcotest.(check int) "all acked submissions recovered" split
        st.Service.Protocol.accepted
  | _ -> Alcotest.fail "status: unexpected response");
  Array.iteri (fun i j -> if i >= split then submit_job client j) jobs;
  (match request_ok client (Service.Protocol.Drain { detail = false }) with
  | Service.Protocol.Drain_ok r ->
      Alcotest.(check (array int)) "psi identical after crash"
        batch.Sim.Driver.utilities_scaled r.Service.Protocol.d_psi_scaled;
      Alcotest.(check string) "stats identical after crash"
        (stats_string batch.Sim.Driver.stats)
        (stats_string r.Service.Protocol.d_stats)
  | _ -> Alcotest.fail "drain: unexpected response");
  Service.Client.close client

let test_backpressure () =
  let@ dir = with_tmpdir in
  let service = mk_config ~machines:[| 2; 2 |] ~horizon:100_000 () in
  let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
  let@ _pid = with_server ~queue_cap:2 ~drain_batch:1 ~service addr in
  (* Blast a pipelined burst without reading: the bounded admission queue
     must reject some with a typed backpressure error, never drop or
     crash. *)
  let client = connect_retry addr in
  let n = 64 in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Service.Addr.to_sockaddr addr);
  let burst = Buffer.create 4096 in
  for i = 1 to n do
    Buffer.add_string burst
      (Service.Protocol.request_to_line
         (Service.Protocol.Submit
            { org = 0; user = 0; release = i; size = 1; cid = 0; cseq = 0; trace = 0 }))
  done;
  let payload = Buffer.contents burst in
  ignore (Unix.write_substring fd payload 0 (String.length payload));
  (* Read n newline-terminated responses back. *)
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let count_lines () =
    String.fold_left
      (fun acc c -> if c = '\n' then acc + 1 else acc)
      0 (Buffer.contents buf)
  in
  while count_lines () < n do
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Alcotest.fail "server closed mid-burst"
    | k -> Buffer.add_subbytes buf chunk 0 k
  done;
  Unix.close fd;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one response per request" n (List.length lines);
  let ok, backpressure, other =
    List.fold_left
      (fun (ok, bp, other) line ->
        match Service.Protocol.response_of_line line with
        | Ok (Service.Protocol.Submit_ok _) -> (ok + 1, bp, other)
        | Ok
            (Service.Protocol.Error
               {
                 code = Service.Protocol.Backpressure;
                 retry_after_ms = Some ms;
                 _;
               })
          when ms > 0 ->
            (* Every shed carries a back-off hint for the retry loop. *)
            (ok, bp + 1, other)
        | _ -> (ok, bp, other + 1))
      (0, 0, 0) lines
  in
  Alcotest.(check int) "no other outcome" 0 other;
  Alcotest.(check bool) "some accepted" true (ok > 0);
  Alcotest.(check bool) "some backpressured" true (backpressure > 0);
  (* The daemon is still healthy afterwards. *)
  (match request_ok client Service.Protocol.Status with
  | Service.Protocol.Status_ok st ->
      Alcotest.(check int) "accepted = acked" ok st.Service.Protocol.accepted
  | _ -> Alcotest.fail "status after burst");
  Service.Client.close client

(* At-most-once retransmission: a (cid, cseq)-stamped feed re-sent after
   its ack was lost must come back from the dedupe cache — applied once,
   counted once — and the table must survive a kill -9 (it is rebuilt
   from the WAL). *)
let test_dedupe () =
  let@ dir = with_tmpdir in
  let state_dir = Filename.concat dir "state" in
  let service = mk_config ~machines:[| 2; 2 |] ~horizon:100_000 () in
  let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
  let submit client ~release ~cseq =
    request_ok client
      (Service.Protocol.Submit
         { org = 0; user = 0; release; size = 1; cid = 7; cseq; trace = 0 })
  in
  (let@ pid = with_server ~state_dir ~service addr in
   let client = connect_retry addr in
   let first = submit client ~release:1 ~cseq:1 in
   (match first with
   | Service.Protocol.Submit_ok { index = 0; _ } -> ()
   | _ -> Alcotest.fail "first submit");
   Alcotest.(check bool)
     "retransmission answered from the cache" true
     (submit client ~release:1 ~cseq:1 = first);
   (match request_ok client Service.Protocol.Status with
   | Service.Protocol.Status_ok st ->
       Alcotest.(check int) "applied once" 1 st.Service.Protocol.accepted
   | _ -> Alcotest.fail "status");
   (match submit client ~release:2 ~cseq:2 with
   | Service.Protocol.Submit_ok { index = 1; _ } -> ()
   | _ -> Alcotest.fail "second submit");
   (* A regressed cseq is a client bug, not a retry: typed rejection. *)
   (match submit client ~release:3 ~cseq:1 with
   | Service.Protocol.Error { code = Service.Protocol.Bad_request; _ } -> ()
   | _ -> Alcotest.fail "stale cseq must be rejected");
   Service.Client.close client;
   Unix.kill pid Sys.sigkill;
   ignore (Unix.waitpid [] pid));
  let@ _pid = with_server ~state_dir ~service addr in
  let client = connect_retry addr in
  (match submit client ~release:2 ~cseq:2 with
  | Service.Protocol.Submit_ok { index = 1; _ } -> ()
  | _ -> Alcotest.fail "post-crash retransmission not deduped");
  (match request_ok client Service.Protocol.Status with
  | Service.Protocol.Status_ok st ->
      Alcotest.(check int)
        "still applied once each" 2 st.Service.Protocol.accepted
  | _ -> Alcotest.fail "status after recovery");
  Service.Client.close client

(* Resilient stamps feeds once, before the first attempt, so any manual
   re-send of the same stamp is deduped server-side. *)
let test_resilient_stamping () =
  let@ dir = with_tmpdir in
  let service = mk_config ~machines:[| 2; 2 |] ~horizon:100_000 () in
  let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
  let@ _pid = with_server ~service addr in
  Service.Client.close (connect_retry addr);
  let conn =
    Service.Client.Resilient.create ~cid:42
      ~rng:(Fstats.Rng.create ~seed:3)
      addr
  in
  let submit release =
    match
      Service.Client.Resilient.call conn
        (Service.Protocol.Submit
           { org = 0; user = 0; release; size = 1; cid = 0; cseq = 0; trace = 0 })
    with
    | Ok (Service.Protocol.Submit_ok { index; _ }) -> index
    | Ok _ -> Alcotest.fail "unexpected response"
    | Error e ->
        Alcotest.failf "call: %s" (Service.Client.error_to_string e)
  in
  Alcotest.(check int) "first" 0 (submit 1);
  Alcotest.(check int) "second" 1 (submit 2);
  let client = connect_retry addr in
  (match
     request_ok client
       (Service.Protocol.Submit
          { org = 0; user = 0; release = 2; size = 1; cid = 42; cseq = 2; trace = 0 })
   with
  | Service.Protocol.Submit_ok { index = 1; _ } -> ()
  | _ -> Alcotest.fail "re-send of the resilient stamp not deduped");
  (match request_ok client Service.Protocol.Status with
  | Service.Protocol.Status_ok st ->
      Alcotest.(check int) "applied once each" 2 st.Service.Protocol.accepted
  | _ -> Alcotest.fail "status");
  let st = Service.Client.Resilient.stats conn in
  Alcotest.(check int)
    "healthy server needs no retries" 0
    st.Service.Client.Resilient.retries;
  Service.Client.Resilient.close conn;
  Service.Client.close client

(* Deadlines: a mute server turns into a typed Timeout, an absent one
   into Refused — never an indefinite block. *)
let test_client_timeout () =
  let@ dir = with_tmpdir in
  let path = Filename.concat dir "mute.sock" in
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 8;
  (* Listening but never accepting: connect lands in the backlog, the
     response never comes. *)
  (match Service.Client.connect ~timeout_s:1.0 (Service.Addr.Unix_sock path) with
  | Error e -> Alcotest.failf "connect: %s" (Service.Client.error_to_string e)
  | Ok c -> (
      (match Service.Client.request ~timeout_s:0.2 c Service.Protocol.Status with
      | Error (Service.Client.Timeout _) -> ()
      | Ok _ -> Alcotest.fail "mute server answered"
      | Error e ->
          Alcotest.failf "expected timeout, got %s"
            (Service.Client.error_to_string e));
      Service.Client.close c));
  Unix.close srv;
  match
    Service.Client.connect ~timeout_s:0.5
      (Service.Addr.Unix_sock (Filename.concat dir "absent.sock"))
  with
  | Error (Service.Client.Refused _) -> ()
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error e ->
      Alcotest.failf "expected refused, got %s"
        (Service.Client.error_to_string e)

let test_malformed_lines () =
  let@ dir = with_tmpdir in
  let service = mk_config () in
  let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
  let@ _pid = with_server ~service addr in
  let client = connect_retry addr in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Service.Addr.to_sockaddr addr);
  let payload = "}{ garbage \n{\"op\":\"warp\"}\n{\"op\":\"status\"}\n" in
  ignore (Unix.write_substring fd payload 0 (String.length payload));
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 1024 in
  let count_lines () =
    String.fold_left
      (fun acc c -> if c = '\n' then acc + 1 else acc)
      0 (Buffer.contents buf)
  in
  while count_lines () < 3 do
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Alcotest.fail "server closed on garbage"
    | k -> Buffer.add_subbytes buf chunk 0 k
  done;
  Unix.close fd;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  (match List.map Service.Protocol.response_of_line lines with
  | [ Ok (Service.Protocol.Error { code = Service.Protocol.Parse; _ });
      Ok (Service.Protocol.Error { code = Service.Protocol.Parse; _ });
      Ok (Service.Protocol.Status_ok _) ] ->
      ()
  | _ -> Alcotest.fail "expected parse, parse, status responses");
  (* And the daemon survives to serve the well-behaved client. *)
  (match request_ok client Service.Protocol.Psi with
  | Service.Protocol.Psi_ok _ -> ()
  | _ -> Alcotest.fail "psi after garbage");
  Service.Client.close client

let test_loadgen () =
  let@ dir = with_tmpdir in
  let lspec =
    Workload.Scenario.default ~norgs:3 ~machines:8 ~horizon:100_000 ~users:12
      Workload.Traces.lpc_egee
  in
  let seed = 9 in
  let machines, _ = Workload.Scenario.split_and_map lspec ~seed in
  let service =
    match
      Service.Config.make ~machines ~horizon:lspec.Workload.Scenario.horizon
        ~algorithm:"fairshare" ~seed ()
    with
    | Ok c -> c
    | Error msg -> Alcotest.failf "config: %s" msg
  in
  let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
  let@ _pid = with_server ~service addr in
  (* Wait for readiness through a throwaway connection. *)
  Service.Client.close (connect_retry addr);
  let report =
    match
      Service.Loadgen.run
        {
          Service.Loadgen.addr;
          spec = lspec;
          seed;
          rate = 0.;
          count = 200;
          drain = true;
          policy = Service.Retry.default;
          timeout_s = 5.0;
          connections = 1;
          groups = 1;
          window = 1;
        }
    with
    | Ok r -> r
    | Error msg -> Alcotest.failf "loadgen: %s" msg
  in
  Alcotest.(check int) "all submitted" 200 report.Service.Loadgen.submitted;
  Alcotest.(check int) "all accepted" 200 report.Service.Loadgen.accepted;
  Alcotest.(check int) "no rejections" 0 report.Service.Loadgen.rejected;
  Alcotest.(check int) "no transport errors" 0 report.Service.Loadgen.errors;
  Alcotest.(check int) "latency histogram complete" 200
    report.Service.Loadgen.ack_latency.Obs.Metrics.count

(* --- Sharding: org-group partition, group commit, fault isolation ----------- *)

(* The partition is a pure function of the durable config: contiguous
   balanced org blocks, each owning exactly the machines its orgs endow. *)
let test_partition_groups () =
  (match
     Service.Config.make ~groups:3 ~machines:[| 1; 1 |] ~horizon:10
       ~algorithm:"fifo" ~seed:1 ()
   with
  | Ok _ -> Alcotest.fail "groups > orgs accepted"
  | Error _ -> ());
  (match
     Service.Config.make ~groups:2 ~machines:[| 0; 1 |] ~horizon:10
       ~algorithm:"fifo" ~seed:1 ()
   with
  | Ok _ -> Alcotest.fail "machine-less group accepted"
  | Error _ -> ());
  let config = mk_config ~groups:2 ~machines:[| 2; 1; 1; 3 |] ~horizon:60 () in
  (match Service.Config.of_json (Service.Config.to_json config) with
  | Ok c ->
      Alcotest.(check bool) "grouped config round-trips" true
        (Service.Config.equal config c)
  | Error msg -> Alcotest.failf "of_json: %s" msg);
  let p = Service.Partition.make config in
  Alcotest.(check int) "groups" 2 (Service.Partition.groups p);
  Alcotest.(check (pair int int)) "org block 0" (0, 2)
    (Service.Partition.org_range p 0);
  Alcotest.(check (pair int int)) "org block 1" (2, 4)
    (Service.Partition.org_range p 1);
  Alcotest.(check (pair int int)) "machine block 0" (0, 3)
    (Service.Partition.machine_range p 0);
  Alcotest.(check (pair int int)) "machine block 1" (3, 7)
    (Service.Partition.machine_range p 1);
  for org = 0 to 3 do
    let g = Service.Partition.group_of_org p org in
    Alcotest.(check int) "org local/global round-trip" org
      (Service.Partition.global_org p ~group:g
         (Service.Partition.local_org p org))
  done;
  for m = 0 to 6 do
    let g = Service.Partition.group_of_machine p m in
    Alcotest.(check int) "machine local/global round-trip" m
      (Service.Partition.global_machine p ~group:g
         (Service.Partition.local_machine p m))
  done;
  let sub1 = Service.Partition.sub_config p 1 in
  Alcotest.(check (array int)) "sub-config machines" [| 1; 3 |]
    sub1.Service.Config.machines;
  Alcotest.(check int) "sub-config is single-group" 1
    sub1.Service.Config.groups;
  Alcotest.(check (array int)) "scatter reassembles blocks" [| 10; 11; 20; 21 |]
    (Service.Partition.scatter_int p (fun g ->
         if g = 0 then [| 10; 11 |] else [| 20; 21 |]))

(* Golden outcome of a grouped daemon: one batch Sim.Driver.run per
   org-group over the Partition.sub_config sub-instance, scattered and
   summed back into global shape. *)
let grouped_golden ~config instance =
  let p = Service.Partition.make config in
  let runs =
    Array.init (Service.Partition.groups p) (fun grp ->
        let sub = Service.Partition.sub_config p grp in
        let lo, _ = Service.Partition.org_range p grp in
        let sub_jobs =
          Array.to_list instance.Core.Instance.jobs
          |> List.filter_map (fun (j : Core.Job.t) ->
                 if Service.Partition.group_of_org p j.Core.Job.org = grp then
                   Some
                     (Core.Job.make ~org:(j.Core.Job.org - lo) ~index:0
                        ~user:j.Core.Job.user ~release:j.Core.Job.release
                        ~size:j.Core.Job.size ())
                 else None)
        in
        let sub_instance =
          Core.Instance.make ~machines:sub.Service.Config.machines
            ~jobs:sub_jobs ~horizon:sub.Service.Config.horizon
        in
        Sim.Driver.run ~instance:sub_instance
          ~rng:(Fstats.Rng.create ~seed:sub.Service.Config.seed)
          (Algorithms.Registry.find_exn sub.Service.Config.algorithm))
  in
  let psi =
    Service.Partition.scatter_int p (fun g ->
        runs.(g).Sim.Driver.utilities_scaled)
  in
  let parts = Service.Partition.scatter_int p (fun g -> runs.(g).Sim.Driver.parts) in
  let stats =
    Kernel.Stats.total
      (Array.to_list (Array.map (fun r -> r.Sim.Driver.stats) runs))
  in
  (psi, parts, stats)

(* The differential the refactor hangs on: for a fixed --groups, the
   worker-domain count is pure execution — ψsp, parts, and kernel stats
   from a served run are bit-identical across --shards 1, 2, 4, and all
   equal the per-group batch runs. *)
let sharded_differential_qcheck =
  let gen =
    QCheck.Gen.(
      let* njobs = int_range 8 30 in
      list_size (return njobs)
        (let* org = int_range 0 3 in
         let* user = int_range 0 7 in
         let* release = int_range 0 280 in
         let* size = int_range 1 5 in
         return (org, user, release, size)))
  in
  let arb =
    QCheck.make
      ~print:(fun raw ->
        String.concat ";"
          (List.map
             (fun (o, u, r, s) -> Printf.sprintf "J(o%d,u%d,r%d,s%d)" o u r s)
             raw))
      gen
  in
  QCheck.Test.make ~name:"psi bit-identical across shards 1|2|4" ~count:4 arb
    (fun raw ->
      let machines = [| 2; 2; 2; 2 |] and horizon = 300 in
      let jobs =
        List.map
          (fun (org, user, release, size) ->
            Core.Job.make ~org ~index:0 ~user ~release ~size ())
          raw
      in
      let instance = Core.Instance.make ~machines ~jobs ~horizon in
      let config =
        mk_config ~groups:4 ~machines ~horizon ~algorithm:"fairshare" ~seed:5
          ()
      in
      let golden_psi, golden_parts, golden_stats =
        grouped_golden ~config instance
      in
      List.iter
        (fun shards ->
          let@ dir = with_tmpdir in
          let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
          let@ _pid = with_server ~shards ~service:config addr in
          let client = connect_retry addr in
          Array.iter (submit_job client) instance.Core.Instance.jobs;
          (match
             request_ok client (Service.Protocol.Drain { detail = false })
           with
          | Service.Protocol.Drain_ok r ->
              if r.Service.Protocol.d_psi_scaled <> golden_psi then
                QCheck.Test.fail_reportf "shards=%d: psi diverged" shards;
              if r.Service.Protocol.d_parts <> golden_parts then
                QCheck.Test.fail_reportf "shards=%d: parts diverged" shards;
              if
                stats_string r.Service.Protocol.d_stats
                <> stats_string golden_stats
              then QCheck.Test.fail_reportf "shards=%d: stats diverged" shards
          | _ -> QCheck.Test.fail_reportf "shards=%d: drain failed" shards);
          Service.Client.close client)
        [ 1; 2; 4 ];
      true)

(* Group commit: a pipelined burst is acked with far fewer fsyncs than
   acks, and — the durability contract — everything acked before a
   kill -9 is recovered from the per-group segments. *)
let test_group_commit_recovery () =
  let@ dir = with_tmpdir in
  let state_dir = Filename.concat dir "state" in
  let service =
    mk_config ~groups:2 ~machines:[| 2; 2 |] ~horizon:100_000 ()
  in
  let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
  let n = 64 in
  (let@ pid =
     with_server ~state_dir ~shards:2 ~commit_interval:0.05 ~service addr
   in
   (* Pipeline the burst on a raw socket: one write, n acks. *)
   let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
   Unix.connect fd (Service.Addr.to_sockaddr addr);
   let burst = Buffer.create 4096 in
   for i = 1 to n do
     Buffer.add_string burst
       (Service.Protocol.request_to_line
          (Service.Protocol.Submit
             {
               org = i land 1;
               user = 0;
               release = i;
               size = 1;
               cid = 0;
               cseq = 0;
               trace = 0;
             }))
   done;
   let payload = Buffer.contents burst in
   ignore (Unix.write_substring fd payload 0 (String.length payload));
   let buf = Buffer.create 4096 in
   let chunk = Bytes.create 4096 in
   let count_lines () =
     String.fold_left
       (fun acc c -> if c = '\n' then acc + 1 else acc)
       0 (Buffer.contents buf)
   in
   while count_lines () < n do
     match Unix.read fd chunk 0 (Bytes.length chunk) with
     | 0 -> Alcotest.fail "server closed mid-burst"
     | k -> Buffer.add_subbytes buf chunk 0 k
   done;
   Unix.close fd;
   String.split_on_char '\n' (Buffer.contents buf)
   |> List.filter (fun l -> l <> "")
   |> List.iter (fun line ->
          match Service.Protocol.response_of_line line with
          | Ok (Service.Protocol.Submit_ok _) -> ()
          | _ -> Alcotest.failf "burst response not an ack: %s" line);
   let client = connect_retry addr in
   (match request_ok client Service.Protocol.Status with
   | Service.Protocol.Status_ok st ->
       Alcotest.(check int) "groups" 2 st.Service.Protocol.groups;
       Alcotest.(check int) "shards" 2 st.Service.Protocol.shards;
       Alcotest.(check int) "all acked" n st.Service.Protocol.accepted;
       Alcotest.(check bool) "acks were fsynced" true
         (st.Service.Protocol.fsyncs > 0);
       Alcotest.(check bool)
         (Printf.sprintf "group commit amortized (%d fsyncs / %d acks)"
            st.Service.Protocol.fsyncs n)
         true
         (st.Service.Protocol.fsyncs < n)
   | _ -> Alcotest.fail "status: unexpected response");
   Service.Client.close client;
   Unix.kill pid Sys.sigkill;
   ignore (Unix.waitpid [] pid));
  (* Second life: every acked submission must come back from the two
     wal-<g>/ segments. *)
  let@ _pid =
    with_server ~state_dir ~shards:2 ~commit_interval:0.05 ~service addr
  in
  let client = connect_retry addr in
  (match request_ok client Service.Protocol.Status with
  | Service.Protocol.Status_ok st ->
      Alcotest.(check int) "acked burst recovered" n
        st.Service.Protocol.accepted
  | _ -> Alcotest.fail "status: unexpected response");
  (match request_ok client (Service.Protocol.Drain { detail = false }) with
  | Service.Protocol.Drain_ok _ -> ()
  | _ -> Alcotest.fail "drain: unexpected response");
  Service.Client.close client

(* Fault isolation: a chaos plan targeting one segment's fsyncs
   (site prefix g1/) turns that group's submissions into wal-errors while
   the other group keeps acking — the blast radius of a sick WAL is one
   org-group, not the daemon.  (:2+ skips the segment's header fsync at
   boot.) *)
let test_shard_chaos_isolation () =
  let@ dir = with_tmpdir in
  let state_dir = Filename.concat dir "state" in
  let service =
    mk_config ~groups:2 ~machines:[| 2; 2 |] ~horizon:100_000 ()
  in
  let addr = Service.Addr.Unix_sock (Filename.concat dir "d.sock") in
  let submit client ~org ~release =
    request_ok client
      (Service.Protocol.Submit
         { org; user = 0; release; size = 1; cid = 0; cseq = 0; trace = 0 })
  in
  let@ _pid =
    with_server ~state_dir ~chaos:"eio@g1/wal-fsync:2+" ~service addr
  in
  let client = connect_retry addr in
  (match submit client ~org:0 ~release:1 with
  | Service.Protocol.Submit_ok _ -> ()
  | _ -> Alcotest.fail "healthy group rejected a submission");
  (match submit client ~org:1 ~release:1 with
  | Service.Protocol.Error { code = Service.Protocol.Wal_error; _ } -> ()
  | Service.Protocol.Submit_ok _ ->
      Alcotest.fail "sick group acked without a durable record"
  | _ -> Alcotest.fail "sick group: unexpected response");
  (* The healthy group is unaffected by its neighbour's sick disk. *)
  (match submit client ~org:0 ~release:2 with
  | Service.Protocol.Submit_ok _ -> ()
  | _ -> Alcotest.fail "healthy group stopped acking");
  (match request_ok client Service.Protocol.Status with
  | Service.Protocol.Status_ok st ->
      (* The wal-errored feed stays admitted (its record is pending until
         a later sync repairs it) — same books as the pre-sharding server
         kept under a sick disk. *)
      Alcotest.(check int) "admitted feeds counted" 3
        st.Service.Protocol.accepted
  | _ -> Alcotest.fail "status: unexpected response");
  Service.Client.close client

let () =
  Random.self_init ();
  Alcotest.run "service"
    [
      ( "config",
        [
          Alcotest.test_case "roundtrip" `Quick test_config_roundtrip;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
      ("addr", [ Alcotest.test_case "parse" `Quick test_addr ]);
      ( "protocol",
        [
          Alcotest.test_case "requests" `Quick test_protocol_requests;
          Alcotest.test_case "responses" `Quick test_protocol_responses;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn-tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "snapshot-dedupe" `Quick test_wal_snapshot_dedupe;
          Alcotest.test_case "sync-repair" `Quick test_wal_sync_repair;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff" `Quick test_retry_backoff;
          Alcotest.test_case "budget-and-jitter" `Quick
            test_retry_budget_and_jitter;
        ] );
      ( "overload",
        [
          Alcotest.test_case "dwell" `Quick test_overload_dwell;
          Alcotest.test_case "no-flap" `Quick test_overload_no_flap;
          Alcotest.test_case "ack-signal" `Quick test_overload_ack_signal;
        ] );
      ( "online",
        [
          Alcotest.test_case "equivalence-fifo" `Quick test_equivalence_fifo;
          Alcotest.test_case "equivalence-random" `Quick
            test_equivalence_random;
          Alcotest.test_case "equivalence-ref" `Quick test_equivalence_ref;
          Alcotest.test_case "equivalence-faults" `Quick
            test_equivalence_faults;
          Alcotest.test_case "admission" `Quick test_online_admission;
        ] );
      ( "server",
        [
          Alcotest.test_case "served-equivalence" `Quick
            test_served_equivalence;
          Alcotest.test_case "crash-recovery" `Quick test_crash_recovery;
          Alcotest.test_case "backpressure" `Quick test_backpressure;
          Alcotest.test_case "dedupe" `Quick test_dedupe;
          Alcotest.test_case "resilient-stamping" `Quick
            test_resilient_stamping;
          Alcotest.test_case "client-timeout" `Quick test_client_timeout;
          Alcotest.test_case "malformed-lines" `Quick test_malformed_lines;
          Alcotest.test_case "loadgen" `Quick test_loadgen;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "partition" `Quick test_partition_groups;
          QCheck_alcotest.to_alcotest sharded_differential_qcheck;
          Alcotest.test_case "group-commit-recovery" `Quick
            test_group_commit_recovery;
          Alcotest.test_case "chaos-isolation" `Quick
            test_shard_chaos_isolation;
        ] );
    ]
