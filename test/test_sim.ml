(* Tests for the simulation driver, the fairness evaluation, and the
   Section 6 utilization results. *)

open Core

let fifo = Algorithms.Registry.find_exn "fifo"

let mk_jobs specs =
  List.map
    (fun (org, release, size) -> Job.make ~org ~index:0 ~release ~size ())
    specs

(* --- Driver ----------------------------------------------------------------- *)

let test_driver_basic () =
  let instance =
    Instance.make ~machines:[| 1; 1 |]
      ~jobs:(mk_jobs [ (0, 0, 3); (1, 0, 2); (0, 4, 1) ])
      ~horizon:10
  in
  let r = Sim.Driver.run ~instance ~rng:(Fstats.Rng.create ~seed:1) fifo in
  Alcotest.(check int) "three jobs placed" 3
    (Schedule.job_count r.Sim.Driver.schedule);
  (* ψsp by hand: org0 = (0,3) + (4,1) at t=10 → 3·(10−1) + 1·(10−4) = 33;
     org1 = (0,2) → 2·(10−0.5) = 19. *)
  Alcotest.(check (array int)) "utilities" [| 66; 38 |]
    r.Sim.Driver.utilities_scaled;
  Alcotest.(check int) "parts" (4 + 2) (Sim.Driver.total_parts r);
  Alcotest.(check bool) "events counted" true (r.Sim.Driver.events >= 3)

let test_driver_horizon_cutoff () =
  (* Jobs that would start at or after the horizon are never started; a job
     released before the horizon but unfinished contributes only its
     executed parts. *)
  let instance =
    Instance.make ~machines:[| 1 |]
      ~jobs:(mk_jobs [ (0, 0, 4); (0, 3, 10) ])
      ~horizon:6
  in
  let r = Sim.Driver.run ~instance ~rng:(Fstats.Rng.create ~seed:1) fifo in
  List.iter
    (fun (p : Schedule.placement) ->
      Alcotest.(check bool) "no start at/after horizon" true
        (p.Schedule.start < 6))
    (Schedule.placements r.Sim.Driver.schedule);
  (* Second job starts at 4, runs slots 4,5 before the horizon: 2 parts. *)
  Alcotest.(check int) "partial credit" (4 + 2) (Sim.Driver.total_parts r)

let test_driver_no_record () =
  let instance =
    Instance.make ~machines:[| 1 |] ~jobs:(mk_jobs [ (0, 0, 1) ]) ~horizon:5
  in
  let r =
    Sim.Driver.run ~record:false ~instance ~rng:(Fstats.Rng.create ~seed:1)
      fifo
  in
  Alcotest.(check int) "schedule empty when not recording" 0
    (Schedule.job_count r.Sim.Driver.schedule);
  Alcotest.(check (array int)) "utilities still exact" [| 2 * 5 |]
    r.Sim.Driver.utilities_scaled

(* --- Fairness ---------------------------------------------------------------- *)

let test_delta_ratio () =
  let instance =
    Instance.make ~machines:[| 1; 1 |]
      ~jobs:(mk_jobs [ (0, 0, 2); (1, 0, 2) ])
      ~horizon:10
  in
  let reference =
    Sim.Driver.run ~instance ~rng:(Fstats.Rng.create ~seed:1) fifo
  in
  let delta, ratio = Sim.Fairness.delta_ratio ~reference reference in
  Alcotest.(check int) "self distance 0" 0 delta;
  Alcotest.(check (float 1e-9)) "self ratio 0" 0. ratio

let test_evaluate_pipeline () =
  let instance =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs:3 ~machines:6 ~horizon:20_000
         Workload.Traces.ricc)
      ~seed:77
  in
  let reference, evals =
    Sim.Fairness.evaluate ~instance ~seed:1
      [ Algorithms.Registry.find_exn "ref"; Algorithms.Registry.find_exn "roundrobin" ]
  in
  Alcotest.(check string) "reference is ref" "ref" reference.Sim.Driver.policy;
  (match evals with
  | [ ref_eval; rr_eval ] ->
      (* Running REF against the REF reference with the same instance is
         deterministic → distance 0. *)
      Alcotest.(check (float 1e-9)) "ref vs ref" 0. ref_eval.Sim.Fairness.ratio;
      Alcotest.(check bool) "roundrobin not better than ref" true
        (rr_eval.Sim.Fairness.ratio >= 0.)
  | _ -> Alcotest.fail "expected two evaluations")

(* --- Utilization (Section 6) --------------------------------------------------- *)

let test_figure7_tightness () =
  List.iter
    (fun (m, p) ->
      let instance = Sim.Utilization.figure7_instance ~m ~p in
      let worst = Sim.Utilization.run_utilization ~instance ~seed:1 fifo in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "worst greedy m=%d p=%d" m p)
        0.75 worst;
      let opt =
        Sim.Utilization.optimal_busy_time ~instance
          ~upto:instance.Instance.horizon
      in
      Alcotest.(check int)
        (Printf.sprintf "optimum saturates m=%d p=%d" m p)
        (m * 2 * p) opt)
    [ (2, 2); (4, 3); (6, 2) ]

let test_optimal_beats_greedy_never () =
  (* optimal_busy_time is an upper bound for any greedy run. *)
  let rng = Fstats.Rng.create ~seed:55 in
  for _ = 1 to 25 do
    let norgs = 2 in
    let machines = [| 1; 1 |] in
    let njobs = 1 + Fstats.Rng.int rng 5 in
    let jobs =
      List.init njobs (fun _ ->
          Job.make
            ~org:(Fstats.Rng.int rng norgs)
            ~index:0
            ~release:(Fstats.Rng.int rng 6)
            ~size:(1 + Fstats.Rng.int rng 5)
            ())
    in
    let horizon = 12 in
    let instance = Instance.make ~machines ~jobs ~horizon in
    let opt = Sim.Utilization.optimal_busy_time ~instance ~upto:horizon in
    let bound =
      Utility.Metrics.work_upper_bound
        ~all_jobs:(Array.to_list instance.Instance.jobs)
        ~machines:2 ~upto:horizon
    in
    Alcotest.(check bool) "opt <= work bound" true (opt <= bound);
    List.iter
      (fun name ->
        let r =
          Sim.Driver.run ~instance ~rng:(Fstats.Rng.create ~seed:9)
            (Algorithms.Registry.find_exn name)
        in
        let busy = Schedule.busy_time r.Sim.Driver.schedule ~upto:horizon in
        Alcotest.(check bool)
          (Printf.sprintf "%s busy %d <= opt %d" name busy opt)
          true (busy <= opt);
        (* Theorem 6.2: every greedy run achieves at least 3/4 of the
           optimum. *)
        Alcotest.(check bool)
          (Printf.sprintf "%s 3/4-competitive (%d vs %d)" name busy opt)
          true
          (4 * busy >= 3 * opt))
      [ "fifo"; "random"; "roundrobin"; "longest-queue" ]
  done

let test_work_bound () =
  let instance = Sim.Utilization.figure7_instance ~m:4 ~p:3 in
  Alcotest.(check (float 1e-9))
    "work bound on saturated family" 1.0
    (Sim.Utilization.work_bound_utilization ~instance
       ~upto:instance.Instance.horizon)

let () =
  Alcotest.run "sim"
    [
      ( "driver",
        [
          Alcotest.test_case "basic run" `Quick test_driver_basic;
          Alcotest.test_case "horizon cutoff" `Quick test_driver_horizon_cutoff;
          Alcotest.test_case "no record" `Quick test_driver_no_record;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "delta ratio" `Quick test_delta_ratio;
          Alcotest.test_case "evaluate pipeline" `Quick test_evaluate_pipeline;
        ] );
      ( "utilization",
        [
          Alcotest.test_case "figure 7 tightness" `Quick test_figure7_tightness;
          Alcotest.test_case "greedy 3/4-competitive" `Quick
            test_optimal_beats_greedy_never;
          Alcotest.test_case "work bound" `Quick test_work_bound;
        ] );
    ]
