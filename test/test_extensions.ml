(* Tests for the model extensions: related machines (speeds threaded through
   the whole fairness pipeline) and rigid parallel jobs. *)

open Core
module Rigid = Extensions.Rigid

(* --- Related machines --------------------------------------------------- *)

let related_instance () =
  let jobs =
    List.init 10 (fun i ->
        Job.make ~org:(i mod 2) ~index:0 ~release:i ~size:8 ())
  in
  Instance.make_related
    ~speeds:[| 2.0; 1.0; 0.5 |]
    ~machines:[| 2; 1 |] ~jobs ~horizon:100

let test_speed_accessors () =
  let i = related_instance () in
  Alcotest.(check (float 1e-9)) "machine 0" 2.0 (Instance.machine_speed i 0);
  Alcotest.(check (float 1e-9)) "machine 2" 0.5 (Instance.machine_speed i 2);
  Alcotest.(check (array (float 1e-9)))
    "org 0 speeds" [| 2.0; 1.0 |]
    (Instance.speeds_of_org i 0);
  Alcotest.(check (array (float 1e-9)))
    "org 1 speeds" [| 0.5 |]
    (Instance.speeds_of_org i 1);
  let identical = Instance.make ~machines:[| 2 |] ~jobs:[] ~horizon:5 in
  Alcotest.(check (float 1e-9)) "identical default" 1.0
    (Instance.machine_speed identical 1)

let test_speed_validation () =
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Instance.make: speeds length must match machine count")
    (fun () ->
      ignore
        (Instance.make_related ~speeds:[| 1.0 |] ~machines:[| 2 |] ~jobs:[]
           ~horizon:5));
  Alcotest.check_raises "non-positive speed"
    (Invalid_argument "Instance.make: speed <= 0") (fun () ->
      ignore
        (Instance.make_related ~speeds:[| 1.0; 0.0 |] ~machines:[| 2 |]
           ~jobs:[] ~horizon:5))

let test_cluster_durations () =
  let c =
    Cluster.create ~record:true
      ~speeds:[| 2.0; 0.5 |]
      ~machine_owners:[| 0; 0 |] ~norgs:1 ()
  in
  Cluster.release c (Job.make ~org:0 ~index:0 ~release:0 ~size:10 ());
  Cluster.release c (Job.make ~org:0 ~index:1 ~release:0 ~size:10 ());
  let fast = Cluster.start_front c ~org:0 ~time:0 ~machine:0 () in
  let slow = Cluster.start_front c ~org:0 ~time:0 ~machine:1 () in
  Alcotest.(check int) "fast wall time" 5 fast.Schedule.duration;
  Alcotest.(check int) "slow wall time" 20 slow.Schedule.duration;
  Alcotest.(check int) "completion uses duration" 5
    (Schedule.completion fast);
  Alcotest.(check (option int)) "heap ordered by wall finish" (Some 5)
    (Cluster.next_completion c);
  Alcotest.(check (option int)) "fastest free none" None
    (Cluster.fastest_free_machine c)

let test_driver_on_related () =
  (* Driver utilities must equal ψsp recomputed from the recorded schedule
     (both duration-aware). *)
  let instance = related_instance () in
  List.iter
    (fun name ->
      let r =
        Sim.Driver.run ~instance
          ~rng:(Fstats.Rng.create ~seed:3)
          (Algorithms.Registry.find_exn name)
      in
      let sched = r.Sim.Driver.schedule in
      Alcotest.(check bool)
        (name ^ " feasible") true
        (Result.is_ok (Schedule.check_feasible sched));
      Array.iteri
        (fun org v ->
          Alcotest.(check int)
            (Printf.sprintf "%s org %d utility" name org)
            (Utility.Psp.of_schedule_scaled sched ~org
               ~at:instance.Instance.horizon)
            v)
        r.Sim.Driver.utilities_scaled)
    [ "ref"; "rand-15"; "fairshare"; "directcontr"; "fifo" ]

let test_gadget_sweep () =
  List.iter
    (fun (r : Sim.Related.gadget_row) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "work ratio 1/%d" r.Sim.Related.ratio)
        (1. /. float_of_int r.Sim.Related.ratio)
        r.Sim.Related.work_ratio)
    (Sim.Related.gadget_sweep ~ratios:[ 1; 2; 5; 10 ] ~work:30 ())

let test_executed_work () =
  let instance = Sim.Related.speed_gadget ~ratio:4 ~work:10 in
  let r =
    Sim.Driver.run ~instance
      ~rng:(Fstats.Rng.create ~seed:1)
      Sim.Related.pin_fastest
  in
  Alcotest.(check (float 1e-9))
    "all 40 units executed by the fast machine" 40.
    (Sim.Related.executed_work r.Sim.Driver.schedule ~instance ~upto:10)

(* --- Rigid parallel jobs -------------------------------------------------- *)

let rigid ~org ~index ~release ~size ~width =
  { Rigid.job = Job.make ~org ~index ~release ~size (); width }

let test_rigid_validation () =
  Alcotest.check_raises "width too big"
    (Invalid_argument "Rigid.make_instance: width out of range") (fun () ->
      ignore
        (Rigid.make_instance ~machines:2
           ~jobs:[ rigid ~org:0 ~index:0 ~release:0 ~size:1 ~width:3 ]
           ~horizon:10))

let test_rigid_simulation () =
  (* 3 machines; a 2-wide job and two 1-wide jobs at t=0, then another
     2-wide at t=1. *)
  let jobs =
    [
      rigid ~org:0 ~index:0 ~release:0 ~size:4 ~width:2;
      rigid ~org:1 ~index:0 ~release:0 ~size:3 ~width:1;
      rigid ~org:1 ~index:1 ~release:0 ~size:3 ~width:1;
      rigid ~org:2 ~index:0 ~release:1 ~size:2 ~width:2;
    ]
  in
  let instance = Rigid.make_instance ~machines:3 ~jobs ~horizon:12 in
  List.iter
    (fun policy ->
      let run = Rigid.simulate instance policy in
      Alcotest.(check bool)
        (Rigid.policy_name policy ^ " greedy & feasible")
        true
        (Result.is_ok (Rigid.check_rigid_greedy instance run));
      Alcotest.(check int)
        (Rigid.policy_name policy ^ " all work done")
        (8 + 3 + 3 + 4) run.Rigid.busy_time)
    [ Rigid.Fifo_fit; Rigid.Widest_fit; Rigid.Narrowest_fit ]

let test_rigid_starvation () =
  List.iter
    (fun (r : Rigid.gadget_row) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "1/m for m=%d" r.Rigid.m)
        (1. /. float_of_int r.Rigid.m)
        r.Rigid.ratio;
      Alcotest.(check (float 1e-9))
        "wide-first saturates" 1.0 r.Rigid.wide_first)
    (Rigid.gadget_sweep ~ms:[ 2; 3; 8 ] ~size:20)

let test_rigid_greedy_validator_catches () =
  let jobs = [ rigid ~org:0 ~index:0 ~release:0 ~size:2 ~width:1 ] in
  let instance = Rigid.make_instance ~machines:2 ~jobs ~horizon:10 in
  (* Hand-build a lazy run: the job starts at 5 though machines idle. *)
  let lazy_run =
    {
      Rigid.placements = [ (List.hd instance.Rigid.jobs, 5) ];
      busy_time = 2;
      utilization = 0.1;
      killed = 0;
      abandoned = 0;
      wasted = 0;
      stats = Kernel.Stats.create ();
    }
  in
  Alcotest.(check bool)
    "non-greedy detected" true
    (Result.is_error (Rigid.check_rigid_greedy instance lazy_run))

(* --- Preemptive slot scheduler --------------------------------------------- *)

let test_preemptive_conservation () =
  (* All work completes when capacity suffices, parts are conserved, and a
     lone organization gets everything. *)
  let jobs =
    List.init 6 (fun i -> Job.make ~org:0 ~index:i ~release:0 ~size:5 ())
  in
  let instance = Instance.make ~machines:[| 2 |] ~jobs ~horizon:40 in
  let run = Extensions.Preemptive.simulate ~instance Extensions.Preemptive.Equal_share in
  Alcotest.(check int) "all jobs complete" 6 run.Extensions.Preemptive.completed_jobs;
  Alcotest.(check int) "all parts executed" 30 run.Extensions.Preemptive.parts.(0)

let test_preemptive_equal_share_balances () =
  (* Two identical saturated orgs on one machine: equal shares of parts. *)
  let jobs =
    List.concat_map
      (fun org ->
        List.init 10 (fun i -> Job.make ~org ~index:i ~release:0 ~size:10 ()))
      [ 0; 1 ]
  in
  let instance = Instance.make ~machines:[| 1; 0 |] ~jobs ~horizon:100 in
  let run =
    Extensions.Preemptive.simulate ~instance Extensions.Preemptive.Equal_share
  in
  let p = run.Extensions.Preemptive.parts in
  Alcotest.(check bool)
    (Printf.sprintf "balanced parts %d vs %d" p.(0) p.(1))
    true
    (abs (p.(0) - p.(1)) <= 2);
  Alcotest.(check int) "capacity exhausted" 100 (p.(0) + p.(1))

let test_preemptive_delta_ratio () =
  let instance =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs:3 ~machines:6 ~horizon:10_000
         Workload.Traces.lpc_egee)
      ~seed:5
  in
  let reference =
    Sim.Driver.run ~record:false ~instance
      ~rng:(Fstats.Rng.create ~seed:1)
      Algorithms.Reference.reference
  in
  let run =
    Extensions.Preemptive.simulate ~instance
      Extensions.Preemptive.Utility_balance
  in
  let delta, ratio = Extensions.Preemptive.delta_ratio ~reference run in
  Alcotest.(check bool) "delta non-negative" true (delta >= 0);
  Alcotest.(check bool) "ratio finite" true (Float.is_finite ratio);
  (* Preemption respects the same capacity: parts cannot exceed m·T. *)
  Alcotest.(check bool) "parts bounded" true
    (Array.fold_left ( + ) 0 run.Extensions.Preemptive.parts <= 6 * 10_000)

let () =
  Alcotest.run "extensions"
    [
      ( "related-machines",
        [
          Alcotest.test_case "speed accessors" `Quick test_speed_accessors;
          Alcotest.test_case "speed validation" `Quick test_speed_validation;
          Alcotest.test_case "cluster durations" `Quick test_cluster_durations;
          Alcotest.test_case "driver + algorithms on related" `Quick
            test_driver_on_related;
          Alcotest.test_case "gadget: 1/ratio work loss" `Quick
            test_gadget_sweep;
          Alcotest.test_case "executed work" `Quick test_executed_work;
        ] );
      ( "preemptive",
        [
          Alcotest.test_case "conservation" `Quick
            test_preemptive_conservation;
          Alcotest.test_case "equal share balances" `Quick
            test_preemptive_equal_share_balances;
          Alcotest.test_case "delta ratio" `Quick test_preemptive_delta_ratio;
        ] );
      ( "rigid-jobs",
        [
          Alcotest.test_case "validation" `Quick test_rigid_validation;
          Alcotest.test_case "simulation invariants" `Quick
            test_rigid_simulation;
          Alcotest.test_case "starvation gadget 1/m" `Quick
            test_rigid_starvation;
          Alcotest.test_case "greedy validator" `Quick
            test_rigid_greedy_validator_catches;
        ] );
    ]
