(* Tests for the federation subsystem: endowment-event semantics (lend,
   reclaim, leave, join), the ownership replay state, the peak-offloading
   generator, and the differential guards — capacity conservation under
   endowment churn, no job outside the consortium, and empty-stream
   bit-identity with the static consortium across policies and worker
   counts. *)

open Core
module FE = Federation.Event
module FM = Federation.Model

let run ?(record = true) ?(federation = []) ?(faults = []) ?workers
    ?max_restarts ~instance ~seed name =
  Sim.Driver.run ~record ~federation ~faults ?workers ?max_restarts ~instance
    ~rng:(Fstats.Rng.create ~seed)
    (Algorithms.Registry.find_exn name)

let mk_jobs specs =
  List.map
    (fun (org, index, release, size) -> Job.make ~org ~index ~release ~size ())
    specs

let ev time event = { FE.time; event }

(* --- Event and ownership semantics -------------------------------------- *)

let test_scripted_order () =
  let trace =
    FM.scripted
      [
        ev 7 (FE.Reclaim { org = 0; machines = [ 1 ] });
        ev 3 (FE.Lend { org = 0; to_org = 1; machines = [ 1 ] });
        ev 3 (FE.Leave { org = 2 });
      ]
  in
  let show e = Format.asprintf "%a" FE.pp_timed e in
  Alcotest.(check (list string))
    "canonical order"
    [ "t=3 lend(o0->o1 [m1])"; "t=3 leave(o2)"; "t=7 reclaim(o0 [m1])" ]
    (List.map show trace)

let homes_of machines_per_org =
  Array.concat
    (List.init (Array.length machines_per_org) (fun u ->
         Array.make machines_per_org.(u) u))

let test_ownership_lend_reclaim () =
  let own = FE.Ownership.create ~homes:(homes_of [| 2; 1 |]) ~orgs:2 in
  (match FE.Ownership.apply own (FE.Lend { org = 0; to_org = 1; machines = [ 1 ] }) with
  | Ok [ FE.Ownership.Transfer { machine = 1; org = 1 } ] -> ()
  | Ok cs -> Alcotest.failf "unexpected changes (%d)" (List.length cs)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "owner moved" 1 (FE.Ownership.owner own 1);
  Alcotest.(check int) "home fixed" 0 (FE.Ownership.home own 1);
  Alcotest.(check int) "borrower counts it" 2 (FE.Ownership.owned_count own 1);
  Alcotest.(check int) "lender lent one" 1 (FE.Ownership.lent_out own 0);
  (* Lending a machine one no longer owns is rejected, state untouched. *)
  (match FE.Ownership.apply own (FE.Lend { org = 0; to_org = 1; machines = [ 1 ] }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "re-lending someone else's machine must fail");
  (match FE.Ownership.apply own (FE.Reclaim { org = 0; machines = [ 1 ] }) with
  | Ok [ FE.Ownership.Transfer { machine = 1; org = 0 } ] -> ()
  | _ -> Alcotest.fail "reclaim transfers back");
  Alcotest.(check int) "owner restored" 0 (FE.Ownership.owner own 1)

let test_ownership_leave_join () =
  let own = FE.Ownership.create ~homes:(homes_of [| 2; 1 |]) ~orgs:2 in
  (* Org 0 lends m1 to org 1, then leaves: its home machines (m0, m1 —
     wherever lent) retire; nothing was borrowed.  Rejoining with [] brings
     every absent home machine back under its ownership. *)
  (match FE.Ownership.apply own (FE.Lend { org = 0; to_org = 1; machines = [ 1 ] }) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match FE.Ownership.apply own (FE.Leave { org = 0 }) with
  | Ok [ FE.Ownership.Deactivate 0; FE.Ownership.Retire 0; FE.Ownership.Retire 1 ]
    -> ()
  | Ok cs ->
      Alcotest.failf "unexpected leave changes: %d" (List.length cs)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "m1 absent" false (FE.Ownership.present own 1);
  Alcotest.(check int) "k(t) shrank" 1 (FE.Ownership.orgs_active own);
  Alcotest.(check int) "only org1's machine left" 1
    (FE.Ownership.present_count own);
  (match FE.Ownership.apply own (FE.Join { org = 0; machines = [] }) with
  | Ok
      [
        FE.Ownership.Activate 0;
        FE.Ownership.Admit { machine = 0; org = 0 };
        FE.Ownership.Admit { machine = 1; org = 0 };
      ] ->
      ()
  | Ok cs -> Alcotest.failf "unexpected join changes: %d" (List.length cs)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "endowment restored" 2 (FE.Ownership.owned_count own 0)

let test_leave_reverts_borrowed () =
  let own = FE.Ownership.create ~homes:(homes_of [| 1; 1 |]) ~orgs:2 in
  (match FE.Ownership.apply own (FE.Lend { org = 0; to_org = 1; machines = [ 0 ] }) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* The borrower leaves: the borrowed machine reverts to its home owner
     and stays present; the borrower's own machine retires. *)
  (match FE.Ownership.apply own (FE.Leave { org = 1 }) with
  | Ok
      [
        FE.Ownership.Deactivate 1;
        FE.Ownership.Transfer { machine = 0; org = 0 };
        FE.Ownership.Retire 1;
      ] ->
      ()
  | Ok cs -> Alcotest.failf "unexpected changes: %d" (List.length cs)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "m0 still present" true (FE.Ownership.present own 0);
  Alcotest.(check int) "m0 back home" 0 (FE.Ownership.owner own 0)

let test_validate () =
  let homes = homes_of [| 1; 1 |] in
  Alcotest.(check bool) "good trace" true
    (Result.is_ok
       (FE.validate ~orgs:2 ~homes
          [
            ev 2 (FE.Lend { org = 0; to_org = 1; machines = [ 0 ] });
            ev 5 (FE.Reclaim { org = 0; machines = [ 0 ] });
          ]));
  Alcotest.(check bool) "unsorted rejected" true
    (Result.is_error
       (FE.validate ~orgs:2 ~homes
          [
            ev 5 (FE.Reclaim { org = 0; machines = [ 0 ] });
            ev 2 (FE.Lend { org = 0; to_org = 1; machines = [ 0 ] });
          ]));
  Alcotest.(check bool) "lending an unowned machine rejected" true
    (Result.is_error
       (FE.validate ~orgs:2 ~homes
          [ ev 0 (FE.Lend { org = 0; to_org = 1; machines = [ 1 ] }) ]))

let test_model_random () =
  let mk seed =
    FM.random
      ~rng:(Fstats.Rng.create ~seed)
      ~machines_per_org:[| 3; 3; 2 |] ~horizon:2_000 ~spec:FM.default_spec ()
  in
  let trace = mk 42 in
  Alcotest.(check bool) "deterministic in the seed" true (mk 42 = trace);
  Alcotest.(check bool) "non-empty" true (trace <> []);
  Alcotest.(check bool) "validates" true
    (Result.is_ok (FE.validate ~orgs:3 ~homes:(homes_of [| 3; 3; 2 |]) trace));
  let _, _, lends, reclaims = FM.count_kind trace in
  Alcotest.(check bool) "each reclaim has a lend" true (lends >= reclaims)

let test_script_parse () =
  match
    FM.script_of_lines
      [
        "# peak handoff";
        "10 lend 0 1 2 3";
        "";
        "40 reclaim 0 2 3";
        "50 leave 1";
        "60 join 1";
      ]
  with
  | Error e -> Alcotest.fail e
  | Ok trace ->
      let joins, leaves, lends, reclaims = FM.count_kind trace in
      Alcotest.(check (list int)) "counts" [ 1; 1; 1; 1 ]
        [ joins; leaves; lends; reclaims ];
      Alcotest.(check bool) "machines parsed" true
        (List.exists
           (fun e -> FE.machines e.FE.event = [ 2; 3 ])
           trace)

let test_spec_parse () =
  (match FM.spec_of_string "period:100,lend:2,correlation:0.5" with
  | Ok s ->
      Alcotest.(check int) "period" 100 s.FM.period;
      Alcotest.(check int) "lend" 2 s.FM.lend;
      Alcotest.(check (float 1e-9)) "correlation" 0.5 s.FM.correlation
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "junk rejected" true
    (Result.is_error (FM.spec_of_string "period:banana"))

(* --- Semantics through the driver ---------------------------------------- *)

(* The consortium pools every present machine for scheduling; a Lend moves
   ψsp capacity {e attribution} (coalition values, gauges), never the
   placement of jobs.  Two orgs, one home machine each, org 1 with two
   size-5 jobs at t = 0: the jobs run in parallel with or without the
   lend, bit-identically. *)
let test_lend_is_placement_neutral () =
  let instance =
    Instance.make ~machines:[| 1; 1 |]
      ~jobs:(mk_jobs [ (1, 0, 0, 5); (1, 1, 0, 5) ])
      ~horizon:20
  in
  let base = run ~instance ~seed:1 "fifo" in
  Alcotest.(check (array int)) "pooled: parallel" [| 0; 360 |]
    base.Sim.Driver.utilities_scaled;
  let federation = [ ev 0 (FE.Lend { org = 0; to_org = 1; machines = [ 0 ] }) ] in
  let r = run ~instance ~federation ~seed:1 "fifo" in
  Alcotest.(check (array int)) "transfer changes nothing for the schedule"
    base.Sim.Driver.utilities_scaled r.Sim.Driver.utilities_scaled;
  Alcotest.(check bool) "placements identical" true
    (Schedule.placements base.Sim.Driver.schedule
    = Schedule.placements r.Sim.Driver.schedule);
  Alcotest.(check int) "one endow event" 1
    r.Sim.Driver.stats.Kernel.Stats.endow_events

(* A Leave retires the departing org's machines: org 1's two jobs, parallel
   on the pooled pair above, serialize on its own machine once org 0 leaves
   at t = 0 — capacity really left the consortium. *)
let test_leave_removes_capacity () =
  let instance =
    Instance.make ~machines:[| 1; 1 |]
      ~jobs:(mk_jobs [ (1, 0, 0, 5); (1, 1, 0, 5) ])
      ~horizon:20
  in
  let federation = [ ev 0 (FE.Leave { org = 0 }) ] in
  let r = run ~instance ~federation ~seed:1 "fifo" in
  Alcotest.(check (array int)) "serialized on the remaining machine"
    [| 0; 310 |] r.Sim.Driver.utilities_scaled;
  Alcotest.(check int) "nothing was running to kill" 0 r.Sim.Driver.killed

(* Ownership transfers never disturb a running job: org 1 borrows org 0's
   only machine, its size-6 job starts at t = 0, and the reclaim at t = 3
   passes through silently — the job completes at 6. *)
let test_reclaim_keeps_running_job () =
  let instance =
    Instance.make ~machines:[| 1; 0 |]
      ~jobs:(mk_jobs [ (1, 0, 0, 6) ])
      ~horizon:20
  in
  let federation =
    [
      ev 0 (FE.Lend { org = 0; to_org = 1; machines = [ 0 ] });
      ev 3 (FE.Reclaim { org = 0; machines = [ 0 ] });
    ]
  in
  let r = run ~instance ~federation ~seed:1 "fifo" in
  Alcotest.(check int) "no kill" 0 r.Sim.Driver.killed;
  Alcotest.(check (array int)) "job completes undisturbed" [| 0; 210 |]
    r.Sim.Driver.utilities_scaled;
  Alcotest.(check int) "two endow events" 2
    r.Sim.Driver.stats.Kernel.Stats.endow_events

(* A single org leaves at t = 2 (killing its running job) and rejoins at
   t = 10; the job released at t = 6 while suspended waits and starts at the
   rejoin. *)
let test_leave_join_roundtrip () =
  let instance =
    Instance.make ~machines:[| 1 |]
      ~jobs:(mk_jobs [ (0, 0, 0, 5); (0, 1, 6, 4) ])
      ~horizon:20
  in
  let federation =
    [ ev 2 (FE.Leave { org = 0 }); ev 10 (FE.Join { org = 0; machines = [] }) ]
  in
  let r = run ~instance ~federation ~seed:1 "fifo" in
  Alcotest.(check int) "first job killed by retirement" 1 r.Sim.Driver.killed;
  match Schedule.placements r.Sim.Driver.schedule with
  | [ p1; p2 ] ->
      (* The killed job resubmits at the head of the queue and restarts at
         the rejoin, ahead of the job released during the suspension. *)
      Alcotest.(check int) "resubmitted job restarts at rejoin" 10
        p1.Schedule.start;
      Alcotest.(check int) "suspended-release job follows" 15 p2.Schedule.start
  | ps -> Alcotest.failf "expected two placements, got %d" (List.length ps)

let test_bad_trace_rejected () =
  let instance =
    Instance.make ~machines:[| 1; 1 |]
      ~jobs:(mk_jobs [ (0, 0, 0, 1) ])
      ~horizon:5
  in
  let federation = [ ev 0 (FE.Reclaim { org = 0; machines = [ 0 ] }) ] in
  match run ~instance ~federation ~seed:1 "fifo" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for reclaiming an owned machine"

(* --- Differential guards ------------------------------------------------- *)

let small_instance seed =
  Workload.Scenario.instance
    (Workload.Scenario.default ~norgs:3 ~machines:5 ~horizon:3_000
       Workload.Traces.lpc_egee)
    ~seed

let churn_trace instance seed =
  FM.random
    ~rng:(Fstats.Rng.create ~seed)
    ~machines_per_org:instance.Instance.machines ~horizon:3_000
    ~spec:{ FM.default_spec with FM.period = 300 }
    ()

let test_empty_stream_bit_identical () =
  let instance = small_instance 11 in
  List.iter
    (fun name ->
      let a = run ~instance ~seed:3 name in
      let b = run ~instance ~federation:[] ~seed:3 name in
      Alcotest.(check (array int))
        (name ^ ": utilities identical")
        a.Sim.Driver.utilities_scaled b.Sim.Driver.utilities_scaled;
      Alcotest.(check bool)
        (name ^ ": placements identical")
        true
        (Schedule.placements a.Sim.Driver.schedule
        = Schedule.placements b.Sim.Driver.schedule))
    [ "fifo"; "roundrobin"; "fairshare"; "directcontr"; "rand-15"; "ref" ]

(* Federated *construction* with an empty stream: REF/RAND build federated
   sub-coalition simulators (full machine universe, presence masks, sims
   even for machine-less coalitions) yet must reproduce the static results
   exactly when no event ever arrives. *)
let test_federated_construction_bit_identical () =
  let instance = small_instance 19 in
  List.iter
    (fun name ->
      let maker = Algorithms.Registry.find_exn name in
      let fed_maker instance ~rng =
        Federation.Mode.with_enabled true (fun () -> maker instance ~rng)
      in
      let a =
        Sim.Driver.run ~instance ~rng:(Fstats.Rng.create ~seed:3) maker
      in
      let b =
        Sim.Driver.run ~instance ~rng:(Fstats.Rng.create ~seed:3) fed_maker
      in
      Alcotest.(check (array int))
        (name ^ ": federated construction identical")
        a.Sim.Driver.utilities_scaled b.Sim.Driver.utilities_scaled)
    [ "rand-15"; "ref" ]

let test_parallel_ref_under_endow_churn () =
  let instance = small_instance 23 in
  let federation = churn_trace instance 17 in
  let run_ref workers = run ~instance ~federation ~workers ~seed:5 "ref" in
  let seq = run_ref 1 and par = run_ref 2 in
  Alcotest.(check (array int)) "parallel REF identical under endow churn"
    seq.Sim.Driver.utilities_scaled par.Sim.Driver.utilities_scaled;
  Alcotest.(check int) "same kills" seq.Sim.Driver.killed par.Sim.Driver.killed

(* --- Properties ---------------------------------------------------------- *)

(* Random small instance + random endowment trace (+ faults for the
   owned-and-up property). *)
let churn_case_gen =
  let gen =
    QCheck.Gen.(
      let* norgs = int_range 2 3 in
      let* machines = array_size (return norgs) (int_range 1 2) in
      let* njobs = int_range 0 10 in
      let* jobs =
        list_size (return njobs)
          (let* org = int_range 0 (norgs - 1) in
           let* release = int_range 0 25 in
           let* size = int_range 1 6 in
           return (org, release, size))
      in
      let* endow_seed = int_range 0 10_000 in
      let* fault_seed = int_range 0 10_000 in
      let* with_faults = bool in
      return (machines, jobs, endow_seed, fault_seed, with_faults))
  in
  let make (machines, jobs, endow_seed, fault_seed, with_faults) =
    let jobs =
      List.mapi
        (fun index (org, release, size) ->
          Job.make ~org ~index ~release ~size ())
        jobs
    in
    let instance = Instance.make ~machines ~jobs ~horizon:60 in
    let federation =
      FM.random
        ~rng:(Fstats.Rng.create ~seed:endow_seed)
        ~machines_per_org:machines ~horizon:60
        ~spec:{ FM.period = 16; lend = 1; correlation = 0.; jitter = 0.3 }
        ()
    in
    let faults =
      if not with_faults then []
      else
        Faults.Model.random
          ~rng:(Fstats.Rng.create ~seed:fault_seed)
          ~machines:(Instance.total_machines instance)
          ~horizon:60
          ~mtbf:(Faults.Model.Exponential { mean = 30. })
          ~mttr:(Faults.Model.Exponential { mean = 8. })
          ()
    in
    (instance, federation, faults)
  in
  let arb =
    QCheck.make
      ~print:(fun raw ->
        let instance, federation, faults = make raw in
        Format.asprintf "%a@.endow: %a@.faults: %a" Instance.pp_detailed
          instance
          (Format.pp_print_list ~pp_sep:Format.pp_print_space FE.pp_timed)
          federation
          (Format.pp_print_list ~pp_sep:Format.pp_print_space
             Faults.Event.pp_timed)
          faults)
      gen
  in
  (arb, make)

(* [0, horizon)-clipped present intervals per machine, from replaying the
   endowment trace through the shared ownership state. *)
let present_intervals ~machines_per_org ~horizon trace =
  let homes = homes_of machines_per_org in
  let own =
    FE.Ownership.create ~homes ~orgs:(Array.length machines_per_org)
  in
  let m = Array.length homes in
  let since = Array.make m 0 in
  let intervals = Array.make m [] in
  List.iter
    (fun (e : FE.timed) ->
      match FE.Ownership.apply own e.FE.event with
      | Error msg -> Alcotest.fail msg
      | Ok changes ->
          List.iter
            (function
              | FE.Ownership.Retire mach ->
                  intervals.(mach) <- (since.(mach), e.FE.time) :: intervals.(mach);
                  since.(mach) <- -1
              | FE.Ownership.Admit { machine = mach; _ } -> since.(mach) <- e.FE.time
              | FE.Ownership.Transfer _ | FE.Ownership.Activate _
              | FE.Ownership.Deactivate _ ->
                  ())
            changes)
    trace;
  Array.iteri
    (fun mach s -> if s >= 0 then intervals.(mach) <- (s, horizon) :: intervals.(mach))
    since;
  intervals

let down_intervals ~machines ~horizon trace =
  let down_since = Array.make machines (-1) in
  let intervals = Array.make machines [] in
  List.iter
    (fun (e : Faults.Event.timed) ->
      match e.Faults.Event.event with
      | Faults.Event.Fail m ->
          if down_since.(m) < 0 then down_since.(m) <- e.Faults.Event.time
      | Faults.Event.Recover m ->
          if down_since.(m) >= 0 then begin
            intervals.(m) <-
              (down_since.(m), e.Faults.Event.time) :: intervals.(m);
            down_since.(m) <- -1
          end)
    trace;
  Array.iteri
    (fun m since ->
      if since >= 0 then intervals.(m) <- (since, horizon) :: intervals.(m))
    down_since;
  intervals

(* Capacity conservation: every executed machine-second of every surviving
   placement falls inside an interval where its machine was both inside the
   consortium (present) and up, and the parts total equals the executed
   seconds of the recorded schedule — work never runs on capacity the
   consortium does not own. *)
let prop_owned_and_up name =
  let arb, make = churn_case_gen in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: executed parts = owned-and-up machine-seconds" name)
    ~count:60 arb
    (fun raw ->
      let instance, federation, faults = make raw in
      let r = run ~instance ~federation ~faults ~seed:7 name in
      let horizon = instance.Instance.horizon in
      let present =
        present_intervals ~machines_per_org:instance.Instance.machines
          ~horizon federation
      in
      let down =
        down_intervals
          ~machines:(Instance.total_machines instance)
          ~horizon faults
      in
      let inside (a, b) (s, f) = s >= a && f <= b in
      let disjoint (a, b) (s, f) = f <= a || s >= b in
      let executed = ref 0 in
      let ok =
        List.for_all
          (fun (p : Schedule.placement) ->
            let span = (p.Schedule.start, p.Schedule.start + p.Schedule.duration) in
            executed :=
              !executed
              + Stdlib.min p.Schedule.duration (horizon - p.Schedule.start);
            List.exists (fun iv -> inside iv span) present.(p.Schedule.machine)
            && List.for_all (fun iv -> disjoint iv span) down.(p.Schedule.machine))
          (Schedule.placements r.Sim.Driver.schedule)
      in
      ok && Sim.Driver.total_parts r = !executed)

(* No job ever runs on a machine outside the consortium, and no suspended
   organization's job starts while it is out. *)
let prop_member_machines_only name =
  let arb, make = churn_case_gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: no job outside the consortium" name) ~count:60
    arb
    (fun raw ->
      let instance, federation, faults = make raw in
      let r = run ~instance ~federation ~faults ~seed:9 name in
      (* Replay org activity windows. *)
      let norgs = Instance.organizations instance in
      let out_since = Array.make norgs (-1) in
      let out = Array.make norgs [] in
      List.iter
        (fun (e : FE.timed) ->
          match e.FE.event with
          | FE.Leave { org } -> out_since.(org) <- e.FE.time
          | FE.Join { org; _ } ->
              if out_since.(org) >= 0 then begin
                out.(org) <- (out_since.(org), e.FE.time) :: out.(org);
                out_since.(org) <- -1
              end
          | FE.Lend _ | FE.Reclaim _ -> ())
        federation;
      Array.iteri
        (fun org since ->
          if since >= 0 then
            out.(org) <- (since, instance.Instance.horizon) :: out.(org))
        out_since;
      List.for_all
        (fun (p : Schedule.placement) ->
          List.for_all
            (fun (a, b) -> p.Schedule.start < a || p.Schedule.start >= b)
            out.(p.Schedule.job.Job.org))
        (Schedule.placements r.Sim.Driver.schedule))

(* Under endowment churn the incremental trackers (with on_abort
   retractions for retired machines) must still equal ψsp recomputed from
   the recorded completed placements. *)
let prop_trackers_match_schedule name =
  let arb, make = churn_case_gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: utilities match schedule under churn" name)
    ~count:40 arb
    (fun raw ->
      let instance, federation, faults = make raw in
      let r = run ~instance ~federation ~faults ~seed:13 name in
      let at = instance.Instance.horizon in
      let expected = Array.make (Instance.organizations instance) 0 in
      List.iter
        (fun (p : Schedule.placement) ->
          let s = p.Schedule.start and q = p.Schedule.duration in
          let executed = Stdlib.min q (Stdlib.max 0 (at - s)) in
          let v =
            if s + q <= at then q * ((2 * at) - (2 * s) - q + 1)
            else executed * (executed + 1)
          in
          expected.(p.Schedule.job.Job.org) <-
            expected.(p.Schedule.job.Job.org) + v)
        (Schedule.placements r.Sim.Driver.schedule);
      r.Sim.Driver.utilities_scaled = expected)

let churn_props =
  List.concat_map
    (fun name ->
      [
        prop_owned_and_up name;
        prop_member_machines_only name;
        prop_trackers_match_schedule name;
      ])
    [ "fifo"; "fairshare"; "ref" ]

let () =
  Alcotest.run "federation"
    [
      ( "events",
        [
          Alcotest.test_case "scripted order" `Quick test_scripted_order;
          Alcotest.test_case "lend/reclaim ownership" `Quick
            test_ownership_lend_reclaim;
          Alcotest.test_case "leave/join ownership" `Quick
            test_ownership_leave_join;
          Alcotest.test_case "leave reverts borrowed" `Quick
            test_leave_reverts_borrowed;
          Alcotest.test_case "validate" `Quick test_validate;
        ] );
      ( "model",
        [
          Alcotest.test_case "random trace" `Quick test_model_random;
          Alcotest.test_case "script parse" `Quick test_script_parse;
          Alcotest.test_case "spec parse" `Quick test_spec_parse;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "lend is placement-neutral" `Quick
            test_lend_is_placement_neutral;
          Alcotest.test_case "leave removes capacity" `Quick
            test_leave_removes_capacity;
          Alcotest.test_case "reclaim keeps running job" `Quick
            test_reclaim_keeps_running_job;
          Alcotest.test_case "leave/join roundtrip" `Quick
            test_leave_join_roundtrip;
          Alcotest.test_case "bad trace rejected" `Quick test_bad_trace_rejected;
        ] );
      ( "differential",
        [
          Alcotest.test_case "empty stream bit-identical" `Quick
            test_empty_stream_bit_identical;
          Alcotest.test_case "federated construction bit-identical" `Quick
            test_federated_construction_bit_identical;
          Alcotest.test_case "parallel REF under endow churn" `Quick
            test_parallel_ref_under_endow_churn;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest churn_props);
    ]
