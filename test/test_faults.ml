(* Tests for the fault-injection subsystem: the failure models, the
   kill/resubmit semantics of the cluster and driver, and the differential
   guards (empty trace is bit-identical, parallel REF matches sequential
   REF under churn). *)

open Core

let run ?(record = true) ?(faults = []) ?max_restarts ~instance ~seed name =
  Sim.Driver.run ~record ~faults ?max_restarts ~instance
    ~rng:(Fstats.Rng.create ~seed)
    (Algorithms.Registry.find_exn name)

let mk_jobs specs =
  List.map
    (fun (org, release, size) -> Job.make ~org ~index:0 ~release ~size ())
    specs

(* --- Model ------------------------------------------------------------- *)

let test_scripted () =
  let trace =
    Faults.Model.scripted
      [
        { Faults.Model.machine = 1; down_at = 5; up_at = 7 };
        { Faults.Model.machine = 0; down_at = 5; up_at = 6 };
      ]
  in
  let show ev =
    Format.asprintf "%a" Faults.Event.pp_timed ev
  in
  Alcotest.(check (list string))
    "canonical order"
    [ "t=5 fail(m0)"; "t=5 fail(m1)"; "t=6 recover(m0)"; "t=7 recover(m1)" ]
    (List.map show trace);
  Alcotest.(check bool) "validates" true
    (Result.is_ok (Faults.Event.validate ~machines:2 trace))

let test_scripted_rejects () =
  Alcotest.check_raises "empty window"
    (Invalid_argument "Faults.Model.scripted: up_at <= down_at")
    (fun () ->
      ignore
        (Faults.Model.scripted
           [ { Faults.Model.machine = 0; down_at = 4; up_at = 4 } ]))

let test_random_trace () =
  let mk seed =
    Faults.Model.random
      ~rng:(Fstats.Rng.create ~seed)
      ~machines:4 ~horizon:1_000
      ~mtbf:(Faults.Model.Exponential { mean = 100. })
      ~mttr:(Faults.Model.Exponential { mean = 10. })
      ()
  in
  let trace = mk 42 in
  Alcotest.(check bool) "deterministic in the seed" true (mk 42 = trace);
  Alcotest.(check bool) "validates" true
    (Result.is_ok (Faults.Event.validate ~machines:4 trace));
  Alcotest.(check bool) "non-empty at this intensity" true (trace <> []);
  List.iter
    (fun (ev : Faults.Event.timed) ->
      Alcotest.(check bool) "events before horizon" true
        (ev.Faults.Event.time < 1_000))
    trace;
  let fails, recovers = Faults.Model.count_kind trace in
  Alcotest.(check bool) "each recovery has a failure" true (fails >= recovers)

let test_downtime () =
  let trace =
    Faults.Model.scripted
      [
        { Faults.Model.machine = 0; down_at = 2; up_at = 5 };
        { Faults.Model.machine = 1; down_at = 8; up_at = 40 };
      ]
  in
  (* Machine 0 loses [2,5) = 3; machine 1 is still down at the horizon:
     [8,10) = 2. *)
  Alcotest.(check int) "clipped at horizon" 5
    (Faults.Model.downtime ~machines:2 ~horizon:10 trace)

let test_sample () =
  let rng = Fstats.Rng.create ~seed:1 in
  Alcotest.(check (float 1e-9)) "fixed" 3.
    (Faults.Model.sample (Faults.Model.Fixed 3.) rng);
  Alcotest.(check bool) "exponential positive" true
    (Faults.Model.sample (Faults.Model.Exponential { mean = 5. }) rng > 0.)

(* --- Kill / resubmit semantics ----------------------------------------- *)

(* One machine, one job of size 5 released at 0.  The machine fails at 2
   (killing the job after 2 executed parts) and recovers at 3; the job
   restarts from scratch at 3 and completes at 8.  ψsp at the horizon sees
   only the completed piece: 5·(10 − 3 − 2) = 25, scaled 50. *)
let test_kill_restart () =
  let instance =
    Instance.make ~machines:[| 1 |] ~jobs:(mk_jobs [ (0, 0, 5) ]) ~horizon:10
  in
  let faults =
    Faults.Model.scripted [ { Faults.Model.machine = 0; down_at = 2; up_at = 3 } ]
  in
  let r = run ~instance ~faults ~seed:1 "fifo" in
  Alcotest.(check (array int)) "killed work counts for nobody" [| 50 |]
    r.Sim.Driver.utilities_scaled;
  Alcotest.(check int) "parts" 5 (Sim.Driver.total_parts r);
  Alcotest.(check int) "one kill" 1 r.Sim.Driver.killed;
  Alcotest.(check int) "no abandonment" 0 r.Sim.Driver.abandoned;
  Alcotest.(check int) "two parts wasted" 2 r.Sim.Driver.wasted;
  (match Schedule.placements r.Sim.Driver.schedule with
  | [ p ] -> Alcotest.(check int) "restart at recovery" 3 p.Schedule.start
  | ps -> Alcotest.failf "expected one completed placement, got %d"
            (List.length ps));
  (match Schedule.killed r.Sim.Driver.schedule with
  | [ k ] ->
      Alcotest.(check int) "killed segment start" 0 k.Schedule.start;
      Alcotest.(check int) "killed segment truncated" 2 k.Schedule.duration
  | ks -> Alcotest.failf "expected one killed segment, got %d"
            (List.length ks));
  Alcotest.(check int) "schedule wasted time" 2
    (Schedule.wasted_time r.Sim.Driver.schedule ~upto:10)

let test_restart_budget_exhausted () =
  let instance =
    Instance.make ~machines:[| 1 |] ~jobs:(mk_jobs [ (0, 0, 5) ]) ~horizon:10
  in
  let faults =
    Faults.Model.scripted [ { Faults.Model.machine = 0; down_at = 2; up_at = 3 } ]
  in
  let r = run ~instance ~faults ~max_restarts:0 ~seed:1 "fifo" in
  Alcotest.(check int) "abandoned" 1 r.Sim.Driver.abandoned;
  Alcotest.(check (array int)) "no utility" [| 0 |]
    r.Sim.Driver.utilities_scaled;
  Alcotest.(check int) "no parts" 0 (Sim.Driver.total_parts r);
  Alcotest.(check int) "nothing completes" 0
    (Schedule.job_count r.Sim.Driver.schedule)

let test_down_machine_blocks () =
  (* The machine fails before the job is released: the job waits for the
     recovery, then runs 4..6. *)
  let instance =
    Instance.make ~machines:[| 1 |] ~jobs:(mk_jobs [ (0, 1, 2) ]) ~horizon:10
  in
  let faults =
    Faults.Model.scripted [ { Faults.Model.machine = 0; down_at = 0; up_at = 4 } ]
  in
  let r = run ~instance ~faults ~seed:1 "fifo" in
  Alcotest.(check int) "no kill (job never started)" 0 r.Sim.Driver.killed;
  (match Schedule.placements r.Sim.Driver.schedule with
  | [ p ] -> Alcotest.(check int) "starts at recovery" 4 p.Schedule.start
  | _ -> Alcotest.fail "expected one placement");
  (* ψsp: 2·(10 − 4 − 0.5) = 11, scaled 22. *)
  Alcotest.(check (array int)) "utility" [| 22 |]
    r.Sim.Driver.utilities_scaled

let test_redundant_events_are_noops () =
  (* A second failure of a down machine and a second recovery of an up
     machine change nothing. *)
  let instance =
    Instance.make ~machines:[| 1 |] ~jobs:(mk_jobs [ (0, 0, 5) ]) ~horizon:12
  in
  let faults =
    [
      { Faults.Event.time = 1; event = Faults.Event.Fail 0 };
      { Faults.Event.time = 2; event = Faults.Event.Fail 0 };
      { Faults.Event.time = 3; event = Faults.Event.Recover 0 };
      { Faults.Event.time = 4; event = Faults.Event.Recover 0 };
    ]
  in
  let r = run ~instance ~faults ~seed:1 "fifo" in
  Alcotest.(check int) "one kill" 1 r.Sim.Driver.killed;
  (match Schedule.placements r.Sim.Driver.schedule with
  | [ p ] -> Alcotest.(check int) "restart at first recovery" 3 p.Schedule.start
  | _ -> Alcotest.fail "expected one placement")

let test_invalid_trace_rejected () =
  let instance =
    Instance.make ~machines:[| 1 |] ~jobs:(mk_jobs [ (0, 0, 1) ]) ~horizon:5
  in
  let bad = [ { Faults.Event.time = 0; event = Faults.Event.Fail 7 } ] in
  match run ~instance ~faults:bad ~seed:1 "fifo" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for out-of-range machine"

(* --- Differential guards ----------------------------------------------- *)

let small_instance seed =
  Workload.Scenario.instance
    (Workload.Scenario.default ~norgs:3 ~machines:5 ~horizon:3_000
       Workload.Traces.lpc_egee)
    ~seed

let test_empty_trace_bit_identical () =
  let instance = small_instance 11 in
  List.iter
    (fun name ->
      let a = run ~instance ~seed:3 name in
      let b = run ~instance ~faults:[] ~max_restarts:4 ~seed:3 name in
      Alcotest.(check (array int))
        (name ^ ": utilities identical")
        a.Sim.Driver.utilities_scaled b.Sim.Driver.utilities_scaled;
      Alcotest.(check bool)
        (name ^ ": placements identical")
        true
        (Schedule.placements a.Sim.Driver.schedule
        = Schedule.placements b.Sim.Driver.schedule);
      Alcotest.(check int) (name ^ ": no kills") 0 b.Sim.Driver.killed)
    [ "fifo"; "roundrobin"; "fairshare"; "directcontr"; "rand-15"; "ref" ]

let churn_trace ~machines ~horizon seed =
  Faults.Model.random
    ~rng:(Fstats.Rng.create ~seed)
    ~machines ~horizon
    ~mtbf:(Faults.Model.Exponential { mean = 400. })
    ~mttr:(Faults.Model.Exponential { mean = 40. })
    ()

let test_parallel_ref_under_faults () =
  let instance = small_instance 23 in
  let faults =
    churn_trace ~machines:(Instance.total_machines instance) ~horizon:3_000 17
  in
  let run_ref workers =
    Sim.Driver.run ~workers ~faults ~instance
      ~rng:(Fstats.Rng.create ~seed:5)
      (Algorithms.Registry.find_exn "ref")
  in
  let seq = run_ref 1 and par = run_ref 2 in
  Alcotest.(check (array int)) "parallel REF identical under churn"
    seq.Sim.Driver.utilities_scaled par.Sim.Driver.utilities_scaled;
  Alcotest.(check int) "same kills" seq.Sim.Driver.killed
    par.Sim.Driver.killed

(* --- Properties --------------------------------------------------------- *)

(* Random small instance + random fault trace. *)
let churn_case_gen =
  let gen =
    QCheck.Gen.(
      let* norgs = int_range 1 3 in
      let* machines = array_size (return norgs) (int_range 1 2) in
      let* njobs = int_range 0 10 in
      let* jobs =
        list_size (return njobs)
          (let* org = int_range 0 (norgs - 1) in
           let* release = int_range 0 12 in
           let* size = int_range 1 6 in
           return (org, release, size))
      in
      let* fault_seed = int_range 0 10_000 in
      return (machines, jobs, fault_seed))
  in
  let make (machines, jobs, fault_seed) =
    let instance =
      Instance.make ~machines
        ~jobs:
          (List.map
             (fun (org, release, size) ->
               Job.make ~org ~index:0 ~release ~size ())
             jobs)
        ~horizon:40
    in
    let faults =
      Faults.Model.random
        ~rng:(Fstats.Rng.create ~seed:fault_seed)
        ~machines:(Instance.total_machines instance)
        ~horizon:40
        ~mtbf:(Faults.Model.Exponential { mean = 15. })
        ~mttr:(Faults.Model.Exponential { mean = 5. })
        ()
    in
    (instance, faults)
  in
  let arb =
    QCheck.make
      ~print:(fun (machines, jobs, fault_seed) ->
        let instance, faults = make (machines, jobs, fault_seed) in
        Format.asprintf "%a@.faults: %a" Instance.pp_detailed instance
          (Format.pp_print_list ~pp_sep:Format.pp_print_space
             Faults.Event.pp_timed)
          faults)
      gen
  in
  (arb, make)

(* [0, horizon)-clipped down intervals per machine. *)
let down_intervals ~machines ~horizon trace =
  let down_since = Array.make machines (-1) in
  let intervals = Array.make machines [] in
  List.iter
    (fun (ev : Faults.Event.timed) ->
      match ev.Faults.Event.event with
      | Faults.Event.Fail m ->
          if down_since.(m) < 0 then down_since.(m) <- ev.Faults.Event.time
      | Faults.Event.Recover m ->
          if down_since.(m) >= 0 then begin
            intervals.(m) <- (down_since.(m), ev.Faults.Event.time) :: intervals.(m);
            down_since.(m) <- -1
          end)
    trace;
  Array.iteri
    (fun m since -> if since >= 0 then intervals.(m) <- (since, horizon) :: intervals.(m))
    down_since;
  intervals

let prop_no_job_on_down_machine name =
  let arb, make = churn_case_gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: no job runs on a down machine" name) ~count:80
    arb
    (fun raw ->
      let instance, faults = make raw in
      let r = run ~instance ~faults ~seed:7 name in
      let intervals =
        down_intervals
          ~machines:(Instance.total_machines instance)
          ~horizon:instance.Instance.horizon faults
      in
      List.for_all
        (fun (p : Schedule.placement) ->
          List.for_all
            (fun (a, b) ->
              p.Schedule.start >= b || p.Schedule.start + p.Schedule.duration <= a)
            intervals.(p.Schedule.machine))
        (Schedule.placements r.Sim.Driver.schedule))

let prop_complete_at_most_once name =
  let arb, make = churn_case_gen in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: non-abandoned jobs complete at most once" name)
    ~count:80 arb
    (fun raw ->
      let instance, faults = make raw in
      let r = run ~instance ~faults ~seed:9 name in
      let completed =
        List.map
          (fun (p : Schedule.placement) -> Job.id p.Schedule.job)
          (Schedule.placements r.Sim.Driver.schedule)
      in
      let distinct = List.sort_uniq Stdlib.compare completed in
      List.length distinct = List.length completed
      && List.length completed + r.Sim.Driver.abandoned
         <= Array.length instance.Instance.jobs)

let prop_trackers_match_schedule name =
  (* Under churn the incremental trackers (with on_abort retractions) must
     still equal ψsp recomputed from the recorded completed placements. *)
  let arb, make = churn_case_gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: utilities match schedule under churn" name)
    ~count:60 arb
    (fun raw ->
      let instance, faults = make raw in
      let r = run ~instance ~faults ~seed:13 name in
      let at = instance.Instance.horizon in
      let expected =
        Array.make (Instance.organizations instance) 0
      in
      List.iter
        (fun (p : Schedule.placement) ->
          let s = p.Schedule.start and q = p.Schedule.duration in
          let executed = Stdlib.min q (Stdlib.max 0 (at - s)) in
          (* scaled ψsp of one piece truncated at the horizon *)
          let v =
            if s + q <= at then q * ((2 * at) - (2 * s) - q + 1)
            else executed * (executed + 1)
          in
          expected.(p.Schedule.job.Job.org) <-
            expected.(p.Schedule.job.Job.org) + v)
        (Schedule.placements r.Sim.Driver.schedule);
      r.Sim.Driver.utilities_scaled = expected)

let churn_props =
  List.concat_map
    (fun name ->
      [
        prop_no_job_on_down_machine name;
        prop_complete_at_most_once name;
        prop_trackers_match_schedule name;
      ])
    [ "fifo"; "roundrobin"; "fairshare"; "directcontr"; "ref" ]

let () =
  Alcotest.run "faults"
    [
      ( "model",
        [
          Alcotest.test_case "scripted" `Quick test_scripted;
          Alcotest.test_case "scripted rejects" `Quick test_scripted_rejects;
          Alcotest.test_case "random trace" `Quick test_random_trace;
          Alcotest.test_case "downtime" `Quick test_downtime;
          Alcotest.test_case "sample" `Quick test_sample;
        ] );
      ( "kill-resubmit",
        [
          Alcotest.test_case "kill and restart" `Quick test_kill_restart;
          Alcotest.test_case "restart budget" `Quick
            test_restart_budget_exhausted;
          Alcotest.test_case "down machine blocks" `Quick
            test_down_machine_blocks;
          Alcotest.test_case "redundant events" `Quick
            test_redundant_events_are_noops;
          Alcotest.test_case "invalid trace" `Quick test_invalid_trace_rejected;
        ] );
      ( "differential",
        [
          Alcotest.test_case "empty trace bit-identical" `Quick
            test_empty_trace_bit_identical;
          Alcotest.test_case "parallel REF under faults" `Quick
            test_parallel_ref_under_faults;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest churn_props);
    ]
