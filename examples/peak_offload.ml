(* Peak offloading — the motivating scenario of the paper's introduction,
   run through the real federation subsystem (lib/federation).

   Org 0 ("bursty lab") is idle most of the time but submits a large batch
   every 200 s; org 1 ("steady lab") runs a constant trickle.  The two labs
   pool their clusters, and on top of the pooling the steady lab *lends*
   one of its machines to the bursty lab for the duration of each burst
   (a Lend/Reclaim endowment cycle): from the lend instant that machine's
   capacity counts toward the bursty lab in every coalition value, so the
   Shapley-fair scheduler sees the loan and prices it into psi.

   Three runs are compared:
   - each lab alone on its own 2 machines (the standalone floor);
   - the static consortium (pooled, no endowment events);
   - the federated consortium with the lend/reclaim script applied.

   Run with:  dune exec examples/peak_offload.exe *)

open Core

let horizon = 1_000
let period = 200

let bursty_jobs =
  (* Every 200 s: a batch of 12 jobs x 20 s on only 2 own machines. *)
  List.concat_map
    (fun batch ->
      List.init 12 (fun i ->
          Job.make ~org:0
            ~index:((batch * 12) + i)
            ~release:(batch * period) ~size:20 ()))
    [ 0; 1; 2; 3; 4 ]

let steady_jobs =
  (* One 25 s job every 25 s: exactly one of the steady lab's two machines
     is busy on average. *)
  List.init (horizon / 25) (fun i ->
      Job.make ~org:1 ~index:i ~release:(i * 25) ~size:25 ())

(* The endowment script: at each burst the steady lab lends machine 3 (the
   second of its home block) to the bursty lab, reclaiming it at
   mid-cycle, once the batch has drained.  Global machine ids follow the
   flattened org-contiguous order: 0-1 are org 0's, 2-3 are org 1's. *)
let federation =
  Federation.Model.scripted
    (List.concat_map
       (fun batch ->
         [
           {
             Federation.Event.time = batch * period;
             event = Federation.Event.Lend { org = 1; to_org = 0; machines = [ 3 ] };
           };
           {
             Federation.Event.time = (batch * period) + (period / 2);
             event = Federation.Event.Reclaim { org = 1; machines = [ 3 ] };
           };
         ])
       [ 0; 1; 2; 3; 4 ])

let flow_of_schedule result (instance : Instance.t) =
  Utility.Metrics.flow_time result.Sim.Driver.schedule
    ~all_jobs:(Array.to_list instance.Instance.jobs)
    ~at:horizon

let () =
  (* Alone: each org schedules only its own jobs on its own machines. *)
  let alone jobs =
    let instance =
      Instance.make ~machines:[| 2 |]
        ~jobs:(List.map (fun j -> { j with Job.org = 0 }) jobs)
        ~horizon
    in
    let r =
      Sim.Driver.run ~instance
        ~rng:(Fstats.Rng.create ~seed:1)
        (Algorithms.Registry.find_exn "fifo")
    in
    (Sim.Driver.utilities r).(0)
  in
  let alone0 = alone bursty_jobs in
  let alone1 = alone steady_jobs in

  (* Pooled under the Shapley-fair scheduler, with and without the lending
     script. *)
  let instance =
    Instance.make ~machines:[| 2; 2 |] ~jobs:(bursty_jobs @ steady_jobs)
      ~horizon
  in
  let fair ?(federation = []) () =
    Sim.Driver.run ~federation ~instance
      ~rng:(Fstats.Rng.create ~seed:1)
      (Algorithms.Registry.find_exn "ref")
  in
  let static = fair () in
  let federated = fair ~federation () in
  let us = Sim.Driver.utilities static in
  let uf = Sim.Driver.utilities federated in

  let joins, leaves, lends, reclaims = Federation.Model.count_kind federation in
  Format.printf "Peak-offloading federation (horizon %d s)@." horizon;
  Format.printf
    "endowment script: %d events (%d join, %d leave, %d lend, %d reclaim)@.@."
    (List.length federation) joins leaves lends reclaims;
  Format.printf "  %-26s %14s %14s@." "" "bursty lab" "steady lab";
  Format.printf "  %-26s %14.0f %14.0f@." "psi alone" alone0 alone1;
  Format.printf "  %-26s %14.0f %14.0f@." "psi pooled (REF)" us.(0) us.(1);
  Format.printf "  %-26s %14.0f %14.0f@." "psi federated (REF + lend)" uf.(0)
    uf.(1);
  Format.printf "  %-26s %13.1f%% %13.1f%%@." "gain vs alone"
    ((uf.(0) -. alone0) /. alone0 *. 100.)
    ((uf.(1) -. alone1) /. alone1 *. 100.);
  Format.printf
    "@.Individual rationality holds: the bursty lab's batches finish sooner \
     on@.borrowed machines, while the steady lab — never queued when alone \
     —@.gives up only the sliver of psi the lend windows attribute to the \
     borrower:@.from each lend instant machine 3's capacity counts toward \
     the bursty lab in@.every coalition value, so the fair scheduler \
     prices the loan into psi@.instead of treating the steady lab as the \
     idle donor.@.@.";
  let flow = flow_of_schedule federated instance in
  Format.printf "Federated total flow time: %d s; utilization: %.1f%%@." flow
    (100. *. Schedule.utilization federated.Sim.Driver.schedule ~upto:horizon)
