(* Peak offloading — the motivating scenario of the paper's introduction:
   organizations federate so that peak loads can spill onto partners' idle
   machines.

   Org 0 ("bursty lab") is idle most of the time but submits a large batch
   every 200 s; org 1 ("steady lab") runs a constant trickle.  With separate
   clusters the bursty lab's batch queues behind its own 2 machines; in the
   federation it borrows the steady lab's idle capacity — and the
   Shapley-fair scheduler later pays the steady lab back with priority.

   Run with:  dune exec examples/peak_offload.exe *)

open Core

let horizon = 1_000

let bursty_jobs =
  (* Every 200 s: a batch of 12 jobs x 20 s on only 2 own machines. *)
  List.concat_map
    (fun batch ->
      List.init 12 (fun i ->
          Job.make ~org:0
            ~index:((batch * 12) + i)
            ~release:(batch * 200) ~size:20 ()))
    [ 0; 1; 2; 3; 4 ]

let steady_jobs =
  (* One 25 s job every 25 s: exactly one of the steady lab's two machines
     is busy on average. *)
  List.init (horizon / 25) (fun i ->
      Job.make ~org:1 ~index:i ~release:(i * 25) ~size:25 ())

let flow_of_schedule result (instance : Instance.t) =
  Utility.Metrics.flow_time result.Sim.Driver.schedule
    ~all_jobs:(Array.to_list instance.Instance.jobs)
    ~at:horizon

let () =
  (* Alone: each org schedules only its own jobs on its own machines. *)
  let alone org machines jobs =
    let instance = Instance.make ~machines ~jobs ~horizon in
    let r =
      Sim.Driver.run ~instance
        ~rng:(Fstats.Rng.create ~seed:1)
        (Algorithms.Registry.find_exn "fifo")
    in
    (Sim.Driver.utilities r).(org)
  in
  let alone0 = alone 0 [| 2 |] (List.map (fun j -> { j with Job.org = 0 }) bursty_jobs) in
  let alone1 = alone 0 [| 2 |] (List.map (fun j -> { j with Job.org = 0 }) steady_jobs) in

  (* Federated under the Shapley-fair scheduler. *)
  let instance =
    Instance.make ~machines:[| 2; 2 |] ~jobs:(bursty_jobs @ steady_jobs)
      ~horizon
  in
  let fair =
    Sim.Driver.run ~instance
      ~rng:(Fstats.Rng.create ~seed:1)
      (Algorithms.Registry.find_exn "ref")
  in
  let u = Sim.Driver.utilities fair in

  Format.printf "Peak-offloading federation (horizon %d s)@.@." horizon;
  Format.printf "  %-22s %14s %14s@." "" "bursty lab" "steady lab";
  Format.printf "  %-22s %14.0f %14.0f@." "psi alone" alone0 alone1;
  Format.printf "  %-22s %14.0f %14.0f@." "psi federated (REF)" u.(0) u.(1);
  Format.printf "  %-22s %13.1f%% %13.1f%%@." "gain"
    ((u.(0) -. alone0) /. alone0 *. 100.)
    ((u.(1) -. alone1) /. alone1 *. 100.);
  Format.printf
    "@.Individual rationality holds: the bursty lab's batches finish sooner \
     on@.borrowed machines, while the steady lab — which is never queued \
     when alone —@.loses nothing, because the fair scheduler gives it \
     priority whenever it has@.work of its own.@.@.";
  let flow = flow_of_schedule fair instance in
  Format.printf "Federated total flow time: %d s; utilization: %.1f%%@." flow
    (100. *. Schedule.utilization fair.Sim.Driver.schedule ~upto:horizon)
