(* Static shares vs dynamic contributions — the headline experimental claim
   of the paper (Section 7): when the job-arrival pattern is dynamic, giving
   each organization a *static* target share of the resources (fair share)
   is measurably less fair than tracking each organization's *current*
   contribution (Shapley-based scheduling).

   This example runs a synthetic LPC-EGEE-like week for five organizations
   and reports the paper's unfairness metric Δψ/p_tot for the whole
   evaluated line-up, averaged over several random instances.

   Run with:  dune exec examples/fairshare_vs_shapley.exe *)

let algorithms =
  [
    "rand-15"; "directcontr"; "fairshare"; "utfairshare"; "currfairshare";
    "roundrobin";
  ]

let () =
  let instances = 6 in
  let summaries =
    List.map (fun name -> (name, Fstats.Summary.create ())) algorithms
  in
  Format.printf
    "Fairness on a synthetic LPC-EGEE week (5 orgs, 16 machines, %d random \
     instances)@.@."
    instances;
  for i = 1 to instances do
    let spec =
      Workload.Scenario.default ~norgs:5 ~machines:16 ~horizon:50_000
        Workload.Traces.lpc_egee
    in
    let instance = Workload.Scenario.instance spec ~seed:(1000 + i) in
    let _, evals =
      Sim.Fairness.evaluate ~instance ~seed:i
        (List.map Algorithms.Registry.find_exn algorithms)
    in
    List.iter2
      (fun name (e : Sim.Fairness.evaluation) ->
        Fstats.Summary.add (List.assoc name summaries) e.Sim.Fairness.ratio)
      algorithms evals;
    Format.eprintf "  instance %d/%d done@." i instances
  done;
  Format.printf "  %-16s %14s %12s@." "algorithm" "avg Δψ/p_tot" "st.dev";
  List.iter
    (fun (name, s) ->
      Format.printf "  %-16s %14.2f %12.2f@." name (Fstats.Summary.mean s)
        (Fstats.Summary.stddev s))
    summaries;
  Format.printf
    "@.Δψ/p_tot reads as \"average unjustified delay (s) per unit of \
     work\"@.relative to the exact Shapley-fair schedule (REF).  The \
     Shapley-value@.estimator (rand-15) tracks the fair schedule far more \
     closely than any@.static-share policy; plain round robin is an order \
     of magnitude worse.@."
