(* Related machines: the paper's Section 2 claims most results extend to
   machines with different speeds — this library threads speeds through the
   whole pipeline, so the exact Shapley-fair scheduler runs unchanged.

   Semantics note (see DESIGN.md): on related machines this reproduction
   values a job by the *machine-time it receives* (wall-clock occupancy,
   each slot worth (t − slot)), the direct reading of the paper's "p_i is a
   function of the schedule".  Utilities of different organizations are
   therefore measured in comparable machine-seconds, whatever mix of fast
   and slow machines served them — and the fair scheduler equalizes the
   *value of machine time received*, while fast machines still finish the
   actual work sooner.

   Run with:  dune exec examples/related_machines.exe *)

open Core

let () =
  let burst org start =
    List.init 8 (fun i ->
        Job.make ~org ~index:i ~release:(start + (4 * i)) ~size:40 ())
  in
  let jobs = burst 0 0 @ burst 1 0 in
  (* org 0 ("modern lab"): two speed-2 machines; org 1 ("legacy lab"): two
     half-speed machines.  Identical workloads. *)
  let instance =
    Instance.make_related
      ~speeds:[| 2.0; 2.0; 0.5; 0.5 |]
      ~machines:[| 2; 2 |] ~jobs ~horizon:400
  in
  let ref_result =
    Sim.Driver.run ~instance
      ~rng:(Fstats.Rng.create ~seed:11)
      (Algorithms.Registry.find_exn "ref")
  in
  let u = Sim.Driver.utilities ref_result in
  let sched = ref_result.Sim.Driver.schedule in
  let completions org =
    List.filter_map
      (fun (p : Schedule.placement) ->
        if p.Schedule.job.Job.org = org then Some (Schedule.completion p)
        else None)
      (Schedule.placements sched)
  in
  let mean l =
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  Format.printf
    "Shapley-fair scheduling on related machines (speeds 2.0 / 0.5):@.@.";
  Format.printf "  %-22s %14s %18s@." "" "psi (REF)" "mean completion";
  Format.printf "  %-22s %14.0f %17.0fs@." "modern lab (fast)" u.(0)
    (mean (completions 0));
  Format.printf "  %-22s %14.0f %17.0fs@." "legacy lab (slow)" u.(1)
    (mean (completions 1));
  Format.printf
    "@.Under occupancy-valued fairness a machine-second is a machine-second \
     whatever@.its speed: the two identical workloads receive (almost) \
     identical utility and@.latency from the shared pool.  Note what this \
     implies: speed ownership is@.invisible to the occupancy measure — a \
     work-weighted valuation (each completed@.work unit valued at its \
     completion slot) would credit the modern lab for@.contributing faster \
     metal; DESIGN.md discusses this open semantic choice.@.@.";
  Format.printf "Gantt (organization digits; fast machines are m0/m1):@.%s@."
    (Gantt.render ~width:64 ~upto:250 sched);
  Format.printf "Efficiency beyond identical machines (speed gadget):@.";
  List.iter
    (fun (r : Sim.Related.gadget_row) ->
      Format.printf
        "  speed ratio %2d: slow-pinning greedy executes %.0f%% of the \
         optimal work@."
        r.ratio (100. *. r.work_ratio))
    (Sim.Related.gadget_sweep ~ratios:[ 2; 4; 8 ] ~work:60 ());
  Format.printf
    "  — the 3/4 bound of Theorem 6.2 is a property of identical machines.@."
