(* Strategy-proofness demo (Section 4, Theorem 4.1).

   An organization can present the same work in different ways: merged into
   one big job, split into many pieces, or delayed.  The paper proves ψsp is
   the unique utility (up to affine transformation) under which no
   presentation is ever profitable.  This example shows the property twice:

   1. On a FIXED schedule: merging/splitting a chain of pieces leaves ψsp
      exactly unchanged, while classic flow time moves — so a scheduler that
      balances flow time invites workload manipulation.
   2. End-to-end under the fair scheduler REF: an org that splits or delays
      its workload never improves its ψsp.

   Run with:  dune exec examples/strategy_manipulation.exe *)

open Core

let () =
  (* Part 1 — the utility function itself.  60 s of work executed on one
     machine starting at t = 10, evaluated at t = 100. *)
  let at = 100 in
  let presentations =
    [
      ("one 60 s job", [ (10, 60) ]);
      ("two 30 s chained", [ (10, 30); (40, 30) ]);
      ("twelve 5 s chained", List.init 12 (fun i -> (10 + (5 * i), 5)));
      ("delayed 20 s", [ (30, 60) ]);
    ]
  in
  Format.printf
    "Part 1 — same machine-seconds, different presentation (t=%d):@.@." at;
  Format.printf "  %-24s %10s %12s %14s@." "presentation" "psi_sp"
    "total flow" "flow per job";
  List.iter
    (fun (name, pieces) ->
      let psi = float_of_int (Utility.Psp.of_pieces_scaled pieces ~at) /. 2. in
      (* Flow time of the pieces, all released when the first piece would
         have been (t = 10): Σ (completion − release). *)
      let flow =
        List.fold_left (fun acc (s, p) -> acc + (s + p - 10)) 0 pieces
      in
      Format.printf "  %-24s %10.1f %12d %14.1f@." name psi flow
        (float_of_int flow /. float_of_int (List.length pieces)))
    presentations;
  Format.printf
    "@.  ψsp is exactly invariant under merge/split and strictly lower when \
     delayed.@.  Flow time shows both pathologies Theorem 4.1 rules out: \
     per-job flow drops@.  when you split (short jobs jump the queue under \
     a flow-minimizing scheduler)@.  while total flow grows with the job \
     count (an empty schedule would be@.  'optimal').@.@.";

  (* Part 2 — end to end under REF with a competitor keeping the pool
     busy. *)
  let competitor =
    List.init 20 (fun i -> Job.make ~org:1 ~index:i ~release:(i * 5) ~size:6 ())
  in
  let horizon = 200 in
  let run_with jobs0 =
    let instance =
      Instance.make ~machines:[| 1; 1 |] ~jobs:(jobs0 @ competitor) ~horizon
    in
    let r =
      Sim.Driver.run ~instance
        ~rng:(Fstats.Rng.create ~seed:7)
        (Algorithms.Registry.find_exn "ref")
    in
    (Sim.Driver.utilities r).(0)
  in
  let merged = [ Job.make ~org:0 ~index:0 ~release:0 ~size:60 () ] in
  let split =
    List.init 12 (fun i -> Job.make ~org:0 ~index:i ~release:0 ~size:5 ())
  in
  let delayed = [ Job.make ~org:0 ~index:0 ~release:40 ~size:60 () ] in
  Format.printf
    "Part 2 — the same 60 s stream scheduled by REF against a competitor:@.@.";
  Format.printf "  %-24s %10s@." "presentation" "psi_sp";
  List.iter
    (fun (name, jobs) ->
      Format.printf "  %-24s %10.1f@." name (run_with jobs))
    [ ("one 60 s job", merged); ("split: twelve 5 s", split);
      ("delayed by 40 s", delayed) ];
  Format.printf
    "@.  Splitting buys nothing (the scheduler re-prioritizes between \
     pieces), and@.  delaying strictly hurts — presenting the workload \
     honestly is optimal.@.@.";

  (* Part 3 — what if the fair algorithm balanced flow time instead?  The
     same REF machinery accepts any utility (Fig. 1's general form). *)
  Format.printf
    "Part 3 — the same fair algorithm driven by flow time instead of \
     psi_sp:@.@.";
  Format.printf "  %-18s %-28s %-28s %s@." "scheduler" "merged" "split"
    "splitting pays?";
  List.iter
    (fun (r : Experiments.Ablations.manipulation_row) ->
      Format.printf "  %-18s psi=%-8.0f done at %-6d psi=%-8.0f done at %-6d %b@."
        r.Experiments.Ablations.scheduler r.Experiments.Ablations.psi_merged
        r.Experiments.Ablations.done_merged r.Experiments.Ablations.psi_split
        r.Experiments.Ablations.done_split
        r.Experiments.Ablations.splitting_pays)
    (Experiments.Ablations.manipulation_sweep ());
  Format.printf
    "@.  Under flow-time-driven fairness the split presentation finishes \
     the same@.  work twice as fast — a standing invitation to manipulate \
     that psi_sp removes.@."
