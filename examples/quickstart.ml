(* Quickstart: build a three-organization instance by hand, run the exact
   Shapley-fair algorithm (REF) and a baseline, and inspect the results.

   Run with:  dune exec examples/quickstart.exe *)

open Core

let () =
  (* Three organizations.  Org 0 brings two machines, orgs 1 and 2 one
     each.  Each org submits a burst of jobs. *)
  let burst ~org ~at ~count ~size =
    List.init count (fun i ->
        Job.make ~org ~index:i ~release:(at + i) ~size ())
  in
  let jobs =
    burst ~org:0 ~at:0 ~count:6 ~size:10
    @ burst ~org:1 ~at:0 ~count:8 ~size:5
    @ burst ~org:2 ~at:30 ~count:4 ~size:8
  in
  let instance = Instance.make ~machines:[| 2; 1; 1 |] ~jobs ~horizon:120 in
  Format.printf "Instance: %a@.@." Instance.pp instance;

  (* Run the exponential fair reference (REF) and round robin. *)
  let run name =
    let maker = Algorithms.Registry.find_exn name in
    Sim.Driver.run ~instance ~rng:(Fstats.Rng.create ~seed:42) maker
  in
  let ref_result = run "ref" in
  let rr_result = run "roundrobin" in

  Format.printf "Utilities ψsp at t = %d:@." instance.Instance.horizon;
  Format.printf "  %-6s %12s %12s@." "org" "REF (fair)" "round robin";
  Array.iteri
    (fun org psi_ref ->
      Format.printf "  %-6d %12.1f %12.1f@." org psi_ref
        (Sim.Driver.utilities rr_result).(org))
    (Sim.Driver.utilities ref_result);

  (* The fairness metric of the paper: Δψ / p_tot — the average unjustified
     delay per unit of work, relative to the fair reference. *)
  let _, ratio = Sim.Fairness.delta_ratio ~reference:ref_result rr_result in
  Format.printf "@.Round robin unfairness Δψ/p_tot = %.2f time units@." ratio;

  (* Peek at the first few placements of the fair schedule. *)
  Format.printf "@.First fair placements:@.";
  Schedule.placements ref_result.Sim.Driver.schedule
  |> List.sort (fun (a : Schedule.placement) b ->
         Stdlib.compare (a.Schedule.start, a.machine) (b.Schedule.start, b.machine))
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter (fun (p : Schedule.placement) ->
         Format.printf "  t=%-3d machine %d <- %a@." p.Schedule.start
           p.Schedule.machine Job.pp p.Schedule.job)
