(* Benchmark & reproduction harness: one section per table/figure of the
   paper (see DESIGN.md's experiment index), plus Bechamel micro-benchmarks
   of the end-to-end simulation cost of each scheduling algorithm.

   Scales are reduced relative to the paper (instances per cell, pool size)
   so the whole run finishes in minutes; `bin/fairsched` exposes the same
   experiments with full control over the parameters. *)

let section name = Format.printf "@.=== %s ===@.@." name
let progress line = Format.eprintf "  .. %s@." line

(* Machine-readable output: sections push JSON fragments here; `--json PATH`
   (or the BENCH_JSON environment variable) writes them out as one object,
   alongside the wall time of every section that ran. *)

let json_acc : (string * Obs.Json.t) list ref = ref []
let record_json name value = json_acc := (name, value) :: !json_acc
let wall_acc : (string * float) list ref = ref []

(* Headline throughput numbers, tracked across runs in the bench history
   (BENCH_history.jsonl): sections push the rates a regression would most
   likely show up in.  Re-recording a name keeps the best value, so a
   multi-cell section contributes its fastest configuration. *)
let rates_acc : (string * float) list ref = ref []

let record_rate name v =
  let v =
    match List.assoc_opt name !rates_acc with
    | Some prev -> Float.max prev v
    | None -> v
  in
  rates_acc := (name, v) :: List.remove_assoc name !rates_acc

let write_json path =
  let sections =
    Obs.Json.Obj
      (List.rev_map
         (fun (n, s) ->
           (n, Obs.Json.Obj [ ("wall_seconds", Obs.Json.Float s) ]))
         !wall_acc)
  in
  let entries = ("sections", sections) :: List.rev !json_acc in
  let entries =
    if Obs.Metrics.enabled () then
      entries @ [ ("metrics", Obs.Metrics.to_json ()) ]
    else entries
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string ~pretty:true (Obs.Json.Obj entries));
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote %s@." path

(* --- Bench trajectory: BENCH_history.jsonl ------------------------------ *)

(* One compact line per recorded run — git sha, date, per-section wall
   seconds, and the headline rates from [rates_acc] — appended to a JSONL
   file so the repo carries its own performance trajectory.  `--json` runs
   append; `--smoke` additionally compares against the last entry and warns
   (never fails: machines differ) when a tracked rate fell more than 20%. *)

let git_sha () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> None
  | ic -> (
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> Some line
      | _ | (exception Unix.Unix_error _) -> None)

let history_record () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let sha =
    match git_sha () with Some s -> s | None -> "unknown"
  in
  Obs.Json.Obj
    [
      ("date", Obs.Json.String date);
      ("sha", Obs.Json.String sha);
      ( "sections",
        Obs.Json.Obj
          (List.rev_map (fun (n, s) -> (n, Obs.Json.Float s)) !wall_acc) );
      ( "rates",
        Obs.Json.Obj
          (List.map (fun (n, v) -> (n, Obs.Json.Float v)) !rates_acc) );
    ]

let append_history path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | exception Sys_error msg ->
      Format.eprintf "  !! bench history: cannot append to %s: %s@." path msg
  | oc ->
      output_string oc (Obs.Json.to_string (history_record ()));
      output_char oc '\n';
      close_out oc;
      Format.printf "appended history entry to %s@." path

let last_history_entry path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> (
      let lines =
        String.split_on_char '\n' contents
        |> List.filter (fun l -> String.trim l <> "")
      in
      match List.rev lines with
      | [] -> None
      | last :: _ -> (
          match Obs.Json.of_string last with
          | Ok j -> Some j
          | Error msg ->
              Format.eprintf "  !! bench history: unreadable last entry: %s@."
                msg;
              None))

(* Warn — never fail — when a rate this run is >20% below the previous
   recorded entry.  A hard gate would make @bench-smoke flaky across
   machines of different speed; the warning is for a human eyeballing the
   alias output on one machine over time. *)
let warn_regressions path =
  match last_history_entry path with
  | None -> ()
  | Some prev ->
      let prev_rates =
        match Obs.Json.member prev "rates" with
        | Some (Obs.Json.Obj fields) -> fields
        | _ -> []
      in
      let prev_sha =
        match Option.bind (Obs.Json.member prev "sha") Obs.Json.get_string with
        | Some s -> s
        | None -> "?"
      in
      List.iter
        (fun (name, now) ->
          match Option.bind (List.assoc_opt name prev_rates) Obs.Json.get_number
          with
          | Some before when before > 0. && now < 0.8 *. before ->
              Format.eprintf
                "  !! bench history: %s %.0f/s is %.0f%% below the last \
                 recorded %.0f/s (sha %s)@."
                name now
                ((1. -. (now /. before)) *. 100.)
                before prev_sha
          | Some _ | None -> ())
        !rates_acc

(* --- E1: Figure 2 worked example -------------------------------------- *)

let fig2 () =
  section "fig2 — ψsp worked example (Figure 2)";
  let f = Experiments.Worked_examples.figure2 () in
  let check name got expected =
    Format.printf "  %-28s %10.0f (paper: %.0f) %s@." name got expected
      (if Float.abs (got -. expected) < 1e-9 then "ok" else "MISMATCH")
  in
  check "psi(O1, t=13)" f.psi_o1_at_13 262.;
  check "psi(O1, t=14)" f.psi_o1_at_14 297.;
  check "flow time at 14" (float_of_int f.flow_time_at_14) 70.;
  check "gain without J(2)1" f.gain_without_competitor 4.;
  check "loss delaying J6" f.loss_delaying_j6 6.;
  check "loss dropping J9" f.loss_dropping_j9 10.

(* --- E2: Figure 7 / Theorem 6.2 --------------------------------------- *)

let utilization () =
  section "utilization — greedy ¾-competitiveness (Figure 7, Theorem 6.2)";
  Format.printf "  %-4s %-4s | %-12s %-11s %-8s %-6s@." "m" "p" "worst-greedy"
    "best-greedy" "optimal" "ratio";
  List.iter
    (fun (r : Experiments.Worked_examples.utilization_row) ->
      Format.printf "  %-4d %-4d | %-12.4f %-11.4f %-8.4f %-6.4f@." r.m r.p
        r.greedy_worst r.greedy_best r.optimal r.ratio)
    (Experiments.Worked_examples.utilization_sweep
       [ (2, 2); (2, 5); (4, 3); (4, 8); (6, 4); (8, 3) ]);
  Format.printf
    "  (the worst greedy policy sits exactly at the tight 3/4 bound; no \
     greedy run may fall below it)@."

(* --- E3/E4: Tables 1 and 2 -------------------------------------------- *)

let table ~name ~config =
  section name;
  let t = Experiments.Tables.run ~progress config in
  Format.printf "%a" Experiments.Tables.pp t

(* --- E5: Figure 10 ----------------------------------------------------- *)

let fig10 ~instances ~max_orgs () =
  section
    (Printf.sprintf "fig10 — unfairness vs number of organizations (k = 2..%d)"
       max_orgs);
  let config = Experiments.Fig10.default_config ~instances ~max_orgs () in
  let f = Experiments.Fig10.run ~progress config in
  Format.printf "%a" Experiments.Fig10.pp f

(* --- E8: Proposition 5.5 ----------------------------------------------- *)

let prop55 () =
  section "prop5.5 — the scheduling game is not supermodular";
  List.iter
    (fun (c, v) -> Format.printf "  v%a = %.1f@." Shapley.Coalition.pp c v)
    (Experiments.Worked_examples.prop55_values ());
  Format.printf "  supermodular? %b (paper: false)@."
    (Experiments.Worked_examples.prop55_is_supermodular ())

(* --- E10/E11: ablations ------------------------------------------------ *)

let ablations ~instances () =
  section "rand_ablation — RAND sample-count sweep (N = 5, 15, 75)";
  Format.printf "%a" Experiments.Ablations.pp_rows
    (Experiments.Ablations.rand_sample_sweep ~instances ~seed:97 ());
  section "endowment_ablation — Zipf vs uniform machine endowments";
  Format.printf "%a" Experiments.Ablations.pp_rows
    (Experiments.Ablations.endowment_sweep ~instances ~seed:98 ());
  section "load_ablation — fairness gap vs offered load";
  Format.printf "%a" Experiments.Ablations.pp_rows
    (Experiments.Ablations.load_sweep ~instances ~seed:99 ());
  section "decay_ablation — usage half-life (Maui/SLURM-style decay)";
  Format.printf "%a" Experiments.Ablations.pp_rows
    (Experiments.Ablations.decay_sweep ~instances:(Stdlib.max 2 (instances / 2))
       ~seed:96 ());
  section
    "concept_ablation — Banzhaf-fair vs Shapley-fair schedules (paper's \
     future work)";
  Format.printf "%a" Experiments.Ablations.pp_rows
    (Experiments.Ablations.concept_sweep ~instances ~seed:95 ());
  section
    "utility_ablation — is workload manipulation profitable? (Section 4 \
     motivation)";
  Format.printf "%a" Experiments.Ablations.pp_manipulation
    (Experiments.Ablations.manipulation_sweep ())

(* --- E19: coalition stability ------------------------------------------ *)

let stability () =
  section
    "stability — secession incentives (core excess) under each policy";
  Format.printf "%a" Experiments.Stability.pp (Experiments.Stability.demo ());
  Format.printf
    "  (excess(C) = what coalition C would produce alone minus what its \
     members@.   received; positive excess is a secession threat.  \
     Fairness-aware policies@.   keep it well under 1%% of the grand value; \
     round robin is several times@.   worse — the paper's stability \
     motivation, quantified.)@."

(* --- E18: Theorem 5.6 estimator error -------------------------------- *)

let estimator () =
  section
    "estimator — Monte-Carlo Shapley error vs the Hoeffding bound (Thm 5.6)";
  Format.printf "%a"
    Experiments.Estimator_study.pp
    (Experiments.Estimator_study.run
       (Experiments.Estimator_study.default_config ~trials:150 ()));
  Format.printf
    "  (error scales as 1/sqrt(N); the theorem's sample count is safely \
     conservative)@."

(* --- E15: Theorem 5.1 gadget ------------------------------------------- *)

let hardness () =
  section
    "hardness — Theorem 5.1 reduction gadget, machine-checked under REF";
  let elements = [ 1; 2; 3 ] and x = 3 in
  Format.printf "  S = {1,2,3}, x = %d: huge job starts at 2x+3 iff Σ < x@."
    x;
  List.iter
    (fun (c : Experiments.Hardness.check) ->
      Format.printf "  C = {%s}  y = %d  expected %d  got %s  %s@."
        (String.concat "," (List.map string_of_int c.subset))
        c.y c.expected_start
        (match c.actual_start with Some s -> string_of_int s | None -> "-")
        (if c.consistent then "ok" else "MISMATCH"))
    (Experiments.Hardness.verify ~elements ~x);
  Format.printf "  subsets below x: %d; below x+1: %d; SUBSETSUM(x)=%b@."
    (Experiments.Hardness.subsets_below ~elements ~x)
    (Experiments.Hardness.subsets_below ~elements ~x:(x + 1))
    (Experiments.Hardness.subset_sum_exists ~elements ~x)

(* --- E13/E14: model extensions ----------------------------------------- *)

let extensions () =
  section
    "related_machines — efficiency loss beyond the 3/4 bound (Section 8 \
     open question)";
  Format.printf "  %-8s | %-12s %-12s %-10s@." "speed r" "fast greedy"
    "slow greedy" "work ratio";
  List.iter
    (fun (r : Sim.Related.gadget_row) ->
      Format.printf "  %-8d | %-12.0f %-12.0f %-10.4f@." r.ratio r.fast_work
        r.slow_work r.work_ratio)
    (Sim.Related.gadget_sweep ~ratios:[ 1; 2; 4; 8; 16 ] ~work:100 ());
  Format.printf
    "  (a greedy rule pinning slow machines executes only 1/r of the \
     optimal work —@.   the 3/4 guarantee is specific to identical \
     machines)@.";
  section
    "parallel_jobs — greedy efficiency loss for rigid jobs (end of \
     Section 6)";
  Format.printf "  %-6s | %-12s %-12s %-10s@." "m" "thin-first" "wide-first"
    "ratio";
  List.iter
    (fun (r : Extensions.Rigid.gadget_row) ->
      Format.printf "  %-6d | %-12.4f %-12.4f %-10.4f@." r.m r.thin_first
        r.wide_first r.ratio)
    (Extensions.Rigid.gadget_sweep ~ms:[ 2; 4; 8; 16 ] ~size:50);
  Format.printf
    "  (utilization of a greedy rule can drop to 1/m once jobs need several \
     processors)@."

(* --- E16: unfairness over time ----------------------------------------- *)

let timeline ~instances () =
  section "timeline — unfairness accumulates over the trace (Def. 3.2)";
  let f =
    Experiments.Timeline.run
      (Experiments.Timeline.default_config ~horizon:100_000 ~instances ())
  in
  Format.printf "%a" Experiments.Timeline.pp f

(* --- E20: price of non-preemption -------------------------------------- *)

let preemption ~instances () =
  section
    "preemption_ablation — would slot-level preemption make schedules \
     fairer?";
  let sums =
    List.map
      (fun n -> (n, Fstats.Summary.create ()))
      [ "preemptive-equal"; "preemptive-util"; "rand-15"; "fairshare" ]
  in
  for seed = 1 to instances do
    let instance =
      Workload.Scenario.instance
        (Workload.Scenario.default ~norgs:5 ~machines:16 ~horizon:50_000
           Workload.Traces.lpc_egee)
        ~seed
    in
    let reference =
      Sim.Driver.run ~record:false ~instance
        ~rng:(Fstats.Rng.create ~seed:1)
        Algorithms.Reference.reference
    in
    let add name v = Fstats.Summary.add (List.assoc name sums) v in
    let preemptive policy =
      snd
        (Extensions.Preemptive.delta_ratio ~reference
           (Extensions.Preemptive.simulate ~instance policy))
    in
    add "preemptive-equal" (preemptive Extensions.Preemptive.Equal_share);
    add "preemptive-util" (preemptive Extensions.Preemptive.Utility_balance);
    match
      Sim.Fairness.evaluate_against ~reference ~instance ~seed:2
        [ Algorithms.Rand.rand15; Algorithms.Fair_share.fair_share ]
    with
    | [ r; f ] ->
        add "rand-15" r.Sim.Fairness.ratio;
        add "fairshare" f.Sim.Fairness.ratio
    | _ -> assert false
  done;
  List.iter
    (fun (n, s) -> Format.printf "  %-18s %a@." n Fstats.Summary.pp s)
    sums;
  Format.printf
    "  (an idealized scheduler that reassigns machines every second is \
     FARTHER from@.   the Shapley-fair utilities than the non-preemptive \
     heuristics: unfairness comes@.   from ignoring contributions, not from \
     the no-preemption constraint)@."

(* --- E23: sequential vs parallel REF ----------------------------------- *)

let ref_scaling ~ks ~horizon () =
  section "ref_scaling — sequential vs domain-parallel REF wall-clock";
  let cores = Domain.recommended_domain_count () in
  let single_core = cores < 2 in
  let par_workers = Stdlib.max 2 (cores - 1) in
  let machines = 16 in
  Format.printf "  cores=%d  parallel workers=%d  machines=%d@.@." cores
    par_workers machines;
  if single_core then
    Format.printf
      "  !! single-core machine: the parallel run below time-shares %d \
       domains on 1 core,@.     so its wall time measures dispatch overhead, \
       not speedup — rows are flagged@.     \"single_core\": true and the \
       speedup column is not meaningful here.@.@."
      par_workers;
  Format.printf "  %-3s %-8s | %-10s %-10s %-8s %-9s@." "k" "horizon"
    "seq (s)" "par (s)" "speedup" "identical";
  let rows =
    List.map
      (fun k ->
        let instance =
          Workload.Scenario.instance
            (Workload.Scenario.default ~norgs:k ~machines ~horizon
               Workload.Traces.lpc_egee)
            ~seed:42
        in
        let run workers =
          let rng = Fstats.Rng.create ~seed:7 in
          let t0 = Obs.Clock.now_ns () in
          let r =
            Sim.Driver.run ~record:false ~workers ~instance ~rng
              (Algorithms.Reference.make ())
          in
          (Obs.Clock.elapsed t0, r)
        in
        let seq_s, seq_r = run 1 in
        let par_s, par_r = run par_workers in
        let identical =
          seq_r.Sim.Driver.utilities_scaled = par_r.Sim.Driver.utilities_scaled
          && seq_r.Sim.Driver.parts = par_r.Sim.Driver.parts
        in
        let speedup = seq_s /. Stdlib.max 1e-9 par_s in
        Format.printf "  %-3d %-8d | %-10.3f %-10.3f %-8.2f %-9b@." k horizon
          seq_s par_s speedup identical;
        if not identical then
          Format.printf "  !! parallel REF diverged from sequential at k=%d@."
            k;
        let st = seq_r.Sim.Driver.stats in
        Obs.Json.Obj
          [
            ("k", Obs.Json.Int k);
            ("horizon", Obs.Json.Int horizon);
            ("machines", Obs.Json.Int machines);
            ("cores", Obs.Json.Int cores);
            ("single_core", Obs.Json.Bool single_core);
            ("workers_seq", Obs.Json.Int 1);
            ("workers_par", Obs.Json.Int par_workers);
            ("seq_seconds", Obs.Json.Float seq_s);
            ("par_seconds", Obs.Json.Float par_s);
            ("speedup", Obs.Json.Float speedup);
            ("identical", Obs.Json.Bool identical);
            ("event_instants", Obs.Json.Int st.Kernel.Stats.instants);
            ("rounds", Obs.Json.Int st.Kernel.Stats.rounds);
            ("heap_pops", Obs.Json.Int st.Kernel.Stats.heap_pops);
            ("starts", Obs.Json.Int st.Kernel.Stats.starts);
          ])
      ks
  in
  record_json "ref_scaling" (Obs.Json.List rows);
  Format.printf
    "  (bit-identical utilities are asserted on every row; the speedup \
     column@.   only means anything on a multi-core machine)@."

(* --- E24: approximation tier (DESIGN.md §13) --------------------------- *)

(* Exact REF vs the sampled RAND estimator: the audit rows check the
   measured max |φ̂ − φ| against the Theorem 5.6 tolerance ε/k·v(grand) at
   small k where exact is computable; the scaling rows run the online RAND
   policy at k up to 50 where exact REF's 2^k sub-schedules are infeasible.
   `--only approx --json BENCH_approx.json` regenerates the checked-in
   snapshot.  In smoke mode ([strict]) a bound violation or a blown
   wall-time budget is a hard failure. *)
let approx ?(strict = false) ~audit_ks ~scaling_ks ~horizon () =
  section "approx — RAND estimator vs exact REF (Thm 5.6 bound + scaling)";
  let seed = 1213 in
  let epsilon = 0.5 and confidence = 0.9 in
  let audit_rows =
    Experiments.Approx.audit ~ks:audit_ks ~epsilon ~confidence ~seed ()
  in
  Format.printf "  audit: ε=%.2f λ=%.2f (tolerance = ε/k · v(grand))@."
    epsilon confidence;
  Format.printf "%a@." Experiments.Approx.pp_audit audit_rows;
  let budget_s = 60. in
  let scaling_rows =
    Experiments.Approx.scaling ~ks:scaling_ks ~n:15 ~horizon ~seed ()
  in
  Format.printf "  scaling: online RAND-15 simulation, horizon %d@." horizon;
  Format.printf "%a" Experiments.Approx.pp_scaling scaling_rows;
  Format.printf
    "  (exact REF keeps 2^k−1 sub-schedules — at k=50 that is ~10^15, hence \
     @.   \"infeasible\"; RAND's cost grows with N·k instead)@.";
  let violations =
    List.filter
      (fun (r : Experiments.Approx.audit_row) -> not r.within_bound)
      audit_rows
  in
  let over_budget =
    List.filter
      (fun (r : Experiments.Approx.scaling_row) ->
        r.rand_ms > budget_s *. 1000.)
      scaling_rows
  in
  List.iter
    (fun (r : Experiments.Approx.audit_row) ->
      Format.printf "  !! bound violated at k=%d: err %.2f > tol %.2f@." r.k
        r.max_abs_err r.tolerance)
    violations;
  List.iter
    (fun (r : Experiments.Approx.scaling_row) ->
      Format.printf "  !! k=%d blew the %.0fs budget: %.1fs@." r.s_k budget_s
        (r.rand_ms /. 1000.))
    over_budget;
  record_json "approx"
    (Obs.Json.Obj
       [
         ( "audit",
           Obs.Json.List
             (List.map
                (fun (r : Experiments.Approx.audit_row) ->
                  Obs.Json.Obj
                    [
                      ("k", Obs.Json.Int r.k);
                      ("samples", Obs.Json.Int r.n);
                      ("epsilon", Obs.Json.Float r.epsilon);
                      ("confidence", Obs.Json.Float r.confidence);
                      ("exact_ms", Obs.Json.Float r.exact_ms);
                      ("sampled_ms", Obs.Json.Float r.sampled_ms);
                      ("max_abs_err", Obs.Json.Float r.max_abs_err);
                      ("tolerance", Obs.Json.Float r.tolerance);
                      ("within_bound", Obs.Json.Bool r.within_bound);
                    ])
                audit_rows) );
         ( "scaling",
           Obs.Json.List
             (List.map
                (fun (r : Experiments.Approx.scaling_row) ->
                  Obs.Json.Obj
                    [
                      ("k", Obs.Json.Int r.s_k);
                      ("samples", Obs.Json.Int r.s_n);
                      ("jobs", Obs.Json.Int r.s_jobs);
                      ("events", Obs.Json.Int r.s_events);
                      ("horizon", Obs.Json.Int horizon);
                      ("rand_ms", Obs.Json.Float r.rand_ms);
                      ( "exact_ms",
                        match r.exact_ms_opt with
                        | Some m -> Obs.Json.Float m
                        | None -> Obs.Json.Null );
                      ( "exact_feasible",
                        Obs.Json.Bool (r.exact_ms_opt <> None) );
                      ("budget_seconds", Obs.Json.Float budget_s);
                    ])
                scaling_rows) );
       ]);
  if strict && (violations <> [] || over_budget <> []) then begin
    Format.eprintf "approx smoke FAILED@.";
    exit 1
  end

(* --- E13: service wire + WAL throughput -------------------------------- *)

(* Off-socket cost of the daemon's hot path (DESIGN.md §12): protocol
   line encode+decode round trips, and WAL append with one fsync per
   batch — the two per-submission costs `fairsched serve` adds on top of
   the engine. *)
let wire () =
  section "wire — service protocol encode/decode + WAL batch throughput";
  let n = 100_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let line =
      Service.Protocol.request_to_line
        (Service.Protocol.Submit
           {
             org = i land 7;
             user = i land 31;
             release = i;
             size = 1 + (i land 15);
             cid = 0;
             cseq = 0;
             trace = 0;
           })
    in
    match Service.Protocol.request_of_line (String.trim line) with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  let codec_s = Unix.gettimeofday () -. t0 in
  let codec_rate = float_of_int n /. codec_s in
  Format.printf "protocol round trips: %d in %.2fs (%.0f lines/s)@." n codec_s
    codec_rate;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fairsched-bench-wal-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let config =
    match
      Service.Config.make ~machines:[| 2; 2 |] ~horizon:1_000_000
        ~algorithm:"fifo" ~seed:1 ()
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  let records = 20_000 and batch = 64 in
  let w =
    match Service.Wal.create ~dir ~config () with
    | Ok w -> w
    | Error e -> failwith e
  in
  let t0 = Unix.gettimeofday () in
  let seq = ref 0 in
  while !seq < records do
    for _ = 1 to batch do
      incr seq;
      Service.Wal.append w
        (Service.Wal.Submit
           { seq = !seq; org = 0; user = 0; release = !seq; size = 1; cid = 0; cseq = 0 })
    done;
    match Service.Wal.sync w with Ok () -> () | Error e -> failwith e
  done;
  let wal_s = Unix.gettimeofday () -. t0 in
  let wal_rate = float_of_int records /. wal_s in
  Service.Wal.close w;
  (try
     Sys.remove (Service.Wal.wal_path ~dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  Format.printf
    "WAL: %d records, fsync every %d: %.2fs (%.0f records/s)@." records batch
    wal_s wal_rate;
  record_rate "codec_lines_per_s" codec_rate;
  record_rate "wal_records_per_s" wal_rate;
  record_json "wire"
    (Obs.Json.Obj
       [
         ("codec_lines_per_s", Obs.Json.Float codec_rate);
         ("wal_records_per_s", Obs.Json.Float wal_rate);
         ("wal_batch", Obs.Json.Int batch);
       ])

(* --- E25: service saturation — sharded daemon throughput ---------------- *)

(* Spawn the REAL `fairsched serve` (path from --serve-exe; fork+exec, so
   safe even after this process has run domains) with a sharded,
   group-committing configuration, saturate it with the pipelined
   multi-connection load generator, and record throughput per
   (shards × connections) cell.  Single-shard rows are the baseline; on a
   multi-core machine the sharded rows must show real speedup, on a
   single-core one the rows are flagged "single_core": true and the
   speedup column only measures scheduling overhead.  [strict] (the
   @bench-smoke row) turns lost submissions, unamortized fsyncs, and — on
   multi-core — a sub-2x best speedup into hard failures. *)
let service_scaling ?(strict = false) ~serve_exe ~shard_counts ~conn_counts
    ~groups ~count () =
  section "service_scaling — sharded daemon saturation (shards × connections)";
  match serve_exe with
  | None ->
      Format.printf
        "  !! skipped: pass --serve-exe PATH (the fairsched binary) to run \
         this section@.";
      record_json "service_scaling"
        (Obs.Json.Obj [ ("skipped", Obs.Json.Bool true) ]);
      if strict then begin
        Format.eprintf "service_scaling smoke needs --serve-exe@.";
        exit 1
      end
  | Some exe ->
      let exe =
        if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
        else exe
      in
      let cores = Domain.recommended_domain_count () in
      let single_core = cores < 2 in
      let norgs = 2 * groups and machines = 4 * groups in
      let horizon = 1_000_000 and seed = 4242 in
      let window = 32 and commit_interval_ms = 2 in
      Format.printf
        "  cores=%d  groups=%d  orgs=%d  machines=%d  window=%d  \
         commit-interval=%dms  jobs=%d@.@."
        cores groups norgs machines window commit_interval_ms count;
      if single_core then
        Format.printf
          "  !! single-core machine: worker domains time-share 1 core, so \
           the speedup@.     column measures dispatch overhead, not scaling \
           — rows are flagged@.     \"single_core\": true and the >= 2x \
           floor is not enforced.@.@.";
      let spec =
        Workload.Scenario.default ~norgs ~machines ~horizon
          Workload.Traces.lpc_egee
      in
      let tmp_root =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "fairsched-bench-serve-%d" (Unix.getpid ()))
      in
      let rec rm path =
        if Sys.file_exists path then
          if Sys.is_directory path then begin
            Array.iter
              (fun e -> rm (Filename.concat path e))
              (Sys.readdir path);
            Unix.rmdir path
          end
          else Sys.remove path
      in
      (try rm tmp_root with Sys_error _ | Unix.Unix_error _ -> ());
      Unix.mkdir tmp_root 0o755;
      let failed = ref [] in
      let run_cell ~shards ~conns =
        let cell = Printf.sprintf "s%d-c%d" shards conns in
        let dir = Filename.concat tmp_root cell in
        Unix.mkdir dir 0o755;
        let sock = Filename.concat dir "d.sock" in
        let out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
        let pid =
          Unix.create_process exe
            [|
              "fairsched"; "serve"; "--listen"; sock;
              "--state"; Filename.concat dir "state";
              "--orgs"; string_of_int norgs;
              "--machines"; string_of_int machines;
              "--horizon"; string_of_int horizon;
              "--seed"; string_of_int seed;
              "--algorithm"; "fairshare";
              "--groups"; string_of_int groups;
              "--shards"; string_of_int shards;
              "--commit-interval"; string_of_int commit_interval_ms;
            |]
            Unix.stdin out Unix.stderr
        in
        Unix.close out;
        let addr = Service.Addr.Unix_sock sock in
        let rec connect_retry n =
          match Service.Client.connect addr with
          | Ok c -> c
          | Error e ->
              if n = 0 then
                failwith
                  (Printf.sprintf "connect %s: %s" cell
                     (Service.Client.error_to_string e))
              else begin
                Unix.sleepf 0.05;
                connect_retry (n - 1)
              end
        in
        Service.Client.close (connect_retry 200);
        let report =
          match
            Service.Loadgen.run
              {
                Service.Loadgen.addr;
                spec;
                seed;
                rate = 0.;
                count;
                drain = false;
                policy = Service.Retry.default;
                timeout_s = 10.0;
                connections = conns;
                groups;
                window;
              }
          with
          | Ok r -> r
          | Error msg -> failwith (cell ^ ": " ^ msg)
        in
        let client = connect_retry 20 in
        let fsyncs, acks =
          match Service.Client.request client Service.Protocol.Status with
          | Ok (Service.Protocol.Status_ok st) ->
              (st.Service.Protocol.fsyncs, st.Service.Protocol.accepted)
          | Ok _ | Error _ -> (0, 0)
        in
        (match
           Service.Client.request client
             (Service.Protocol.Drain { detail = false })
         with
        | Ok _ | Error _ -> ());
        Service.Client.close client;
        ignore (try snd (Unix.waitpid [] pid) with Unix.Unix_error _ -> Unix.WEXITED 0);
        let lost =
          report.Service.Loadgen.gave_up + report.Service.Loadgen.errors
        in
        if lost > 0 then
          failed := Printf.sprintf "%s: %d submissions lost" cell lost :: !failed;
        if fsyncs >= acks && acks > 0 then
          failed :=
            Printf.sprintf "%s: group commit did not amortize (%d fsyncs / %d acks)"
              cell fsyncs acks
            :: !failed;
        (report, fsyncs, acks)
      in
      Format.printf "  %-7s %-5s | %-9s %-9s %-9s %-7s %-7s@." "shards"
        "conns" "rate/s" "p50 (us)" "p99 (us)" "fsyncs" "acks";
      let cells =
        List.concat_map
          (fun shards -> List.map (fun conns -> (shards, conns)) conn_counts)
          shard_counts
      in
      let rows =
        List.map
          (fun (shards, conns) ->
            let report, fsyncs, acks = run_cell ~shards ~conns in
            let rate = report.Service.Loadgen.achieved_rate in
            let lat = report.Service.Loadgen.ack_latency in
            Format.printf "  %-7d %-5d | %-9.0f %-9.0f %-9.0f %-7d %-7d@."
              shards conns rate lat.Obs.Metrics.p50 lat.Obs.Metrics.p99 fsyncs
              acks;
            ((shards, conns, rate),
             Obs.Json.Obj
               [
                 ("shards", Obs.Json.Int shards);
                 ("connections", Obs.Json.Int conns);
                 ("groups", Obs.Json.Int groups);
                 ("jobs", Obs.Json.Int count);
                 ("accepted", Obs.Json.Int report.Service.Loadgen.accepted);
                 ("backpressured",
                  Obs.Json.Int report.Service.Loadgen.backpressured);
                 ("rate_per_s", Obs.Json.Float rate);
                 ("ack_p50_us", Obs.Json.Float lat.Obs.Metrics.p50);
                 ("ack_p99_us", Obs.Json.Float lat.Obs.Metrics.p99);
                 ("fsyncs", Obs.Json.Int fsyncs);
                 ("acks", Obs.Json.Int acks);
               ]))
          cells
      in
      (try rm tmp_root with Sys_error _ | Unix.Unix_error _ -> ());
      let max_conns = List.fold_left Stdlib.max 1 conn_counts in
      let rate_at s =
        List.find_map
          (fun ((s', c, r), _) -> if s' = s && c = max_conns then Some r else None)
          rows
      in
      let base = rate_at 1 in
      let best =
        List.fold_left
          (fun acc ((s, c, r), _) ->
            if c = max_conns && s > 1 then Stdlib.max acc r else acc)
          0. rows
      in
      let speedup =
        match base with
        | Some b when b > 0. && best > 0. -> Some (best /. b)
        | _ -> None
      in
      (match speedup with
      | Some sp ->
          Format.printf "@.  best sharded / single-shard (at %d conns): %.2fx%s@."
            max_conns sp
            (if single_core then "  (single-core: overhead, not scaling)"
             else "")
      | None -> ());
      List.iter
        (fun ((_, _, r), _) -> record_rate "service_rate_per_s" r)
        rows;
      record_json "service_scaling"
        (Obs.Json.Obj
           [
             ("cores", Obs.Json.Int cores);
             ("single_core", Obs.Json.Bool single_core);
             ("window", Obs.Json.Int window);
             ("commit_interval_ms", Obs.Json.Int commit_interval_ms);
             ("rows", Obs.Json.List (List.map snd rows));
             ( "speedup",
               match speedup with
               | Some sp -> Obs.Json.Float sp
               | None -> Obs.Json.Null );
           ]);
      if strict then begin
        List.iter (fun m -> Format.eprintf "  !! %s@." m) !failed;
        (match speedup with
        | Some sp when (not single_core) && sp < 2.0 ->
            Format.eprintf
              "  !! sharded throughput %.2fx single-shard baseline, below \
               the 2x floor on a %d-core machine@."
              sp cores;
            failed := "speedup floor" :: !failed
        | _ -> ());
        if !failed <> [] then begin
          Format.eprintf "service_scaling smoke FAILED@.";
          exit 1
        end
      end

(* --- E12: Bechamel micro-benchmarks ------------------------------------ *)

let micro () =
  section "micro — end-to-end simulation cost per algorithm (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let instance =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs:5 ~machines:16 ~horizon:10_000
         Workload.Traces.lpc_egee)
      ~seed:11
  in
  let bench_of name =
    let maker = Algorithms.Registry.find_exn name in
    Test.make ~name
      (Staged.stage (fun () ->
           let rng = Fstats.Rng.create ~seed:5 in
           ignore (Sim.Driver.run ~record:false ~instance ~rng maker)))
  in
  let tests =
    Test.make_grouped ~name:"simulate-10k"
      (List.map bench_of
         [
           "ref"; "rand-15"; "rand-75"; "directcontr"; "fairshare";
           "utfairshare"; "currfairshare"; "roundrobin"; "fifo";
         ])
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> rows := (name, est /. 1e6) :: !rows
      | _ -> ())
    results;
  Format.printf "  %-38s %14s@." "benchmark" "time/run (ms)";
  List.iter
    (fun (name, ms) -> Format.printf "  %-38s %14.3f@." name ms)
    (List.sort Stdlib.compare !rows)

let () =
  let argv = Sys.argv in
  let has flag = Array.exists (fun a -> a = flag) argv in
  let value_of flag =
    let r = ref None in
    Array.iteri
      (fun i a -> if a = flag && i + 1 < Array.length argv then r := Some argv.(i + 1))
      argv;
    !r
  in
  let quick = has "--quick" in
  let smoke = has "--smoke" in
  let approx_smoke = has "--approx-smoke" in
  let only = value_of "--only" in
  let serve_exe = value_of "--serve-exe" in
  if has "--metrics" then Obs.Metrics.set_enabled true;
  let json_path =
    match value_of "--json" with
    | Some _ as p -> p
    | None -> Sys.getenv_opt "BENCH_JSON"
  in
  let history_path =
    match value_of "--history" with
    | Some _ as p -> p
    | None -> Sys.getenv_opt "BENCH_HISTORY"
  in
  let sections =
    if smoke then
      (* Tiny ref_scaling plus a strict 2-group daemon saturation row: the
         `dune build @bench-smoke` alias. *)
      [
        ("ref_scaling", ref_scaling ~ks:[ 4 ] ~horizon:4_000);
        ( "service_scaling",
          service_scaling ~strict:true ~serve_exe ~shard_counts:[ 1; 2 ]
            ~conn_counts:[ 2 ] ~groups:2 ~count:600 );
      ]
    else if approx_smoke then
      (* `dune build @approx-smoke`: the Thm 5.6 bound check at small k plus
         a k=24 online RAND run, failing hard on a violated bound or a blown
         wall-time budget. *)
      [
        ( "approx",
          approx ~strict:true ~audit_ks:[ 4; 5 ] ~scaling_ks:[ 24 ]
            ~horizon:300 );
      ]
    else
      [
        ("fig2", fig2);
        ("prop55", prop55);
        ("utilization", utilization);
        ( "table1",
          fun () ->
            table ~name:"table1 — Δψ/p_tot, horizon 5·10⁴ (Table 1)"
              ~config:
                (Experiments.Tables.table1_config
                   ~instances:(if quick then 2 else 100) ()) );
        ( "table2",
          fun () ->
            table ~name:"table2 — Δψ/p_tot, horizon 5·10⁵ (Table 2)"
              ~config:
                (Experiments.Tables.table2_config
                   ~instances:(if quick then 1 else 20) ()) );
        ( "fig10",
          fig10 ~instances:(if quick then 2 else 20)
            ~max_orgs:(if quick then 5 else 8) );
        ("timeline", timeline ~instances:(if quick then 1 else 4));
        ("ablations", ablations ~instances:(if quick then 2 else 12));
        ("hardness", hardness);
        ("estimator", estimator);
        ("stability", stability);
        ("extensions", extensions);
        ("preemption", preemption ~instances:(if quick then 2 else 8));
        ( "ref_scaling",
          ref_scaling
            ~ks:(if quick then [ 4; 6 ] else [ 4; 6; 8 ])
            ~horizon:(if quick then 10_000 else 20_000) );
        ( "approx",
          approx ~strict:false
            ~audit_ks:(if quick then [ 4; 5 ] else [ 4; 5; 6; 8 ])
            ~scaling_ks:(if quick then [ 6; 12; 24 ] else [ 6; 8; 12; 24; 50 ])
            ~horizon:(if quick then 200 else 400) );
        ("micro", micro);
        ("wire", wire);
        ( "service_scaling",
          service_scaling ~strict:false ~serve_exe
            ~shard_counts:(if quick then [ 1; 2 ] else [ 1; 2; 4 ])
            ~conn_counts:(if quick then [ 2 ] else [ 1; 4 ])
            ~groups:4
            ~count:(if quick then 1_000 else 5_000) );
      ]
  in
  let wanted =
    match only with
    | None -> sections
    | Some o -> List.filter (fun (n, _) -> n = o) sections
  in
  if wanted = [] then begin
    Format.eprintf "no such section %S; known: %s@."
      (Option.value only ~default:"")
      (String.concat ", " (List.map fst sections));
    exit 1
  end;
  let t0 = Obs.Clock.now_ns () in
  Format.printf
    "Non-monetary fair scheduling (SPAA 2013) — reproduction benches@.";
  List.iter
    (fun (name, f) ->
      let s0 = Obs.Clock.now_ns () in
      f ();
      wall_acc := (name, Obs.Clock.elapsed s0) :: !wall_acc)
    wanted;
  Option.iter write_json json_path;
  (* History trajectory: smoke compares against the last recorded entry
     (warn-only); `--json` runs — the recorded ones — append a new line. *)
  Option.iter
    (fun h ->
      if smoke then warn_regressions h;
      if json_path <> None then append_history h)
    history_path;
  Format.printf "@.total wall time: %.1fs@." (Obs.Clock.elapsed t0)
