(** Coalitions of up to 62 players as integer bitmasks.

    Player [u] is in coalition [c] iff bit [u] of [c] is set.  Algorithm REF
    keeps one scheduling state per non-empty sub-coalition, indexed by these
    masks, and iterates them grouped by size (the paper's `for s ← 1 to ‖C‖`
    loop). *)

type t = int
(** Bitmask. The empty coalition is [0]. *)

val empty : t
val grand : players:int -> t
(** All players [0..players-1]. *)

val singleton : int -> t
val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val union : t -> t -> t
val inter : t -> t -> t
val size : t -> int
(** Population count. *)

val subset : t -> of_:t -> bool
val members : t -> int list
(** Ascending player ids. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members, ascending. *)

val iter_members : (int -> unit) -> t -> unit

val subcoalitions : t -> t list
(** All 2^|t| subsets of [t] including empty and [t] itself. *)

val proper_subcoalitions_of_grand : players:int -> t list list
(** [proper_subcoalitions_of_grand ~players] groups every non-empty
    coalition over [players] by size: element [s-1] of the result lists all
    coalitions of size [s], each list ascending.  This is the iteration
    order of Algorithm REF. *)

val iter_subsets : t -> (t -> unit) -> unit
(** Iterates all subsets of [t] (including empty and full) using the
    standard submask-enumeration trick, O(2^|t|) with no allocation. *)

val pp : Format.formatter -> t -> unit
(** Prints as "{0,2,3}". *)
