(** Characteristic-function games.

    A cooperative (transferable-utility) game over [players] players is a
    value function [v : coalition -> float] with [v(∅) = 0].  The scheduling
    game of the paper instantiates this with
    [v(C,t) = Σ_{u∈C} ψsp(u)(C,t)] where the schedule of [C] is produced by
    the fair algorithm — the point of Section 3 is that the Shapley value of
    this game defines the ideal fair utility profile. *)

type t = { players : int; value : Coalition.t -> float }

val make : players:int -> (Coalition.t -> float) -> t
(** @raise Invalid_argument if [players] is outside [1, 20] (exact Shapley
    enumerates all coalitions). *)

val value : t -> Coalition.t -> float

val marginal : t -> Coalition.t -> int -> float
(** [marginal g c u] = v(c ∪ {u}) − v(c); [u] must not be in [c]. *)

val is_monotone : t -> bool
(** v(C) <= v(C ∪ {u}) for all C, u — checked exhaustively. *)

val is_supermodular : t -> bool
(** v(A∪B) + v(A∩B) >= v(A) + v(B) for all A, B, up to 1e-9 slack.
    Proposition 5.5 exhibits a scheduling game violating this (which is why
    the paper cannot reuse the supermodular sampling bounds of
    Liben-Nowell et al. unchanged). *)

val memoize : t -> t
(** Caches coalition values in a hash table — essential when [value] runs a
    scheduling simulation. *)

(** {2 Classic reference games (test fixtures with known Shapley values)} *)

val unanimity : players:int -> carrier:Coalition.t -> t
(** v(C) = 1 if carrier ⊆ C else 0.  Shapley: 1/|carrier| for carrier
    members, 0 otherwise. *)

val additive : weights:float array -> t
(** v(C) = Σ_{u∈C} w_u.  Shapley: w_u (the dummy-consistency base case). *)

val glove : left:Coalition.t -> right:Coalition.t -> t
(** Glove market: v(C) = min(|C∩left|, |C∩right|). *)

val airport : costs:float array -> t
(** Airport game: v(C) = −max_{u∈C} costs_u (cost sharing, as a profit game
    with negated costs).  Shapley value has the classic closed form: player
    ranked i-th by cost pays Σ_{j<=i} (c_j − c_{j−1})/(n−j+1) with players
    sorted ascending — used as an exact oracle in tests. *)

val weighted_majority : quota:float -> weights:float array -> t
(** v(C) = 1 if Σ weights > quota else 0 (simple voting game). *)
