type prefix_plan = {
  orders : int array array;
  prefixes : (Coalition.t * Coalition.t) array array;
  distinct : Coalition.t array;
}

let sample_count ~players ~epsilon ~confidence =
  if epsilon <= 0. then invalid_arg "Sample.sample_count: epsilon <= 0";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Sample.sample_count: confidence outside (0,1)";
  let k = float_of_int players in
  int_of_float
    (Float.ceil (k *. k /. (epsilon *. epsilon) *. log (k /. (1. -. confidence))))

let plan ~rng ~players ~n =
  if n < 1 then invalid_arg "Sample.plan: n < 1";
  Obs.Trace.span ~cat:"shapley" "shapley.sample.plan" @@ fun () ->
  let orders = Array.init n (fun _ -> Fstats.Rng.permutation rng players) in
  let seen = Hashtbl.create (4 * n * players) in
  let distinct = ref [] in
  let note c =
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      distinct := c :: !distinct
    end
  in
  let prefixes =
    Array.map
      (fun order ->
        let c = ref Coalition.empty in
        Array.map
          (fun u ->
            let before = !c in
            let after = Coalition.add before u in
            c := after;
            note before;
            note after;
            (before, after))
          order)
      orders
  in
  { orders; prefixes; distinct = Array.of_list (List.rev !distinct) }

let estimate_from_plan plan ~value =
  let n = Array.length plan.orders in
  let players = Array.length plan.orders.(0) in
  let phi = Array.make players 0. in
  Array.iteri
    (fun i order ->
      Array.iteri
        (fun j u ->
          let before, after = plan.prefixes.(i).(j) in
          phi.(u) <- phi.(u) +. (value after -. value before))
        order)
    plan.orders;
  Array.map (fun x -> x /. float_of_int n) phi

let estimate ?n ~rng (g : Game.t) =
  let players = g.Game.players in
  let n =
    match n with
    | Some n -> n
    | None -> sample_count ~players ~epsilon:0.1 ~confidence:0.9
  in
  let p = plan ~rng ~players ~n in
  estimate_from_plan p ~value:g.Game.value
