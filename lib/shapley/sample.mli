(** Monte-Carlo Shapley estimation (the basis of Algorithm RAND).

    Draw N uniform joining orders; each player's estimate is the average of
    its marginal contributions over the sampled orders (Equation 2 as an
    expectation).  Theorem 5.6 uses Hoeffding's inequality to size N: with

      N = ⌈ k²/ε² · ln(k / (1−λ)) ⌉

    the estimate of every player deviates from φ by more than (ε/k)·v(grand)
    with probability at most 1−λ (union bound over the k players).  The
    paper adapts this from Liben-Nowell et al., whose bound assumed a
    supermodular game — the scheduling game is not supermodular
    (Prop. 5.5), hence the additive (not relative) guarantee here. *)

val sample_count : players:int -> epsilon:float -> confidence:float -> int
(** The Hoeffding bound above. [confidence] is λ ∈ (0,1).
    @raise Invalid_argument for epsilon <= 0 or λ outside (0,1). *)

val estimate : ?n:int -> rng:Fstats.Rng.t -> Game.t -> float array
(** Shapley estimate from [n] sampled orders (default: the Hoeffding count
    for ε = 0.1, λ = 0.9). *)

type prefix_plan = {
  orders : int array array;  (** sampled joining orders *)
  prefixes : (Coalition.t * Coalition.t) array array;
      (** [prefixes.(i).(j)] = (coalition before player [orders.(i).(j)]
          joins, same coalition with the player) — the pairs whose values
          RAND tracks online. *)
  distinct : Coalition.t array;
      (** de-duplicated list of every coalition appearing in any pair;
          Algorithm RAND simulates one schedule per element. *)
}

val plan : rng:Fstats.Rng.t -> players:int -> n:int -> prefix_plan
(** Pre-draws the N orders and the de-duplicated coalition set.  Drawing
    once up-front (as in Fig. 6's [Prepare]) keeps the online algorithm
    deterministic given the RNG seed. *)

val estimate_from_plan : prefix_plan -> value:(Coalition.t -> float) -> float array
(** Average marginal contributions over the planned orders, reading
    coalition values from [value] (e.g. live simulation states). *)
