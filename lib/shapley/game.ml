type t = { players : int; value : Coalition.t -> float }

let make ~players value =
  if players < 1 || players > 20 then invalid_arg "Game.make";
  { players; value }

let value g c = g.value c

let marginal g c u =
  if Coalition.mem c u then invalid_arg "Game.marginal: player already in";
  g.value (Coalition.add c u) -. g.value c

let all_coalitions g = Coalition.subcoalitions (Coalition.grand ~players:g.players)

let is_monotone g =
  List.for_all
    (fun c ->
      let vc = g.value c in
      List.for_all
        (fun u -> Coalition.mem c u || g.value (Coalition.add c u) >= vc -. 1e-9)
        (List.init g.players Fun.id))
    (all_coalitions g)

let is_supermodular g =
  let coalitions = all_coalitions g in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          g.value (Coalition.union a b) +. g.value (Coalition.inter a b)
          >= g.value a +. g.value b -. 1e-9)
        coalitions)
    coalitions

let memoize g =
  let cache = Hashtbl.create 64 in
  let value c =
    match Hashtbl.find_opt cache c with
    | Some v -> v
    | None ->
        let v = g.value c in
        Hashtbl.add cache c v;
        v
  in
  { g with value }

let unanimity ~players ~carrier =
  make ~players (fun c -> if Coalition.subset carrier ~of_:c then 1. else 0.)

let additive ~weights =
  make ~players:(Array.length weights) (fun c ->
      Coalition.fold (fun u acc -> acc +. weights.(u)) c 0.)

let glove ~left ~right =
  let players =
    match Coalition.members (Coalition.union left right) with
    | [] -> invalid_arg "Game.glove: empty market"
    | l -> 1 + List.fold_left Stdlib.max 0 l
  in
  make ~players (fun c ->
      float_of_int
        (Stdlib.min
           (Coalition.size (Coalition.inter c left))
           (Coalition.size (Coalition.inter c right))))

let airport ~costs =
  make ~players:(Array.length costs) (fun c ->
      if c = Coalition.empty then 0.
      else -.Coalition.fold (fun u acc -> Stdlib.max acc costs.(u)) c 0.)

let weighted_majority ~quota ~weights =
  make ~players:(Array.length weights) (fun c ->
      let w = Coalition.fold (fun u acc -> acc +. weights.(u)) c 0. in
      if w > quota then 1. else 0.)
