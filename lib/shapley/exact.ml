let subsets (g : Game.t) =
  Obs.Trace.span ~cat:"shapley" "shapley.exact.subsets" @@ fun () ->
  let k = g.Game.players in
  let grand = Coalition.grand ~players:k in
  let phi = Array.make k 0. in
  (* One pass over all coalitions: for c ∋ u the pair (c \ u, c) contributes
     the UpdateVals weight (|c|−1)!(k−|c|)!/k! to φ_u; this is Equation 1
     re-indexed by the coalition *after* u joins (Fig. 1's formulation). *)
  Coalition.iter_subsets grand (fun c ->
      if c <> Coalition.empty then begin
        let s = Coalition.size c in
        let w = Numeric.Combinatorics.shapley_weight_float ~players:k ~subset:(s - 1) in
        let vc = g.Game.value c in
        Coalition.iter_members
          (fun u ->
            let without = g.Game.value (Coalition.remove c u) in
            phi.(u) <- phi.(u) +. (w *. (vc -. without)))
          c
      end);
  phi

let subsets_exact ~players value =
  let grand = Coalition.grand ~players in
  let phi = Array.make players Numeric.Rational.zero in
  Coalition.iter_subsets grand (fun c ->
      if c <> Coalition.empty then begin
        let s = Coalition.size c in
        let w = Numeric.Combinatorics.update_weight ~players ~size:s in
        let vc = value c in
        Coalition.iter_members
          (fun u ->
            let without = value (Coalition.remove c u) in
            let marginal = Numeric.Rational.sub vc without in
            phi.(u) <-
              Numeric.Rational.add phi.(u) (Numeric.Rational.mul w marginal))
          c
      end);
  phi

let permutations (g : Game.t) =
  let k = g.Game.players in
  if k > 9 then invalid_arg "Exact.permutations: too many players";
  let orders = Numeric.Combinatorics.permutations (List.init k Fun.id) in
  let phi = Array.make k 0. in
  List.iter
    (fun order ->
      let (_ : Coalition.t) =
        List.fold_left
          (fun c u ->
            let c' = Coalition.add c u in
            phi.(u) <- phi.(u) +. (g.Game.value c' -. g.Game.value c);
            c')
          Coalition.empty order
      in
      ())
    orders;
  let n = float_of_int (List.length orders) in
  Array.map (fun x -> x /. n) phi

let restricted (g : Game.t) ~coalition ~player =
  if not (Coalition.mem coalition player) then
    invalid_arg "Exact.restricted: player not in coalition";
  let k = Coalition.size coalition in
  let phi = ref 0. in
  Coalition.iter_subsets coalition (fun c ->
      if Coalition.mem c player then begin
        let s = Coalition.size c in
        let w = Numeric.Combinatorics.shapley_weight_float ~players:k ~subset:(s - 1) in
        phi :=
          !phi
          +. (w *. (g.Game.value c -. g.Game.value (Coalition.remove c player)))
      end);
  !phi

let efficiency_gap g =
  let phi = subsets g in
  let total = Array.fold_left ( +. ) 0. phi in
  Float.abs (total -. g.Game.value (Coalition.grand ~players:g.Game.players))


let banzhaf (g : Game.t) =
  let k = g.Game.players in
  let grand = Coalition.grand ~players:k in
  let phi = Array.make k 0. in
  Coalition.iter_subsets grand (fun c ->
      if c <> Coalition.empty then
        let vc = g.Game.value c in
        Coalition.iter_members
          (fun u -> phi.(u) <- phi.(u) +. vc -. g.Game.value (Coalition.remove c u))
          c);
  let scale = 1. /. float_of_int (1 lsl (k - 1)) in
  Array.map (fun x -> x *. scale) phi

let banzhaf_normalized (g : Game.t) =
  let raw = banzhaf g in
  let total = Array.fold_left ( +. ) 0. raw in
  if total = 0. then Array.map (fun _ -> 0.) raw
  else begin
    let v_grand =
      g.Game.value (Coalition.grand ~players:g.Game.players)
    in
    Array.map (fun x -> x *. v_grand /. total) raw
  end
