type t = int

let empty = 0

let grand ~players =
  if players < 0 || players > 62 then invalid_arg "Coalition.grand";
  (1 lsl players) - 1

let singleton u = 1 lsl u
let mem c u = c land (1 lsl u) <> 0
let add c u = c lor (1 lsl u)
let remove c u = c land lnot (1 lsl u)
let union = ( lor )
let inter = ( land )

let size c =
  let rec go c acc = if c = 0 then acc else go (c lsr 1) (acc + (c land 1)) in
  go c 0

let subset c ~of_ = c land of_ = c

let members c =
  let rec go u c acc =
    if c = 0 then List.rev acc
    else if c land 1 = 1 then go (u + 1) (c lsr 1) (u :: acc)
    else go (u + 1) (c lsr 1) acc
  in
  go 0 c []

let fold f c init =
  let rec go u c acc =
    if c = 0 then acc
    else if c land 1 = 1 then go (u + 1) (c lsr 1) (f u acc)
    else go (u + 1) (c lsr 1) acc
  in
  go 0 c init

let iter_members f c = fold (fun u () -> f u) c ()

let subcoalitions c =
  let elems = members c in
  List.fold_left
    (fun acc u -> acc @ List.map (fun s -> add s u) acc)
    [ empty ] elems

let proper_subcoalitions_of_grand ~players =
  let all = List.tl (subcoalitions (grand ~players)) (* drop empty *) in
  let by_size = Array.make players [] in
  List.iter (fun c -> by_size.(size c - 1) <- c :: by_size.(size c - 1)) all;
  Array.to_list (Array.map (fun l -> List.sort Stdlib.compare l) by_size)

let iter_subsets c f =
  (* Standard submask walk: sub = (sub - 1) land c visits every subset of c
     in decreasing order, ending with 0. *)
  let rec go sub =
    f sub;
    if sub = 0 then () else go ((sub - 1) land c)
  in
  go c

let pp ppf c =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (members c)
