(** Exact Shapley value computation.

    Three equivalent routes, all exponential in the number of players:

    - {!subsets}: Equation 1 of the paper — for each player sum marginal
      contributions over all sub-coalitions, weighted by
      [|C'|!(k−|C'|−1)!/k!].  O(k·2^k) values of v.
    - {!permutations}: Equation 2 — average marginal contribution over all
      k! joining orders.  O(k!·k); only for cross-checking tiny games.
    - {!restricted}: Shapley value of a player within an arbitrary coalition
      [c] (not just the grand one), as needed by REF's [UpdateVals] which
      re-distributes each coalition's value among its members. *)

val subsets : Game.t -> float array
(** Shapley value of every player in the grand coalition. *)

val subsets_exact : players:int -> (Coalition.t -> Numeric.Rational.t) -> Numeric.Rational.t array
(** Exact-rational variant (for axiom tests). *)

val permutations : Game.t -> float array
(** Brute force over all k! orders. @raise Invalid_argument for k > 9. *)

val restricted : Game.t -> coalition:Coalition.t -> player:int -> float
(** φ_player of the subgame restricted to [coalition].
    @raise Invalid_argument if [player] is not in [coalition]. *)

val efficiency_gap : Game.t -> float
(** |Σ_u φ_u − v(grand)| — should be ~0 (efficiency axiom). *)

(** {2 Banzhaf value}

    The paper's future work asks about "other game-theoretic notions of
    fairness".  The Banzhaf value replaces the Shapley permutation weights
    with a uniform weight over sub-coalitions:

      β_u = 1/2^(k−1) · Σ_{C ⊆ N∖u} (v(C∪u) − v(C))

    It satisfies symmetry, dummy and additivity but {e not} efficiency, so
    for revenue division it is used in its normalized form (scaled so the
    shares sum to v(grand)). *)

val banzhaf : Game.t -> float array
(** Raw Banzhaf values. *)

val banzhaf_normalized : Game.t -> float array
(** Scaled by v(grand)/Σβ (zero vector if Σβ = 0). *)
