(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

let piece_scaled ~start ~size ~at =
  if size < 0 then invalid_arg "Psp.piece_scaled: negative size";
  if start >= at || size = 0 then 0
  else
    let last = Stdlib.min (start + size - 1) (at - 1) in
    let parts = last - start + 1 in
    (* Σ_{i=start}^{last} 2(at − i) = parts · (2·at − start − last) *)
    parts * ((2 * at) - start - last)

let piece ~start ~size ~at = float_of_int (piece_scaled ~start ~size ~at) /. 2.

let of_pieces_scaled pieces ~at =
  List.fold_left
    (fun acc (start, size) -> acc + piece_scaled ~start ~size ~at)
    0 pieces

let of_schedule_scaled sched ~org ~at =
  List.fold_left
    (fun acc (p : Schedule.placement) ->
      if p.job.Job.org = org then
        acc + piece_scaled ~start:p.start ~size:p.Schedule.duration ~at
      else acc)
    0
    (Schedule.placements sched)

let of_schedule sched ~org ~at =
  float_of_int (of_schedule_scaled sched ~org ~at) /. 2.

let value_of_coalition_scaled sched ~at =
  List.fold_left
    (fun acc (p : Schedule.placement) ->
      acc + piece_scaled ~start:p.start ~size:p.Schedule.duration ~at)
    0
    (Schedule.placements sched)

let parts_of_piece ~start ~size ~at =
  if start >= at then 0 else Stdlib.min size (at - start)

let completed_parts sched ~at =
  List.fold_left
    (fun acc (p : Schedule.placement) ->
      acc + parts_of_piece ~start:p.start ~size:p.Schedule.duration ~at)
    0
    (Schedule.placements sched)

let completed_parts_of_org sched ~org ~at =
  List.fold_left
    (fun acc (p : Schedule.placement) ->
      if p.job.Job.org = org then
        acc + parts_of_piece ~start:p.start ~size:p.Schedule.duration ~at
      else acc)
    0
    (Schedule.placements sched)

let flow_time_equiv_constant ~sizes ~count ~releases ~at =
  let p = float_of_int sizes and t = float_of_int at in
  let n = float_of_int count in
  let sum_r = float_of_int (List.fold_left ( + ) 0 releases) in
  (* ψsp(job) + p·flow(job) = pt + p(p+1)/2 − p·r for a completed job, so
     summing over the n jobs gives the constant below.  (The paper's proof
     of Prop. 4.2 prints the Σr term without the factor p — a typo; the
     property test checks this exact identity.) *)
  (n *. ((p *. t) +. (((p *. p) +. p) /. 2.))) -. (p *. sum_r)
