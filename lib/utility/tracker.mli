(** Incremental ψsp accounting for one stream of job pieces.

    Recomputing ψsp from the full schedule at every scheduling event is
    O(jobs so far); this tracker answers utility queries in O(active jobs)
    by splitting ψsp(t) into a closed form:

    - a completed piece [(s,p)] contributes [p·t − p(2s+p−1)/2]: linear in
      [t], so finished jobs collapse into two accumulated coefficients;
    - a piece still running at [t] contributes the triangular number
      [(t−s)(t−s+1)/2], computed per active job.

    One tracker instance serves one organization in one (coalition)
    schedule.  The same structure also tracks the *contribution* estimate of
    DIRECTCONTR, keyed by machine owner instead of job owner: the tracker is
    agnostic about whose pieces it aggregates.

    All values are 2×-scaled exact integers, like {!Psp}. *)

type t

val create : unit -> t

val on_start : t -> key:int -> start:int -> unit
(** Register a piece starting at [start].  [key] must be unique among the
    currently active pieces of this tracker (use the job's per-organization
    FIFO index, or any per-stream serial). *)

val on_complete : t -> key:int -> size:int -> unit
(** Declare the piece registered under [key] completed with total length
    [size] (known only now — non-clairvoyance).
    @raise Invalid_argument if [key] is not active. *)

val on_abort : t -> key:int -> unit
(** Retract the piece registered under [key] without crediting anything: the
    machine failed, the work is lost, and — crucially for strategy-proofness
    (Theorem 4.1) — killed parts must not count toward ψsp, or failures
    would let an organization inflate its utility with work that never
    completed.  The piece simply disappears from the accounting, as if it
    had never started.  @raise Invalid_argument if [key] is not active. *)

val value_scaled : t -> at:int -> int
(** [2·ψsp] of everything seen so far, evaluated at [at].  [at] must be at
    or after the latest [on_start] (values of running jobs would otherwise
    be miscounted); this is asserted. *)

val value : t -> at:int -> float

val parts : t -> at:int -> int
(** Executed unit parts before [at] (the derivative of ψsp, and the paper's
    [finUt]/[finCon] counters). *)

val active_count : t -> int

val epoch : t -> int
(** Monotone state-change counter: bumped by every {!on_start},
    {!on_complete} and {!on_abort}.  Two calls observing the same epoch are
    guaranteed the same internal state, so any value derived from it (e.g.
    {!coeffs_scaled}) may be cached across instants and invalidated by
    comparing epochs — the basis of the coalition-value cache
    (DESIGN.md §13). *)

val coeffs_scaled : t -> int * int * int
(** [(a, b, c)] such that [value_scaled ~at = a·at² + b·at + c] for every
    [at] at or after the latest start — ψsp between two state changes is an
    exact integer polynomial in time (completed pieces are linear, each
    running piece adds one triangular term).  Evaluating the polynomial is
    bit-identical to {!value_scaled}. *)
