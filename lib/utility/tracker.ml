type t = {
  mutable slope : int;  (* Σ size over completed pieces *)
  mutable const : int;  (* −Σ size·(2·start + size − 1) over completed *)
  active : (int, int) Hashtbl.t;  (* key -> start *)
  mutable epoch : int;  (* bumped on every state change *)
}

let create () = { slope = 0; const = 0; active = Hashtbl.create 8; epoch = 0 }

let on_start t ~key ~start =
  if Hashtbl.mem t.active key then
    invalid_arg "Tracker.on_start: duplicate active key";
  t.epoch <- t.epoch + 1;
  Hashtbl.add t.active key start

let on_complete t ~key ~size =
  match Hashtbl.find_opt t.active key with
  | None -> invalid_arg "Tracker.on_complete: unknown key"
  | Some start ->
      t.epoch <- t.epoch + 1;
      Hashtbl.remove t.active key;
      t.slope <- t.slope + size;
      t.const <- t.const - (size * ((2 * start) + size - 1))

let on_abort t ~key =
  if not (Hashtbl.mem t.active key) then
    invalid_arg "Tracker.on_abort: unknown key";
  t.epoch <- t.epoch + 1;
  Hashtbl.remove t.active key

let epoch t = t.epoch

(* (a, b, c) with value_scaled ~at = a·at² + b·at + c for every [at] at or
   after the latest start: each active piece contributes
   (at−s)(at−s+1) = at² + at·(1−2s) + (s²−s), completed pieces are linear.
   Exact integer identity — evaluating the polynomial gives bit-identical
   results to the direct fold in [value_scaled]. *)
let coeffs_scaled t =
  Hashtbl.fold
    (fun _ start (a, b, c) ->
      (a + 1, b + 1 - (2 * start), c + (start * (start - 1))))
    t.active
    (0, 2 * t.slope, t.const)

let value_scaled t ~at =
  let finished = (2 * t.slope * at) + t.const in
  Hashtbl.fold
    (fun _ start acc ->
      assert (start <= at);
      let run = at - start in
      acc + (run * (run + 1)))
    t.active finished

let value t ~at = float_of_int (value_scaled t ~at) /. 2.

let parts t ~at =
  Hashtbl.fold
    (fun _ start acc -> acc + Stdlib.max 0 (at - start))
    t.active t.slope

let active_count t = Hashtbl.length t.active
