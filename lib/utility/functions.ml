(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type t = {
  name : string;
  eval : Schedule.t -> org:int -> at:int -> float;
}

let psp = { name = "psp"; eval = (fun s ~org ~at -> Psp.of_schedule s ~org ~at) }

let neg_flow_time ~all_jobs =
  {
    name = "neg-flow";
    eval =
      (fun s ~org ~at ->
        -.float_of_int (Metrics.org_flow_time s ~all_jobs ~org ~at));
  }

let throughput =
  {
    name = "throughput";
    eval =
      (fun s ~org ~at ->
        List.fold_left
          (fun acc (p : Schedule.placement) ->
            if p.job.Job.org = org && Schedule.completion p <= at then
              acc +. 1.
            else acc)
          0. (Schedule.placements s));
  }

let cpu_time =
  {
    name = "cpu-time";
    eval =
      (fun s ~org ~at ->
        float_of_int (Psp.completed_parts_of_org s ~org ~at));
  }

let neg_waiting =
  {
    name = "neg-waiting";
    eval =
      (fun s ~org ~at ->
        List.fold_left
          (fun acc (p : Schedule.placement) ->
            if p.job.Job.org = org && p.start <= at then
              acc -. float_of_int (p.start - p.job.Job.release)
            else acc)
          0. (Schedule.placements s));
  }

let all = [ psp; throughput; cpu_time; neg_waiting ]
let by_name name = List.find_opt (fun u -> u.name = name) all
