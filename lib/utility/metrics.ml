(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

let completion_of sched (j : Job.t) =
  match Schedule.find sched j with
  | Some p -> Some (Schedule.completion p)
  | None -> None

let flow_time sched ~all_jobs ~at =
  List.fold_left
    (fun acc (j : Job.t) ->
      if j.Job.release >= at then acc
      else
        let upto =
          match completion_of sched j with
          | Some c -> Stdlib.min c at
          | None -> at
        in
        acc + (upto - j.Job.release))
    0 all_jobs

let flow_time_completed sched ~at =
  List.fold_left
    (fun acc (p : Schedule.placement) ->
      let c = Schedule.completion p in
      if c <= at then acc + (c - p.job.Job.release) else acc)
    0
    (Schedule.placements sched)

let waiting_time sched ~at =
  List.fold_left
    (fun acc (p : Schedule.placement) ->
      if p.start <= at then acc + (p.start - p.job.Job.release) else acc)
    0
    (Schedule.placements sched)

let stretch sched ~at =
  let total, n =
    List.fold_left
      (fun (total, n) (p : Schedule.placement) ->
        let c = Schedule.completion p in
        if c <= at then
          ( total
            +. (float_of_int (c - p.job.Job.release)
               /. float_of_int p.job.Job.size),
            n + 1 )
        else (total, n))
      (0., 0)
      (Schedule.placements sched)
  in
  if n = 0 then 0. else total /. float_of_int n

let org_flow_time sched ~all_jobs ~org ~at =
  flow_time sched ~at
    ~all_jobs:(List.filter (fun (j : Job.t) -> j.Job.org = org) all_jobs)

let throughput sched ~at =
  List.length
    (List.filter
       (fun p -> Schedule.completion p <= at)
       (Schedule.placements sched))

let utilization = Schedule.utilization

let work_upper_bound ~all_jobs ~machines ~upto =
  let released_work =
    List.fold_left
      (fun acc (j : Job.t) ->
        if j.Job.release >= upto then acc
        else acc + Stdlib.min j.Job.size (upto - j.Job.release))
      0 all_jobs
  in
  Stdlib.min (machines * upto) released_work

let jain_index xs =
  let n = List.length xs in
  if n = 0 then 0.
  else begin
    let sum = List.fold_left ( +. ) 0. xs in
    let sumsq = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if sumsq = 0. then 0. else sum *. sum /. (float_of_int n *. sumsq)
  end
