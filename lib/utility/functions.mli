(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** First-class utility functions ψ(σ, org, t).

    Section 3 of the paper defines the fair algorithm for an {e arbitrary}
    utility; Section 4 then argues the utility must be ψsp to be
    strategy-proof.  This module packages both ψsp and the classic
    alternatives behind one interface so the general Algorithm REF
    ({!Algorithms.Ref_generic}) and the utility-function ablation can switch
    between them.

    All functions are in maximization form (bigger = better), non-clairvoyant
    (they only look at executed parts at [at]), and envy-free in the paper's
    sense (they depend only on the organization's own placements). *)

type t = {
  name : string;
  eval : Schedule.t -> org:int -> at:int -> float;
}

val psp : t
(** The strategy-proof utility (Eq. 3). *)

val neg_flow_time : all_jobs:Job.t list -> t
(** −(online flow time of the organization's jobs): the classic metric the
    paper criticizes — scheduling nothing is "optimal", and splitting pays.
    Needs the full job list to account for waiting jobs. *)

val throughput : t
(** Number of the organization's completed jobs — breaks start-time
    anonymity (completing a long job counts like a short one). *)

val cpu_time : t
(** Executed machine-seconds of the organization's jobs — anonymous in
    starting times (breaks axiom 1: finishing early is worth nothing). *)

val neg_waiting : t
(** −Σ (start − release) over started jobs. *)

val all : t list
val by_name : string -> t option
