(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** Classic scheduling metrics, for comparison with ψsp and for the
    utilization experiments of Section 6.

    All metrics are evaluated "at" a time instant, consistent with the
    online model: only work released before [at] is considered, and
    incomplete jobs contribute their elapsed part where meaningful. *)

val flow_time : Schedule.t -> all_jobs:Job.t list -> at:int -> int
(** Online total flow time at [at]: every released job contributes
    [min(completion, at) − release]; jobs never started contribute
    [at − release].  Minimization objective (the paper's Figure 2 contrasts
    its pathologies with ψsp). *)

val flow_time_completed : Schedule.t -> at:int -> int
(** Σ (completion − release) over jobs completed by [at] only. *)

val waiting_time : Schedule.t -> at:int -> int
(** Σ (start − release) over jobs started by [at]. *)

val stretch : Schedule.t -> at:int -> float
(** Mean slowdown (flow/size) of completed jobs; 0 if none completed. *)

val org_flow_time : Schedule.t -> all_jobs:Job.t list -> org:int -> at:int -> int

val throughput : Schedule.t -> at:int -> int
(** Jobs completed by [at]. *)

val utilization : Schedule.t -> upto:int -> float
(** Re-export of {!Schedule.utilization} for discoverability. *)

val work_upper_bound : all_jobs:Job.t list -> machines:int -> upto:int -> int
(** Upper bound on the busy time any algorithm can achieve by [upto]:
    [min (machines·upto) (Σ_released min(size, upto − release))].  Used as a
    certificate in utilization experiments (the true optimum is NP-hard). *)

val jain_index : float list -> float
(** Jain's fairness index (Σx)² / (n·Σx²) over non-negative allocations:
    1 when perfectly equal, → 1/n when one member takes everything.  A
    standard secondary fairness lens for per-organization utilities
    normalized by entitlement; 0 on an empty or all-zero list. *)
