(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** The strategy-proof utility function ψsp (Theorem 4.1, Equation 3).

    For a schedule σ and time t:

    ψsp(σ, t) = Σ_{(s,p) ∈ σ, s ≤ t} min(p, t−s) · (t − (s + min(s+p−1, t−1)) / 2)

    Equivalently: a job is a chain of unit parts, the part executed in slot
    [i] (i.e. during [i, i+1)) is worth [t − i] at time [t]; ψsp is the sum
    over all executed parts.  The paper proves this is the unique (up to
    affine transformation) utility satisfying task anonymity (start times and
    number of tasks) and strategy-resistance: organizations cannot gain by
    merging, splitting, or delaying jobs.

    ψsp takes half-integer values; we compute [2·ψsp] in exact integer
    arithmetic ("scaled" functions) and convert to float only at the
    boundary. *)

val piece_scaled : start:int -> size:int -> at:int -> int
(** [2·ψsp] contribution of a single job piece [(start, size)] at time [at].
    Zero if [start >= at].  Works for running jobs (counts only executed
    parts). *)

val piece : start:int -> size:int -> at:int -> float
(** [piece_scaled / 2]. *)

val of_pieces_scaled : (int * int) list -> at:int -> int
(** [2·ψsp] of a list of [(start, size)] pieces. *)

val of_schedule_scaled : Schedule.t -> org:int -> at:int -> int
(** [2·ψsp] of one organization's jobs in a schedule. *)

val of_schedule : Schedule.t -> org:int -> at:int -> float

val value_of_coalition_scaled : Schedule.t -> at:int -> int
(** [2·v(σ,t)] — the total over all organizations (owner-blind). *)

val completed_parts : Schedule.t -> at:int -> int
(** Number of executed unit parts before [at] — the paper's [p_tot]
    normalizer for the unfairness ratio. *)

val completed_parts_of_org : Schedule.t -> org:int -> at:int -> int

(** {2 Properties (used by tests and documentation)}

    - Strategy-resistance:
      [piece ~start:s ~size:(p1+p2) = piece ~start:s ~size:p1 +
       piece ~start:(s+p1) ~size:p2] at every [at].
    - Start-time anonymity: delaying a completed piece by one slot costs
      exactly [size].
    - Flow-time link (Prop. 4.2): for equal-size jobs all completed before
      [t], maximizing ψsp minimizes total flow time. *)

val flow_time_equiv_constant : sizes:int -> count:int -> releases:int list -> at:int -> float
(** The constant [‖J‖(pt + (p²+p)/2) − Σ r] of Proposition 4.2, such that
    [ψsp = constant − p · flow_time] for [count] jobs of equal size [sizes]
    all completed before [at]. *)
