(** Instrumentation counters of one simulation kernel instance.

    Every event loop in the system — the grand-coalition driver, each
    sub-coalition what-if simulation inside REF/RAND, the rigid and
    preemptive extension models — advances through {!Engine}, and the
    engine counts what it does here: event instants processed, completions
    popped, fault events applied, kills and wasted parts, releases
    admitted, scheduling rounds and job starts.  The REF engine adds its
    global event-heap pops.  Counters are plain mutable ints: each kernel
    instance is only ever advanced by one domain at a time (the parallel
    REF stages partition sims across domains), and cross-sim totals are
    taken sequentially with {!add}. *)

type t = {
  mutable instants : int;  (** event instants processed *)
  mutable completions : int;  (** completion events popped *)
  mutable fault_events : int;  (** fault events applied (fail + recover) *)
  mutable endow_events : int;  (** endowment events applied (join/leave/lend/reclaim) *)
  mutable kills : int;  (** jobs killed by machine failures or retirements *)
  mutable abandoned : int;  (** kills that exhausted the restart budget *)
  mutable wasted : int;  (** executed-then-lost parts across kills *)
  mutable releases : int;  (** job releases admitted *)
  mutable rounds : int;  (** scheduling rounds run *)
  mutable starts : int;  (** scheduling decisions (job starts / slot grants) *)
  mutable heap_pops : int;  (** global event-heap pops (REF engine only) *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] field-wise. *)

val total : t list -> t
(** Fresh field-wise sum. *)

val pp : Format.formatter -> t -> unit

val json : t -> Obs.Json.t
(** One flat JSON object, keys matching the field names. *)

val to_json : t -> string
(** [json] serialized (via {!Obs.Json}, so always well-formed). *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!json}: [of_json (json t)] reconstructs [t] exactly. *)
