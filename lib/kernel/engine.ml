type fault_outcome =
  | Applied
  | Killed of { wasted : int; resubmitted : bool }

type endow_outcome = { e_kills : int; e_wasted : int; e_abandoned : int }

let no_endow_effect = { e_kills = 0; e_wasted = 0; e_abandoned = 0 }

(* Process-wide observability handles, shared by every kernel instance
   (the driver loop and each sub-coalition sim); per-domain shards keep the
   parallel REF stages from contending.  All of it is a no-op until
   `--metrics`/`--trace` (or a test) enables collection. *)
let m_round_latency = Obs.Metrics.histogram "kernel.round_latency_ns"
let m_round_starts = Obs.Metrics.histogram "kernel.round_starts"

type 'job model = {
  next_completion : unit -> int option;
  pop_completion : time:int -> bool;
  apply_fault : time:int -> Faults.Event.t -> fault_outcome;
  apply_endow : time:int -> Federation.Event.t -> endow_outcome;
  admit : time:int -> 'job -> unit;
  round : time:int -> int;
}

type 'job t = {
  release_time : 'job -> int;
  jobs : 'job array;  (* static stream, release-sorted *)
  mutable next_job : int;
  pushed_jobs : 'job Queue.t;  (* dynamic stream, fed in release order *)
  faults : Faults.Event.timed array;
  mutable next_fault : int;
  pushed_faults : Faults.Event.timed Queue.t;
  endowments : Federation.Event.timed array;
  mutable next_endow : int;
  pushed_endows : Federation.Event.timed Queue.t;
  mutable pending_checkpoints : int list;
  mutable now : int;
  stats : Stats.t;
}

let create ?(faults = []) ?(endowments = []) ?machines ?(checkpoints = [])
    ~release_time jobs =
  (match machines with
  | Some m -> (
      match Faults.Event.validate ~machines:m faults with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Kernel.Engine: bad fault trace: " ^ msg))
  | None -> ());
  {
    release_time;
    jobs;
    next_job = 0;
    pushed_jobs = Queue.create ();
    faults = Array.of_list (List.sort Faults.Event.compare_timed faults);
    next_fault = 0;
    pushed_faults = Queue.create ();
    endowments =
      Array.of_list (List.sort Federation.Event.compare_timed endowments);
    next_endow = 0;
    pushed_endows = Queue.create ();
    pending_checkpoints = List.sort_uniq Stdlib.compare checkpoints;
    now = 0;
    stats = Stats.create ();
  }

let push_job t job = Queue.add job t.pushed_jobs
let push_fault t ev = Queue.add ev t.pushed_faults
let push_endow t ev = Queue.add ev t.pushed_endows
let now t = t.now
let stats t = t.stats

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Stdlib.min a b)

let next_release t =
  let static =
    if t.next_job < Array.length t.jobs then
      Some (t.release_time t.jobs.(t.next_job))
    else None
  in
  let pushed =
    match Queue.peek_opt t.pushed_jobs with
    | Some j -> Some (t.release_time j)
    | None -> None
  in
  min_opt static pushed

let next_fault_time t =
  let static =
    if t.next_fault < Array.length t.faults then
      Some t.faults.(t.next_fault).Faults.Event.time
    else None
  in
  let pushed =
    match Queue.peek_opt t.pushed_faults with
    | Some f -> Some f.Faults.Event.time
    | None -> None
  in
  min_opt static pushed

let next_endow_time t =
  let static =
    if t.next_endow < Array.length t.endowments then
      Some t.endowments.(t.next_endow).Federation.Event.time
    else None
  in
  let pushed =
    match Queue.peek_opt t.pushed_endows with
    | Some e -> Some e.Federation.Event.time
    | None -> None
  in
  min_opt static pushed

let next_event t model =
  Option.map
    (fun tau -> Stdlib.max tau t.now)
    (min_opt
       (min_opt
          (min_opt (next_release t) (next_fault_time t))
          (next_endow_time t))
       (model.next_completion ()))

(* Phase 1: completions. *)
let drain_completions t model ~time =
  while model.pop_completion ~time do
    t.stats.Stats.completions <- t.stats.Stats.completions + 1
  done

(* Phase 2: faults.  Both streams are time-sorted; the merge prefers the
   static trace on ties (only one stream is populated in every current
   client, so the tie rule is a determinism guarantee, not a semantic
   choice). *)
let account_fault t outcome =
  t.stats.Stats.fault_events <- t.stats.Stats.fault_events + 1;
  match outcome with
  | Applied -> ()
  | Killed { wasted; resubmitted } ->
      t.stats.Stats.kills <- t.stats.Stats.kills + 1;
      t.stats.Stats.wasted <- t.stats.Stats.wasted + wasted;
      if not resubmitted then
        t.stats.Stats.abandoned <- t.stats.Stats.abandoned + 1

let rec drain_faults t model ~time =
  let static =
    if t.next_fault < Array.length t.faults then
      Some t.faults.(t.next_fault).Faults.Event.time
    else None
  in
  let pushed =
    match Queue.peek_opt t.pushed_faults with
    | Some f -> Some f.Faults.Event.time
    | None -> None
  in
  match (static, pushed) with
  | Some ts, _
    when ts <= time && (match pushed with Some tp -> ts <= tp | None -> true)
    ->
      let ev = t.faults.(t.next_fault) in
      t.next_fault <- t.next_fault + 1;
      account_fault t (model.apply_fault ~time ev.Faults.Event.event);
      drain_faults t model ~time
  | _, Some tp when tp <= time ->
      let ev = Queue.pop t.pushed_faults in
      account_fault t (model.apply_fault ~time ev.Faults.Event.event);
      drain_faults t model ~time
  | _ -> ()

(* Phase 3: endowments — after faults (a machine that fails and is lent at
   the same instant hands its borrower a down machine) and before releases
   (a job released the instant its org joins is admitted); same merge rule
   as faults. *)
let account_endow t (o : endow_outcome) =
  t.stats.Stats.endow_events <- t.stats.Stats.endow_events + 1;
  t.stats.Stats.kills <- t.stats.Stats.kills + o.e_kills;
  t.stats.Stats.wasted <- t.stats.Stats.wasted + o.e_wasted;
  t.stats.Stats.abandoned <- t.stats.Stats.abandoned + o.e_abandoned

let rec drain_endows t model ~time =
  let static =
    if t.next_endow < Array.length t.endowments then
      Some t.endowments.(t.next_endow).Federation.Event.time
    else None
  in
  let pushed =
    match Queue.peek_opt t.pushed_endows with
    | Some e -> Some e.Federation.Event.time
    | None -> None
  in
  match (static, pushed) with
  | Some ts, _
    when ts <= time && (match pushed with Some tp -> ts <= tp | None -> true)
    ->
      let ev = t.endowments.(t.next_endow) in
      t.next_endow <- t.next_endow + 1;
      account_endow t (model.apply_endow ~time ev.Federation.Event.event);
      drain_endows t model ~time
  | _, Some tp when tp <= time ->
      let ev = Queue.pop t.pushed_endows in
      account_endow t (model.apply_endow ~time ev.Federation.Event.event);
      drain_endows t model ~time
  | _ -> ()

(* Phase 4: releases; same merge rule as faults. *)
let rec drain_releases t model ~time =
  let static =
    if t.next_job < Array.length t.jobs then
      Some (t.release_time t.jobs.(t.next_job))
    else None
  in
  let pushed =
    match Queue.peek_opt t.pushed_jobs with
    | Some j -> Some (t.release_time j)
    | None -> None
  in
  match (static, pushed) with
  | Some ts, _
    when ts <= time && (match pushed with Some tp -> ts <= tp | None -> true)
    ->
      let job = t.jobs.(t.next_job) in
      t.next_job <- t.next_job + 1;
      t.stats.Stats.releases <- t.stats.Stats.releases + 1;
      model.admit ~time job;
      drain_releases t model ~time
  | _, Some tp when tp <= time ->
      let job = Queue.pop t.pushed_jobs in
      t.stats.Stats.releases <- t.stats.Stats.releases + 1;
      model.admit ~time job;
      drain_releases t model ~time
  | _ -> ()

let drain_events t model ~time =
  if time < t.now then invalid_arg "Kernel.Engine: time moved backwards";
  t.now <- time;
  t.stats.Stats.instants <- t.stats.Stats.instants + 1;
  if Obs.Trace.enabled () then begin
    Obs.Trace.span ~cat:"kernel" "kernel.completions" (fun () ->
        drain_completions t model ~time);
    Obs.Trace.span ~cat:"kernel" "kernel.faults" (fun () ->
        drain_faults t model ~time);
    Obs.Trace.span ~cat:"kernel" "kernel.endowments" (fun () ->
        drain_endows t model ~time);
    Obs.Trace.span ~cat:"kernel" "kernel.releases" (fun () ->
        drain_releases t model ~time)
  end
  else begin
    drain_completions t model ~time;
    drain_faults t model ~time;
    drain_endows t model ~time;
    drain_releases t model ~time
  end

let run_round t model ~time =
  let timed = Obs.Metrics.enabled () in
  let t0 = if timed then Obs.Clock.now_ns () else 0L in
  let n =
    if Obs.Trace.enabled () then
      Obs.Trace.span ~cat:"kernel" "kernel.round" (fun () -> model.round ~time)
    else model.round ~time
  in
  if timed then begin
    Obs.Metrics.observe m_round_latency
      (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0));
    Obs.Metrics.observe m_round_starts (float_of_int n)
  end;
  t.stats.Stats.rounds <- t.stats.Stats.rounds + 1;
  t.stats.Stats.starts <- t.stats.Stats.starts + n

let process_instant t model ~time =
  drain_events t model ~time;
  run_round t model ~time

let fire_checkpoints t ~on_checkpoint bound =
  let rec go () =
    match t.pending_checkpoints with
    | c :: rest when c <= bound ->
        t.pending_checkpoints <- rest;
        on_checkpoint ~at:c;
        go ()
    | _ -> ()
  in
  go ()

let run t model ~horizon ?(on_checkpoint = fun ~at:_ -> ()) () =
  (* A checkpoint past the horizon snaps to it: utilities are only defined
     up to the evaluation end. *)
  t.pending_checkpoints <-
    List.sort_uniq Stdlib.compare
      (List.map (fun c -> Stdlib.min c horizon) t.pending_checkpoints);
  let rec loop () =
    match next_event t model with
    | Some tau when tau < horizon ->
        fire_checkpoints t ~on_checkpoint tau;
        process_instant t model ~time:tau;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  fire_checkpoints t ~on_checkpoint horizon

let run_below t model ~time =
  let rec loop () =
    match next_event t model with
    | Some tau when tau < time ->
        process_instant t model ~time:tau;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let advance_to t model ~time =
  let rec loop () =
    match next_event t model with
    | Some tau when tau <= time ->
        process_instant t model ~time:tau;
        loop ()
    | Some _ | None -> t.now <- Stdlib.max t.now time
  in
  loop ()
