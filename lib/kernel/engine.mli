(** The simulation kernel: one event-driven engine for every scheduling
    loop in the system.

    Before this module existed, five separate event loops — the
    grand-coalition driver, the per-coalition what-if simulators inside REF
    and RAND, the generic REF engine, and the rigid-jobs extension — each
    re-implemented the same machinery: merging job releases, machine
    faults, and completions into one time-ordered stream; the canonical
    within-instant phase order; and the kill/resubmit/abandon bookkeeping.
    The kernel owns all of it once.  A concrete simulation supplies a
    {!model} — five closures over its own cluster state — and the kernel
    supplies the loop, the event streams, and the instrumentation
    ({!Stats}).

    {b Canonical within-instant order} (DESIGN.md §10): at one instant [t],

    + completions with [finish <= t] (a job finishing at [t] beats a
      failure at [t]);
    + fault events with [time <= t] (a machine down at [t] hosts nothing
      at [t]; one recovering at [t] is usable at [t]);
    + endowment events with [time <= t] (consortium membership and machine
      ownership as of [t] are in force before anything is placed at [t]);
    + job releases with [release <= t];
    + the greedy scheduling round (so a job started at [t] can never be
      killed at [t]: all faults at [t] were already delivered).

    The engine is deliberately agnostic about what a "job", "completion"
    or "machine" is: the uniform, related-speeds, rigid-width and
    slot-preemptive cluster models all drive it through the same five
    closures, which is what gives the extensions fault injection and
    restart budgets without code of their own. *)

(** What applying one fault event did, so the kernel can keep the
    kill/waste/abandon tallies at one choke point. *)
type fault_outcome =
  | Applied  (** a recovery, or a failure that hit an idle/down machine *)
  | Killed of { wasted : int; resubmitted : bool }
      (** a failure killed the hosted job after [wasted] executed parts;
          [resubmitted = false] means the restart budget was exhausted and
          the job was abandoned *)

(** What applying one endowment event did.  A [Leave] can retire several
    machines at once, so the kill effects come aggregated. *)
type endow_outcome = { e_kills : int; e_wasted : int; e_abandoned : int }

val no_endow_effect : endow_outcome
(** All zeroes — the outcome of pure ownership transfers, and the value
    models without a federation layer return unconditionally. *)

(** The cluster model: how one concrete simulation reacts to each phase.
    All closures are called with the instant being processed; the kernel
    guarantees the canonical phase order and monotone time. *)
type 'job model = {
  next_completion : unit -> int option;
      (** earliest pending completion time, if any *)
  pop_completion : time:int -> bool;
      (** handle one completion with [finish <= time]; [false] if none
          remain (the kernel calls it in a loop) *)
  apply_fault : time:int -> Faults.Event.t -> fault_outcome;
      (** apply one fault event: take the machine down (killing and
          resubmitting/abandoning its job) or bring it back up *)
  apply_endow : time:int -> Federation.Event.t -> endow_outcome;
      (** apply one endowment event: move consortium membership and machine
          ownership (retiring machines kills their jobs like a fault);
          models over a static consortium return {!no_endow_effect} *)
  admit : time:int -> 'job -> unit;  (** enqueue one released job *)
  round : time:int -> int;
      (** run the greedy scheduling round; returns the number of
          placements/decisions made *)
}

type 'job t

val create :
  ?faults:Faults.Event.timed list ->
  ?endowments:Federation.Event.timed list ->
  ?machines:int ->
  ?checkpoints:int list ->
  release_time:('job -> int) ->
  'job array ->
  'job t
(** [create ~release_time jobs] builds a kernel over a static,
    release-sorted job array (use [[||]] for purely dynamic feeds, see
    {!push_job}).  [faults] is the static fault trace, sorted on entry;
    when [machines] is given the trace is validated against it
    ({!Faults.Event.validate}) and an invalid trace raises
    [Invalid_argument].  [endowments] is the static endowment trace, sorted
    on entry (validate it against the instance with
    {!Federation.Event.validate} before handing it over — the engine has no
    machine→org map of its own).  [checkpoints] are instants at which
    {!run} fires its [on_checkpoint] callback (clamped to the horizon). *)

val push_job : 'job t -> 'job -> unit
(** Feed a job dynamically (the REF sub-coalition simulators receive their
    members' jobs from the outer loop as they are released).  Jobs must be
    pushed in release order; a release before {!now} is admitted at the
    next processed instant. *)

val push_fault : 'job t -> Faults.Event.timed -> unit
(** Feed a fault event dynamically, in time order. *)

val push_endow : 'job t -> Federation.Event.timed -> unit
(** Feed an endowment event dynamically, in time order. *)

val now : _ t -> int
(** Last processed instant (0 before any). *)

val stats : _ t -> Stats.t
(** The kernel's live instrumentation counters. *)

val next_event : 'job t -> 'job model -> int option
(** Earliest pending event — release, fault, endowment, or completion —
    {!now} (an event fed late fires at the next instant, never in the
    past). *)

val process_instant : 'job t -> 'job model -> time:int -> unit
(** Run all five phases at one instant.  @raise Invalid_argument if [time]
    precedes {!now}. *)

val drain_events : 'job t -> 'job model -> time:int -> unit
(** Phases 1–4 only (completions, faults, endowments, releases) — the split
    entry
    point for the staged parallel REF engine, which runs the scheduling
    rounds of its simulations grouped by coalition size ({!run_round}).
    Counts the instant in {!Stats}. *)

val run_round : 'job t -> 'job model -> time:int -> unit
(** Phase 5 only: the scheduling round, counted into {!Stats}. *)

val run :
  'job t ->
  'job model ->
  horizon:int ->
  ?on_checkpoint:(at:int -> unit) ->
  unit ->
  unit
(** The closed-loop driver: process every instant with an event strictly
    before [horizon], firing [on_checkpoint] for each requested checkpoint
    [c] once every event before [c] has been processed, then flush the
    remaining checkpoints at the horizon. *)

val run_below : 'job t -> 'job model -> time:int -> unit
(** Process every instant with a pending event {e strictly} before [time],
    leaving the instant [time] itself untouched — the incremental form used
    by the online service façade: when a submission with release [r]
    arrives (events are fed in time order), everything before [r] is final
    and can be played out, while instant [r] must stay open because more
    events at [r] may still arrive.  Unlike {!advance_to}, {!now} is not
    pushed forward past the last processed instant.  Calling it repeatedly
    with non-decreasing bounds and then {!run} to the horizon processes
    exactly the instants one closed {!run} would have. *)

val advance_to : 'job t -> 'job model -> time:int -> unit
(** The lockstep form used by what-if simulators: process every instant
    with an event at or before [time], then advance {!now} to at least
    [time]. *)
