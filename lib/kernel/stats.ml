type t = {
  mutable instants : int;
  mutable completions : int;
  mutable fault_events : int;
  mutable endow_events : int;
  mutable kills : int;
  mutable abandoned : int;
  mutable wasted : int;
  mutable releases : int;
  mutable rounds : int;
  mutable starts : int;
  mutable heap_pops : int;
}

let create () =
  {
    instants = 0;
    completions = 0;
    fault_events = 0;
    endow_events = 0;
    kills = 0;
    abandoned = 0;
    wasted = 0;
    releases = 0;
    rounds = 0;
    starts = 0;
    heap_pops = 0;
  }

let reset t =
  t.instants <- 0;
  t.completions <- 0;
  t.fault_events <- 0;
  t.endow_events <- 0;
  t.kills <- 0;
  t.abandoned <- 0;
  t.wasted <- 0;
  t.releases <- 0;
  t.rounds <- 0;
  t.starts <- 0;
  t.heap_pops <- 0

let copy t = { t with instants = t.instants }

let add acc x =
  acc.instants <- acc.instants + x.instants;
  acc.completions <- acc.completions + x.completions;
  acc.fault_events <- acc.fault_events + x.fault_events;
  acc.endow_events <- acc.endow_events + x.endow_events;
  acc.kills <- acc.kills + x.kills;
  acc.abandoned <- acc.abandoned + x.abandoned;
  acc.wasted <- acc.wasted + x.wasted;
  acc.releases <- acc.releases + x.releases;
  acc.rounds <- acc.rounds + x.rounds;
  acc.starts <- acc.starts + x.starts;
  acc.heap_pops <- acc.heap_pops + x.heap_pops

let total xs =
  let acc = create () in
  List.iter (add acc) xs;
  acc

let pp ppf t =
  Format.fprintf ppf
    "instants=%d completions=%d faults=%d endows=%d kills=%d abandoned=%d \
     wasted=%d releases=%d rounds=%d starts=%d heap_pops=%d"
    t.instants t.completions t.fault_events t.endow_events t.kills t.abandoned
    t.wasted t.releases t.rounds t.starts t.heap_pops

let fields t =
  [
    ("instants", t.instants);
    ("completions", t.completions);
    ("fault_events", t.fault_events);
    ("endow_events", t.endow_events);
    ("kills", t.kills);
    ("abandoned", t.abandoned);
    ("wasted", t.wasted);
    ("releases", t.releases);
    ("rounds", t.rounds);
    ("starts", t.starts);
    ("heap_pops", t.heap_pops);
  ]

let json t = Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) (fields t))
let to_json t = Obs.Json.to_string (json t)

let of_json j =
  let field name =
    match Obs.Json.member j name with
    | Some (Obs.Json.Int v) -> Ok v
    | Some _ -> Error (Printf.sprintf "field %S is not an integer" name)
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* instants = field "instants" in
  let* completions = field "completions" in
  let* fault_events = field "fault_events" in
  (* Absent in snapshots written before the federation layer existed. *)
  let endow_events =
    match field "endow_events" with Ok v -> v | Error _ -> 0
  in
  let* kills = field "kills" in
  let* abandoned = field "abandoned" in
  let* wasted = field "wasted" in
  let* releases = field "releases" in
  let* rounds = field "rounds" in
  let* starts = field "starts" in
  let* heap_pops = field "heap_pops" in
  Ok
    {
      instants;
      completions;
      fault_events;
      endow_events;
      kills;
      abandoned;
      wasted;
      releases;
      rounds;
      starts;
      heap_pops;
    }
