type evaluation = {
  result : Driver.result;
  delta_scaled : int;
  ratio : float;
}

let delta_ratio ~reference result =
  let a = reference.Driver.utilities_scaled
  and b = result.Driver.utilities_scaled in
  if Array.length a <> Array.length b then
    invalid_arg "Fairness.delta_ratio: mismatched instances";
  let delta_scaled = ref 0 in
  Array.iteri (fun u va -> delta_scaled := !delta_scaled + abs (va - b.(u))) a;
  let ptot = Driver.total_parts reference in
  let ratio =
    if ptot = 0 then 0.
    else float_of_int !delta_scaled /. 2. /. float_of_int ptot
  in
  (!delta_scaled, ratio)

let evaluate_against ~reference ?(record = false) ?(faults = []) ?max_restarts
    ~instance ~seed makers =
  let rng = Fstats.Rng.create ~seed in
  List.map
    (fun maker ->
      let result =
        Driver.run ~record ~faults ?max_restarts ~instance
          ~rng:(Fstats.Rng.split rng) maker
      in
      let delta_scaled, ratio = delta_ratio ~reference result in
      { result; delta_scaled; ratio })
    makers

let evaluate ?(record = false) ?(faults = []) ?max_restarts ~instance ~seed
    makers =
  let rng = Fstats.Rng.create ~seed:(seed lxor 0x5ca1ab1e) in
  let reference =
    Driver.run ~record ~faults ?max_restarts ~instance ~rng
      Algorithms.Reference.reference
  in
  ( reference,
    evaluate_against ~reference ~record ~faults ?max_restarts ~instance ~seed
      makers )


type timeline = { policy : string; points : (int * float) list }

let snapshot_ratio (ref_snap : Driver.snapshot) (snap : Driver.snapshot) =
  let delta = ref 0 in
  Array.iteri
    (fun u v -> delta := !delta + abs (v - snap.Driver.psi_scaled.(u)))
    ref_snap.Driver.psi_scaled;
  let ptot = Array.fold_left ( + ) 0 ref_snap.Driver.parts_at in
  if ptot = 0 then 0. else float_of_int !delta /. 2. /. float_of_int ptot

let timelines ?(faults = []) ?max_restarts ~instance ~seed ~checkpoints makers
    =
  let rng = Fstats.Rng.create ~seed:(seed lxor 0x5ca1ab1e) in
  let reference =
    Driver.run ~record:false ~faults ?max_restarts ~checkpoints ~instance ~rng
      Algorithms.Reference.reference
  in
  let eval_rng = Fstats.Rng.create ~seed in
  List.map
    (fun maker ->
      let result =
        Driver.run ~record:false ~faults ?max_restarts ~checkpoints ~instance
          ~rng:(Fstats.Rng.split eval_rng) maker
      in
      let points =
        List.map2
          (fun ref_snap snap -> (ref_snap.Driver.at, snapshot_ratio ref_snap snap))
          reference.Driver.checkpoints result.Driver.checkpoints
      in
      { policy = result.Driver.policy; points })
    makers
