(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

let figure7_instance ~m ~p =
  if m < 2 || m mod 2 <> 0 then
    invalid_arg "Utilization.figure7_instance: m must be even and >= 2";
  if p < 1 then invalid_arg "Utilization.figure7_instance: p < 1";
  let shorts =
    List.init m (fun i -> Job.make ~org:0 ~index:i ~release:0 ~size:p ())
  in
  let longs =
    List.init (m / 2) (fun i ->
        Job.make ~org:1 ~index:i ~release:0 ~size:(2 * p) ())
  in
  Instance.make
    ~machines:[| m / 2; m / 2 |]
    ~jobs:(shorts @ longs) ~horizon:(2 * p)

let run_utilization ~instance ~seed maker =
  let rng = Fstats.Rng.create ~seed in
  let result = Driver.run ~record:true ~instance ~rng maker in
  Schedule.utilization result.Driver.schedule ~upto:instance.Instance.horizon

(* Exhaustive optimum.  State: the current instant, the multiset of finish
   times of running jobs, and per-organization cursors into the (release-
   sorted) job lists.  At each instant we either start an available
   FIFO-front job (one branch per organization) or advance to the next
   event; delaying arbitrarily is covered because "advance" may be chosen
   even when machines are free. *)
let optimal_busy_time ~instance ~upto =
  let m = Instance.total_machines instance in
  let by_org =
    Array.init (Instance.organizations instance) (fun u ->
        Array.of_list (Instance.jobs_of_org instance u))
  in
  let best = ref 0 in
  let bound =
    Utility.Metrics.work_upper_bound
      ~all_jobs:(Array.to_list instance.Instance.jobs)
      ~machines:m ~upto
  in
  let rec explore time running cursors busy =
    (* [running]: sorted finish times of started jobs (capped contributions
       already counted in [busy]); [cursors.(u)]: next unstarted job. *)
    if busy > !best then best := busy;
    if !best >= bound then ()
    else if time >= upto then ()
    else begin
      let free = m - List.length running in
      (* Branch 1: start an available front job of some organization. *)
      if free > 0 then
        Array.iteri
          (fun u cursor ->
            if cursor < Array.length by_org.(u) then begin
              let job = by_org.(u).(cursor) in
              if job.Job.release <= time then begin
                let finish = time + job.Job.size in
                let contribution = Stdlib.min job.Job.size (upto - time) in
                let running' =
                  List.sort Stdlib.compare (finish :: running)
                in
                let cursors' = Array.copy cursors in
                cursors'.(u) <- cursor + 1;
                explore time running' cursors' (busy + contribution)
              end
            end)
          cursors;
      (* Branch 2: let time flow to the next event (next release after now,
         or next completion), covering every "wait on purpose" schedule. *)
      let next_release =
        Array.to_list instance.Instance.jobs
        |> List.filter_map (fun (j : Job.t) ->
               if j.Job.release > time then Some j.Job.release else None)
        |> List.fold_left Stdlib.min max_int
      in
      let next_finish =
        List.fold_left Stdlib.min max_int
          (List.filter (fun f -> f > time) running)
      in
      let tnext = Stdlib.min next_release next_finish in
      if tnext < upto && tnext > time then begin
        let running' = List.filter (fun f -> f > tnext) running in
        explore tnext running' cursors busy
      end
    end
  in
  explore 0 []
    (Array.make (Instance.organizations instance) 0)
    0;
  !best

let work_bound_utilization ~instance ~upto =
  let m = Instance.total_machines instance in
  if m = 0 || upto <= 0 then 0.
  else
    float_of_int
      (Utility.Metrics.work_upper_bound
         ~all_jobs:(Array.to_list instance.Instance.jobs)
         ~machines:m ~upto)
    /. float_of_int (m * upto)
