(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type result = {
  policy : string;
  instance : Instance.t;
  utilities_scaled : int array;
  parts : int array;
  schedule : Schedule.t;
  events : int;
  wall_seconds : float;
  checkpoints : snapshot list;
  killed : int;
  abandoned : int;
  wasted : int;
  stats : Kernel.Stats.t;
  metrics : Obs.Metrics.snapshot;
}

and snapshot = { at : int; psi_scaled : int array; parts_at : int array }

let machine_owners instance =
  let owners = Array.make (Instance.total_machines instance) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun u m ->
      for _ = 1 to m do
        owners.(!pos) <- u;
        incr pos
      done)
    instance.Instance.machines;
  owners

(* Time from a job's release to its first (or restarted) start, in simulated
   time units — observed at every slot grant the driver makes. *)
let m_job_wait = Obs.Metrics.histogram "sim.job_wait"

let run ?(record = true) ?(checkpoints = []) ?workers ?(faults = [])
    ?max_restarts ~instance ~rng (maker : Algorithms.Policy.maker) =
  Obs.Trace.span ~cat:"sim" "driver.run" @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let k = Instance.organizations instance in
  let horizon = instance.Instance.horizon in
  let nmachines = Instance.total_machines instance in
  let cluster =
    Cluster.create ~record ?max_restarts
      ?speeds:instance.Instance.speeds
      ~machine_owners:(machine_owners instance)
      ~norgs:k ()
  in
  let trackers = Array.init k (fun _ -> Utility.Tracker.create ()) in
  let view = { Algorithms.Policy.instance; cluster; trackers } in
  let policy =
    match workers with
    | None -> maker instance ~rng
    | Some w ->
        Core.Domain_pool.with_default_workers (Some w) (fun () ->
            maker instance ~rng)
  in
  let engine =
    Kernel.Engine.create ~faults ~machines:nmachines ~checkpoints
      ~release_time:(fun (j : Job.t) -> j.Job.release)
      instance.Instance.jobs
  in
  let model =
    {
      Kernel.Engine.next_completion =
        (fun () -> Cluster.next_completion cluster);
      pop_completion =
        (fun ~time ->
          match Cluster.pop_completion_le cluster time with
          | Some c ->
              Utility.Tracker.on_complete
                trackers.(c.Cluster.job.Job.org)
                ~key:c.Cluster.job.Job.index
                ~size:(c.Cluster.finish - c.Cluster.start);
              policy.Algorithms.Policy.on_complete view ~time c;
              true
          | None -> false);
      apply_fault =
        (fun ~time ev ->
          let outcome =
            match ev with
            | Faults.Event.Fail m -> (
                match Cluster.fail_machine cluster ~time m with
                | Some kill ->
                    (* Strategy-proofness under churn (Theorem 4.1): the
                       killed piece is retracted — lost work counts toward
                       nobody's ψsp. *)
                    Utility.Tracker.on_abort
                      trackers.(kill.Cluster.k_job.Job.org)
                      ~key:kill.Cluster.k_job.Job.index;
                    policy.Algorithms.Policy.on_kill view ~time kill;
                    Kernel.Engine.Killed
                      {
                        wasted = kill.Cluster.k_wasted;
                        resubmitted = kill.Cluster.k_resubmitted;
                      }
                | None -> Kernel.Engine.Applied)
            | Faults.Event.Recover m ->
                ignore (Cluster.recover_machine cluster m);
                Kernel.Engine.Applied
          in
          policy.Algorithms.Policy.on_fault view ~time ev;
          outcome);
      admit =
        (fun ~time job ->
          Cluster.release cluster job;
          policy.Algorithms.Policy.on_release view ~time job);
      round =
        (fun ~time ->
          let n = ref 0 in
          while Cluster.free_count cluster > 0 && Cluster.has_waiting cluster
          do
            let org = policy.Algorithms.Policy.select view ~time in
            let machine =
              policy.Algorithms.Policy.pick_machine view ~time ~org
            in
            let placement =
              Cluster.start_front cluster ~org ~time ?machine ()
            in
            Utility.Tracker.on_start trackers.(org)
              ~key:placement.Schedule.job.Job.index ~start:time;
            Obs.Metrics.observe m_job_wait
              (float_of_int (time - placement.Schedule.job.Job.release));
            policy.Algorithms.Policy.on_start view ~time placement;
            incr n
          done;
          !n);
    }
  in
  (* Checkpoint snapshots: the kernel fires [on_checkpoint ~at:c] once every
     event strictly before [c] has been processed (tracker queries are exact
     at any time between events). *)
  let snapshots = ref [] in
  let on_checkpoint ~at =
    snapshots :=
      {
        at;
        psi_scaled =
          Array.map (fun tr -> Utility.Tracker.value_scaled tr ~at) trackers;
        parts_at = Array.map (fun tr -> Utility.Tracker.parts tr ~at) trackers;
      }
      :: !snapshots
  in
  Kernel.Engine.run engine model ~horizon ~on_checkpoint ();
  let stats = Kernel.Stats.copy (Kernel.Engine.stats engine) in
  (match policy.Algorithms.Policy.stats with
  | Some policy_stats -> Kernel.Stats.add stats (policy_stats ())
  | None -> ());
  {
    policy = policy.Algorithms.Policy.name;
    instance;
    utilities_scaled =
      Array.map (fun tr -> Utility.Tracker.value_scaled tr ~at:horizon) trackers;
    parts = Array.map (fun tr -> Utility.Tracker.parts tr ~at:horizon) trackers;
    schedule =
      (if record then Cluster.to_schedule cluster
       else Schedule.of_placements ~machines:(Cluster.machines cluster) []);
    events = (Kernel.Engine.stats engine).Kernel.Stats.instants;
    wall_seconds = Obs.Clock.elapsed t0;
    checkpoints = List.rev !snapshots;
    killed = Cluster.killed_count cluster;
    abandoned = Cluster.abandoned_count cluster;
    wasted =
      (let acc = ref 0 in
       for u = 0 to k - 1 do
         acc := !acc + Cluster.wasted_work cluster u
       done;
       !acc);
    stats;
    metrics = Obs.Metrics.snapshot ();
  }

let utilities r = Array.map (fun v -> float_of_int v /. 2.) r.utilities_scaled
let total_parts r = Array.fold_left ( + ) 0 r.parts

let pp_result ppf r =
  Format.fprintf ppf "%-14s events=%-7d parts=%-8d psi=[%a]" r.policy r.events
    (total_parts r)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf v -> Format.fprintf ppf "%.1f" v))
    (Array.to_list (utilities r))
