(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type result = {
  policy : string;
  instance : Instance.t;
  utilities_scaled : int array;
  parts : int array;
  schedule : Schedule.t;
  events : int;
  wall_seconds : float;
  checkpoints : snapshot list;
  killed : int;
  abandoned : int;
  wasted : int;
}

and snapshot = { at : int; psi_scaled : int array; parts_at : int array }

let machine_owners instance =
  let owners = Array.make (Instance.total_machines instance) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun u m ->
      for _ = 1 to m do
        owners.(!pos) <- u;
        incr pos
      done)
    instance.Instance.machines;
  owners

let run ?(record = true) ?(checkpoints = []) ?workers ?(faults = [])
    ?max_restarts ~instance ~rng (maker : Algorithms.Policy.maker) =
  let t0 = Unix.gettimeofday () in
  let k = Instance.organizations instance in
  let horizon = instance.Instance.horizon in
  let nmachines = Instance.total_machines instance in
  (match Faults.Event.validate ~machines:nmachines faults with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Driver.run: bad fault trace: " ^ msg));
  let faults = Array.of_list (List.sort Faults.Event.compare_timed faults) in
  let next_fault = ref 0 in
  let nfaults = Array.length faults in
  let cluster =
    Cluster.create ~record ?max_restarts
      ?speeds:instance.Instance.speeds
      ~machine_owners:(machine_owners instance)
      ~norgs:k ()
  in
  let trackers = Array.init k (fun _ -> Utility.Tracker.create ()) in
  let view = { Algorithms.Policy.instance; cluster; trackers } in
  let policy =
    match workers with
    | None -> maker instance ~rng
    | Some w ->
        Core.Domain_pool.with_default_workers (Some w) (fun () ->
            maker instance ~rng)
  in
  let jobs = instance.Instance.jobs in
  let njobs = Array.length jobs in
  let next_job = ref 0 in
  let events = ref 0 in
  (* Checkpoint snapshots: a snapshot at instant c is valid once every event
     strictly before c has been processed (tracker queries are exact at any
     time between events). *)
  let pending_checkpoints =
    ref
      (List.sort_uniq Stdlib.compare
         (List.map (fun c -> Stdlib.min c horizon) checkpoints))
  in
  let snapshots = ref [] in
  let snapshot_upto bound =
    let rec go () =
      match !pending_checkpoints with
      | c :: rest when c <= bound ->
          pending_checkpoints := rest;
          snapshots :=
            {
              at = c;
              psi_scaled =
                Array.map
                  (fun tr -> Utility.Tracker.value_scaled tr ~at:c)
                  trackers;
              parts_at =
                Array.map (fun tr -> Utility.Tracker.parts tr ~at:c) trackers;
            }
            :: !snapshots;
          go ()
      | _ -> ()
    in
    go ()
  in
  let min_opt a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Stdlib.min a b)
  in
  let next_event () =
    let release = if !next_job < njobs then Some jobs.(!next_job).Job.release else None in
    let fault =
      if !next_fault < nfaults then Some faults.(!next_fault).Faults.Event.time
      else None
    in
    min_opt (min_opt release fault) (Cluster.next_completion cluster)
  in
  let process_instant t =
    incr events;
    let rec completions () =
      match Cluster.pop_completion_le cluster t with
      | Some c ->
          Utility.Tracker.on_complete
            trackers.(c.Cluster.job.Job.org)
            ~key:c.Cluster.job.Job.index
            ~size:(c.Cluster.finish - c.Cluster.start);
          policy.Algorithms.Policy.on_complete view ~time:t c;
          completions ()
      | None -> ()
    in
    completions ();
    (* Faults after completions (a job finishing at [t] beats a failure at
       [t]) and before releases and the scheduling round (a machine down at
       [t] hosts nothing today; a recovered one is usable immediately). *)
    while
      !next_fault < nfaults && faults.(!next_fault).Faults.Event.time <= t
    do
      let ev = faults.(!next_fault) in
      incr next_fault;
      (match ev.Faults.Event.event with
      | Faults.Event.Fail m -> (
          match Cluster.fail_machine cluster ~time:t m with
          | Some kill ->
              (* Strategy-proofness under churn (Theorem 4.1): the killed
                 piece is retracted — lost work counts toward nobody's
                 ψsp. *)
              Utility.Tracker.on_abort
                trackers.(kill.Cluster.k_job.Job.org)
                ~key:kill.Cluster.k_job.Job.index;
              policy.Algorithms.Policy.on_kill view ~time:t kill
          | None -> ())
      | Faults.Event.Recover m ->
          ignore (Cluster.recover_machine cluster m));
      policy.Algorithms.Policy.on_fault view ~time:t ev.Faults.Event.event
    done;
    while !next_job < njobs && jobs.(!next_job).Job.release <= t do
      let job = jobs.(!next_job) in
      incr next_job;
      Cluster.release cluster job;
      policy.Algorithms.Policy.on_release view ~time:t job
    done;
    while Cluster.free_count cluster > 0 && Cluster.has_waiting cluster do
      let org = policy.Algorithms.Policy.select view ~time:t in
      let machine = policy.Algorithms.Policy.pick_machine view ~time:t ~org in
      let placement = Cluster.start_front cluster ~org ~time:t ?machine () in
      Utility.Tracker.on_start trackers.(org)
        ~key:placement.Schedule.job.Job.index ~start:t;
      policy.Algorithms.Policy.on_start view ~time:t placement
    done
  in
  let rec loop () =
    match next_event () with
    | Some t when t < horizon ->
        snapshot_upto t;
        process_instant t;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  snapshot_upto horizon;
  {
    policy = policy.Algorithms.Policy.name;
    instance;
    utilities_scaled =
      Array.map (fun tr -> Utility.Tracker.value_scaled tr ~at:horizon) trackers;
    parts = Array.map (fun tr -> Utility.Tracker.parts tr ~at:horizon) trackers;
    schedule =
      (if record then Cluster.to_schedule cluster
       else Schedule.of_placements ~machines:(Cluster.machines cluster) []);
    events = !events;
    wall_seconds = Unix.gettimeofday () -. t0;
    checkpoints = List.rev !snapshots;
    killed = Cluster.killed_count cluster;
    abandoned = Cluster.abandoned_count cluster;
    wasted =
      (let acc = ref 0 in
       for u = 0 to k - 1 do
         acc := !acc + Cluster.wasted_work cluster u
       done;
       !acc);
  }

let utilities r = Array.map (fun v -> float_of_int v /. 2.) r.utilities_scaled
let total_parts r = Array.fold_left ( + ) 0 r.parts

let pp_result ppf r =
  Format.fprintf ppf "%-14s events=%-7d parts=%-8d psi=[%a]" r.policy r.events
    (total_parts r)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf v -> Format.fprintf ppf "%.1f" v))
    (Array.to_list (utilities r))
