(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type result = {
  policy : string;
  instance : Instance.t;
  utilities_scaled : int array;
  parts : int array;
  schedule : Schedule.t;
  events : int;
  wall_seconds : float;
  checkpoints : snapshot list;
  killed : int;
  abandoned : int;
  wasted : int;
  stats : Kernel.Stats.t;
  metrics : Obs.Metrics.snapshot;
}

and snapshot = { at : int; psi_scaled : int array; parts_at : int array }

let run ?(record = true) ?(checkpoints = []) ?workers ?(faults = [])
    ?(federation = []) ?max_restarts ~instance ~rng
    (maker : Algorithms.Policy.maker) =
  Obs.Trace.span ~cat:"sim" "driver.run" @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let horizon = instance.Instance.horizon in
  let session =
    Session.create ~record ~checkpoints ?workers ~faults
      ~endowments:federation ?max_restarts ~instance ~rng maker
  in
  (* Checkpoint snapshots: the kernel fires [on_checkpoint ~at:c] once every
     event strictly before [c] has been processed (tracker queries are exact
     at any time between events). *)
  let snapshots = ref [] in
  let on_checkpoint ~at =
    snapshots :=
      {
        at;
        psi_scaled = Session.psi_scaled session ~at;
        parts_at = Session.parts_at session ~at;
      }
      :: !snapshots
  in
  Session.run_to_horizon session ~on_checkpoint ();
  let cluster = Session.cluster session in
  {
    policy = Session.policy_name session;
    instance;
    utilities_scaled = Session.psi_scaled session ~at:horizon;
    parts = Session.parts_at session ~at:horizon;
    schedule =
      (if record then Session.schedule session
       else Schedule.of_placements ~machines:(Cluster.machines cluster) []);
    events = (Session.engine_stats session).Kernel.Stats.instants;
    wall_seconds = Obs.Clock.elapsed t0;
    checkpoints = List.rev !snapshots;
    killed = Cluster.killed_count cluster;
    abandoned = Cluster.abandoned_count cluster;
    wasted = Session.wasted_total session;
    stats = Session.stats session;
    metrics = Obs.Metrics.snapshot ();
  }

let utilities r = Array.map (fun v -> float_of_int v /. 2.) r.utilities_scaled
let total_parts r = Array.fold_left ( + ) 0 r.parts

let pp_result ppf r =
  Format.fprintf ppf "%-14s events=%-7d parts=%-8d psi=[%a]" r.policy r.events
    (total_parts r)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf v -> Format.fprintf ppf "%.1f" v))
    (Array.to_list (utilities r))
