(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(* Time from a job's release to its first (or restarted) start, in simulated
   time units — observed at every slot grant the session makes. *)
let m_job_wait = Obs.Metrics.histogram "sim.job_wait"

(* Slot grants and work units lost to machine failures, across every live
   session (the sharded daemon sums its per-group engines through these). *)
let m_starts = Obs.Metrics.counter "sim.starts_total"
let m_wasted = Obs.Metrics.counter "sim.wasted_units"

type t = {
  instance : Instance.t;
  cluster : Cluster.t;
  trackers : Utility.Tracker.t array;
  policy : Algorithms.Policy.t;
  engine : Job.t Kernel.Engine.t;
  model : Job.t Kernel.Engine.model;
  (* Live consortium ownership (home/owner/presence/activity), replayed in
     lockstep with the endowment stream; inert without one. *)
  ownership : Federation.Event.Ownership.t;
}

let machine_owners instance =
  let owners = Array.make (Instance.total_machines instance) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun u m ->
      for _ = 1 to m do
        owners.(!pos) <- u;
        incr pos
      done)
    instance.Instance.machines;
  owners

let create ?(record = true) ?(checkpoints = []) ?workers ?(faults = [])
    ?(endowments = []) ?federated ?max_restarts ~instance ~rng
    (maker : Algorithms.Policy.maker) =
  let k = Instance.organizations instance in
  let nmachines = Instance.total_machines instance in
  let homes = machine_owners instance in
  (match Federation.Event.validate ~orgs:k ~homes endowments with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sim: bad endowment trace: " ^ msg));
  (* Federated construction also without a static trace when asked (the
     online service feeds endowment events after boot). *)
  let federated =
    match federated with Some f -> f | None -> endowments <> []
  in
  let cluster =
    Cluster.create ~record ?max_restarts
      ?speeds:instance.Instance.speeds
      ~machine_owners:homes
      ~norgs:k ()
  in
  let ownership = Federation.Event.Ownership.create ~homes ~orgs:k in
  let trackers = Array.init k (fun _ -> Utility.Tracker.create ()) in
  let view = { Algorithms.Policy.instance; cluster; trackers } in
  let policy =
    let construct () =
      match workers with
      | None -> maker instance ~rng
      | Some w ->
          Core.Domain_pool.with_default_workers (Some w) (fun () ->
              maker instance ~rng)
    in
    if federated then Federation.Mode.with_enabled true construct
    else construct ()
  in
  let engine =
    Kernel.Engine.create ~faults ~endowments ~machines:nmachines ~checkpoints
      ~release_time:(fun (j : Job.t) -> j.Job.release)
      instance.Instance.jobs
  in
  let model =
    {
      Kernel.Engine.next_completion =
        (fun () -> Cluster.next_completion cluster);
      pop_completion =
        (fun ~time ->
          match Cluster.pop_completion_le cluster time with
          | Some c ->
              Utility.Tracker.on_complete
                trackers.(c.Cluster.job.Job.org)
                ~key:c.Cluster.job.Job.index
                ~size:(c.Cluster.finish - c.Cluster.start);
              policy.Algorithms.Policy.on_complete view ~time c;
              true
          | None -> false);
      apply_fault =
        (fun ~time ev ->
          let outcome =
            match ev with
            | Faults.Event.Fail m -> (
                match Cluster.fail_machine cluster ~time m with
                | Some kill ->
                    (* Strategy-proofness under churn (Theorem 4.1): the
                       killed piece is retracted — lost work counts toward
                       nobody's ψsp. *)
                    Utility.Tracker.on_abort
                      trackers.(kill.Cluster.k_job.Job.org)
                      ~key:kill.Cluster.k_job.Job.index;
                    policy.Algorithms.Policy.on_kill view ~time kill;
                    Obs.Metrics.add m_wasted kill.Cluster.k_wasted;
                    Kernel.Engine.Killed
                      {
                        wasted = kill.Cluster.k_wasted;
                        resubmitted = kill.Cluster.k_resubmitted;
                      }
                | None -> Kernel.Engine.Applied)
            | Faults.Event.Recover m ->
                ignore (Cluster.recover_machine cluster m);
                Kernel.Engine.Applied
          in
          policy.Algorithms.Policy.on_fault view ~time ev;
          outcome);
      apply_endow =
        (fun ~time ev ->
          let changes =
            match Federation.Event.Ownership.apply ownership ev with
            | Ok changes -> changes
            | Error msg -> invalid_arg ("Sim: bad endowment event: " ^ msg)
          in
          let outcome =
            List.fold_left
              (fun (acc : Kernel.Engine.endow_outcome) change ->
                match change with
                | Federation.Event.Ownership.Activate u ->
                    Cluster.resume_org cluster u;
                    acc
                | Federation.Event.Ownership.Deactivate u ->
                    Cluster.suspend_org cluster u;
                    acc
                | Federation.Event.Ownership.Admit { machine; org } ->
                    Cluster.admit_machine cluster ~org machine;
                    acc
                | Federation.Event.Ownership.Transfer { machine; org } ->
                    Cluster.transfer_machine cluster ~org machine;
                    acc
                | Federation.Event.Ownership.Retire m -> (
                    match Cluster.retire_machine cluster ~time m with
                    | None -> acc
                    | Some kill ->
                        (* Same retraction as a fault kill: the piece lost
                           to a retirement counts toward nobody's ψsp. *)
                        Utility.Tracker.on_abort
                          trackers.(kill.Cluster.k_job.Job.org)
                          ~key:kill.Cluster.k_job.Job.index;
                        policy.Algorithms.Policy.on_kill view ~time kill;
                        Obs.Metrics.add m_wasted kill.Cluster.k_wasted;
                        {
                          Kernel.Engine.e_kills =
                            acc.Kernel.Engine.e_kills + 1;
                          e_wasted =
                            acc.Kernel.Engine.e_wasted
                            + kill.Cluster.k_wasted;
                          e_abandoned =
                            (acc.Kernel.Engine.e_abandoned
                            + if kill.Cluster.k_resubmitted then 0 else 1);
                        }))
              Kernel.Engine.no_endow_effect changes
          in
          policy.Algorithms.Policy.on_endow view ~time ev;
          outcome);
      admit =
        (fun ~time job ->
          Cluster.release cluster job;
          policy.Algorithms.Policy.on_release view ~time job);
      round =
        (fun ~time ->
          let n = ref 0 in
          while Cluster.free_count cluster > 0 && Cluster.has_waiting cluster
          do
            let org = policy.Algorithms.Policy.select view ~time in
            let machine =
              policy.Algorithms.Policy.pick_machine view ~time ~org
            in
            let placement =
              Cluster.start_front cluster ~org ~time ?machine ()
            in
            Utility.Tracker.on_start trackers.(org)
              ~key:placement.Schedule.job.Job.index ~start:time;
            Obs.Metrics.observe m_job_wait
              (float_of_int (time - placement.Schedule.job.Job.release));
            Obs.Metrics.incr m_starts;
            policy.Algorithms.Policy.on_start view ~time placement;
            incr n
          done;
          !n);
    }
  in
  { instance; cluster; trackers; policy; engine; model; ownership }

let instance t = t.instance
let cluster t = t.cluster
let policy_name t = t.policy.Algorithms.Policy.name
let horizon t = t.instance.Instance.horizon
let now t = Kernel.Engine.now t.engine

let feed_job t job = Kernel.Engine.push_job t.engine job
let feed_fault t ev = Kernel.Engine.push_fault t.engine ev
let feed_endow t ev = Kernel.Engine.push_endow t.engine ev
let ownership t = t.ownership

let advance_below t ~time = Kernel.Engine.run_below t.engine t.model ~time

let run_to_horizon t ?on_checkpoint () =
  Kernel.Engine.run t.engine t.model ~horizon:(horizon t) ?on_checkpoint ()

let psi_scaled t ~at =
  Array.map (fun tr -> Utility.Tracker.value_scaled tr ~at) t.trackers

let parts_at t ~at =
  Array.map (fun tr -> Utility.Tracker.parts tr ~at) t.trackers

let engine_stats t = Kernel.Engine.stats t.engine

let stats t =
  let acc = Kernel.Stats.copy (Kernel.Engine.stats t.engine) in
  (match t.policy.Algorithms.Policy.stats with
  | Some policy_stats -> Kernel.Stats.add acc (policy_stats ())
  | None -> ());
  acc

let schedule t = Cluster.to_schedule t.cluster

let wasted_total t =
  let acc = ref 0 in
  for u = 0 to Cluster.norgs t.cluster - 1 do
    acc := !acc + Cluster.wasted_work t.cluster u
  done;
  !acc
