(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** Related-machines experiments (Section 2 claims the model extends;
    Section 6/8 leaves the efficiency loss open and suspects it "might be
    significant").

    The fairness machinery extends untouched: {!Core.Instance.make_related}
    attaches per-machine speeds, the cluster computes wall occupancy
    [ceil (size / speed)], and ψsp accounts executed wall parts — so REF,
    RAND and every heuristic run unchanged (property-tested in
    [test/test_sim.ml]).

    Efficiency is a different story: Theorem 6.2's ¾ bound is specific to
    identical machines.  {!speed_gadget} is a two-machine family on which a
    (perfectly greedy) policy that picks the slow machine executes only
    [1/ratio] of the optimal work — the loss is unbounded, confirming the
    paper's suspicion. *)

val speed_gadget : ratio:int -> work:int -> Instance.t
(** Two machines with speeds [ratio] and [1], one organization, a single job
    of size [work·ratio] released at 0, horizon [work] (the time the fast
    machine needs).  @raise Invalid_argument unless [ratio >= 1 && work >= 1]. *)

val executed_work : Schedule.t -> instance:Instance.t -> upto:int -> float
(** Work units (job-size units) executed before [upto]: wall parts weighted
    by the hosting machine's speed. *)

val pin_fastest : Algorithms.Policy.maker
(** FCFS selecting the fastest free machine — the sensible greedy. *)

val pin_slowest : Algorithms.Policy.maker
(** FCFS selecting the slowest free machine — the adversarial greedy (still
    greedy: it never idles a machine while work waits). *)

type gadget_row = {
  ratio : int;
  fast_work : float;  (** work executed by [pin_fastest] at the horizon *)
  slow_work : float;
  work_ratio : float;  (** slow / fast — approaches 1/ratio *)
}

val gadget_sweep :
  ?faults:Faults.Event.timed list ->
  ?max_restarts:int ->
  ratios:int list ->
  work:int ->
  unit ->
  gadget_row list
(** Both pinning policies over {!speed_gadget} per ratio.  [faults] /
    [max_restarts] pass straight through {!Driver.run}'s kernel (machine
    ids are the gadget's: 0 = fast, 1 = slow), so the sweep can measure
    the efficiency gap under churn too. *)
