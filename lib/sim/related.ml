(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

let speed_gadget ~ratio ~work =
  if ratio < 1 || work < 1 then invalid_arg "Related.speed_gadget";
  Instance.make_related
    ~speeds:[| float_of_int ratio; 1.0 |]
    ~machines:[| 2 |]
    ~jobs:[ Job.make ~org:0 ~index:0 ~release:0 ~size:(work * ratio) () ]
    ~horizon:work

let executed_work sched ~instance ~upto =
  List.fold_left
    (fun acc (p : Schedule.placement) ->
      let wall = Stdlib.max 0 (Stdlib.min (Schedule.completion p) upto - p.Schedule.start) in
      acc +. (float_of_int wall *. Instance.machine_speed instance p.Schedule.machine))
    0.
    (Schedule.placements sched)

let pin_by choose name _instance ~rng:_ =
  Algorithms.Policy.make ~name
    ~pick_machine:(fun view ~time:_ ~org:_ ->
      let cluster = view.Algorithms.Policy.cluster in
      match Cluster.free_machine_ids cluster with
      | [] -> None
      | first :: rest ->
          Some
            (List.fold_left
               (fun best m ->
                 if choose (Cluster.machine_speed cluster m)
                      (Cluster.machine_speed cluster best)
                 then m
                 else best)
               first rest))
    ~select:(fun view ~time:_ ->
      (* FCFS across organizations, as in Baselines.fifo. *)
      match Cluster.waiting_orgs view.Algorithms.Policy.cluster with
      | [] -> invalid_arg (name ^ ": nothing waiting")
      | orgs ->
          let release u =
            match Cluster.front view.Algorithms.Policy.cluster u with
            | Some j -> j.Job.release
            | None -> max_int
          in
          List.fold_left
            (fun best u -> if release u < release best then u else best)
            (List.hd orgs) (List.tl orgs))
    ()

let pin_fastest instance ~rng =
  pin_by (fun a b -> a > b) "pin-fastest" instance ~rng

let pin_slowest instance ~rng =
  pin_by (fun a b -> a < b) "pin-slowest" instance ~rng

type gadget_row = {
  ratio : int;
  fast_work : float;
  slow_work : float;
  work_ratio : float;
}

let gadget_sweep ?(faults = []) ?max_restarts ~ratios ~work () =
  List.map
    (fun ratio ->
      let instance = speed_gadget ~ratio ~work in
      let run maker =
        let r =
          Driver.run ~faults ?max_restarts ~instance
            ~rng:(Fstats.Rng.create ~seed:1) maker
        in
        executed_work r.Driver.schedule ~instance
          ~upto:instance.Instance.horizon
      in
      let fast_work = run pin_fastest in
      let slow_work = run pin_slowest in
      { ratio; fast_work; slow_work; work_ratio = slow_work /. fast_work })
    ratios
