(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** Resource-utilization experiments (Section 6).

    Theorem 6.2: every greedy algorithm is ¾-competitive for resource
    utilization against {e any} (even clairvoyant, non-greedy) algorithm,
    and the bound is tight.  The tight family here generalizes Figure 7:
    [m] machines, organization 0 releases [m] short jobs of size [p],
    organization 1 releases [m/2] long jobs of size [2p], all at time 0,
    horizon [2p].  Starting the long jobs first fills the pool (100%);
    starting the short jobs first strands [m/2] machines idle over [p, 2p]
    (75%). *)

val figure7_instance : m:int -> p:int -> Instance.t
(** @raise Invalid_argument unless [m] is even and positive and [p >= 1]. *)

val run_utilization :
  instance:Instance.t -> seed:int -> Algorithms.Policy.maker -> float
(** Utilization of the policy's schedule at the instance horizon. *)

val optimal_busy_time : instance:Instance.t -> upto:int -> int
(** Exact optimum by exhaustive search over all feasible (including
    non-greedy and clairvoyant) schedules that respect release times and
    per-organization FIFO order.  Exponential — use only on tiny instances
    (≲ 8 jobs).  Branch-and-bound pruned with the released-work upper
    bound. *)

val work_bound_utilization : instance:Instance.t -> upto:int -> float
(** The (unreachable in general) certificate
    [min(m·T, Σ min(p, T−r)) / (m·T)] — any schedule's utilization is at
    most this. *)
