(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** Fairness evaluation against the REF reference schedule (Section 7.2).

    The paper's measure: run REF to obtain the ideally-fair utility vector
    ψ*, run the candidate algorithm to obtain ψ, and report

      Δψ / p_tot  with  Δψ = ‖ψ − ψ*‖₁,
                        p_tot = executed unit parts in the REF schedule.

    Since delaying one unit part of a job by one time step costs its owner
    exactly one unit of ψsp, the ratio reads as the average unjustified
    delay (or speed-up) per unit of work. *)

type evaluation = {
  result : Driver.result;
  delta_scaled : int;  (** [2·Δψ] *)
  ratio : float;  (** [Δψ / p_tot] *)
}

val delta_ratio : reference:Driver.result -> Driver.result -> int * float
(** [(2Δψ, Δψ/p_tot)]. @raise Invalid_argument if the two results are for
    different instances (organization counts differ). *)

val evaluate :
  ?record:bool ->
  ?faults:Faults.Event.timed list ->
  ?max_restarts:int ->
  instance:Instance.t ->
  seed:int ->
  Algorithms.Policy.maker list ->
  Driver.result * evaluation list
(** Runs REF once, then each candidate (each with an independent RNG stream
    derived from [seed]), and scores them.  Returns the reference result and
    the evaluations in the order given.  [faults] subjects the reference
    and every candidate to the {e same} failure trace — fairness under
    churn is judged against the fair schedule of the same degraded
    cluster. *)

val evaluate_against :
  reference:Driver.result ->
  ?record:bool ->
  ?faults:Faults.Event.timed list ->
  ?max_restarts:int ->
  instance:Instance.t ->
  seed:int ->
  Algorithms.Policy.maker list ->
  evaluation list
(** Same but reusing an already-computed reference run (which must have been
    produced under the same [faults]). *)

(** {2 Unfairness over time}

    Definition 3.2 demands fairness at {e every} instant; the timeline
    tracks how Δψ(t)/p_tot(t) accumulates as the trace unfolds — the
    mechanism behind Table 2's growth with the horizon. *)

type timeline = {
  policy : string;
  points : (int * float) list;  (** (instant, Δψ(t)/p_tot(t)) ascending *)
}

val timelines :
  ?faults:Faults.Event.timed list ->
  ?max_restarts:int ->
  instance:Instance.t ->
  seed:int ->
  checkpoints:int list ->
  Algorithms.Policy.maker list ->
  timeline list
(** Runs REF once with snapshots at [checkpoints], then each candidate, and
    scores the distance at every snapshot.  [faults] / [max_restarts] apply
    identically to the reference and every candidate (same injected trace),
    so the timeline isolates the policy effect under churn. *)
