(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** The online simulation loop.

    Runs one policy over one instance: jobs appear at their release times,
    completions free machines, and whenever a machine is free while some
    organization has a waiting job the policy is asked whom to serve
    (greediness is therefore enforced by construction — Section 2).  Events
    are processed in time order; nothing happens between events, so the loop
    is O(events), independent of the horizon length.

    The event loop itself — stream merging, within-instant phase order,
    checkpoints, instrumentation — lives in {!Kernel.Engine}; the driver is
    the grand-coalition instantiation: it owns the real cluster and the
    exact ψsp trackers and passes them to the policy through
    {!Algorithms.Policy.view}. *)

type result = {
  policy : string;
  instance : Instance.t;
  utilities_scaled : int array;  (** [2·ψsp(u)] at the horizon *)
  parts : int array;  (** executed unit parts per organization at horizon *)
  schedule : Schedule.t;  (** full recorded grand-coalition schedule *)
  events : int;  (** number of event instants processed *)
  wall_seconds : float;  (** wall-clock time of the simulation *)
  checkpoints : snapshot list;
      (** snapshots at the requested instants, ascending (empty unless
          requested) *)
  killed : int;  (** jobs killed by machine failures (0 without faults) *)
  abandoned : int;  (** jobs dropped after exhausting [max_restarts] *)
  wasted : int;  (** executed-then-discarded unit parts across kills *)
  stats : Kernel.Stats.t;
      (** kernel instrumentation: the driver loop's own counters plus the
          policy's internal ones ({!Algorithms.Policy.stats}), e.g. REF's
          sub-coalition simulations and event-heap pops *)
  metrics : Obs.Metrics.snapshot;
      (** process-wide {!Obs.Metrics} snapshot taken as the run ends: round
          latencies, job-wait distribution, heap ops, pool busy/idle times.
          Empty unless metrics collection was enabled
          ({!Obs.Metrics.set_enabled}); process-wide, so values aggregate
          over every run since the last {!Obs.Metrics.reset}. *)
}

and snapshot = {
  at : int;
  psi_scaled : int array;  (** [2·ψsp(u)] at [at] *)
  parts_at : int array;  (** executed unit parts per organization at [at] *)
}

val run :
  ?record:bool ->
  ?checkpoints:int list ->
  ?workers:int ->
  ?faults:Faults.Event.timed list ->
  ?federation:Federation.Event.timed list ->
  ?max_restarts:int ->
  instance:Instance.t ->
  rng:Fstats.Rng.t ->
  Algorithms.Policy.maker ->
  result
(** Simulate until every event before the horizon is processed.  [record]
    (default true) retains the placement list; disable for large sweeps
    where only utilities matter (the schedule in the result is then
    empty).  [checkpoints] asks for utility snapshots at the given instants
    (clamped to the horizon; Definition 3.2 makes fairness a property of
    {e every} time instant, and the timeline experiments track how
    unfairness accumulates).  [workers] sets the domain-local default
    worker count while the policy is constructed
    ({!Core.Domain_pool.with_default_workers}): parallel-capable policies
    such as {!Algorithms.Reference} pick it up unless given an explicit
    [?workers] of their own.  [workers:1] forces strictly sequential
    execution; the default is [Domain.recommended_domain_count () - 1].
    Results are bit-identical for every worker count.

    [faults] injects machine failures and recoveries (see {!Faults}): at a
    [Fail] instant the machine goes down and its running job — jobs are
    non-preemptible — is killed, its executed prefix discarded (it never
    enters any ψsp), and the job resubmitted at the head of its owner's
    queue; at [Recover] the machine rejoins the free pool.  Within an
    instant the order is completions, then faults, then releases, then the
    scheduling round.  [max_restarts] bounds resubmissions per job; once
    exceeded the job is abandoned (counted in the result).  An empty
    [faults] list (the default) leaves every code path and result
    bit-identical to a fault-free run.

    [federation] injects endowment events (see {!Federation}): consortium
    joins/leaves and machine lends/reclaims, applied within an instant
    after faults and before releases, so ψsp and every coalition value
    attribute capacity to the machine's {e current} owner and re-derive
    from the live org set k(t).  Policy construction happens in federated
    mode ({!Federation.Mode}) whenever the trace is non-empty.  An empty
    trace (the default) is bit-identical to the static consortium across
    all policies and worker counts.
    @raise Invalid_argument on an unsorted/out-of-range fault trace or an
    endowment trace that does not replay cleanly
    ({!Federation.Event.validate}). *)

val utilities : result -> float array
(** Unscaled ψsp per organization. *)

val total_parts : result -> int
val pp_result : Format.formatter -> result -> unit
