(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** One live policy-over-cluster simulation, exposed incrementally.

    {!Driver.run} plays a closed {!Instance.t} to its horizon in one call;
    a session is the same machinery — the real cluster, the exact per-
    organization ψsp trackers, the policy wired into {!Kernel.Engine}'s
    canonical phase order — opened up so that events can also be {e fed} as
    they arrive and the state inspected between events.  The online
    scheduler daemon ({!module:Service} library) is the primary client:
    it feeds socket submissions with {!feed_job}, advances the engine no
    further than what is already final with {!advance_below}, and answers
    ψsp queries from {!psi_scaled}.

    Batch and fed runs are bit-identical: {!Driver.run} is a thin wrapper
    that creates a session with the instance's static job array and calls
    {!run_to_horizon}, and the kernel merges static and pushed streams
    into one canonical event order.  Feeding the same jobs (in release
    order) into an initially-empty session reproduces the batch schedule,
    utilities, and kernel counters exactly — the equivalence the service
    layer's golden tests pin down. *)

type t

val create :
  ?record:bool ->
  ?checkpoints:int list ->
  ?workers:int ->
  ?faults:Faults.Event.timed list ->
  ?endowments:Federation.Event.timed list ->
  ?federated:bool ->
  ?max_restarts:int ->
  instance:Instance.t ->
  rng:Fstats.Rng.t ->
  Algorithms.Policy.maker ->
  t
(** Build the cluster, trackers, policy, and kernel over
    [instance.jobs] (possibly empty — the daemon passes a job-less
    instance and feeds everything dynamically).  Parameters are exactly
    those of {!Driver.run}, with the same defaults and the same
    bit-identity across [workers] counts.

    [endowments] is the static endowment trace (validated against the
    instance's endowment); [federated] forces federated policy
    construction — {!Federation.Mode} raised around the maker so REF/RAND
    build time-varying sub-coalition simulators — even when the static
    trace is empty, which is how the daemon prepares for events fed later
    (default: [endowments <> []]).
    @raise Invalid_argument on an unsorted/out-of-range fault trace or an
    invalid endowment trace. *)

(** {2 Feeding events} *)

val feed_job : t -> Job.t -> unit
(** Push one job, in non-decreasing release order across calls (and not
    before any instant already processed).  [job.index] must be the
    organization's next FIFO rank — {!Instance.make} assigns ranks the
    same way for batch runs. *)

val feed_fault : t -> Faults.Event.timed -> unit
(** Push one fault event, in time order like {!feed_job}. *)

val feed_endow : t -> Federation.Event.timed -> unit
(** Push one endowment event, in time order like {!feed_job}.  The event
    must be valid in the ownership state its predecessors produce
    (pre-check with {!Federation.Event.Ownership.apply} on a copy of
    {!ownership}); an invalid event raises [Invalid_argument] when the
    engine applies it. *)

(** {2 Advancing} *)

val advance_below : t -> time:int -> unit
(** Process every instant with a pending event strictly before [time] and
    stop: instant [time] stays open for same-instant arrivals.  Call with
    the release of each newly fed event, then {!run_to_horizon} at drain —
    the instants processed are exactly those of a closed batch run. *)

val run_to_horizon : t -> ?on_checkpoint:(at:int -> unit) -> unit -> unit
(** Play every remaining event strictly before the instance horizon
    ({!Kernel.Engine.run} semantics, including checkpoint firing). *)

(** {2 Inspection} *)

val instance : t -> Instance.t
val cluster : t -> Cluster.t
val policy_name : t -> string
val horizon : t -> int

val now : t -> int
(** Last processed instant (0 before any) — the only instant at which
    {!psi_scaled} is exact, because completions between [now] and the next
    event have not been applied yet. *)

val psi_scaled : t -> at:int -> int array
(** [2·ψsp(u)] per organization at [at].  [at] must not precede the latest
    job start (asserted by the tracker); exact only for [at <= now]. *)

val parts_at : t -> at:int -> int array
(** Executed unit parts per organization at [at]. *)

val engine_stats : t -> Kernel.Stats.t
(** The kernel's live counters (no policy internals); not a copy. *)

val stats : t -> Kernel.Stats.t
(** Fresh copy of the kernel counters plus the policy's internal ones
    (REF's sub-coalition simulations), as reported by {!Driver.run}. *)

val schedule : t -> Schedule.t
(** @raise Invalid_argument unless created with [record:true]. *)

val wasted_total : t -> int
(** Executed-then-discarded unit parts summed over organizations. *)

val ownership : t -> Federation.Event.Ownership.t
(** Live consortium state (k(t), per-machine owner/presence), replayed in
    lockstep with the endowment stream — the source for the [fed.*]
    membership gauges.  Inert (everything present and active) without
    endowment events. *)
