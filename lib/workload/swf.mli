(** Standard Workload Format (SWF) — the format of the Parallel Workload
    Archive traces the paper evaluates on (LPC-EGEE, PIK-IPLEX, RICC,
    SHARCNET-Whale).

    An SWF file has `;`-prefixed header comments and one job per line with
    18 whitespace-separated fields.  We consume the fields this reproduction
    needs — job id, submit time, run time, allocated processors, user id —
    and, following the paper, expand a parallel job needing [q] processors
    into [q] sequential copies of the same duration.

    The writer emits files that round-trip through the parser, so synthetic
    traces can be saved and real archive traces dropped in. *)

type entry = {
  job_id : int;
  submit : int;  (** seconds since trace start *)
  run_time : int;  (** seconds; jobs with non-positive run time are skipped *)
  processors : int;  (** allocated processor count, >= 1 *)
  user : int;
}

type t = {
  header : string list;  (** header comment lines, without the leading ';' *)
  entries : entry list;  (** in submit order *)
}

type parse_report = {
  lines : int;  (** total lines seen, including the trailing empty one *)
  entries : int;  (** well-formed job entries kept *)
  comments : int;  (** [;]-prefixed header/comment lines *)
  blanks : int;
  filtered : int;
      (** well-formed entries dropped as data, not corruption: run time
          [<= 0] (status-failed/cancelled jobs in real archive traces),
          processor count [< 1], or negative submit time *)
  malformed : (int * string) list;
      (** lines that are neither comments nor parseable entries:
          [(1-based line number, reason)], in file order *)
}

exception Parse_error of { line : int; reason : string }
(** Raised by the [~strict] parsers on the first malformed line. *)

val parse_line : string -> entry option
(** [None] for comments, blank lines, malformed lines, and jobs with
    missing/invalid run time or processor count (status-failed entries in
    real traces). *)

val parse_string : ?strict:bool -> string -> t
(** Lenient by default: malformed lines are skipped.  With [~strict:true]
    the first malformed line raises {!Parse_error} (filtered entries never
    do — real traces contain them). *)

val parse_report : ?strict:bool -> string -> t * parse_report
(** Like {!parse_string}, also returning per-line diagnostics. *)

val pp_report : Format.formatter -> parse_report -> unit

val load : ?strict:bool -> string -> t
(** @raise Sys_error on unreadable files.
    @raise Parse_error with [~strict:true], as {!parse_string}. *)

val load_report : ?strict:bool -> string -> t * parse_report

val to_string : t -> string
val save : string -> t -> unit

val to_jobs : ?org_of_user:(int -> int) -> t -> Core.Job.t list
(** Sequentialize: a [q]-processor entry becomes [q] jobs of the same
    duration (Section 7.2).  [org_of_user] maps trace users to
    organizations (default: everything to organization 0).  Job indices are
    assigned later by {!Core.Instance.make}. *)
