type model = {
  name : string;
  description : string;
  native_machines : int;
  native_users : int;
  load : float;
  duration_mu : float;
  duration_sigma : float;
  jobs_per_session : float;
  session_gap : float;
  user_skew : float;
  day_profile : float array;
}

(* A generic working-hours profile: low at night, ramping through the
   morning, peaking early afternoon.  Individual models scale or flatten
   it. *)
let office_hours =
  [|
    0.3; 0.25; 0.2; 0.2; 0.2; 0.25; 0.4; 0.6; 1.0; 1.4; 1.6; 1.7; 1.6; 1.7;
    1.8; 1.7; 1.5; 1.2; 1.0; 0.8; 0.6; 0.5; 0.4; 0.35;
  |]


let mix profile alpha =
  (* alpha = 1 keeps the office profile, 0 flattens it completely. *)
  Array.map (fun w -> (alpha *. w) +. (1. -. alpha)) profile

let lpc_egee =
  {
    name = "lpc-egee";
    description = "LPC Clermont-Ferrand EGEE node: 70 CPUs, biomed grid jobs";
    native_machines = 70;
    native_users = 56;
    load = 0.85;
    duration_mu = log 450.;
    duration_sigma = 1.4;
    jobs_per_session = 16.;
    session_gap = 20.;
    user_skew = 0.8;
    day_profile = mix office_hours 0.7;
  }

let pik_iplex =
  {
    name = "pik-iplex";
    description = "PIK IBM iDataPlex: 2560 cores, lightly loaded";
    native_machines = 2560;
    native_users = 225;
    load = 0.3;
    duration_mu = log 500.;
    duration_sigma = 1.7;
    jobs_per_session = 30.;
    session_gap = 15.;
    user_skew = 1.0;
    day_profile = mix office_hours 0.9;
  }

let ricc =
  {
    name = "ricc";
    description = "RIKEN Integrated Cluster of Clusters: 8192 cores, saturated";
    native_machines = 8192;
    native_users = 176;
    load = 1.08;
    duration_mu = log 1400.;
    duration_sigma = 1.6;
    jobs_per_session = 24.;
    session_gap = 10.;
    user_skew = 1.1;
    day_profile = mix office_hours 0.4;
  }

let sharcnet_whale =
  {
    name = "sharcnet-whale";
    description = "SHARCNET Whale cluster: 3072 cores, mid-range load";
    native_machines = 3072;
    native_users = 154;
    load = 0.6;
    duration_mu = log 800.;
    duration_sigma = 1.5;
    jobs_per_session = 12.;
    session_gap = 45.;
    user_skew = 0.9;
    day_profile = mix office_hours 0.6;
  }

let all = [ lpc_egee; pik_iplex; ricc; sharcnet_whale ]
let by_name name = List.find_opt (fun m -> m.name = name) all

let mean_job_seconds m =
  exp (m.duration_mu +. (m.duration_sigma *. m.duration_sigma /. 2.))

let generate m ~rng ~machines ?load ?users ~duration () =
  if machines < 1 then invalid_arg "Traces.generate: machines < 1";
  if duration < 1 then invalid_arg "Traces.generate: duration < 1";
  let load = Option.value load ~default:m.load in
  let users = Option.value users ~default:m.native_users in
  (* Work to offer over the window, in machine-seconds, converted into a
     number of sessions given mean job length and batch size. *)
  let target_work = load *. float_of_int machines *. float_of_int duration in
  let jobs = target_work /. mean_job_seconds m in
  let sessions =
    Stdlib.max 1 (int_of_float (Float.round (jobs /. m.jobs_per_session)))
  in
  let user_weights = Fstats.Dist.zipf_weights ~n:users ~s:m.user_skew in
  let hour_weights = m.day_profile in
  let day_seconds = 86_400 in
  let session_start () =
    (* Pick a uniformly random day position in the window, then an hour by
       the day profile, then a second within the hour. *)
    let day_base = Fstats.Rng.int rng (Stdlib.max 1 duration) / day_seconds in
    let hour = Fstats.Dist.categorical rng hour_weights in
    let sec = Fstats.Rng.int rng 3600 in
    let t = (day_base * day_seconds) + (hour * 3600) + sec in
    t mod duration
  in
  let entries = ref [] in
  let next_id = ref 1 in
  for _ = 1 to sessions do
    let user = Fstats.Dist.categorical rng user_weights in
    let start = session_start () in
    let batch = 1 + Fstats.Dist.geometric rng ~p:(1. /. m.jobs_per_session) in
    let t = ref start in
    for _ = 1 to batch do
      if !t < duration then begin
        let run =
          Fstats.Dist.lognormal rng ~mu:m.duration_mu ~sigma:m.duration_sigma
        in
        (* Clip to [1s, 2 days]: archive traces cap runaway entries. *)
        let run = Stdlib.max 1 (Stdlib.min 172_800 (int_of_float run)) in
        entries :=
          {
            Swf.job_id = !next_id;
            submit = !t;
            run_time = run;
            processors = 1;
            user;
          }
          :: !entries;
        incr next_id
      end;
      t :=
        !t
        + 1
        + int_of_float (Fstats.Dist.exponential rng ~rate:(1. /. m.session_gap))
    done
  done;
  List.stable_sort
    (fun (a : Swf.entry) b -> Stdlib.compare a.Swf.submit b.Swf.submit)
    !entries

(* --- unbounded stream --------------------------------------------------- *)

(* The daemon's load generator needs submissions past any horizon, so the
   stream version re-derives [generate]'s session machinery block by block:
   time is cut into fixed one-day blocks, each block draws its sessions from
   an RNG seeded by (seed, block index) alone, and a session's jobs — which
   may spill past the block's end — ride forward in a pending list until
   their block comes up.  Sessions never produce jobs before their own start,
   so every entry emitted before the end of block [b] depends only on blocks
   [<= b]: the first N entries are independent of how far the stream is
   forced (prefix consistency), and two streams from one seed are equal
   entry-for-entry. *)

let stream_block_len = 86_400

let stream m ~seed ~machines ?load ?users () =
  if machines < 1 then invalid_arg "Traces.stream: machines < 1";
  let load = Option.value load ~default:m.load in
  let users = Option.value users ~default:m.native_users in
  let target_work =
    load *. float_of_int machines *. float_of_int stream_block_len
  in
  let sessions_per_block =
    Stdlib.max 1
      (int_of_float
         (Float.round (target_work /. mean_job_seconds m /. m.jobs_per_session)))
  in
  let user_weights = Fstats.Dist.zipf_weights ~n:users ~s:m.user_skew in
  let hour_weights = m.day_profile in
  (* Jobs of one block's sessions, unsorted; submit may lie in any block at
     or after [block]. *)
  let block_jobs block =
    let rng =
      Fstats.Rng.create ~seed:(seed lxor (0x5eed + (block * 0x9e3779b9)))
    in
    let jobs = ref [] in
    for _ = 1 to sessions_per_block do
      let user = Fstats.Dist.categorical rng user_weights in
      let hour = Fstats.Dist.categorical rng hour_weights in
      let start =
        (block * stream_block_len) + (hour * 3600) + Fstats.Rng.int rng 3600
      in
      let batch =
        1 + Fstats.Dist.geometric rng ~p:(1. /. m.jobs_per_session)
      in
      let t = ref start in
      for _ = 1 to batch do
        let run =
          Fstats.Dist.lognormal rng ~mu:m.duration_mu ~sigma:m.duration_sigma
        in
        let run = Stdlib.max 1 (Stdlib.min 172_800 (int_of_float run)) in
        jobs := (!t, run, user) :: !jobs;
        t :=
          !t
          + 1
          + int_of_float
              (Fstats.Dist.exponential rng ~rate:(1. /. m.session_gap))
      done
    done;
    !jobs
  in
  (* State: next block to generate, pending jobs with submit at or past that
     block's start, next job id.  Pure unfold — forcing the stream twice
     replays identically. *)
  let rec emit ready pending block next_id () =
    match ready with
    | (submit, run_time, user) :: rest ->
        Seq.Cons
          ( { Swf.job_id = next_id; submit; run_time; processors = 1; user },
            emit rest pending block (next_id + 1) )
    | [] ->
        let fresh = block_jobs block in
        let bound = (block + 1) * stream_block_len in
        let due, future =
          List.partition (fun (s, _, _) -> s < bound) (fresh @ pending)
        in
        let due = List.stable_sort Stdlib.compare due in
        emit due future (block + 1) next_id ()
  in
  emit [] [] 0 1
