type entry = {
  job_id : int;
  submit : int;
  run_time : int;
  processors : int;
  user : int;
}

type t = { header : string list; entries : entry list }

(* SWF fields (1-based): 1 job id, 2 submit, 3 wait, 4 run time,
   5 allocated processors, 6 avg cpu time, 7 used memory, 8 requested
   processors, 9 requested time, 10 requested memory, 11 status, 12 user id,
   13 group id, 14 executable, 15 queue, 16 partition, 17 preceding job,
   18 think time.  Missing values are -1. *)
let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = ';' then None
  else
    let fields =
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun s -> s <> "")
    in
    match fields with
    | job_id :: submit :: _wait :: run_time :: processors :: rest ->
        let ( let* ) = Option.bind in
        let* job_id = int_of_string_opt job_id in
        let* submit = int_of_string_opt submit in
        let* run_time = int_of_string_opt run_time in
        let* processors = int_of_string_opt processors in
        let user =
          (* field 12 = 7th element of [rest] *)
          match List.nth_opt rest 6 with
          | Some u -> Option.value (int_of_string_opt u) ~default:0
          | None -> 0
        in
        if run_time <= 0 || processors < 1 || submit < 0 then None
        else Some { job_id; submit; run_time; processors; user }
    | _ -> None

let parse_string s =
  let lines = String.split_on_char '\n' s in
  let header =
    List.filter_map
      (fun l ->
        let l = String.trim l in
        if String.length l > 0 && l.[0] = ';' then
          Some (String.trim (String.sub l 1 (String.length l - 1)))
        else None)
      lines
  in
  let entries = List.filter_map parse_line lines in
  let entries =
    List.stable_sort (fun a b -> Stdlib.compare a.submit b.submit) entries
  in
  { header; entries }

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

let to_string t =
  let buf = Buffer.create 4096 in
  List.iter (fun h -> Buffer.add_string buf ("; " ^ h ^ "\n")) t.header;
  List.iter
    (fun e ->
      (* Unused fields written as -1, status as 1 (completed). *)
      Buffer.add_string buf
        (Printf.sprintf "%d %d -1 %d %d -1 -1 %d -1 -1 1 %d -1 -1 -1 -1 -1 -1\n"
           e.job_id e.submit e.run_time e.processors e.processors e.user))
    t.entries;
  Buffer.contents buf

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let to_jobs ?(org_of_user = fun _ -> 0) t =
  List.concat_map
    (fun e ->
      List.init e.processors (fun _ ->
          Core.Job.make
            ~org:(org_of_user e.user)
            ~index:0 ~user:e.user ~release:e.submit ~size:e.run_time ()))
    t.entries
