type entry = {
  job_id : int;
  submit : int;
  run_time : int;
  processors : int;
  user : int;
}

type t = { header : string list; entries : entry list }

type parse_report = {
  lines : int;
  entries : int;
  comments : int;
  blanks : int;
  filtered : int;
  malformed : (int * string) list;
}

exception Parse_error of { line : int; reason : string }

(* SWF fields (1-based): 1 job id, 2 submit, 3 wait, 4 run time,
   5 allocated processors, 6 avg cpu time, 7 used memory, 8 requested
   processors, 9 requested time, 10 requested memory, 11 status, 12 user id,
   13 group id, 14 executable, 15 queue, 16 partition, 17 preceding job,
   18 think time.  Missing values are -1. *)
let classify_line line =
  let line = String.trim line in
  if line = "" then `Blank
  else if line.[0] = ';' then
    `Comment (String.trim (String.sub line 1 (String.length line - 1)))
  else
    let fields =
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun s -> s <> "")
    in
    match fields with
    | job_id :: submit :: _wait :: run_time :: processors :: rest -> (
        let int what s =
          match int_of_string_opt s with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "field %s is not an integer: %S" what s)
        in
        let ( let* ) = Result.bind in
        let parsed =
          let* job_id = int "1 (job id)" job_id in
          let* submit = int "2 (submit)" submit in
          let* run_time = int "4 (run time)" run_time in
          let* processors = int "5 (processors)" processors in
          let user =
            (* field 12 = 7th element of [rest] *)
            match List.nth_opt rest 6 with
            | Some u -> Option.value (int_of_string_opt u) ~default:0
            | None -> 0
          in
          Ok { job_id; submit; run_time; processors; user }
        in
        match parsed with
        | Error reason -> `Malformed reason
        | Ok e ->
            (* Status-failed / cancelled entries in real archive traces carry
               run time 0 or -1; they are data, not corruption. *)
            if e.run_time <= 0 || e.processors < 1 || e.submit < 0 then
              `Filtered
            else `Entry e)
    | _ :: _ ->
        `Malformed
          (Printf.sprintf "expected >= 5 whitespace-separated fields, got %d"
             (List.length fields))
    | [] -> `Blank

let parse_line line =
  match classify_line line with
  | `Entry e -> Some e
  | `Blank | `Comment _ | `Filtered | `Malformed _ -> None

let parse_report ?(strict = false) s =
  let lines = String.split_on_char '\n' s in
  let header = ref [] and entries = ref [] in
  let comments = ref 0 and blanks = ref 0 and filtered = ref 0 in
  let malformed = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match classify_line line with
      | `Blank -> incr blanks
      | `Comment c ->
          incr comments;
          header := c :: !header
      | `Filtered -> incr filtered
      | `Entry e -> entries := e :: !entries
      | `Malformed reason ->
          if strict then raise (Parse_error { line = lineno; reason });
          malformed := (lineno, reason) :: !malformed)
    lines;
  let entries =
    List.stable_sort
      (fun a b -> Stdlib.compare a.submit b.submit)
      (List.rev !entries)
  in
  ( { header = List.rev !header; entries },
    {
      lines = List.length lines;
      entries = List.length entries;
      comments = !comments;
      blanks = !blanks;
      filtered = !filtered;
      malformed = List.rev !malformed;
    } )

let parse_string ?strict s = fst (parse_report ?strict s)

let pp_report ppf r =
  Format.fprintf ppf
    "%d lines: %d entries, %d comments, %d blank, %d filtered, %d malformed"
    r.lines r.entries r.comments r.blanks r.filtered
    (List.length r.malformed);
  List.iter
    (fun (lineno, reason) ->
      Format.fprintf ppf "@.  line %d: %s" lineno reason)
    r.malformed

let load ?strict path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ?strict s

let load_report ?strict path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_report ?strict s

let to_string (t : t) =
  let buf = Buffer.create 4096 in
  List.iter (fun h -> Buffer.add_string buf ("; " ^ h ^ "\n")) t.header;
  List.iter
    (fun e ->
      (* Unused fields written as -1, status as 1 (completed). *)
      Buffer.add_string buf
        (Printf.sprintf "%d %d -1 %d %d -1 -1 %d -1 -1 1 %d -1 -1 -1 -1 -1 -1\n"
           e.job_id e.submit e.run_time e.processors e.processors e.user))
    t.entries;
  Buffer.contents buf

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let to_jobs ?(org_of_user = fun _ -> 0) (t : t) =
  List.concat_map
    (fun e ->
      List.init e.processors (fun _ ->
          Core.Job.make
            ~org:(org_of_user e.user)
            ~index:0 ~user:e.user ~release:e.submit ~size:e.run_time ()))
    t.entries
