(** Descriptive statistics of a workload trace.

    Used to (a) sanity-check the synthetic models against their calibration
    targets (the tests assert the generated offered load, burstiness and
    user skew sit near the model parameters), and (b) inspect real SWF files
    before feeding them into the fairness experiments. *)

type t = {
  jobs : int;
  users : int;  (** distinct user ids *)
  span : int;  (** last submit time + 1 *)
  total_work : int;  (** Σ run time (sequentialized: × processors) *)
  mean_size : float;
  median_size : float;
  p95_size : float;
  max_size : int;
  mean_interarrival : float;  (** span / arrivals *)
  offered_load : float;  (** total_work / (machines · span) *)
  hourly_arrivals : int array;  (** 24 bins over the day cycle *)
  top_user_share : float;  (** job share of the most active user *)
}

val of_entries : machines:int -> Swf.entry list -> t
(** @raise Invalid_argument on an empty trace or non-positive machine
    count. *)

val of_instance : Core.Instance.t -> t
(** Analyze an assembled instance (users read from job metadata). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
