type endowment = Zipf of float | Uniform | Exact of int array

type spec = {
  model : Traces.model;
  norgs : int;
  machines : int;
  horizon : int;
  endowment : endowment;
  load : float option;
  users : int option;
}

let default ?(norgs = 5) ?(machines = 32) ?(horizon = 50_000)
    ?(endowment = Zipf 1.0) ?load ?users model =
  { model; norgs; machines; horizon; endowment; load; users }

let machine_split spec ~rng =
  match spec.endowment with
  | Exact counts ->
      if Array.length counts <> spec.norgs then
        invalid_arg "Scenario.machine_split: wrong number of counts";
      Array.copy counts
  | Uniform ->
      Fstats.Dist.split_integer ~total:spec.machines
        ~weights:(Array.make spec.norgs 1.)
  | Zipf s ->
      let weights = Fstats.Dist.zipf_weights ~n:spec.norgs ~s in
      let split = Fstats.Dist.split_integer ~total:spec.machines ~weights in
      (* Shuffle which organization gets which rank so that organization 0
         is not systematically the richest. *)
      let perm = Fstats.Rng.permutation rng spec.norgs in
      Array.init spec.norgs (fun u -> split.(perm.(u)))

let user_map spec ~rng =
  let users = Option.value spec.users ~default:spec.model.Traces.native_users in
  if users < 1 then invalid_arg "Scenario.user_map: no users";
  let map = Array.make users 0 in
  (* Deal a shuffled prefix round-robin so every organization has at least
     one user, then assign the rest uniformly. *)
  let order = Fstats.Rng.permutation rng users in
  Array.iteri
    (fun pos uid ->
      map.(uid) <-
        (if pos < spec.norgs then pos mod spec.norgs
         else Fstats.Rng.int rng spec.norgs))
    order;
  map

let instance_of_entries spec ~seed entries =
  let rng = Fstats.Rng.create ~seed in
  let machines = machine_split spec ~rng in
  let map = user_map spec ~rng in
  let org_of_user u = map.(u mod Array.length map) in
  let trace = { Swf.header = []; entries } in
  let jobs =
    Swf.to_jobs ~org_of_user trace
    |> List.filter (fun (j : Core.Job.t) -> j.Core.Job.release < spec.horizon)
  in
  Core.Instance.make ~machines ~jobs ~horizon:spec.horizon

let split_and_map spec ~seed =
  let rng = Fstats.Rng.create ~seed in
  let machines = machine_split spec ~rng in
  let map = user_map spec ~rng in
  (machines, map)

let submission_stream spec ~seed =
  let _, map = split_and_map spec ~seed in
  let org_of_user u = map.(u mod Array.length map) in
  let entries =
    Traces.stream spec.model ~seed:(seed lxor 0x7ace) ~machines:spec.machines
      ?load:spec.load ?users:spec.users ()
  in
  (* FIFO rank within the organization = arrival rank: entries come in
     submit order, which is exactly how the daemon assigns ranks to
     submissions and how {!Core.Instance.make} re-indexes a batch.  The
     rank counters ride in the unfold state (not a shared table) so the
     resulting sequence, like the underlying stream, replays identically
     when forced twice. *)
  let rec go entries next_index () =
    match entries () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons ((e : Swf.entry), rest) ->
        let org = org_of_user e.Swf.user in
        let index =
          match List.assoc_opt org next_index with None -> 0 | Some i -> i
        in
        let job =
          Core.Job.make ~org ~index ~user:e.Swf.user ~release:e.Swf.submit
            ~size:e.Swf.run_time ()
        in
        Seq.Cons (job, go rest ((org, index + 1) :: List.remove_assoc org next_index))
  in
  go entries []

let instance spec ~seed =
  let rng = Fstats.Rng.create ~seed:(seed lxor 0x7ace) in
  let entries =
    Traces.generate spec.model ~rng ~machines:spec.machines ?load:spec.load
      ?users:spec.users ~duration:spec.horizon ()
  in
  instance_of_entries spec ~seed entries


let window_instances spec ~seed ~trace ~count =
  let span =
    List.fold_left (fun acc (e : Swf.entry) -> Stdlib.max acc e.Swf.submit) 0 trace
  in
  if span < spec.horizon then
    invalid_arg "Scenario.window_instances: trace shorter than the horizon";
  let rng = Fstats.Rng.create ~seed:(seed lxor 0x3b9) in
  List.init count (fun i ->
      let start = Fstats.Rng.int rng (span - spec.horizon + 1) in
      let entries =
        List.filter_map
          (fun (e : Swf.entry) ->
            if e.Swf.submit >= start && e.Swf.submit < start + spec.horizon
            then Some { e with Swf.submit = e.Swf.submit - start }
            else None)
          trace
      in
      instance_of_entries spec ~seed:(seed + (31 * i)) entries)
