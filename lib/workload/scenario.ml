type endowment = Zipf of float | Uniform | Exact of int array

type spec = {
  model : Traces.model;
  norgs : int;
  machines : int;
  horizon : int;
  endowment : endowment;
  load : float option;
  users : int option;
}

let default ?(norgs = 5) ?(machines = 32) ?(horizon = 50_000)
    ?(endowment = Zipf 1.0) ?load ?users model =
  { model; norgs; machines; horizon; endowment; load; users }

let machine_split spec ~rng =
  match spec.endowment with
  | Exact counts ->
      if Array.length counts <> spec.norgs then
        invalid_arg "Scenario.machine_split: wrong number of counts";
      Array.copy counts
  | Uniform ->
      Fstats.Dist.split_integer ~total:spec.machines
        ~weights:(Array.make spec.norgs 1.)
  | Zipf s ->
      let weights = Fstats.Dist.zipf_weights ~n:spec.norgs ~s in
      let split = Fstats.Dist.split_integer ~total:spec.machines ~weights in
      (* Shuffle which organization gets which rank so that organization 0
         is not systematically the richest. *)
      let perm = Fstats.Rng.permutation rng spec.norgs in
      Array.init spec.norgs (fun u -> split.(perm.(u)))

let user_map spec ~rng =
  let users = Option.value spec.users ~default:spec.model.Traces.native_users in
  if users < 1 then invalid_arg "Scenario.user_map: no users";
  let map = Array.make users 0 in
  (* Deal a shuffled prefix round-robin so every organization has at least
     one user, then assign the rest uniformly. *)
  let order = Fstats.Rng.permutation rng users in
  Array.iteri
    (fun pos uid ->
      map.(uid) <-
        (if pos < spec.norgs then pos mod spec.norgs
         else Fstats.Rng.int rng spec.norgs))
    order;
  map

let instance_of_entries spec ~seed entries =
  let rng = Fstats.Rng.create ~seed in
  let machines = machine_split spec ~rng in
  let map = user_map spec ~rng in
  let org_of_user u = map.(u mod Array.length map) in
  let trace = { Swf.header = []; entries } in
  let jobs =
    Swf.to_jobs ~org_of_user trace
    |> List.filter (fun (j : Core.Job.t) -> j.Core.Job.release < spec.horizon)
  in
  Core.Instance.make ~machines ~jobs ~horizon:spec.horizon

let instance spec ~seed =
  let rng = Fstats.Rng.create ~seed:(seed lxor 0x7ace) in
  let entries =
    Traces.generate spec.model ~rng ~machines:spec.machines ?load:spec.load
      ?users:spec.users ~duration:spec.horizon ()
  in
  instance_of_entries spec ~seed entries


let window_instances spec ~seed ~trace ~count =
  let span =
    List.fold_left (fun acc (e : Swf.entry) -> Stdlib.max acc e.Swf.submit) 0 trace
  in
  if span < spec.horizon then
    invalid_arg "Scenario.window_instances: trace shorter than the horizon";
  let rng = Fstats.Rng.create ~seed:(seed lxor 0x3b9) in
  List.init count (fun i ->
      let start = Fstats.Rng.int rng (span - spec.horizon + 1) in
      let entries =
        List.filter_map
          (fun (e : Swf.entry) ->
            if e.Swf.submit >= start && e.Swf.submit < start + spec.horizon
            then Some { e with Swf.submit = e.Swf.submit - start }
            else None)
          trace
      in
      instance_of_entries spec ~seed:(seed + (31 * i)) entries)
