(** Synthetic models of the four Parallel Workload Archive traces used in
    Section 7 (LPC-EGEE, PIK-IPLEX, RICC, SHARCNET-Whale).

    The genuine archive files are not redistributable here (see DESIGN.md);
    each model reproduces the characteristics the fairness experiments
    depend on:

    - scale: processor and user counts of the original system;
    - burstiness: users submit in sessions — "users usually send their jobs
      in consecutive blocks" (Section 7.2) — with a day/night cycle and
      Zipf-skewed per-user activity;
    - service times: log-normal run-time mix, with per-trace median and
      spread;
    - contention: a target offered load ρ (expected released work per
      machine per unit of time), the main driver of how much an unfair
      policy can hurt.

    Generation is deterministic given the RNG, and the offered load is
    recomputed for whatever (possibly scaled-down) machine pool the caller
    requests, so a 32-processor reduction of RICC is contended like RICC
    rather than starved. *)

type model = {
  name : string;
  description : string;
  native_machines : int;  (** processors in the original trace *)
  native_users : int;
  load : float;  (** target offered load ρ (work per machine-second) *)
  duration_mu : float;  (** log-normal location of run times (seconds) *)
  duration_sigma : float;
  jobs_per_session : float;  (** mean batch length of a user session *)
  session_gap : float;  (** mean seconds between submissions in a session *)
  user_skew : float;  (** Zipf exponent of per-user activity *)
  day_profile : float array;  (** 24 relative hourly arrival weights *)
}

val lpc_egee : model
(** 70 processors, 56 users; small cluster, moderate load, hour-scale
    jobs. *)

val pik_iplex : model
(** 2560 processors, 225 users; lightly loaded large pool (the paper's
    least-unfair workload). *)

val ricc : model
(** 8192 processors, 176 users; heavily loaded (the paper's most extreme
    unfairness values). *)

val sharcnet_whale : model
(** 3072 processors, 154 users; mid-range load. *)

val all : model list
val by_name : string -> model option

val mean_job_seconds : model -> float
(** E[run time] of the log-normal mix. *)

val generate :
  model ->
  rng:Fstats.Rng.t ->
  machines:int ->
  ?load:float ->
  ?users:int ->
  duration:int ->
  unit ->
  Swf.entry list
(** A synthetic trace window of [duration] seconds for a pool of [machines]
    processors, sorted by submit time.  [load] overrides the model's target
    ρ; [users] overrides the population (default: the native count). *)

val stream :
  model ->
  seed:int ->
  machines:int ->
  ?load:float ->
  ?users:int ->
  unit ->
  Swf.entry Seq.t
(** An {e unbounded} submission stream with the same session structure as
    {!generate}, for feeding a live scheduler daemon past any horizon:
    submit times are non-decreasing, job ids count up from 1, and entries
    are produced lazily one day-length block at a time.  Each block's
    sessions are drawn from an RNG seeded by [(seed, block)] alone, so the
    stream is deterministic in [seed] and {b prefix-consistent}: the first
    [N] entries do not depend on how far the stream is forced, and forcing
    it twice replays identical entries (the underlying unfold is pure).
    @raise Invalid_argument if [machines < 1]. *)
