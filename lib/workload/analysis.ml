type t = {
  jobs : int;
  users : int;
  span : int;
  total_work : int;
  mean_size : float;
  median_size : float;
  p95_size : float;
  max_size : int;
  mean_interarrival : float;
  offered_load : float;
  hourly_arrivals : int array;
  top_user_share : float;
}

let analyze ~machines ~rows =
  (* rows: (submit, run_time, weight, user); weight = processor count so a
     parallel entry counts its sequentialized work. *)
  if rows = [] then invalid_arg "Analysis: empty trace";
  if machines < 1 then invalid_arg "Analysis: machines < 1";
  let jobs = List.length rows in
  let span =
    1 + List.fold_left (fun acc (s, _, _, _) -> Stdlib.max acc s) 0 rows
  in
  let total_work =
    List.fold_left (fun acc (_, rt, w, _) -> acc + (rt * w)) 0 rows
  in
  let sizes = List.map (fun (_, rt, _, _) -> float_of_int rt) rows in
  let user_counts = Hashtbl.create 64 in
  List.iter
    (fun (_, _, _, u) ->
      Hashtbl.replace user_counts u
        (1 + Option.value (Hashtbl.find_opt user_counts u) ~default:0))
    rows;
  let top_user =
    Hashtbl.fold (fun _ n acc -> Stdlib.max n acc) user_counts 0
  in
  let hourly = Array.make 24 0 in
  List.iter
    (fun (s, _, _, _) ->
      let hour = s mod 86_400 / 3_600 in
      hourly.(hour) <- hourly.(hour) + 1)
    rows;
  {
    jobs;
    users = Hashtbl.length user_counts;
    span;
    total_work;
    mean_size =
      List.fold_left ( +. ) 0. sizes /. float_of_int jobs;
    median_size = Fstats.Summary.median sizes;
    p95_size = Fstats.Summary.percentile sizes ~p:95.;
    max_size =
      List.fold_left (fun acc (_, rt, _, _) -> Stdlib.max acc rt) 0 rows;
    mean_interarrival = float_of_int span /. float_of_int jobs;
    offered_load = float_of_int total_work /. float_of_int (machines * span);
    hourly_arrivals = hourly;
    top_user_share = float_of_int top_user /. float_of_int jobs;
  }

let of_entries ~machines entries =
  analyze ~machines
    ~rows:
      (List.map
         (fun (e : Swf.entry) ->
           (e.Swf.submit, e.Swf.run_time, e.Swf.processors, e.Swf.user))
         entries)

let of_instance instance =
  analyze
    ~machines:(Core.Instance.total_machines instance)
    ~rows:
      (Array.to_list instance.Core.Instance.jobs
      |> List.map (fun (j : Core.Job.t) ->
             (j.Core.Job.release, j.Core.Job.size, 1, j.Core.Job.user)))

let pp ppf t =
  Format.fprintf ppf "jobs:              %d@." t.jobs;
  Format.fprintf ppf "users:             %d@." t.users;
  Format.fprintf ppf "span:              %d s@." t.span;
  Format.fprintf ppf "total work:        %d machine-seconds@." t.total_work;
  Format.fprintf ppf "job size:          mean %.0f s, median %.0f s, p95 %.0f s, max %d s@."
    t.mean_size t.median_size t.p95_size t.max_size;
  Format.fprintf ppf "mean interarrival: %.1f s@." t.mean_interarrival;
  Format.fprintf ppf "offered load:      %.3f@." t.offered_load;
  Format.fprintf ppf "top user share:    %.1f%%@." (100. *. t.top_user_share);
  Format.fprintf ppf "hourly arrivals:   ";
  let peak =
    Stdlib.max 1 (Array.fold_left Stdlib.max 0 t.hourly_arrivals)
  in
  Array.iter
    (fun n ->
      let level = n * 7 / peak in
      Format.fprintf ppf "%c"
        (match level with
        | 0 -> if n = 0 then '.' else '_'
        | 1 | 2 -> ':'
        | 3 | 4 -> '+'
        | 5 | 6 -> '*'
        | _ -> '#'))
    t.hourly_arrivals;
  Format.fprintf ppf "  (midnight → 23h)@."
