(** Turning a trace (synthetic or parsed SWF) into a multi-organization
    scheduling instance, the way Section 7.2 does:

    - user identifiers are distributed uniformly at random among the
      organizations, and each job goes to its user's organization;
    - the machine pool is split between organizations following a Zipf or a
      uniform endowment;
    - a horizon closes the evaluation window. *)

type endowment =
  | Zipf of float  (** weights ∝ 1/(rank+1)^s; rank order shuffled *)
  | Uniform
  | Exact of int array  (** explicit machine counts *)

type spec = {
  model : Traces.model;
  norgs : int;
  machines : int;  (** total pool size (scaled-down stand-in for the trace's native pool) *)
  horizon : int;
  endowment : endowment;
  load : float option;  (** override the model's offered load *)
  users : int option;  (** override the model's user count *)
}

val default :
  ?norgs:int -> ?machines:int -> ?horizon:int -> ?endowment:endowment ->
  ?load:float -> ?users:int -> Traces.model -> spec
(** 5 organizations (the paper's default), 32 machines, horizon 5·10⁴,
    Zipf(1.0) endowment. *)

val machine_split : spec -> rng:Fstats.Rng.t -> int array
(** Per-organization machine counts (each >= 1). *)

val user_map : spec -> rng:Fstats.Rng.t -> int array
(** user id -> organization, uniform assignment; every organization is
    guaranteed at least one user when [users >= norgs] (first [norgs] users
    are dealt round-robin after shuffling). *)

val instance : spec -> seed:int -> Core.Instance.t
(** Generate the synthetic trace window and assemble the instance.
    Deterministic in [seed]. *)

val split_and_map : spec -> seed:int -> int array * int array
(** The (machine endowment, user → organization map) pair drawn exactly as
    {!instance} and {!instance_of_entries} draw it from [seed] — the shared
    derivation that lets a daemon ([fairsched serve]) and a load generator
    ([fairsched loadgen]) configured from the same spec and seed agree on
    the cluster shape and on which organization owns each user's jobs. *)

val submission_stream : spec -> seed:int -> Core.Job.t Seq.t
(** The unbounded, prefix-consistent job stream ({!Traces.stream}) of this
    spec, with organizations assigned through {!split_and_map}'s user map
    and FIFO ranks assigned in arrival order.  Deterministic in [seed] and
    replayable (pure unfold); release times are non-decreasing, so entries
    can be fed to a live daemon as-is. *)

val instance_of_entries :
  spec -> seed:int -> Swf.entry list -> Core.Instance.t
(** Same partitioning applied to an existing trace (e.g. a real SWF file);
    entries at or after the horizon are dropped. *)

val window_instances :
  spec -> seed:int -> trace:Swf.entry list -> count:int -> Core.Instance.t list
(** The paper's sampling protocol (§7.3): draw [count] random windows of
    length [spec.horizon] from a long trace, shift submit times to 0, and
    assemble one instance per window (fresh machine split and user map per
    window).  @raise Invalid_argument if the trace is shorter than one
    window. *)
