(** Per-organization counters that reset whenever the clock advances.

    Policies use this to count "jobs started in the current instant" — the
    pending [+1] of the selection convention (DESIGN.md): within one time
    step, each start bumps its owner so a single organization does not
    capture every free machine at once. *)

type t

val create : norgs:int -> t

val bump : t -> time:int -> org:int -> unit
(** Increment the counter of [org] at [time]; counters of every
    organization reset implicitly when [time] differs from the last call. *)

val get : t -> time:int -> org:int -> int
(** Current-instant count (0 if the clock moved since the last bump). *)
