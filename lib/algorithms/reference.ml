(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core
module Coalition = Shapley.Coalition

type concept = Shapley_value | Banzhaf_value

(* The REF advancement engine.

   Three optimizations over the straightforward Fig. 1 transcription (see
   DESIGN.md, "Performance engineering"):

   - a global event heap of (next-event-time, mask) entries replaces the
     O(2^k) fold that recomputed the earliest pending sub-coalition event
     at every instant.  Entries are lower bounds, lazily re-keyed on pop;
     only sub-coalitions that actually have an event at an instant are
     stepped (a coalition cannot start a job between its own events: its
     machines stay saturated-or-drained until a completion or release of
     its own).

   - per-instant work is staged and domain-parallel: arrivals/completions
     are independent across sims, and the scheduling round of a coalition
     only reads the (frozen-within-the-instant) values of strictly smaller
     coalitions, so each size class s = 1..k-1 is an independent parallel
     stage (Fig. 1's [for s <- 1 to ||C||] loop).  Stages run on the
     persistent pool in Core.Domain_pool; with [workers = 1] the same
     stages run inline and the engine is strictly sequential.

   - the inner 3^k Shapley sum is allocation-free: weight tables are
     hoisted into per-size float arrays at construction, popcounts come
     from a precomputed table, and the subset walk runs over a preflattened
     int array (for k <= 12; an inline submask walk beyond) instead of
     closure-based iterators.

   Outputs are bit-identical across worker counts: parallelism only spans
   sims that do not read each other's mutable state within an instant, and
   every float accumulates in the same order as the sequential engine. *)

type internals = {
  concept : concept;
  k : int;
  workers : int;
  vc_on : bool;  (* cross-instant coalition-value cache enabled *)
  federated : bool;
      (* endowment churn in play (Federation.Mode at construction): sims
         exist for every mask, events are broadcast, and the top-level value
         is computed over the live consortium instead of the grand mask *)
  mutable consortium : Coalition.t;
      (* the currently active organizations k(t); equals [grand] until a
         Leave arrives.  Only mutated by the on_endow handler (driver
         domain), only read between instants — no synchronization needed. *)
  grand : Coalition.t;
  sims : Coalition_sim.t option array;
      (* indexed by mask; None for the grand coalition (the driver's own
         cluster plays that role), the empty mask, and — in static mode —
         machine-less coalitions (their value is identically 0: nothing
         ever runs).  Federated mode keeps sims for every proper mask: a
         lend can endow a machine-less coalition at any instant. *)
  all_masks : int array;  (* simulated masks, ascending *)
  by_size : int array array;
      (* by_size.(s-1): simulated masks of size s, ascending — grouped at
         construction so the staged loops iterate without list allocation *)
  size_tbl : int array;  (* popcount per mask *)
  weights : float array array;
      (* weights.(n).(s-1): marginal weight of a size-s subset inside a
         size-n coalition — Shapley (s-1)!(n-s)!/n! or Banzhaf 1/2^(n-1) *)
  subsets_flat : int array array;
      (* per mask: its non-empty subsets in canonical walk order (the mask
         itself first, then the decreasing submask walk); [||] means "walk
         inline" (k > 12, where 3^k ints would not be worth the memory) *)
  v2_val : int array;
  v2_stamp : int array;  (* instant at which v2_val was computed *)
  vc_a : int array;  (* cached coalition-value polynomial 2·v(t) = a·t²+b·t+c *)
  vc_b : int array;
  vc_c : int array;
  vc_epoch : int array;
      (* Coalition_sim epoch at which the polynomial was extracted; min_int
         = never.  Unchanged epoch ⇒ the sim had no event since, so the
         cached coefficients are still exact (DESIGN.md §13). *)
  phi2_val : float array array;
      (* preallocated per simulated mask (and the grand coalition) at
         construction and filled in place — no per-instant allocation *)
  phi2_stamp : int array;  (* instant at which phi2_val was computed *)
  m_owner : int array;  (* global machine id -> owning organization *)
  heap : int Heap.t;  (* global event queue: prio = time, value = mask *)
  heap_key : int array;
      (* smallest key of a live heap entry per mask (max_int if unknown):
         lets releases skip pushing when an earlier entry already covers
         the sim, keeping the heap near one entry per active mask *)
  gathered : int array;  (* instant at which the mask was last gathered *)
  active_buf : int array;  (* scratch: masks with an event at the instant *)
  stage_buf : int array;  (* scratch: the size-class slice of active_buf *)
  pending : Instant.t;  (* grand-coalition pending starts *)
  own_stats : Kernel.Stats.t;
      (* engine-level counters not owned by any one sim's kernel: the
         global event-heap pops *)
}

let create_internals ?(concept = Shapley_value) ?workers ?max_restarts
    ?(value_cache = true) instance =
  let workers =
    match workers with
    | Some w -> Stdlib.max 1 w
    | None -> Domain_pool.default_workers ()
  in
  let k = Instance.organizations instance in
  if k > 16 then
    invalid_arg "Reference: more than 16 organizations is impractical (2^k \
                 schedules)";
  let federated = Federation.Mode.enabled () in
  let grand = Coalition.grand ~players:k in
  let nmasks = grand + 1 in
  let size_tbl = Array.make nmasks 0 in
  for mask = 1 to nmasks - 1 do
    size_tbl.(mask) <- size_tbl.(mask lsr 1) + (mask land 1)
  done;
  let has_machines mask =
    Coalition.fold (fun u acc -> acc + instance.Instance.machines.(u)) mask 0
    > 0
  in
  let sims = Array.make nmasks None in
  let n_sims = ref 0 in
  for mask = 1 to grand - 1 do
    if federated || has_machines mask then begin
      sims.(mask) <-
        Some
          (Coalition_sim.create ?max_restarts ~federated ~instance
             ~members:mask ());
      incr n_sims
    end
  done;
  let all_masks = Array.make !n_sims 0 in
  let counts = Array.make k 0 in
  let pos = ref 0 in
  for mask = 1 to grand - 1 do
    if sims.(mask) <> None then begin
      all_masks.(!pos) <- mask;
      incr pos;
      counts.(size_tbl.(mask) - 1) <- counts.(size_tbl.(mask) - 1) + 1
    end
  done;
  let by_size = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make k 0 in
  Array.iter
    (fun mask ->
      let s = size_tbl.(mask) - 1 in
      by_size.(s).(fill.(s)) <- mask;
      fill.(s) <- fill.(s) + 1)
    all_masks;
  let weights = Array.make (k + 1) [||] in
  for n = 1 to k do
    weights.(n) <-
      Array.init n (fun s ->
          match concept with
          | Shapley_value ->
              Numeric.Combinatorics.shapley_weight_float ~players:n ~subset:s
          | Banzhaf_value -> 1. /. float_of_int (1 lsl (n - 1)))
  done;
  let subsets_flat = Array.make nmasks [||] in
  if k <= 12 then begin
    (* 3^k - 2^k ints in total: ~4 MB at k = 12.  Canonical order: the mask
       itself, then the decreasing submask walk, empty set excluded. *)
    let flatten mask =
      let arr = Array.make ((1 lsl size_tbl.(mask)) - 1) 0 in
      let idx = ref 0 in
      let sub = ref mask in
      while !sub <> 0 do
        arr.(!idx) <- !sub;
        incr idx;
        sub := (!sub - 1) land mask
      done;
      arr
    in
    Array.iter (fun mask -> subsets_flat.(mask) <- flatten mask) all_masks;
    subsets_flat.(grand) <- flatten grand
  end;
  (* Grand-coalition machine layout: org-contiguous ascending (the driver's
     convention); used to route machine faults to the affected masks. *)
  let m_owner =
    Array.concat
      (List.init k (fun u ->
           Array.make instance.Instance.machines.(u) u))
  in
  let phi2_val = Array.make nmasks [||] in
  Array.iter (fun mask -> phi2_val.(mask) <- Array.make k 0.) all_masks;
  phi2_val.(grand) <- Array.make k 0.;
  {
    concept;
    k;
    workers;
    vc_on = value_cache;
    federated;
    consortium = grand;
    grand;
    sims;
    all_masks;
    by_size;
    size_tbl;
    weights;
    subsets_flat;
    m_owner;
    v2_val = Array.make nmasks 0;
    v2_stamp = Array.make nmasks min_int;
    vc_a = Array.make nmasks 0;
    vc_b = Array.make nmasks 0;
    vc_c = Array.make nmasks 0;
    vc_epoch = Array.make nmasks min_int;
    phi2_val;
    phi2_stamp = Array.make nmasks min_int;
    heap = Heap.create ();
    heap_key = Array.make nmasks max_int;
    gathered = Array.make nmasks min_int;
    active_buf = Array.make (Stdlib.max 1 !n_sims) 0;
    stage_buf = Array.make (Stdlib.max 1 !n_sims) 0;
    pending = Instant.create ~norgs:k;
    own_stats = Kernel.Stats.create ();
  }

(* Cross-instant coalition-value cache: between two events of a sim its
   2·v(t) is an exact integer polynomial a·t² + b·t + c (Tracker.coeffs);
   re-extracting the coefficients is only needed when the sim's epoch moved.
   Hit = polynomial evaluation, miss = one fold over the members' trackers —
   either way bit-identical to Coalition_sim.value_scaled. *)
let m_vcache_hits = Obs.Metrics.counter "ref.vcache_hits"
let m_vcache_misses = Obs.Metrics.counter "ref.vcache_misses"

let compute_v2 st sim ~mask ~time =
  if not st.vc_on then Coalition_sim.value_scaled sim ~at:time
  else begin
    let e = Coalition_sim.epoch sim in
    if st.vc_epoch.(mask) = e then Obs.Metrics.incr m_vcache_hits
    else begin
      Obs.Metrics.incr m_vcache_misses;
      let a, b, c = Coalition_sim.value_coeffs sim in
      st.vc_a.(mask) <- a;
      st.vc_b.(mask) <- b;
      st.vc_c.(mask) <- c;
      st.vc_epoch.(mask) <- e
    end;
    ((st.vc_a.(mask) * time) + st.vc_b.(mask)) * time + st.vc_c.(mask)
  end

(* 2·v(mask) at [time] for simulated masks; machine-less or empty masks are
   identically 0.  During a parallel scheduling stage every simulated mask
   has already been stamped at [time] (see [process_instant]), so this is a
   pure read there; the lazy write path only runs on the owning domain. *)
let v2_sim st ~mask ~time =
  if mask = Coalition.empty then 0
  else
    match st.sims.(mask) with
    | None -> 0
    | Some sim ->
        if st.v2_stamp.(mask) <> time then begin
          st.v2_val.(mask) <- compute_v2 st sim ~mask ~time;
          st.v2_stamp.(mask) <- time
        end;
        st.v2_val.(mask)

(* Shapley/Banzhaf contributions (×2) of the members of [mask], from the
   current sub-coalition values; [v2_top] supplies v2 of [mask] itself (for
   the top-level call it comes from the driver's trackers, not a sim).
   [slot] picks the memo array; it differs from [mask] only for the
   federated top-level computation, which runs over the live consortium but
   must not clobber that mask's own sim-side memo (their v2_top differ: the
   real cluster's value vs the what-if schedule's).
   Allocation-free inner loop: one float array out, no closures per subset,
   weights and popcounts from tables. *)
let phi2_of st ~slot ~mask ~time ~v2_top =
  (* Preallocated per-mask scratch (construction time), zeroed and refilled
     in place: the inner loop allocates nothing. *)
  let phi = st.phi2_val.(slot) in
  Array.fill phi 0 st.k 0.;
  let w_tbl = st.weights.(st.size_tbl.(mask)) in
  let add_subset sub =
    let w = w_tbl.(st.size_tbl.(sub) - 1) in
    let v_sub = if sub = mask then v2_top else v2_sim st ~mask:sub ~time in
    (* members of [sub] ascending, like Coalition.iter_members *)
    let rem = ref sub and u = ref 0 in
    while !rem <> 0 do
      if !rem land 1 <> 0 then begin
        let v_without = v2_sim st ~mask:(sub land lnot (1 lsl !u)) ~time in
        phi.(!u) <- phi.(!u) +. (w *. float_of_int (v_sub - v_without))
      end;
      rem := !rem lsr 1;
      incr u
    done
  in
  let subs = st.subsets_flat.(mask) in
  if Array.length subs > 0 then
    for i = 0 to Array.length subs - 1 do
      add_subset subs.(i)
    done
  else begin
    (* k > 12 fallback: same walk, same order, no table *)
    let sub = ref mask in
    while !sub <> 0 do
      add_subset !sub;
      sub := (!sub - 1) land mask
    done
  end;
  (* The Banzhaf value is not efficient; normalize the members' shares to
     the coalition value so the (φ − ψ) comparisons stay on one scale. *)
  (match st.concept with
  | Shapley_value -> ()
  | Banzhaf_value ->
      let total = Coalition.fold (fun u acc -> acc +. phi.(u)) mask 0. in
      if total <> 0. then begin
        let factor = float_of_int v2_top /. total in
        Coalition.iter_members (fun u -> phi.(u) <- phi.(u) *. factor) mask
      end)

(* φ2 arrays are memoized per (mask, instant): coalition values do not
   change within an instant (a job started now has no executed part yet).
   Each slot is only ever touched by the domain scheduling that mask, so
   the per-mask arrays need no locking. *)
let phi2_cached st ?slot ~mask ~time ~v2_top () =
  let slot = Option.value slot ~default:mask in
  if st.phi2_stamp.(slot) <> time then begin
    phi2_of st ~slot ~mask ~time ~v2_top;
    st.phi2_stamp.(slot) <- time
  end;
  st.phi2_val.(slot)

(* Selection rule inside a simulated coalition: argmax (φ − ψ) among waiting
   members, ψ evaluated with the pending (+1 per started part) convention. *)
let select_in_sim st ~mask sim ~time =
  let phi2 = phi2_cached st ~mask ~time ~v2_top:(v2_sim st ~mask ~time) () in
  let score u =
    let psi2 =
      Coalition_sim.utility_scaled sim ~org:u ~at:time
      + (2 * Instant.get (Coalition_sim.pending sim) ~time ~org:u)
    in
    phi2.(u) -. float_of_int psi2
  in
  match Coalition_sim.waiting_orgs sim with
  | [] -> invalid_arg "reference: nothing waiting in sub-coalition"
  | first :: rest ->
      List.fold_left
        (fun best u -> if score u > score best then u else best)
        first rest

(* --- the global event heap ---------------------------------------------- *)

(* Invariant: every sim with a pending event at time t has a live heap entry
   with key <= t.  Keys may undershoot (a release pushed while an earlier
   completion was pending keeps both entries); stale entries are re-keyed or
   dropped when popped.  [heap_key] tracks the smallest live key per mask so
   releases can skip pushing when already covered. *)
(* Process-wide heap-op counters, distinct from the per-run
   [Kernel.Stats.heap_pops]: these aggregate across runs and domains and
   surface through [Obs.Metrics] when `--metrics` is on. *)
let m_heap_pushes = Obs.Metrics.counter "ref.heap_pushes"
let m_heap_pops = Obs.Metrics.counter "ref.heap_pops"

let heap_push st ~time mask =
  if time < st.heap_key.(mask) then begin
    Obs.Metrics.incr m_heap_pushes;
    Heap.add st.heap ~prio:time mask;
    st.heap_key.(mask) <- time
  end

let note_popped st ~key mask =
  if st.heap_key.(mask) = key then st.heap_key.(mask) <- max_int

let reschedule st mask =
  match st.sims.(mask) with
  | None -> ()
  | Some sim -> (
      match Coalition_sim.next_event sim with
      | Some t -> heap_push st ~time:t mask
      | None -> ())

(* Pop every entry due at [tau] and collect the masks that genuinely have an
   event there into [active_buf] (deduplicated via the [gathered] stamps);
   stale entries are dropped or re-keyed.  Returns the number gathered. *)
let gather st ~tau =
  let count = ref 0 in
  let rec go () =
    match Heap.pop_le st.heap tau with
    | None -> ()
    | Some (key, mask) ->
        st.own_stats.Kernel.Stats.heap_pops <-
          st.own_stats.Kernel.Stats.heap_pops + 1;
        Obs.Metrics.incr m_heap_pops;
        note_popped st ~key mask;
        (match st.sims.(mask) with
        | None -> ()
        | Some sim ->
            if st.gathered.(mask) <> tau then (
              match Coalition_sim.next_event sim with
              | None -> ()
              | Some t when t > tau -> heap_push st ~time:t mask
              | Some _ ->
                  st.gathered.(mask) <- tau;
                  st.active_buf.(!count) <- mask;
                  incr count));
        go ()
  in
  go ();
  !count

(* --- per-instant processing --------------------------------------------- *)

(* Dispatch cutoffs (see DESIGN.md §8/§13): stages at or below the cutoff
   run inline on the calling domain — waking a pool helper costs more than
   the stage itself.  Scheduling-round tasks are heavyweight (a 3^s subset
   walk each) so even a handful are worth dispatching; event-step tasks are
   moderate; refresh tasks are one cache lookup + polynomial evaluation, so
   only large refresh sweeps leave the calling domain, claimed in chunks
   rather than one by one. *)
let round_cutoff = 2
let step_cutoff = 7
let refresh_cutoff = 48

let process_instant st ~tau ~n_active =
  let active = st.active_buf in
  let par = st.workers > 1 in
  let iter ~chunk ~cutoff f n =
    if par then
      Domain_pool.parallel_chunks ~workers:st.workers ?chunk ~cutoff f n
    else
      for i = 0 to n - 1 do
        f i
      done
  in
  (* Stage 1: arrivals and completions — independent across sims. *)
  let step i =
    match st.sims.(active.(i)) with
    | Some sim -> Coalition_sim.step_releases_and_completions sim ~time:tau
    | None -> ()
  in
  iter ~chunk:(Some 1) ~cutoff:step_cutoff step n_active;
  let need_round = ref false in
  for i = 0 to n_active - 1 do
    match st.sims.(active.(i)) with
    | Some sim ->
        if Coalition_sim.free_count sim > 0 && Coalition_sim.has_waiting sim
        then need_round := true
    | None -> ()
  done;
  if !need_round then begin
    (* Stage 2 (parallel engine only): pin 2·v of every sub-coalition at
       [tau] before any round runs, so the parallel rounds below only read
       the v2 cache.  Values are frozen within the instant either way; the
       sequential engine keeps the lazy per-read path. *)
    if par then begin
      let refresh i =
        let mask = st.all_masks.(i) in
        if st.v2_stamp.(mask) <> tau then begin
          (match st.sims.(mask) with
          | Some sim -> st.v2_val.(mask) <- compute_v2 st sim ~mask ~time:tau
          | None -> ());
          st.v2_stamp.(mask) <- tau
        end
      in
      let run_refresh () =
        iter ~chunk:None ~cutoff:refresh_cutoff refresh
          (Array.length st.all_masks)
      in
      if Obs.Trace.enabled () then
        Obs.Trace.span ~cat:"ref" "ref.refresh" run_refresh
      else run_refresh ()
    end;
    (* Stage 3: scheduling rounds, size-ascending (Fig. 1's [for s <- 1 to
       ||C||]); masks of equal size never read each other's state, so each
       size class is one parallel stage.  Chunk size 1: round tasks are few
       and uneven (the 3^s walk grows with s), so per-task claiming load
       balances better than contiguous ranges. *)
    for s = 1 to st.k - 1 do
      let stage = st.stage_buf in
      let m = ref 0 in
      for i = 0 to n_active - 1 do
        let mask = active.(i) in
        if st.size_tbl.(mask) = s then begin
          stage.(!m) <- mask;
          incr m
        end
      done;
      if !m > 0 then begin
        let run i =
          let mask = stage.(i) in
          match st.sims.(mask) with
          | Some sim ->
              Coalition_sim.schedule_round sim ~time:tau
                ~select:(fun sim ~time -> select_in_sim st ~mask sim ~time)
          | None -> ()
        in
        let run_stage () = iter ~chunk:(Some 1) ~cutoff:round_cutoff run !m in
        if Obs.Trace.enabled () then
          Obs.Trace.span ~cat:"ref"
            ("ref.stage.s" ^ string_of_int s)
            run_stage
        else run_stage ()
      end
    done
  end;
  (* Stage 4: re-key the processed sims. *)
  for i = 0 to n_active - 1 do
    reschedule st active.(i)
  done

(* Advance every simulated sub-coalition through all events at instants
   <= [time], in global event order.  The heap minimum is a lower bound on
   the true next instant: a gather that comes up empty has corrected the
   stale keys, so the loop makes progress either way. *)
let advance_all st ~time =
  let rec loop () =
    match Heap.min_prio st.heap with
    | Some t0 when t0 <= time ->
        let n_active = gather st ~tau:t0 in
        if n_active > 0 then process_instant st ~tau:t0 ~n_active;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let grand_v2 (view : Policy.view) ~time =
  Array.fold_left
    (fun acc tracker -> acc + Utility.Tracker.value_scaled tracker ~at:time)
    0 view.Policy.trackers

(* The top of the recursion: in static mode the grand coalition, in
   federated mode the live consortium k(t) — suspended organizations drop
   out of the player set, so both the characteristic values and the weight
   tables re-derive from the active org count.  Its value comes from the
   real cluster's trackers (Fig. 1 uses the actual schedule for the
   deciding coalition), restricted to the active members. *)
let top_v2 st (view : Policy.view) ~time =
  if st.consortium = st.grand then grand_v2 view ~time
  else
    Coalition.fold
      (fun u acc ->
        acc + Utility.Tracker.value_scaled view.Policy.trackers.(u) ~at:time)
      st.consortium 0

let top_phi2 st ~view ~time =
  phi2_cached st ~slot:st.grand ~mask:st.consortium ~time
    ~v2_top:(top_v2 st view ~time)
    ()

let contributions_scaled st ~view ~time =
  advance_all st ~time;
  top_phi2 st ~view ~time

let coalition_value_scaled st ~mask ~time =
  advance_all st ~time;
  v2_sim st ~mask ~time

let make_with_internals ?(name = "ref") ?concept ?workers ?max_restarts
    ?value_cache () instance ~rng:_ =
  let st =
    create_internals ?concept ?workers ?max_restarts ?value_cache instance
  in
  let policy =
    Policy.make ~name
      ~on_release:(fun _view ~time:_ job ->
        let org = job.Job.org in
        Array.iter
          (fun mask ->
            if Coalition.mem mask org then
              match st.sims.(mask) with
              | Some sim ->
                  Coalition_sim.add_release sim job;
                  heap_push st
                    ~time:
                      (Stdlib.max job.Job.release (Coalition_sim.now sim))
                    mask
              | None -> ())
          st.all_masks)
      ~on_fault:(fun _view ~time event ->
        (* Mirror the capacity change into every what-if schedule whose
           coalition includes the machine's owner; others are unaffected
           (they never had the machine).  Under endowment churn the owner
           is time-varying and differs per sim, so the static home map
           cannot route: broadcast, and let each sim's own ownership state
           decide whether the machine is visible. *)
        let owner = st.m_owner.(Faults.Event.machine event) in
        Array.iter
          (fun mask ->
            if st.federated || Coalition.mem mask owner then
              match st.sims.(mask) with
              | Some sim ->
                  Coalition_sim.add_fault sim { Faults.Event.time; event };
                  heap_push st ~time:(Stdlib.max time (Coalition_sim.now sim))
                    mask
              | None -> ())
          st.all_masks)
      ~on_endow:(fun _view ~time event ->
        if st.federated then begin
          (match event with
          | Federation.Event.Join { org; _ } ->
              st.consortium <- Coalition.add st.consortium org
          | Federation.Event.Leave { org } ->
              st.consortium <- Coalition.remove st.consortium org
          | Federation.Event.Lend _ | Federation.Event.Reclaim _ -> ());
          (* The event can retire machines and kill their jobs at this very
             instant, and it may change the consortium mask the top-level φ
             walks over; drop the per-instant memo stamps so every value is
             re-derived after the sims replay the event.  Recomputation is
             bit-exact (the epoch-keyed polynomial cache still short-cuts
             unchanged sims), so this only costs time, and endowments are
             rare next to completions. *)
          Array.fill st.v2_stamp 0 (Array.length st.v2_stamp) min_int;
          Array.fill st.phi2_stamp 0 (Array.length st.phi2_stamp) min_int;
          Array.iter
            (fun mask ->
              match st.sims.(mask) with
              | Some sim ->
                  Coalition_sim.add_endow sim { Federation.Event.time; event };
                  heap_push st ~time:(Stdlib.max time (Coalition_sim.now sim))
                    mask
              | None -> ())
            st.all_masks
        end)
      ~on_start:(fun _view ~time p ->
        Instant.bump st.pending ~time ~org:p.Schedule.job.Job.org)
      ~stats:(fun () ->
        Kernel.Stats.total
          (Array.fold_left
             (fun acc mask ->
               match st.sims.(mask) with
               | Some sim -> Coalition_sim.stats sim :: acc
               | None -> acc)
             [ st.own_stats ] st.all_masks))
      ~select:(fun view ~time ->
        advance_all st ~time;
        let phi2 = top_phi2 st ~view ~time in
        let score u =
          let psi2 =
            Policy.utility_plus_pending_scaled view ~pending:st.pending
              ~org:u ~time
          in
          phi2.(u) -. float_of_int psi2
        in
        match Cluster.waiting_orgs view.Policy.cluster with
        | [] -> invalid_arg "reference: nothing waiting"
        | first :: rest ->
            List.fold_left
              (fun best u -> if score u > score best then u else best)
              first rest)
      ()
  in
  (policy, st)

let make ?name ?concept ?workers ?max_restarts ?value_cache () instance ~rng =
  fst
    (make_with_internals ?name ?concept ?workers ?max_restarts ?value_cache ()
       instance ~rng)

let reference instance ~rng = make () instance ~rng

let banzhaf instance ~rng =
  fst
    (make_with_internals ~name:"ref-banzhaf" ~concept:Banzhaf_value ()
       instance ~rng)
