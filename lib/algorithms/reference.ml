(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core
module Coalition = Shapley.Coalition

type concept = Shapley_value | Banzhaf_value

type internals = {
  concept : concept;
  k : int;
  grand : Coalition.t;
  sims : Coalition_sim.t option array;
      (* indexed by mask; None for the grand coalition (the driver's own
         cluster plays that role), the empty mask, and machine-less
         coalitions (their value is identically 0: nothing ever runs). *)
  by_size : Coalition.t list;
      (* proper non-empty simulated masks, size-ascending *)
  v2_val : int array;
  v2_stamp : int array;  (* instant at which v2_val was computed *)
  phi2_cache : (Coalition.t, float array) Hashtbl.t;
  mutable phi2_stamp : int;
  pending : Instant.t;  (* grand-coalition pending starts *)
}

let create_internals ?(concept = Shapley_value) instance =
  let k = Instance.organizations instance in
  if k > 16 then
    invalid_arg "Reference: more than 16 organizations is impractical (2^k \
                 schedules)";
  let grand = Coalition.grand ~players:k in
  let nmasks = grand + 1 in
  let has_machines mask =
    Coalition.fold (fun u acc -> acc + instance.Instance.machines.(u)) mask 0
    > 0
  in
  let sims = Array.make nmasks None in
  let by_size = ref [] in
  List.iter
    (List.iter (fun mask ->
         if mask <> grand && has_machines mask then begin
           sims.(mask) <- Some (Coalition_sim.create ~instance ~members:mask);
           by_size := mask :: !by_size
         end))
    (Coalition.proper_subcoalitions_of_grand ~players:k);
  {
    concept;
    k;
    grand;
    sims;
    by_size = List.rev !by_size;
    v2_val = Array.make nmasks 0;
    v2_stamp = Array.make nmasks min_int;
    phi2_cache = Hashtbl.create 64;
    phi2_stamp = min_int;
    pending = Instant.create ~norgs:k;
  }

(* 2·v(mask) at [time] for simulated masks; machine-less or empty masks are
   identically 0. *)
let v2_sim st ~mask ~time =
  if mask = Coalition.empty then 0
  else
    match st.sims.(mask) with
    | None -> 0
    | Some sim ->
        if st.v2_stamp.(mask) <> time then begin
          st.v2_val.(mask) <- Coalition_sim.value_scaled sim ~at:time;
          st.v2_stamp.(mask) <- time
        end;
        st.v2_val.(mask)

(* Shapley contributions (×2) of the members of [mask], using the current
   sub-coalition values; [v2_top] supplies v2 of [mask] itself (for the
   grand coalition it comes from the driver's trackers, not a sim). *)
let phi2_of st ~mask ~time ~v2_top =
  let size_mask = Coalition.size mask in
  let phi = Array.make st.k 0. in
  let banzhaf_w = 1. /. float_of_int (1 lsl (size_mask - 1)) in
  Coalition.iter_subsets mask (fun sub ->
      if sub <> Coalition.empty then begin
        let s = Coalition.size sub in
        let w =
          match st.concept with
          | Shapley_value ->
              Numeric.Combinatorics.shapley_weight_float ~players:size_mask
                ~subset:(s - 1)
          | Banzhaf_value -> banzhaf_w
        in
        let v_sub = if sub = mask then v2_top else v2_sim st ~mask:sub ~time in
        Coalition.iter_members
          (fun u ->
            let without = Coalition.remove sub u in
            let v_without =
              if without = mask then v2_top
              else v2_sim st ~mask:without ~time
            in
            phi.(u) <- phi.(u) +. (w *. float_of_int (v_sub - v_without)))
          sub
      end);
  (* The Banzhaf value is not efficient; normalize the members' shares to
     the coalition value so the (φ − ψ) comparisons stay on one scale. *)
  (match st.concept with
  | Shapley_value -> ()
  | Banzhaf_value ->
      let total = Coalition.fold (fun u acc -> acc +. phi.(u)) mask 0. in
      if total <> 0. then begin
        let factor = float_of_int v2_top /. total in
        Coalition.iter_members (fun u -> phi.(u) <- phi.(u) *. factor) mask
      end);
  phi

(* Selection rule inside a simulated coalition: argmax (φ − ψ) among waiting
   members, ψ evaluated with the pending (+1 per started part) convention.
   φ2 arrays are memoized per (mask, instant): coalition values do not
   change within an instant (a job started now has no executed part yet). *)
let select_in_sim st ~mask sim ~time =
  if st.phi2_stamp <> time then begin
    Hashtbl.reset st.phi2_cache;
    st.phi2_stamp <- time
  end;
  let phi2 =
    match Hashtbl.find_opt st.phi2_cache mask with
    | Some phi -> phi
    | None ->
        let phi =
          phi2_of st ~mask ~time ~v2_top:(v2_sim st ~mask ~time)
        in
        Hashtbl.add st.phi2_cache mask phi;
        phi
  in
  let score u =
    let psi2 =
      Coalition_sim.utility_scaled sim ~org:u ~at:time
      + (2 * Instant.get (Coalition_sim.pending sim) ~time ~org:u)
    in
    phi2.(u) -. float_of_int psi2
  in
  match Coalition_sim.waiting_orgs sim with
  | [] -> invalid_arg "reference: nothing waiting in sub-coalition"
  | first :: rest ->
      List.fold_left
        (fun best u -> if score u > score best then u else best)
        first rest

(* Advance every simulated sub-coalition to [time], in global event order;
   at each instant, arrivals and completions are applied to all coalitions
   first, then the scheduling rounds run size-ascending (Fig. 1's
   [for s ← 1 to ‖C‖]). *)
let advance_all st ~time =
  let next_event () =
    List.fold_left
      (fun acc mask ->
        match st.sims.(mask) with
        | None -> acc
        | Some sim -> (
            match Coalition_sim.next_event sim with
            | None -> acc
            | Some tau -> Stdlib.min acc tau))
      max_int st.by_size
  in
  let rec loop () =
    let tau = next_event () in
    if tau <= time then begin
      List.iter
        (fun mask ->
          match st.sims.(mask) with
          | None -> ()
          | Some sim ->
              Coalition_sim.step_releases_and_completions sim ~time:tau)
        st.by_size;
      List.iter
        (fun mask ->
          match st.sims.(mask) with
          | None -> ()
          | Some sim ->
              Coalition_sim.schedule_round sim ~time:tau
                ~select:(fun sim ~time -> select_in_sim st ~mask sim ~time))
        st.by_size;
      loop ()
    end
  in
  loop ()

let grand_v2 (view : Policy.view) ~time =
  Array.fold_left
    (fun acc tracker -> acc + Utility.Tracker.value_scaled tracker ~at:time)
    0 view.Policy.trackers

let contributions_scaled st ~view ~time =
  advance_all st ~time;
  phi2_of st ~mask:st.grand ~time ~v2_top:(grand_v2 view ~time)

let coalition_value_scaled st ~mask ~time =
  advance_all st ~time;
  v2_sim st ~mask ~time

let make_with_internals ?(name = "ref") ?concept () instance ~rng:_ =
  let st = create_internals ?concept instance in
  let grand_phi_stamp = ref min_int in
  let grand_phi = ref [||] in
  let policy =
    Policy.make ~name
      ~on_release:(fun _view ~time:_ job ->
        let org = job.Job.org in
        List.iter
          (fun mask ->
            if Coalition.mem mask org then
              match st.sims.(mask) with
              | Some sim -> Coalition_sim.add_release sim job
              | None -> ())
          st.by_size)
      ~on_start:(fun _view ~time p ->
        Instant.bump st.pending ~time ~org:p.Schedule.job.Job.org)
      ~select:(fun view ~time ->
        advance_all st ~time;
        if !grand_phi_stamp <> time then begin
          grand_phi :=
            phi2_of st ~mask:st.grand ~time ~v2_top:(grand_v2 view ~time);
          grand_phi_stamp := time
        end;
        let phi2 = !grand_phi in
        let score u =
          let psi2 =
            Policy.utility_plus_pending_scaled view ~pending:st.pending
              ~org:u ~time
          in
          phi2.(u) -. float_of_int psi2
        in
        match Cluster.waiting_orgs view.Policy.cluster with
        | [] -> invalid_arg "reference: nothing waiting"
        | first :: rest ->
            List.fold_left
              (fun best u -> if score u > score best then u else best)
              first rest)
      ()
  in
  (policy, st)

let make ?name () instance ~rng =
  fst (make_with_internals ?name () instance ~rng)

let reference instance ~rng = make () instance ~rng

let banzhaf instance ~rng =
  fst
    (make_with_internals ~name:"ref-banzhaf" ~concept:Banzhaf_value ()
       instance ~rng)
