(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(* Leaky integrators, one cell per organization: between events the input
   rate is constant, so on an event at [t] we decay the stored integral by
   exp(−Δ·ln2/half_life) and add rate·Δ.  (Exact integration of the decayed
   integral is ∫rate·e^{-(t-s)λ}ds; the piecewise form below decays the
   whole increment, which differs only by O(λΔ) within one inter-event gap
   and keeps the code obvious.) *)
type integrators = {
  values : float array;
  mutable last : int;
  lambda : float;  (* ln 2 / half_life *)
}

let create_integrators ~norgs ~half_life =
  if half_life <= 0. then invalid_arg "Decayed: half_life <= 0";
  { values = Array.make norgs 0.; last = 0; lambda = log 2. /. half_life }

let advance integ ~time ~rate_of =
  let dt = time - integ.last in
  if dt > 0 then begin
    let d = exp (-.integ.lambda *. float_of_int dt) in
    Array.iteri
      (fun u v ->
        integ.values.(u) <- (v *. d) +. (rate_of u *. float_of_int dt))
      integ.values;
    integ.last <- time
  end

let busy_machines_by_owner view =
  let cluster = view.Policy.cluster in
  let k = Cluster.norgs cluster in
  let busy = Array.make k 0 in
  (* owner's busy machines = up − free (a down machine is neither free nor
     contributing anything). *)
  let up = Array.make k 0 in
  for m = 0 to Cluster.machines cluster - 1 do
    if Cluster.machine_up cluster m then begin
      let o = Cluster.machine_owner cluster m in
      up.(o) <- up.(o) + 1
    end
  done;
  let free_by_owner = Array.make k 0 in
  List.iter
    (fun m ->
      let o = Cluster.machine_owner cluster m in
      free_by_owner.(o) <- free_by_owner.(o) + 1)
    (Cluster.free_machine_ids cluster);
  Array.iteri (fun u o -> busy.(u) <- o - free_by_owner.(u)) up;
  busy

let fair_share ~half_life instance ~rng:_ =
  if half_life <= 0. then invalid_arg "Decayed.fair_share: half_life <= 0";
  let k = Instance.organizations instance in
  let shares = Array.init k (fun u -> Instance.share instance u) in
  Array.iter
    (fun s -> if s <= 0. then invalid_arg "Decayed.fair_share: zero share")
    shares;
  let usage = create_integrators ~norgs:k ~half_life in
  (* [extra] compensates for the driver's ordering: [on_complete] fires
     after the cluster already decremented the running count, yet the
     completed job was running throughout the elapsed interval. *)
  let sync ?extra view ~time =
    advance usage ~time ~rate_of:(fun u ->
        float_of_int (Cluster.running_count view.Policy.cluster u)
        +. (if extra = Some u then 1. else 0.))
  in
  Policy.make
    ~name:(Printf.sprintf "fairshare-hl%g" half_life)
    ~on_release:(fun view ~time _ -> sync view ~time)
    ~on_complete:(fun view ~time c ->
      sync ~extra:c.Cluster.job.Job.org view ~time)
    ~on_kill:(fun view ~time k ->
      (* Like a completion: the killed job was running throughout the
         elapsed interval even though the count is already decremented. *)
      sync ~extra:k.Cluster.k_job.Job.org view ~time)
    ~select:(fun view ~time ->
      sync view ~time;
      match Cluster.waiting_orgs view.Policy.cluster with
      | [] -> invalid_arg "decayed fairshare: nothing waiting"
      | first :: rest ->
          (* Count the committed current slot like plain FAIRSHARE does. *)
          let ratio u =
            (usage.values.(u)
            +. float_of_int (Cluster.running_count view.Policy.cluster u))
            /. shares.(u)
          in
          List.fold_left
            (fun best u -> if ratio u < ratio best then u else best)
            first rest)
    ()

let direct_contr ~half_life instance ~rng:_ =
  if half_life <= 0. then invalid_arg "Decayed.direct_contr: half_life <= 0";
  let k = Instance.organizations instance in
  let consumed = create_integrators ~norgs:k ~half_life in
  let contributed = create_integrators ~norgs:k ~half_life in
  (* [extra = (job org, machine owner)] compensates for the driver's
     ordering on completions {e and} kills alike: the hook fires after the
     cluster already dropped the job, yet it was running (and its machine
     busy) throughout the elapsed interval. *)
  let sync ?extra view ~time =
    let job_extra, machine_extra =
      match extra with None -> (-1, -1) | Some (j, m) -> (j, m)
    in
    advance consumed ~time ~rate_of:(fun u ->
        float_of_int (Cluster.running_count view.Policy.cluster u)
        +. (if u = job_extra then 1. else 0.));
    let busy = busy_machines_by_owner view in
    advance contributed ~time ~rate_of:(fun u ->
        float_of_int busy.(u) +. if u = machine_extra then 1. else 0.)
  in
  Policy.make
    ~name:(Printf.sprintf "directcontr-hl%g" half_life)
    ~on_release:(fun view ~time _ -> sync view ~time)
    ~on_complete:(fun view ~time c ->
      sync
        ~extra:
          ( c.Cluster.job.Job.org,
            Cluster.machine_owner view.Policy.cluster c.Cluster.machine )
        view ~time)
    ~on_kill:(fun view ~time k ->
      sync
        ~extra:
          ( k.Cluster.k_job.Job.org,
            Cluster.machine_owner view.Policy.cluster k.Cluster.k_machine )
        view ~time)
    ~select:(fun view ~time ->
      sync view ~time;
      match Cluster.waiting_orgs view.Policy.cluster with
      | [] -> invalid_arg "decayed directcontr: nothing waiting"
      | first :: rest ->
          let score u =
            contributed.values.(u)
            -. (consumed.values.(u)
               +. float_of_int (Cluster.running_count view.Policy.cluster u))
          in
          List.fold_left
            (fun best u -> if score u > score best then u else best)
            first rest)
    ()
