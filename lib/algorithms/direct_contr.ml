(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

let make ?(name = "directcontr") () instance ~rng =
  let rng = Fstats.Rng.split rng in
  let k = Instance.organizations instance in
  (* φ̃ tracker per organization: the pieces processed on its machines.
     Pieces are keyed by a global serial (a piece can host any org's job, so
     per-org FIFO indices are not unique here). *)
  let contrib = Array.init k (fun _ -> Utility.Tracker.create ()) in
  let serial = ref 0 in
  let piece_key : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  (* job id -> (serial, machine owner) *)
  let pending_util = Instant.create ~norgs:k in
  let pending_contrib = Instant.create ~norgs:k in
  let score view ~time u =
    let psi = Policy.utility_plus_pending_scaled view ~pending:pending_util ~org:u ~time in
    let phi =
      Utility.Tracker.value_scaled contrib.(u) ~at:time
      + (2 * Instant.get pending_contrib ~time ~org:u)
    in
    phi - psi
  in
  Policy.make ~name
    ~pick_machine:(fun view ~time:_ ~org:_ ->
      match Cluster.free_machine_ids view.Policy.cluster with
      | [] -> None
      | ids -> Some (Fstats.Rng.choose rng (Array.of_list ids)))
    ~on_start:(fun view ~time p ->
      let owner = Cluster.machine_owner view.Policy.cluster p.Schedule.machine in
      let key = !serial in
      incr serial;
      Hashtbl.replace piece_key (Job.id p.Schedule.job) (key, owner);
      Utility.Tracker.on_start contrib.(owner) ~key ~start:time;
      Instant.bump pending_util ~time ~org:p.Schedule.job.Job.org;
      Instant.bump pending_contrib ~time ~org:owner)
    ~on_complete:(fun _view ~time:_ c ->
      match Hashtbl.find_opt piece_key (Job.id c.Cluster.job) with
      | None -> invalid_arg "directcontr: completion of an unknown job"
      | Some (key, owner) ->
          Hashtbl.remove piece_key (Job.id c.Cluster.job);
          Utility.Tracker.on_complete contrib.(owner) ~key
            ~size:(c.Cluster.finish - c.Cluster.start))
    ~on_kill:(fun _view ~time:_ kl ->
      (* Killed work counts for nobody — the machine owner's contribution
         piece is retracted just like the job owner's ψsp piece. *)
      match Hashtbl.find_opt piece_key (Job.id kl.Cluster.k_job) with
      | None -> invalid_arg "directcontr: kill of an unknown job"
      | Some (key, owner) ->
          Hashtbl.remove piece_key (Job.id kl.Cluster.k_job);
          Utility.Tracker.on_abort contrib.(owner) ~key)
    ~select:(fun view ~time ->
      match Cluster.waiting_orgs view.Policy.cluster with
      | [] -> invalid_arg "directcontr: nothing waiting"
      | first :: rest ->
          List.fold_left
            (fun best u ->
              if score view ~time u > score view ~time best then u else best)
            first rest)
    ()

let direct_contr instance ~rng = make () instance ~rng
