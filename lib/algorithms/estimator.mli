(** Contribution-estimator specification: which engine computes the Shapley
    contributions a fair policy schedules by (DESIGN.md §13).

    - [Exact] — Algorithm REF: all 2^k − 1 sub-coalition schedules, the
      exact Shapley value, FPT in k (practical for k ≲ 12).
    - [Fixed n] — Algorithm RAND with [n] sampled joining orders (the
      paper's N = 15 / N = 75 heuristic); cost grows with [n·k], not 2^k,
      so k in the many dozens is live — this is the tier that makes
      [fairsched serve] feasible at k = 50–100.
    - [Sampled {epsilon; confidence}] — RAND with the sample count from the
      Hoeffding bound of Theorem 5.6: with probability ≥ [confidence] every
      estimated contribution is within [epsilon/k · v(grand)] of the exact
      Shapley value (unit-size jobs; a heuristic beyond).

    The textual form ([to_string]/[of_string]) is the estimator's persistent
    interface: it is what `--estimator` parses, what service configs store,
    and what the WAL replays, so it is stable and registry-resolvable. *)

type t =
  | Exact
  | Fixed of int
  | Sampled of { epsilon : float; confidence : float }

val of_string : string -> (t, string) result
(** Accepts ["exact"] (and the alias ["ref"]), ["rand-N"] with positive N,
    and ["rand:EPS,CONF"] with EPS > 0 and 0 < CONF < 1.  Malformed specs
    (["rand:"], ["rand:0.1"], confidence outside (0,1), non-numeric parts)
    return [Error] with a human-readable reason — the CLI maps these to
    exit 2. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a malformed spec. *)

val to_string : t -> string
(** Round-trips through {!of_string}: ["exact"], ["rand-N"] or
    ["rand:EPS,CONF"]. *)

val algorithm_name : t -> string
(** The {!Registry}-resolvable algorithm name: ["ref"] for [Exact],
    otherwise {!to_string}. *)

val sample_count : t -> players:int -> int option
(** Resolved number of sampled orders ([None] for [Exact]); for [Sampled]
    this is Theorem 5.6's [⌈k²/ε² · ln(k/(1−λ))⌉], which gets large fast —
    surface it to the user before launching a run. *)

val maker : ?workers:int -> ?value_cache:bool -> t -> Policy.maker
(** The policy implementing the spec: {!Reference.make} for [Exact] (where
    [workers] applies), {!Rand.rand} / {!Rand.rand_with_guarantee}
    otherwise.  A [Sampled] policy is renamed to the stable spec string so
    WAL replay resolves it back to the same estimator. *)
