(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** The interface between the simulation driver and a scheduling algorithm.

    The driver owns the grand-coalition cluster and the per-organization ψsp
    trackers; whenever a machine is free and some organization has a waiting
    job it asks the policy which organization's FIFO-front job to start
    (Section 2's definition of an online algorithm: [A(J,t)] returns an
    organization).  Policies are stateful closures created per instance; all
    randomness comes from the provided generator so runs are reproducible.

    The selection convention (see DESIGN.md): policies that compare utilities
    evaluate them "as of [t+1]" — every job started in the current instant
    counts one pending unit part for its owner.  This resolves the
    degeneracy of comparing ψsp at the very instant a job starts (it would
    always be 0) and matches the [+1] bookkeeping in the paper's Figures 6
    and 9. *)

type view = {
  instance : Instance.t;
  cluster : Cluster.t;  (** the real (grand-coalition) pool *)
  trackers : Utility.Tracker.t array;
      (** per-organization ψsp trackers, maintained by the driver *)
}

type t = {
  name : string;
  select : view -> time:int -> int;
      (** Must return an organization with a non-empty waiting queue.  Called
          only when the cluster has both a free machine and a waiting job. *)
  pick_machine : view -> time:int -> org:int -> int option;
      (** Optionally pin the machine for the next start (must be free);
          [None] lets the cluster choose. *)
  on_release : view -> time:int -> Job.t -> unit;
  on_start : view -> time:int -> Schedule.placement -> unit;
  on_complete : view -> time:int -> Cluster.completion -> unit;
  on_kill : view -> time:int -> Cluster.kill -> unit;
      (** A machine failure killed a running job (the driver has already
          updated the cluster and retracted the job's active ψsp piece —
          killed work never counts, Theorem 4.1).  Policies with internal
          per-job state must roll it back here. *)
  on_fault : view -> time:int -> Faults.Event.t -> unit;
      (** A machine went down or came back up (fired after {!on_kill} for
          the casualty, if any).  Policies running internal what-if
          simulations (REF, RAND) mirror the capacity change here. *)
  on_endow : view -> time:int -> Federation.Event.t -> unit;
      (** An endowment event moved consortium membership or machine
          ownership (fired after the driver updated the cluster and
          retracted any killed pieces).  Policies running internal what-if
          simulations broadcast the event to them here, so every coalition
          value tracks the live org set k(t). *)
  stats : (unit -> Kernel.Stats.t) option;
      (** Internal instrumentation of policies that run their own kernels
          (REF's sub-coalition simulations, its event-heap pops); merged
          into the driver's {!Kernel.Stats.t} at the end of a run. *)
}

val make :
  name:string ->
  ?pick_machine:(view -> time:int -> org:int -> int option) ->
  ?on_release:(view -> time:int -> Job.t -> unit) ->
  ?on_start:(view -> time:int -> Schedule.placement -> unit) ->
  ?on_complete:(view -> time:int -> Cluster.completion -> unit) ->
  ?on_kill:(view -> time:int -> Cluster.kill -> unit) ->
  ?on_fault:(view -> time:int -> Faults.Event.t -> unit) ->
  ?on_endow:(view -> time:int -> Federation.Event.t -> unit) ->
  ?stats:(unit -> Kernel.Stats.t) ->
  select:(view -> time:int -> int) ->
  unit ->
  t
(** Build a policy with no-op defaults for the notification hooks. *)

type maker = Instance.t -> rng:Fstats.Rng.t -> t
(** How algorithms are registered: a fresh stateful policy per instance. *)

val utility_plus_pending_scaled :
  view -> pending:Instant.t -> org:int -> time:int -> int
(** [2·ψsp(org, t)] from the driver trackers plus 2 per pending (started
    this instant) job — the standard selection-time utility. *)
