(** The distributive-fairness family (Section 7.1).

    Every variant assigns each organization a static target share equal to
    the fraction of processors it contributes (as in the paper's
    experiments) and serves the organization with the smallest
    consumption-to-share ratio among those with waiting jobs. *)

val fair_share : Policy.maker
(** FAIRSHARE (Kay & Lauder): consumption = processor time already assigned
    to the organization's jobs — completed work plus the elapsed (and
    currently committed) slots of running jobs. *)

val ut_fair_share : Policy.maker
(** UTFAIRSHARE: consumption = the organization's ψsp utility — the same
    allocator driven by the paper's strategy-proof metric. *)

val curr_fair_share : Policy.maker
(** CURRFAIRSHARE: memoryless variant — consumption = number of
    currently-running jobs. *)

val fair_share_with_shares : shares:float array -> Policy.maker
(** FAIRSHARE with explicit target shares (must be positive); for
    experiments departing from the machines-contributed default. *)
