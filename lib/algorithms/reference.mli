(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** Algorithm REF (Fig. 1, specialised to ψsp as in Fig. 3): the exponential
    fair reference algorithm.

    REF maintains a full greedy schedule for {e every} non-empty
    sub-coalition of the grand coalition, each built recursively by the same
    rule; at any decision point of coalition [C] it serves the waiting
    organization maximizing [φ(u) − ψ(u)], where the contribution [φ(u)] is
    the Shapley share of [v(C) = Σ ψsp] computed from the current values of
    all sub-coalition schedules (the [UpdateVals] weights
    [(s−1)!(k−s)!/k!]).

    Cost per decision instant is O(k·3^k) plus the bookkeeping of 2^k − 1
    concurrent simulations (Proposition 3.4) — FPT in the number of
    organizations, practical for k ≲ 12.  The sub-coalition simulations
    advance in lockstep, in global event order and size-ascending within an
    instant, exactly like the [for s ← 1 to ‖C‖] loop of Fig. 1.

    The driver's own cluster plays the role of the grand coalition's
    schedule, so the utilities REF is fair about are the real ones.

    {b Engine.}  The advancement engine is event-driven and optionally
    domain-parallel: a global min-heap of (next-event-time, coalition)
    entries replaces the per-instant scan over all 2^k − 1 simulations, and
    within one instant the arrival/completion step and each size class of
    scheduling rounds run as parallel stages over the persistent
    {!Core.Domain_pool} (coalitions of equal size never read each other's
    state, and all coalition values are frozen within an instant).  Results
    are bit-identical for every worker count — parallelism never reorders
    any float accumulation or selection; see DESIGN.md, "Performance
    engineering". *)

val reference : Policy.maker
(** The paper's REF under the name ["ref"]. *)

val banzhaf : Policy.maker
(** The paper's future-work question ("other game-theoretic notions of
    fairness"): the same algorithm with contributions given by the
    {e normalized Banzhaf value} instead of the Shapley value (uniform
    sub-coalition weights, rescaled to the coalition value since Banzhaf is
    not efficient).  Named ["ref-banzhaf"]; the fairness-concept ablation
    measures how far its schedules drift from the Shapley-fair ones. *)

type concept = Shapley_value | Banzhaf_value

val make :
  ?name:string -> ?concept:concept -> ?workers:int -> ?max_restarts:int ->
  ?value_cache:bool -> unit -> Policy.maker
(** [make ?name ?concept ?workers ()] builds a REF maker.  [workers] caps
    the number of domains the engine may use per stage (1 = strictly
    sequential, never touches the pool); it defaults to the driver's
    domain-local default ({!Core.Domain_pool.default_workers}, i.e.
    [Domain.recommended_domain_count () - 1] unless overridden via
    [Sim.Driver.run ?workers]).  The schedule produced is bit-identical for
    every worker count.

    [value_cache] (default [true]) enables the cross-instant coalition-value
    cache (DESIGN.md §13): between two events of a sub-coalition simulation
    its value 2·v(t) is an exact integer polynomial in [t], so REF caches
    the coefficients keyed by the simulation's state epoch and re-evaluates
    instead of re-folding the member trackers.  Values are exact integers
    either way, so schedules are bit-identical with the cache on or off;
    hit/miss counters surface as [ref.vcache_hits]/[ref.vcache_misses] in
    {!Obs.Metrics}.

    Machine faults delivered through {!Policy.t.on_fault} are mirrored into
    every sub-coalition simulation containing the machine's owner, so the
    what-if values REF is fair about track the time-varying capacity.
    [max_restarts] bounds resubmissions {e inside} those simulations
    (default unbounded, matching the driver's default). *)

(** {2 Introspection (for tests and the worked examples)} *)

type internals

val make_with_internals :
  ?name:string -> ?concept:concept -> ?workers:int -> ?max_restarts:int ->
  ?value_cache:bool -> unit -> Instance.t -> rng:Fstats.Rng.t ->
  Policy.t * internals

val contributions_scaled : internals -> view:Policy.view -> time:int -> float array
(** [2·φ(u)] of every organization in the grand coalition, at [time]
    (advances the sub-coalition simulations to [time] first). *)

val coalition_value_scaled : internals -> mask:Shapley.Coalition.t -> time:int -> int
(** [2·v(C)] of a proper sub-coalition's internal schedule at [time]. *)
