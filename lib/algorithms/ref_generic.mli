(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** Algorithm REF in full generality (Fig. 1): the fair algorithm for an
    {e arbitrary} utility function ψ, using the [Distance] procedure.

    Where {!Reference} exploits the structure of ψsp (incremental trackers,
    [argmax (φ − ψ)] selection), this implementation follows the paper's
    pseudo-code literally: every sub-coalition keeps a {e recorded} schedule;
    [UpdateVals] recomputes ψ, v and the Shapley contributions φ from those
    schedules with the [(s−1)!(k−s)!/k!] weights at each decision instant;
    [SelectAndSchedule] picks the organization minimizing

      Distance(C, u, t) = |φ_u + Δψ/‖C‖ − ψ_u − Δψ|
                          + Σ_{u' ≠ u} |φ_{u'} + Δψ/‖C‖ − ψ_{u'}|

    where Δψ is the utility increase from tentatively starting u's front job
    (evaluated at [t+1] — at [t] a just-started job has no executed part and
    the pseudo-code's comparison would be degenerate; see DESIGN.md).

    Cost is O(3^k · |σ|) per decision instant: strictly a reference
    implementation for small instances, worked examples, and the
    utility-function ablation.  For production use with ψsp, use
    {!Reference}, which this module is property-tested against. *)

val make :
  utility:Utility.Functions.t -> ?name:string -> ?workers:int ->
  ?max_restarts:int -> unit -> Policy.maker
(** The driver must run with [record:true] (the default) — the grand
    coalition's utilities are evaluated on the recorded schedule.
    [workers] caps the domains used for the per-instant parallel stages
    (1 = strictly sequential); defaults to the driver's domain-local
    default ({!Core.Domain_pool.default_workers}).  Output is bit-identical
    for every worker count.  Machine faults are mirrored into the
    sub-coalition schedules; killed attempts are excised from the recorded
    schedules, so the generic ψ evaluation never counts lost work.
    [max_restarts] bounds resubmissions inside those simulations (default
    unbounded). *)

val make_with :
  (Instance.t -> Utility.Functions.t) -> ?name:string -> ?workers:int ->
  ?max_restarts:int -> unit -> Policy.maker
(** Like {!make} for utilities that need the instance (e.g.
    {!Utility.Functions.neg_flow_time} needs the job list). *)

val ref_psp : Policy.maker
(** [make ~utility:Utility.Functions.psp ()] under the name
    ["ref-generic-psp"]. *)
