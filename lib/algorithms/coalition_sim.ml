(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type t = {
  members : Shapley.Coalition.t;
  cluster : Cluster.t;
  trackers : Utility.Tracker.t array;  (* indexed by global org id *)
  local_of_global : int array;  (* global machine id -> local id, or -1 *)
  (* Federated mode: the sim hosts the full global machine universe under
     identity ids and replays the endowment stream against its own
     ownership state, so which machines the coalition can use varies with
     time (a machine is visible iff its *current* owner is a member).
     [None] = the static consortium of the paper. *)
  ownership : Federation.Event.Ownership.t option;
  pending : Instant.t;
  engine : Job.t Kernel.Engine.t;
  model : Job.t Kernel.Engine.model;
  (* The selection rule is a per-call argument of [advance_to] /
     [schedule_round], but the kernel's round closure is built once; it
     reads the rule through this field. *)
  mutable current_select : t -> time:int -> int;
}

(* Retire one machine from a federated sim's cluster, retracting the killed
   piece from ψsp like a fault does (Theorem 4.1), and fold the kill into
   the endowment outcome. *)
let sim_retire t ~time (acc : Kernel.Engine.endow_outcome) m =
  match Cluster.retire_machine t.cluster ~time m with
  | None -> acc
  | Some k ->
      Utility.Tracker.on_abort
        t.trackers.(k.Cluster.k_job.Job.org)
        ~key:k.Cluster.k_job.Job.index;
      {
        Kernel.Engine.e_kills = acc.Kernel.Engine.e_kills + 1;
        e_wasted = acc.Kernel.Engine.e_wasted + k.Cluster.k_wasted;
        e_abandoned =
          (acc.Kernel.Engine.e_abandoned
          + if k.Cluster.k_resubmitted then 0 else 1);
      }

(* Replay one endowment event against the sim's own ownership state and
   mirror the changes into its cluster.  The invariant is: a machine is
   present in the sim's cluster iff it is present in the consortium and its
   current owner is a member — so a transfer in/out of the member set
   becomes an admit/retire here, and everything else is invisible. *)
let apply_endow_global t own ~time ev =
  match Federation.Event.Ownership.apply own ev with
  | Error msg -> invalid_arg ("Coalition_sim: bad endowment event: " ^ msg)
  | Ok changes ->
      List.fold_left
        (fun acc change ->
          match change with
          | Federation.Event.Ownership.Activate u ->
              if Shapley.Coalition.mem t.members u then
                Cluster.resume_org t.cluster u;
              acc
          | Federation.Event.Ownership.Deactivate u ->
              if Shapley.Coalition.mem t.members u then
                Cluster.suspend_org t.cluster u;
              acc
          | Federation.Event.Ownership.Admit { machine = m; org } ->
              if Shapley.Coalition.mem t.members org then
                Cluster.admit_machine t.cluster ~org m;
              acc
          | Federation.Event.Ownership.Retire m ->
              if Cluster.machine_present t.cluster m then sim_retire t ~time acc m
              else acc
          | Federation.Event.Ownership.Transfer { machine = m; org } ->
              let visible = Cluster.machine_present t.cluster m in
              let member = Shapley.Coalition.mem t.members org in
              if visible && member then begin
                Cluster.transfer_machine t.cluster ~org m;
                acc
              end
              else if visible then sim_retire t ~time acc m
              else if member then begin
                Cluster.admit_machine t.cluster ~org m;
                acc
              end
              else acc)
        Kernel.Engine.no_endow_effect changes

let global_homes instance =
  let norgs = Instance.organizations instance in
  let acc = ref [] in
  for u = norgs - 1 downto 0 do
    acc :=
      List.rev_append (List.init instance.Instance.machines.(u) (fun _ -> u))
        !acc
  done;
  Array.of_list !acc

let create ?max_restarts ?(federated = false) ~instance ~members () =
  if members = Shapley.Coalition.empty then
    invalid_arg "Coalition_sim.create: empty coalition";
  let norgs = Instance.organizations instance in
  let nglobal = Array.fold_left ( + ) 0 instance.Instance.machines in
  let machine_owners =
    if federated then global_homes instance
    else
      Shapley.Coalition.fold
        (fun u acc ->
          List.rev_append
            (List.init instance.Instance.machines.(u) (fun _ -> u))
            acc)
        members []
      |> List.rev |> Array.of_list
  in
  if Array.length machine_owners = 0 then
    invalid_arg "Coalition_sim.create: coalition owns no machine";
  (* Related machines: carry over the members' machine speeds, flattened in
     the same member-ascending order as [machine_owners] (federated mode
     hosts everyone's machines, so the global array carries over as is). *)
  let speeds =
    if federated then instance.Instance.speeds
    else
      match instance.Instance.speeds with
      | None -> None
      | Some _ ->
          Some
            (Shapley.Coalition.fold
               (fun u acc ->
                 Array.to_list (Instance.speeds_of_org instance u) :: acc)
               members []
            |> List.rev |> List.concat |> Array.of_list)
  in
  (* The driver lays machines out org-contiguously ascending; a coalition
     keeps the member orgs' blocks in the same order, so a global machine id
     maps to (member prefix count) + (slot within the owner's block).  In
     federated mode the map is the identity: ownership moves at runtime, so
     the compile-time compaction is impossible — non-member machines are
     instead kept absent. *)
  let local_of_global =
    if federated then Array.init nglobal Fun.id
    else begin
      let local_of_global = Array.make nglobal (-1) in
      let next_local = ref 0 and next_global = ref 0 in
      for u = 0 to norgs - 1 do
        let c = instance.Instance.machines.(u) in
        if Shapley.Coalition.mem members u then begin
          for s = 0 to c - 1 do
            local_of_global.(!next_global + s) <- !next_local + s
          done;
          next_local := !next_local + c
        end;
        next_global := !next_global + c
      done;
      local_of_global
    end
  in
  let rec t =
    {
      members;
      cluster = Cluster.create ?speeds ?max_restarts ~machine_owners ~norgs ();
      trackers = Array.init norgs (fun _ -> Utility.Tracker.create ());
      local_of_global;
      ownership =
        (if federated then
           Some
             (Federation.Event.Ownership.create ~homes:machine_owners
                ~orgs:norgs)
         else None);
      pending = Instant.create ~norgs;
      engine =
        Kernel.Engine.create
          ~release_time:(fun (j : Job.t) -> j.Job.release)
          [||];
      model =
        {
          Kernel.Engine.next_completion =
            (fun () -> Cluster.next_completion t.cluster);
          pop_completion =
            (fun ~time ->
              match Cluster.pop_completion_le t.cluster time with
              | Some c ->
                  Utility.Tracker.on_complete
                    t.trackers.(c.Cluster.job.Job.org)
                    ~key:c.Cluster.job.Job.index
                    ~size:(c.Cluster.finish - c.Cluster.start);
                  true
              | None -> false);
          apply_fault =
            (fun ~time ev ->
              match ev with
              | Faults.Event.Fail m -> (
                  match Cluster.fail_machine t.cluster ~time m with
                  | Some k ->
                      (* The killed piece vanishes from ψsp (Theorem 4.1). *)
                      Utility.Tracker.on_abort
                        t.trackers.(k.Cluster.k_job.Job.org)
                        ~key:k.Cluster.k_job.Job.index;
                      Kernel.Engine.Killed
                        {
                          wasted = k.Cluster.k_wasted;
                          resubmitted = k.Cluster.k_resubmitted;
                        }
                  | None -> Kernel.Engine.Applied)
              | Faults.Event.Recover m ->
                  ignore (Cluster.recover_machine t.cluster m);
                  Kernel.Engine.Applied);
          apply_endow =
            (fun ~time ev ->
              match t.ownership with
              | None -> Kernel.Engine.no_endow_effect
              | Some own -> apply_endow_global t own ~time ev);
          admit = (fun ~time:_ job -> Cluster.release t.cluster job);
          round =
            (fun ~time ->
              let n = ref 0 in
              while
                Cluster.free_count t.cluster > 0
                && Cluster.has_waiting t.cluster
              do
                let org = t.current_select t ~time in
                let placement = Cluster.start_front t.cluster ~org ~time () in
                Utility.Tracker.on_start t.trackers.(org)
                  ~key:placement.Schedule.job.Job.index ~start:time;
                Instant.bump t.pending ~time ~org;
                incr n
              done;
              !n);
        };
      current_select =
        (fun _ ~time:_ ->
          invalid_arg "Coalition_sim: scheduling round without a select rule");
    }
  in
  if federated then
    (* Non-members' machines start absent; lends make them appear. *)
    Array.iteri
      (fun m h ->
        if not (Shapley.Coalition.mem members h) then
          ignore (Cluster.retire_machine t.cluster ~time:0 m))
      machine_owners;
  t

let members t = t.members
let now t = Kernel.Engine.now t.engine
let stats t = Kernel.Engine.stats t.engine

let add_release t (job : Job.t) =
  if not (Shapley.Coalition.mem t.members job.Job.org) then
    invalid_arg "Coalition_sim.add_release: job of a non-member";
  Kernel.Engine.push_job t.engine job

let add_fault t (ev : Faults.Event.timed) =
  let g = Faults.Event.machine ev.Faults.Event.event in
  if g < 0 || g >= Array.length t.local_of_global then
    invalid_arg "Coalition_sim.add_fault: machine id out of range";
  let m = t.local_of_global.(g) in
  if m >= 0 then
    let event =
      match ev.Faults.Event.event with
      | Faults.Event.Fail _ -> Faults.Event.Fail m
      | Faults.Event.Recover _ -> Faults.Event.Recover m
    in
    Kernel.Engine.push_fault t.engine { ev with Faults.Event.event }

let add_endow t (ev : Federation.Event.timed) =
  if t.ownership = None then
    invalid_arg "Coalition_sim.add_endow: sim is not federated";
  Kernel.Engine.push_endow t.engine ev

let federated t = t.ownership <> None

let visible_machines t = Cluster.present_count t.cluster

let next_event t = Kernel.Engine.next_event t.engine t.model

let step_releases_and_completions t ~time =
  Kernel.Engine.drain_events t.engine t.model ~time

let schedule_round t ~time ~select =
  t.current_select <- select;
  Kernel.Engine.run_round t.engine t.model ~time

let advance_to t ~time ~select =
  t.current_select <- select;
  Kernel.Engine.advance_to t.engine t.model ~time

let value_scaled t ~at =
  Shapley.Coalition.fold
    (fun u acc -> acc + Utility.Tracker.value_scaled t.trackers.(u) ~at)
    t.members 0

(* Closed-form coalition value: 2·v(C, t) = a·t² + b·t + c between state
   changes (sum of the members' tracker polynomials — exact integers, so
   evaluating it is bit-identical to [value_scaled]).  [epoch] is the sum of
   the members' monotone tracker epochs: unchanged epoch ⇒ unchanged
   coefficients, which is what lets REF/RAND cache coalition values across
   instants (DESIGN.md §13). *)
let value_coeffs t =
  Shapley.Coalition.fold
    (fun u (a, b, c) ->
      let ua, ub, uc = Utility.Tracker.coeffs_scaled t.trackers.(u) in
      (a + ua, b + ub, c + uc))
    t.members (0, 0, 0)

let epoch t =
  Shapley.Coalition.fold
    (fun u acc -> acc + Utility.Tracker.epoch t.trackers.(u))
    t.members 0

let utility_scaled t ~org ~at = Utility.Tracker.value_scaled t.trackers.(org) ~at
let pending t = t.pending
let waiting_orgs t = Cluster.waiting_orgs t.cluster

let front_release t ~org =
  Option.map (fun (j : Job.t) -> j.Job.release) (Cluster.front t.cluster org)
let has_waiting t = Cluster.has_waiting t.cluster
let free_count t = Cluster.free_count t.cluster

let completed_parts t ~at =
  Shapley.Coalition.fold
    (fun u acc -> acc + Utility.Tracker.parts t.trackers.(u) ~at)
    t.members 0
