(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type t = {
  members : Shapley.Coalition.t;
  cluster : Cluster.t;
  trackers : Utility.Tracker.t array;  (* indexed by global org id *)
  backlog : Job.t Queue.t;
  (* Machine-fault backlog, already translated to this coalition's local
     machine ids (events hitting non-members were dropped at add time). *)
  faults : Faults.Event.timed Queue.t;
  local_of_global : int array;  (* global machine id -> local id, or -1 *)
  pending : Instant.t;
  mutable now : int;
}

let create ?max_restarts ~instance ~members () =
  if members = Shapley.Coalition.empty then
    invalid_arg "Coalition_sim.create: empty coalition";
  let norgs = Instance.organizations instance in
  let machine_owners =
    Shapley.Coalition.fold
      (fun u acc ->
        List.rev_append
          (List.init instance.Instance.machines.(u) (fun _ -> u))
          acc)
      members []
    |> List.rev |> Array.of_list
  in
  if Array.length machine_owners = 0 then
    invalid_arg "Coalition_sim.create: coalition owns no machine";
  (* Related machines: carry over the members' machine speeds, flattened in
     the same member-ascending order as [machine_owners]. *)
  let speeds =
    match instance.Instance.speeds with
    | None -> None
    | Some _ ->
        Some
          (Shapley.Coalition.fold
             (fun u acc ->
               Array.to_list (Instance.speeds_of_org instance u) :: acc)
             members []
          |> List.rev |> List.concat |> Array.of_list)
  in
  (* The driver lays machines out org-contiguously ascending; a coalition
     keeps the member orgs' blocks in the same order, so a global machine id
     maps to (member prefix count) + (slot within the owner's block). *)
  let nglobal = Array.fold_left ( + ) 0 instance.Instance.machines in
  let local_of_global = Array.make nglobal (-1) in
  let next_local = ref 0 and next_global = ref 0 in
  for u = 0 to norgs - 1 do
    let c = instance.Instance.machines.(u) in
    if Shapley.Coalition.mem members u then begin
      for s = 0 to c - 1 do
        local_of_global.(!next_global + s) <- !next_local + s
      done;
      next_local := !next_local + c
    end;
    next_global := !next_global + c
  done;
  {
    members;
    cluster = Cluster.create ?speeds ?max_restarts ~machine_owners ~norgs ();
    trackers = Array.init norgs (fun _ -> Utility.Tracker.create ());
    backlog = Queue.create ();
    faults = Queue.create ();
    local_of_global;
    pending = Instant.create ~norgs;
    now = 0;
  }

let members t = t.members
let now t = t.now

let add_release t (job : Job.t) =
  if not (Shapley.Coalition.mem t.members job.Job.org) then
    invalid_arg "Coalition_sim.add_release: job of a non-member";
  Queue.add job t.backlog

let add_fault t (ev : Faults.Event.timed) =
  let g = Faults.Event.machine ev.Faults.Event.event in
  if g < 0 || g >= Array.length t.local_of_global then
    invalid_arg "Coalition_sim.add_fault: machine id out of range";
  let m = t.local_of_global.(g) in
  if m >= 0 then
    let event =
      match ev.Faults.Event.event with
      | Faults.Event.Fail _ -> Faults.Event.Fail m
      | Faults.Event.Recover _ -> Faults.Event.Recover m
    in
    Queue.add { ev with Faults.Event.event } t.faults

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Stdlib.min a b)

let next_event t =
  let release =
    match Queue.peek_opt t.backlog with
    | Some (j : Job.t) -> Some (Stdlib.max j.Job.release t.now)
    | None -> None
  in
  let fault =
    match Queue.peek_opt t.faults with
    | Some f -> Some (Stdlib.max f.Faults.Event.time t.now)
    | None -> None
  in
  min_opt (min_opt release fault) (Cluster.next_completion t.cluster)

let step_releases_and_completions t ~time =
  if time < t.now then invalid_arg "Coalition_sim: time moved backwards";
  t.now <- time;
  let rec drain_releases () =
    match Queue.peek_opt t.backlog with
    | Some (j : Job.t) when j.Job.release <= time ->
        ignore (Queue.pop t.backlog);
        Cluster.release t.cluster j;
        drain_releases ()
    | Some _ | None -> ()
  in
  drain_releases ();
  let rec drain_completions () =
    match Cluster.pop_completion_le t.cluster time with
    | Some c ->
        Utility.Tracker.on_complete
          t.trackers.(c.Cluster.job.Job.org)
          ~key:c.Cluster.job.Job.index
          ~size:(c.Cluster.finish - c.Cluster.start);
        drain_completions ()
    | None -> ()
  in
  drain_completions ();
  (* Faults strictly after completions: a job finishing at [time] beats a
     failure at [time]; and before the scheduling round: a machine down at
     [time] hosts nothing, a recovered one is usable immediately. *)
  let rec drain_faults () =
    match Queue.peek_opt t.faults with
    | Some f when f.Faults.Event.time <= time ->
        ignore (Queue.pop t.faults);
        (match f.Faults.Event.event with
        | Faults.Event.Fail m -> (
            match Cluster.fail_machine t.cluster ~time:f.Faults.Event.time m with
            | Some k ->
                (* The killed piece vanishes from ψsp (Theorem 4.1). *)
                Utility.Tracker.on_abort
                  t.trackers.(k.Cluster.k_job.Job.org)
                  ~key:k.Cluster.k_job.Job.index
            | None -> ())
        | Faults.Event.Recover m ->
            ignore (Cluster.recover_machine t.cluster m));
        drain_faults ()
    | Some _ | None -> ()
  in
  drain_faults ()

let schedule_round t ~time ~select =
  while Cluster.free_count t.cluster > 0 && Cluster.has_waiting t.cluster do
    let org = select t ~time in
    let placement = Cluster.start_front t.cluster ~org ~time () in
    Utility.Tracker.on_start t.trackers.(org)
      ~key:placement.Schedule.job.Job.index ~start:time;
    Instant.bump t.pending ~time ~org
  done

let advance_to t ~time ~select =
  let rec go () =
    match next_event t with
    | Some tau when tau <= time ->
        step_releases_and_completions t ~time:tau;
        schedule_round t ~time:tau ~select;
        go ()
    | Some _ | None -> t.now <- Stdlib.max t.now time
  in
  go ()

let value_scaled t ~at =
  Shapley.Coalition.fold
    (fun u acc -> acc + Utility.Tracker.value_scaled t.trackers.(u) ~at)
    t.members 0

let utility_scaled t ~org ~at = Utility.Tracker.value_scaled t.trackers.(org) ~at
let pending t = t.pending
let waiting_orgs t = Cluster.waiting_orgs t.cluster

let front_release t ~org =
  Option.map (fun (j : Job.t) -> j.Job.release) (Cluster.front t.cluster org)
let has_waiting t = Cluster.has_waiting t.cluster
let free_count t = Cluster.free_count t.cluster

let completed_parts t ~at =
  Shapley.Coalition.fold
    (fun u acc -> acc + Utility.Tracker.parts t.trackers.(u) ~at)
    t.members 0
