type t = { counts : int array; mutable stamp : int }

let create ~norgs = { counts = Array.make norgs 0; stamp = min_int }

let refresh t ~time =
  if time <> t.stamp then begin
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.stamp <- time
  end

let bump t ~time ~org =
  refresh t ~time;
  t.counts.(org) <- t.counts.(org) + 1

let get t ~time ~org =
  refresh t ~time;
  t.counts.(org)
