(** Exponentially-decayed variants of the history-based policies.

    Motivation: both FAIRSHARE's usage counter and DIRECTCONTR's
    contribution estimate grow without bound, so a surplus earned long ago
    dominates current behaviour on long traces (one mechanism behind the
    Table 2 degradation).  Production fair-share schedulers (Maui, SLURM)
    decay usage with a half-life for exactly this reason.  These variants
    are this reproduction's ablation of that design choice — they are not
    in the paper.

    - {!fair_share}: the consumption-to-share ratio uses an exponentially
      decayed CPU-time integral instead of the raw total.
    - {!direct_contr}: serves the organization with the largest difference
      between decayed leaky integrals of "machine-parts contributed" (work
      executed on its machines) and "parts consumed" (its jobs' executed
      work), both in raw CPU·time units — a rate-based reading of Fig. 9. *)

val fair_share : half_life:float -> Policy.maker
(** Named ["fairshare-hl<half_life>"].  @raise Invalid_argument if
    [half_life <= 0]. *)

val direct_contr : half_life:float -> Policy.maker
(** Named ["directcontr-hl<half_life>"]. *)
