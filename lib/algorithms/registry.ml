let fixed : (string * Policy.maker) list =
  [
    ("ref", Reference.reference);
    ("ref-generic-psp", Ref_generic.ref_psp);
    ("ref-banzhaf", Reference.banzhaf);
    ("rand-15", Rand.rand15);
    ("rand-75", Rand.rand75);
    ("directcontr", Direct_contr.direct_contr);
    ("fairshare", Fair_share.fair_share);
    ("utfairshare", Fair_share.ut_fair_share);
    ("currfairshare", Fair_share.curr_fair_share);
    ("roundrobin", Baselines.round_robin);
    ("fifo", Baselines.fifo);
    ("random", Baselines.random_greedy);
    ("longest-queue", Baselines.longest_queue);
    ("fairshare-decay", Decayed.fair_share ~half_life:5_000.);
    ("directcontr-decay", Decayed.direct_contr ~half_life:5_000.);
  ]

let find name =
  match List.assoc_opt name fixed with
  | Some maker -> Some maker
  | None -> (
      (* Estimator specs double as algorithm names ("rand-N",
         "rand:EPS,CONF") so service configs and WAL records round-trip
         through the registry unchanged. *)
      match Estimator.of_string name with
      | Ok (Estimator.Fixed _ as spec) | Ok (Estimator.Sampled _ as spec) ->
          Some (Estimator.maker spec)
      | Ok Estimator.Exact | Error _ -> None)

let find_exn name =
  match find name with
  | Some maker -> maker
  | None -> invalid_arg (Printf.sprintf "unknown algorithm %S" name)

let all_names = List.map fst fixed

let evaluated_set =
  List.filter
    (fun (name, _) ->
      List.mem name
        [
          "roundrobin"; "rand-15"; "directcontr"; "fairshare"; "utfairshare";
          "currfairshare";
        ])
    fixed
