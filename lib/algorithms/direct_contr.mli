(** DIRECTCONTR (Fig. 9): the paper's practical heuristic.

    Instead of measuring an organization's contribution through
    sub-coalition values (exponential), estimate it {e directly}: whenever a
    unit part of anyone's job executes on a machine owned by organization
    [O], credit [O]'s contribution φ̃ with the ψsp-value of that part; the
    utility ψ of the part's {e owner} grows by the same amount.  Waiting
    jobs are then served in decreasing order of (φ̃ − ψ): the organization
    that has lent the most CPU·time relative to what it consumed goes first.

    Machines are drawn at random among the free ones (the paper shuffles the
    processor order), which randomizes whose machine — and hence whose
    contribution — hosts a job when several are free.

    This implementation tracks both quantities with the exact incremental
    ψsp tracker instead of the pseudo-code's per-event incremental sums
    (same algorithm, exact arithmetic; see DESIGN.md on the swapped update
    lines in the paper's figure). *)

val direct_contr : Policy.maker

val make : ?name:string -> unit -> Policy.maker
(** Same policy under a custom display name (for ablations). *)
