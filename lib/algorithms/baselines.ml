(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

let fifo_front_release cluster u =
  match Cluster.front cluster u with
  | Some j -> j.Job.release
  | None -> max_int

let fifo_select cluster =
  match Cluster.waiting_orgs cluster with
  | [] -> invalid_arg "fifo: nothing waiting"
  | orgs ->
      List.fold_left
        (fun best u ->
          if fifo_front_release cluster u < fifo_front_release cluster best
          then u
          else best)
        (List.hd orgs) (List.tl orgs)

let fifo _instance ~rng:_ =
  Policy.make ~name:"fifo"
    ~select:(fun view ~time:_ -> fifo_select view.Policy.cluster)
    ()

let fifo_select_sim sim ~time:_ =
  match Coalition_sim.waiting_orgs sim with
  | [] -> invalid_arg "fifo_select_sim: nothing waiting"
  | orgs ->
      let release u =
        Option.value (Coalition_sim.front_release sim ~org:u) ~default:max_int
      in
      List.fold_left
        (fun best u -> if release u < release best then u else best)
        (List.hd orgs) (List.tl orgs)

let random_greedy _instance ~rng =
  let rng = Fstats.Rng.split rng in
  Policy.make ~name:"random"
    ~select:(fun view ~time:_ ->
      let orgs = Array.of_list (Cluster.waiting_orgs view.Policy.cluster) in
      Fstats.Rng.choose rng orgs)
    ()

let round_robin instance ~rng:_ =
  let k = Instance.organizations instance in
  let cursor = ref (k - 1) in
  Policy.make ~name:"roundrobin"
    ~select:(fun view ~time:_ ->
      let rec go tried u =
        if tried > k then invalid_arg "roundrobin: nothing waiting"
        else if Cluster.waiting_count view.Policy.cluster u > 0 then begin
          cursor := u;
          u
        end
        else go (tried + 1) ((u + 1) mod k)
      in
      go 0 ((!cursor + 1) mod k))
    ()

let longest_queue _instance ~rng:_ =
  Policy.make ~name:"longest-queue"
    ~select:(fun view ~time:_ ->
      match Cluster.waiting_orgs view.Policy.cluster with
      | [] -> invalid_arg "longest-queue: nothing waiting"
      | orgs ->
          List.fold_left
            (fun best u ->
              if
                Cluster.waiting_count view.Policy.cluster u
                > Cluster.waiting_count view.Policy.cluster best
              then u
              else best)
            (List.hd orgs) (List.tl orgs))
    ()
