(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type view = {
  instance : Instance.t;
  cluster : Cluster.t;
  trackers : Utility.Tracker.t array;
}

type t = {
  name : string;
  select : view -> time:int -> int;
  pick_machine : view -> time:int -> org:int -> int option;
  on_release : view -> time:int -> Job.t -> unit;
  on_start : view -> time:int -> Schedule.placement -> unit;
  on_complete : view -> time:int -> Cluster.completion -> unit;
  on_kill : view -> time:int -> Cluster.kill -> unit;
  on_fault : view -> time:int -> Faults.Event.t -> unit;
  on_endow : view -> time:int -> Federation.Event.t -> unit;
  stats : (unit -> Kernel.Stats.t) option;
}

let nop3 _ ~time:_ _ = ()

let make ~name ?pick_machine ?on_release ?on_start ?on_complete ?on_kill
    ?on_fault ?on_endow ?stats ~select () =
  {
    name;
    select;
    pick_machine =
      Option.value pick_machine ~default:(fun _ ~time:_ ~org:_ -> None);
    on_release = Option.value on_release ~default:nop3;
    on_start = Option.value on_start ~default:nop3;
    on_complete = Option.value on_complete ~default:nop3;
    on_kill = Option.value on_kill ~default:nop3;
    on_fault = Option.value on_fault ~default:nop3;
    on_endow = Option.value on_endow ~default:nop3;
    stats;
  }

type maker = Instance.t -> rng:Fstats.Rng.t -> t

let utility_plus_pending_scaled view ~pending ~org ~time =
  Utility.Tracker.value_scaled view.trackers.(org) ~at:time
  + (2 * Instant.get pending ~time ~org)
