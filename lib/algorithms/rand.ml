(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core
module Coalition = Shapley.Coalition

let make_policy ~name ~n instance ~rng =
  let rng = Fstats.Rng.split rng in
  let k = Instance.organizations instance in
  let plan = Shapley.Sample.plan ~rng ~players:k ~n in
  let has_machines mask =
    Coalition.fold (fun u acc -> acc + instance.Instance.machines.(u)) mask 0
    > 0
  in
  (* One simplified schedule per distinct sampled coalition (machine-less
     coalitions have value 0 and need no simulation). *)
  let sims : (Coalition.t, Coalition_sim.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun mask ->
      if mask <> Coalition.empty && has_machines mask then
        Hashtbl.replace sims mask
          (Coalition_sim.create ~instance ~members:mask ()))
    plan.Shapley.Sample.distinct;
  let pending = Instant.create ~norgs:k in
  let phi_stamp = ref min_int in
  let phi_memo = ref [||] in
  let phi2 ~time =
    if !phi_stamp <> time then begin
      Hashtbl.iter
        (fun _ sim ->
          Coalition_sim.advance_to sim ~time ~select:Baselines.fifo_select_sim)
        sims;
      let v2 mask =
        match Hashtbl.find_opt sims mask with
        | Some sim -> float_of_int (Coalition_sim.value_scaled sim ~at:time)
        | None -> 0.
      in
      phi_memo := Shapley.Sample.estimate_from_plan plan ~value:v2;
      phi_stamp := time
    end;
    !phi_memo
  in
  Policy.make ~name
    ~on_release:(fun _view ~time:_ job ->
      Hashtbl.iter
        (fun mask sim ->
          if Coalition.mem mask job.Job.org then
            Coalition_sim.add_release sim job)
        sims)
    ~on_fault:(fun _view ~time event ->
      (* Coalition_sim drops events for machines its members do not own. *)
      Hashtbl.iter
        (fun _mask sim -> Coalition_sim.add_fault sim { Faults.Event.time; event })
        sims)
    ~on_start:(fun _view ~time p ->
      Instant.bump pending ~time ~org:p.Schedule.job.Job.org)
    ~select:(fun view ~time ->
      let phi2 = phi2 ~time in
      let score u =
        phi2.(u)
        -. float_of_int
             (Policy.utility_plus_pending_scaled view ~pending ~org:u ~time)
      in
      match Cluster.waiting_orgs view.Policy.cluster with
      | [] -> invalid_arg "rand: nothing waiting"
      | first :: rest ->
          List.fold_left
            (fun best u -> if score u > score best then u else best)
            first rest)
    ()

let rand ~n instance ~rng =
  if n < 1 then invalid_arg "Rand.rand: n < 1";
  make_policy ~name:(Printf.sprintf "rand-%d" n) ~n instance ~rng

let rand15 instance ~rng = rand ~n:15 instance ~rng
let rand75 instance ~rng = rand ~n:75 instance ~rng

let rand_with_guarantee ~epsilon ~confidence instance ~rng =
  let k = Instance.organizations instance in
  let n = Shapley.Sample.sample_count ~players:k ~epsilon ~confidence in
  make_policy ~name:(Printf.sprintf "rand-fpras-%d" n) ~n instance ~rng
