(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core
module Coalition = Shapley.Coalition

(* Same cross-instant coalition-value cache as REF (DESIGN.md §13): between
   two events of a sim its value 2·v(t) is an exact integer polynomial, so a
   query at a new instant only re-folds the member trackers when the sim's
   epoch moved — otherwise it evaluates the cached coefficients,
   bit-identically. *)
type cached_sim = {
  sim : Coalition_sim.t;
  mutable c_epoch : int;  (* epoch at extraction; min_int = never *)
  mutable c_a : int;
  mutable c_b : int;
  mutable c_c : int;
}

let m_vcache_hits = Obs.Metrics.counter "rand.vcache_hits"
let m_vcache_misses = Obs.Metrics.counter "rand.vcache_misses"

(* How many joining orders each live sampled policy drew — the n of its
   ε-guarantee, observable next to fair.estimator_budget in a scrape. *)
let m_orders_sampled = Obs.Metrics.counter "rand.orders_sampled"

let cached_v2 cs ~time =
  let e = Coalition_sim.epoch cs.sim in
  if cs.c_epoch = e then Obs.Metrics.incr m_vcache_hits
  else begin
    Obs.Metrics.incr m_vcache_misses;
    let a, b, c = Coalition_sim.value_coeffs cs.sim in
    cs.c_a <- a;
    cs.c_b <- b;
    cs.c_c <- c;
    cs.c_epoch <- e
  end;
  ((cs.c_a * time) + cs.c_b) * time + cs.c_c

(* Live FPRAS budget under endowment churn: n joining orders over the
   construction-time player count k.  Orgs can only leave and rejoin, never
   exceed k, and Hoeffding's n is non-decreasing in the player count, so
   the construction-time plan stays a valid ε/δ budget for every live org
   set k(t) ⊆ k; this gauge re-derives and publishes the count the live
   set actually requires, so a scrape shows the (smaller) budget k(t)
   would need next to the planned one. *)
let m_live_budget = Obs.Metrics.gauge "rand.live_budget"

let make_policy ?(value_cache = true) ?guarantee ~name ~n instance ~rng =
  let rng = Fstats.Rng.split rng in
  let k = Instance.organizations instance in
  let federated = Federation.Mode.enabled () in
  let plan = Shapley.Sample.plan ~rng ~players:k ~n in
  Obs.Metrics.add m_orders_sampled n;
  let has_machines mask =
    Coalition.fold (fun u acc -> acc + instance.Instance.machines.(u)) mask 0
    > 0
  in
  (* One simplified schedule per distinct sampled coalition.  Statically a
     machine-less coalition has value 0 and needs no simulation; under
     endowment churn any coalition can be lent machines later, so every
     distinct sampled mask gets a (federated) simulator. *)
  let sims : (Coalition.t, cached_sim) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun mask ->
      if mask <> Coalition.empty && (federated || has_machines mask) then
        Hashtbl.replace sims mask
          {
            sim = Coalition_sim.create ~federated ~instance ~members:mask ();
            c_epoch = min_int;
            c_a = 0;
            c_b = 0;
            c_c = 0;
          })
    plan.Shapley.Sample.distinct;
  let live_orgs = ref k in
  let publish_live_budget () =
    match guarantee with
    | Some (epsilon, confidence) when federated && !live_orgs > 0 ->
        Obs.Metrics.set m_live_budget
          (float_of_int
             (Shapley.Sample.sample_count ~players:!live_orgs ~epsilon
                ~confidence))
    | _ -> ()
  in
  publish_live_budget ();
  let pending = Instant.create ~norgs:k in
  let phi_stamp = ref min_int in
  let phi_memo = ref [||] in
  let phi2 ~time =
    if !phi_stamp <> time then begin
      Hashtbl.iter
        (fun _ cs ->
          Coalition_sim.advance_to cs.sim ~time
            ~select:Baselines.fifo_select_sim)
        sims;
      let v2 mask =
        match Hashtbl.find_opt sims mask with
        | Some cs ->
            float_of_int
              (if value_cache then cached_v2 cs ~time
               else Coalition_sim.value_scaled cs.sim ~at:time)
        | None -> 0.
      in
      phi_memo := Shapley.Sample.estimate_from_plan plan ~value:v2;
      phi_stamp := time
    end;
    !phi_memo
  in
  Policy.make ~name
    ~on_release:(fun _view ~time:_ job ->
      Hashtbl.iter
        (fun mask cs ->
          if Coalition.mem mask job.Job.org then
            Coalition_sim.add_release cs.sim job)
        sims)
    ~on_fault:(fun _view ~time event ->
      (* Coalition_sim drops events for machines its members do not own. *)
      Hashtbl.iter
        (fun _mask cs ->
          Coalition_sim.add_fault cs.sim { Faults.Event.time; event })
        sims)
    ~on_endow:(fun _view ~time event ->
      if federated then begin
        (match event with
        | Federation.Event.Join _ -> incr live_orgs
        | Federation.Event.Leave _ -> decr live_orgs
        | Federation.Event.Lend _ | Federation.Event.Reclaim _ -> ());
        publish_live_budget ();
        (* The event can retire machines mid-instant; drop the φ memo so
           the estimate re-derives after the sims replay it. *)
        phi_stamp := min_int;
        Hashtbl.iter
          (fun _mask cs ->
            Coalition_sim.add_endow cs.sim { Federation.Event.time; event })
          sims
      end)
    ~on_start:(fun _view ~time p ->
      Instant.bump pending ~time ~org:p.Schedule.job.Job.org)
    ~select:(fun view ~time ->
      let phi2 = phi2 ~time in
      let score u =
        phi2.(u)
        -. float_of_int
             (Policy.utility_plus_pending_scaled view ~pending ~org:u ~time)
      in
      match Cluster.waiting_orgs view.Policy.cluster with
      | [] -> invalid_arg "rand: nothing waiting"
      | first :: rest ->
          List.fold_left
            (fun best u -> if score u > score best then u else best)
            first rest)
    ()

let rand ?value_cache ~n instance ~rng =
  if n < 1 then invalid_arg "Rand.rand: n < 1";
  make_policy ?value_cache ~name:(Printf.sprintf "rand-%d" n) ~n instance ~rng

let rand15 instance ~rng = rand ~n:15 instance ~rng
let rand75 instance ~rng = rand ~n:75 instance ~rng

let rand_with_guarantee ?value_cache ~epsilon ~confidence instance ~rng =
  let k = Instance.organizations instance in
  let n = Shapley.Sample.sample_count ~players:k ~epsilon ~confidence in
  make_policy ?value_cache ~guarantee:(epsilon, confidence)
    ~name:(Printf.sprintf "rand-fpras-%d" n)
    ~n instance ~rng
