(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

let default_shares instance =
  Array.init (Instance.organizations instance) (fun u ->
      Instance.share instance u)

let argmin_ratio ~waiting ~consumption ~shares =
  match waiting with
  | [] -> invalid_arg "fair_share: nothing waiting"
  | first :: rest ->
      let ratio u = consumption u /. shares.(u) in
      List.fold_left (fun best u -> if ratio u < ratio best then u else best)
        first rest

(* FAIRSHARE consumption: completed work + elapsed-and-committed slots of
   running jobs.  Tracked incrementally: [sum_starts] is Σ start over
   running jobs, so elapsed(t) = running·t − sum_starts; the committed
   current slot adds +1 per running job, which also makes consumption react
   within a single instant (see the selection convention in DESIGN.md). *)
type usage = { mutable completed : int; mutable sum_starts : int }

let fair_share_impl ~name ~shares_of instance ~rng:_ =
  let shares = shares_of instance in
  Array.iter
    (fun s -> if s <= 0. then invalid_arg "fair_share: non-positive share")
    shares;
  let k = Instance.organizations instance in
  let usage = Array.init k (fun _ -> { completed = 0; sum_starts = 0 }) in
  let consumption view ~time u =
    let running = Cluster.running_count view.Policy.cluster u in
    float_of_int
      (usage.(u).completed
      + (running * (time + 1))
      - usage.(u).sum_starts)
  in
  Policy.make ~name
    ~on_start:(fun _view ~time:_ p ->
      let u = p.Schedule.job.Job.org in
      usage.(u).sum_starts <- usage.(u).sum_starts + p.Schedule.start)
    ~on_complete:(fun _view ~time:_ c ->
      let u = c.Cluster.job.Job.org in
      usage.(u).completed <- usage.(u).completed + (c.Cluster.finish - c.Cluster.start);
      usage.(u).sum_starts <- usage.(u).sum_starts - c.Cluster.start)
    ~on_kill:(fun _view ~time:_ k ->
      (* A killed attempt is consumption all the same: the machine was
         occupied for [k_wasted] slots (unlike ψsp, FAIRSHARE charges CPU
         time whether or not it produced anything). *)
      let u = k.Cluster.k_job.Job.org in
      usage.(u).completed <- usage.(u).completed + k.Cluster.k_wasted;
      usage.(u).sum_starts <- usage.(u).sum_starts - k.Cluster.k_start)
    ~select:(fun view ~time ->
      argmin_ratio
        ~waiting:(Cluster.waiting_orgs view.Policy.cluster)
        ~consumption:(consumption view ~time)
        ~shares)
    ()

let fair_share instance ~rng =
  fair_share_impl ~name:"fairshare" ~shares_of:default_shares instance ~rng

let fair_share_with_shares ~shares instance ~rng =
  fair_share_impl ~name:"fairshare-custom" ~shares_of:(fun _ -> shares)
    instance ~rng

let ut_fair_share instance ~rng:_ =
  let shares = default_shares instance in
  let pending = Instant.create ~norgs:(Instance.organizations instance) in
  Policy.make ~name:"utfairshare"
    ~on_start:(fun _view ~time p ->
      Instant.bump pending ~time ~org:p.Schedule.job.Job.org)
    ~select:(fun view ~time ->
      argmin_ratio
        ~waiting:(Cluster.waiting_orgs view.Policy.cluster)
        ~consumption:(fun u ->
          float_of_int
            (Policy.utility_plus_pending_scaled view ~pending ~org:u ~time))
        ~shares)
    ()

let curr_fair_share instance ~rng:_ =
  let shares = default_shares instance in
  Policy.make ~name:"currfairshare"
    ~select:(fun view ~time:_ ->
      argmin_ratio
        ~waiting:(Cluster.waiting_orgs view.Policy.cluster)
        ~consumption:(fun u ->
          float_of_int (Cluster.running_count view.Policy.cluster u))
        ~shares)
    ()
