(** Simple greedy policies.

    These are not in the paper's evaluated set (except ROUNDROBIN) but serve
    as baselines and as "arbitrary greedy algorithms" for the Section 6
    utilization experiments: Theorem 6.2 holds for {e every} greedy policy,
    so the tests exercise several. *)

val fifo : Policy.maker
(** First-come-first-served across organizations: start the waiting front
    job with the earliest release time (ties: lowest organization id).  Also
    the in-coalition rule RAND uses for its simplified schedules. *)

val fifo_select_sim : Coalition_sim.t -> time:int -> int
(** The same FCFS rule as a {!Coalition_sim} selection callback. *)

val random_greedy : Policy.maker
(** Uniformly random waiting organization — an adversarially arbitrary
    greedy policy. *)

val round_robin : Policy.maker
(** The paper's ROUNDROBIN: cycle through organizations, skipping the ones
    with empty queues. *)

val longest_queue : Policy.maker
(** Serve the organization with the most waiting jobs (a deliberately
    unfair-by-design stress baseline). *)
