(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** A self-contained greedy simulation of one coalition's schedule.

    Algorithm REF (Fig. 1) keeps a schedule σ[C'] for {e every} sub-coalition
    C' of the grand coalition; Algorithm RAND (Fig. 6) keeps simplified
    schedules for the sampled coalitions.  Both are instances of this
    simulator: a cluster restricted to the members' machines, fed only the
    members' jobs, advanced lazily and in event order, with exact ψsp
    tracking per member.

    The simulator does not choose jobs itself: [advance_to] takes the
    selection rule as a callback, so REF can plug its recursive
    Shapley-based rule and RAND a plain FIFO.  The callback may consult
    other simulators' values — REF advances all 2^k−1 simulators in global
    event order (size-ascending at equal instants), which keeps every
    sub-coalition's value current when a larger coalition decides. *)

type t

val create :
  ?max_restarts:int ->
  ?federated:bool ->
  instance:Instance.t ->
  members:Shapley.Coalition.t ->
  unit -> t
(** Machines of the member organizations only; machine owners preserved.
    [max_restarts] bounds per-job resubmissions after kills, as in
    {!Core.Cluster.create}.

    [federated] (default [false]) prepares the simulator for a live
    endowment stream: it hosts the {e full} global machine universe under
    identity machine ids, with non-members' machines absent, and replays
    events handed over via {!add_endow} against its own copy of the
    consortium ownership state — so the machine set backing the coalition's
    value tracks the {e current} owners, not the static endowment.  A
    federated simulator is valid even for coalitions that own no machine
    right now (a lend can endow them later).
    @raise Invalid_argument if the coalition is empty, or (non-federated)
    owns no machine. *)

val members : t -> Shapley.Coalition.t
val now : t -> int
(** Latest instant this simulator has been advanced to. *)

val stats : t -> Kernel.Stats.t
(** This simulator's kernel counters (instants, completions, rounds, …). *)

val add_release : t -> Job.t -> unit
(** Hand over a job owned by a member.  Jobs must arrive in non-decreasing
    release order, and never earlier than [now] (the driver delivers
    releases at their release instants). *)

val add_fault : t -> Faults.Event.timed -> unit
(** Hand over a machine fault, identified by {e global} (grand-coalition)
    machine id; it is translated to this coalition's local machine layout,
    and silently dropped when the machine belongs to a non-member.  Faults
    must arrive in non-decreasing time order, never earlier than [now].
    When processed, a failure kills the hosted job (its ψsp piece is
    retracted — lost work counts for nobody) and resubmits it at the head
    of the owner's queue; a recovery returns the machine to the free
    pool.  @raise Invalid_argument on an out-of-range machine id. *)

val add_endow : t -> Federation.Event.timed -> unit
(** Hand over an endowment event (global machine ids; no translation —
    federated simulators host the full universe).  Events must arrive in
    non-decreasing time order, never earlier than [now]; the kernel applies
    them between faults and releases.  Machines transferred to a member
    appear in the free pool; machines transferred away or retired vanish,
    killing their running job exactly like a fault (the ψsp piece is
    retracted); a member org leaving is suspended, rejoining resumed.
    @raise Invalid_argument if the simulator was not created [~federated]. *)

val federated : t -> bool

val visible_machines : t -> int
(** Machines currently usable by this coalition (present in its cluster) —
    in static mode a constant, in federated mode k(t)-dependent. *)

val next_event : t -> int option
(** Earliest pending event: the front of the release backlog, the first
    pending fault, or the first completion — the times at which new
    scheduling decisions can arise. *)

val advance_to : t -> time:int -> select:(t -> time:int -> int) -> unit
(** Process all events at instants [<= time] in order: move due backlog jobs
    into the waiting queues, pop completions, and greedily start jobs
    ([select] returns the member organization whose front job to start; it
    is called only while a machine is free and someone waits). *)

val step_releases_and_completions : t -> time:int -> unit
(** Lockstep building block for REF: process arrivals and completions at
    exactly [time] without scheduling (the caller runs the scheduling round
    for all coalitions afterwards, size-ascending).  [time] must not
    precede [now]. *)

val schedule_round : t -> time:int -> select:(t -> time:int -> int) -> unit
(** Greedy scheduling at [time]: repeatedly start the [select]ed
    organization's front job while a machine is free and jobs wait. *)

(** {2 Values} *)

val value_scaled : t -> at:int -> int
(** [2·v(C, at)]: twice the coalition's total ψsp.  [at] must be [>= now]
    and at most [now]'s next completion instant for exactness; REF and RAND
    query at the current round instant. *)

val utility_scaled : t -> org:int -> at:int -> int
(** [2·ψsp(org)] within this coalition's schedule. *)

val value_coeffs : t -> int * int * int
(** [(a, b, c)] with [value_scaled ~at = a·at² + b·at + c] for every [at]
    at or after this simulator's latest event — the coalition value between
    state changes is an exact integer polynomial in time.  Valid until
    {!epoch} changes. *)

val epoch : t -> int
(** Monotone counter of tracker state changes (starts, completions, kills)
    inside this simulator.  An unchanged epoch guarantees {!value_coeffs}
    is still valid: the basis of the cross-instant coalition-value cache
    (DESIGN.md §13). *)

val pending : t -> Instant.t
(** Started-this-instant counters (the selection convention). *)

val waiting_orgs : t -> int list

(** Release time of the organization's waiting front job, if any. *)
val front_release : t -> org:int -> int option
val has_waiting : t -> bool
val free_count : t -> int
val completed_parts : t -> at:int -> int
(** Executed unit parts across members (RAND's [finPerCoal]). *)
