(** Algorithm RAND (Fig. 6): Monte-Carlo estimation of the Shapley
    contributions.

    [Prepare] draws N random joining orders of the organizations; for every
    prefix coalition appearing in an order (de-duplicated) the algorithm
    maintains a simplified greedy schedule (FCFS here — by Proposition 5.4
    any greedy rule yields the same coalition value when all jobs are
    unit-size, which is the regime with the FPRAS guarantee of
    Theorem 5.6).  The contribution estimate of organization [u] is the
    average of [v(prefix ∪ u) − v(prefix)] over the sampled orders, and jobs
    are served by largest (φ̂ − ψ), as in REF.

    For workloads with arbitrary job sizes this is the paper's RAND
    {e heuristic} (evaluated with N = 15 and N = 75 in Tables 1–2). *)

val rand : ?value_cache:bool -> n:int -> Policy.maker
(** N sampled orders; the policy is named ["rand-N"].  [value_cache]
    (default [true]) enables the cross-instant coalition-value cache
    (DESIGN.md §13) — bit-identical on or off, counters
    [rand.vcache_hits]/[rand.vcache_misses] in {!Obs.Metrics}. *)

val rand15 : Policy.maker
val rand75 : Policy.maker

val rand_with_guarantee :
  ?value_cache:bool -> epsilon:float -> confidence:float -> Policy.maker
(** N from the Hoeffding bound of Theorem 5.6 (can be large: k²/ε²·ln(k/(1−λ))). *)
