(* Contribution-estimator specification: which engine computes the Shapley
   contributions a fair policy schedules by.  Parsed from CLI flags
   (`--estimator`), service configs and WAL records, so the textual form is
   part of the persistent interface and must stay stable. *)

type t =
  | Exact
  | Fixed of int
  | Sampled of { epsilon : float; confidence : float }

let to_string = function
  | Exact -> "exact"
  | Fixed n -> Printf.sprintf "rand-%d" n
  | Sampled { epsilon; confidence } ->
      Printf.sprintf "rand:%g,%g" epsilon confidence

let algorithm_name = function
  | Exact -> "ref"
  | (Fixed _ | Sampled _) as t -> to_string t

let spec_syntax = "expected \"exact\", \"rand-N\" or \"rand:EPS,CONF\""

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match s with
  | "exact" | "ref" -> Ok Exact
  | _ when String.length s >= 5 && String.sub s 0 5 = "rand:" -> (
      let body = String.sub s 5 (String.length s - 5) in
      match String.split_on_char ',' body with
      | [ "" ] -> err "estimator %S: missing EPS,CONF after \"rand:\"" s
      | [ _ ] ->
          err "estimator %S: missing confidence (expected \"rand:EPS,CONF\")" s
      | [ eps; conf ] -> (
          match (float_of_string_opt eps, float_of_string_opt conf) with
          | None, _ -> err "estimator %S: EPS is not a number" s
          | _, None -> err "estimator %S: CONF is not a number" s
          | Some epsilon, Some confidence ->
              if not (epsilon > 0.) then
                err "estimator %S: EPS must be > 0" s
              else if not (confidence > 0. && confidence < 1.) then
                err
                  "estimator %S: CONF must be strictly between 0 and 1 (it is \
                   the success probability of the Hoeffding guarantee)"
                  s
              else Ok (Sampled { epsilon; confidence }))
      | _ -> err "estimator %S: too many commas (%s)" s spec_syntax)
  | _ -> (
      match String.split_on_char '-' s with
      | [ "rand"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Ok (Fixed n)
          | Some _ -> err "estimator %S: sample count must be positive" s
          | None -> err "estimator %S: %s" s spec_syntax)
      | _ -> err "unknown estimator %S: %s" s spec_syntax)

let of_string_exn s =
  match of_string s with Ok t -> t | Error m -> invalid_arg m

let sample_count t ~players =
  match t with
  | Exact -> None
  | Fixed n -> Some n
  | Sampled { epsilon; confidence } ->
      Some (Shapley.Sample.sample_count ~players ~epsilon ~confidence)

let maker ?workers ?value_cache = function
  | Exact -> Reference.make ?workers ?value_cache ()
  | Fixed n -> Rand.rand ?value_cache ~n
  | Sampled { epsilon; confidence } ->
      fun instance ~rng ->
        let p =
          Rand.rand_with_guarantee ?value_cache ~epsilon ~confidence instance
            ~rng
        in
        (* Keep the registry-resolvable spec as the policy name so service
           configs round-trip through the WAL unchanged (rand_with_guarantee
           bakes the resolved sample count into its name). *)
        { p with Policy.name = Printf.sprintf "rand:%g,%g" epsilon confidence }
