(** Name → policy registry used by the CLI, the benches and the tests. *)

val find : string -> Policy.maker option
(** Lookup by name; ["rand-N"] accepts any positive N, and
    ["rand:EPS,CONF"] any valid {!Estimator} spec (Hoeffding-driven sample
    count), so estimator specs are first-class algorithm names — service
    configs and WAL records store them verbatim. *)

val find_exn : string -> Policy.maker

val all_names : string list
(** Canonical names, evaluation set first (REF, RAND variants, DIRECTCONTR,
    FAIRSHARE, UTFAIRSHARE, CURRFAIRSHARE, ROUNDROBIN), then extra
    baselines. *)

val evaluated_set : (string * Policy.maker) list
(** The paper's Table 1/2 line-up (excluding REF, which is the reference the
    others are compared against): RAND-15, DIRECTCONTR, FAIRSHARE,
    UTFAIRSHARE, CURRFAIRSHARE, ROUNDROBIN. *)
