(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core
module Coalition = Shapley.Coalition

type gsim = {
  mask : Coalition.t;
  cluster : Cluster.t;
  local_of_global : int array;  (* global machine id -> local id, or -1 *)
  engine : Job.t Kernel.Engine.t;
  model : Job.t Kernel.Engine.model;
  (* The scheduling round needs the whole [state] (it reads every smaller
     coalition's schedule), which does not exist yet when the sims are
     built; wired after construction. *)
  mutable round_body : time:int -> int;
}

type state = {
  k : int;
  workers : int;
  grand : Coalition.t;
  utility : Utility.Functions.t;
  sims : gsim option array;  (* indexed by mask; None for grand/machine-less *)
  by_size : int array array;
      (* by_size.(s-1): simulated masks of size s, ascending — grouped at
         construction so the staged loops iterate without list allocation *)
  all_masks : int array;  (* simulated masks, ascending *)
}

let machine_owners_of instance mask =
  Coalition.fold
    (fun u acc ->
      List.rev_append
        (List.init instance.Instance.machines.(u) (fun _ -> u))
        acc)
    mask []
  |> List.rev |> Array.of_list

(* Same org-contiguous global->local machine translation as Coalition_sim. *)
let local_of_global_of instance mask =
  let k = Instance.organizations instance in
  let nglobal = Array.fold_left ( + ) 0 instance.Instance.machines in
  let tbl = Array.make nglobal (-1) in
  let next_local = ref 0 and next_global = ref 0 in
  for u = 0 to k - 1 do
    let c = instance.Instance.machines.(u) in
    if Coalition.mem mask u then begin
      for s = 0 to c - 1 do
        tbl.(!next_global + s) <- !next_local + s
      done;
      next_local := !next_local + c
    end;
    next_global := !next_global + c
  done;
  tbl

let create_state ~utility ?workers ?max_restarts instance =
  let workers =
    match workers with
    | Some w -> Stdlib.max 1 w
    | None -> Core.Domain_pool.default_workers ()
  in
  let k = Instance.organizations instance in
  if k > 8 then
    invalid_arg
      "Ref_generic: the general algorithm recomputes utilities over 3^k \
       schedules; use k <= 8 (or Reference for psp)";
  let grand = Coalition.grand ~players:k in
  let sims = Array.make (grand + 1) None in
  for mask = 1 to grand - 1 do
    let owners = machine_owners_of instance mask in
    if Array.length owners > 0 then begin
      let rec sim =
        {
          mask;
          cluster =
            Cluster.create ~record:true ?max_restarts ~machine_owners:owners
              ~norgs:k ();
          local_of_global = local_of_global_of instance mask;
          engine =
            Kernel.Engine.create
              ~release_time:(fun (j : Job.t) -> j.Job.release)
              [||];
          model =
            {
              Kernel.Engine.next_completion =
                (fun () -> Cluster.next_completion sim.cluster);
              pop_completion =
                (fun ~time ->
                  Option.is_some (Cluster.pop_completion_le sim.cluster time));
              apply_fault =
                (fun ~time ev ->
                  (* The cluster excises a killed attempt's placement, so
                     the recorded schedule — and hence the generic ψ
                     evaluation — only ever counts surviving work. *)
                  match ev with
                  | Faults.Event.Fail m -> (
                      match Cluster.fail_machine sim.cluster ~time m with
                      | Some kill ->
                          Kernel.Engine.Killed
                            {
                              wasted = kill.Cluster.k_wasted;
                              resubmitted = kill.Cluster.k_resubmitted;
                            }
                      | None -> Kernel.Engine.Applied)
                  | Faults.Event.Recover m ->
                      ignore (Cluster.recover_machine sim.cluster m);
                      Kernel.Engine.Applied);
              (* The generic REF engine predates the federation layer and
                 keeps the static consortium. *)
              apply_endow = (fun ~time:_ _ -> Kernel.Engine.no_endow_effect);
              admit = (fun ~time:_ job -> Cluster.release sim.cluster job);
              round = (fun ~time -> sim.round_body ~time);
            };
          round_body =
            (fun ~time:_ ->
              invalid_arg "Ref_generic: scheduling round before wiring");
        }
      in
      sims.(mask) <- Some sim
    end
  done;
  let masks_of_size s =
    let acc = ref [] in
    for mask = grand - 1 downto 1 do
      if sims.(mask) <> None && Coalition.size mask = s then acc := mask :: !acc
    done;
    Array.of_list !acc
  in
  let by_size = Array.init k (fun i -> masks_of_size (i + 1)) in
  let all_masks = Array.concat (Array.to_list by_size) in
  Array.sort Stdlib.compare all_masks;
  { k; workers; grand; utility; sims; by_size; all_masks }

let schedule_of_sim sim =
  Schedule.of_placements
    ~machines:(Cluster.machines sim.cluster)
    (Cluster.placements sim.cluster)

let empty_schedule = Schedule.of_placements ~machines:1 []

(* ψ(C, u, t) read off the coalition's recorded schedule. *)
let psi_of st ~schedule_of ~mask ~org ~at =
  ignore st;
  st.utility.Utility.Functions.eval (schedule_of mask) ~org ~at

(* UpdateVals (Fig. 1): Shapley contributions of the members of [mask] from
   the current values of all its sub-coalition schedules. *)
let contributions st ~schedule_of ~mask ~at =
  let size_mask = Coalition.size mask in
  let phi = Array.make st.k 0. in
  Coalition.iter_subsets mask (fun sub ->
      if sub <> Coalition.empty then begin
        let w =
          Numeric.Combinatorics.shapley_weight_float ~players:size_mask
            ~subset:(Coalition.size sub - 1)
        in
        let v c =
          Coalition.fold
            (fun u acc -> acc +. psi_of st ~schedule_of ~mask:c ~org:u ~at)
            c 0.
        in
        let v_sub = v sub in
        Coalition.iter_members
          (fun u ->
            phi.(u) <- phi.(u) +. (w *. (v_sub -. v (Coalition.remove sub u))))
          sub
      end);
  phi

(* Distance (Fig. 1): the L1 gap between contributions and utilities if the
   front job of [org] were started now.  Δψ is evaluated at [at+1]: at [at]
   a just-started job has no executed part yet (see DESIGN.md). *)
let distance st ~schedule_of ~mask ~phi ~at ~org ~front_start_added =
  let size_mask = Coalition.size mask in
  let delta =
    st.utility.Utility.Functions.eval front_start_added ~org ~at:(at + 1)
    -. psi_of st ~schedule_of ~mask ~org ~at:(at + 1)
  in
  let spread = delta /. float_of_int size_mask in
  Coalition.fold
    (fun u acc ->
      let psi_u = psi_of st ~schedule_of ~mask ~org:u ~at in
      let adjusted_psi = if u = org then psi_u +. delta else psi_u in
      acc +. Float.abs (phi.(u) +. spread -. adjusted_psi))
    mask 0.

let with_tentative_start schedule (job : Job.t) ~at =
  (* The tentative machine id does not matter for envy-free utilities; use
     machine 0 (always valid: the schedule has >= 1 machine). *)
  Schedule.of_placements
    ~machines:(Schedule.machines schedule)
    (Schedule.placement ~job ~start:at ~machine:0 ()
     :: Schedule.placements schedule)

let select_in st ~schedule_of ~mask ~waiting ~front ~at =
  let phi = contributions st ~schedule_of ~mask ~at in
  let score u =
    match front u with
    | None -> infinity
    | Some job ->
        let tentative = with_tentative_start (schedule_of mask) job ~at in
        distance st ~schedule_of ~mask ~phi ~at ~org:u
          ~front_start_added:tentative
  in
  match List.map (fun u -> (score u, u)) waiting with
  | [] -> invalid_arg "ref-generic: nothing waiting"
  | first :: rest ->
      snd
        (List.fold_left
           (fun (bs, bu) (s, u) -> if s < bs then (s, u) else (bs, bu))
           first rest)

(* The per-sim scheduling round reads every smaller coalition's schedule
   through the shared [state], so it can only be built once the state
   exists. *)
let wire_rounds st =
  let schedule_of mask =
    if mask = Coalition.empty then empty_schedule
    else
      match st.sims.(mask) with
      | Some sim -> schedule_of_sim sim
      | None -> empty_schedule
  in
  Array.iter
    (fun mask ->
      match st.sims.(mask) with
      | None -> ()
      | Some sim ->
          sim.round_body <-
            (fun ~time ->
              let n = ref 0 in
              while
                Cluster.free_count sim.cluster > 0
                && Cluster.has_waiting sim.cluster
              do
                let org =
                  select_in st ~schedule_of ~mask:sim.mask
                    ~waiting:(Cluster.waiting_orgs sim.cluster)
                    ~front:(Cluster.front sim.cluster)
                    ~at:time
                in
                ignore (Cluster.start_front sim.cluster ~org ~time ());
                incr n
              done;
              !n))
    st.all_masks

(* Lockstep advance of all sub-coalition simulations, exactly like
   [Reference.advance_all] but with recorded schedules and the generic
   selection rule.  Each sim is a {!Kernel.Engine} instance; the
   arrival/completion phases ([drain_events]) are independent across sims
   and the scheduling round of a coalition only reads the schedules of
   strictly smaller ones (frozen within the instant), so both run as
   parallel stages over the persistent pool when [workers > 1] — with the
   same size-ascending staging as {!Reference}, and bit-identical results
   for every worker count.  The k <= 8 cap keeps the O(2^k) earliest-event
   fold trivial (<= 255 sims), so unlike {!Reference} no event heap is
   needed here. *)
let advance_all st ~time =
  let earliest () =
    Array.fold_left
      (fun acc mask ->
        match st.sims.(mask) with
        | None -> acc
        | Some sim -> (
            match Kernel.Engine.next_event sim.engine sim.model with
            | None -> acc
            | Some tau -> Stdlib.min acc tau))
      max_int st.all_masks
  in
  let iter_masks masks f =
    let task i =
      match st.sims.(masks.(i)) with None -> () | Some sim -> f sim
    in
    if st.workers > 1 then
      (* Chunk 1 with a sequential cutoff: generic-utility round tasks are
         heavy (schedule re-evaluation per decision) but few, so per-task
         claiming balances load while tiny stages stay inline. *)
      Core.Domain_pool.parallel_chunks ~workers:st.workers ~chunk:1 ~cutoff:2
        task (Array.length masks)
    else
      for i = 0 to Array.length masks - 1 do
        task i
      done
  in
  let rec loop () =
    let tau = earliest () in
    if tau <= time then begin
      iter_masks st.all_masks (fun sim ->
          Kernel.Engine.drain_events sim.engine sim.model ~time:tau);
      for s = 1 to st.k - 1 do
        iter_masks st.by_size.(s - 1) (fun sim ->
            Kernel.Engine.run_round sim.engine sim.model ~time:tau)
      done;
      loop ()
    end
  in
  loop ()

let make ~utility ?name ?workers ?max_restarts () instance ~rng:_ =
  let st = create_state ~utility ?workers ?max_restarts instance in
  wire_rounds st;
  let name =
    Option.value name
      ~default:("ref-generic-" ^ utility.Utility.Functions.name)
  in
  Policy.make ~name
    ~on_release:(fun _view ~time:_ job ->
      Array.iter
        (fun mask ->
          if Coalition.mem mask job.Job.org then
            match st.sims.(mask) with
            | Some sim -> Kernel.Engine.push_job sim.engine job
            | None -> ())
        st.all_masks)
    ~on_fault:(fun _view ~time event ->
      Array.iter
        (fun mask ->
          match st.sims.(mask) with
          | Some sim ->
              let g = Faults.Event.machine event in
              let m = sim.local_of_global.(g) in
              if m >= 0 then
                let event =
                  match event with
                  | Faults.Event.Fail _ -> Faults.Event.Fail m
                  | Faults.Event.Recover _ -> Faults.Event.Recover m
                in
                Kernel.Engine.push_fault sim.engine { Faults.Event.time; event }
          | None -> ())
        st.all_masks)
    ~stats:(fun () ->
      Kernel.Stats.total
        (Array.fold_left
           (fun acc mask ->
             match st.sims.(mask) with
             | Some sim -> Kernel.Engine.stats sim.engine :: acc
             | None -> acc)
           [] st.all_masks))
    ~select:(fun view ~time ->
      advance_all st ~time;
      let schedule_of mask =
        if mask = st.grand then
          Schedule.of_placements
            ~machines:(Cluster.machines view.Policy.cluster)
            (Cluster.placements view.Policy.cluster)
        else if mask = Coalition.empty then empty_schedule
        else
          match st.sims.(mask) with
          | Some sim -> schedule_of_sim sim
          | None -> empty_schedule
      in
      select_in st ~schedule_of ~mask:st.grand
        ~waiting:(Cluster.waiting_orgs view.Policy.cluster)
        ~front:(Cluster.front view.Policy.cluster)
        ~at:time)
    ()

let make_with utility_of ?name ?workers ?max_restarts () instance ~rng =
  make ~utility:(utility_of instance) ?name ?workers ?max_restarts () instance
    ~rng

let ref_psp instance ~rng =
  make ~utility:Utility.Functions.psp ~name:"ref-generic-psp" () instance ~rng
