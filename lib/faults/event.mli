(** Machine fault events.

    The unit of failure is one machine of the (grand-coalition) cluster,
    identified by its global machine id — the index into the driver's
    flattened, organization-contiguous machine array.  A [Fail] kills
    whatever job the machine is running (jobs are non-preemptible, so the
    work is lost and the job restarts from scratch) and removes the machine
    from the free pool; a [Recover] returns it.

    A fault {e trace} is a time-ordered stream of such events; the
    generators in {!Model} produce them and the simulation driver merges
    them into its event loop. *)

type t = Fail of int | Recover of int

type timed = { time : int; event : t }

val machine : t -> int

val compare_timed : timed -> timed -> int
(** Orders by time, then machine id, then [Fail] before [Recover] — a total
    deterministic order for sorting generator output. *)

val pp : Format.formatter -> t -> unit
val pp_timed : Format.formatter -> timed -> unit

val validate : machines:int -> timed list -> (unit, string) result
(** Checks that times are non-negative and non-decreasing and that every
    machine id is in [0, machines).  The driver rejects invalid traces with
    [Invalid_argument] carrying this message. *)
