(** Failure models: compile a seeded stochastic description (or a scripted
    outage list) into a time-ordered fault-event trace.

    The stochastic model is the classic per-machine renewal process of
    reliability theory: machine [m] stays up for a duration drawn from the
    MTBF distribution, goes down (killing its running job), stays down for
    a duration drawn from the MTTR distribution, and repeats until the
    horizon.  Exponential lifetimes give the memoryless baseline; Weibull
    with [shape < 1] models infant-mortality-heavy clusters and
    [shape > 1] wear-out.  All randomness comes from the provided
    {!Fstats.Rng.t}, so traces are reproducible. *)

type dist =
  | Exponential of { mean : float }
  | Weibull of { shape : float; scale : float }
  | Fixed of float  (** deterministic duration, for tests *)

val mean_of : dist -> float
(** Rough central scale of the distribution (exact for exponential/fixed,
    the scale parameter for Weibull) — used only for reporting. *)

val sample : dist -> Fstats.Rng.t -> float
(** @raise Invalid_argument on non-positive means/durations. *)

type outage = { machine : int; down_at : int; up_at : int }

val scripted : outage list -> Event.timed list
(** Deterministic trace from explicit outage windows, sorted into canonical
    event order.  @raise Invalid_argument on negative or empty windows. *)

val random :
  rng:Fstats.Rng.t ->
  machines:int ->
  horizon:int ->
  mtbf:dist ->
  mttr:dist ->
  unit ->
  Event.timed list
(** Per-machine alternating renewal trace over [0, horizon).  Durations are
    rounded to at least 1 time unit; events at or after the horizon are
    dropped (a machine whose recovery falls past the horizon stays down).
    Machines are processed in id order from the single [rng], so the trace
    is a deterministic function of the seed. *)

val spec_of_string : string -> (dist * dist, string) result
(** Parses the CLI fault spec [mtbf:MEAN,mttr:MEAN[,dist:exp|weibull|fixed]
    [,shape:S]] into [(mtbf, mttr)] distributions.  [dist] defaults to
    [exp]; [shape] (Weibull only) defaults to 1.5.  The error string is a
    one-line diagnostic ready for the CLI's exit-2 contract. *)

val script_of_lines : string list -> (Event.timed list, string) result
(** Parses scripted-outage lines — [MACHINE DOWN_AT UP_AT] per line,
    whitespace-separated, [#] starts a comment, blank lines ignored — into
    a canonical sorted trace. *)

val load_script : string -> (Event.timed list, string) result
(** {!script_of_lines} over a file; the error string carries the path. *)

val count_kind : Event.timed list -> int * int
(** [(failures, recoveries)] in the trace. *)

val downtime : machines:int -> horizon:int -> Event.timed list -> int
(** Total machine-time units lost to outages in [0, horizon) — the capacity
    actually removed by the trace, used by the churn experiment to report
    effective utilization. *)
