type t = Fail of int | Recover of int

type timed = { time : int; event : t }

let machine = function Fail m -> m | Recover m -> m

let tag = function Fail _ -> 0 | Recover _ -> 1

let compare_timed a b =
  match Stdlib.compare a.time b.time with
  | 0 -> (
      match Stdlib.compare (machine a.event) (machine b.event) with
      | 0 -> Stdlib.compare (tag a.event) (tag b.event)
      | c -> c)
  | c -> c

let pp ppf = function
  | Fail m -> Format.fprintf ppf "fail(m%d)" m
  | Recover m -> Format.fprintf ppf "recover(m%d)" m

let pp_timed ppf e = Format.fprintf ppf "t=%d %a" e.time pp e.event

let validate ~machines trace =
  let rec go last = function
    | [] -> Ok ()
    | e :: rest ->
        let m = machine e.event in
        if e.time < 0 then
          Error (Format.asprintf "%a: negative time" pp_timed e)
        else if e.time < last then
          Error (Format.asprintf "%a: out of order (previous at %d)" pp_timed e last)
        else if m < 0 || m >= machines then
          Error
            (Format.asprintf "%a: machine out of range [0, %d)" pp_timed e
               machines)
        else go e.time rest
  in
  go 0 trace
