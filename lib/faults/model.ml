type dist =
  | Exponential of { mean : float }
  | Weibull of { shape : float; scale : float }
  | Fixed of float

let mean_of = function
  | Exponential { mean } -> mean
  | Fixed d -> d
  | Weibull { shape = _; scale } ->
      (* Γ(1 + 1/shape) via Lanczos would be overkill here: the churn sweep
         only needs a rough scale for reporting, and for the shapes used in
         reliability modelling (0.5–3) the scale itself is within a small
         factor of the mean. *)
      scale

let sample dist rng =
  match dist with
  | Exponential { mean } ->
      if mean <= 0. then invalid_arg "Faults.Model: exponential mean <= 0";
      Fstats.Dist.exponential rng ~rate:(1. /. mean)
  | Weibull { shape; scale } -> Fstats.Dist.weibull rng ~shape ~scale
  | Fixed d ->
      if d <= 0. then invalid_arg "Faults.Model: fixed duration <= 0";
      d

type outage = { machine : int; down_at : int; up_at : int }

let scripted outages =
  List.concat_map
    (fun o ->
      if o.down_at < 0 then invalid_arg "Faults.Model.scripted: down_at < 0";
      if o.up_at <= o.down_at then
        invalid_arg "Faults.Model.scripted: up_at <= down_at";
      if o.machine < 0 then invalid_arg "Faults.Model.scripted: machine < 0";
      [
        { Event.time = o.down_at; event = Event.Fail o.machine };
        { Event.time = o.up_at; event = Event.Recover o.machine };
      ])
    outages
  |> List.sort Event.compare_timed

(* One machine's alternating up/down renewal process, truncated at the
   horizon.  Durations are rounded to at least one time unit so that a
   failure and its recovery never collapse onto the same instant. *)
let machine_events ~rng ~horizon ~mtbf ~mttr m =
  let duration dist = Stdlib.max 1 (int_of_float (Float.round (sample dist rng))) in
  let rec go t acc =
    let fail_t = t + duration mtbf in
    if fail_t >= horizon then acc
    else
      let recover_t = fail_t + duration mttr in
      let acc = { Event.time = fail_t; event = Event.Fail m } :: acc in
      if recover_t >= horizon then acc
      else go recover_t ({ Event.time = recover_t; event = Event.Recover m } :: acc)
  in
  go 0 []

let random ~rng ~machines ~horizon ~mtbf ~mttr () =
  if machines < 1 then invalid_arg "Faults.Model.random: machines < 1";
  if horizon < 1 then invalid_arg "Faults.Model.random: horizon < 1";
  let acc = ref [] in
  for m = 0 to machines - 1 do
    acc := List.rev_append (machine_events ~rng ~horizon ~mtbf ~mttr m) !acc
  done;
  List.sort Event.compare_timed !acc

let count_kind trace =
  List.fold_left
    (fun (f, r) e ->
      match e.Event.event with
      | Event.Fail _ -> (f + 1, r)
      | Event.Recover _ -> (f, r + 1))
    (0, 0) trace

let downtime ~machines ~horizon trace =
  let down_since = Array.make machines (-1) in
  let total = ref 0 in
  List.iter
    (fun e ->
      let m = Event.machine e.Event.event in
      match e.Event.event with
      | Event.Fail _ -> if down_since.(m) < 0 then down_since.(m) <- e.Event.time
      | Event.Recover _ ->
          if down_since.(m) >= 0 then begin
            total := !total + (Stdlib.min e.Event.time horizon - down_since.(m));
            down_since.(m) <- -1
          end)
    trace;
  Array.iter
    (fun since -> if since >= 0 then total := !total + Stdlib.max 0 (horizon - since))
    down_since;
  !total
