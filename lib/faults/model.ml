type dist =
  | Exponential of { mean : float }
  | Weibull of { shape : float; scale : float }
  | Fixed of float

let mean_of = function
  | Exponential { mean } -> mean
  | Fixed d -> d
  | Weibull { shape = _; scale } ->
      (* Γ(1 + 1/shape) via Lanczos would be overkill here: the churn sweep
         only needs a rough scale for reporting, and for the shapes used in
         reliability modelling (0.5–3) the scale itself is within a small
         factor of the mean. *)
      scale

let sample dist rng =
  match dist with
  | Exponential { mean } ->
      if mean <= 0. then invalid_arg "Faults.Model: exponential mean <= 0";
      Fstats.Dist.exponential rng ~rate:(1. /. mean)
  | Weibull { shape; scale } -> Fstats.Dist.weibull rng ~shape ~scale
  | Fixed d ->
      if d <= 0. then invalid_arg "Faults.Model: fixed duration <= 0";
      d

type outage = { machine : int; down_at : int; up_at : int }

let scripted outages =
  List.concat_map
    (fun o ->
      if o.down_at < 0 then invalid_arg "Faults.Model.scripted: down_at < 0";
      if o.up_at <= o.down_at then
        invalid_arg "Faults.Model.scripted: up_at <= down_at";
      if o.machine < 0 then invalid_arg "Faults.Model.scripted: machine < 0";
      [
        { Event.time = o.down_at; event = Event.Fail o.machine };
        { Event.time = o.up_at; event = Event.Recover o.machine };
      ])
    outages
  |> List.sort Event.compare_timed

(* One machine's alternating up/down renewal process, truncated at the
   horizon.  Durations are rounded to at least one time unit so that a
   failure and its recovery never collapse onto the same instant. *)
let machine_events ~rng ~horizon ~mtbf ~mttr m =
  let duration dist = Stdlib.max 1 (int_of_float (Float.round (sample dist rng))) in
  let rec go t acc =
    let fail_t = t + duration mtbf in
    if fail_t >= horizon then acc
    else
      let recover_t = fail_t + duration mttr in
      let acc = { Event.time = fail_t; event = Event.Fail m } :: acc in
      if recover_t >= horizon then acc
      else go recover_t ({ Event.time = recover_t; event = Event.Recover m } :: acc)
  in
  go 0 []

let random ~rng ~machines ~horizon ~mtbf ~mttr () =
  if machines < 1 then invalid_arg "Faults.Model.random: machines < 1";
  if horizon < 1 then invalid_arg "Faults.Model.random: horizon < 1";
  let acc = ref [] in
  for m = 0 to machines - 1 do
    acc := List.rev_append (machine_events ~rng ~horizon ~mtbf ~mttr m) !acc
  done;
  List.sort Event.compare_timed !acc

(* --- CLI-facing parsers ------------------------------------------------ *)

let spec_of_string s =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let fields =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let* pairs =
    List.fold_left
      (fun acc field ->
        let* acc = acc in
        match String.index_opt field ':' with
        | None ->
            err "fault spec field %S is not key:value (expected \
                 mtbf:MEAN,mttr:MEAN[,dist:exp|weibull|fixed][,shape:S])"
              field
        | Some i ->
            let key = String.sub field 0 i in
            let value = String.sub field (i + 1) (String.length field - i - 1) in
            Ok ((key, value) :: acc))
      (Ok []) fields
  in
  let lookup key = List.assoc_opt key pairs in
  let* () =
    match
      List.find_opt
        (fun (k, _) -> not (List.mem k [ "mtbf"; "mttr"; "dist"; "shape" ]))
        pairs
    with
    | Some (k, _) -> err "unknown fault spec key %S" k
    | None -> Ok ()
  in
  let mean key =
    match lookup key with
    | None -> err "fault spec is missing %s:MEAN" key
    | Some v -> (
        match float_of_string_opt v with
        | Some m when m > 0. -> Ok m
        | Some _ | None ->
            err "fault spec %s must be a positive number, got %S" key v)
  in
  let* mtbf_mean = mean "mtbf" in
  let* mttr_mean = mean "mttr" in
  let* shape =
    match lookup "shape" with
    | None -> Ok 1.5
    | Some v -> (
        match float_of_string_opt v with
        | Some sh when sh > 0. -> Ok sh
        | Some _ | None ->
            err "fault spec shape must be a positive number, got %S" v)
  in
  let* make_dist =
    match Option.value (lookup "dist") ~default:"exp" with
    | "exp" -> Ok (fun m -> Exponential { mean = m })
    | "weibull" -> Ok (fun m -> Weibull { shape; scale = m })
    | "fixed" -> Ok (fun m -> Fixed m)
    | d -> err "fault spec dist must be exp, weibull or fixed, got %S" d
  in
  Ok (make_dist mtbf_mean, make_dist mttr_mean)

let script_of_lines lines =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let* outages =
    List.fold_left
      (fun acc (lineno, line) ->
        let* acc = acc in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun t -> String.trim t <> "")
        with
        | [] -> Ok acc
        | [ m; down; up ] -> (
            match
              (int_of_string_opt m, int_of_string_opt down, int_of_string_opt up)
            with
            | Some machine, Some down_at, Some up_at
              when machine >= 0 && down_at >= 0 && up_at > down_at ->
                Ok ({ machine; down_at; up_at } :: acc)
            | _ ->
                err "line %d: expected MACHINE DOWN_AT UP_AT with 0 <= \
                     machine, 0 <= down_at < up_at, got %S"
                  lineno (String.trim line))
        | _ ->
            err "line %d: expected MACHINE DOWN_AT UP_AT, got %S" lineno
              (String.trim line))
      (Ok [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  Ok (scripted (List.rev outages))

let load_script path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Result.map_error
        (fun msg -> Printf.sprintf "%s: %s" path msg)
        (script_of_lines (List.rev !lines))

let count_kind trace =
  List.fold_left
    (fun (f, r) e ->
      match e.Event.event with
      | Event.Fail _ -> (f + 1, r)
      | Event.Recover _ -> (f, r + 1))
    (0, 0) trace

let downtime ~machines ~horizon trace =
  let down_since = Array.make machines (-1) in
  let total = ref 0 in
  List.iter
    (fun e ->
      let m = Event.machine e.Event.event in
      match e.Event.event with
      | Event.Fail _ -> if down_since.(m) < 0 then down_since.(m) <- e.Event.time
      | Event.Recover _ ->
          if down_since.(m) >= 0 then begin
            total := !total + (Stdlib.min e.Event.time horizon - down_since.(m));
            down_since.(m) <- -1
          end)
    trace;
  Array.iter
    (fun since -> if since >= 0 then total := !total + Stdlib.max 0 (horizon - since))
    down_since;
  !total
