type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count
let mean t = if t.count = 0 then 0. else t.mean
let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let of_list l =
  let t = create () in
  List.iter (add t) l;
  t

let percentile l ~p =
  if l = [] then invalid_arg "Summary.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  let a = Array.of_list l in
  Array.sort Stdlib.compare a;
  let n = Array.length a in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (n - 1) (lo + 1) in
  let frac = rank -. Float.floor rank in
  a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median l = percentile l ~p:50.

let pp ppf t =
  Format.fprintf ppf "%.4g ± %.4g (n=%d)" (mean t) (stddev t) t.count
