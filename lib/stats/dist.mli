(** Probability distributions used by the synthetic workload models.

    The Parallel Workload Archive traces the paper evaluates on are
    characterised in the literature by heavy-tailed service times (log-normal
    / Weibull fits), bursty per-user arrivals, and Zipf-like imbalance across
    users.  These samplers are the building blocks of
    {!Workload.Synthetic}. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with mean [1/rate]. @raise Invalid_argument if [rate <= 0]. *)

val uniform : Rng.t -> lo:float -> hi:float -> float

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian via Box–Muller. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** exp(Normal(mu, sigma)); median [exp mu]. *)

val weibull : Rng.t -> shape:float -> scale:float -> float

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto type I: support [scale, inf), P(X > x) = (scale/x)^shape. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success; mean [(1-p)/p].
    @raise Invalid_argument unless [0 < p <= 1]. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson counts (Knuth's algorithm for small means, normal approximation
    above 500 to avoid underflow). *)

val zipf_weights : n:int -> s:float -> float array
(** [zipf_weights ~n ~s] is the normalized Zipf probability vector
    [p_i ∝ 1/(i+1)^s] for ranks [0..n-1]. *)

val categorical : Rng.t -> float array -> int
(** Samples an index proportionally to the (non-negative) weights. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** Zipf-distributed rank in [0, n); rank 0 is the most likely. *)

val split_integer : total:int -> weights:float array -> int array
(** Splits [total] indivisible units into [Array.length weights] shares
    proportional to [weights], each share at least 1 (requires
    [total >= Array.length weights]).  Used to endow organizations with
    machines following Zipf or uniform weights.  Deterministic: the rounding
    residue goes to the largest fractional remainders, ties broken by index.
    @raise Invalid_argument if [weights] is empty or [total] too small. *)
