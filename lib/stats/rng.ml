type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66d |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; a lxor (b lsl 7) |]

let int t bound = Random.State.int t bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo"
  else lo + Random.State.int t (hi - lo + 1)

let float t bound = Random.State.float t bound
let unit_float t = Random.State.float t 1.0
let bool t = Random.State.bool t

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t l =
  let a = Array.of_list l in
  shuffle_in_place t a;
  Array.to_list a

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array"
  else a.(Random.State.int t (Array.length a))

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a
