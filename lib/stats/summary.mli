(** Streaming and batch summary statistics for experiment reporting.

    Tables 1 and 2 of the paper report the mean and standard deviation of the
    unfairness ratio over 100 random sub-trace instances; this module
    provides the accumulator used to produce those cells, plus batch
    percentile helpers for the figures. *)

type t
(** Mutable accumulator (Welford's online algorithm: numerically stable mean
    and variance in one pass). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 on an empty accumulator. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** [infinity] on an empty accumulator. *)

val max : t -> float
(** [neg_infinity] on an empty accumulator. *)

val of_list : float list -> t

val percentile : float list -> p:float -> float
(** Batch percentile with linear interpolation, [p] in [0,100].
    @raise Invalid_argument on an empty list or [p] outside [0,100]. *)

val median : float list -> float

val pp : Format.formatter -> t -> unit
(** Prints ["mean ± std (n=count)"]. *)
