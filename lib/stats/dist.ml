let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate <= 0";
  let u = 1. -. Rng.unit_float rng in
  -.log u /. rate

let uniform rng ~lo ~hi = lo +. Rng.float rng (hi -. lo)

let normal rng ~mean ~std =
  let u1 = 1. -. Rng.unit_float rng and u2 = Rng.unit_float rng in
  mean +. (std *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~std:sigma)

let weibull rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Dist.weibull";
  let u = 1. -. Rng.unit_float rng in
  scale *. ((-.log u) ** (1. /. shape))

let pareto rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Dist.pareto";
  let u = 1. -. Rng.unit_float rng in
  scale /. (u ** (1. /. shape))

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric";
  if p = 1. then 0
  else
    let u = 1. -. Rng.unit_float rng in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let poisson rng ~mean =
  if mean < 0. then invalid_arg "Dist.poisson"
  else if mean = 0. then 0
  else if mean > 500. then
    (* Normal approximation with continuity correction. *)
    Stdlib.max 0
      (int_of_float (Float.round (normal rng ~mean ~std:(sqrt mean))))
  else
    let l = exp (-.mean) in
    let rec go k p =
      let p = p *. Rng.unit_float rng in
      if p <= l then k else go (k + 1) p
    in
    go 0 1.0

let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf_weights";
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. w in
  Array.map (fun x -> x /. total) w

let categorical rng weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Dist.categorical: weights sum to 0";
  let x = Rng.float rng total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.

let zipf rng ~n ~s = categorical rng (zipf_weights ~n ~s)

let split_integer ~total ~weights =
  let parts = Array.length weights in
  if parts = 0 then invalid_arg "Dist.split_integer: no weights";
  if total < parts then invalid_arg "Dist.split_integer: total < parts";
  let wsum = Array.fold_left ( +. ) 0. weights in
  if wsum <= 0. then invalid_arg "Dist.split_integer: weights sum to 0";
  (* Everyone gets 1 machine; the remaining units follow the weights. *)
  let spare = total - parts in
  let ideal = Array.map (fun w -> float_of_int spare *. w /. wsum) weights in
  let shares = Array.map (fun x -> int_of_float (Float.floor x)) ideal in
  let assigned = Array.fold_left ( + ) 0 shares in
  let remainders =
    Array.mapi (fun i x -> (x -. Float.floor x, i)) ideal |> Array.to_list
  in
  let by_remainder =
    List.sort (fun (r1, i1) (r2, i2) ->
        match Stdlib.compare r2 r1 with 0 -> Stdlib.compare i1 i2 | c -> c)
      remainders
  in
  let rec distribute left = function
    | _ when left = 0 -> ()
    | [] -> ()
    | (_, i) :: rest ->
        shares.(i) <- shares.(i) + 1;
        distribute (left - 1) rest
  in
  distribute (spare - assigned) by_remainder;
  Array.map (fun s -> s + 1) shares
