(** Deterministic, splittable random number generation.

    Every stochastic component of the reproduction (workload generators, the
    RAND algorithm's coalition sampling, DIRECTCONTR's processor shuffle)
    takes an explicit generator so experiments are reproducible from a single
    seed.  [split] derives an independent child stream, so adding a consumer
    never perturbs the draws seen by existing ones. *)

type t

val create : seed:int -> t
(** A fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of
    subsequent draws from [t] (derived from one draw of [t]). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val unit_float : t -> float
(** Uniform in [0, 1), never exactly 1. *)

val bool : t -> bool

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val shuffle : t -> 'a list -> 'a list

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)
