(** A complete scheduling problem: organizations with their machine
    endowments plus the job stream, and the evaluation horizon.

    Instances are immutable and validated on construction; every simulation
    component (driver, coalition simulators, fairness evaluation) consumes
    this one representation. *)

type t = private {
  machines : int array;
      (** [machines.(u)] = number of processors contributed by organization
          [u]; all entries >= 1 in the paper's model (an organization with no
          machines is allowed here, for adversarial gadgets). *)
  jobs : Job.t array;
      (** Sorted by {!Job.compare_release}; per-organization indices are
          contiguous from 0 in release order. *)
  horizon : int;
      (** Evaluation end time [t_end]; utilities and fairness are measured at
          this instant.  Jobs released at or after the horizon are rejected
          by {!make}. *)
  speeds : float array option;
      (** Related-machines extension (Section 2): [speeds.(i)] is the speed
          of machine [i] in the canonical flattened order (organization 0's
          machines first).  A job of size [p] occupies a machine of speed
          [s] for [ceil (p / s)] time units.  [None] means identical
          machines (speed 1). *)
}

val make : machines:int array -> jobs:Job.t list -> horizon:int -> t
(** Identical machines.  Sorts and re-indexes jobs (per organization, FIFO
    by release with the original order as tie-break).
    @raise Invalid_argument if an organization id is out of range, a machine
    count is negative, every machine count is zero, the horizon is
    non-positive, or a job is released at or after the horizon. *)

val make_related :
  speeds:float array -> machines:int array -> jobs:Job.t list -> horizon:int -> t
(** Related machines: like {!make} with per-machine speeds in the canonical
    flattened order.
    @raise Invalid_argument additionally if [speeds] has the wrong length or
    a non-positive entry. *)

val machine_speed : t -> int -> float
(** Speed of a machine in the canonical flattened order (1.0 when
    identical). *)

val speeds_of_org : t -> int -> float array
(** The speeds of one organization's machines (all 1.0 when identical). *)

val organizations : t -> int
(** Number of organizations [k]. *)

val total_machines : t -> int
val job_count : t -> int

val jobs_of_org : t -> int -> Job.t list
(** In FIFO order. *)

val total_work : t -> int
(** Sum of processing times of all jobs. *)

val share : t -> int -> float
(** [share t u] = fraction of the global pool contributed by [u] — the
    static target share used by the FAIRSHARE family. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: k, machines, jobs, horizon. *)

val pp_detailed : Format.formatter -> t -> unit
(** Full listing, for debugging small instances. *)
