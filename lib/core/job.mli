(** Sequential jobs.

    A job is owned by exactly one organization and requires one processor for
    [size] consecutive time units.  The model is non-clairvoyant: scheduling
    algorithms must not inspect [size] before the job completes (the
    simulator enforces this structurally — policies only see jobs through
    queue fronts and completion notifications). *)

type t = {
  org : int;  (** owning organization, [0 <= org < k] *)
  index : int;  (** FIFO rank within the organization's stream *)
  user : int;  (** originating user in the source trace (metadata) *)
  release : int;  (** release time [r >= 0]; unknown to the system before *)
  size : int;  (** processing time [p >= 1] *)
}

val make : org:int -> index:int -> ?user:int -> release:int -> size:int -> unit -> t
(** @raise Invalid_argument if [release < 0], [size < 1], or [org < 0]. *)

val id : t -> int * int
(** [(org, index)] — unique within an instance. *)

val compare_release : t -> t -> int
(** Orders by release time, then organization, then index: the canonical
    event order of an instance. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
