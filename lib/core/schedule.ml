type placement = { job : Job.t; start : int; machine : int; duration : int }

let placement ?duration ~job ~start ~machine () =
  let duration = Option.value duration ~default:job.Job.size in
  if duration < 1 then invalid_arg "Schedule.placement: duration < 1";
  { job; start; machine; duration }
type t = {
  machines : int;
  placements : placement list; (* sorted *)
  killed : placement list; (* sorted; segments cut short by machine failures *)
}

let compare_placement a b =
  match Stdlib.compare a.start b.start with
  | 0 -> Stdlib.compare a.machine b.machine
  | c -> c

let of_placements ?(killed = []) ~machines pl =
  let check p =
    if p.machine < 0 || p.machine >= machines then
      invalid_arg "Schedule.of_placements: machine id out of range";
    if p.start < 0 then
      invalid_arg "Schedule.of_placements: negative start time"
  in
  List.iter check pl;
  List.iter check killed;
  {
    machines;
    placements = List.sort compare_placement pl;
    killed = List.sort compare_placement killed;
  }

let placements t = t.placements
let killed t = t.killed
let machines t = t.machines
let job_count t = List.length t.placements
let find t job = List.find_opt (fun p -> Job.equal p.job job) t.placements
let completion p = p.start + p.duration

let busy_time t ~upto =
  List.fold_left
    (fun acc p ->
      let slot_end = Stdlib.min (completion p) upto in
      acc + Stdlib.max 0 (slot_end - p.start))
    0 t.placements

let utilization t ~upto =
  if upto <= 0 || t.machines = 0 then 0.
  else float_of_int (busy_time t ~upto) /. float_of_int (t.machines * upto)

let wasted_time t ~upto =
  List.fold_left
    (fun acc p ->
      let slot_end = Stdlib.min (completion p) upto in
      acc + Stdlib.max 0 (slot_end - p.start))
    0 t.killed

let makespan t =
  List.fold_left (fun acc p -> Stdlib.max acc (completion p)) 0 t.placements

let check_feasible t =
  let by_machine = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let existing =
        Option.value (Hashtbl.find_opt by_machine p.machine) ~default:[]
      in
      Hashtbl.replace by_machine p.machine (p :: existing))
    t.placements;
  let release_violation =
    List.find_opt (fun p -> p.start < p.job.Job.release) t.placements
  in
  match release_violation with
  | Some p ->
      Error
        (Format.asprintf "%a starts at %d before release %d" Job.pp p.job
           p.start p.job.Job.release)
  | None ->
      let conflict = ref None in
      Hashtbl.iter
        (fun m pl ->
          let sorted = List.sort compare_placement pl in
          let rec go = function
            | a :: (b :: _ as rest) ->
                if completion a > b.start then
                  conflict :=
                    Some
                      (Format.asprintf
                         "machine %d runs %a and %a concurrently" m Job.pp
                         a.job Job.pp b.job)
                else go rest
            | [ _ ] | [] -> ()
          in
          go sorted)
        by_machine;
      (match !conflict with Some msg -> Error msg | None -> Ok ())

let check_fifo t =
  let by_org = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let org = p.job.Job.org in
      let existing = Option.value (Hashtbl.find_opt by_org org) ~default:[] in
      Hashtbl.replace by_org org (p :: existing))
    t.placements;
  let bad = ref None in
  Hashtbl.iter
    (fun org pl ->
      let sorted =
        List.sort
          (fun a b -> Stdlib.compare a.job.Job.index b.job.Job.index)
          pl
      in
      let rec go = function
        | a :: (b :: _ as rest) ->
            if a.start > b.start then
              bad :=
                Some
                  (Format.asprintf
                     "organization %d starts %a after %a (FIFO violation)"
                     org Job.pp a.job Job.pp b.job)
            else go rest
        | [ _ ] | [] -> ()
      in
      go sorted)
    by_org;
  match !bad with Some msg -> Error msg | None -> Ok ()

(* Greediness check by sweeping candidate times: a violation can only start
   at a release time or a completion time, so it suffices to check those
   instants (idleness and waiting status are constant between events). *)
let check_greedy t ~all_jobs ~upto =
  let events =
    List.concat
      [
        List.map (fun (j : Job.t) -> j.Job.release) all_jobs;
        List.map completion t.placements;
        [ 0 ];
      ]
    |> List.sort_uniq Stdlib.compare
    |> List.filter (fun e -> e < upto)
  in
  let busy_at time =
    List.length
      (List.filter
         (fun p -> p.start <= time && time < completion p)
         t.placements)
  in
  (* FIFO-front job of an org at [time]: smallest index not yet started
     whose release has passed; only that job may start. *)
  let front_waiting time =
    let by_org = Hashtbl.create 16 in
    List.iter
      (fun (j : Job.t) ->
        let unstarted =
          match find t j with None -> true | Some p -> p.start > time
        in
        if unstarted then begin
          let cur = Hashtbl.find_opt by_org j.Job.org in
          match cur with
          | Some (c : Job.t) when c.Job.index < j.Job.index -> ()
          | _ -> Hashtbl.replace by_org j.Job.org j
        end)
      all_jobs;
    Hashtbl.fold
      (fun _ (j : Job.t) acc -> if j.Job.release <= time then j :: acc else acc)
      by_org []
  in
  let rec check = function
    | [] -> Ok ()
    | time :: rest ->
        (* [busy_at] counts placements covering [time] including those that
           start exactly then, and [front_waiting] only lists jobs that have
           not started by [time]; so a positive idle count together with a
           waiting front job is exactly a greediness violation. *)
        let idle = t.machines - busy_at time in
        let waiting = front_waiting time in
        if idle > 0 && waiting <> [] then
          Error
            (Format.asprintf
               "non-greedy: at t=%d, %d machine(s) idle while %a waits" time
               idle Job.pp (List.hd waiting))
        else check rest
  in
  check events

let pp ppf t =
  Format.fprintf ppf "schedule(m=%d):@." t.machines;
  List.iter
    (fun p ->
      Format.fprintf ppf "  t=%-6d m=%-3d %a@." p.start p.machine Job.pp p.job)
    t.placements
