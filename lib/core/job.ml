type t = { org : int; index : int; user : int; release : int; size : int }

let make ~org ~index ?(user = 0) ~release ~size () =
  if release < 0 then invalid_arg "Job.make: negative release";
  if size < 1 then invalid_arg "Job.make: size < 1";
  if org < 0 then invalid_arg "Job.make: negative org";
  { org; index; user; release; size }

let id t = (t.org, t.index)

let compare_release a b =
  match Stdlib.compare a.release b.release with
  | 0 -> (
      match Stdlib.compare a.org b.org with
      | 0 -> Stdlib.compare a.index b.index
      | c -> c)
  | c -> c

let equal a b = a.org = b.org && a.index = b.index

let pp ppf t =
  Format.fprintf ppf "J(%d)%d[r=%d,p=%d]" t.org t.index t.release t.size
