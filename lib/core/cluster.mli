(** Mutable single-pool simulator: the shared machinery of every scheduling
    algorithm in this reproduction.

    A cluster owns a set of machines (each attributed to a contributing
    organization), a per-organization FIFO queue of released-but-unstarted
    jobs, and a completion heap of running jobs.  It performs no scheduling
    decisions itself: a policy chooses the organization (and optionally the
    machine) and calls {!start_front}.  The grand-coalition driver
    ({!module:Sim} library) and the per-coalition simulators inside REF and
    RAND all instantiate this module, which is what makes the exponential
    algorithm tractable to express.

    Non-clairvoyance is structural: the only way a policy learns a job's
    processing time is a completion event. *)

type t

type completion = {
  job : Job.t;
  start : int;
  finish : int;  (** [start + size] *)
  machine : int;
}

type kill = {
  k_job : Job.t;
  k_start : int;  (** when the killed attempt had started *)
  k_machine : int;
  k_wasted : int;  (** executed-then-lost parts: [kill time − k_start] *)
  k_resubmitted : bool;
      (** [false] when the restart budget is exhausted (job abandoned) *)
}

val create :
  ?record:bool ->
  ?speeds:float array ->
  ?max_restarts:int ->
  machine_owners:int array ->
  norgs:int ->
  unit ->
  t
(** [machine_owners.(i)] is the organization owning machine [i]; [norgs] is
    the number of organizations indexable by jobs (queues are allocated for
    all of them even if they own no machine here — a coalition simulator
    never receives jobs of non-members).  [record] keeps the full placement
    list for later analysis (default [false]).  [speeds] enables the
    related-machines extension: a job of size [p] occupies machine [i] for
    [ceil (p / speeds.(i))] time units (default: all 1.0).  [max_restarts]
    bounds how many times a job killed by machine failures is resubmitted
    before being abandoned (default: unbounded).
    @raise Invalid_argument if [max_restarts < 0]. *)

val machines : t -> int
val norgs : t -> int
val machine_owner : t -> int -> int
val machine_speed : t -> int -> float
val fastest_free_machine : t -> int option
(** Highest-speed free machine (ties: any); [None] when all busy. *)

(** {2 Job flow} *)

val release : t -> Job.t -> unit
(** Enqueue a job (it becomes visible to the policy immediately). *)

val next_completion : t -> int option
(** Finish time of the earliest-running job, if any. *)

val pop_completion_le : t -> int -> completion option
(** Pop one completion with [finish <= bound]; the machine returns to the
    free pool.  Call in a loop to drain all completions up to a time. *)

val free_count : t -> int
val free_machine_ids : t -> int list
(** Snapshot of currently free machine ids (unspecified order, deterministic
    for a given history). *)

val has_waiting : t -> bool
val waiting_orgs : t -> int list
(** Organizations with a non-empty queue, ascending. *)

val waiting_count : t -> int -> int
(** Queue length of one organization. *)

val front : t -> int -> Job.t option
(** The FIFO-front job of an organization, without removing it. *)

val start_front : t -> org:int -> time:int -> ?machine:int -> unit -> Schedule.placement
(** Starts the front job of [org] at [time] on [machine] (default: an
    arbitrary free machine).  @raise Invalid_argument if the queue is empty,
    no machine is free, or the requested machine is busy. *)

(** {2 Accounting} *)

val running_count : t -> int -> int
(** Currently-running jobs of one organization (used by CURRFAIRSHARE). *)

val running_total : t -> int
val completed_work : t -> int -> int
(** Total size of completed jobs of one organization. *)

val started_count : t -> int
(** Number of jobs started so far (across organizations). *)

val placements : t -> Schedule.placement list
(** All placements so far, most recent first; empty unless [record] was
    set.  Killed attempts are excised (see {!fail_machine}); only surviving
    work is listed here. *)

(** {2 Machine faults}

    Jobs are non-preemptible (Section 2), so a machine failure kills the
    job it hosts: the executed prefix is discarded and the job restarts
    from scratch.  The killed job is resubmitted at the {e head} of its
    owner's queue (it keeps its FIFO rank — anything submitted later must
    still wait behind it), unless its restart budget is exhausted, in
    which case it is abandoned. *)

val fail_machine : t -> time:int -> int -> kill option
(** Take machine [m] down at [time].  Returns the kill record if a job was
    running there ([None] if the machine was free or already down).  The
    machine leaves the free pool until {!recover_machine}.  On recording
    clusters the optimistic full-duration placement of the killed attempt
    is replaced by a truncated segment in {!killed_segments} (dropped when
    zero-length).  @raise Invalid_argument on a bad machine id or if
    [time] precedes the running job's start. *)

val recover_machine : t -> int -> bool
(** Bring a machine back up (it rejoins the free pool immediately and can
    host a job at the same instant).  Returns [false] if it was already
    up.  @raise Invalid_argument on a bad machine id. *)

val machine_up : t -> int -> bool
val up_count : t -> int
val down_count : t -> int

(** {2 Consortium endowments}

    The federation layer ({!module:Federation}) generalizes the static
    endowment: machines can be retired from the consortium (an org leaves
    and takes them home) and readmitted later, present machines can change
    owner (lending), and a departed organization is {e suspended} — its
    queued jobs stay put but are invisible to scheduling until it rejoins.
    Without endowment events every machine is present, every org active,
    and these operations are never called, so behaviour is bit-identical
    to the static cluster. *)

val retire_machine : t -> time:int -> int -> kill option
(** Remove machine [m] from the consortium at [time].  Like a fault, this
    kills the job it hosts (returned as a kill record, resubmitted under
    the same restart budget); unlike a fault the machine does not return
    on {!recover_machine} — only {!admit_machine} brings it back.  The
    up/down fault state keeps evolving while absent.  Returns [None] if
    already absent.  @raise Invalid_argument on a bad machine id. *)

val admit_machine : t -> org:int -> int -> unit
(** Readmit an absent machine under owner [org]; it joins the free pool
    immediately if it is up.  @raise Invalid_argument if already present
    or on a bad id. *)

val transfer_machine : t -> org:int -> int -> unit
(** Change the current owner of a present machine (lend/reclaim).  The job
    it may be running is unaffected — only future capacity attribution
    moves.  @raise Invalid_argument if absent or on a bad id. *)

val suspend_org : t -> int -> unit
(** Make an organization invisible to scheduling: its queue survives but
    {!waiting_orgs}/{!has_waiting} skip it and {!start_front} refuses it.
    Idempotent. *)

val resume_org : t -> int -> unit
(** Undo {!suspend_org}; queued jobs become schedulable again.  Idempotent. *)

val machine_present : t -> int -> bool
val present_count : t -> int
val org_active : t -> int -> bool
val active_count : t -> int

val killed_segments : t -> Schedule.placement list
(** Truncated segments of killed attempts, most recent first; empty unless
    [record] was set. *)

val killed_count : t -> int
(** Number of kills so far (counted even when not recording). *)

val wasted_work : t -> int -> int
(** Per-organization executed-then-discarded parts (Σ [k_wasted]). *)

val abandoned : t -> Job.t list
(** Jobs dropped after exhausting [max_restarts], in kill order. *)

val abandoned_count : t -> int

val to_schedule : t -> Schedule.t
(** Includes {!killed_segments} as the schedule's killed list.
    @raise Invalid_argument unless created with [record:true]. *)
