(** Array-backed binary min-heap keyed by integer priority.

    Used as the completion queue of cluster simulators (priority = completion
    time) and as the global event queue of the simulation driver.  Stable
    order between equal priorities is {e not} guaranteed; callers that need
    determinism across equal keys must encode a tie-breaker into the
    priority or sort popped batches. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> prio:int -> 'a -> unit
(** Amortized O(log n). *)

val min_prio : 'a t -> int option
(** Smallest priority currently stored, without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the entry with the smallest priority. *)

val pop_le : 'a t -> int -> (int * 'a) option
(** [pop_le h bound] pops the minimum entry only if its priority is
    [<= bound]. *)

val remove_first : 'a t -> ('a -> bool) -> (int * 'a) option
(** Removes the first stored entry (in unspecified internal order) whose
    value satisfies the predicate; O(n).  Used to kill the running job of a
    failed machine — failures are rare, so a linear scan beats maintaining
    an index. *)

val clear : 'a t -> unit
val to_list : 'a t -> (int * 'a) list
(** Snapshot in unspecified order (for debugging / tests). *)
