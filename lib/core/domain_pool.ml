let recommended_workers () =
  Stdlib.max 1 (Domain.recommended_domain_count () - 1)

(* Domain-local default, installed by Sim.Driver.run ?workers around policy
   construction. *)
let default_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let default_workers () =
  match Domain.DLS.get default_key with
  | Some w -> Stdlib.max 1 w
  | None -> recommended_workers ()

let with_default_workers w f =
  let prev = Domain.DLS.get default_key in
  Domain.DLS.set default_key w;
  Fun.protect ~finally:(fun () -> Domain.DLS.set default_key prev) f

(* One batch of [n] independent tasks.  Workers (and the submitter) pull
   indices off [next]; the last task completion broadcasts [work_done].
   Keeping the per-batch state in its own record makes late-waking workers
   harmless: a worker that grabs an already-finished batch finds its counter
   exhausted and goes back to sleep. *)
type batch = {
  f : int -> unit;
  n : int;
  limit : int;  (* helper domains allowed to join this batch *)
  next : int Atomic.t;
  completed : int Atomic.t;
  mutable err : (int * exn * Printexc.raw_backtrace) option;
}

type pool = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable gen : int;  (* bumped once per submitted batch *)
  mutable current : batch option;
  submit : Mutex.t;  (* held for the whole lifetime of a batch *)
  mutable nhelpers : int;  (* helpers actually spawned; 0 => sequential *)
}

let record_error p batch i e bt =
  Mutex.lock p.mutex;
  (match batch.err with
  | Some (j, _, _) when j <= i -> ()
  | Some _ | None -> batch.err <- Some (i, e, bt));
  Mutex.unlock p.mutex

let run_tasks p batch =
  let rec go () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.n then begin
      (try batch.f i
       with e -> record_error p batch i e (Printexc.get_raw_backtrace ()));
      if Atomic.fetch_and_add batch.completed 1 + 1 = batch.n then begin
        Mutex.lock p.mutex;
        Condition.broadcast p.work_done;
        Mutex.unlock p.mutex
      end;
      go ()
    end
  in
  go ()

(* Queue depth of the in-flight batch: set to the task count at submission,
   cleared when the batch drains (coarse by design — per-task updates would
   put an extra atomic on every task). *)
let m_queue_depth = Obs.Metrics.gauge "pool.queue_depth"

(* Dispatch-shape counters: how many batches went through the pool vs ran
   inline (sequential cutoff, nested submission, workers <= 1), and how many
   chunks the chunked API claimed.  The inline/batch ratio is the first
   thing to read when parallelism is not paying off. *)
let m_batches = Obs.Metrics.counter "pool.batches"
let m_inline = Obs.Metrics.counter "pool.inline_batches"
let m_chunks = Obs.Metrics.counter "pool.chunks"

let worker p idx ~on_ready () =
  (* Per-worker busy/idle accounting, registered once per helper domain.
     [Obs.Metrics.add] is a no-op while collection is disabled, but the
     clock reads around a potentially-long Condition.wait are gated too. *)
  let m_busy = Obs.Metrics.counter (Printf.sprintf "pool.worker%d.busy_ns" idx) in
  let m_idle = Obs.Metrics.counter (Printf.sprintf "pool.worker%d.idle_ns" idx) in
  (* The startup barrier in [get_pool] waits for this instant, so a trace
     taken on a single-core machine still shows this worker's tid even if
     it never wins a batch. *)
  Obs.Trace.instant ~cat:"pool" "pool.worker.start";
  on_ready ();
  let rec loop seen_gen =
    let timed = Obs.Metrics.enabled () in
    let t0 = if timed then Obs.Clock.now_ns () else 0L in
    Mutex.lock p.mutex;
    while p.gen = seen_gen do
      Condition.wait p.work_ready p.mutex
    done;
    let gen = p.gen in
    let batch = p.current in
    Mutex.unlock p.mutex;
    if timed then
      Obs.Metrics.add m_idle (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0));
    (* One event per wake-up even when this worker missed the batch, so a
       trace always shows every helper domain's tid. *)
    Obs.Trace.instant ~cat:"pool" "pool.wake";
    (match batch with
    | Some b when idx < b.limit ->
        let b0 = if timed then Obs.Clock.now_ns () else 0L in
        Obs.Trace.span ~cat:"pool" "pool.batch" (fun () -> run_tasks p b);
        if timed then
          Obs.Metrics.add m_busy
            (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) b0))
    | Some _ | None -> ());
    loop gen
  in
  loop 0

let the_pool = ref None
let the_pool_mutex = Mutex.create ()

(* [Domain.spawn] can fail at runtime (domain limit reached, thread creation
   refused by the OS).  The pool treats that as a soft error: it keeps
   whatever helpers did spawn — possibly none — and every batch still
   completes on the calling domain.  Indirected so tests can inject a
   failing spawn. *)
let spawn_fn = ref (fun f -> ignore (Domain.spawn f))
let spawn_warned = ref false

let warn_spawn_failure e nspawned =
  if not !spawn_warned then begin
    spawn_warned := true;
    Obs.Log.warn ~component:"pool"
      ~fields:[ ("helpers", Obs.Json.Int nspawned) ]
      "Domain.spawn failed (%s); continuing with %d helper domain(s), \
       parallel batches may run sequentially"
      (Printexc.to_string e) nspawned
  end

let get_pool () =
  Mutex.lock the_pool_mutex;
  let p =
    match !the_pool with
    | Some p -> p
    | None ->
        (* At least one helper even on single-core machines, so the
           cross-domain code path is real wherever it is requested. *)
        let nhelpers = Stdlib.max 1 (Domain.recommended_domain_count () - 1) in
        let p =
          {
            mutex = Mutex.create ();
            work_ready = Condition.create ();
            work_done = Condition.create ();
            gen = 0;
            current = None;
            submit = Mutex.create ();
            nhelpers;
          }
        in
        let spawned = ref 0 in
        let ready = ref 0 in
        let on_ready () =
          Mutex.lock p.mutex;
          incr ready;
          Condition.broadcast p.work_done;
          Mutex.unlock p.mutex
        in
        (try
           for idx = 0 to nhelpers - 1 do
             !spawn_fn (worker p idx ~on_ready);
             incr spawned
           done
         with e -> warn_spawn_failure e !spawned);
        (* Startup barrier: wait until every spawned worker has run its
           preamble (observability registration).  One-time cost at pool
           creation; no batch can be in flight yet, so reusing [work_done]
           is safe. *)
        Mutex.lock p.mutex;
        while !ready < !spawned do
          Condition.wait p.work_done p.mutex
        done;
        Mutex.unlock p.mutex;
        p.nhelpers <- !spawned;
        the_pool := Some p;
        p
  in
  Mutex.unlock the_pool_mutex;
  p

let unsafe_reset_for_testing ~spawn =
  Mutex.lock the_pool_mutex;
  the_pool := None;
  spawn_warned := false;
  (spawn_fn :=
     match spawn with
     | Some f -> f
     | None -> fun f -> ignore (Domain.spawn f));
  Mutex.unlock the_pool_mutex

let helpers () = (get_pool ()).nhelpers

(* Inline fallback for every dispatch path.  Must honor the same batch
   exception contract as the pool: attempt every task, then re-raise the
   lowest-indexed failure (which, running in order, is the first one) —
   otherwise whether a caller sees the later tasks run would depend on
   which dispatch path happened to be taken. *)
let sequential_iter f n =
  let err = ref None in
  for i = 0 to n - 1 do
    try f i
    with e -> (
      match !err with
      | None -> err := Some (e, Printexc.get_raw_backtrace ())
      | Some _ -> ())
  done;
  match !err with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_iter ?workers f n =
  let w = match workers with Some w -> w | None -> default_workers () in
  if n <= 0 then ()
  else if w <= 1 || n < 2 then begin
    Obs.Metrics.incr m_inline;
    sequential_iter f n
  end
  else
    let p = get_pool () in
    if p.nhelpers = 0 then
      (* Helper spawning failed at pool creation: degrade gracefully. *)
      sequential_iter f n
    else if not (Mutex.try_lock p.submit) then begin
      (* A batch is already in flight (nested or concurrent submission):
         run inline rather than wait — never deadlocks, stays deterministic. *)
      Obs.Metrics.incr m_inline;
      sequential_iter f n
    end
    else begin
      Obs.Metrics.incr m_batches;
      let batch =
        {
          f;
          n;
          limit = Stdlib.min p.nhelpers (w - 1);
          next = Atomic.make 0;
          completed = Atomic.make 0;
          err = None;
        }
      in
      Obs.Metrics.set m_queue_depth (float_of_int n);
      Mutex.lock p.mutex;
      p.current <- Some batch;
      p.gen <- p.gen + 1;
      Condition.broadcast p.work_ready;
      Mutex.unlock p.mutex;
      Obs.Trace.span ~cat:"pool" "pool.batch" (fun () -> run_tasks p batch);
      Mutex.lock p.mutex;
      while Atomic.get batch.completed < batch.n do
        Condition.wait p.work_done p.mutex
      done;
      p.current <- None;
      Mutex.unlock p.mutex;
      Mutex.unlock p.submit;
      Obs.Metrics.set m_queue_depth 0.;
      match batch.err with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

(* --- chunked dispatch ---------------------------------------------------- *)

(* Per-task handoff costs one atomic fetch-and-add per task; for the
   thousands of tiny stages the REF engine submits per run that overhead
   swamps the work.  The chunked path claims contiguous index ranges
   instead — one atomic per chunk — and skips the pool entirely below
   [cutoff] tasks, where waking a helper domain costs more than the stage.

   Exception parity with [parallel_iter]: every task is attempted (a raise
   does not abort the rest of its chunk), and the exception of the
   lowest-indexed failing task is re-raised with its backtrace once the
   whole batch has drained. *)

let default_cutoff = 2

let parallel_chunks ?workers ?chunk ?(cutoff = default_cutoff) f n =
  let w = match workers with Some w -> w | None -> default_workers () in
  if n <= 0 then ()
  else if w <= 1 || n <= Stdlib.max 1 cutoff then begin
    Obs.Metrics.incr m_inline;
    sequential_iter f n
  end
  else begin
    (* ~4 chunks per participating domain: coarse enough that the atomic
       claims are negligible, fine enough to balance uneven task costs. *)
    let chunk =
      match chunk with
      | Some c -> Stdlib.max 1 c
      | None -> Stdlib.max 1 (n / (4 * w))
    in
    let nchunks = (n + chunk - 1) / chunk in
    if nchunks <= 1 then begin
      Obs.Metrics.incr m_inline;
      sequential_iter f n
    end
    else begin
      Obs.Metrics.add m_chunks nchunks;
      (* Lowest-indexed failure wins, like [record_error]; kept outside the
         pool's own error slot because the chunk runner below never raises. *)
      let err = Atomic.make None in
      let note i e bt =
        let rec cas () =
          let cur = Atomic.get err in
          match cur with
          | Some (j, _, _) when j <= i -> ()
          | Some _ | None ->
              if not (Atomic.compare_and_set err cur (Some (i, e, bt))) then
                cas ()
        in
        cas ()
      in
      let run_chunk ci =
        let lo = ci * chunk in
        let hi = Stdlib.min n (lo + chunk) in
        for j = lo to hi - 1 do
          try f j with e -> note j e (Printexc.get_raw_backtrace ())
        done
      in
      parallel_iter ~workers:w run_chunk nchunks;
      match Atomic.get err with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* --- one-shot map over independent tasks -------------------------------- *)

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ?workers f tasks =
  let workers =
    match workers with
    | Some w -> Stdlib.max 1 w
    | None -> recommended_workers ()
  in
  match tasks with
  | [] -> []
  | _ when workers = 1 -> List.map f tasks
  | _ ->
      let tasks = Array.of_list tasks in
      let n = Array.length tasks in
      let results = Array.make n Pending in
      let next = Atomic.make 0 in
      let worker () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (results.(i) <-
               (match f tasks.(i) with
               | v -> Done v
               | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
            go ()
          end
        in
        go ()
      in
      let domains =
        List.init (Stdlib.min workers n) (fun _ ->
            Domain.spawn (fun () ->
                Obs.Trace.span ~cat:"pool" "pool.map.worker" worker))
      in
      List.iter Domain.join domains;
      Array.to_list results
      |> List.map (function
           | Done v -> v
           | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false)

(* Chunked map over an array, on the persistent pool: result slot [i] always
   holds [f a.(i)] (order preservation is structural — tasks write disjoint
   indices).  First-failure (in input order) re-raise like [map], via the
   [parallel_chunks] error slot. *)
let map_chunked ?workers ?chunk ?cutoff f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let results = Array.make n Pending in
    parallel_chunks ?workers ?chunk ?cutoff
      (fun i ->
        results.(i) <-
          (match f a.(i) with
          | v -> Done v
          | exception e -> Failed (e, Printexc.get_raw_backtrace ())))
      n;
    Array.map
      (function
        | Done v -> v
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)
      results
  end
