(** Concrete schedules: which job started when, on which machine.

    The simulation driver records the grand-coalition schedule; tests use the
    validators here to check the structural invariants the paper assumes
    (feasibility, per-organization FIFO order, greediness). *)

type placement = {
  job : Job.t;
  start : int;
  machine : int;
  duration : int;
      (** wall-clock occupancy: equals [job.size] on identical machines,
          [ceil (size / speed machine)] on related machines *)
}

val placement : ?duration:int -> job:Job.t -> start:int -> machine:int -> unit -> placement
(** [duration] defaults to [job.size] (identical machines). *)

type t
(** An immutable schedule over a fixed pool of machines. *)

val of_placements : ?killed:placement list -> machines:int -> placement list -> t
(** @raise Invalid_argument if a machine id is out of [0, machines) or a
    start time is negative.  [killed] (default none) lists segments cut
    short by machine failures: work that occupied a machine but was lost
    when it died ([duration] is the executed-then-discarded span, the job
    itself restarts from scratch elsewhere in [placements]). *)

val placements : t -> placement list
(** Sorted by start time, then machine. *)

val killed : t -> placement list
(** Killed segments (machine-failure casualties), sorted like
    {!placements}; empty on fault-free runs.  Not part of {!placements}:
    utility and feasibility are judged on surviving work only, but the
    wasted occupancy stays observable here. *)

val machines : t -> int
val job_count : t -> int

val find : t -> Job.t -> placement option
(** Placement of a given job (matched by [Job.equal]), if started. *)

val completion : placement -> int
(** [start + duration]. *)

val busy_time : t -> upto:int -> int
(** Total number of (machine, slot) pairs occupied in [0, upto): the
    numerator of the resource-utilization metric of Section 6. *)

val utilization : t -> upto:int -> float
(** [busy_time / (machines * upto)].  Counts useful (surviving) work only;
    see {!wasted_time} for the occupancy lost to kills. *)

val wasted_time : t -> upto:int -> int
(** Total (machine, slot) pairs in [0, upto) spent on segments that were
    later killed by machine failures — work done and thrown away. *)

val makespan : t -> int
(** Latest completion time; 0 for an empty schedule. *)

(** {2 Invariant validators (used heavily by the test suite)} *)

val check_feasible : t -> (unit, string) result
(** No machine runs two jobs at once; every start respects the release
    time. *)

val check_fifo : t -> (unit, string) result
(** Within each organization, start times are non-decreasing in FIFO rank
    (jobs of one organization start in submission order, Section 2). *)

val check_greedy : t -> all_jobs:Job.t list -> upto:int -> (unit, string) result
(** Greediness (Section 2): at any time in [0, upto) at which a machine is
    idle and some organization's FIFO-front job is released but not started,
    a job must start.  [all_jobs] lists every job of the instance, including
    never-started ones. *)

val pp : Format.formatter -> t -> unit
