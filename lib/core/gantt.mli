(** ASCII Gantt-chart rendering of schedules.

    One row per machine, one column per time unit (scaled when the horizon
    exceeds the width budget); each job cell prints its organization's digit
    (organizations beyond 9 wrap to letters).  Intended for the CLI's
    [simulate --gantt] and for eyeballing small worked examples:

    {v
    m0 |000011111--22|
    m1 |0000--111122-|
        t=0        13
    v} *)

val render :
  ?width:int -> ?upto:int -> Schedule.t -> string
(** [render schedule] draws all machines from t = 0 to [upto] (default: the
    makespan), compressing time so the chart is at most [width] (default 72)
    columns.  Idle slots print ['-'].  When a column spans several time
    units, the organization occupying the majority of the span wins the
    glyph (['~'] on a tie between two organizations). *)

val org_glyph : int -> char
(** '0'..'9' then 'a'..'z', wrapping. *)
