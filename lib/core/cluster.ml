type completion = { job : Job.t; start : int; finish : int; machine : int }

type kill = {
  k_job : Job.t;
  k_start : int;
  k_machine : int;
  k_wasted : int;
  k_resubmitted : bool;
}

type running = { r_job : Job.t; r_start : int; r_machine : int }

type t = {
  owners : int array;
  speeds : float array;
  norgs : int;
  record : bool;
  (* Free machines as a swap-remove bag: O(1) push/pop, O(n) targeted
     removal (n = pool size, removal by id is rare: only policies that pin a
     machine use it).  Invariant: only up machines are ever in the bag. *)
  free : int array;
  mutable free_size : int;
  heap : running Heap.t;
  queues : Job.t Queue.t array;
  (* Killed jobs resubmitted ahead of the FIFO queue, ascending by index —
     a restarted job keeps its original FIFO rank, so it must run before
     anything submitted after it. *)
  resubmitted : Job.t list array;
  mutable waiting_total : int;
  running_per_org : int array;
  completed_work : int array;
  mutable started : int;
  mutable placements : Schedule.placement list;
  (* Fault state. *)
  up : bool array;
  mutable down_count : int;
  (* Federation state: a machine retired from the consortium is [present =
     false] — out of the free pool and hosting nothing — until readmitted;
     a suspended organization keeps its queue but is invisible to
     scheduling ([waiting_total] counts only active orgs' jobs).  The
     static seed has everything present and active, so the fields are
     inert unless an endowment stream drives them. *)
  present : bool array;
  mutable absent_count : int;
  active : bool array;
  max_restarts : int option;
  restarts : (int * int, int) Hashtbl.t; (* job id -> kills so far *)
  mutable killed : Schedule.placement list;
  mutable killed_count : int;
  wasted_work : int array; (* per org: executed parts lost to kills *)
  mutable abandoned : Job.t list;
}

let create ?(record = false) ?speeds ?max_restarts ~machine_owners ~norgs () =
  let m = Array.length machine_owners in
  if m = 0 then invalid_arg "Cluster.create: no machines";
  let speeds =
    match speeds with
    | None -> Array.make m 1.0
    | Some sp ->
        if Array.length sp <> m then
          invalid_arg "Cluster.create: speeds length mismatch";
        Array.iter
          (fun s -> if s <= 0. then invalid_arg "Cluster.create: speed <= 0")
          sp;
        Array.copy sp
  in
  Array.iter
    (fun o ->
      if o < 0 || o >= norgs then
        invalid_arg "Cluster.create: machine owner out of range")
    machine_owners;
  (match max_restarts with
  | Some r when r < 0 -> invalid_arg "Cluster.create: max_restarts < 0"
  | Some _ | None -> ());
  {
    owners = Array.copy machine_owners;
    speeds;
    norgs;
    record;
    free = Array.init m (fun i -> i);
    free_size = m;
    heap = Heap.create ();
    queues = Array.init norgs (fun _ -> Queue.create ());
    resubmitted = Array.make norgs [];
    waiting_total = 0;
    running_per_org = Array.make norgs 0;
    completed_work = Array.make norgs 0;
    started = 0;
    placements = [];
    up = Array.make m true;
    down_count = 0;
    present = Array.make m true;
    absent_count = 0;
    active = Array.make norgs true;
    max_restarts;
    restarts = Hashtbl.create 8;
    killed = [];
    killed_count = 0;
    wasted_work = Array.make norgs 0;
    abandoned = [];
  }

let machines t = Array.length t.owners
let norgs t = t.norgs

let machine_owner t i =
  if i < 0 || i >= Array.length t.owners then
    invalid_arg "Cluster.machine_owner";
  t.owners.(i)

let machine_speed t i =
  if i < 0 || i >= Array.length t.speeds then
    invalid_arg "Cluster.machine_speed";
  t.speeds.(i)

let fastest_free_machine t =
  let rec go i best =
    if i >= t.free_size then best
    else
      let m = t.free.(i) in
      match best with
      | Some b when t.speeds.(b) >= t.speeds.(m) -> go (i + 1) best
      | _ -> go (i + 1) (Some m)
  in
  go 0 None

(* Wall-clock occupancy of a job on a machine: ceil (size / speed), at
   least 1. *)
let duration_on t ~machine ~size =
  let s = t.speeds.(machine) in
  if s = 1.0 then size
  else Stdlib.max 1 (int_of_float (Float.ceil (float_of_int size /. s)))

let release t (job : Job.t) =
  if job.Job.org < 0 || job.Job.org >= t.norgs then
    invalid_arg "Cluster.release: organization out of range";
  Queue.add job t.queues.(job.Job.org);
  if t.active.(job.Job.org) then t.waiting_total <- t.waiting_total + 1

let next_completion t = Heap.min_prio t.heap

let pop_completion_le t bound =
  match Heap.pop_le t.heap bound with
  | None -> None
  | Some (finish, r) ->
      t.free.(t.free_size) <- r.r_machine;
      t.free_size <- t.free_size + 1;
      let org = r.r_job.Job.org in
      t.running_per_org.(org) <- t.running_per_org.(org) - 1;
      t.completed_work.(org) <- t.completed_work.(org) + r.r_job.Job.size;
      Some { job = r.r_job; start = r.r_start; finish; machine = r.r_machine }

let free_count t = t.free_size

let free_machine_ids t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.free.(i) :: acc) in
  go (t.free_size - 1) []

let has_waiting t = t.waiting_total > 0

let waiting_orgs t =
  let rec go u acc =
    if u < 0 then acc
    else if
      (not t.active.(u))
      || (Queue.is_empty t.queues.(u) && t.resubmitted.(u) = [])
    then go (u - 1) acc
    else go (u - 1) (u :: acc)
  in
  go (t.norgs - 1) []

let waiting_count t u =
  Queue.length t.queues.(u) + List.length t.resubmitted.(u)

let front t u =
  match t.resubmitted.(u) with
  | j :: _ -> Some j
  | [] -> Queue.peek_opt t.queues.(u)

let take_free_machine t = function
  | None ->
      if t.free_size = 0 then invalid_arg "Cluster.start_front: no free machine";
      t.free_size <- t.free_size - 1;
      t.free.(t.free_size)
  | Some m ->
      let rec find i =
        if i >= t.free_size then
          invalid_arg "Cluster.start_front: requested machine is busy"
        else if t.free.(i) = m then begin
          t.free_size <- t.free_size - 1;
          t.free.(i) <- t.free.(t.free_size);
          m
        end
        else find (i + 1)
      in
      find 0

let start_front t ~org ~time ?machine () =
  if not t.active.(org) then
    invalid_arg "Cluster.start_front: organization suspended";
  if Queue.is_empty t.queues.(org) && t.resubmitted.(org) = [] then
    invalid_arg "Cluster.start_front: empty queue";
  let machine = take_free_machine t machine in
  let job =
    match t.resubmitted.(org) with
    | j :: rest ->
        t.resubmitted.(org) <- rest;
        j
    | [] -> Queue.pop t.queues.(org)
  in
  t.waiting_total <- t.waiting_total - 1;
  t.running_per_org.(org) <- t.running_per_org.(org) + 1;
  t.started <- t.started + 1;
  let duration = duration_on t ~machine ~size:job.Job.size in
  Heap.add t.heap ~prio:(time + duration)
    { r_job = job; r_start = time; r_machine = machine };
  let placement = Schedule.placement ~duration ~job ~start:time ~machine () in
  if t.record then t.placements <- placement :: t.placements;
  placement

let running_count t u = t.running_per_org.(u)
let running_total t = Array.fold_left ( + ) 0 t.running_per_org
let completed_work t u = t.completed_work.(u)
let started_count t = t.started
let placements t = t.placements

(* --- machine faults ----------------------------------------------------- *)

let machine_up t m =
  if m < 0 || m >= Array.length t.owners then invalid_arg "Cluster.machine_up";
  t.up.(m)

let up_count t = Array.length t.owners - t.down_count
let down_count t = t.down_count

let remove_from_free t m =
  let rec find i =
    if i >= t.free_size then false
    else if t.free.(i) = m then begin
      t.free_size <- t.free_size - 1;
      t.free.(i) <- t.free.(t.free_size);
      true
    end
    else find (i + 1)
  in
  find 0

(* A restarted job keeps its FIFO rank: insert by ascending index so the
   lowest-rank killed job is the new front. *)
let rec insert_by_index (job : Job.t) = function
  | [] -> [ job ]
  | j :: _ as rest when job.Job.index < j.Job.index -> job :: rest
  | j :: rest -> j :: insert_by_index job rest

(* Kill whatever job machine [m] currently hosts (shared by machine faults
   and consortium retirements).  The caller has already taken [m] out of
   circulation (marked down or absent) and checked it is not free. *)
let kill_running t ~time ~what m =
  match Heap.remove_first t.heap (fun r -> r.r_machine = m) with
  | None -> None (* out of circulation before it ever hosted the next job *)
  | Some (_finish, r) ->
      let job = r.r_job in
      let org = job.Job.org in
      if time < r.r_start then
        invalid_arg (what ^ ": time before the job's start");
      t.running_per_org.(org) <- t.running_per_org.(org) - 1;
      let wasted = time - r.r_start in
      t.wasted_work.(org) <- t.wasted_work.(org) + wasted;
      t.killed_count <- t.killed_count + 1;
      if t.record then begin
        (* Replace the optimistic full-duration placement recorded at
           start with a truncated killed segment (dropped entirely when
           the kill lands on the start instant: nothing ran). *)
        t.placements <-
          List.filter
            (fun (p : Schedule.placement) ->
              not (Job.equal p.Schedule.job job && p.Schedule.start = r.r_start))
            t.placements;
        if wasted > 0 then
          t.killed <-
            Schedule.placement ~duration:wasted ~job ~start:r.r_start
              ~machine:m ()
            :: t.killed
      end;
      let id = Job.id job in
      let kills = 1 + Option.value (Hashtbl.find_opt t.restarts id) ~default:0 in
      Hashtbl.replace t.restarts id kills;
      let resubmit =
        match t.max_restarts with None -> true | Some r -> kills <= r
      in
      if resubmit then begin
        t.resubmitted.(org) <- insert_by_index job t.resubmitted.(org);
        if t.active.(org) then t.waiting_total <- t.waiting_total + 1
      end
      else t.abandoned <- job :: t.abandoned;
      Some
        {
          k_job = job;
          k_start = r.r_start;
          k_machine = m;
          k_wasted = wasted;
          k_resubmitted = resubmit;
        }

let fail_machine t ~time m =
  if m < 0 || m >= Array.length t.owners then
    invalid_arg "Cluster.fail_machine";
  if not t.up.(m) then None
  else begin
    t.up.(m) <- false;
    t.down_count <- t.down_count + 1;
    if remove_from_free t m then None
    else if not t.present.(m) then None (* retired machines host nothing *)
    else kill_running t ~time ~what:"Cluster.fail_machine" m
  end

let recover_machine t m =
  if m < 0 || m >= Array.length t.owners then
    invalid_arg "Cluster.recover_machine";
  if t.up.(m) then false
  else begin
    t.up.(m) <- true;
    t.down_count <- t.down_count - 1;
    (* A machine retired while down stays out of the pool until readmitted. *)
    if t.present.(m) then begin
      t.free.(t.free_size) <- m;
      t.free_size <- t.free_size + 1
    end;
    true
  end

(* --- consortium endowments --------------------------------------------- *)

let machine_present t m =
  if m < 0 || m >= Array.length t.owners then
    invalid_arg "Cluster.machine_present";
  t.present.(m)

let present_count t = Array.length t.owners - t.absent_count
let org_active t u = t.active.(u)

let active_count t =
  Array.fold_left (fun n a -> if a then n + 1 else n) 0 t.active

let retire_machine t ~time m =
  if m < 0 || m >= Array.length t.owners then
    invalid_arg "Cluster.retire_machine";
  if not t.present.(m) then None
  else begin
    t.present.(m) <- false;
    t.absent_count <- t.absent_count + 1;
    if not t.up.(m) then None (* its job already died with the fault *)
    else if remove_from_free t m then None
    else kill_running t ~time ~what:"Cluster.retire_machine" m
  end

let admit_machine t ~org m =
  if m < 0 || m >= Array.length t.owners then
    invalid_arg "Cluster.admit_machine";
  if org < 0 || org >= t.norgs then
    invalid_arg "Cluster.admit_machine: organization out of range";
  if t.present.(m) then invalid_arg "Cluster.admit_machine: already present";
  t.present.(m) <- true;
  t.absent_count <- t.absent_count - 1;
  t.owners.(m) <- org;
  if t.up.(m) then begin
    t.free.(t.free_size) <- m;
    t.free_size <- t.free_size + 1
  end

let transfer_machine t ~org m =
  if m < 0 || m >= Array.length t.owners then
    invalid_arg "Cluster.transfer_machine";
  if org < 0 || org >= t.norgs then
    invalid_arg "Cluster.transfer_machine: organization out of range";
  if not t.present.(m) then
    invalid_arg "Cluster.transfer_machine: machine not present";
  t.owners.(m) <- org

let suspend_org t u =
  if u < 0 || u >= t.norgs then invalid_arg "Cluster.suspend_org";
  if t.active.(u) then begin
    t.active.(u) <- false;
    t.waiting_total <- t.waiting_total - waiting_count t u
  end

let resume_org t u =
  if u < 0 || u >= t.norgs then invalid_arg "Cluster.resume_org";
  if not t.active.(u) then begin
    t.active.(u) <- true;
    t.waiting_total <- t.waiting_total + waiting_count t u
  end

let killed_segments t = t.killed
let killed_count t = t.killed_count
let wasted_work t u = t.wasted_work.(u)
let abandoned t = List.rev t.abandoned
let abandoned_count t = List.length t.abandoned

let to_schedule t =
  if not t.record then
    invalid_arg "Cluster.to_schedule: cluster was not recording";
  Schedule.of_placements ~killed:t.killed ~machines:(machines t) t.placements
