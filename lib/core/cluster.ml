type completion = { job : Job.t; start : int; finish : int; machine : int }

type running = { r_job : Job.t; r_start : int; r_machine : int }

type t = {
  owners : int array;
  speeds : float array;
  norgs : int;
  record : bool;
  (* Free machines as a swap-remove bag: O(1) push/pop, O(n) targeted
     removal (n = pool size, removal by id is rare: only policies that pin a
     machine use it). *)
  free : int array;
  mutable free_size : int;
  heap : running Heap.t;
  queues : Job.t Queue.t array;
  mutable waiting_total : int;
  running_per_org : int array;
  completed_work : int array;
  mutable started : int;
  mutable placements : Schedule.placement list;
}

let create ?(record = false) ?speeds ~machine_owners ~norgs () =
  let m = Array.length machine_owners in
  if m = 0 then invalid_arg "Cluster.create: no machines";
  let speeds =
    match speeds with
    | None -> Array.make m 1.0
    | Some sp ->
        if Array.length sp <> m then
          invalid_arg "Cluster.create: speeds length mismatch";
        Array.iter
          (fun s -> if s <= 0. then invalid_arg "Cluster.create: speed <= 0")
          sp;
        Array.copy sp
  in
  Array.iter
    (fun o ->
      if o < 0 || o >= norgs then
        invalid_arg "Cluster.create: machine owner out of range")
    machine_owners;
  {
    owners = Array.copy machine_owners;
    speeds;
    norgs;
    record;
    free = Array.init m (fun i -> i);
    free_size = m;
    heap = Heap.create ();
    queues = Array.init norgs (fun _ -> Queue.create ());
    waiting_total = 0;
    running_per_org = Array.make norgs 0;
    completed_work = Array.make norgs 0;
    started = 0;
    placements = [];
  }

let machines t = Array.length t.owners
let norgs t = t.norgs

let machine_owner t i =
  if i < 0 || i >= Array.length t.owners then
    invalid_arg "Cluster.machine_owner";
  t.owners.(i)

let machine_speed t i =
  if i < 0 || i >= Array.length t.speeds then
    invalid_arg "Cluster.machine_speed";
  t.speeds.(i)

let fastest_free_machine t =
  let rec go i best =
    if i >= t.free_size then best
    else
      let m = t.free.(i) in
      match best with
      | Some b when t.speeds.(b) >= t.speeds.(m) -> go (i + 1) best
      | _ -> go (i + 1) (Some m)
  in
  go 0 None

(* Wall-clock occupancy of a job on a machine: ceil (size / speed), at
   least 1. *)
let duration_on t ~machine ~size =
  let s = t.speeds.(machine) in
  if s = 1.0 then size
  else Stdlib.max 1 (int_of_float (Float.ceil (float_of_int size /. s)))

let release t (job : Job.t) =
  if job.Job.org < 0 || job.Job.org >= t.norgs then
    invalid_arg "Cluster.release: organization out of range";
  Queue.add job t.queues.(job.Job.org);
  t.waiting_total <- t.waiting_total + 1

let next_completion t = Heap.min_prio t.heap

let pop_completion_le t bound =
  match Heap.pop_le t.heap bound with
  | None -> None
  | Some (finish, r) ->
      t.free.(t.free_size) <- r.r_machine;
      t.free_size <- t.free_size + 1;
      let org = r.r_job.Job.org in
      t.running_per_org.(org) <- t.running_per_org.(org) - 1;
      t.completed_work.(org) <- t.completed_work.(org) + r.r_job.Job.size;
      Some { job = r.r_job; start = r.r_start; finish; machine = r.r_machine }

let free_count t = t.free_size

let free_machine_ids t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.free.(i) :: acc) in
  go (t.free_size - 1) []

let has_waiting t = t.waiting_total > 0

let waiting_orgs t =
  let rec go u acc =
    if u < 0 then acc
    else if Queue.is_empty t.queues.(u) then go (u - 1) acc
    else go (u - 1) (u :: acc)
  in
  go (t.norgs - 1) []

let waiting_count t u = Queue.length t.queues.(u)
let front t u = Queue.peek_opt t.queues.(u)

let take_free_machine t = function
  | None ->
      if t.free_size = 0 then invalid_arg "Cluster.start_front: no free machine";
      t.free_size <- t.free_size - 1;
      t.free.(t.free_size)
  | Some m ->
      let rec find i =
        if i >= t.free_size then
          invalid_arg "Cluster.start_front: requested machine is busy"
        else if t.free.(i) = m then begin
          t.free_size <- t.free_size - 1;
          t.free.(i) <- t.free.(t.free_size);
          m
        end
        else find (i + 1)
      in
      find 0

let start_front t ~org ~time ?machine () =
  if Queue.is_empty t.queues.(org) then
    invalid_arg "Cluster.start_front: empty queue";
  let machine = take_free_machine t machine in
  let job = Queue.pop t.queues.(org) in
  t.waiting_total <- t.waiting_total - 1;
  t.running_per_org.(org) <- t.running_per_org.(org) + 1;
  t.started <- t.started + 1;
  let duration = duration_on t ~machine ~size:job.Job.size in
  Heap.add t.heap ~prio:(time + duration)
    { r_job = job; r_start = time; r_machine = machine };
  let placement = Schedule.placement ~duration ~job ~start:time ~machine () in
  if t.record then t.placements <- placement :: t.placements;
  placement

let running_count t u = t.running_per_org.(u)
let running_total t = Array.fold_left ( + ) 0 t.running_per_org
let completed_work t u = t.completed_work.(u)
let started_count t = t.started
let placements t = t.placements

let to_schedule t =
  if not t.record then
    invalid_arg "Cluster.to_schedule: cluster was not recording";
  Schedule.of_placements ~machines:(machines t) t.placements
