(** A persistent, process-wide pool of worker domains (OCaml 5 multicore).

    The REF engine dispatches thousands of tiny parallel stages per
    simulation (one per event instant and size class); spawning domains per
    stage would dominate the work.  This pool spawns its helper domains once,
    parks them on a condition variable, and hands each submitted batch out
    through an atomic task counter.  The submitting domain always
    participates, so [parallel_iter ~workers:w] uses at most [w] domains in
    total ([w - 1] helpers plus the caller).

    Batches are serialized: if a batch is already in flight (or the pool has
    no helpers, or [workers <= 1]), [parallel_iter] degrades to an inline
    sequential loop on the calling domain.  This makes nested or concurrent
    use (e.g. REF instances running inside a {!map} experiment sweep)
    safe by construction — no deadlock, at worst no extra parallelism.

    Tasks must be independent: the pool guarantees nothing about execution
    order.  All deterministic users (the REF engine) only submit
    order-independent stages. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val default_workers : unit -> int
(** The domain-local default worker count: the value installed by
    {!with_default_workers} if any, otherwise {!recommended_workers}. *)

val with_default_workers : int option -> (unit -> 'a) -> 'a
(** [with_default_workers w f] runs [f] with the domain-local default worker
    count set to [w] ([None] restores the {!recommended_workers} fallback);
    the previous default is restored afterwards.  Used by the simulation
    driver to thread [?workers] to policy constructors without changing the
    [Policy.maker] signature. *)

val helpers : unit -> int
(** Number of helper domains in the global pool, creating the pool on first
    use (at least one helper, so the cross-domain path is exercised even on
    single-core machines).  If {!Domain.spawn} fails at pool creation —
    domain limit reached, OS refuses a thread — the pool keeps however many
    helpers did spawn (possibly zero), warns once on stderr, and
    {!parallel_iter} degrades to the inline sequential loop; results are
    unchanged. *)

val parallel_iter : ?workers:int -> (int -> unit) -> int -> unit
(** [parallel_iter ~workers f n] runs [f 0 .. f (n-1)], using up to
    [workers] domains in total (default {!default_workers}).  Falls back to
    an inline sequential loop when [workers <= 1], [n < 2], or another batch
    is in flight.  If tasks raise, the exception of the lowest-indexed
    failing task is re-raised (with its backtrace) after the whole batch has
    been attempted. *)

val parallel_chunks :
  ?workers:int -> ?chunk:int -> ?cutoff:int -> (int -> unit) -> int -> unit
(** [parallel_chunks ~workers ~chunk ~cutoff f n] runs [f 0 .. f (n-1)] like
    {!parallel_iter}, but workers claim {e contiguous chunks} of indices
    (default chunk size [n / (4·workers)], at least 1) — one atomic
    operation per chunk instead of one per task, which is what makes
    dispatching the REF engine's thousands of tiny per-instant stages
    affordable.  Batches of at most [cutoff] tasks (default
    {!default_cutoff}) run inline on the calling domain and never touch the
    pool: below that size the handoff costs more than the stage.

    Exception parity with {!parallel_iter}: every task is attempted even if
    an earlier task in the same chunk raised, and the exception of the
    lowest-indexed failing task is re-raised (with its original backtrace)
    after the whole batch has drained.  Tasks must be independent. *)

val default_cutoff : int
(** The default sequential cutoff of {!parallel_chunks}. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot map for embarrassingly-parallel experiment sweeps: [map
    ~workers f tasks] applies [f] to every task using freshly spawned
    domains (default worker count {!recommended_workers}; the short-lived
    domains are independent of the persistent pool, so [f] may itself call
    {!parallel_iter}).  Results are in input order.  If any task raises, the
    first exception (in input order) is re-raised — with its original
    backtrace — after all workers finish.  With [workers = 1] no domain is
    spawned (plain [List.map]). *)

val map_chunked :
  ?workers:int -> ?chunk:int -> ?cutoff:int -> ('a -> 'b) -> 'a array ->
  'b array
(** Chunked map on the {e persistent} pool (no domain spawning, unlike
    {!map}): [map_chunked f a] returns [Array.map f a], with the
    applications dispatched through {!parallel_chunks}.  Order preservation
    is structural — task [i] writes result slot [i].  If applications raise,
    the first exception in input order is re-raised with its backtrace after
    the batch drains. *)

(**/**)

val unsafe_reset_for_testing :
  spawn:(((unit -> unit) -> unit) option) -> unit
(** Discard the global pool and install a replacement for [Domain.spawn]
    ([None] restores the real one).  Helpers of a previously created pool
    are orphaned parked on a dead condition variable — acceptable only in
    tests. *)
