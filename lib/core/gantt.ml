let org_glyph org =
  if org < 0 then '?'
  else if org < 10 then Char.chr (Char.code '0' + org)
  else Char.chr (Char.code 'a' + ((org - 10) mod 26))

let render ?(width = 72) ?upto schedule =
  let upto =
    match upto with
    | Some u -> u
    | None -> Stdlib.max 1 (Schedule.makespan schedule)
  in
  let machines = Schedule.machines schedule in
  let columns = Stdlib.min width upto in
  let span = float_of_int upto /. float_of_int columns in
  (* occupancy.(m).(col) = org counts within the column's time span *)
  let buf = Buffer.create ((machines + 2) * (columns + 8)) in
  let col_of t = Stdlib.min (columns - 1) (int_of_float (float_of_int t /. span)) in
  let grid = Array.init machines (fun _ -> Array.make columns []) in
  (* Killed segments are marked with the sentinel org −2, rendered 'x':
     occupancy that was paid for but produced nothing. *)
  let mark_placement ~org (p : Schedule.placement) =
    let finish = Stdlib.min (Schedule.completion p) upto in
    let rec mark t =
      if t < finish then begin
        let col = col_of t in
        grid.(p.machine).(col) <- org :: grid.(p.machine).(col);
        mark (t + 1)
      end
    in
    if p.start < upto then mark p.start
  in
  List.iter
    (fun (p : Schedule.placement) -> mark_placement ~org:p.job.Job.org p)
    (Schedule.placements schedule);
  List.iter (mark_placement ~org:(-2)) (Schedule.killed schedule);
  let glyph cell =
    match cell with
    | [] -> '-'
    | orgs -> (
        (* Majority organization within the column span. *)
        let tally = Hashtbl.create 4 in
        List.iter
          (fun org ->
            Hashtbl.replace tally org
              (1 + Option.value (Hashtbl.find_opt tally org) ~default:0))
          orgs;
        let best =
          Hashtbl.fold
            (fun org n acc ->
              match acc with
              | Some (_, bn) when bn > n -> acc
              | Some (_, bn) when bn = n -> Some (-1, n) (* tie *)
              | _ -> Some (org, n))
            tally None
        in
        match best with
        | Some (-1, _) -> '~'
        | Some (-2, _) -> 'x'
        | Some (org, _) -> org_glyph org
        | None -> '-')
  in
  Array.iteri
    (fun m row ->
      Buffer.add_string buf (Printf.sprintf "m%-3d |" m);
      Array.iter (fun cell -> Buffer.add_char buf (glyph cell)) row;
      Buffer.add_string buf "|\n")
    grid;
  Buffer.add_string buf
    (Printf.sprintf "      t=0%s%d\n"
       (String.make (Stdlib.max 1 (columns - String.length (string_of_int upto) - 3)) ' ')
       upto);
  Buffer.contents buf
