type t = {
  machines : int array;
  jobs : Job.t array;
  horizon : int;
  speeds : float array option;
}

let make_general ~speeds ~machines ~jobs ~horizon =
  let k = Array.length machines in
  if k = 0 then invalid_arg "Instance.make: no organizations";
  Array.iter
    (fun m -> if m < 0 then invalid_arg "Instance.make: negative machines")
    machines;
  if Array.for_all (fun m -> m = 0) machines then
    invalid_arg "Instance.make: no machines at all";
  if horizon <= 0 then invalid_arg "Instance.make: non-positive horizon";
  List.iter
    (fun (j : Job.t) ->
      if j.org < 0 || j.org >= k then
        invalid_arg "Instance.make: job organization out of range";
      if j.release >= horizon then
        invalid_arg "Instance.make: job released at or after the horizon")
    jobs;
  (* Stable sort keeps the submission order of same-release jobs, then
     re-index per organization so that FIFO rank matches release order. *)
  let arr = Array.of_list jobs in
  let tagged = Array.mapi (fun pos j -> (pos, j)) arr in
  Array.sort
    (fun (p1, j1) (p2, j2) ->
      match Job.compare_release j1 j2 with
      | 0 -> Stdlib.compare p1 p2
      | c -> c)
    tagged;
  let next_index = Array.make k 0 in
  let jobs =
    Array.map
      (fun (_, (j : Job.t)) ->
        let index = next_index.(j.org) in
        next_index.(j.org) <- index + 1;
        { j with Job.index })
      tagged
  in
  (match speeds with
  | None -> ()
  | Some sp ->
      if Array.length sp <> Array.fold_left ( + ) 0 machines then
        invalid_arg "Instance.make: speeds length must match machine count";
      Array.iter
        (fun s -> if s <= 0. then invalid_arg "Instance.make: speed <= 0")
        sp);
  { machines; jobs; horizon; speeds }

let organizations t = Array.length t.machines
let total_machines t = Array.fold_left ( + ) 0 t.machines
let job_count t = Array.length t.jobs

let jobs_of_org t u =
  Array.to_list t.jobs |> List.filter (fun (j : Job.t) -> j.org = u)

let total_work t =
  Array.fold_left (fun acc (j : Job.t) -> acc + j.size) 0 t.jobs

let share t u =
  float_of_int t.machines.(u) /. float_of_int (total_machines t)

let pp ppf t =
  Format.fprintf ppf "instance(k=%d, m=%d, jobs=%d, horizon=%d)"
    (organizations t) (total_machines t) (job_count t) t.horizon

let pp_detailed ppf t =
  pp ppf t;
  Format.fprintf ppf "@.machines: %a@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (Array.to_list t.machines);
  Array.iter (fun j -> Format.fprintf ppf "  %a@." Job.pp j) t.jobs


let machine_speed t i =
  match t.speeds with
  | None -> 1.0
  | Some sp ->
      if i < 0 || i >= Array.length sp then
        invalid_arg "Instance.machine_speed"
      else sp.(i)

let speeds_of_org t u =
  let offset =
    let rec go acc v = if v >= u then acc else go (acc + t.machines.(v)) (v + 1) in
    go 0 0
  in
  Array.init t.machines.(u) (fun i -> machine_speed t (offset + i))


let make ~machines ~jobs ~horizon =
  make_general ~speeds:None ~machines ~jobs ~horizon

let make_related ~speeds ~machines ~jobs ~horizon =
  make_general ~speeds:(Some speeds) ~machines ~jobs ~horizon
