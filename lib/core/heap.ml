type 'a entry = { prio : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  ignore capacity;
  { data = [||]; size = 0 }

let is_empty h = h.size = 0
let size h = h.size

let grow h entry =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap entry in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up data i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if data.(i).prio < data.(parent).prio then begin
      let tmp = data.(i) in
      data.(i) <- data.(parent);
      data.(parent) <- tmp;
      sift_up data parent
    end
  end

let rec sift_down data size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < size && data.(l).prio < data.(!smallest).prio then smallest := l;
  if r < size && data.(r).prio < data.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    let tmp = data.(i) in
    data.(i) <- data.(!smallest);
    data.(!smallest) <- tmp;
    sift_down data size !smallest
  end

let add h ~prio value =
  let entry = { prio; value } in
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h.data (h.size - 1)

let min_prio h = if h.size = 0 then None else Some h.data.(0).prio

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h.data h.size 0
    end;
    Some (top.prio, top.value)
  end

let remove_first h pred =
  let rec find i =
    if i >= h.size then None
    else if pred h.data.(i).value then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let entry = h.data.(i) in
      h.size <- h.size - 1;
      if i < h.size then begin
        h.data.(i) <- h.data.(h.size);
        (* The moved entry may violate the heap property in either
           direction; one sift each way restores it (at most one moves). *)
        sift_down h.data h.size i;
        sift_up h.data i
      end;
      Some (entry.prio, entry.value)

let pop_le h bound =
  match min_prio h with
  | Some p when p <= bound -> pop h
  | Some _ | None -> None

let clear h = h.size <- 0

let to_list h =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) ((h.data.(i).prio, h.data.(i).value) :: acc)
  in
  go (h.size - 1) []
