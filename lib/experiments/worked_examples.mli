(** The paper's worked examples, reproduced programmatically:

    - Figure 2: the ψsp arithmetic on the 10-job, 3-processor schedule
      (utilities at t = 13 and t = 14, flow time, the effect of removing
      J(2)1, delaying J6, dropping J9);
    - Figure 7 / Theorem 6.2: the tight ¾-competitive utilization family;
    - Proposition 5.5: the 3-organization game that is not supermodular. *)

type fig2 = {
  psi_o1_at_13 : float;  (** paper: 262 *)
  psi_o1_at_14 : float;  (** paper: 297 *)
  flow_time_at_14 : int;  (** paper: 70 *)
  gain_without_competitor : float;
      (** ψsp gain at 14 if J(2)1 is absent and J9 starts at 9: paper: +4 *)
  loss_delaying_j6 : float;  (** ψsp loss if J6 starts one unit later: 6 *)
  loss_dropping_j9 : float;  (** ψsp loss if J9 is never scheduled: 10 *)
}

val figure2 : unit -> fig2

val figure2_schedule : unit -> (int * int) list
(** The (start, size) pieces of organization 1's nine jobs in Figure 2. *)

type utilization_row = {
  m : int;
  p : int;
  greedy_worst : float;  (** short-jobs-first greedy *)
  greedy_best : float;  (** long-jobs-first greedy *)
  optimal : float;  (** always 1.0 for this family *)
  ratio : float;  (** greedy_worst / optimal — approaches 0.75 *)
}

val utilization_sweep : (int * int) list -> utilization_row list
(** One row per (m, p) pair of the Figure-7 family. *)

val prop55_values : unit -> (Shapley.Coalition.t * float) list
(** Coalition values of the Proposition 5.5 counterexample at t = 2,
    computed by actually scheduling (not hard-coded): v({a,c}) = 4,
    v({b,c}) = 4, v({a,b,c}) = 7, v({c}) = 0. *)

val prop55_is_supermodular : unit -> bool
(** Should be [false]. *)
