let recommended_workers = Core.Domain_pool.recommended_workers
let parallel_iter = Core.Domain_pool.parallel_iter

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ?workers f tasks =
  let workers =
    match workers with Some w -> Stdlib.max 1 w | None -> recommended_workers ()
  in
  match tasks with
  | [] -> []
  | _ when workers = 1 -> List.map f tasks
  | _ ->
      let tasks = Array.of_list tasks in
      let n = Array.length tasks in
      let results = Array.make n Pending in
      let next = Atomic.make 0 in
      let worker () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (results.(i) <-
               (match f tasks.(i) with
               | v -> Done v
               | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
            go ()
          end
        in
        go ()
      in
      let domains =
        List.init
          (Stdlib.min workers n)
          (fun _ -> Domain.spawn worker)
      in
      List.iter Domain.join domains;
      Array.to_list results
      |> List.map (function
           | Done v -> v
           | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false)
