let recommended_workers () =
  Stdlib.max 1 (Domain.recommended_domain_count () - 1)

type 'b slot = Pending | Done of 'b | Failed of exn

let map ?workers f tasks =
  let workers =
    match workers with Some w -> Stdlib.max 1 w | None -> recommended_workers ()
  in
  match tasks with
  | [] -> []
  | _ when workers = 1 -> List.map f tasks
  | _ ->
      let tasks = Array.of_list tasks in
      let n = Array.length tasks in
      let results = Array.make n Pending in
      let next = Atomic.make 0 in
      let worker () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (results.(i) <-
               (match f tasks.(i) with
               | v -> Done v
               | exception e -> Failed e));
            go ()
          end
        in
        go ()
      in
      let domains =
        List.init
          (Stdlib.min workers n)
          (fun _ -> Domain.spawn worker)
      in
      List.iter Domain.join domains;
      Array.to_list results
      |> List.map (function
           | Done v -> v
           | Failed e -> raise e
           | Pending -> assert false)
