(* Deprecated shim: the pool now lives in Core.Domain_pool (one-shot [map]
   and the persistent [parallel_iter] side by side).  Kept so external users
   of the experiments library keep compiling; in-tree callers use
   Core.Domain_pool directly. *)

let recommended_workers = Core.Domain_pool.recommended_workers
let parallel_iter = Core.Domain_pool.parallel_iter
let map = Core.Domain_pool.map
