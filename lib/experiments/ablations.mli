(** Ablation studies on the design choices DESIGN.md calls out.

    - {!rand_sample_sweep}: sensitivity of RAND's fairness to the number of
      sampled coalition orders N (the paper evaluates N = 15 and N = 75 and
      finds 15 sufficient — Section 7.1);
    - {!endowment_sweep}: Zipf vs uniform machine endowments (Section 7.2
      runs both and reports that conclusions agree);
    - {!load_sweep}: fairness gaps as a function of offered load — the
      mechanism behind the per-trace differences in Table 1 (contention is
      what lets an unfair policy hurt). *)

type row = { label : string; per_algorithm : (string * float * float) list }
(** (algorithm, mean ratio, stddev). *)

val rand_sample_sweep :
  ?samples:int list -> ?instances:int -> ?horizon:int -> seed:int -> unit -> row list

val endowment_sweep :
  ?instances:int -> ?horizon:int -> seed:int -> unit -> row list

val load_sweep :
  ?loads:float list -> ?instances:int -> ?horizon:int -> seed:int -> unit -> row list

val concept_sweep :
  ?instances:int -> ?horizon:int -> seed:int -> unit -> row list
(** The paper's future-work question, quantified: how far does a fair
    schedule driven by the {e normalized Banzhaf value} drift from the
    Shapley-fair one?  Reports Δψ/p_tot of REF-Banzhaf against the Shapley
    REF reference, with RAND-15 and FAIRSHARE for scale. *)

val decay_sweep :
  ?half_lives:float list -> ?instances:int -> ?horizon:int -> seed:int -> unit -> row list
(** Not in the paper: production fair-share schedulers decay usage with a
    half-life (Maui/SLURM).  Sweeping the half-life against the
    non-decayed FAIRSHARE/DIRECTCONTR shows decay does not improve mean
    unfairness w.r.t. the (cumulative) Shapley reference — forgetting real
    debts costs fairness — but substantially reduces its variance. *)

type manipulation_row = {
  scheduler : string;
  psi_merged : float;  (** ψsp of the manipulating org presenting one job *)
  psi_split : float;  (** ... presenting the same work as 12 pieces *)
  done_merged : int;  (** time its last piece completes, merged *)
  done_split : int;
  splitting_pays : bool;
}

val manipulation_sweep : unit -> manipulation_row list
(** The Section 4 motivation, end to end: one organization presents 60 s of
    work merged or split against a busy competitor, scheduled either by the
    ψsp-fair REF or by the {e same} fair algorithm driven by (negated) flow
    time.  Under flow-driven fairness splitting finishes the work twice as
    fast (the scheduler favors orgs with many short jobs); under ψsp it
    gains nothing — the paper's reason for Theorem 4.1. *)

val pp_manipulation : Format.formatter -> manipulation_row list -> unit

val pp_rows : Format.formatter -> row list -> unit
