(** Unfairness as a function of time (supporting the Table 1 → Table 2
    comparison: "as we changed the duration of the experiments from 5·10⁴ to
    5·10⁵ ... the unfairness ratio was increasing").

    One synthetic workload, snapshots every [step] seconds, Δψ(t)/p_tot(t)
    per algorithm — the whole Table 2 growth phenomenon in one chart. *)

type config = {
  model : Workload.Traces.model;
  norgs : int;
  machines : int;
  horizon : int;
  step : int;  (** snapshot spacing *)
  algorithms : (string * Algorithms.Policy.maker) list;
  instances : int;  (** averaged point-wise over random instances *)
  seed : int;
  faults : Faults.Event.timed list;
      (** injected into every run (reference and candidates alike) *)
  max_restarts : int option;  (** kill budget per job under faults *)
}

val default_config :
  ?horizon:int ->
  ?instances:int ->
  ?faults:Faults.Event.timed list ->
  ?max_restarts:int ->
  unit ->
  config
(** LPC-EGEE, 5 orgs, 16 machines, horizon 2·10⁵, 20 snapshots, the
    evaluated line-up minus the slow RAND-75.  [faults] defaults to none. *)

type series = { algorithm : string; points : (int * float) list }
type figure = { config : config; series : series list }

val run : ?workers:int -> config -> figure
val pp : Format.formatter -> figure -> unit
val to_csv : figure -> string
