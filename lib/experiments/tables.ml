type config = {
  horizon : int;
  instances : int;
  norgs : int;
  machines : int;
  endowment : Workload.Scenario.endowment;
  algorithms : (string * Algorithms.Policy.maker) list;
  models : Workload.Traces.model list;
  seed : int;
}

let paper_lineup =
  [
    ("roundrobin", Algorithms.Baselines.round_robin);
    ("rand-15", Algorithms.Rand.rand15);
    ("directcontr", Algorithms.Direct_contr.direct_contr);
    ("fairshare", Algorithms.Fair_share.fair_share);
    ("utfairshare", Algorithms.Fair_share.ut_fair_share);
    ("currfairshare", Algorithms.Fair_share.curr_fair_share);
  ]

let table1_config ?(instances = 10) ?(machines = 16) () =
  {
    horizon = 50_000;
    instances;
    norgs = 5;
    machines;
    endowment = Workload.Scenario.Zipf 1.0;
    algorithms = paper_lineup;
    models = Workload.Traces.all;
    seed = 2013;
  }

let table2_config ?(instances = 5) ?(machines = 16) () =
  { (table1_config ~instances ~machines ()) with horizon = 500_000; seed = 2014 }

type cell = { mean : float; stddev : float; n : int }
type table = { config : config; rows : (string * (string * cell) list) list }

let run ?(progress = fun _ -> ()) ?workers config =
  Obs.Trace.span ~cat:"experiments" "experiments.tables" @@ fun () ->
  let per_algo : (string, (string * Fstats.Summary.t) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let summary algo model =
    let cells =
      match Hashtbl.find_opt per_algo algo with
      | Some cells -> cells
      | None ->
          let cells = ref [] in
          Hashtbl.add per_algo algo cells;
          cells
    in
    match List.assoc_opt model !cells with
    | Some s -> s
    | None ->
        let s = Fstats.Summary.create () in
        cells := (model, s) :: !cells;
        s
  in
  (* One task per (model, instance): tasks are independent (each builds its
     own instance from its own seed), so they run on the domain pool; the
     summaries are aggregated sequentially afterwards to keep the
     accumulation order deterministic. *)
  List.iter
    (fun model ->
      let t0 = Obs.Clock.now_ns () in
      let ratios =
        Core.Domain_pool.map ?workers
          (fun i ->
            let spec =
              Workload.Scenario.default ~norgs:config.norgs
                ~machines:config.machines ~horizon:config.horizon
                ~endowment:config.endowment model
            in
            let seed = config.seed + (7919 * i) in
            let instance = Workload.Scenario.instance spec ~seed in
            let _, evals =
              Sim.Fairness.evaluate ~instance ~seed:(seed lxor 0xbeef)
                (List.map snd config.algorithms)
            in
            List.map (fun (e : Sim.Fairness.evaluation) -> e.Sim.Fairness.ratio) evals)
          (List.init config.instances (fun i -> i + 1))
      in
      List.iter
        (fun per_algo ->
          List.iter2
            (fun (name, _) ratio ->
              Fstats.Summary.add
                (summary name model.Workload.Traces.name)
                ratio)
            config.algorithms per_algo)
        ratios;
      progress
        (Printf.sprintf "%s: %d instances in %.1fs"
           model.Workload.Traces.name config.instances
           (Obs.Clock.elapsed t0)))
    config.models;
  let rows =
    List.map
      (fun (name, _) ->
        let cells =
          List.map
            (fun model ->
              let s = summary name model.Workload.Traces.name in
              ( model.Workload.Traces.name,
                {
                  mean = Fstats.Summary.mean s;
                  stddev = Fstats.Summary.stddev s;
                  n = Fstats.Summary.count s;
                } ))
            config.models
        in
        (name, cells))
      config.algorithms
  in
  { config; rows }

let pp ppf t =
  let model_names =
    List.map (fun m -> m.Workload.Traces.name) t.config.models
  in
  Format.fprintf ppf "%-14s" "";
  List.iter (fun m -> Format.fprintf ppf " | %22s" m) model_names;
  Format.fprintf ppf "@.%-14s" "";
  List.iter (fun _ -> Format.fprintf ppf " | %10s %11s" "avg" "st.dev") model_names;
  Format.fprintf ppf "@.";
  List.iter
    (fun (algo, cells) ->
      Format.fprintf ppf "%-14s" algo;
      List.iter
        (fun m ->
          match List.assoc_opt m cells with
          | Some c -> Format.fprintf ppf " | %10.2f %11.2f" c.mean c.stddev
          | None -> Format.fprintf ppf " | %22s" "-")
        model_names;
      Format.fprintf ppf "@.")
    t.rows

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "algorithm,model,mean,stddev,n\n";
  List.iter
    (fun (algo, cells) ->
      List.iter
        (fun (model, c) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%f,%f,%d\n" algo model c.mean c.stddev c.n))
        cells)
    t.rows;
  Buffer.contents buf
