type row = { label : string; per_algorithm : (string * float * float) list }

let evaluate_set ~label ~algorithms ~instances ~seed make_instance =
  let summaries = List.map (fun (name, _) -> (name, Fstats.Summary.create ())) algorithms in
  for i = 1 to instances do
    let instance = make_instance ~seed:(seed + (7919 * i)) in
    let _, evals =
      Sim.Fairness.evaluate ~instance ~seed:(seed lxor (i * 131))
        (List.map snd algorithms)
    in
    List.iter2
      (fun (name, _) (e : Sim.Fairness.evaluation) ->
        Fstats.Summary.add (List.assoc name summaries) e.Sim.Fairness.ratio)
      algorithms evals
  done;
  {
    label;
    per_algorithm =
      List.map
        (fun (name, s) ->
          (name, Fstats.Summary.mean s, Fstats.Summary.stddev s))
        summaries;
  }

let lpc = Workload.Traces.lpc_egee

let rand_sample_sweep ?(samples = [ 5; 15; 75 ]) ?(instances = 5)
    ?(horizon = 50_000) ~seed () =
  let make_instance ~seed =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs:5 ~machines:16 ~horizon lpc)
      ~seed
  in
  List.map
    (fun n ->
      evaluate_set
        ~label:(Printf.sprintf "N=%d" n)
        ~algorithms:
          [ (Printf.sprintf "rand-%d" n, Algorithms.Rand.rand ?value_cache:None ~n) ]
        ~instances ~seed make_instance)
    samples

let endowment_sweep ?(instances = 5) ?(horizon = 50_000) ~seed () =
  let algorithms =
    [
      ("rand-15", Algorithms.Rand.rand15);
      ("directcontr", Algorithms.Direct_contr.direct_contr);
      ("fairshare", Algorithms.Fair_share.fair_share);
      ("roundrobin", Algorithms.Baselines.round_robin);
    ]
  in
  List.map
    (fun (label, endowment) ->
      let make_instance ~seed =
        Workload.Scenario.instance
          (Workload.Scenario.default ~norgs:5 ~machines:16 ~horizon ~endowment
             lpc)
          ~seed
      in
      evaluate_set ~label ~algorithms ~instances ~seed make_instance)
    [
      ("zipf(1.0)", Workload.Scenario.Zipf 1.0);
      ("uniform", Workload.Scenario.Uniform);
    ]

let load_sweep ?(loads = [ 0.3; 0.6; 0.9; 1.2 ]) ?(instances = 5)
    ?(horizon = 50_000) ~seed () =
  let algorithms =
    [
      ("rand-15", Algorithms.Rand.rand15);
      ("fairshare", Algorithms.Fair_share.fair_share);
      ("roundrobin", Algorithms.Baselines.round_robin);
    ]
  in
  List.map
    (fun load ->
      let make_instance ~seed =
        Workload.Scenario.instance
          (Workload.Scenario.default ~norgs:5 ~machines:16 ~horizon ~load lpc)
          ~seed
      in
      evaluate_set
        ~label:(Printf.sprintf "load=%.1f" load)
        ~algorithms ~instances ~seed make_instance)
    loads

let concept_sweep ?(instances = 5) ?(horizon = 50_000) ~seed () =
  let make_instance ~seed =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs:4 ~machines:12 ~horizon lpc)
      ~seed
  in
  [
    evaluate_set ~label:"vs shapley"
      ~algorithms:
        [
          ("ref-banzhaf", Algorithms.Reference.banzhaf);
          ("rand-15", Algorithms.Rand.rand15);
          ("fairshare", Algorithms.Fair_share.fair_share);
        ]
      ~instances ~seed make_instance;
  ]

let decay_sweep ?(half_lives = [ 2_000.; 10_000.; 50_000. ]) ?(instances = 5)
    ?(horizon = 200_000) ~seed () =
  let make_instance ~seed =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs:5 ~machines:16 ~horizon lpc)
      ~seed
  in
  let base =
    evaluate_set ~label:"no decay"
      ~algorithms:
        [
          ("fairshare", Algorithms.Fair_share.fair_share);
          ("directcontr", Algorithms.Direct_contr.direct_contr);
        ]
      ~instances ~seed make_instance
  in
  base
  :: List.map
       (fun hl ->
         evaluate_set
           ~label:(Printf.sprintf "hl=%g" hl)
           ~algorithms:
             [
               ("fairshare", Algorithms.Decayed.fair_share ~half_life:hl);
               ("directcontr", Algorithms.Decayed.direct_contr ~half_life:hl);
             ]
           ~instances ~seed make_instance)
       half_lives

type manipulation_row = {
  scheduler : string;
  psi_merged : float;
  psi_split : float;
  done_merged : int;
  done_split : int;
  splitting_pays : bool;
}

let manipulation_sweep () =
  let competitor =
    List.init 20 (fun i ->
        Core.Job.make ~org:1 ~index:i ~release:(i * 5) ~size:6 ())
  in
  let horizon = 200 in
  let run_with maker jobs0 =
    let instance =
      Core.Instance.make ~machines:[| 1; 1 |] ~jobs:(jobs0 @ competitor)
        ~horizon
    in
    let r = Sim.Driver.run ~instance ~rng:(Fstats.Rng.create ~seed:7) maker in
    let finish =
      List.fold_left
        (fun acc (p : Core.Schedule.placement) ->
          if p.Core.Schedule.job.Core.Job.org = 0 then
            Stdlib.max acc (Core.Schedule.completion p)
          else acc)
        0
        (Core.Schedule.placements r.Sim.Driver.schedule)
    in
    ((Sim.Driver.utilities r).(0), finish)
  in
  let merged = [ Core.Job.make ~org:0 ~index:0 ~release:0 ~size:60 () ] in
  let split =
    List.init 12 (fun i -> Core.Job.make ~org:0 ~index:i ~release:0 ~size:5 ())
  in
  let flow_maker =
    Algorithms.Ref_generic.make_with
      (fun inst ->
        Utility.Functions.neg_flow_time
          ~all_jobs:(Array.to_list inst.Core.Instance.jobs))
      ~name:"ref-flow" ()
  in
  List.map
    (fun (scheduler, maker) ->
      let psi_merged, done_merged = run_with maker merged in
      let psi_split, done_split = run_with maker split in
      {
        scheduler;
        psi_merged;
        psi_split;
        done_merged;
        done_split;
        (* Splitting pays when it completes the same work strictly sooner. *)
        splitting_pays = done_split < done_merged;
      })
    [
      ("ref (psp)", Algorithms.Reference.reference);
      ("ref (flow time)", flow_maker);
    ]

let pp_manipulation ppf rows =
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-18s merged: psi=%-8.0f done@@%-4d | split: psi=%-8.0f done@@%-4d          | splitting pays? %b@."
        r.scheduler r.psi_merged r.done_merged r.psi_split r.done_split
        r.splitting_pays)
    rows

let pp_rows ppf rows =
  List.iter
    (fun row ->
      Format.fprintf ppf "%-12s" row.label;
      List.iter
        (fun (name, mean, std) ->
          Format.fprintf ppf " | %s: %10.2f ± %-10.2f" name mean std)
        row.per_algorithm;
      Format.fprintf ppf "@.")
    rows
