open Core

(* Figure 2's schedule (reconstructed so that every number quoted in the
   caption matches): three machines, all jobs released at 0.

     M1: J1(0,3)  J4(3,6)  J8(9,3)
     M2: J2(0,4)  J6(4,6)  J9(10,4)
     M3: J3(0,3)  J5(3,3)  J7(6,3)  J(2)1(9,5)

   Organization 1 owns J1..J9; organization 2 owns the 5-unit job started at
   t = 9, which is why J9 only starts at 10. *)
let o1_pieces =
  [ (0, 3); (0, 4); (0, 3); (3, 6); (3, 3); (4, 6); (6, 3); (9, 3); (10, 4) ]

let figure2_schedule () = o1_pieces

type fig2 = {
  psi_o1_at_13 : float;
  psi_o1_at_14 : float;
  flow_time_at_14 : int;
  gain_without_competitor : float;
  loss_delaying_j6 : float;
  loss_dropping_j9 : float;
}

let psi pieces ~at =
  float_of_int (Utility.Psp.of_pieces_scaled pieces ~at) /. 2.

let figure2 () =
  let at13 = psi o1_pieces ~at:13 in
  let at14 = psi o1_pieces ~at:14 in
  (* All jobs released at 0, so flow time = Σ completions. *)
  let flow = List.fold_left (fun acc (s, p) -> acc + s + p) 0 o1_pieces in
  let without_competitor =
    List.map (fun (s, p) -> if (s, p) = (10, 4) then (9, p) else (s, p)) o1_pieces
  in
  let delayed_j6 =
    List.map (fun (s, p) -> if (s, p) = (4, 6) then (5, p) else (s, p)) o1_pieces
  in
  let dropped_j9 = List.filter (fun (s, p) -> (s, p) <> (10, 4)) o1_pieces in
  {
    psi_o1_at_13 = at13;
    psi_o1_at_14 = at14;
    flow_time_at_14 = flow;
    gain_without_competitor = psi without_competitor ~at:14 -. at14;
    loss_delaying_j6 = at14 -. psi delayed_j6 ~at:14;
    loss_dropping_j9 = at14 -. psi dropped_j9 ~at:14;
  }

type utilization_row = {
  m : int;
  p : int;
  greedy_worst : float;
  greedy_best : float;
  optimal : float;
  ratio : float;
}

let utilization_sweep params =
  List.map
    (fun (m, p) ->
      let instance = Sim.Utilization.figure7_instance ~m ~p in
      (* Worst greedy: serve organization 0 (the short jobs) first — FCFS
         with ties to the lowest id does exactly that.  Best greedy: serve
         the long jobs first. *)
      let worst =
        Sim.Utilization.run_utilization ~instance ~seed:1 Algorithms.Baselines.fifo
      in
      let longs_first _instance ~rng:_ =
        Algorithms.Policy.make ~name:"longs-first"
          ~select:(fun view ~time:_ ->
            match Cluster.waiting_orgs view.Algorithms.Policy.cluster with
            | orgs when List.mem 1 orgs -> 1
            | u :: _ -> u
            | [] -> invalid_arg "longs-first: nothing waiting")
          ()
      in
      let best =
        Sim.Utilization.run_utilization ~instance ~seed:1 longs_first
      in
      let optimal =
        float_of_int
          (Sim.Utilization.optimal_busy_time ~instance
             ~upto:instance.Instance.horizon)
        /. float_of_int (Instance.total_machines instance * instance.Instance.horizon)
      in
      { m; p; greedy_worst = worst; greedy_best = best; optimal;
        ratio = worst /. optimal })
    params

(* Proposition 5.5: organizations a, b, c with one machine each; a and b
   release two unit jobs each at t = 0; c has none.  Values at t = 2 are
   computed by running the FCFS greedy schedule of each coalition (for unit
   jobs every greedy schedule has the same value — Proposition 5.4). *)
let prop55_instance =
  lazy
    (let jobs =
       [
         Job.make ~org:0 ~index:0 ~release:0 ~size:1 ();
         Job.make ~org:0 ~index:1 ~release:0 ~size:1 ();
         Job.make ~org:1 ~index:0 ~release:0 ~size:1 ();
         Job.make ~org:1 ~index:1 ~release:0 ~size:1 ();
       ]
     in
     Instance.make ~machines:[| 1; 1; 1 |] ~jobs ~horizon:2)

let coalition_value mask =
  let instance = Lazy.force prop55_instance in
  if
    Shapley.Coalition.fold
      (fun u acc -> acc + instance.Instance.machines.(u))
      mask 0
    = 0
  then 0.
  else begin
    let sim = Algorithms.Coalition_sim.create ~instance ~members:mask () in
    Array.iter
      (fun (j : Job.t) ->
        if Shapley.Coalition.mem mask j.Job.org then
          Algorithms.Coalition_sim.add_release sim j)
      instance.Instance.jobs;
    Algorithms.Coalition_sim.advance_to sim ~time:2
      ~select:Algorithms.Baselines.fifo_select_sim;
    float_of_int (Algorithms.Coalition_sim.value_scaled sim ~at:2) /. 2.
  end

let prop55_values () =
  let grand = Shapley.Coalition.grand ~players:3 in
  List.filter_map
    (fun mask ->
      if mask = Shapley.Coalition.empty then None
      else Some (mask, coalition_value mask))
    (Shapley.Coalition.subcoalitions grand)

let prop55_is_supermodular () =
  let game = Shapley.Game.make ~players:3 coalition_value in
  Shapley.Game.is_supermodular game
