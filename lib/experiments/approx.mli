(** The approximation-tier study (DESIGN.md §13): exact REF vs the sampled
    RAND estimator, in accuracy and in wall time.

    [audit] checks the FPRAS guarantee where exact is feasible: for each k
    it builds a unit-job scheduling game (values rule-independent by
    Proposition 5.4), computes the exact Shapley value and the
    Hoeffding-sized sampled estimate, and reports the measured max |φ̂ − φ|
    against the Theorem 5.6 tolerance ε/k · v(grand) — with probability at
    least [confidence] every audited row stays within it.

    [scaling] shows why the tier exists: a full online simulation with the
    RAND policy at k up to 50, with exact REF run alongside only while its
    2^k sub-schedules are practical ([exact_ms_opt = None] beyond). *)

type audit_row = {
  k : int;
  n : int;  (** Hoeffding sample count for (epsilon, confidence) *)
  epsilon : float;
  confidence : float;
  exact_ms : float;
  sampled_ms : float;
  max_abs_err : float;
  tolerance : float;  (** ε/k · v(grand) *)
  within_bound : bool;
}

type scaling_row = {
  s_k : int;
  s_n : int;  (** sampled joining orders *)
  s_jobs : int;
  s_events : int;
  rand_ms : float;
  exact_ms_opt : float option;
      (** REF on the same workload, [None] where infeasible (k > 8 here) *)
}

val audit_one :
  k:int -> jobs_per_org:int -> at:int -> epsilon:float -> confidence:float ->
  seed:int -> audit_row

val audit :
  ?ks:int list -> ?jobs_per_org:int -> ?at:int -> ?epsilon:float ->
  ?confidence:float -> seed:int -> unit -> audit_row list

val scaling :
  ?ks:int list -> ?n:int -> ?jobs_per_org:int -> ?horizon:int -> seed:int ->
  unit -> scaling_row list

val pp_audit : Format.formatter -> audit_row list -> unit
val pp_scaling : Format.formatter -> scaling_row list -> unit
