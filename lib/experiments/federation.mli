(** The peak-offloading study: does endowment churn pay, and when?

    The motivating scenario of the federated-cloud setting is
    organizations whose load peaks at different times lending each other
    machines ({!Federation.Model}).  This experiment sweeps the
    peak-phase [correlation] knob: each org submits a burst of jobs at
    its peak and lends part of its endowment during its off-peak
    half-cycle.  At correlation 0 the peaks are evenly staggered —
    borrowed machines arrive exactly when the borrower needs them; at
    correlation 1 everyone peaks at once and the lent machines are
    reclaimed just as they would become useful.

    Three ψsp totals are compared per run, all under REF:
    - {e federated} — the consortium with the endowment-event trace
      applied (ownership moves, ψsp attributes to the current owner);
    - {e static} — the same pooled consortium with no endowment events;
    - {e standalone} — each org alone on its own home machines (the sum
      of singleton coalition values, the individual-rationality floor).

    The cooperation gain [(Σψ − Σψ_standalone) / Σψ_standalone] is the
    value created by pooling; the federated−static gap isolates what the
    churn itself adds or costs. *)

type config = {
  norgs : int;
  machines_per_org : int;  (** uniform home endowment per org *)
  horizon : int;
  instances : int;  (** seeds per correlation value *)
  correlations : float list;
  period : int;  (** peak cycle length ({!Federation.Model.spec}) *)
  lend : int;  (** machines lent per org per cycle *)
  jitter : float;  (** per-org phase jitter of the {e lending} trace *)
  burst : int;  (** jobs each org submits at its peak *)
  job_size : int;
  seed : int;
}

val default_config :
  ?norgs:int ->
  ?machines_per_org:int ->
  ?horizon:int ->
  ?instances:int ->
  ?correlations:float list ->
  ?period:int ->
  ?lend:int ->
  ?jitter:float ->
  ?burst:int ->
  ?job_size:int ->
  ?seed:int ->
  unit ->
  config
(** 3 orgs x 2 machines, horizon 1200, period 200, burst 6 x 20 s jobs,
    correlations [0, 0.25, 0.5, 0.75, 1], 3 instances, seed 2013. *)

type cell = { mean : float; stddev : float; n : int }

type row = {
  correlation : float;
  lends : cell;  (** endowment events (lend kind) per run *)
  psi_federated : cell;  (** Σψsp with the endowment trace applied *)
  psi_static : cell;  (** Σψsp of the pooled consortium, no churn *)
  psi_standalone : cell;  (** Σ over orgs of ψ alone on home machines *)
  psi_shift : cell;
      (** Σ over orgs of |ψ_federated − ψ_static| / Σψ_static — the
          attribution mass the churn moves between orgs.  Lending is
          placement-neutral, so the totals match; the shift is where the
          mechanism's ownership-follows-the-machine rule shows. *)
  gain_federated : cell;  (** (federated − standalone) / standalone *)
  gain_static : cell;  (** (static − standalone) / standalone *)
}

type study = { config : config; rows : row list }

val run : ?progress:(string -> unit) -> ?workers:int -> config -> study
(** One row per correlation value; instances run on the domain pool.
    [progress] receives one line per completed correlation. *)

val pp : Format.formatter -> study -> unit
val to_csv : study -> string
val to_json : study -> string
