(** Regeneration of Figure 10: unfairness Δψ/p_tot as a function of the
    number of organizations (LPC-EGEE workload).

    The paper varies k from 2 to 10 and plots one curve per algorithm
    (ROUNDROBIN, CURRFAIRSHARE, FAIRSHARE, DIRECTCONTR, RAND-15); the
    unfairness of every algorithm grows with k, and the gaps widen.  REF's
    cost grows as 3^k, so the instance count and pool size shrink as k grows
    unless overridden. *)

type config = {
  org_counts : int list;
  instances : int;
  horizon : int;
  machines : int;
  algorithms : (string * Algorithms.Policy.maker) list;
  model : Workload.Traces.model;
  seed : int;
}

val default_config : ?instances:int -> ?horizon:int -> ?max_orgs:int -> unit -> config

type point = { norgs : int; mean : float; stddev : float }
type series = { algorithm : string; points : point list }
type figure = { config : config; series : series list }

val run : ?progress:(string -> unit) -> ?workers:int -> config -> figure
(** Instances run in parallel on the {!Pool} (results independent of the
    worker count). *)

val pp : Format.formatter -> figure -> unit
(** Prints the series as aligned columns (one row per k). *)

val to_csv : figure -> string
