(** Empirical coalition stability of the fair allocation.

    The paper's opening motivation: organizations "may refuse to join an
    unfair system" or secede into sub-consortia.  Game-theoretically, a
    coalition C has an incentive to secede when its members' utilities under
    the grand-coalition schedule fall short of what C could produce alone:

      excess(C) = v(C) − Σ_{u∈C} ψ_u(grand)

    A positive excess is a standing secession threat (a core violation).
    The Shapley value is not guaranteed to lie in the core of a
    non-supermodular game (Prop. 5.5 shows the scheduling game is not), so
    the interesting question is empirical: how large are the violations
    under the Shapley-fair algorithm, and how much larger under static
    shares or round robin?

    [v(C)] is computed by scheduling C's jobs on C's machines with the fair
    rule (the same sub-coalition machinery REF uses). *)

type report = {
  policy : string;
  max_excess : float;  (** largest excess over all proper coalitions *)
  mean_positive_excess : float;  (** mean over coalitions with excess > 0 *)
  violating : int;  (** coalitions with excess > tolerance *)
  coalitions : int;  (** proper non-empty coalitions tested *)
  max_excess_ratio : float;  (** max excess / v(grand) *)
}

val analyze :
  instance:Core.Instance.t ->
  seed:int ->
  (string * Algorithms.Policy.maker) list ->
  report list
(** One report per policy.  Uses an absolute tolerance of one job-slot
    (excess ≤ 2 scaled units is counted as no violation: discreteness). *)

val pp : Format.formatter -> report list -> unit

val demo : ?norgs:int -> ?seed:int -> unit -> report list
(** A contended 4-organization LPC-like scenario comparing REF, FAIRSHARE
    and ROUNDROBIN. *)
