open Core

type report = {
  policy : string;
  max_excess : float;
  mean_positive_excess : float;
  violating : int;
  coalitions : int;
  max_excess_ratio : float;
}

(* Standalone value of coalition C: schedule C's jobs on C's machines with
   the FCFS greedy rule.  (For the stability question the secessionists
   would run their own scheduler; any greedy rule gives the same total for
   unit jobs and nearly the same total otherwise — the work is conserved.) *)
let standalone_value ~instance ~mask ~at =
  let owns_machines =
    Shapley.Coalition.fold
      (fun u acc -> acc + instance.Instance.machines.(u))
      mask 0
    > 0
  in
  if not owns_machines then 0.
  else begin
    let sim = Algorithms.Coalition_sim.create ~instance ~members:mask () in
    Array.iter
      (fun (j : Job.t) ->
        if Shapley.Coalition.mem mask j.Job.org then
          Algorithms.Coalition_sim.add_release sim j)
      instance.Instance.jobs;
    Algorithms.Coalition_sim.advance_to sim ~time:at
      ~select:Algorithms.Baselines.fifo_select_sim;
    float_of_int (Algorithms.Coalition_sim.value_scaled sim ~at) /. 2.
  end

let analyze ~instance ~seed policies =
  let k = Instance.organizations instance in
  let at = instance.Instance.horizon in
  let grand = Shapley.Coalition.grand ~players:k in
  let proper =
    List.filter
      (fun c -> c <> Shapley.Coalition.empty && c <> grand)
      (Shapley.Coalition.subcoalitions grand)
  in
  let standalone =
    List.map (fun mask -> (mask, standalone_value ~instance ~mask ~at)) proper
  in
  List.map
    (fun (name, maker) ->
      let result =
        Sim.Driver.run ~record:false ~instance
          ~rng:(Fstats.Rng.create ~seed)
          maker
      in
      let psi = Sim.Driver.utilities result in
      let v_grand = Array.fold_left ( +. ) 0. psi in
      let tolerance = 1.0 in
      let max_excess = ref neg_infinity in
      let positive_sum = ref 0. in
      let positive_count = ref 0 in
      let violating = ref 0 in
      List.iter
        (fun (mask, v_alone) ->
          let received =
            Shapley.Coalition.fold (fun u acc -> acc +. psi.(u)) mask 0.
          in
          let excess = v_alone -. received in
          if excess > !max_excess then max_excess := excess;
          if excess > 0. then begin
            positive_sum := !positive_sum +. excess;
            incr positive_count
          end;
          if excess > tolerance then incr violating)
        standalone;
      {
        policy = name;
        max_excess = !max_excess;
        mean_positive_excess =
          (if !positive_count = 0 then 0.
           else !positive_sum /. float_of_int !positive_count);
        violating = !violating;
        coalitions = List.length standalone;
        max_excess_ratio =
          (if v_grand = 0. then 0. else !max_excess /. v_grand);
      })
    policies

let pp ppf reports =
  Format.fprintf ppf "  %-14s %14s %14s %16s@." "policy" "max excess"
    "violations" "excess / v";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-14s %14.1f %10d/%-4d %15.4f%%@." r.policy
        r.max_excess r.violating r.coalitions
        (100. *. r.max_excess_ratio))
    reports

let demo ?(norgs = 4) ?(seed = 2027) () =
  let instance =
    Workload.Scenario.instance
      (Workload.Scenario.default ~norgs ~machines:8 ~horizon:30_000
         ~load:0.95 Workload.Traces.lpc_egee)
      ~seed
  in
  analyze ~instance ~seed:(seed lxor 0xca11)
    [
      ("ref", Algorithms.Reference.reference);
      ("rand-15", Algorithms.Rand.rand15);
      ("fairshare", Algorithms.Fair_share.fair_share);
      ("roundrobin", Algorithms.Baselines.round_robin);
    ]
