(** A small domain pool for embarrassingly-parallel experiment sweeps
    (OCaml 5 multicore).

    The tables and figures average over independent random instances: each
    task owns its seed and its own simulator state, so tasks share nothing
    and results are deterministic regardless of scheduling order.  [map]
    spawns [workers] domains that pull tasks off a shared counter, and
    returns results in input order.

    Fine-grained parallelism (the REF engine's per-instant stages) goes
    through the persistent pool in {!Core.Domain_pool} instead, re-exported
    here as {!parallel_iter}: helper domains are spawned once per process and
    reused, so dispatching a stage costs a condition-variable broadcast, not
    a domain spawn.

    No external dependency (domainslib is not available in the build
    environment); the implementations hand out task indices through an
    atomic counter, so no locks are needed on the work path. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~workers f tasks] applies [f] to every task using [workers] domains
    (default: [recommended_workers ()]).  Results are in input order.  If
    any task raises, the first exception (in input order) is re-raised —
    with its original backtrace — after all workers stop.  With
    [workers = 1] no domain is spawned (plain [List.map]). *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val parallel_iter : ?workers:int -> (int -> unit) -> int -> unit
(** Re-export of {!Core.Domain_pool.parallel_iter}: run [f 0 .. f (n-1)] on
    the persistent process-wide pool, at most [workers] domains in total
    (caller included).  Falls back to an inline loop when [workers <= 1] or
    the pool is busy with another batch. *)
