(** A small fixed-size domain pool for embarrassingly-parallel experiment
    sweeps (OCaml 5 multicore).

    The tables and figures average over independent random instances: each
    task owns its seed and its own simulator state, so tasks share nothing
    and results are deterministic regardless of scheduling order.  The pool
    spawns [workers] domains that pull tasks off a shared counter, and
    returns results in input order.

    No external dependency (domainslib is not available in the build
    environment); the implementation hands out task indices through an
    atomic counter, so no locks are needed. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~workers f tasks] applies [f] to every task using [workers] domains
    (default: [recommended_workers ()]).  Results are in input order.  If
    any task raises, the first exception (in input order) is re-raised after
    all workers stop.  With [workers = 1] no domain is spawned (plain
    [List.map]). *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)
