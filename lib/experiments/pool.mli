(** Deprecated alias of {!Core.Domain_pool}.

    The experiment sweeps' one-shot [map] has moved next to the persistent
    [parallel_iter] pool in {!Core.Domain_pool}, so all multicore dispatch
    lives in one module.  This shim re-exports the old entry points for
    compatibility; new code should call {!Core.Domain_pool} directly. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
[@@ocaml.deprecated "Use Core.Domain_pool.map"]
(** See {!Core.Domain_pool.map}. *)

val recommended_workers : unit -> int
[@@ocaml.deprecated "Use Core.Domain_pool.recommended_workers"]
(** See {!Core.Domain_pool.recommended_workers}. *)

val parallel_iter : ?workers:int -> (int -> unit) -> int -> unit
[@@ocaml.deprecated "Use Core.Domain_pool.parallel_iter"]
(** See {!Core.Domain_pool.parallel_iter}. *)
