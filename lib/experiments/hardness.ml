open Core

type check = {
  subset : int list;
  y : int;
  expected_start : int;
  actual_start : int option;
  consistent : bool;
}

let rec subsets = function
  | [] -> [ [] ]
  | h :: t ->
      let rest = subsets t in
      rest @ List.map (fun l -> h :: l) rest

let gadget ~elements ~x =
  if elements = [] then invalid_arg "Hardness.gadget: empty S";
  if x < 1 then invalid_arg "Hardness.gadget: x < 1";
  let xtot = List.fold_left ( + ) 0 elements + 2 in
  let k = List.length elements in
  (* The proof's L only needs to dominate every other job in the window for
     the start-time argument; a window-sized stand-in keeps the simulation
     cheap. *)
  let large = (4 * k * xtot * xtot) + (20 * xtot) + 1 in
  let b = k + 1 in
  let jobs = ref [] in
  List.iteri
    (fun i xi ->
      jobs :=
        Job.make ~org:i ~index:0 ~release:0 ~size:1 ()
        :: Job.make ~org:i ~index:1 ~release:0 ~size:1 ()
        :: Job.make ~org:i ~index:2 ~release:3 ~size:(2 * xtot) ()
        :: Job.make ~org:i ~index:3 ~release:4 ~size:(2 * xi) ()
        :: !jobs)
    elements;
  jobs :=
    Job.make ~org:b ~index:0 ~release:2 ~size:((2 * x) + 2) ()
    :: Job.make ~org:b ~index:1 ~release:((2 * x) + 3) ~size:large ()
    :: !jobs;
  (* Organization a (= index k) has a machine but no jobs. *)
  let machines = Array.make (k + 2) 1 in
  let horizon = (2 * x) + 10 + (2 * xtot) + large in
  Instance.make ~machines ~jobs:!jobs ~horizon

let large_job_start ~elements ~x =
  let instance = gadget ~elements ~x in
  let b = List.length elements + 1 in
  let r =
    Sim.Driver.run ~instance
      ~rng:(Fstats.Rng.create ~seed:1)
      Algorithms.Reference.reference
  in
  List.find_map
    (fun (p : Schedule.placement) ->
      if p.Schedule.job.Job.org = b && p.Schedule.job.Job.index = 1 then
        Some p.Schedule.start
      else None)
    (Schedule.placements r.Sim.Driver.schedule)

let verify ~elements ~x =
  List.filter_map
    (fun subset ->
      if subset = [] then None
      else begin
        let y = List.fold_left ( + ) 0 subset in
        let expected_start = if y < x then (2 * x) + 3 else (2 * x) + 4 in
        let actual_start = large_job_start ~elements:subset ~x in
        (* The reduction's signal is the dichotomy: the huge job starts at
           exactly 2x+3 iff y < x.  (When y >= x the proof's nominal start
           is 2x+4, but a fair algorithm may let one more small job in —
           bounded by the proof's c3 term — so we only require "later than
           2x+3".) *)
        let early = actual_start = Some ((2 * x) + 3) in
        Some
          { subset; y; expected_start; actual_start; consistent = early = (y < x) }
      end)
    (subsets elements)

let all_consistent ~elements ~x =
  List.for_all (fun c -> c.consistent) (verify ~elements ~x)

let subsets_below ~elements ~x =
  List.length
    (List.filter
       (fun s -> List.fold_left ( + ) 0 s < x)
       (subsets elements))

let subset_sum_exists ~elements ~x =
  List.exists
    (fun s -> s <> [] && List.fold_left ( + ) 0 s = x)
    (subsets elements)
