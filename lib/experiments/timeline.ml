type config = {
  model : Workload.Traces.model;
  norgs : int;
  machines : int;
  horizon : int;
  step : int;
  algorithms : (string * Algorithms.Policy.maker) list;
  instances : int;
  seed : int;
  faults : Faults.Event.timed list;
  max_restarts : int option;
}

let default_config ?(horizon = 200_000) ?(instances = 3) ?(faults = [])
    ?max_restarts () =
  {
    model = Workload.Traces.lpc_egee;
    norgs = 5;
    machines = 16;
    horizon;
    step = horizon / 20;
    algorithms =
      [
        ("rand-15", Algorithms.Rand.rand15);
        ("directcontr", Algorithms.Direct_contr.direct_contr);
        ("fairshare", Algorithms.Fair_share.fair_share);
        ("roundrobin", Algorithms.Baselines.round_robin);
      ];
    instances;
    seed = 4242;
    faults;
    max_restarts;
  }

type series = { algorithm : string; points : (int * float) list }
type figure = { config : config; series : series list }

let checkpoints_of config =
  List.init (config.horizon / config.step) (fun i -> (i + 1) * config.step)

let run ?workers config =
  Obs.Trace.span ~cat:"experiments" "experiments.timeline" @@ fun () ->
  let checkpoints = checkpoints_of config in
  let per_instance =
    Core.Domain_pool.map ?workers
      (fun i ->
        let spec =
          Workload.Scenario.default ~norgs:config.norgs
            ~machines:config.machines ~horizon:config.horizon config.model
        in
        let seed = config.seed + (104_729 * i) in
        let instance = Workload.Scenario.instance spec ~seed in
        Sim.Fairness.timelines ~faults:config.faults
          ?max_restarts:config.max_restarts ~instance ~seed:(seed lxor 0x71e)
          ~checkpoints
          (List.map snd config.algorithms))
      (List.init config.instances (fun i -> i + 1))
  in
  (* Average point-wise across instances. *)
  let series =
    List.mapi
      (fun algo_idx (name, _) ->
        let points =
          List.mapi
            (fun pt_idx t ->
              let values =
                List.map
                  (fun tls ->
                    let tl = List.nth tls algo_idx in
                    snd (List.nth tl.Sim.Fairness.points pt_idx))
                  per_instance
              in
              ( t,
                List.fold_left ( +. ) 0. values
                /. float_of_int (List.length values) ))
            checkpoints
        in
        { algorithm = name; points })
      config.algorithms
  in
  { config; series }

let pp ppf f =
  Format.fprintf ppf "%-10s" "t";
  List.iter (fun s -> Format.fprintf ppf " | %14s" s.algorithm) f.series;
  Format.fprintf ppf "@.";
  List.iteri
    (fun i t ->
      Format.fprintf ppf "%-10d" t;
      List.iter
        (fun s -> Format.fprintf ppf " | %14.2f" (snd (List.nth s.points i)))
        f.series;
      Format.fprintf ppf "@.")
    (checkpoints_of f.config)

let to_csv f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "algorithm,t,ratio\n";
  List.iter
    (fun s ->
      List.iter
        (fun (t, v) ->
          Buffer.add_string buf (Printf.sprintf "%s,%d,%f\n" s.algorithm t v))
        s.points)
    f.series;
  Buffer.contents buf
