(** Fairness and utilization under churn: the fault-injection study.

    The paper's evaluation (Section 7) assumes a fixed machine pool.  This
    study stress-tests the reproduction's fairness machinery when machines
    fail and recover: for a sweep of failure intensities, a seeded random
    fault trace ({!Faults.Model.random}) is generated per instance and the
    {e same} trace hits REF and every candidate algorithm, so Δψ/p_tot
    compares each algorithm to the fair schedule of the same degraded
    cluster.  Alongside fairness it reports

    - a utilization competitive ratio: useful busy time divided by the
      released-work upper bound {!Utility.Metrics.work_upper_bound} (the
      exact fault-aware optimum is exponential; the bound ignores downtime,
      so the ratio is conservative);
    - kill/abandon/waste counters, and the downtime fraction actually
      injected. *)

type config = {
  model : Workload.Traces.model;
  norgs : int;
  machines : int;
  horizon : int;
  instances : int;  (** random instances per intensity *)
  intensities : float list;
      (** failure-rate multipliers; [0.] means no faults (the control) *)
  mtbf : float;  (** per-machine mean time between failures at intensity 1 *)
  mttr : float;  (** per-machine mean time to repair *)
  max_restarts : int option;  (** kill budget per job; [None] = unbounded *)
  algorithms : (string * Algorithms.Policy.maker) list;
  seed : int;
}

val default_config :
  ?instances:int -> ?norgs:int -> ?machines:int -> ?horizon:int ->
  ?intensities:float list -> ?mtbf:float -> ?mttr:float ->
  ?max_restarts:int -> ?seed:int -> unit -> config
(** Small enough for interactive use: LPC-EGEE model, 3 organizations,
    8 machines, horizon 5000, intensities 0/0.5/1/2, MTBF 1000, MTTR 50. *)

type cell = { mean : float; stddev : float; n : int }

type row = {
  intensity : float;
  algorithm : string;  (** ["ref"] rows carry the reference run's stats *)
  unfairness : cell;  (** Δψ/p_tot against REF under the same faults *)
  util_ratio : cell;  (** busy time / released-work bound *)
  killed : cell;  (** jobs killed by failures, per run *)
  abandoned : cell;  (** jobs dropped after exhausting the restart budget *)
  wasted : cell;  (** executed-then-discarded unit parts *)
  downtime : cell;  (** machine-time fraction down (same for all rows) *)
  event_instants : cell;
      (** distinct event instants processed by the kernel per run *)
  rounds : cell;  (** scheduling rounds dispatched per run *)
  heap_pops : cell;
      (** REF event-heap pops per run (0 for single-loop policies) *)
}

type study = { config : config; rows : row list }

val run : ?progress:(string -> unit) -> ?workers:int -> config -> study
(** Instances run in parallel on [workers] domains ({!Pool}); results are
    deterministic in the config seed and independent of [workers]. *)

val pp : Format.formatter -> study -> unit
val to_csv : study -> string

val json : study -> Obs.Json.t
(** [{"rows": [...], "metrics": {...}}]: one object per row (same keys as
    the CSV header) plus the process-wide {!Obs.Metrics} snapshot (an empty
    object unless metrics collection is on). *)

val to_json : study -> string
(** {!json}, pretty-printed with a trailing newline. *)
