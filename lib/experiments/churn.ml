type config = {
  model : Workload.Traces.model;
  norgs : int;
  machines : int;
  horizon : int;
  instances : int;
  intensities : float list;
  mtbf : float;
  mttr : float;
  max_restarts : int option;
  algorithms : (string * Algorithms.Policy.maker) list;
  seed : int;
}

let default_lineup =
  [
    ("roundrobin", Algorithms.Baselines.round_robin);
    ("fairshare", Algorithms.Fair_share.fair_share);
    ("directcontr", Algorithms.Direct_contr.direct_contr);
    ("rand-15", Algorithms.Rand.rand15);
  ]

let default_config ?(instances = 3) ?(norgs = 3) ?(machines = 8)
    ?(horizon = 5_000) ?(intensities = [ 0.; 0.5; 1.; 2. ]) ?(mtbf = 1_000.)
    ?(mttr = 50.) ?max_restarts ?(seed = 2013) () =
  {
    model = Workload.Traces.lpc_egee;
    norgs;
    machines;
    horizon;
    instances;
    intensities;
    mtbf;
    mttr;
    max_restarts;
    algorithms = default_lineup;
    seed;
  }

type cell = { mean : float; stddev : float; n : int }

type row = {
  intensity : float;
  algorithm : string;
  unfairness : cell;
  util_ratio : cell;
  killed : cell;
  abandoned : cell;
  wasted : cell;
  downtime : cell;
  event_instants : cell;
  rounds : cell;
  heap_pops : cell;
}

type study = { config : config; rows : row list }

(* One instance of one intensity: the same fault trace hits REF and every
   candidate, so Δψ compares each algorithm to the fair schedule of the same
   degraded cluster.  Returns per-algorithm (name, ratio, util, killed,
   abandoned, wasted) plus the shared downtime fraction; "ref" included. *)
let run_one config ~intensity ~index =
  let seed = config.seed + (7919 * index) in
  let spec =
    Workload.Scenario.default ~norgs:config.norgs ~machines:config.machines
      ~horizon:config.horizon config.model
  in
  let instance = Workload.Scenario.instance spec ~seed in
  let nmachines = Core.Instance.total_machines instance in
  let faults =
    if intensity <= 0. then []
    else
      Faults.Model.random
        ~rng:(Fstats.Rng.create ~seed:(seed lxor 0xfa017))
        ~machines:nmachines ~horizon:config.horizon
        ~mtbf:(Faults.Model.Exponential { mean = config.mtbf /. intensity })
        ~mttr:(Faults.Model.Exponential { mean = config.mttr })
        ()
  in
  let downtime_frac =
    float_of_int
      (Faults.Model.downtime ~machines:nmachines ~horizon:config.horizon
         faults)
    /. float_of_int (nmachines * config.horizon)
  in
  let reference, evals =
    Sim.Fairness.evaluate ~record:true ~faults
      ?max_restarts:config.max_restarts ~instance ~seed:(seed lxor 0xbeef)
      (List.map snd config.algorithms)
  in
  let bound =
    Utility.Metrics.work_upper_bound
      ~all_jobs:(Array.to_list instance.Core.Instance.jobs)
      ~machines:nmachines ~upto:config.horizon
  in
  let util (r : Sim.Driver.result) =
    if bound = 0 then 1.
    else
      float_of_int
        (Core.Schedule.busy_time r.Sim.Driver.schedule ~upto:config.horizon)
      /. float_of_int bound
  in
  let line name ratio (r : Sim.Driver.result) =
    let st = r.Sim.Driver.stats in
    ( name,
      [|
        ratio;
        util r;
        float_of_int r.Sim.Driver.killed;
        float_of_int r.Sim.Driver.abandoned;
        float_of_int r.Sim.Driver.wasted;
        float_of_int st.Kernel.Stats.instants;
        float_of_int st.Kernel.Stats.rounds;
        float_of_int st.Kernel.Stats.heap_pops;
      |] )
  in
  let ref_line = line "ref" 0. reference in
  let algo_lines =
    List.map2
      (fun (name, _) (e : Sim.Fairness.evaluation) ->
        line name e.Sim.Fairness.ratio e.Sim.Fairness.result)
      config.algorithms evals
  in
  (downtime_frac, ref_line :: algo_lines)

let run ?(progress = fun _ -> ()) ?workers config =
  Obs.Trace.span ~cat:"experiments" "experiments.churn" @@ fun () ->
  let algo_names = "ref" :: List.map fst config.algorithms in
  let rows = ref [] in
  List.iter
    (fun intensity ->
      let t0 = Obs.Clock.now_ns () in
      let per_instance =
        Core.Domain_pool.map ?workers
          (fun index -> run_one config ~intensity ~index)
          (List.init config.instances (fun i -> i + 1))
      in
      let summaries =
        List.map
          (fun name -> (name, Array.init 8 (fun _ -> Fstats.Summary.create ())))
          algo_names
      in
      let downtime = Fstats.Summary.create () in
      List.iter
        (fun (dt, lines) ->
          Fstats.Summary.add downtime dt;
          List.iter
            (fun (name, values) ->
              let s = List.assoc name summaries in
              Array.iteri (fun i v -> Fstats.Summary.add s.(i) v) values)
            lines)
        per_instance;
      let cell s =
        {
          mean = Fstats.Summary.mean s;
          stddev = Fstats.Summary.stddev s;
          n = Fstats.Summary.count s;
        }
      in
      List.iter
        (fun (name, s) ->
          rows :=
            {
              intensity;
              algorithm = name;
              unfairness = cell s.(0);
              util_ratio = cell s.(1);
              killed = cell s.(2);
              abandoned = cell s.(3);
              wasted = cell s.(4);
              event_instants = cell s.(5);
              rounds = cell s.(6);
              heap_pops = cell s.(7);
              downtime = cell downtime;
            }
            :: !rows)
        summaries;
      progress
        (Printf.sprintf "intensity %g: %d instances in %.1fs" intensity
           config.instances
           (Obs.Clock.elapsed t0)))
    config.intensities;
  { config; rows = List.rev !rows }

let pp ppf t =
  Format.fprintf ppf "%-10s %-14s | %10s %10s %8s %9s %8s %9s %8s %8s %9s@."
    "intensity" "algorithm" "Δψ/p_tot" "util" "killed" "abandoned" "wasted"
    "downtime" "events" "rounds" "heap_pops";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-10g %-14s | %10.4f %10.3f %8.1f %9.1f %8.1f %9.3f %8.0f %8.0f \
         %9.0f@."
        r.intensity r.algorithm r.unfairness.mean r.util_ratio.mean
        r.killed.mean r.abandoned.mean r.wasted.mean r.downtime.mean
        r.event_instants.mean r.rounds.mean r.heap_pops.mean)
    t.rows

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "intensity,algorithm,unfairness_mean,unfairness_stddev,util_ratio,killed,abandoned,wasted,downtime_frac,event_instants,rounds,heap_pops,n\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%g,%s,%f,%f,%f,%f,%f,%f,%f,%f,%f,%f,%d\n" r.intensity
           r.algorithm r.unfairness.mean r.unfairness.stddev r.util_ratio.mean
           r.killed.mean r.abandoned.mean r.wasted.mean r.downtime.mean
           r.event_instants.mean r.rounds.mean r.heap_pops.mean r.unfairness.n))
    t.rows;
  Buffer.contents buf

let row_json r =
  Obs.Json.Obj
    [
      ("intensity", Obs.Json.Float r.intensity);
      ("algorithm", Obs.Json.String r.algorithm);
      ("unfairness", Obs.Json.Float r.unfairness.mean);
      ("unfairness_stddev", Obs.Json.Float r.unfairness.stddev);
      ("util_ratio", Obs.Json.Float r.util_ratio.mean);
      ("killed", Obs.Json.Float r.killed.mean);
      ("abandoned", Obs.Json.Float r.abandoned.mean);
      ("wasted", Obs.Json.Float r.wasted.mean);
      ("downtime_frac", Obs.Json.Float r.downtime.mean);
      ("event_instants", Obs.Json.Float r.event_instants.mean);
      ("rounds", Obs.Json.Float r.rounds.mean);
      ("heap_pops", Obs.Json.Float r.heap_pops.mean);
      ("n", Obs.Json.Int r.unfairness.n);
    ]

let json t =
  Obs.Json.Obj
    [
      ("rows", Obs.Json.List (List.map row_json t.rows));
      ("metrics", Obs.Metrics.to_json ());
    ]

let to_json t = Obs.Json.to_string ~pretty:true (json t) ^ "\n"
