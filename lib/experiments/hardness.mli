(** Executable check of the Theorem 5.1 NP-hardness construction.

    The proof reduces SUBSETSUM to computing a contribution φ: from a set S
    and a target x it builds organizations O_S ∪ {a, b} (one machine each)
    whose jobs are sized so that, in every coalition C ∋ b joined by a, the
    start time of b's huge job reveals whether Σ_{i ∈ C∩O_S} x_i < x:

    - each O_i releases two unit jobs at 0, a [2·x_tot] job at 3, and a
      [2·x_i] job at 4;
    - b releases a [2x+2] job at 2 and the huge job at [2x+3];
    - if y = Σ x_i < x the huge job starts at [2x+3], otherwise at [2x+4] —
      so φ(a) counts the subsets below the target, and comparing the counts
      for x and x+1 answers SUBSETSUM.

    This module builds the gadget and verifies the start-time dichotomy by
    actually running the fair algorithm (REF) on every coalition — the
    load-bearing combinatorial step of the reduction, machine-checked. *)

type check = {
  subset : int list;  (** the elements of S in the coalition *)
  y : int;  (** their sum *)
  expected_start : int;  (** the proof's nominal start: 2x+3 if y < x else 2x+4 *)
  actual_start : int option;  (** observed under REF; [None] = never started *)
  consistent : bool;
      (** the load-bearing dichotomy: started at exactly 2x+3 ⟺ y < x.
          (When y ≥ x the observed start may exceed the nominal 2x+4 by a
          small-job length — covered by the proof's c₃ slack term.) *)
}

val gadget : elements:int list -> x:int -> Core.Instance.t
(** The instance restricted to coalition [elements ∪ {a, b}] (organizations
    renumbered; a = |elements|, b = |elements|+1); the huge job's size uses a
    scaled-down stand-in for L that still dominates the window.
    @raise Invalid_argument on an empty element list or non-positive x. *)

val large_job_start : elements:int list -> x:int -> int option
(** Start time of b's huge job under REF in that coalition. *)

val verify : elements:int list -> x:int -> check list
(** One check per non-empty subset of [elements]. *)

val all_consistent : elements:int list -> x:int -> bool

val subsets_below : elements:int list -> x:int -> int
(** |{S' ⊆ S : Σ S' < x}| — what φ(a) encodes in the proof. *)

val subset_sum_exists : elements:int list -> x:int -> bool
(** Direct SUBSETSUM answer, equal to
    [subsets_below ~x:(x+1) > subsets_below ~x] (the proof's comparison). *)
