type config = {
  org_counts : int list;
  instances : int;
  horizon : int;
  machines : int;
  algorithms : (string * Algorithms.Policy.maker) list;
  model : Workload.Traces.model;
  seed : int;
}

let default_config ?(instances = 5) ?(horizon = 50_000) ?(max_orgs = 10) () =
  {
    org_counts = List.init (max_orgs - 1) (fun i -> i + 2);
    instances;
    horizon;
    machines = 16;
    algorithms =
      [
        ("roundrobin", Algorithms.Baselines.round_robin);
        ("currfairshare", Algorithms.Fair_share.curr_fair_share);
        ("fairshare", Algorithms.Fair_share.fair_share);
        ("directcontr", Algorithms.Direct_contr.direct_contr);
        ("rand-15", Algorithms.Rand.rand15);
      ];
    model = Workload.Traces.lpc_egee;
    seed = 1010;
  }

type point = { norgs : int; mean : float; stddev : float }
type series = { algorithm : string; points : point list }
type figure = { config : config; series : series list }

let run ?(progress = fun _ -> ()) ?workers config =
  Obs.Trace.span ~cat:"experiments" "experiments.fig10" @@ fun () ->
  let acc =
    List.map (fun (name, _) -> (name, Hashtbl.create 8)) config.algorithms
  in
  List.iter
    (fun norgs ->
      let t0 = Obs.Clock.now_ns () in
      let ratios =
        Core.Domain_pool.map ?workers
          (fun i ->
            let spec =
              Workload.Scenario.default ~norgs ~machines:config.machines
                ~horizon:config.horizon config.model
            in
            let seed = config.seed + (6007 * i) + (101 * norgs) in
            let instance = Workload.Scenario.instance spec ~seed in
            let _, evals =
              Sim.Fairness.evaluate ~instance ~seed:(seed lxor 0xf10)
                (List.map snd config.algorithms)
            in
            List.map (fun (e : Sim.Fairness.evaluation) -> e.Sim.Fairness.ratio) evals)
          (List.init config.instances (fun i -> i + 1))
      in
      List.iter
        (fun per_algo ->
          List.iter2
            (fun (name, _) ratio ->
              let table = List.assoc name acc in
              let s =
                match Hashtbl.find_opt table norgs with
                | Some s -> s
                | None ->
                    let s = Fstats.Summary.create () in
                    Hashtbl.add table norgs s;
                    s
              in
              Fstats.Summary.add s ratio)
            config.algorithms per_algo)
        ratios;
      progress
        (Printf.sprintf "k=%d: %d instances in %.1fs" norgs config.instances
           (Obs.Clock.elapsed t0)))
    config.org_counts;
  let series =
    List.map
      (fun (name, _) ->
        let table = List.assoc name acc in
        let points =
          List.map
            (fun norgs ->
              let s = Hashtbl.find table norgs in
              {
                norgs;
                mean = Fstats.Summary.mean s;
                stddev = Fstats.Summary.stddev s;
              })
            config.org_counts
        in
        { algorithm = name; points })
      config.algorithms
  in
  { config; series }

let pp ppf f =
  Format.fprintf ppf "%-6s" "k";
  List.iter (fun s -> Format.fprintf ppf " | %16s" s.algorithm) f.series;
  Format.fprintf ppf "@.";
  List.iter
    (fun norgs ->
      Format.fprintf ppf "%-6d" norgs;
      List.iter
        (fun s ->
          match List.find_opt (fun p -> p.norgs = norgs) s.points with
          | Some p -> Format.fprintf ppf " | %16.2f" p.mean
          | None -> Format.fprintf ppf " | %16s" "-")
        f.series;
      Format.fprintf ppf "@.")
    f.config.org_counts

let to_csv f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "algorithm,norgs,mean,stddev\n";
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%f,%f\n" s.algorithm p.norgs p.mean
               p.stddev))
        s.points)
    f.series;
  Buffer.contents buf
