open Core

(* The approximation-tier study (DESIGN.md §13): where exact REF stops being
   feasible and how far the sampled estimator drifts from it.

   Two sweeps:

   - [audit] (small k, exact feasible): one scheduling game per k — unit
     jobs, so by Proposition 5.4 the coalition value is rule-independent and
     the FPRAS guarantee of Theorem 5.6 applies.  Exact Shapley via the
     subset sum, sampled via the Hoeffding-sized permutation estimate; the
     row records both wall times and the measured max |φ̂ − φ| against the
     bound ε/k · v(grand).

   - [scaling] (large k): a full online simulation with the RAND policy at
     sample counts the paper uses (N = 15/75 tier), at k far beyond REF's
     2^k wall.  Exact REF runs alongside while k stays within its practical
     range, so the rows show the crossover; beyond it [exact_ms] is [None]
     (2^k sub-schedules would not fit time or memory — at k = 50 that is
     ~10^15 simulations). *)

type audit_row = {
  k : int;
  n : int;  (* Hoeffding sample count for (epsilon, confidence) *)
  epsilon : float;
  confidence : float;
  exact_ms : float;
  sampled_ms : float;
  max_abs_err : float;
  tolerance : float;  (* ε/k · v(grand) *)
  within_bound : bool;
}

type scaling_row = {
  s_k : int;
  s_n : int;  (* sampled joining orders *)
  s_jobs : int;
  s_events : int;
  rand_ms : float;
  exact_ms_opt : float option;  (* REF on the same workload, while feasible *)
}

let ms f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, (Unix.gettimeofday () -. t0) *. 1000.)

(* Unit-job scheduling game at horizon [at]: org u owns one machine and
   [jobs_per_org] unit jobs with staggered releases (same construction as
   Estimator_study, parameterized by k). *)
let unit_game ~k ~jobs_per_org ~at ~seed =
  let rng = Fstats.Rng.create ~seed in
  let jobs =
    List.concat_map
      (fun org ->
        List.init jobs_per_org (fun i ->
            Job.make ~org ~index:i
              ~release:(Fstats.Rng.int rng (Stdlib.max 1 (at - 2)))
              ~size:1 ()))
      (List.init k Fun.id)
  in
  let instance =
    Instance.make ~machines:(Array.make k 1) ~jobs ~horizon:(at + 1)
  in
  let value mask =
    if mask = Shapley.Coalition.empty then 0.
    else begin
      let sim = Algorithms.Coalition_sim.create ~instance ~members:mask () in
      Array.iter
        (fun (j : Job.t) ->
          if Shapley.Coalition.mem mask j.Job.org then
            Algorithms.Coalition_sim.add_release sim j)
        instance.Instance.jobs;
      Algorithms.Coalition_sim.advance_to sim ~time:at
        ~select:Algorithms.Baselines.fifo_select_sim;
      float_of_int (Algorithms.Coalition_sim.value_scaled sim ~at) /. 2.
    end
  in
  Shapley.Game.memoize (Shapley.Game.make ~players:k value)

let audit_one ~k ~jobs_per_org ~at ~epsilon ~confidence ~seed =
  let g = unit_game ~k ~jobs_per_org ~at ~seed in
  let n = Shapley.Sample.sample_count ~players:k ~epsilon ~confidence in
  let exact, exact_ms = ms (fun () -> Shapley.Exact.subsets g) in
  let rng = Fstats.Rng.create ~seed:(seed lxor 0xe57) in
  let est, sampled_ms = ms (fun () -> Shapley.Sample.estimate ~n ~rng g) in
  let v_grand = Shapley.Game.value g (Shapley.Coalition.grand ~players:k) in
  let tolerance = epsilon /. float_of_int k *. v_grand in
  let max_abs_err =
    snd
      (Array.fold_left
         (fun (u, m) e ->
           (u + 1, Float.max m (Float.abs (e -. exact.(u)))))
         (0, 0.) est)
  in
  {
    k;
    n;
    epsilon;
    confidence;
    exact_ms;
    sampled_ms;
    max_abs_err;
    tolerance;
    within_bound = max_abs_err <= tolerance;
  }

let audit ?(ks = [ 4; 5; 6; 8 ]) ?(jobs_per_org = 8) ?(at = 12)
    ?(epsilon = 0.5) ?(confidence = 0.9) ~seed () =
  List.map
    (fun k -> audit_one ~k ~jobs_per_org ~at ~epsilon ~confidence ~seed)
    ks

(* Synthetic k-org workload for the online scaling sweep: one machine per
   org, unit jobs with bursty staggered releases — enough contention that
   the policy is consulted at every instant. *)
let scaling_instance ~k ~jobs_per_org ~horizon ~seed =
  let rng = Fstats.Rng.create ~seed:(seed + k) in
  let jobs =
    List.concat_map
      (fun org ->
        List.init jobs_per_org (fun i ->
            Job.make ~org ~index:i
              ~release:(Fstats.Rng.int rng (Stdlib.max 1 (horizon / 2)))
              ~size:(1 + Fstats.Rng.int rng 3)
              ()))
      (List.init k Fun.id)
  in
  Instance.make ~machines:(Array.make k 1) ~jobs ~horizon

(* REF's practical range on this workload shape; beyond it the exact column
   is reported as infeasible rather than attempted. *)
let exact_feasible_k = 8

let scaling_one ~k ~n ~jobs_per_org ~horizon ~seed =
  let instance = scaling_instance ~k ~jobs_per_org ~horizon ~seed in
  let run maker =
    let rng = Fstats.Rng.create ~seed:(seed lxor 0x5ca1e) in
    Sim.Driver.run ~record:false ~workers:1 ~instance ~rng maker
  in
  let rand_res = run (Algorithms.Rand.rand ?value_cache:None ~n) in
  let exact_ms_opt =
    if k <= exact_feasible_k then
      Some ((run Algorithms.Reference.reference).Sim.Driver.wall_seconds *. 1000.)
    else None
  in
  {
    s_k = k;
    s_n = n;
    s_jobs = Array.length instance.Instance.jobs;
    s_events = rand_res.Sim.Driver.events;
    rand_ms = rand_res.Sim.Driver.wall_seconds *. 1000.;
    exact_ms_opt;
  }

let scaling ?(ks = [ 6; 8; 12; 24; 50 ]) ?(n = 15) ?(jobs_per_org = 6)
    ?(horizon = 400) ~seed () =
  List.map (fun k -> scaling_one ~k ~n ~jobs_per_org ~horizon ~seed) ks

let pp_audit ppf rows =
  Format.fprintf ppf "  %-4s %-8s %-10s %-10s %-12s %-12s %-6s@." "k" "N"
    "exact ms" "rand ms" "max err" "tolerance" "ok";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-4d %-8d %-10.1f %-10.1f %-12.2f %-12.2f %-6s@."
        r.k r.n r.exact_ms r.sampled_ms r.max_abs_err r.tolerance
        (if r.within_bound then "yes" else "NO"))
    rows

let pp_scaling ppf rows =
  Format.fprintf ppf "  %-4s %-6s %-8s %-8s %-10s %-10s@." "k" "N" "jobs"
    "events" "rand ms" "exact ms";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-4d %-6d %-8d %-8d %-10.1f %-10s@." r.s_k r.s_n
        r.s_jobs r.s_events r.rand_ms
        (match r.exact_ms_opt with
        | Some m -> Printf.sprintf "%.1f" m
        | None -> "infeasible"))
    rows
