open Core

type row = {
  n : int;
  trials : int;
  violations : int;
  allowed_rate : float;
  mean_max_abs_err : float;
  tolerance : float;
}

type config = {
  players : int;
  jobs_per_org : int;
  at : int;
  epsilon : float;
  confidence : float;
  sample_counts : int list;
  trials : int;
  seed : int;
}

let default_config ?(trials = 200) () =
  {
    players = 4;
    jobs_per_org = 8;
    at = 12;
    epsilon = 0.25;
    confidence = 0.8;
    sample_counts = [ 5; 15; 75 ];
    trials;
    seed = 31337;
  }

(* The scheduling game: org u owns one machine and [jobs_per_org] unit jobs
   with staggered releases; v(C) = ψsp value of C's greedy schedule at
   [at].  Unit jobs make the value rule-independent (Prop. 5.4). *)
let game config =
  let rng = Fstats.Rng.create ~seed:config.seed in
  let jobs =
    List.concat_map
      (fun org ->
        List.init config.jobs_per_org (fun i ->
            Job.make ~org ~index:i
              ~release:(Fstats.Rng.int rng (config.at - 2))
              ~size:1 ()))
      (List.init config.players Fun.id)
  in
  let instance =
    Instance.make
      ~machines:(Array.make config.players 1)
      ~jobs
      ~horizon:(config.at + 1)
  in
  let value mask =
    if mask = Shapley.Coalition.empty then 0.
    else begin
      let sim = Algorithms.Coalition_sim.create ~instance ~members:mask () in
      Array.iter
        (fun (j : Job.t) ->
          if Shapley.Coalition.mem mask j.Job.org then
            Algorithms.Coalition_sim.add_release sim j)
        instance.Instance.jobs;
      Algorithms.Coalition_sim.advance_to sim ~time:config.at
        ~select:Algorithms.Baselines.fifo_select_sim;
      float_of_int (Algorithms.Coalition_sim.value_scaled sim ~at:config.at)
      /. 2.
    end
  in
  Shapley.Game.memoize (Shapley.Game.make ~players:config.players value)

let run config =
  let g = game config in
  let exact = Shapley.Exact.subsets g in
  let v_grand =
    Shapley.Game.value g (Shapley.Coalition.grand ~players:config.players)
  in
  let tolerance = config.epsilon /. float_of_int config.players *. v_grand in
  let hoeffding_n =
    Shapley.Sample.sample_count ~players:config.players
      ~epsilon:config.epsilon ~confidence:config.confidence
  in
  let rng = Fstats.Rng.create ~seed:(config.seed lxor 0xe57) in
  List.map
    (fun n ->
      let violations = ref 0 in
      let err_sum = ref 0. in
      for _ = 1 to config.trials do
        let est = Shapley.Sample.estimate ~n ~rng:(Fstats.Rng.split rng) g in
        let max_err = ref 0. in
        Array.iteri
          (fun u e -> max_err := Float.max !max_err (Float.abs (e -. exact.(u))))
          est;
        err_sum := !err_sum +. !max_err;
        if !max_err > tolerance then incr violations
      done;
      {
        n;
        trials = config.trials;
        violations = !violations;
        allowed_rate = 1. -. config.confidence;
        mean_max_abs_err = !err_sum /. float_of_int config.trials;
        tolerance;
      })
    (config.sample_counts @ [ hoeffding_n ])

let pp ppf rows =
  Format.fprintf ppf "  %-8s %-8s %-12s %-14s %-14s@." "N" "trials"
    "violations" "mean max err" "tolerance";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-8d %-8d %-12s %-14.1f %-14.1f@." r.n r.trials
        (Printf.sprintf "%d (<= %.0f%%)" r.violations (100. *. r.allowed_rate))
        r.mean_max_abs_err r.tolerance)
    rows
