(** Empirical check of Theorem 5.6: the Monte-Carlo Shapley estimator's
    error on an actual scheduling game.

    The game is the paper's: organizations with machines and unit-size jobs,
    [v(C)] the ψsp value of coalition [C]'s greedy schedule at a fixed
    instant (well-defined for unit jobs regardless of the greedy rule —
    Proposition 5.4).  We compute the exact Shapley value by subset
    enumeration, then repeat the N-order sampling estimator many times and
    measure how often any organization's estimate misses by more than the
    theorem's tolerance (ε/k)·v(grand).  With N from the Hoeffding bound the
    empirical failure rate must stay below 1 − λ (it is, by a wide margin —
    Hoeffding is conservative). *)

type row = {
  n : int;  (** sampled orders per estimate *)
  trials : int;
  violations : int;  (** trials where some org missed the ε/k·v tolerance *)
  allowed_rate : float;  (** 1 − λ, the theorem's bound (for the Hoeffding n) *)
  mean_max_abs_err : float;  (** mean over trials of max_u |φ̂_u − φ_u| *)
  tolerance : float;  (** (ε/k)·v(grand) *)
}

type config = {
  players : int;
  jobs_per_org : int;
  at : int;  (** evaluation instant *)
  epsilon : float;
  confidence : float;  (** λ *)
  sample_counts : int list;  (** N values to sweep; the Hoeffding N is added *)
  trials : int;
  seed : int;
}

val default_config : ?trials:int -> unit -> config
(** 4 organizations, ε = 0.25, λ = 0.8, N sweep {5, 15, 75, Hoeffding}. *)

val run : config -> row list
val pp : Format.formatter -> row list -> unit
