(* This compilation unit is [Experiments.Federation], which shadows the
   [Federation] library's alias module everywhere inside the wrapped
   [experiments] library.  Rebind the endowment-model units by their
   mangled unit name — the one place in the tree that needs to. *)
module Fed_model = Federation__Model

type config = {
  norgs : int;
  machines_per_org : int;
  horizon : int;
  instances : int;
  correlations : float list;
  period : int;
  lend : int;
  jitter : float;
  burst : int;
  job_size : int;
  seed : int;
}

let default_config ?(norgs = 3) ?(machines_per_org = 2) ?(horizon = 1_200)
    ?(instances = 3) ?(correlations = [ 0.; 0.25; 0.5; 0.75; 1. ])
    ?(period = 200) ?(lend = 1) ?(jitter = 0.05) ?(burst = 6) ?(job_size = 20)
    ?(seed = 2013) () =
  {
    norgs;
    machines_per_org;
    horizon;
    instances;
    correlations;
    period;
    lend;
    jitter;
    burst;
    job_size;
    seed;
  }

type cell = { mean : float; stddev : float; n : int }

type row = {
  correlation : float;
  lends : cell;
  psi_federated : cell;
  psi_static : cell;
  psi_standalone : cell;
  psi_shift : cell;
  gain_federated : cell;
  gain_static : cell;
}

type study = { config : config; rows : row list }

(* Each org's workload peaks once per cycle, with the same phase rule the
   lending model uses ({!Federation.Model.random} without the jitter):
   at correlation 0 the bursts are evenly staggered, at 1 they coincide.
   The lending trace carries the jitter, so the lend/reclaim instants
   wander around the (deterministic) workload peaks across seeds. *)
let peak_jobs config ~correlation =
  let k = config.norgs in
  let phase u =
    int_of_float
      ((1. -. correlation)
      *. float_of_int u /. float_of_int k
      *. float_of_int config.period)
  in
  let jobs = ref [] in
  for u = 0 to k - 1 do
    let index = ref 0 in
    let rec cycles c =
      let peak = (c * config.period) + phase u in
      if peak < config.horizon then begin
        for _ = 1 to config.burst do
          jobs :=
            Core.Job.make ~org:u ~index:!index ~release:peak
              ~size:config.job_size ()
            :: !jobs;
          incr index
        done;
        cycles (c + 1)
      end
    in
    cycles 0
  done;
  List.rev !jobs

(* One instance of one correlation: the federated, static-pooled, and
   per-org-standalone runs all under REF.  Returns
   [| lends; psi_fed; psi_static; psi_standalone; psi_shift; gain_fed;
      gain_static |]. *)
let run_one config ~correlation ~index =
  let seed = config.seed + (7919 * index) in
  let machines = Array.make config.norgs config.machines_per_org in
  let jobs = peak_jobs config ~correlation in
  let spec =
    {
      Fed_model.period = config.period;
      lend = config.lend;
      correlation;
      jitter = config.jitter;
    }
  in
  let federation =
    Fed_model.random
      ~rng:(Fstats.Rng.create ~seed:(seed lxor 0xfed))
      ~machines_per_org:machines ~horizon:config.horizon ~spec ()
  in
  let _, _, n_lends, _ = Fed_model.count_kind federation in
  let run ?(federation = []) instance =
    Sim.Driver.run ~record:false ~federation ~instance
      ~rng:(Fstats.Rng.create ~seed:(seed lxor 0xbeef))
      Algorithms.Reference.reference
  in
  let pooled =
    Core.Instance.make ~machines ~jobs ~horizon:config.horizon
  in
  let per_org_fed = Sim.Driver.utilities (run ~federation pooled) in
  let per_org_static = Sim.Driver.utilities (run pooled) in
  let psi_fed = Array.fold_left ( +. ) 0. per_org_fed in
  let psi_static = Array.fold_left ( +. ) 0. per_org_static in
  (* Lending is placement-neutral (the consortium pools every present
     machine), so Σψ matches the static run; what the churn moves is the
     per-org attribution — capacity counts for its current owner.  The
     shift is that moved mass, as a fraction of the static total. *)
  let psi_shift =
    if psi_static = 0. then 0.
    else
      let moved = ref 0. in
      Array.iteri
        (fun u v -> moved := !moved +. Float.abs (v -. per_org_static.(u)))
        per_org_fed;
      !moved /. psi_static
  in
  let psi_standalone =
    List.fold_left ( +. ) 0.
      (List.init config.norgs (fun u ->
           let own =
             List.filter_map
               (fun j ->
                 if j.Core.Job.org = u then Some { j with Core.Job.org = 0 }
                 else None)
               jobs
           in
           let alone =
             Core.Instance.make
               ~machines:[| config.machines_per_org |]
               ~jobs:own ~horizon:config.horizon
           in
           (Sim.Driver.utilities (run alone)).(0)))
  in
  let gain psi =
    if psi_standalone = 0. then 0.
    else (psi -. psi_standalone) /. psi_standalone
  in
  [|
    float_of_int n_lends;
    psi_fed;
    psi_static;
    psi_standalone;
    psi_shift;
    gain psi_fed;
    gain psi_static;
  |]

let run ?(progress = fun _ -> ()) ?workers config =
  Obs.Trace.span ~cat:"experiments" "experiments.federation" @@ fun () ->
  let rows = ref [] in
  List.iter
    (fun correlation ->
      let t0 = Obs.Clock.now_ns () in
      let per_instance =
        Core.Domain_pool.map ?workers
          (fun index -> run_one config ~correlation ~index)
          (List.init config.instances (fun i -> i + 1))
      in
      let summaries = Array.init 7 (fun _ -> Fstats.Summary.create ()) in
      List.iter
        (fun values ->
          Array.iteri (fun i v -> Fstats.Summary.add summaries.(i) v) values)
        per_instance;
      let cell s =
        {
          mean = Fstats.Summary.mean s;
          stddev = Fstats.Summary.stddev s;
          n = Fstats.Summary.count s;
        }
      in
      rows :=
        {
          correlation;
          lends = cell summaries.(0);
          psi_federated = cell summaries.(1);
          psi_static = cell summaries.(2);
          psi_standalone = cell summaries.(3);
          psi_shift = cell summaries.(4);
          gain_federated = cell summaries.(5);
          gain_static = cell summaries.(6);
        }
        :: !rows;
      progress
        (Printf.sprintf "correlation %g: %d instances in %.1fs" correlation
           config.instances
           (Obs.Clock.elapsed t0)))
    config.correlations;
  { config; rows = List.rev !rows }

let pp ppf t =
  Format.fprintf ppf "%-12s | %6s %12s %12s %14s %9s %10s %10s@." "correlation"
    "lends" "psi_fed" "psi_static" "psi_standalone" "shift" "gain_fed"
    "gain_stat";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-12g | %6.1f %12.1f %12.1f %14.1f %8.2f%% %9.1f%% %9.1f%%@."
        r.correlation r.lends.mean r.psi_federated.mean r.psi_static.mean
        r.psi_standalone.mean
        (100. *. r.psi_shift.mean)
        (100. *. r.gain_federated.mean)
        (100. *. r.gain_static.mean))
    t.rows

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "correlation,lends,psi_federated,psi_federated_stddev,psi_static,psi_standalone,psi_shift,gain_federated,gain_static,n\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%g,%f,%f,%f,%f,%f,%f,%f,%f,%d\n" r.correlation
           r.lends.mean r.psi_federated.mean r.psi_federated.stddev
           r.psi_static.mean r.psi_standalone.mean r.psi_shift.mean
           r.gain_federated.mean r.gain_static.mean r.psi_federated.n))
    t.rows;
  Buffer.contents buf

let row_json r =
  Obs.Json.Obj
    [
      ("correlation", Obs.Json.Float r.correlation);
      ("lends", Obs.Json.Float r.lends.mean);
      ("psi_federated", Obs.Json.Float r.psi_federated.mean);
      ("psi_federated_stddev", Obs.Json.Float r.psi_federated.stddev);
      ("psi_static", Obs.Json.Float r.psi_static.mean);
      ("psi_standalone", Obs.Json.Float r.psi_standalone.mean);
      ("psi_shift", Obs.Json.Float r.psi_shift.mean);
      ("gain_federated", Obs.Json.Float r.gain_federated.mean);
      ("gain_static", Obs.Json.Float r.gain_static.mean);
      ("n", Obs.Json.Int r.psi_federated.n);
    ]

let json t = Obs.Json.Obj [ ("rows", Obs.Json.List (List.map row_json t.rows)) ]
let to_json t = Obs.Json.to_string ~pretty:true (json t) ^ "\n"
