(** Regeneration of Tables 1 and 2: average unfairness Δψ/p_tot per
    algorithm per workload.

    Paper protocol (Section 7.2/7.3): for each workload, draw random
    sub-trace instances (100 in the paper; configurable here because REF is
    exponential), run REF for the reference utility vector and every
    evaluated algorithm on the same instance, and report the mean and
    standard deviation of Δψ/p_tot over instances.  Table 1 uses horizon
    5·10⁴ s, Table 2 uses 5·10⁵ s. *)

type config = {
  horizon : int;
  instances : int;  (** random instances per cell *)
  norgs : int;
  machines : int;  (** scaled pool size (see DESIGN.md) *)
  endowment : Workload.Scenario.endowment;
  algorithms : (string * Algorithms.Policy.maker) list;
  models : Workload.Traces.model list;
  seed : int;
}

val table1_config : ?instances:int -> ?machines:int -> unit -> config
(** Horizon 5·10⁴, 5 organizations, the paper's algorithm line-up. *)

val table2_config : ?instances:int -> ?machines:int -> unit -> config
(** Horizon 5·10⁵. *)

type cell = { mean : float; stddev : float; n : int }

type table = {
  config : config;
  rows : (string * (string * cell) list) list;
      (** algorithm -> (model name -> cell) *)
}

val run : ?progress:(string -> unit) -> ?workers:int -> config -> table
(** Runs every (algorithm × model × instance) simulation; instances run in
    parallel on [workers] domains ({!Pool}, default: all available cores).
    Results are deterministic and independent of [workers].  [progress]
    receives one line per completed model (for long runs). *)

val pp : Format.formatter -> table -> unit
(** Renders in the paper's layout: one row per algorithm, avg ± std per
    workload column. *)

val to_csv : table -> string
