(* Domain-local construction flag, mirroring
   Core.Domain_pool.with_default_workers: the Policy.maker signature cannot
   carry a federation argument without breaking every registered algorithm,
   so the driver raises this flag around policy construction instead, and
   REF/RAND read it to decide whether their sub-coalition simulators must
   be federated (time-varying machine sets). *)

let key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let enabled () = Domain.DLS.get key

let with_enabled v f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key v;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
