(** Endowment models: compile a seeded peak-offloading description (or a
    scripted event list) into a time-ordered endowment-event trace.

    The stochastic model is the motivating scenario of the federated-cloud
    setting: each organization's load peaks once per cycle, and during its
    off-peak half-cycle it lends part of its home endowment to the partner
    whose peak is half a cycle away, reclaiming the machines just before
    its own next peak.  The [correlation] knob compresses the peak phases
    together — anti-correlated peaks are where cooperation pays, fully
    correlated peaks are where it cannot.  All randomness (per-org phase
    jitter) comes from the provided {!Fstats.Rng.t}, so traces are
    reproducible. *)

type spec = {
  period : int;  (** cycle length in time units *)
  lend : int;  (** machines each org lends per cycle *)
  correlation : float;  (** peak-phase correlation in [0, 1] *)
  jitter : float;  (** per-org phase jitter as a fraction of [period] *)
}

val default_spec : spec
(** [period:200, lend:1, correlation:0, jitter:0.1]. *)

val scripted : Event.timed list -> Event.timed list
(** Sorts an explicit event list into canonical trace order (validation is
    the driver's job, via {!Event.validate}). *)

val random :
  rng:Fstats.Rng.t ->
  machines_per_org:int array ->
  horizon:int ->
  spec:spec ->
  unit ->
  Event.timed list
(** Per-org lend/reclaim renewal trace over [0, horizon).  Each org lends
    the top [spec.lend] ids of its home machine block (so borrowed machines
    are never re-lent and the trace always validates); events at or after
    the horizon are dropped (machines lent near the horizon stay lent).
    Orgs are processed in id order from the single [rng], so the trace is a
    deterministic function of the seed.
    @raise Invalid_argument on fewer than 2 orgs or a malformed spec. *)

val spec_of_string : string -> (spec, string) result
(** Parses the CLI federation spec
    [period:P,lend:N[,correlation:R][,jitter:J]]; omitted keys take their
    {!default_spec} values.  The error string is a one-line diagnostic
    ready for the CLI's exit-2 contract. *)

val script_of_lines : string list -> (Event.timed list, string) result
(** Parses scripted-endowment lines — one event per line,
    [TIME join ORG [MACHINE...]] | [TIME leave ORG] |
    [TIME lend ORG TO_ORG MACHINE...] | [TIME reclaim ORG MACHINE...],
    whitespace-separated, [#] starts a comment, blank lines ignored — into
    a canonical sorted trace. *)

val load_script : string -> (Event.timed list, string) result
(** {!script_of_lines} over a file; the error string carries the path. *)

val count_kind : Event.timed list -> int * int * int * int
(** [(joins, leaves, lends, reclaims)] in the trace. *)
