(** Domain-local federated-construction flag.

    The driver cannot pass a federation argument through
    [Algorithms.Policy.maker] (its signature is the registry's contract),
    so it raises this flag around policy construction when an endowment
    stream is in play.  Estimators that maintain internal sub-coalition
    simulations (REF, RAND) read it in their maker to build federated
    simulators — machine sets that follow the live ownership state — and
    to broadcast endowment events to them.  Scoped and restored like
    {!Core.Domain_pool.with_default_workers}. *)

val enabled : unit -> bool
(** [true] inside {!with_enabled}[ true] on the current domain. *)

val with_enabled : bool -> (unit -> 'a) -> 'a
