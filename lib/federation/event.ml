type t =
  | Join of { org : int; machines : int list }
  | Leave of { org : int }
  | Lend of { org : int; to_org : int; machines : int list }
  | Reclaim of { org : int; machines : int list }

type timed = { time : int; event : t }

let org = function
  | Join { org; _ } | Leave { org } | Lend { org; _ } | Reclaim { org; _ } ->
      org

let machines = function
  | Leave _ -> []
  | Join { machines; _ } | Lend { machines; _ } | Reclaim { machines; _ } ->
      machines

let tag = function Join _ -> 0 | Leave _ -> 1 | Lend _ -> 2 | Reclaim _ -> 3

let to_org = function Lend { to_org; _ } -> Some to_org | _ -> None

let compare_timed a b =
  match Stdlib.compare a.time b.time with
  | 0 -> (
      match Stdlib.compare (org a.event) (org b.event) with
      | 0 -> (
          match Stdlib.compare (tag a.event) (tag b.event) with
          | 0 -> (
              match Stdlib.compare (to_org a.event) (to_org b.event) with
              | 0 -> Stdlib.compare (machines a.event) (machines b.event)
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let pp_machines ppf = function
  | [] -> ()
  | ms ->
      Format.fprintf ppf " [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           (fun ppf m -> Format.fprintf ppf "m%d" m))
        ms

let pp ppf = function
  | Join { org; machines } ->
      Format.fprintf ppf "join(o%d%a)" org pp_machines machines
  | Leave { org } -> Format.fprintf ppf "leave(o%d)" org
  | Lend { org; to_org; machines } ->
      Format.fprintf ppf "lend(o%d->o%d%a)" org to_org pp_machines machines
  | Reclaim { org; machines } ->
      Format.fprintf ppf "reclaim(o%d%a)" org pp_machines machines

let pp_timed ppf e = Format.fprintf ppf "t=%d %a" e.time pp e.event

(* --- Consortium ownership state ---------------------------------------- *)

module Ownership = struct
  type t = {
    home : int array;
    owner : int array;
    present : bool array;
    active : bool array;
  }

  type change =
    | Admit of { machine : int; org : int }
    | Retire of int
    | Transfer of { machine : int; org : int }
    | Activate of int
    | Deactivate of int

  let create ~homes ~orgs =
    Array.iter
      (fun h ->
        if h < 0 || h >= orgs then
          invalid_arg "Federation.Ownership.create: home org out of range")
      homes;
    {
      home = Array.copy homes;
      owner = Array.copy homes;
      present = Array.make (Array.length homes) true;
      active = Array.make orgs true;
    }

  let copy t =
    {
      home = t.home;
      owner = Array.copy t.owner;
      present = Array.copy t.present;
      active = Array.copy t.active;
    }

  let machines t = Array.length t.owner
  let orgs t = Array.length t.active
  let owner t m = t.owner.(m)
  let home t m = t.home.(m)
  let present t m = t.present.(m)
  let active t u = t.active.(u)

  let orgs_active t =
    Array.fold_left (fun n a -> if a then n + 1 else n) 0 t.active

  let present_count t =
    Array.fold_left (fun n p -> if p then n + 1 else n) 0 t.present

  let owned_count t u =
    let n = ref 0 in
    for m = 0 to machines t - 1 do
      if t.present.(m) && t.owner.(m) = u then incr n
    done;
    !n

  let lent_out t u =
    let n = ref 0 in
    for m = 0 to machines t - 1 do
      if t.present.(m) && t.home.(m) = u && t.owner.(m) <> u then incr n
    done;
    !n

  let err fmt = Format.kasprintf (fun m -> Error m) fmt

  let check_machines t ~what ms =
    let rec go last = function
      | [] -> Ok ()
      | m :: rest ->
          if m < 0 || m >= machines t then
            err "%s: machine m%d out of range [0, %d)" what m (machines t)
          else if m <= last then err "%s: machines not strictly increasing" what
          else go m rest
    in
    go (-1) ms

  (* Applies [event], mutating the state, and returns the primitive changes
     in a deterministic order (org activation first, then machines by
     ascending id).  On error the state is left unchanged. *)
  let apply t event =
    let ( let* ) = Result.bind in
    let* () =
      let u = org event in
      if u < 0 || u >= orgs t then
        err "%a: org out of range [0, %d)" pp event (orgs t)
      else Ok ()
    in
    match event with
    | Join { org = u; machines = ms } ->
        if t.active.(u) then err "%a: org already active" pp event
        else
          let* () = check_machines t ~what:"join" ms in
          let ms =
            match ms with
            | [] ->
                (* All of the org's absent home machines rejoin. *)
                List.filter
                  (fun m -> t.home.(m) = u && not t.present.(m))
                  (List.init (machines t) Fun.id)
            | ms -> ms
          in
          let* () =
            List.fold_left
              (fun acc m ->
                let* () = acc in
                if t.home.(m) <> u then
                  err "%a: machine m%d is homed to o%d" pp event m t.home.(m)
                else if t.present.(m) then
                  err "%a: machine m%d is already present" pp event m
                else Ok ())
              (Ok ()) ms
          in
          t.active.(u) <- true;
          List.iter
            (fun m ->
              t.present.(m) <- true;
              t.owner.(m) <- u)
            ms;
          Ok
            (Activate u
            :: List.map (fun m -> Admit { machine = m; org = u }) ms)
    | Leave { org = u } ->
        if not t.active.(u) then err "%a: org not active" pp event
        else begin
          t.active.(u) <- false;
          let changes = ref [] in
          for m = machines t - 1 downto 0 do
            if t.present.(m) then
              if t.home.(m) = u then begin
                (* The org takes its machines home, wherever they are lent. *)
                t.present.(m) <- false;
                changes := Retire m :: !changes
              end
              else if t.owner.(m) = u then begin
                (* Borrowed machines revert to their (active) home owner. *)
                t.owner.(m) <- t.home.(m);
                changes :=
                  Transfer { machine = m; org = t.home.(m) } :: !changes
              end
          done;
          Ok (Deactivate u :: !changes)
        end
    | Lend { org = u; to_org = v; machines = ms } ->
        if v < 0 || v >= orgs t then
          err "%a: to_org out of range [0, %d)" pp event (orgs t)
        else if v = u then err "%a: lend to self" pp event
        else if not t.active.(u) then err "%a: org not active" pp event
        else if not t.active.(v) then err "%a: to_org not active" pp event
        else if ms = [] then err "%a: empty machine set" pp event
        else
          let* () = check_machines t ~what:"lend" ms in
          let* () =
            List.fold_left
              (fun acc m ->
                let* () = acc in
                if not t.present.(m) then
                  err "%a: machine m%d is not present" pp event m
                else if t.owner.(m) <> u then
                  err "%a: machine m%d is owned by o%d" pp event m t.owner.(m)
                else Ok ())
              (Ok ()) ms
          in
          List.iter (fun m -> t.owner.(m) <- v) ms;
          Ok (List.map (fun m -> Transfer { machine = m; org = v }) ms)
    | Reclaim { org = u; machines = ms } ->
        if not t.active.(u) then err "%a: org not active" pp event
        else if ms = [] then err "%a: empty machine set" pp event
        else
          let* () = check_machines t ~what:"reclaim" ms in
          let* () =
            List.fold_left
              (fun acc m ->
                let* () = acc in
                if not t.present.(m) then
                  err "%a: machine m%d is not present" pp event m
                else if t.home.(m) <> u then
                  err "%a: machine m%d is homed to o%d" pp event m t.home.(m)
                else if t.owner.(m) = u then
                  err "%a: machine m%d is not lent out" pp event m
                else Ok ())
              (Ok ()) ms
          in
          List.iter (fun m -> t.owner.(m) <- u) ms;
          Ok (List.map (fun m -> Transfer { machine = m; org = u }) ms)
end

let validate ~orgs ~homes trace =
  let state = Ownership.create ~homes ~orgs in
  let rec go last = function
    | [] -> Ok ()
    | e :: rest ->
        if e.time < 0 then Error (Format.asprintf "%a: negative time" pp_timed e)
        else if e.time < last then
          Error
            (Format.asprintf "%a: out of order (previous at %d)" pp_timed e
               last)
        else (
          match Ownership.apply state e.event with
          | Error msg -> Error (Format.asprintf "t=%d %s" e.time msg)
          | Ok _ -> go e.time rest)
  in
  go 0 trace
