let scripted events = List.sort Event.compare_timed events

(* --- Seeded generative model ------------------------------------------- *)

type spec = {
  period : int;
  lend : int;
  correlation : float;
  jitter : float;
}

let default_spec = { period = 200; lend = 1; correlation = 0.; jitter = 0.1 }

(* Peak-offloading cycles: every org's load peaks once per [period]; during
   its off-peak half it lends [lend] of its home machines to the org whose
   peak is (roughly) half a cycle away, and reclaims them just before its
   own next peak.  [correlation] in [0, 1] compresses the peak phases
   together: at 0 the peaks are evenly staggered (someone always has spare
   capacity — federation should pay), at 1 everyone peaks at once (the lent
   machines arrive exactly when the lender needs them back).  A per-org
   phase jitter of up to [jitter * period], drawn from the seeded [rng],
   keeps instances distinct while preserving the per-org event order. *)
let random ~rng ~machines_per_org ~horizon ~spec () =
  let k = Array.length machines_per_org in
  if k < 2 then invalid_arg "Federation.Model.random: need >= 2 orgs";
  if horizon < 1 then invalid_arg "Federation.Model.random: horizon < 1";
  if spec.period < 2 then invalid_arg "Federation.Model.random: period < 2";
  if spec.lend < 1 then invalid_arg "Federation.Model.random: lend < 1";
  if spec.correlation < 0. || spec.correlation > 1. then
    invalid_arg "Federation.Model.random: correlation outside [0, 1]";
  let starts = Array.make k 0 in
  for u = 1 to k - 1 do
    starts.(u) <- starts.(u - 1) + machines_per_org.(u - 1)
  done;
  let jitter_max =
    int_of_float (spec.jitter *. float_of_int spec.period) |> Stdlib.max 0
  in
  let phase u =
    let base =
      (1. -. spec.correlation)
      *. float_of_int u /. float_of_int k
      *. float_of_int spec.period
    in
    let j = if jitter_max = 0 then 0 else Fstats.Rng.int rng (jitter_max + 1) in
    int_of_float base + j
  in
  let phases = Array.init k phase in
  let acc = ref [] in
  for u = 0 to k - 1 do
    let n = Stdlib.min spec.lend machines_per_org.(u) in
    if n > 0 then begin
      (* Lend the top ids of the org's home block — borrowed machines are
         never re-lent, so ownership round-trips org -> partner -> org. *)
      let ms = List.init n (fun i -> starts.(u) + machines_per_org.(u) - n + i) in
      let partner = (u + Stdlib.max 1 (k / 2)) mod k in
      let rec cycles c =
        let peak = (c * spec.period) + phases.(u) in
        let offpeak = peak + (spec.period / 2) in
        if offpeak >= horizon then ()
        else begin
          acc :=
            {
              Event.time = offpeak;
              event = Event.Lend { org = u; to_org = partner; machines = ms };
            }
            :: !acc;
          let back = peak + spec.period in
          if back < horizon then begin
            acc :=
              {
                Event.time = back;
                event = Event.Reclaim { org = u; machines = ms };
              }
              :: !acc;
            cycles (c + 1)
          end
        end
      in
      cycles 0
    end
  done;
  List.sort Event.compare_timed !acc

(* --- CLI-facing parsers ------------------------------------------------ *)

let spec_of_string s =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let fields =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let* pairs =
    List.fold_left
      (fun acc field ->
        let* acc = acc in
        match String.index_opt field ':' with
        | None ->
            err
              "federation spec field %S is not key:value (expected \
               period:P,lend:N[,correlation:R][,jitter:J])"
              field
        | Some i ->
            let key = String.sub field 0 i in
            let value = String.sub field (i + 1) (String.length field - i - 1) in
            Ok ((key, value) :: acc))
      (Ok []) fields
  in
  let lookup key = List.assoc_opt key pairs in
  let* () =
    match
      List.find_opt
        (fun (k, _) ->
          not (List.mem k [ "period"; "lend"; "correlation"; "jitter" ]))
        pairs
    with
    | Some (k, _) -> err "unknown federation spec key %S" k
    | None -> Ok ()
  in
  let int_at_least key floor default =
    match lookup key with
    | None -> Ok default
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= floor -> Ok n
        | Some _ | None ->
            err "federation spec %s must be an integer >= %d, got %S" key
              floor v)
  in
  let unit_float key default =
    match lookup key with
    | None -> Ok default
    | Some v -> (
        match float_of_string_opt v with
        | Some f when f >= 0. && f <= 1. -> Ok f
        | Some _ | None ->
            err "federation spec %s must be a number in [0, 1], got %S" key v)
  in
  let* period = int_at_least "period" 2 default_spec.period in
  let* lend = int_at_least "lend" 1 default_spec.lend in
  let* correlation = unit_float "correlation" default_spec.correlation in
  let* jitter = unit_float "jitter" default_spec.jitter in
  Ok { period; lend; correlation; jitter }

(* One event per line:
     TIME join ORG [MACHINE...]
     TIME leave ORG
     TIME lend ORG TO_ORG MACHINE [MACHINE...]
     TIME reclaim ORG MACHINE [MACHINE...]
   '#' starts a comment; blank lines are ignored. *)
let script_of_lines lines =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let* events =
    List.fold_left
      (fun acc (lineno, line) ->
        let* acc = acc in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let nat what tok =
          match int_of_string_opt tok with
          | Some n when n >= 0 -> Ok n
          | Some _ | None ->
              err "line %d: %s must be a non-negative integer, got %S" lineno
                what tok
        in
        let nats what toks =
          let* ms =
            List.fold_left
              (fun acc tok ->
                let* acc = acc in
                let* m = nat what tok in
                Ok (m :: acc))
              (Ok []) toks
          in
          Ok (List.sort_uniq Stdlib.compare ms)
        in
        match
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun t -> String.trim t <> "")
        with
        | [] -> Ok acc
        | time :: verb :: rest -> (
            let* time = nat "TIME" time in
            let* event =
              match (String.lowercase_ascii verb, rest) with
              | "join", org :: ms ->
                  let* org = nat "ORG" org in
                  let* machines = nats "MACHINE" ms in
                  Ok (Event.Join { org; machines })
              | "leave", [ org ] ->
                  let* org = nat "ORG" org in
                  Ok (Event.Leave { org })
              | "lend", org :: to_org :: (_ :: _ as ms) ->
                  let* org = nat "ORG" org in
                  let* to_org = nat "TO_ORG" to_org in
                  let* machines = nats "MACHINE" ms in
                  Ok (Event.Lend { org; to_org; machines })
              | "reclaim", org :: (_ :: _ as ms) ->
                  let* org = nat "ORG" org in
                  let* machines = nats "MACHINE" ms in
                  Ok (Event.Reclaim { org; machines })
              | _ ->
                  err
                    "line %d: expected TIME join ORG [M...] | TIME leave ORG \
                     | TIME lend ORG TO_ORG M... | TIME reclaim ORG M..., \
                     got %S"
                    lineno (String.trim line)
            in
            Ok ({ Event.time; event } :: acc))
        | _ -> err "line %d: truncated event %S" lineno (String.trim line))
      (Ok [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  Ok (scripted (List.rev events))

let load_script path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Result.map_error
        (fun msg -> Printf.sprintf "%s: %s" path msg)
        (script_of_lines (List.rev !lines))

let count_kind trace =
  List.fold_left
    (fun (j, l, ld, r) e ->
      match e.Event.event with
      | Event.Join _ -> (j + 1, l, ld, r)
      | Event.Leave _ -> (j, l + 1, ld, r)
      | Event.Lend _ -> (j, l, ld + 1, r)
      | Event.Reclaim _ -> (j, l, ld, r + 1))
    (0, 0, 0, 0) trace
