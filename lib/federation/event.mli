(** Endowment events: dynamic consortium membership and machine lending.

    The paper's model fixes the consortium and each organization's machine
    endowment up front; this module generalizes both along the lines of the
    federated-cloud follow-up (Pacholczyk & Skowron): organizations may
    [Leave] the consortium (taking their machines home) and [Join] again
    later, and while members they may [Lend] machines to a partner and
    [Reclaim] them.  Machines are identified by global machine id — the
    index into the driver's flattened, organization-contiguous machine
    array — and each machine has a fixed {e home} organization (its slot in
    that array); [Lend]/[Reclaim] move the current {e owner}, which is what
    ψsp capacity attribution and coalition values follow.

    An endowment {e trace} is a time-ordered stream of such events; the
    generators in {!Model} produce them, and the kernel applies them in the
    canonical within-instant phase order between machine faults and job
    releases. *)

type t =
  | Join of { org : int; machines : int list }
      (** The org (currently inactive) rejoins; the listed machines — which
          must be homed to it and absent — come back under its ownership.
          An empty list readmits all of its absent home machines. *)
  | Leave of { org : int }
      (** The org departs: jobs it has queued stop being scheduled (running
          jobs finish), every machine homed to it is retired wherever it is
          currently lent (killing the job it hosts, like a fault), and
          machines it borrowed revert to their home owners. *)
  | Lend of { org : int; to_org : int; machines : int list }
      (** Transfers ownership of present machines currently owned by [org]
          to [to_org]; running jobs are unaffected, but from this instant
          the capacity counts toward [to_org] in every coalition value. *)
  | Reclaim of { org : int; machines : int list }
      (** The home org takes back machines currently lent out. *)

type timed = { time : int; event : t }

val org : t -> int
(** The acting organization. *)

val machines : t -> int list
(** The machine set named by the event ([[]] for [Leave] and for a
    readmit-all [Join]). *)

val compare_timed : timed -> timed -> int
(** Orders by time, then acting org, then [Join] < [Leave] < [Lend] <
    [Reclaim], then borrower and machine set — a total deterministic order
    for sorting generator output. *)

val pp : Format.formatter -> t -> unit
val pp_timed : Format.formatter -> timed -> unit

type event := t

(** Replayable consortium state: per-machine home and current owner,
    per-machine presence, per-org activity.  One implementation shared by
    trace validation, the grand cluster, the sub-coalition simulations and
    the live membership gauges, so they cannot drift apart. *)
module Ownership : sig
  type t

  (** Primitive effects of one event, for the cluster to mirror.  [Admit]
      and [Retire] change presence (a retired machine kills its running
      job); [Transfer] moves ownership of a present machine without
      touching the job it runs. *)
  type change =
    | Admit of { machine : int; org : int }
    | Retire of int
    | Transfer of { machine : int; org : int }
    | Activate of int
    | Deactivate of int

  val create : homes:int array -> orgs:int -> t
  (** Everyone starts active, every machine present and owned by its home
      org.  @raise Invalid_argument if a home org is out of range. *)

  val copy : t -> t

  val machines : t -> int
  val orgs : t -> int
  val owner : t -> int -> int
  val home : t -> int -> int
  val present : t -> int -> bool
  val active : t -> int -> bool

  val orgs_active : t -> int
  (** k(t): the number of currently active organizations. *)

  val present_count : t -> int

  val owned_count : t -> int -> int
  (** Present machines currently owned by the org (home and borrowed). *)

  val lent_out : t -> int -> int
  (** Present machines homed to the org but currently owned elsewhere. *)

  val apply : t -> event -> (change list, string) result
  (** Applies one event, mutating the state, and returns the primitive
      changes in deterministic order (org (de)activation first, then
      machines by ascending id).  [Error] on a precondition violation
      (lending a machine one does not own, joining while active, …) leaves
      the state unchanged. *)
end

val validate :
  orgs:int -> homes:int array -> timed list -> (unit, string) result
(** Checks that times are non-negative and non-decreasing and that the
    whole trace replays cleanly from the initial endowment ([homes] is the
    flattened machine→home-org map): every event's preconditions hold in
    the ownership state produced by its predecessors.  The driver rejects
    invalid traces with [Invalid_argument] carrying this message. *)
