(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** Rigid parallel jobs — the paper's other open extension (end of
    Section 6: "for the case of parallel jobs the loss of the global
    efficiency of an arbitrary greedy algorithm can be higher" than 25%).

    A rigid job needs [width] processors simultaneously for its whole
    duration.  Greediness generalizes to: never leave processors idle if
    some waiting FIFO-front job {e fits} in the free capacity.  This module
    provides the simulator, three greedy rules, and the gadget showing the
    efficiency loss is unbounded (ratio 1/m), in contrast with the ¾ bound
    for sequential jobs. *)

type rigid_job = {
  job : Job.t;  (** carrier for org / release / size / FIFO index *)
  width : int;  (** processors required, [1 <= width <= machines] *)
}

type instance = {
  machines : int;
  jobs : rigid_job list;  (** re-sorted by release on creation *)
  horizon : int;
}

val make_instance :
  machines:int -> jobs:rigid_job list -> horizon:int -> instance
(** @raise Invalid_argument on non-positive machine count, widths out of
    range, or releases at/after the horizon. *)

(** Selection rule among the organizations whose FIFO-front job fits in the
    current free capacity. *)
type policy =
  | Fifo_fit  (** earliest-released fitting front (ties: lowest org) *)
  | Widest_fit  (** largest width among fitting fronts *)
  | Narrowest_fit  (** smallest width among fitting fronts *)

val policy_name : policy -> string

type run = {
  placements : (rigid_job * int) list;
      (** (job, start) of surviving attempts, start order (killed attempts
          are excised, like {!Core.Cluster}'s schedule) *)
  busy_time : int;  (** Σ width·occupied-slots before the horizon *)
  utilization : float;
  killed : int;  (** attempts killed by machine failures *)
  abandoned : int;  (** kills that exhausted [max_restarts] *)
  wasted : int;  (** processor-slots executed then lost across kills *)
  stats : Kernel.Stats.t;  (** the run's kernel counters *)
}

val simulate :
  ?faults:Faults.Event.timed list ->
  ?max_restarts:int ->
  instance ->
  policy ->
  run
(** Greedy simulation through {!Kernel.Engine}: at every event, while some
    front fits in the free (up and unoccupied) capacity, start the policy's
    pick on the lowest-numbered free machines.

    [faults] follows the kernel lifecycle: a [Fail] kills the hosted
    attempt — all [width] processors' executed slots are lost — and
    resubmits the job at the head of its owner's queue ([max_restarts]
    bounds resubmissions; once exceeded the job is abandoned); a [Recover]
    returns the machine.  Within an instant: completions, then faults, then
    releases, then the scheduling round.  Fault-free runs are bit-identical
    to the pre-kernel simulator.
    @raise Invalid_argument on an unsorted/out-of-range fault trace. *)

val check_rigid_greedy : instance -> run -> (unit, string) result
(** Validator: capacity is never exceeded, and no instant leaves enough
    free processors for a released, unstarted FIFO-front job. *)

val starvation_gadget : m:int -> size:int -> instance
(** [m] machines: organization 0 releases a 1-processor job, organization 1
    an [m]-processor job, both of [size] at t = 0; horizon [size].  A greedy
    rule that starts the thin job first strands the wide job: utilization
    [1/m] vs. the optimum's 100%. *)

type gadget_row = {
  m : int;
  thin_first : float;  (** utilization when the thin job goes first *)
  wide_first : float;
  ratio : float;  (** thin_first / wide_first = 1/m *)
}

val gadget_sweep : ms:int list -> size:int -> gadget_row list
