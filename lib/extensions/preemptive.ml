(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type policy = Equal_share | Utility_balance

type run = {
  utilities_scaled : int array;
  parts : int array;
  completed_jobs : int;
  stats : Kernel.Stats.t;
}

(* Mutable per-job progress for the slot loop. *)
type pjob = { job : Job.t; mutable left : int }

let simulate ?(faults = []) ?max_restarts:_ ~instance policy =
  if instance.Instance.speeds <> None then
    invalid_arg "Preemptive.simulate: identical machines only";
  let k = Instance.organizations instance in
  let m = Instance.total_machines instance in
  let horizon = instance.Instance.horizon in
  let shares = Array.init k (fun u -> Instance.share instance u) in
  let queues : pjob Queue.t array = Array.init k (fun _ -> Queue.create ()) in
  let psi2 = Array.make k 0 in
  let parts = Array.make k 0 in
  let completed = ref 0 in
  let rr_cursor = ref 0 in
  (* Machine identity only matters to route faults: capacity is what the
     slot loop consumes.  A failure at [t] shrinks the capacity of slot [t]
     and onward; preemptible jobs lose nothing (their executed slots are
     banked), so faults never kill and [max_restarts] never binds — the
     parameter is accepted for kernel-interface uniformity only. *)
  let up = Array.make m true in
  let capacity = ref m in
  let engine =
    Kernel.Engine.create ~faults ~machines:m
      ~release_time:(fun (j : Job.t) -> j.Job.release)
      instance.Instance.jobs
  in
  let stats = Kernel.Engine.stats engine in
  let model =
    {
      (* The tick source: slots where some organization has an unfinished
         released job must all run; in between, the next release is the
         only thing that can wake the loop.  Idle slots are no-ops in the
         slot-by-slot formulation (the round-robin cursor only moves when
         someone waits), so skipping them is exact, not an approximation. *)
      Kernel.Engine.next_completion =
        (fun () ->
          if Array.exists (fun q -> not (Queue.is_empty q)) queues then
            Some (Kernel.Engine.now engine + 1)
          else None);
      pop_completion = (fun ~time:_ -> false);
      apply_fault =
        (fun ~time:_ ev ->
          (match ev with
          | Faults.Event.Fail mid ->
              if up.(mid) then begin
                up.(mid) <- false;
                decr capacity
              end
          | Faults.Event.Recover mid ->
              if not up.(mid) then begin
                up.(mid) <- true;
                incr capacity
              end);
          Kernel.Engine.Applied);
      (* The preemptive extension keeps the paper's static consortium. *)
      apply_endow = (fun ~time:_ _ -> Kernel.Engine.no_endow_effect);
      admit =
        (fun ~time:_ (j : Job.t) ->
          Queue.add { job = j; left = j.Job.size } queues.(j.Job.org));
      round =
        (fun ~time:t ->
          (* Hand out the up-machine slots of slot [t].  Each organization
             may use at most as many slots as it has unfinished jobs (jobs
             are sequential: one slot per job per time step), always
             serving its FIFO front first. *)
          let order () =
            let waiting =
              List.filter
                (fun u -> not (Queue.is_empty queues.(u)))
                (List.init k Fun.id)
            in
            match policy with
            | Equal_share ->
                (* Rotate the start so slots spread evenly over time. *)
                let n = List.length waiting in
                if n = 0 then []
                else begin
                  incr rr_cursor;
                  let off = !rr_cursor mod n in
                  let arr = Array.of_list waiting in
                  List.init n (fun i -> arr.((i + off) mod n))
                end
            | Utility_balance ->
                List.sort
                  (fun a b ->
                    Stdlib.compare
                      (float_of_int psi2.(a) /. shares.(a))
                      (float_of_int psi2.(b) /. shares.(b)))
                  waiting
          in
          let free = ref !capacity in
          let granted = ref 0 in
          (* Round-robin over the ordered orgs, one job-slot at a time, so a
             single org cannot take every machine unless it is alone. *)
          let progressed = ref true in
          let served : (int, int) Hashtbl.t = Hashtbl.create 8 in
          while !free > 0 && !progressed do
            progressed := false;
            List.iter
              (fun u ->
                if !free > 0 then begin
                  let already =
                    Option.value (Hashtbl.find_opt served u) ~default:0
                  in
                  if already < Queue.length queues.(u) then begin
                    Hashtbl.replace served u (already + 1);
                    decr free;
                    incr granted;
                    progressed := true
                  end
                end)
              (order ())
          done;
          (* Execute the granted slots: each org runs its first [served u]
             jobs for one part. *)
          Hashtbl.iter
            (fun u n ->
              (* Take the first n jobs, advance them, re-queue unfinished. *)
              let grabbed = ref [] in
              for _ = 1 to n do
                match Queue.take_opt queues.(u) with
                | Some pj -> grabbed := pj :: !grabbed
                | None -> ()
              done;
              let keep =
                List.filter_map
                  (fun pj ->
                    pj.left <- pj.left - 1;
                    psi2.(u) <- psi2.(u) + (2 * (horizon - t));
                    parts.(u) <- parts.(u) + 1;
                    if pj.left = 0 then begin
                      incr completed;
                      stats.Kernel.Stats.completions <-
                        stats.Kernel.Stats.completions + 1;
                      None
                    end
                    else Some pj)
                  (List.rev !grabbed)
              in
              (* Put unfinished front jobs back at the front, preserving
                 order. *)
              let rest = Queue.create () in
              Queue.transfer queues.(u) rest;
              List.iter (fun pj -> Queue.add pj queues.(u)) keep;
              Queue.transfer rest queues.(u))
            served;
          !granted);
    }
  in
  Kernel.Engine.run engine model ~horizon ();
  {
    utilities_scaled = psi2;
    parts;
    completed_jobs = !completed;
    stats = Kernel.Stats.copy stats;
  }

let delta_ratio ~reference run =
  let a = reference.Sim.Driver.utilities_scaled in
  if Array.length a <> Array.length run.utilities_scaled then
    invalid_arg "Preemptive.delta_ratio: mismatched instances";
  let delta = ref 0 in
  Array.iteri
    (fun u v -> delta := !delta + abs (v - run.utilities_scaled.(u)))
    a;
  let ptot = Array.fold_left ( + ) 0 reference.Sim.Driver.parts in
  let ratio =
    if ptot = 0 then 0.
    else float_of_int !delta /. 2. /. float_of_int ptot
  in
  (!delta, ratio)
