(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type policy = Equal_share | Utility_balance

type run = {
  utilities_scaled : int array;
  parts : int array;
  completed_jobs : int;
}

(* Mutable per-job progress for the slot loop. *)
type pjob = { job : Job.t; mutable left : int }

let simulate ~instance policy =
  if instance.Instance.speeds <> None then
    invalid_arg "Preemptive.simulate: identical machines only";
  let k = Instance.organizations instance in
  let m = Instance.total_machines instance in
  let horizon = instance.Instance.horizon in
  let shares = Array.init k (fun u -> Instance.share instance u) in
  (* Per-org FIFO of not-yet-finished jobs, made visible at release time. *)
  let pending = ref (Array.to_list instance.Instance.jobs) in
  let queues : pjob Queue.t array = Array.init k (fun _ -> Queue.create ()) in
  let psi2 = Array.make k 0 in
  let parts = Array.make k 0 in
  let completed = ref 0 in
  let rr_cursor = ref 0 in
  for t = 0 to horizon - 1 do
    (* Releases at t. *)
    let rec release () =
      match !pending with
      | (j : Job.t) :: rest when j.Job.release <= t ->
          pending := rest;
          Queue.add { job = j; left = j.Job.size } queues.(j.Job.org);
          release ()
      | _ -> ()
    in
    release ();
    (* Hand out the m machine-slots of slot [t].  Each organization may use
       at most as many slots as it has unfinished jobs (jobs are
       sequential: one slot per job per time step), always serving its FIFO
       front first. *)
    let order () =
      let waiting =
        List.filter
          (fun u -> not (Queue.is_empty queues.(u)))
          (List.init k Fun.id)
      in
      match policy with
      | Equal_share ->
          (* Rotate the start so slots spread evenly over time. *)
          let n = List.length waiting in
          if n = 0 then []
          else begin
            incr rr_cursor;
            let off = !rr_cursor mod n in
            let arr = Array.of_list waiting in
            List.init n (fun i -> arr.((i + off) mod n))
          end
      | Utility_balance ->
          List.sort
            (fun a b ->
              Stdlib.compare
                (float_of_int psi2.(a) /. shares.(a))
                (float_of_int psi2.(b) /. shares.(b)))
            waiting
    in
    let free = ref m in
    (* Round-robin over the ordered orgs, one job-slot at a time, so a
       single org cannot take every machine unless it is alone. *)
    let progressed = ref true in
    let served : (int, int) Hashtbl.t = Hashtbl.create 8 in
    while !free > 0 && !progressed do
      progressed := false;
      List.iter
        (fun u ->
          if !free > 0 then begin
            let already = Option.value (Hashtbl.find_opt served u) ~default:0 in
            if already < Queue.length queues.(u) then begin
              Hashtbl.replace served u (already + 1);
              decr free;
              progressed := true
            end
          end)
        (order ())
    done;
    (* Execute the granted slots: each org runs its first [served u] jobs
       for one part. *)
    Hashtbl.iter
      (fun u n ->
        (* Take the first n jobs, advance them, re-queue unfinished. *)
        let grabbed = ref [] in
        for _ = 1 to n do
          match Queue.take_opt queues.(u) with
          | Some pj -> grabbed := pj :: !grabbed
          | None -> ()
        done;
        let keep =
          List.filter_map
            (fun pj ->
              pj.left <- pj.left - 1;
              psi2.(u) <- psi2.(u) + (2 * (horizon - t));
              parts.(u) <- parts.(u) + 1;
              if pj.left = 0 then begin
                incr completed;
                None
              end
              else Some pj)
            (List.rev !grabbed)
        in
        (* Put unfinished front jobs back at the front, preserving order. *)
        let rest = Queue.create () in
        Queue.transfer queues.(u) rest;
        List.iter (fun pj -> Queue.add pj queues.(u)) keep;
        Queue.transfer rest queues.(u))
      served
  done;
  { utilities_scaled = psi2; parts; completed_jobs = !completed }

let delta_ratio ~reference run =
  let a = reference.Sim.Driver.utilities_scaled in
  if Array.length a <> Array.length run.utilities_scaled then
    invalid_arg "Preemptive.delta_ratio: mismatched instances";
  let delta = ref 0 in
  Array.iteri
    (fun u v -> delta := !delta + abs (v - run.utilities_scaled.(u)))
    a;
  let ptot = Array.fold_left ( + ) 0 reference.Sim.Driver.parts in
  let ratio =
    if ptot = 0 then 0.
    else float_of_int !delta /. 2. /. float_of_int ptot
  in
  (!delta, ratio)
