(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

(** The price of non-preemption.

    The paper's model forbids preemption and migration ("usual in HPC
    scheduling because of high migration costs", §2) — every evaluated
    algorithm must commit a whole job to a machine.  This module asks what
    that costs in fairness: an idealized scheduler that may reassign
    machines at {e every time slot} can steer per-organization utilities
    almost continuously.

    The simulator runs a slot-by-slot loop (no event compression — this is
    an idealized bound, not a production path): each slot it hands the [m]
    machine-slots to the FIFO-front jobs of the organizations chosen by the
    policy; a job completes when it has accumulated [size] executed slots
    (its slots need not be contiguous nor on one machine).  ψsp extends
    verbatim: an executed part in slot [i] is worth [t − i].

    Comparing Δψ/p_tot of {!fair_share} (preemptive, utility-balancing)
    against the non-preemptive policies quantifies how much of their
    unfairness is due to the no-preemption constraint rather than to the
    contribution estimation. *)

type policy =
  | Equal_share  (** slot-level round robin over organizations *)
  | Utility_balance
      (** each slot, serve the organizations with the smallest current
          ψsp/share ratio — preemptive UTFAIRSHARE *)

type run = {
  utilities_scaled : int array;  (** [2·ψsp(u)] at the horizon *)
  parts : int array;
  completed_jobs : int;
  stats : Kernel.Stats.t;  (** the run's kernel counters *)
}

val simulate :
  ?faults:Faults.Event.timed list ->
  ?max_restarts:int ->
  instance:Instance.t ->
  policy ->
  run
(** O(busy slots · machines); identical machines only.  Runs through
    {!Kernel.Engine}: busy slots tick one by one, idle stretches are
    event-compressed exactly (the round-robin cursor only moves when
    someone waits, so skipped slots are no-ops).

    [faults] shrinks the slot capacity while machines are down ([Fail] at
    [t] removes the machine from slot [t] onward, [Recover] at [t] makes it
    usable in slot [t] itself).  Preemption means a failure costs no
    executed work — jobs are never killed — so [max_restarts] never binds;
    it is accepted for kernel-interface uniformity.
    @raise Invalid_argument on a related-machines instance or a malformed
    fault trace. *)

val delta_ratio :
  reference:Sim.Driver.result -> run -> int * float
(** [(2Δψ, Δψ/p_tot)] against a (non-preemptive) REF reference run, the
    same metric as {!Sim.Fairness.delta_ratio}. *)
