(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type rigid_job = { job : Job.t; width : int }
type instance = { machines : int; jobs : rigid_job list; horizon : int }

let make_instance ~machines ~jobs ~horizon =
  if machines < 1 then invalid_arg "Rigid.make_instance: no machines";
  if horizon < 1 then invalid_arg "Rigid.make_instance: bad horizon";
  List.iter
    (fun r ->
      if r.width < 1 || r.width > machines then
        invalid_arg "Rigid.make_instance: width out of range";
      if r.job.Job.release >= horizon then
        invalid_arg "Rigid.make_instance: release at/after horizon")
    jobs;
  let jobs =
    List.stable_sort (fun a b -> Job.compare_release a.job b.job) jobs
  in
  { machines; jobs; horizon }

type policy = Fifo_fit | Widest_fit | Narrowest_fit

let policy_name = function
  | Fifo_fit -> "fifo-fit"
  | Widest_fit -> "widest-fit"
  | Narrowest_fit -> "narrowest-fit"

type run = {
  placements : (rigid_job * int) list;
  busy_time : int;
  utilization : float;
  killed : int;
  abandoned : int;
  wasted : int;
  stats : Kernel.Stats.t;
}

let prefer policy a b =
  (* true when [a] beats [b] under the policy. *)
  match policy with
  | Fifo_fit ->
      let ra = a.job.Job.release and rb = b.job.Job.release in
      ra < rb || (ra = rb && a.job.Job.org < b.job.Job.org)
  | Widest_fit -> a.width > b.width
  | Narrowest_fit -> a.width < b.width

(* One started attempt.  [live] goes false when a machine failure kills the
   attempt; its completion-heap entry then becomes stale and is dropped
   lazily (failures are rare, deletions are O(1) this way). *)
type attempt = {
  rj : rigid_job;
  a_start : int;
  hosts : int list;  (* machine ids occupied by this attempt *)
  mutable live : bool;
}

let simulate ?(faults = []) ?max_restarts instance policy =
  let norgs =
    1 + List.fold_left (fun acc r -> Stdlib.max acc r.job.Job.org) 0 instance.jobs
  in
  let queues = Array.init norgs (fun _ -> Queue.create ()) in
  (* Kills resubmit at the head of the owner's queue, ahead of everything
     released later — same lifecycle convention as {!Core.Cluster}. *)
  let heads = Array.make norgs [] in
  let front org =
    match heads.(org) with
    | r :: _ -> Some r
    | [] -> Queue.peek_opt queues.(org)
  in
  let pop_front org =
    match heads.(org) with
    | r :: rest ->
        heads.(org) <- rest;
        r
    | [] -> Queue.pop queues.(org)
  in
  (* Without faults every machine is interchangeable, so the pre-kernel
     simulator only kept a free counter; killing the job hosted by one
     specific machine needs identities.  Attempts occupy the lowest-numbered
     free machines — invisible in any output, it only fixes which attempt a
     failure hits. *)
  let up = Array.make instance.machines true in
  let occupant = Array.make instance.machines None in
  let free = ref instance.machines in  (* up and unoccupied *)
  let running : attempt Heap.t = Heap.create () in
  let attempts = ref [] in  (* every started attempt, latest first *)
  let restarts = Hashtbl.create 16 in
  let killed = ref 0 and abandoned = ref 0 and wasted = ref 0 in
  let release_hosts a ~failed =
    List.iter
      (fun m ->
        occupant.(m) <- None;
        if up.(m) && not (failed = Some m) then incr free)
      a.hosts
  in
  let rec skip_dead () =
    (* Keep the heap minimum live so [next_completion] is exact. *)
    match Heap.min_prio running with
    | Some p -> (
        match Heap.pop_le running p with
        | Some (_, a) when not a.live -> skip_dead ()
        | Some (p, a) ->
            Heap.add running ~prio:p a;
            ()
        | None -> ())
    | None -> ()
  in
  let model =
    {
      Kernel.Engine.next_completion =
        (fun () ->
          skip_dead ();
          Heap.min_prio running);
      pop_completion =
        (fun ~time ->
          skip_dead ();
          match Heap.pop_le running time with
          | Some (_, a) ->
              release_hosts a ~failed:None;
              true
          | None -> false);
      apply_fault =
        (fun ~time ev ->
          match ev with
          | Faults.Event.Fail m ->
              if not up.(m) then Kernel.Engine.Applied
              else begin
                up.(m) <- false;
                match occupant.(m) with
                | None ->
                    decr free;
                    Kernel.Engine.Applied
                | Some a ->
                    a.live <- false;
                    release_hosts a ~failed:(Some m);
                    incr killed;
                    let w = a.rj.width * (time - a.a_start) in
                    wasted := !wasted + w;
                    let key = (a.rj.job.Job.org, a.rj.job.Job.index) in
                    let used =
                      Option.value (Hashtbl.find_opt restarts key) ~default:0
                    in
                    let resubmitted =
                      match max_restarts with
                      | Some budget when used >= budget -> false
                      | _ ->
                          Hashtbl.replace restarts key (used + 1);
                          heads.(a.rj.job.Job.org) <-
                            a.rj :: heads.(a.rj.job.Job.org);
                          true
                    in
                    if not resubmitted then incr abandoned;
                    Kernel.Engine.Killed { wasted = w; resubmitted }
              end
          | Faults.Event.Recover m ->
              if not up.(m) then begin
                up.(m) <- true;
                if occupant.(m) = None then incr free
              end;
              Kernel.Engine.Applied);
      (* The rigid extension keeps the paper's static consortium. *)
      apply_endow = (fun ~time:_ _ -> Kernel.Engine.no_endow_effect);
      admit = (fun ~time:_ r -> Queue.add r queues.(r.job.Job.org));
      round =
        (fun ~time ->
          let fitting_front () =
            let best = ref None in
            for org = 0 to norgs - 1 do
              match front org with
              | Some r when r.width <= !free -> (
                  match !best with
                  | Some b when prefer policy b r -> ()
                  | _ -> best := Some r)
              | Some _ | None -> ()
            done;
            !best
          in
          let n = ref 0 in
          let rec starts () =
            match fitting_front () with
            | Some r ->
                let r' = pop_front r.job.Job.org in
                assert (r' == r);
                let hosts = ref [] and need = ref r.width in
                let m = ref 0 in
                while !need > 0 do
                  if up.(!m) && occupant.(!m) = None then begin
                    hosts := !m :: !hosts;
                    decr need
                  end;
                  incr m
                done;
                let a =
                  { rj = r; a_start = time; hosts = List.rev !hosts; live = true }
                in
                List.iter (fun m -> occupant.(m) <- Some a) a.hosts;
                free := !free - r.width;
                Heap.add running ~prio:(time + r.job.Job.size) a;
                attempts := a :: !attempts;
                incr n;
                starts ()
            | None -> ()
          in
          starts ();
          !n);
    }
  in
  let engine =
    Kernel.Engine.create ~faults ~machines:instance.machines
      ~release_time:(fun r -> r.job.Job.release)
      (Array.of_list instance.jobs)
  in
  Kernel.Engine.run engine model ~horizon:instance.horizon ();
  (* Surviving attempts only: a killed attempt's occupancy is excised (its
     processor-slots are [wasted]), exactly like {!Core.Cluster}'s schedule. *)
  let placements =
    List.rev_map (fun a -> (a.rj, a.a_start)) (List.filter (fun a -> a.live) !attempts)
  in
  let busy_time =
    List.fold_left
      (fun acc (r, start) ->
        let finish = Stdlib.min (start + r.job.Job.size) instance.horizon in
        acc + (r.width * Stdlib.max 0 (finish - start)))
      0 placements
  in
  {
    placements;
    busy_time;
    utilization =
      float_of_int busy_time
      /. float_of_int (instance.machines * instance.horizon);
    killed = !killed;
    abandoned = !abandoned;
    wasted = !wasted;
    stats = Kernel.Stats.copy (Kernel.Engine.stats engine);
  }

let check_rigid_greedy instance result =
  let start_of r =
    List.find_opt (fun (r', _) -> r'.job == r.job) result.placements
    |> Option.map snd
  in
  let events =
    List.concat
      [
        [ 0 ];
        List.map (fun r -> r.job.Job.release) instance.jobs;
        List.map
          (fun (r, s) -> s + r.job.Job.size)
          result.placements;
      ]
    |> List.sort_uniq Stdlib.compare
    |> List.filter (fun t -> t < instance.horizon)
  in
  let free_at t =
    instance.machines
    - List.fold_left
        (fun acc (r, s) ->
          if s <= t && t < s + r.job.Job.size then acc + r.width else acc)
        0 result.placements
  in
  let fronts_at t =
    (* Per organization: the earliest-index job not started by [t] whose
       release has passed. *)
    let by_org = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let unstarted =
          match start_of r with None -> true | Some s -> s > t
        in
        if unstarted && r.job.Job.release <= t then begin
          match Hashtbl.find_opt by_org r.job.Job.org with
          | Some (prev : rigid_job) when prev.job.Job.index < r.job.Job.index
            ->
              ()
          | _ -> Hashtbl.replace by_org r.job.Job.org r
        end)
      instance.jobs;
    Hashtbl.fold (fun _ r acc -> r :: acc) by_org []
  in
  let rec check = function
    | [] -> Ok ()
    | t :: rest ->
        let free = free_at t in
        if free < 0 then
          Error (Printf.sprintf "capacity exceeded at t=%d" t)
        else if List.exists (fun r -> r.width <= free) (fronts_at t) then
          Error
            (Printf.sprintf
               "non-greedy: %d processors free at t=%d while a fitting job \
                waits"
               free t)
        else check rest
  in
  check events

let starvation_gadget ~m ~size =
  if m < 2 then invalid_arg "Rigid.starvation_gadget: m < 2";
  make_instance ~machines:m
    ~jobs:
      [
        { job = Job.make ~org:0 ~index:0 ~release:0 ~size (); width = 1 };
        { job = Job.make ~org:1 ~index:0 ~release:0 ~size (); width = m };
      ]
    ~horizon:size

type gadget_row = {
  m : int;
  thin_first : float;
  wide_first : float;
  ratio : float;
}

let gadget_sweep ~ms ~size =
  List.map
    (fun m ->
      let instance = starvation_gadget ~m ~size in
      let thin_first = (simulate instance Narrowest_fit).utilization in
      let wide_first = (simulate instance Widest_fit).utilization in
      { m; thin_first; wide_first; ratio = thin_first /. wide_first })
    ms
