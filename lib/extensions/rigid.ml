(* Shared scheduling vocabulary (Job, Schedule, Cluster). *)
open Core

type rigid_job = { job : Job.t; width : int }
type instance = { machines : int; jobs : rigid_job list; horizon : int }

let make_instance ~machines ~jobs ~horizon =
  if machines < 1 then invalid_arg "Rigid.make_instance: no machines";
  if horizon < 1 then invalid_arg "Rigid.make_instance: bad horizon";
  List.iter
    (fun r ->
      if r.width < 1 || r.width > machines then
        invalid_arg "Rigid.make_instance: width out of range";
      if r.job.Job.release >= horizon then
        invalid_arg "Rigid.make_instance: release at/after horizon")
    jobs;
  let jobs =
    List.stable_sort (fun a b -> Job.compare_release a.job b.job) jobs
  in
  { machines; jobs; horizon }

type policy = Fifo_fit | Widest_fit | Narrowest_fit

let policy_name = function
  | Fifo_fit -> "fifo-fit"
  | Widest_fit -> "widest-fit"
  | Narrowest_fit -> "narrowest-fit"

type run = {
  placements : (rigid_job * int) list;
  busy_time : int;
  utilization : float;
}

let prefer policy a b =
  (* true when [a] beats [b] under the policy. *)
  match policy with
  | Fifo_fit ->
      let ra = a.job.Job.release and rb = b.job.Job.release in
      ra < rb || (ra = rb && a.job.Job.org < b.job.Job.org)
  | Widest_fit -> a.width > b.width
  | Narrowest_fit -> a.width < b.width

let simulate instance policy =
  let norgs =
    1 + List.fold_left (fun acc r -> Stdlib.max acc r.job.Job.org) 0 instance.jobs
  in
  let queues = Array.init norgs (fun _ -> Queue.create ()) in
  let pending = ref instance.jobs in
  let running : rigid_job Heap.t = Heap.create () in
  let free = ref instance.machines in
  let placements = ref [] in
  let next_release () =
    match !pending with
    | r :: _ -> Some r.job.Job.release
    | [] -> None
  in
  let fitting_front () =
    let best = ref None in
    Array.iter
      (fun q ->
        match Queue.peek_opt q with
        | Some r when r.width <= !free -> (
            match !best with
            | Some b when prefer policy b r -> ()
            | _ -> best := Some r)
        | Some _ | None -> ())
      queues;
    !best
  in
  let process t =
    let rec completions () =
      match Heap.pop_le running t with
      | Some (_, r) ->
          free := !free + r.width;
          completions ()
      | None -> ()
    in
    completions ();
    let rec releases () =
      match !pending with
      | r :: rest when r.job.Job.release <= t ->
          pending := rest;
          Queue.add r queues.(r.job.Job.org);
          releases ()
      | _ -> ()
    in
    releases ();
    let rec starts () =
      match fitting_front () with
      | Some r ->
          let q = queues.(r.job.Job.org) in
          let r' = Queue.pop q in
          assert (r' == r);
          free := !free - r.width;
          Heap.add running ~prio:(t + r.job.Job.size) r;
          placements := (r, t) :: !placements;
          starts ()
      | None -> ()
    in
    starts ()
  in
  let rec loop () =
    let tau =
      match (next_release (), Heap.min_prio running) with
      | None, c -> c
      | r, None -> r
      | Some r, Some c -> Some (Stdlib.min r c)
    in
    match tau with
    | Some t when t < instance.horizon ->
        process t;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  let busy_time =
    List.fold_left
      (fun acc (r, start) ->
        let finish = Stdlib.min (start + r.job.Job.size) instance.horizon in
        acc + (r.width * Stdlib.max 0 (finish - start)))
      0 !placements
  in
  {
    placements = List.rev !placements;
    busy_time;
    utilization =
      float_of_int busy_time
      /. float_of_int (instance.machines * instance.horizon);
  }

let check_rigid_greedy instance result =
  let start_of r =
    List.find_opt (fun (r', _) -> r'.job == r.job) result.placements
    |> Option.map snd
  in
  let events =
    List.concat
      [
        [ 0 ];
        List.map (fun r -> r.job.Job.release) instance.jobs;
        List.map
          (fun (r, s) -> s + r.job.Job.size)
          result.placements;
      ]
    |> List.sort_uniq Stdlib.compare
    |> List.filter (fun t -> t < instance.horizon)
  in
  let free_at t =
    instance.machines
    - List.fold_left
        (fun acc (r, s) ->
          if s <= t && t < s + r.job.Job.size then acc + r.width else acc)
        0 result.placements
  in
  let fronts_at t =
    (* Per organization: the earliest-index job not started by [t] whose
       release has passed. *)
    let by_org = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let unstarted =
          match start_of r with None -> true | Some s -> s > t
        in
        if unstarted && r.job.Job.release <= t then begin
          match Hashtbl.find_opt by_org r.job.Job.org with
          | Some (prev : rigid_job) when prev.job.Job.index < r.job.Job.index
            ->
              ()
          | _ -> Hashtbl.replace by_org r.job.Job.org r
        end)
      instance.jobs;
    Hashtbl.fold (fun _ r acc -> r :: acc) by_org []
  in
  let rec check = function
    | [] -> Ok ()
    | t :: rest ->
        let free = free_at t in
        if free < 0 then
          Error (Printf.sprintf "capacity exceeded at t=%d" t)
        else if List.exists (fun r -> r.width <= free) (fronts_at t) then
          Error
            (Printf.sprintf
               "non-greedy: %d processors free at t=%d while a fitting job \
                waits"
               free t)
        else check rest
  in
  check events

let starvation_gadget ~m ~size =
  if m < 2 then invalid_arg "Rigid.starvation_gadget: m < 2";
  make_instance ~machines:m
    ~jobs:
      [
        { job = Job.make ~org:0 ~index:0 ~release:0 ~size (); width = 1 };
        { job = Job.make ~org:1 ~index:0 ~release:0 ~size (); width = m };
      ]
    ~horizon:size

type gadget_row = {
  m : int;
  thin_first : float;
  wide_first : float;
  ratio : float;
}

let gadget_sweep ~ms ~size =
  List.map
    (fun m ->
      let instance = starvation_gadget ~m ~size in
      let thin_first = (simulate instance Narrowest_fit).utilization in
      let wide_first = (simulate instance Widest_fit).utilization in
      { m; thin_first; wide_first; ratio = thin_first /. wide_first })
    ms
