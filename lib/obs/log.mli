(** Structured, leveled logging for the daemon and the libraries under it.

    Every diagnostic the service layer used to [eprintf] goes through this
    module instead, which buys three properties:

    - {b machine-parseable}: with the [Ndjson] format each record is one
      JSON object per line ([ts_ns], [level], [component], [msg], plus any
      typed fields), so shard-worker death, snapshot failures, and
      estimator switches can be grepped and joined instead of read off an
      interleaved stderr;
    - {b domain-safe}: emission takes one mutex around a single
      [output_string] + flush, so records from racing shard domains never
      interleave mid-line;
    - {b clock-injected}: timestamps come from {!Clock}, so tests mock
      them like every other timing in the repository.

    The default sink is [Text] on stderr at level {!Warn} — exactly the
    visibility the old [eprintf] sites had.  [fairsched serve
    --log-level/--log-file] reconfigures it at startup. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> (level, string) result
(** Accepts ["debug"], ["info"], ["warn"]/["warning"], ["error"]. *)

val set_level : level -> unit
(** Records below the threshold are dropped before formatting. *)

val level : unit -> level
val enabled : level -> bool

type format = Text | Ndjson

val set_sink : ?format:format -> out_channel -> unit
(** Route records to [oc] (default format [Text]).  The channel is not
    closed by this module; {!open_file} manages its own. *)

val open_file : ?format:format -> string -> (unit, string) result
(** Open [path] for append and make it the sink (default format
    [Ndjson] — a log {e file} is for machines).  Closes a previously
    {!open_file}d sink.  Errors are one-line messages. *)

val render :
  format -> ts_ns:int64 -> level -> component:string ->
  fields:(string * Json.t) list -> string -> string
(** The pure record formatter (no trailing newline) — exposed so tests
    can pin the schema without capturing a channel. *)

val log :
  level -> component:string -> ?fields:(string * Json.t) list ->
  ('a, Format.formatter, unit, unit) format4 -> 'a
(** [log lvl ~component ~fields fmt ...] formats and emits one record if
    [lvl] passes the threshold.  [component] tags the subsystem
    (["server"], ["shard"], ["wal"], ["pool"], ["chaos"]); [fields] carry
    the typed payload. *)

val debug :
  component:string -> ?fields:(string * Json.t) list ->
  ('a, Format.formatter, unit, unit) format4 -> 'a

val info :
  component:string -> ?fields:(string * Json.t) list ->
  ('a, Format.formatter, unit, unit) format4 -> 'a

val warn :
  component:string -> ?fields:(string * Json.t) list ->
  ('a, Format.formatter, unit, unit) format4 -> 'a

val error :
  component:string -> ?fields:(string * Json.t) list ->
  ('a, Format.formatter, unit, unit) format4 -> 'a
