(** Minimal JSON tree: one shared emitter (and parser) for every
    machine-readable dump in the repository.

    The hand-rolled [Printf]-JSON this replaces could emit invalid documents
    whenever a string value contained a quote, backslash, or control
    character; {!to_string} escapes properly, formats floats so they
    round-trip through {!of_string}, and maps non-finite floats to [null]
    (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize.  [pretty] (default false) adds newlines and two-space
    indentation. *)

val to_buffer : Buffer.t -> t -> unit
(** Compact serialization into an existing buffer. *)

val pp : Format.formatter -> t -> unit
(** Pretty serialization on a formatter. *)

val escape_string : string -> string
(** The JSON escape of a string {e including} the surrounding quotes. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  Numbers without [.], [e] or [E] parse
    as [Int] (falling back to [Float] past [max_int]); [\uXXXX] escapes,
    including surrogate pairs, decode to UTF-8.  Errors carry a byte
    offset.  Equivalent to {!parse} under {!default_limits} with the error
    rendered by {!error_to_string}. *)

(** {1 Untrusted input}

    The socket server parses attacker-controlled bytes, so the parser is
    total: no input may raise.  Both entry points enforce a nesting-depth
    bound (the recursive-descent parser burns one stack frame per level —
    without the bound, ["[[[["...] overflows the stack) and a document-size
    bound, and report violations as typed errors. *)

type limits = {
  max_depth : int;  (** maximum container nesting (top level = 1) *)
  max_bytes : int;  (** maximum document size in bytes *)
}

val default_limits : limits
(** 128 levels, 64 MiB. *)

type error = { offset : int; kind : error_kind }

and error_kind =
  | Syntax of string  (** malformed JSON, with a human-readable reason *)
  | Too_deep of int  (** nesting exceeded the limit (carried) *)
  | Too_large of { size : int; limit : int }

val parse : ?limits:limits -> string -> (t, error) result
(** Like {!of_string} with caller-chosen [limits] and structured errors.
    Never raises, whatever the input bytes. *)

val error_to_string : error -> string

(** {1 Accessors} (used by the trace validator) *)

val member : t -> string -> t option
(** Field lookup in an [Obj]; [None] on absence or non-objects. *)

val get_string : t -> string option
val get_list : t -> t list option

val get_number : t -> float option
(** [Int] or [Float] payload as a float. *)
