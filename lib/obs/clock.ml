let real_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let source : (unit -> int64) Atomic.t = Atomic.make real_ns

(* Largest value ever returned; [now_ns] never reports less than this, so a
   wall-clock step backwards freezes reported time instead of rewinding it. *)
let last = Atomic.make Int64.min_int

let now_ns () =
  let t = (Atomic.get source) () in
  let rec clamp () =
    let prev = Atomic.get last in
    if Int64.compare t prev <= 0 then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp ()
  in
  clamp ()

let ns_to_s d = Int64.to_float d /. 1e9
let now_s () = ns_to_s (now_ns ())
let elapsed t0 = ns_to_s (Int64.sub (now_ns ()) t0)

let with_source f body =
  let prev_source = Atomic.get source in
  let prev_last = Atomic.get last in
  Atomic.set source f;
  Atomic.set last Int64.min_int;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set source prev_source;
      Atomic.set last prev_last)
    body
