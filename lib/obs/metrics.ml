let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Shards are indexed by domain id modulo a fixed power of two: distinct
   domains usually hit distinct cells (no cross-domain contention on the hot
   path), and two domains that do collide are still correct because every
   cell is atomic. *)
let nshards = 32
let shard () = (Domain.self () :> int) land (nshards - 1)

(* --- pure histogram core ------------------------------------------------ *)

module Hist = struct
  type buckets = int array

  let nbuckets = 64
  let create () = Array.make nbuckets 0

  let bucket_of v =
    if not (v > 0.) then 0 (* negatives and nan clamp to the zero bucket *)
    else
      let _, e = Float.frexp v in
      (* v = m·2^e with m in [0.5, 1), i.e. v in [2^(e-1), 2^e) *)
      if e <= 0 then 0 else Stdlib.min (nbuckets - 1) e

  let upper_bound b = if b = 0 then 1.0 else Float.ldexp 1.0 b
  let add h v = h.(bucket_of v) <- h.(bucket_of v) + 1
  let merge a b = Array.init nbuckets (fun i -> a.(i) + b.(i))
  let count h = Array.fold_left ( + ) 0 h

  let quantile h q =
    let n = count h in
    if n = 0 then 0.
    else begin
      let rank =
        Stdlib.max 1
          (Stdlib.min n (int_of_float (Float.ceil (q *. float_of_int n))))
      in
      let rec go b acc =
        let acc = acc + h.(b) in
        if acc >= rank then upper_bound b else go (b + 1) acc
      in
      go 0 0
    end
end

(* --- concurrent metric cells -------------------------------------------- *)

type counter = { cells : int Atomic.t array }
type gauge = { bits : int64 Atomic.t (* float bits *) }

type histogram = {
  shards : int Atomic.t array array; (* nshards × Hist.nbuckets *)
  hmax : int64 Atomic.t; (* float bits; valid order because values >= 0 *)
}

type handle = C of counter | G of gauge | H of histogram

let registry : (string, handle) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let register name make describe =
  Mutex.lock registry_mutex;
  let r =
    match Hashtbl.find_opt registry name with
    | Some h -> (
        match describe h with
        | Some v -> Ok v
        | None ->
            Error
              (Printf.sprintf
                 "Obs.Metrics: %S is already registered as another kind" name))
    | None ->
        let v, h = make () in
        Hashtbl.add registry name h;
        Ok v
  in
  Mutex.unlock registry_mutex;
  match r with Ok v -> v | Error msg -> invalid_arg msg

let counter name =
  register name
    (fun () ->
      let c = { cells = Array.init nshards (fun _ -> Atomic.make 0) } in
      (c, C c))
    (function C c -> Some c | G _ | H _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { bits = Atomic.make 0L } in
      (g, G g))
    (function G g -> Some g | C _ | H _ -> None)

let histogram name =
  register name
    (fun () ->
      let h =
        {
          shards =
            Array.init nshards (fun _ ->
                Array.init Hist.nbuckets (fun _ -> Atomic.make 0));
          hmax = Atomic.make 0L;
        }
      in
      (h, H h))
    (function H h -> Some h | C _ | G _ -> None)

let add c n =
  if Atomic.get enabled_flag then
    ignore (Atomic.fetch_and_add c.cells.(shard ()) n)

let incr c = add c 1
let set g v = if Atomic.get enabled_flag then Atomic.set g.bits (Int64.bits_of_float v)

let observe h v =
  if Atomic.get enabled_flag then begin
    let v = if Float.is_finite v && v > 0. then v else 0. in
    ignore (Atomic.fetch_and_add h.shards.(shard ()).(Hist.bucket_of v) 1);
    let bits = Int64.bits_of_float v in
    let rec bump () =
      let cur = Atomic.get h.hmax in
      if Int64.compare bits cur > 0 then
        if not (Atomic.compare_and_set h.hmax cur bits) then bump ()
    in
    bump ()
  end

(* --- reading ------------------------------------------------------------ *)

let counter_value c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let gauge_value g = Int64.float_of_bits (Atomic.get g.bits)

let merged_buckets h =
  let merged = Hist.create () in
  Array.iter
    (fun sh ->
      Array.iteri (fun b cell -> merged.(b) <- merged.(b) + Atomic.get cell) sh)
    h.shards;
  merged

type summary = {
  count : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

type value = Counter of int | Gauge of float | Histogram of summary
type snapshot = (string * value) list

let summarize h =
  let b = merged_buckets h in
  let max = Int64.float_of_bits (Atomic.get h.hmax) in
  (* [Hist.quantile] answers with the upper bound of the rank's bucket,
     which can overshoot the largest observation; the exact max is tracked
     on the side, so clamp to it. *)
  let q p = Float.min (Hist.quantile b p) max in
  { count = Hist.count b; p50 = q 0.5; p90 = q 0.9; p99 = q 0.99; max }

let snapshot () =
  Mutex.lock registry_mutex;
  let entries = Hashtbl.fold (fun name h acc -> (name, h) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  entries
  |> List.map (fun (name, h) ->
         ( name,
           match h with
           | C c -> Counter (counter_value c)
           | G g -> Gauge (gauge_value g)
           | H h -> Histogram (summarize h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json () =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter n -> Json.Int n
           | Gauge v -> Json.Float v
           | Histogram s ->
               Json.Obj
                 [
                   ("count", Json.Int s.count);
                   ("p50", Json.Float s.p50);
                   ("p90", Json.Float s.p90);
                   ("p99", Json.Float s.p99);
                   ("max", Json.Float s.max);
                 ] ))
       (snapshot ()))

let pp ppf () =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "  %-32s %d@." name n
      | Gauge v -> Format.fprintf ppf "  %-32s %g@." name v
      | Histogram s ->
          Format.fprintf ppf
            "  %-32s count=%d p50=%g p90=%g p99=%g max=%g@." name s.count
            s.p50 s.p90 s.p99 s.max)
    (snapshot ())

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ h ->
      match h with
      | C c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
      | G g -> Atomic.set g.bits 0L
      | H h ->
          Array.iter (Array.iter (fun cell -> Atomic.set cell 0)) h.shards;
          Atomic.set h.hmax 0L)
    registry;
  Mutex.unlock registry_mutex
