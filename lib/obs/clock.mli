(** One process-wide, monotonic-leaning time source.

    Every wall-clock measurement in the repository goes through this module
    instead of calling [Unix.gettimeofday] directly, which buys two
    properties:

    - {b monotonic-leaning}: the reported time never moves backwards, even
      when the system clock steps (NTP adjustments, VM migrations).  A
      backwards step freezes the reported time until the wall clock catches
      up again, so elapsed-time measurements are never negative;
    - {b mockable}: tests install a synthetic source with {!with_source}
      and drive time deterministically.

    All operations are domain-safe (the clamp is a CAS loop on an atomic);
    [now_ns] costs one [gettimeofday] call plus a few atomic operations. *)

val now_ns : unit -> int64
(** Nanoseconds since the Unix epoch under the current source, clamped to
    be non-decreasing across the whole process. *)

val now_s : unit -> float
(** [now_ns] in seconds. *)

val elapsed : int64 -> float
(** [elapsed t0] is the time in seconds since [t0] (a previous {!now_ns}
    result).  Never negative. *)

val ns_to_s : int64 -> float
(** Unit conversion: [ns_to_s d] is [d] nanoseconds expressed in seconds. *)

val with_source : (unit -> int64) -> (unit -> 'a) -> 'a
(** [with_source f body] runs [body] with [f] installed as the time
    source, then restores the previous source and clamp state (even on
    exceptions).  Test-only: not intended to race with concurrent
    measurements on other domains. *)
