(** Process-wide registry of named counters, gauges, and log-bucketed
    histograms.

    Handles are created once (typically at module initialization) and are
    cheap to update from any domain: every counter and histogram is backed
    by per-domain shards (atomic cells indexed by the calling domain's id)
    that are only merged when a {!snapshot} is taken, so hot-path updates
    never contend on a single cache line across the worker pool.

    Collection is {b off by default}: {!incr}, {!add}, {!set} and
    {!observe} are no-ops (one atomic load and a branch) until
    {!set_enabled}[ true] — instrumentation can therefore live permanently
    in hot loops such as the kernel's scheduling round. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {1 Registration} — find-or-create by name.
    @raise Invalid_argument when the name is already registered as a
    different kind. *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Updates} — no-ops while collection is disabled *)

val incr : counter -> unit
val add : counter -> int -> unit

val set : gauge -> float -> unit
(** Last write wins (across domains, in an arbitrary race order). *)

val observe : histogram -> float -> unit
(** Record one observation.  Negative and non-finite values clamp to 0. *)

(** {1 Reading} *)

val counter_value : counter -> int
(** Merged over all domain shards. *)

val gauge_value : gauge -> float

type summary = {
  count : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}
(** Quantiles are upper bounds of the log₂ bucket containing the rank (at
    most 2× the true value); [max] is exact. *)

type value = Counter of int | Gauge of float | Histogram of summary
type snapshot = (string * value) list

val snapshot : unit -> snapshot
(** Every registered metric, merged over domain shards, sorted by name. *)

val to_json : unit -> Json.t
val pp : Format.formatter -> unit -> unit

val reset : unit -> unit
(** Zero every registered metric (registrations and handles stay valid). *)

(** {1 Histogram buckets} — the pure core, exposed for property tests *)

module Hist : sig
  type buckets = int array
  (** [buckets.(0)] counts observations in [\[0, 1)]; [buckets.(b)] for
      [b >= 1] counts [\[2^(b-1), 2^b)]; the top bucket absorbs the
      overflow. *)

  val nbuckets : int
  val create : unit -> buckets
  val bucket_of : float -> int
  val add : buckets -> float -> unit

  val merge : buckets -> buckets -> buckets
  (** Pointwise sum (associative and commutative — exactly how domain
      shards combine). *)

  val count : buckets -> int

  val quantile : buckets -> float -> float
  (** [quantile h q] for [q] in [\[0, 1\]]: the upper bound of the bucket
      holding the observation of rank [⌈q·count⌉] (rank clamped to
      [\[1, count\]]); [0.] when empty.  Monotone in [q]. *)
end
