type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ----------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

(* Shortest of %.12g / %.17g that round-trips; integral floats keep a ".0"
   so they parse back as Float. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf ~pretty ~indent v =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_items items emit_item =
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        if pretty then begin
          Buffer.add_char buf '\n';
          pad (indent + 1)
        end;
        emit_item item)
      items;
    if pretty && items <> [] then begin
      Buffer.add_char buf '\n';
      pad indent
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      sep_items items (emit buf ~pretty ~indent:(indent + 1));
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      sep_items fields (fun (name, v) ->
          add_escaped buf name;
          Buffer.add_string buf (if pretty then ": " else ":");
          emit buf ~pretty ~indent:(indent + 1) v);
      Buffer.add_char buf '}'

let to_buffer buf v = emit buf ~pretty:false ~indent:0 v

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  emit buf ~pretty ~indent:0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string ~pretty:true v)

(* --- parsing ------------------------------------------------------------ *)

type limits = { max_depth : int; max_bytes : int }

(* Generous enough for every in-tree document (traces, metrics, WAL
   snapshots), tight enough that hostile input cannot blow the stack: the
   recursive-descent parser burns one stack frame per nesting level. *)
let default_limits = { max_depth = 128; max_bytes = 64 * 1024 * 1024 }

type error = { offset : int; kind : error_kind }

and error_kind =
  | Syntax of string
  | Too_deep of int
  | Too_large of { size : int; limit : int }

let error_to_string e =
  match e.kind with
  | Syntax msg -> Printf.sprintf "invalid JSON at byte %d: %s" e.offset msg
  | Too_deep limit ->
      Printf.sprintf "invalid JSON at byte %d: nesting deeper than %d levels"
        e.offset limit
  | Too_large { size; limit } ->
      Printf.sprintf "JSON document too large: %d bytes (limit %d)" size limit

exception Parse_error of error

let parse ?(limits = default_limits) s =
  let n = String.length s in
  if n > limits.max_bytes then
    Error { offset = 0; kind = Too_large { size = n; limit = limits.max_bytes } }
  else
  let pos = ref 0 in
  let fail msg = raise (Parse_error { offset = !pos; kind = Syntax msg }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    (* int_of_string_opt: the 4 bytes are attacker-controlled and need not
       be hex digits (and "0x1_2f" style underscores must not sneak by). *)
    let tok = String.sub s !pos 4 in
    if String.exists (fun c -> c = '_') tok then fail "bad \\u escape";
    match int_of_string_opt ("0x" ^ tok) with
    | None -> fail "bad \\u escape"
    | Some v ->
        pos := !pos + 4;
        v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               let cp = hex4 () in
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   (* high surrogate: must pair with \uDC00-\uDFFF *)
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo < 0xDC00 || lo > 0xDFFF then
                       fail "invalid low surrogate";
                     0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                   end
                   else fail "unpaired high surrogate"
                 end
                 else if cp >= 0xDC00 && cp <= 0xDFFF then
                   fail "unpaired low surrogate"
                 else cp
               in
               Buffer.add_utf_8_uchar buf (Uchar.of_int cp)
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value depth =
    if depth > limits.max_depth then
      raise (Parse_error { offset = !pos; kind = Too_deep limits.max_depth });
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value (depth + 1) :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            (name, parse_value (depth + 1))
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 1 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error e -> Error e
  | exception Stack_overflow ->
      (* The depth limit makes this unreachable in practice; keep the
         promise that hostile bytes can never raise out of the parser. *)
      Error { offset = !pos; kind = Too_deep limits.max_depth }

let of_string s = Result.map_error error_to_string (parse s)

(* --- accessors ---------------------------------------------------------- *)

let member v name =
  match v with Obj fields -> List.assoc_opt name fields | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_list = function List l -> Some l | _ -> None

let get_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
