type event = {
  name : string;
  cat : string;
  ph : char;
  ts_ns : int64;
  dur_ns : int64;
  pid : int;
  tid : int;
  args : (string * Json.t) list;
}

let dummy =
  {
    name = "";
    cat = "";
    ph = ' ';
    ts_ns = 0L;
    dur_ns = 0L;
    pid = 1;
    tid = 0;
    args = [];
  }

(* One ring buffer per domain: recording never locks or contends.  Rings
   register themselves in a global list on first use and are kept after
   their domain dies (short-lived pool domains still contribute their
   events to the dump). *)
type ring = {
  tid : int;
  mutable pid : int; (* Chrome process lane; 1 unless {!set_pid} is called *)
  buf : event array;
  mutable pos : int; (* next write slot *)
  mutable written : int; (* total events ever recorded *)
}

let default_capacity = 1 lsl 16
let capacity = Atomic.make default_capacity

let set_capacity n =
  if n <= 0 then invalid_arg "Obs.Trace.set_capacity: capacity must be >= 1";
  Atomic.set capacity n

let rings : ring list ref = ref []
let rings_mutex = Mutex.create ()

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          tid = (Domain.self () :> int);
          pid = 1;
          buf = Array.make (Atomic.get capacity) dummy;
          pos = 0;
          written = 0;
        }
      in
      Mutex.lock rings_mutex;
      rings := r :: !rings;
      Mutex.unlock rings_mutex;
      r)

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0L

let set_enabled b =
  if b && not (Atomic.get enabled_flag) then Atomic.set epoch (Clock.now_ns ());
  Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

(* Process-lane names ([process_name] metadata in the dump): registered
   by {!set_pid}, global so the merge sees every lane. *)
let pid_names : (int * string) list ref = ref []
let pid_names_mutex = Mutex.create ()

let set_pid ?name pid =
  let r = Domain.DLS.get ring_key in
  r.pid <- pid;
  match name with
  | None -> ()
  | Some n ->
      Mutex.lock pid_names_mutex;
      if not (List.mem_assoc pid !pid_names) then
        pid_names := (pid, n) :: !pid_names;
      Mutex.unlock pid_names_mutex

let record ?(args = []) name cat ph ts_ns dur_ns =
  let r = Domain.DLS.get ring_key in
  r.buf.(r.pos) <- { name; cat; ph; ts_ns; dur_ns; pid = r.pid; tid = r.tid; args };
  r.pos <- (r.pos + 1) mod Array.length r.buf;
  r.written <- r.written + 1

let span ?(cat = "fairsched") ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        record ?args name cat 'X'
          (Int64.sub t0 (Atomic.get epoch))
          (Int64.sub t1 t0))
      f
  end

let instant ?(cat = "fairsched") ?args name =
  if Atomic.get enabled_flag then
    record ?args name cat 'i'
      (Int64.sub (Clock.now_ns ()) (Atomic.get epoch))
      0L

let all_rings () =
  Mutex.lock rings_mutex;
  let rs = !rings in
  Mutex.unlock rings_mutex;
  rs

let reset () =
  List.iter
    (fun r ->
      Array.fill r.buf 0 (Array.length r.buf) dummy;
      r.pos <- 0;
      r.written <- 0)
    (all_rings ())

let dropped () =
  List.fold_left
    (fun acc r -> acc + Stdlib.max 0 (r.written - Array.length r.buf))
    0 (all_rings ())

let events () =
  let live r =
    let cap = Array.length r.buf in
    let n = Stdlib.min r.written cap in
    (* Oldest first: when the ring wrapped, the oldest survivor is at
       [pos]. *)
    let start = if r.written <= cap then 0 else r.pos in
    List.init n (fun i -> r.buf.((start + i) mod cap))
  in
  all_rings ()
  |> List.concat_map live
  |> List.stable_sort (fun a b ->
         match Int64.compare a.ts_ns b.ts_ns with
         | 0 -> Int64.compare b.dur_ns a.dur_ns (* outer spans first *)
         | c -> c)

let ns_to_us ns = Int64.to_float ns /. 1e3

let event_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String (String.make 1 e.ph));
      ("ts", Json.Float (ns_to_us e.ts_ns));
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid);
    ]
  in
  let base =
    if e.ph = 'X' then base @ [ ("dur", Json.Float (ns_to_us e.dur_ns)) ]
    else base
  in
  Json.Obj
    (if e.args = [] then base else base @ [ ("args", Json.Obj e.args) ])

(* [process_name] metadata rows so Perfetto labels the router and each
   shard-worker lane; the validator skips timing checks on 'M'. *)
let metadata_events () =
  Mutex.lock pid_names_mutex;
  let names = !pid_names in
  Mutex.unlock pid_names_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) names
  |> List.map (fun (pid, name) ->
         Json.Obj
           [
             ("name", Json.String "process_name");
             ("ph", Json.String "M");
             ("pid", Json.Int pid);
             ("tid", Json.Int 0);
             ("args", Json.Obj [ ("name", Json.String name) ]);
           ])

let take_last n l =
  let rec drop k l = if k <= 0 then l else drop (k - 1) (List.tl l) in
  drop (List.length l - n) l

let to_json ?limit () =
  let evs = events () in
  let evs = match limit with None -> evs | Some n -> take_last n evs in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (metadata_events () @ List.map event_json evs) );
      ("displayTimeUnit", Json.String "ms");
    ]

let write path =
  let doc = to_json () in
  let n =
    match Json.member doc "traceEvents" with
    | Some (Json.List l) -> List.length l
    | _ -> 0
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf doc;
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf);
  n

(* --- validation --------------------------------------------------------- *)

type validation = {
  total_events : int;
  tids : int list;
  span_names : string list;
}

let validate doc =
  let ( let* ) = Result.bind in
  let* events =
    match doc with
    | Json.List l -> Ok l
    | Json.Obj _ -> (
        match Json.member doc "traceEvents" with
        | Some (Json.List l) -> Ok l
        | Some _ -> Error "\"traceEvents\" is not an array"
        | None -> Error "missing \"traceEvents\" array")
    | _ -> Error "expected a JSON object or array at top level"
  in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let open_spans : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let names = Hashtbl.create 16 in
  let check i ev =
    let ctx msg = Error (Printf.sprintf "event %d: %s" i msg) in
    let* name =
      match Option.bind (Json.member ev "name") Json.get_string with
      | Some n -> Ok n
      | None -> ctx "missing string \"name\""
    in
    let* ph =
      match Option.bind (Json.member ev "ph") Json.get_string with
      | Some p when String.length p = 1 -> Ok p.[0]
      | Some p -> ctx (Printf.sprintf "bad phase %S" p)
      | None -> ctx "missing \"ph\""
    in
    let* () =
      match ph with
      | 'X' | 'B' | 'E' | 'i' | 'I' | 'C' | 'M' -> Ok ()
      | c -> ctx (Printf.sprintf "unknown phase %C" c)
    in
    if ph = 'M' then Ok () (* metadata events carry no timing *)
    else
      let* ts =
        match Option.bind (Json.member ev "ts") Json.get_number with
        | Some t when t >= 0. -> Ok t
        | Some _ -> ctx "negative \"ts\""
        | None -> ctx "missing numeric \"ts\""
      in
      let* tid =
        match Option.bind (Json.member ev "tid") Json.get_number with
        | Some t -> Ok (int_of_float t)
        | None -> ctx "missing numeric \"tid\""
      in
      let* () =
        match Hashtbl.find_opt last_ts tid with
        | Some prev when ts < prev ->
            ctx
              (Printf.sprintf "ts %g goes backwards on tid %d (previous %g)"
                 ts tid prev)
        | _ ->
            Hashtbl.replace last_ts tid ts;
            Ok ()
      in
      let* () =
        match ph with
        | 'X' -> (
            match Option.bind (Json.member ev "dur") Json.get_number with
            | Some d when d >= 0. -> Ok ()
            | Some _ -> ctx "negative \"dur\""
            | None -> ctx "complete event without \"dur\"")
        | 'B' ->
            Hashtbl.replace open_spans tid
              (name :: Option.value ~default:[] (Hashtbl.find_opt open_spans tid));
            Ok ()
        | 'E' -> (
            match Hashtbl.find_opt open_spans tid with
            | Some (_ :: rest) ->
                Hashtbl.replace open_spans tid rest;
                Ok ()
            | Some [] | None ->
                ctx (Printf.sprintf "unbalanced E event on tid %d" tid))
        | _ -> Ok ()
      in
      if ph = 'X' || ph = 'B' then Hashtbl.replace names name ();
      Ok ()
  in
  let rec go i = function
    | [] -> Ok ()
    | (Json.Obj _ as ev) :: rest ->
        let* () = check i ev in
        go (i + 1) rest
    | _ -> Error (Printf.sprintf "event %d: not an object" i)
  in
  let* () = go 0 events in
  let* () =
    Hashtbl.fold
      (fun tid stack acc ->
        let* () = acc in
        match stack with
        | [] -> Ok ()
        | name :: _ ->
            Error
              (Printf.sprintf "unclosed B event %S on tid %d" name tid))
      open_spans (Ok ())
  in
  let sorted_keys tbl =
    List.sort_uniq Stdlib.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
  in
  Ok
    {
      total_events = List.length events;
      tids = sorted_keys last_ts;
      span_names = sorted_keys names;
    }

let validate_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Result.bind (Json.of_string contents) validate
  | exception Sys_error msg -> Error msg
