type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other ->
      Error
        (Printf.sprintf
           "unknown log level %S (expected debug|info|warn|error)" other)

type format = Text | Ndjson

(* The threshold is an atomic so [enabled] stays a lock-free fast path;
   the sink itself is only touched under the mutex. *)
let threshold = Atomic.make (severity Warn)
let set_level l = Atomic.set threshold (severity l)

let level () =
  match Atomic.get threshold with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let enabled l = severity l >= Atomic.get threshold

type sink = { oc : out_channel; fmt : format; owned : bool }

let sink = ref { oc = stderr; fmt = Text; owned = false }
let sink_mutex = Mutex.create ()

let replace_sink s =
  Mutex.lock sink_mutex;
  let old = !sink in
  sink := s;
  Mutex.unlock sink_mutex;
  if old.owned then close_out_noerr old.oc

let set_sink ?(format = Text) oc = replace_sink { oc; fmt = format; owned = false }

let open_file ?(format = Ndjson) path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc ->
      replace_sink { oc; fmt = format; owned = true };
      Ok ()
  | exception Sys_error msg -> Error msg

let render fmt ~ts_ns lvl ~component ~fields msg =
  match fmt with
  | Ndjson ->
      Json.to_string
        (Json.Obj
           ([
              ("ts_ns", Json.String (Int64.to_string ts_ns));
              ("level", Json.String (level_to_string lvl));
              ("component", Json.String component);
              ("msg", Json.String msg);
            ]
           @ fields))
  | Text ->
      let b = Buffer.create 96 in
      Buffer.add_string b
        (Printf.sprintf "fairsched[%s] %s: %s" (level_to_string lvl) component
           msg);
      List.iter
        (fun (k, v) ->
          Buffer.add_char b ' ';
          Buffer.add_string b k;
          Buffer.add_char b '=';
          Buffer.add_string b
            (match v with Json.String s -> s | v -> Json.to_string v))
        fields;
      Buffer.contents b

let emit lvl ~component ~fields msg =
  let ts_ns = Clock.now_ns () in
  Mutex.lock sink_mutex;
  let { oc; fmt; _ } = !sink in
  (try
     output_string oc (render fmt ~ts_ns lvl ~component ~fields msg);
     output_char oc '\n';
     flush oc
   with Sys_error _ -> () (* a dead sink must never kill the daemon *));
  Mutex.unlock sink_mutex

let log lvl ~component ?(fields = []) f =
  if enabled lvl then
    Format.kasprintf (fun msg -> emit lvl ~component ~fields msg) f
  else Format.ikfprintf ignore Format.str_formatter f

let debug ~component ?fields f = log Debug ~component ?fields f
let info ~component ?fields f = log Info ~component ?fields f
let warn ~component ?fields f = log Warn ~component ?fields f
let error ~component ?fields f = log Error ~component ?fields f
