(** Span-based tracing that emits Chrome trace-event JSON.

    The output of {!write} loads directly into Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing]: one [pid] for the
    process, one [tid] per OCaml domain, complete ([X]) events for spans
    and [i] events for instants.

    Recording is {b off by default} and costs one atomic load and a branch
    per {!span} while disabled, so instrumentation stays permanently in hot
    paths (kernel phases, REF size stages, domain-pool batches).  While
    enabled, events go to per-domain ring buffers (no locking, no I/O on
    the hot path); when a ring overflows, the oldest events are dropped —
    spans are recorded at their {e end}, so long-running outer spans
    survive eviction. *)

val set_enabled : bool -> unit
(** Turning tracing on also (re)sets the trace epoch: timestamps in the
    dump are relative to this moment. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Ring capacity per domain (default 65536 events), for rings created
    after the call.  @raise Invalid_argument on non-positive capacity. *)

val span : ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; while tracing is enabled it records a
    complete event covering the call (also when [f] raises).  [cat] is the
    Chrome trace category (default ["fairsched"]); [args] become the
    event's [args] object (e.g. the request's trace id). *)

val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit
(** A zero-duration marker. *)

val set_pid : ?name:string -> int -> unit
(** Assign the {e calling domain}'s events to Chrome process lane [pid]
    (default lane is 1).  The sharded daemon gives the router and every
    shard worker a distinct lane, so a merged dump renders one swimlane
    group per shard.  [name] labels the lane via a [process_name]
    metadata event in the dump. *)

val reset : unit -> unit
(** Drop every recorded event (ring registrations survive). *)

type event = {
  name : string;
  cat : string;
  ph : char;  (** ['X'] complete span, ['i'] instant *)
  ts_ns : int64;  (** start, relative to the trace epoch *)
  dur_ns : int64;  (** 0 for instants *)
  pid : int;  (** Chrome process lane ({!set_pid}; 1 by default) *)
  tid : int;  (** OCaml domain id *)
  args : (string * Json.t) list;  (** the event's [args] payload *)
}

val events : unit -> event list
(** Everything currently buffered, merged across domains and sorted by
    start time (ties: longer spans first, so nesting renders correctly). *)

val dropped : unit -> int
(** Events lost to ring overflow since the last {!reset}. *)

val to_json : ?limit:int -> unit -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] with timestamps in
    microseconds, as Chrome/Perfetto expect.  [limit] keeps only the most
    recent [limit] events (the live [ctl trace] scrape bounds its response
    to the wire's line limit this way); [process_name] metadata events for
    lanes named via {!set_pid} are always included. *)

val write : string -> int
(** Serialize {!to_json} to a file; returns the number of events written.
    @raise Sys_error when the path is unwritable. *)

(** {1 Validation} — the in-tree checker used by tests and
    [fairsched validate-trace] *)

type validation = {
  total_events : int;
  tids : int list;  (** distinct thread ids, sorted *)
  span_names : string list;  (** distinct names of [X]/[B] events, sorted *)
}

val validate : Json.t -> (validation, string) result
(** Accepts both the object form ([{"traceEvents": [...]}]) and a bare
    event array.  Checks per event: an object with a string [name], a
    known single-character [ph], numeric [ts]/[tid], non-negative [dur] on
    [X] events; per [tid]: timestamps non-decreasing in file order and
    [B]/[E] begin/end events balanced. *)

val validate_file : string -> (validation, string) result
(** Read, parse, and {!validate}; I/O and parse errors become [Error]. *)
