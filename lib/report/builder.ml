type config = {
  table_instances : int;
  table2_instances : int;
  fig10_instances : int;
  fig10_max_orgs : int;
  timeline_instances : int;
  workers : int option;
}

let default_config ?(quick = false) () =
  if quick then
    {
      table_instances = 3;
      table2_instances = 1;
      fig10_instances = 2;
      fig10_max_orgs = 5;
      timeline_instances = 1;
      workers = None;
    }
  else
    {
      table_instances = 12;
      table2_instances = 4;
      fig10_instances = 4;
      fig10_max_orgs = 8;
      timeline_instances = 3;
      workers = None;
    }

let section buf ~title ~blurb body =
  Buffer.add_string buf
    (Printf.sprintf "<h2>%s</h2>\n<p>%s</p>\n%s\n" (Svg.escape title)
       (Svg.escape blurb) body)

let table_to_chart (t : Experiments.Tables.table) ~title =
  let groups =
    List.map
      (fun model ->
        {
          Svg.group = model.Workload.Traces.name;
          bars =
            List.map
              (fun (algo, cells) ->
                let cell =
                  List.assoc model.Workload.Traces.name cells
                in
                (algo, cell.Experiments.Tables.mean))
              t.Experiments.Tables.rows;
        })
      t.Experiments.Tables.config.Experiments.Tables.models
  in
  Svg.bar_chart ~log_y:true ~title ~y_label:"Δψ / p_tot" groups

let table_to_html (t : Experiments.Tables.table) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<table><tr><th>algorithm</th>";
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "<th>%s</th>" (Svg.escape m.Workload.Traces.name)))
    t.Experiments.Tables.config.Experiments.Tables.models;
  Buffer.add_string buf "</tr>\n";
  List.iter
    (fun (algo, cells) ->
      Buffer.add_string buf (Printf.sprintf "<tr><td>%s</td>" (Svg.escape algo));
      List.iter
        (fun m ->
          let c = List.assoc m.Workload.Traces.name cells in
          Buffer.add_string buf
            (Printf.sprintf "<td>%.2f ± %.2f</td>" c.Experiments.Tables.mean
               c.Experiments.Tables.stddev))
        t.Experiments.Tables.config.Experiments.Tables.models;
      Buffer.add_string buf "</tr>\n")
    t.Experiments.Tables.rows;
  Buffer.add_string buf "</table>\n";
  Buffer.contents buf

let fig10_chart (f : Experiments.Fig10.figure) =
  Svg.line_chart ~log_y:true ~title:"Figure 10 — unfairness vs organizations"
    ~x_label:"organizations" ~y_label:"Δψ / p_tot"
    (List.map
       (fun (s : Experiments.Fig10.series) ->
         {
           Svg.label = s.Experiments.Fig10.algorithm;
           points =
             List.map
               (fun (p : Experiments.Fig10.point) ->
                 ( float_of_int p.Experiments.Fig10.norgs,
                   p.Experiments.Fig10.mean ))
               s.Experiments.Fig10.points;
         })
       f.Experiments.Fig10.series)

let timeline_chart (f : Experiments.Timeline.figure) =
  Svg.line_chart ~title:"Unfairness over time (LPC-EGEE)"
    ~x_label:"time (s)" ~y_label:"Δψ(t) / p_tot(t)"
    (List.map
       (fun (s : Experiments.Timeline.series) ->
         {
           Svg.label = s.Experiments.Timeline.algorithm;
           points =
             List.map
               (fun (t, v) -> (float_of_int t, v))
               s.Experiments.Timeline.points;
         })
       f.Experiments.Timeline.series)

let utilization_chart rows =
  Svg.line_chart ~title:"Greedy vs optimal utilization (Figure 7 family)"
    ~x_label:"machines m" ~y_label:"utilization"
    [
      {
        Svg.label = "worst greedy";
        points =
          List.map
            (fun (r : Experiments.Worked_examples.utilization_row) ->
              (float_of_int r.m, r.greedy_worst))
            rows;
      };
      {
        Svg.label = "best greedy";
        points =
          List.map
            (fun (r : Experiments.Worked_examples.utilization_row) ->
              (float_of_int r.m, r.greedy_best))
            rows;
      };
      {
        Svg.label = "3/4 bound";
        points =
          List.map
            (fun (r : Experiments.Worked_examples.utilization_row) ->
              (float_of_int r.m, 0.75))
            rows;
      };
    ]

let extension_chart () =
  let related = Sim.Related.gadget_sweep ~ratios:[ 1; 2; 4; 8; 16 ] ~work:60 () in
  let rigid = Extensions.Rigid.gadget_sweep ~ms:[ 2; 4; 8; 16 ] ~size:40 in
  Svg.line_chart ~title:"Greedy efficiency loss beyond identical machines"
    ~x_label:"speed ratio r / width m" ~y_label:"worst/best ratio"
    [
      {
        Svg.label = "related machines (1/r)";
        points =
          List.map
            (fun (r : Sim.Related.gadget_row) ->
              (float_of_int r.Sim.Related.ratio, r.Sim.Related.work_ratio))
            related;
      };
      {
        Svg.label = "rigid jobs (1/m)";
        points =
          List.map
            (fun (r : Extensions.Rigid.gadget_row) ->
              (float_of_int r.Extensions.Rigid.m, r.Extensions.Rigid.ratio))
            rigid;
      };
      {
        Svg.label = "sequential-identical bound (3/4)";
        points = [ (1., 0.75); (16., 0.75) ];
      };
    ]

let build ?(progress = fun _ -> ()) config =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>Non-monetary fair scheduling — reproduction report</title>\n\
     <style>body{font-family:sans-serif;max-width:960px;margin:2em \
     auto;color:#222}table{border-collapse:collapse;margin:1em \
     0}td,th{border:1px solid #999;padding:4px 10px;text-align:right}\
     th{background:#eee}h1{border-bottom:2px solid #444}p{color:#444}\
     </style></head><body>\n\
     <h1>Non-monetary fair scheduling — reproduction report</h1>\n\
     <p>Skowron &amp; Rzadca, SPAA 2013. Generated by <code>fairsched \
     report</code>; every chart regenerated from simulation (see \
     EXPERIMENTS.md for the paper-vs-measured discussion).</p>\n";
  progress "table 1";
  let t1 =
    Experiments.Tables.run ?workers:config.workers
      (Experiments.Tables.table1_config ~instances:config.table_instances ())
  in
  section buf ~title:"Table 1 — unfairness at horizon 50 000 s"
    ~blurb:
      "Average unjustified delay per unit of work relative to the exact \
       Shapley-fair schedule (lower is fairer; log scale)."
    (table_to_chart t1 ~title:"Δψ/p_tot by workload (horizon 5·10⁴)"
    ^ table_to_html t1);
  progress "table 2";
  let t2 =
    Experiments.Tables.run ?workers:config.workers
      (Experiments.Tables.table2_config ~instances:config.table2_instances ())
  in
  section buf ~title:"Table 2 — unfairness at horizon 500 000 s"
    ~blurb:
      "Ten times the horizon: every algorithm drifts further from the fair \
       schedule, so the choice of algorithm matters more on long traces."
    (table_to_chart t2 ~title:"Δψ/p_tot by workload (horizon 5·10⁵)"
    ^ table_to_html t2);
  progress "figure 10";
  let f10 =
    Experiments.Fig10.run ?workers:config.workers
      (Experiments.Fig10.default_config ~instances:config.fig10_instances
         ~max_orgs:config.fig10_max_orgs ())
  in
  section buf ~title:"Figure 10 — more organizations, more unfairness"
    ~blurb:
      "The gap between Shapley-based scheduling (rand-15) and \
       static shares widens with the number of organizations."
    (fig10_chart f10);
  progress "timeline";
  let tl =
    Experiments.Timeline.run ?workers:config.workers
      (Experiments.Timeline.default_config
         ~instances:config.timeline_instances ())
  in
  section buf ~title:"Unfairness over time"
    ~blurb:
      "Definition 3.2 makes fairness a property of every instant; snapshots \
       show how each policy's distance to the fair utilities accumulates."
    (timeline_chart tl);
  progress "utilization";
  section buf ~title:"Theorem 6.2 — greedy utilization is ¾-competitive"
    ~blurb:
      "On the tight Figure-7 family the worst greedy order sits exactly at \
       3/4 of the optimum, independent of scale."
    (utilization_chart
       (Experiments.Worked_examples.utilization_sweep
          [ (2, 3); (4, 3); (6, 3); (8, 3); (10, 3) ]));
  progress "extensions";
  section buf ~title:"Extensions — where the ¾ guarantee stops"
    ~blurb:
      "With related machines or rigid parallel jobs (both left open by the \
       paper) an adversarial greedy policy can do arbitrarily badly."
    (extension_chart ());
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let save ~path html =
  let oc = open_out path in
  output_string oc html;
  close_out oc
