type series = { label : string; points : (float * float) list }
type bar_group = { group : string; bars : (string * float) list }

let colors =
  [|
    "#2563eb"; "#dc2626"; "#16a34a"; "#9333ea"; "#ea580c"; "#0891b2";
    "#ca8a04"; "#db2777";
  |]

let palette i = colors.(i mod Array.length colors)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* "Nice" tick spacing: 1/2/5 × 10^k covering the range with ~n ticks. *)
let nice_ticks lo hi n =
  if hi <= lo then [ lo ]
  else begin
    let raw = (hi -. lo) /. float_of_int n in
    let mag = 10. ** Float.floor (log10 raw) in
    let norm = raw /. mag in
    let step =
      (if norm <= 1.5 then 1. else if norm <= 3.5 then 2. else if norm <= 7.5 then 5. else 10.)
      *. mag
    in
    let first = Float.ceil (lo /. step) *. step in
    let rec go x acc =
      if x > hi +. (step /. 2.) then List.rev acc else go (x +. step) (x :: acc)
    in
    go first []
  end

let fmt_tick v =
  let a = Float.abs v in
  if v = 0. then "0"
  else if a >= 1_000_000. then Printf.sprintf "%.1fM" (v /. 1e6)
  else if a >= 10_000. then Printf.sprintf "%.0fk" (v /. 1e3)
  else if a >= 1_000. then Printf.sprintf "%.1fk" (v /. 1e3)
  else if a >= 10. then Printf.sprintf "%.0f" v
  else if a >= 1. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2g" v

type frame = {
  width : int;
  height : int;
  left : float;
  right : float;
  top : float;
  bottom : float;
}

let default_frame ~width ~height =
  {
    width;
    height;
    left = 64.;
    right = float_of_int width -. 150.;
    top = 36.;
    bottom = float_of_int height -. 42.;
  }

let header buf ~width ~height ~title =
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"11\">\n"
       width height width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"18\" font-size=\"14\" font-weight=\"bold\">%s</text>\n"
       16 (escape title))

let axis_box buf f =
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
        fill=\"none\" stroke=\"#888\"/>\n"
       f.left f.top (f.right -. f.left) (f.bottom -. f.top))

let legend buf f labels =
  List.iteri
    (fun i label ->
      let y = f.top +. 8. +. (16. *. float_of_int i) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"10\" height=\"10\" fill=\"%s\"/>\n"
           (f.right +. 10.) (y -. 9.) (palette i));
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"%.1f\" y=\"%.1f\">%s</text>\n"
           (f.right +. 24.) y (escape label)))
    labels

let y_transform ~log_y ~lo ~hi f =
  let lo', hi' = if log_y then (log10 lo, log10 hi) else (lo, hi) in
  let span = if hi' -. lo' <= 0. then 1. else hi' -. lo' in
  fun v ->
    let v = if log_y then log10 v else v in
    f.bottom -. ((v -. lo') /. span *. (f.bottom -. f.top))

let line_chart ?(width = 640) ?(height = 360) ?(log_y = false) ~title
    ~x_label ~y_label series =
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then invalid_arg "Svg.line_chart: no data";
  let min_pos =
    List.fold_left
      (fun acc (_, y) -> if y > 0. && y < acc then y else acc)
      0.1 all_points
  in
  let clamp y = if log_y && y <= 0. then min_pos else y in
  let xs = List.map fst all_points in
  let ys = List.map (fun (_, y) -> clamp y) all_points in
  let x_lo = List.fold_left Float.min infinity xs in
  let x_hi = List.fold_left Float.max neg_infinity xs in
  let y_lo = if log_y then List.fold_left Float.min infinity ys else 0. in
  let y_hi = List.fold_left Float.max neg_infinity ys in
  let y_hi = if y_hi <= y_lo then y_lo +. 1. else y_hi in
  let f = default_frame ~width ~height in
  let buf = Buffer.create 4096 in
  header buf ~width ~height ~title;
  axis_box buf f;
  let x_span = if x_hi -. x_lo <= 0. then 1. else x_hi -. x_lo in
  let tx x = f.left +. ((x -. x_lo) /. x_span *. (f.right -. f.left)) in
  let ty = y_transform ~log_y ~lo:y_lo ~hi:y_hi f in
  (* Ticks and grid. *)
  List.iter
    (fun x ->
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
            stroke=\"#ddd\"/>\n"
           (tx x) f.top (tx x) f.bottom);
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\">%s</text>\n"
           (tx x) (f.bottom +. 14.) (fmt_tick x)))
    (nice_ticks x_lo x_hi 6);
  let y_ticks =
    if log_y then begin
      let lo_exp = int_of_float (Float.floor (log10 y_lo)) in
      let hi_exp = int_of_float (Float.ceil (log10 y_hi)) in
      List.init
        (Stdlib.max 1 (hi_exp - lo_exp + 1))
        (fun i -> 10. ** float_of_int (lo_exp + i))
    end
    else nice_ticks y_lo y_hi 6
  in
  List.iter
    (fun y ->
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
            stroke=\"#ddd\"/>\n"
           f.left (ty y) f.right (ty y));
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%s</text>\n"
           (f.left -. 6.) (ty y +. 4.) (fmt_tick y)))
    y_ticks;
  (* Axis labels. *)
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
        fill=\"#555\">%s</text>\n"
       ((f.left +. f.right) /. 2.)
       (float_of_int height -. 8.)
       (escape x_label));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"14\" y=\"%.1f\" text-anchor=\"middle\" fill=\"#555\" \
        transform=\"rotate(-90 14 %.1f)\">%s</text>\n"
       ((f.top +. f.bottom) /. 2.)
       ((f.top +. f.bottom) /. 2.)
       (escape (y_label ^ if log_y then " (log)" else "")));
  (* Series. *)
  List.iteri
    (fun i s ->
      if s.points <> [] then begin
        let path =
          String.concat " "
            (List.mapi
               (fun j (x, y) ->
                 Printf.sprintf "%s%.1f %.1f"
                   (if j = 0 then "M" else "L")
                   (tx x)
                   (ty (clamp y)))
               s.points)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n"
             path (palette i));
        List.iter
          (fun (x, y) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"%s\"/>\n"
                 (tx x)
                 (ty (clamp y))
                 (palette i)))
          s.points
      end)
    series;
  legend buf f (List.map (fun s -> s.label) series);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let bar_chart ?(width = 640) ?(height = 360) ?(log_y = false) ~title ~y_label
    groups =
  if groups = [] then invalid_arg "Svg.bar_chart: no data";
  let labels =
    match groups with g :: _ -> List.map fst g.bars | [] -> []
  in
  let values = List.concat_map (fun g -> List.map snd g.bars) groups in
  let min_pos =
    List.fold_left (fun acc v -> if v > 0. && v < acc then v else acc) 0.1 values
  in
  let clamp v = if log_y && v <= 0. then min_pos else v in
  let y_hi =
    List.fold_left (fun acc v -> Float.max acc (clamp v)) min_pos values
  in
  let y_lo = if log_y then min_pos /. 2. else 0. in
  let f = default_frame ~width ~height in
  let buf = Buffer.create 4096 in
  header buf ~width ~height ~title;
  axis_box buf f;
  let ty = y_transform ~log_y ~lo:y_lo ~hi:y_hi f in
  let y_ticks =
    if log_y then begin
      let lo_exp = int_of_float (Float.floor (log10 y_lo)) in
      let hi_exp = int_of_float (Float.ceil (log10 y_hi)) in
      List.init
        (Stdlib.max 1 (hi_exp - lo_exp + 1))
        (fun i -> 10. ** float_of_int (lo_exp + i))
    end
    else nice_ticks y_lo y_hi 6
  in
  List.iter
    (fun y ->
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
            stroke=\"#ddd\"/>\n"
           f.left (ty y) f.right (ty y));
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%s</text>\n"
           (f.left -. 6.) (ty y +. 4.) (fmt_tick y)))
    y_ticks;
  let ngroups = List.length groups in
  let nbars = Stdlib.max 1 (List.length labels) in
  let group_width = (f.right -. f.left) /. float_of_int ngroups in
  let bar_width = group_width *. 0.8 /. float_of_int nbars in
  List.iteri
    (fun gi g ->
      let gx = f.left +. (group_width *. (float_of_int gi +. 0.1)) in
      List.iteri
        (fun bi (_, v) ->
          let v = clamp v in
          let x = gx +. (bar_width *. float_of_int bi) in
          let y = ty v in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
                fill=\"%s\"/>\n"
               x y (bar_width *. 0.9)
               (Float.max 0.5 (f.bottom -. y))
               (palette bi)))
        g.bars;
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\">%s</text>\n"
           (gx +. (group_width *. 0.4))
           (f.bottom +. 14.) (escape g.group)))
    groups;
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"14\" y=\"%.1f\" text-anchor=\"middle\" fill=\"#555\" \
        transform=\"rotate(-90 14 %.1f)\">%s</text>\n"
       ((f.top +. f.bottom) /. 2.)
       ((f.top +. f.bottom) /. 2.)
       (escape (y_label ^ if log_y then " (log)" else "")));
  legend buf f labels;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
