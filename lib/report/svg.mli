(** Minimal dependency-free SVG charts for the HTML experiment report.

    Two chart types cover everything the paper's evaluation needs: line
    charts (Figure 10, the unfairness timeline, load sweeps — optionally
    with a log-scaled y axis, since Δψ/p_tot spans orders of magnitude) and
    grouped bar charts (Tables 1 and 2).  Output is a standalone [<svg>]
    element embeddable in HTML. *)

type series = { label : string; points : (float * float) list }

val line_chart :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** @raise Invalid_argument if every series is empty.  [log_y] (default
    false) uses log10 scaling; non-positive values are clamped to the
    smallest positive value present (or 0.1). *)

type bar_group = { group : string; bars : (string * float) list }

val bar_chart :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  title:string ->
  y_label:string ->
  bar_group list ->
  string
(** Grouped bars: one cluster per group, one color per bar label (legend
    derived from the first group). *)

val palette : int -> string
(** Color for series index [i] (cycles). *)

val escape : string -> string
(** XML-escape text content. *)
