(** HTML experiment report: runs the reproduction experiments and assembles
    a single self-contained page (inline SVG, no scripts, no external
    assets) — `fairsched report -o report.html`. *)

type config = {
  table_instances : int;
  table2_instances : int;
  fig10_instances : int;
  fig10_max_orgs : int;
  timeline_instances : int;
  workers : int option;
}

val default_config : ?quick:bool -> unit -> config

val build : ?progress:(string -> unit) -> config -> string
(** Runs Tables 1–2, Figure 10, the unfairness timeline, the utilization
    sweep and the extension gadgets, and renders everything as HTML. *)

val save : path:string -> string -> unit
