let factorial_table =
  (* 20! = 2432902008176640000 < 2^62; 21! overflows. *)
  let t = Array.make 21 1 in
  for i = 1 to 20 do
    t.(i) <- t.(i - 1) * i
  done;
  t

let factorial n =
  if n < 0 || n > 20 then invalid_arg "Combinatorics.factorial"
  else factorial_table.(n)

let binomial n k =
  if k < 0 || k > n then 0
  else
    let k = Stdlib.min k (n - k) in
    let rec go acc i =
      if i > k then acc else go (acc * (n - k + i) / i) (i + 1)
    in
    go 1 1

let check_players k s =
  if k < 1 || k > 20 || s < 0 || s >= k then
    invalid_arg "Combinatorics.shapley_weight"

let shapley_weight ~players:k ~subset:s =
  check_players k s;
  Rational.make (factorial s * factorial (k - s - 1)) (factorial k)

(* Precomputed at module load for every k <= 20: keeps the lookup free of
   mutation, so it is safe to call from multiple domains (the parallel
   experiment pool). *)
let weight_table =
  Array.init 21 (fun k ->
      if k = 0 then [||]
      else
        Array.init k (fun s ->
            Rational.to_float (shapley_weight ~players:k ~subset:s)))

let shapley_weight_float ~players:k ~subset:s =
  check_players k s;
  weight_table.(k).(s)

let update_weight ~players ~size =
  if size < 1 then invalid_arg "Combinatorics.update_weight"
  else shapley_weight ~players ~subset:(size - 1)

let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: ys as l ->
      (x :: l) :: List.map (fun rest -> y :: rest) (insert_everywhere x ys)

let rec permutations = function
  | [] -> [ [] ]
  | x :: xs -> List.concat_map (insert_everywhere x) (permutations xs)

let rec subsets = function
  | [] -> [ [] ]
  | x :: xs ->
      let rest = subsets xs in
      rest @ List.map (fun s -> x :: s) rest
