(** Factorials, binomial coefficients and Shapley weights.

    The exact Shapley value (Section 3 of the paper, Equation 1) weights the
    marginal contribution of an organization joining a sub-coalition of size
    [s] out of [k] players by [s! (k - s - 1)! / k!].  These weights are used
    millions of times per simulated event, so both an exact rational form and
    a pre-tabulated float form are provided. *)

val factorial : int -> int
(** [factorial n] for [0 <= n <= 20] (fits native int).
    @raise Invalid_argument outside that range. *)

val binomial : int -> int -> int
(** [binomial n k] = n choose k, computed without overflow for results that
    fit a native int. Returns 0 when [k < 0 || k > n]. *)

val shapley_weight : players:int -> subset:int -> Rational.t
(** [shapley_weight ~players:k ~subset:s] is the exact weight
    [s! (k-s-1)! / k!] applied to the marginal contribution of a player
    joining a coalition that already has [s] members.
    @raise Invalid_argument unless [0 <= s < k <= 20]. *)

val shapley_weight_float : players:int -> subset:int -> float
(** Float version of {!shapley_weight}; tabulated, O(1) after first use per
    [players] value. *)

val update_weight : players:int -> size:int -> Rational.t
(** [update_weight ~players:k ~size:s] is [(s-1)! (k-s)! / k!] — the weight
    used by the [UpdateVals] procedure of Algorithm REF (Fig. 1), where [s]
    is the size of the sub-coalition {e including} the joining player.
    Equal to [shapley_weight ~players ~subset:(s-1)]. *)

val permutations : 'a list -> 'a list list
(** All permutations of a (short) list; intended for brute-force Shapley in
    tests. Size grows as n!, keep n small. *)

val subsets : 'a list -> 'a list list
(** All 2^n subsets of a (short) list, in no particular order. *)
