type t = { n : int; d : int }

exception Overflow
exception Division_by_zero

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = gcd (Stdlib.abs a) (Stdlib.abs b)

(* Guarded multiplication: detect overflow by dividing back.  [min_int] is
   excluded up-front because [abs min_int] is itself undefined. *)
let mul_exact a b =
  if a = 0 || b = 0 then 0
  else if a = min_int || b = min_int then raise Overflow
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let add_exact a b =
  let s = a + b in
  (* Overflow iff operands share a sign and the result's sign differs. *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let norm n d =
  if d = 0 then raise Division_by_zero
  else if n = 0 then { n = 0; d = 1 }
  else
    let g = gcd n d in
    let n = n / g and d = d / g in
    if d < 0 then { n = -n; d = -d } else { n; d }

let make n d = norm n d
let of_int n = { n; d = 1 }
let zero = { n = 0; d = 1 }
let one = { n = 1; d = 1 }
let minus_one = { n = -1; d = 1 }
let num t = t.n
let den t = t.d

(* a/b + c/d with gcd pre-reduction to delay overflow: reduce b and d by
   g = gcd b d first, as in GMP's mpq_add. *)
let add x y =
  let g = gcd x.d y.d in
  let xd = x.d / g and yd = y.d / g in
  let n = add_exact (mul_exact x.n yd) (mul_exact y.n xd) in
  let d = mul_exact xd y.d in
  norm n d

let neg x = { x with n = -x.n }
let sub x y = add x (neg y)

let mul x y =
  (* Cross-reduce before multiplying to keep intermediates small. *)
  let g1 = gcd x.n y.d and g2 = gcd y.n x.d in
  let n = mul_exact (x.n / g1) (y.n / g2) in
  let d = mul_exact (x.d / g2) (y.d / g1) in
  norm n d

let inv x =
  if x.n = 0 then raise Division_by_zero
  else if x.n < 0 then { n = -x.d; d = -x.n }
  else { n = x.d; d = x.n }

let div x y = mul x (inv y)
let abs x = { x with n = Stdlib.abs x.n }
let mul_int x k = mul x (of_int k)
let div_int x k = div x (of_int k)
let sign x = compare x.n 0

let compare x y =
  match (mul_exact x.n y.d, mul_exact y.n x.d) with
  | a, b -> Stdlib.compare a b
  | exception Overflow -> Stdlib.compare (float_of_int x.n /. float_of_int x.d) (float_of_int y.n /. float_of_int y.d)

let equal x y = x.n = y.n && x.d = y.d
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y
let is_integer x = x.d = 1
let to_float x = float_of_int x.n /. float_of_int x.d

let to_int_exn x =
  if x.d = 1 then x.n else invalid_arg "Rational.to_int_exn: not an integer"

let sum l = List.fold_left add zero l

let pp ppf x =
  if x.d = 1 then Format.fprintf ppf "%d" x.n
  else Format.fprintf ppf "%d/%d" x.n x.d

let to_string x = Format.asprintf "%a" pp x

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
