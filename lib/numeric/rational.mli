(** Exact rational arithmetic on machine integers.

    The Shapley value mixes marginal contributions with the combinatorial
    weights [s!(k-s-1)!/k!].  Floating point is good enough for simulation
    (paper values fit comfortably in a double), but the test suite checks the
    Shapley axioms {e exactly}, which requires exact rationals.  This module
    provides a small, allocation-light rational type normalized by gcd after
    every operation.

    Values are kept in lowest terms with a positive denominator.  Operations
    raise [Overflow] when an intermediate product exceeds the native integer
    range; with 63-bit integers this does not happen for the instance sizes
    used in tests (k <= 12 organizations, utilities below 2^40). *)

type t
(** A rational number [num/den], normalized: [gcd num den = 1], [den > 0]. *)

exception Overflow
(** Raised when an intermediate product cannot be represented exactly. *)

exception Division_by_zero
(** Raised by [div] and [inv] on a zero divisor. *)

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
(** [of_int n] is [n/1]. *)

val zero : t
val one : t
val minus_one : t

val num : t -> int
(** Numerator in lowest terms (sign carrier). *)

val den : t -> int
(** Denominator in lowest terms, always positive. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t

val inv : t -> t
(** Multiplicative inverse. @raise Division_by_zero on [zero]. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

val compare : t -> t -> int
(** Total order; never overflows (uses cross multiplication guarded by
    normalization, falling back to float comparison only on [Overflow],
    which cannot produce a wrong answer for distinct normalized values that
    fit the guard). *)

val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool

val to_float : t -> float
val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val sum : t list -> t
(** Exact sum of a list. *)

val pp : Format.formatter -> t -> unit
(** Prints ["a/b"], or just ["a"] when the denominator is 1. *)

val to_string : t -> string

(* Infix aliases, intended to be used via [Rational.Infix]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
