(** Seeded corruption fuzzer for NDJSON logs (the WAL and snapshots).

    Produces single mutations of a file's bytes — bit flips, truncation,
    duplicated / swapped / deleted lines — for the recovery property the
    chaos campaign asserts: after any mutation, boot either recovers a
    consistent prefix of the original records or refuses to start with a
    typed error naming the corrupt offset.  Never both silently wrong.

    Mutations are values, so a failing trial can print exactly what it
    did ({!describe}) and replay it. *)

type mutation =
  | Bit_flip of { offset : int; bit : int }  (** flip one bit *)
  | Truncate of { length : int }  (** keep the first [length] bytes *)
  | Dup_line of { line : int }  (** duplicate the 0-based [line] in place *)
  | Swap_lines of { a : int; b : int }  (** exchange two lines *)
  | Drop_line of { line : int }  (** delete one line *)
  | Garbage_tail of { bytes : string }  (** append raw bytes (torn write) *)

val apply : string -> mutation -> string
(** Out-of-range offsets/lines clamp to the nearest valid one; applying
    to the empty string returns it unchanged. *)

val random : Fstats.Rng.t -> string -> mutation
(** One mutation drawn for the given content (offsets in range). *)

val describe : mutation -> string
