(** Deterministic fault injection for the service layer's filesystem I/O.

    Every durability-critical syscall in {!Service.Wal} (and the snapshot
    path in the server) goes through this module instead of calling [Unix]
    directly.  With no plan armed the shims are plain passthroughs (one
    branch on an empty list); with a plan armed, individual calls can be
    made to fail with a chosen [Unix.error] (ENOSPC, EIO, ...), to write
    short, to tear mid-write and die, or to kill the process at a named
    {e crash-point} between syscalls — which makes every crash window of
    the WAL/snapshot protocol reachable deterministically, in-process,
    without root, loop devices, or LD_PRELOAD.

    {b Sites} name instrumented operations (["wal-append"],
    ["wal-fsync"], ["snap-rename"], ...); {b crash-points} name the gaps
    between them (["after-wal-append"], ["before-snapshot-rename"], ...).
    A {!rule} matches one site or point by name and fires on its [nth]
    hit; [Crash] and [Torn] simulate [kill -9] via [Unix._exit 137] — no
    [at_exit], no buffer flushing, exactly the sudden-death the WAL must
    survive.

    Arming is per-process and is how the chaos campaign drives a forked
    daemon: the child arms a plan (or [fairsched serve --chaos SPEC]
    does), the parent watches it die with status 137 and then verifies
    recovery. *)

type action =
  | Fail of Unix.error
      (** Raise [Unix.Unix_error] instead of performing the operation.
          Meaningless at a crash-point (points separate syscalls; only
          syscalls fail). *)
  | Short of int
      (** Perform a write of at most this many bytes and return the
          (legitimate) short count.  Only meaningful at a write site. *)
  | Torn of int
      (** Write at most this many bytes, then [_exit 137]: a torn write
          followed by sudden death.  Only meaningful at a write site. *)
  | Crash  (** [_exit 137] before performing the operation. *)

type rule = {
  target : string;  (** site or crash-point name; ["*"] matches any *)
  nth : int;  (** fire on the [nth] matching hit (1-based) *)
  sticky : bool;  (** keep firing on every later hit too (ENOSPC stays) *)
  action : action;
}

(** {2 Arming} *)

val arm : rule list -> unit
(** Install a plan, resetting all hit counters.  Replaces any previous
    plan. *)

val disarm : unit -> unit
val armed : unit -> bool

val injected : unit -> int
(** Faults injected ([Fail]/[Short] fired) since the last {!arm}. *)

val hits : string -> int
(** Times the named site/point has been reached since the last {!arm}. *)

(** {2 Plan syntax}

    Comma-separated clauses, each [ACTION\@TARGET]:
    - [crash\@POINT] or [crash\@POINT:N] — die at the Nth hit;
    - [enospc\@SITE[:N][+]] / [eio\@SITE[:N][+]] — fail with ENOSPC/EIO;
      a trailing [+] makes the failure sticky (the disk stays full);
    - [short\@SITE[:N]=BYTES] — one short write of at most BYTES;
    - [torn\@SITE[:N]=BYTES] — write BYTES then die.

    Example: ["torn\@wal-append:3=10,crash\@before-snapshot-rename"]. *)

val of_string : string -> (rule list, string) result
val to_string : rule list -> string

val exit_code : int
(** The status a [Crash]/[Torn] death exits with (137, mimicking
    SIGKILL). *)

(** {2 Instrumented operations}

    Passthroughs to [Unix] when no rule matches.  [write] retries EINTR
    internally; the others surface it (callers treat it like any other
    [Unix_error]). *)

val point : string -> unit
(** Declare a crash-point.  No-op unless a [Crash] rule matches. *)

val openfile :
  site:string -> string -> Unix.open_flag list -> int -> Unix.file_descr

val write : site:string -> Unix.file_descr -> bytes -> int -> int -> int
val fsync : site:string -> Unix.file_descr -> unit
val rename : site:string -> string -> string -> unit
val ftruncate : site:string -> Unix.file_descr -> int -> unit
