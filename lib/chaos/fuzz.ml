type mutation =
  | Bit_flip of { offset : int; bit : int }
  | Truncate of { length : int }
  | Dup_line of { line : int }
  | Swap_lines of { a : int; b : int }
  | Drop_line of { line : int }
  | Garbage_tail of { bytes : string }

(* Split into lines, each including its trailing newline when present, so
   concatenation is the identity. *)
let lines_of s =
  let n = String.length s in
  let rec go acc start =
    if start >= n then List.rev acc
    else
      match String.index_from_opt s start '\n' with
      | None -> List.rev (String.sub s start (n - start) :: acc)
      | Some i -> go (String.sub s start (i - start + 1) :: acc) (i + 1)
  in
  go [] 0

let clamp lo hi v = max lo (min hi v)

let apply s m =
  if s = "" then s
  else
    match m with
    | Bit_flip { offset; bit } ->
        let b = Bytes.of_string s in
        let offset = clamp 0 (Bytes.length b - 1) offset in
        let bit = clamp 0 7 bit in
        Bytes.set b offset
          (Char.chr (Char.code (Bytes.get b offset) lxor (1 lsl bit)));
        Bytes.to_string b
    | Truncate { length } -> String.sub s 0 (clamp 0 (String.length s) length)
    | Dup_line { line } ->
        let ls = lines_of s in
        let line = clamp 0 (List.length ls - 1) line in
        String.concat ""
          (List.concat (List.mapi (fun i l -> if i = line then [ l; l ] else [ l ]) ls))
    | Swap_lines { a; b } ->
        let ls = Array.of_list (lines_of s) in
        let n = Array.length ls in
        let a = clamp 0 (n - 1) a and b = clamp 0 (n - 1) b in
        let tmp = ls.(a) in
        ls.(a) <- ls.(b);
        ls.(b) <- tmp;
        String.concat "" (Array.to_list ls)
    | Drop_line { line } ->
        let ls = lines_of s in
        let line = clamp 0 (List.length ls - 1) line in
        String.concat ""
          (List.concat (List.mapi (fun i l -> if i = line then [] else [ l ]) ls))
    | Garbage_tail { bytes } -> s ^ bytes

let random rng s =
  let n = max 1 (String.length s) in
  let nlines = max 1 (List.length (lines_of s)) in
  match Fstats.Rng.int rng 6 with
  | 0 -> Bit_flip { offset = Fstats.Rng.int rng n; bit = Fstats.Rng.int rng 8 }
  | 1 -> Truncate { length = Fstats.Rng.int rng n }
  | 2 -> Dup_line { line = Fstats.Rng.int rng nlines }
  | 3 ->
      Swap_lines
        { a = Fstats.Rng.int rng nlines; b = Fstats.Rng.int rng nlines }
  | 4 -> Drop_line { line = Fstats.Rng.int rng nlines }
  | _ ->
      let len = 1 + Fstats.Rng.int rng 40 in
      let bytes =
        String.init len (fun _ ->
            (* printable-ish junk plus the occasional brace/quote so the
               JSON parser sees realistic near-misses *)
            Char.chr (32 + Fstats.Rng.int rng 95))
      in
      Garbage_tail { bytes }

let describe = function
  | Bit_flip { offset; bit } -> Printf.sprintf "bit-flip @%d.%d" offset bit
  | Truncate { length } -> Printf.sprintf "truncate to %d bytes" length
  | Dup_line { line } -> Printf.sprintf "duplicate line %d" line
  | Swap_lines { a; b } -> Printf.sprintf "swap lines %d and %d" a b
  | Drop_line { line } -> Printf.sprintf "drop line %d" line
  | Garbage_tail { bytes } ->
      Printf.sprintf "append %d garbage bytes" (String.length bytes)
