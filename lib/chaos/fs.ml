type action = Fail of Unix.error | Short of int | Torn of int | Crash

type rule = { target : string; nth : int; sticky : bool; action : action }

(* One armed rule with its live hit counter.  The plan is process-global;
   a sharded daemon does WAL I/O from several worker domains at once, so
   the armed path takes [lock] — hit counts stay exact (the chaos smoke
   replays plans by hit ordinal).  The unarmed fast path stays lock-free:
   the plan only changes at arm/disarm time, before any worker exists. *)
type live = { rule : rule; mutable seen : int; mutable spent : bool }

let plan : live list ref = ref []
let injected_count = ref 0
let hit_tbl : (string, int) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let arm rules =
  Mutex.protect lock (fun () ->
      plan := List.map (fun rule -> { rule; seen = 0; spent = false }) rules;
      injected_count := 0;
      Hashtbl.reset hit_tbl)

let disarm () = arm []
let armed () = !plan <> []
let injected () = !injected_count

let hits name =
  Mutex.protect lock (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt hit_tbl name))

let exit_code = 137

(* Find the action to apply at [name], advancing hit counters.  At most
   one rule fires per hit (the first armed match wins). *)
let fire name =
  match !plan with
  | [] -> None
  | _ ->
      Mutex.protect lock (fun () ->
          match !plan with
          | [] -> None
          | lives ->
              Hashtbl.replace hit_tbl name
                (Option.value ~default:0 (Hashtbl.find_opt hit_tbl name) + 1);
              let rec go = function
                | [] -> None
                | l :: rest ->
                    if l.rule.target = "*" || l.rule.target = name then begin
                      l.seen <- l.seen + 1;
                      if
                        (l.seen = l.rule.nth
                        || (l.rule.sticky && l.seen > l.rule.nth))
                        && not l.spent
                      then begin
                        if not l.rule.sticky then l.spent <- l.seen >= l.rule.nth;
                        Some l.rule.action
                      end
                      else go rest
                    end
                    else go rest
              in
              go lives)

let die () = Unix._exit exit_code

let point name =
  match fire name with
  | Some Crash -> die ()
  | Some (Fail _ | Short _ | Torn _) | None -> ()

let inject_fail e fn site =
  incr injected_count;
  raise (Unix.Unix_error (e, fn, site))

let rec retry_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let write ~site fd bytes off len =
  match fire site with
  | Some Crash -> die ()
  | Some (Fail e) -> inject_fail e "write" site
  | Some (Short n) ->
      incr injected_count;
      retry_eintr (fun () -> Unix.write fd bytes off (min len (max 0 n)))
  | Some (Torn n) ->
      (try ignore (Unix.write fd bytes off (min len (max 0 n)))
       with Unix.Unix_error _ -> ());
      die ()
  | None -> retry_eintr (fun () -> Unix.write fd bytes off len)

let fsync ~site fd =
  match fire site with
  | Some Crash -> die ()
  | Some (Fail e) -> inject_fail e "fsync" site
  | Some (Short _ | Torn _) | None -> Unix.fsync fd

let rename ~site src dst =
  match fire site with
  | Some Crash -> die ()
  | Some (Fail e) -> inject_fail e "rename" site
  | Some (Short _ | Torn _) | None -> Unix.rename src dst

let openfile ~site path flags perm =
  match fire site with
  | Some Crash -> die ()
  | Some (Fail e) -> inject_fail e "open" site
  | Some (Short _ | Torn _) | None -> Unix.openfile path flags perm

let ftruncate ~site fd len =
  match fire site with
  | Some Crash -> die ()
  | Some (Fail e) -> inject_fail e "ftruncate" site
  | Some (Short _ | Torn _) | None -> Unix.ftruncate fd len

(* --- Plan syntax --------------------------------------------------------- *)

let action_name = function
  | Fail Unix.ENOSPC -> "enospc"
  | Fail Unix.EIO -> "eio"
  | Fail e -> "fail-" ^ Unix.error_message e
  | Short _ -> "short"
  | Torn _ -> "torn"
  | Crash -> "crash"

let to_string rules =
  String.concat ","
    (List.map
       (fun r ->
         let bytes =
           match r.action with
           | Short n | Torn n -> Printf.sprintf "=%d" n
           | Fail _ | Crash -> ""
         in
         Printf.sprintf "%s@%s:%d%s%s" (action_name r.action) r.target r.nth
           (if r.sticky then "+" else "")
           bytes)
       rules)

let of_string s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_clause clause =
    match String.index_opt clause '@' with
    | None ->
        err "chaos clause %S: expected ACTION@TARGET (see --chaos docs)" clause
    | Some i -> (
        let verb = String.sub clause 0 i in
        let rest = String.sub clause (i + 1) (String.length clause - i - 1) in
        (* rest = TARGET[:N][+][=BYTES] *)
        let rest, bytes =
          match String.index_opt rest '=' with
          | None -> (rest, None)
          | Some j ->
              ( String.sub rest 0 j,
                Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
        in
        let rest, sticky =
          let n = String.length rest in
          if n > 0 && rest.[n - 1] = '+' then (String.sub rest 0 (n - 1), true)
          else (rest, false)
        in
        let target, nth =
          match String.index_opt rest ':' with
          | None -> (rest, Ok 1)
          | Some j -> (
              let num = String.sub rest (j + 1) (String.length rest - j - 1) in
              ( String.sub rest 0 j,
                match int_of_string_opt num with
                | Some n when n >= 1 -> Ok n
                | Some _ | None ->
                    Error
                      (Printf.sprintf "chaos clause %S: bad hit count %S"
                         clause num) ))
        in
        let* nth = nth in
        if target = "" then err "chaos clause %S: empty target" clause
        else
          let* bytes_n =
            match bytes with
            | None -> Ok None
            | Some b -> (
                match int_of_string_opt b with
                | Some n when n >= 0 -> Ok (Some n)
                | Some _ | None ->
                    err "chaos clause %S: bad byte count %S" clause b)
          in
          let* action =
            match (verb, bytes_n) with
            | "crash", None -> Ok Crash
            | "enospc", None -> Ok (Fail Unix.ENOSPC)
            | "eio", None -> Ok (Fail Unix.EIO)
            | "short", Some n -> Ok (Short n)
            | "torn", Some n -> Ok (Torn n)
            | ("short" | "torn"), None ->
                err "chaos clause %S: %s needs =BYTES" clause verb
            | _, Some _ ->
                err "chaos clause %S: =BYTES only applies to short/torn" clause
            | v, None ->
                err
                  "chaos clause %S: unknown action %S (crash, enospc, eio, \
                   short, torn)"
                  clause v
          in
          if sticky && action = Crash then
            err "chaos clause %S: crash cannot be sticky" clause
          else Ok { target; nth; sticky; action })
  in
  if String.trim s = "" then Error "empty chaos spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest ->
          let* r = parse_clause (String.trim c) in
          go (r :: acc) rest
    in
    go [] (String.split_on_char ',' s)
