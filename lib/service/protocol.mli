(** The daemon's wire protocol: newline-delimited JSON, one request object
    per line, one response object per line, answered in order per
    connection.

    Requests carry an ["op"] discriminator; responses carry ["ok"]
    (boolean) and echo the op.  The full grammar is documented in
    DESIGN.md §12.  Both sides parse with {!Obs.Json.parse} under
    {!wire_limits}: socket bytes are untrusted, so depth and size are
    bounded and a malformed line yields an [Error {code = Parse; _}]
    response rather than a dead connection. *)

val wire_limits : Obs.Json.limits
(** 32 nesting levels, 1 MiB per line. *)

val max_line : int
(** Byte bound on one request line ([wire_limits.max_bytes]). *)

type request =
  | Submit of {
      org : int;
      user : int;
      release : int;
      size : int;
      cid : int;
          (** client identity for at-most-once retransmission; [0] opts
              out (no dedupe).  Omitted from the wire when 0. *)
      cseq : int;
          (** client-chosen sequence under [cid]; the server remembers
              the last applied [cseq] per [cid] and answers a replayed
              one with the cached ack instead of double-applying *)
      trace : int;
          (** client-issued trace id for cross-shard correlation: echoed
              into the router's and the owning shard's {!Obs.Trace} spans
              so one request can be followed through the merged Chrome
              trace.  [0] opts out and is omitted from the wire. *)
    }
  | Fault of {
      time : int;
      event : Faults.Event.t;
      cid : int;
      cseq : int;
      trace : int;
    }
  | Endow of {
      time : int;
      event : Federation.Event.t;
      cid : int;
      cseq : int;
      trace : int;
    }
      (** an endowment event (consortium join/leave, machine lend/reclaim)
          fed to a federated daemon; on the wire: ["kind"]
          join|leave|lend|reclaim, ["org"], optional ["to_org"] (lend) and
          ["machines"] (omitted when empty — a readmit-all join) *)
  | Status
  | Psi
  | Snapshot  (** force a snapshot + WAL compaction now *)
  | Drain of { detail : bool }
      (** run to horizon and shut down; [detail] adds the full schedule *)
  | Metrics
      (** live scrape: the merged cross-domain {!Obs.Metrics.snapshot}
          of the running daemon, as JSON — no restart, no file *)
  | Trace of { limit : int }
      (** live scrape of the daemon's merged {!Obs.Trace} buffers as one
          Chrome trace document; [limit] bounds the event count so the
          response stays inside {!max_line} *)

val default_trace_limit : int
(** Event cap a [{"op":"trace"}] request gets when it names none (3000 —
    comfortably under {!max_line} once serialized). *)

type status = {
  now : int;
  frontier : int;
  horizon : int;
  orgs : int;
  machines : int;
  accepted : int;  (** submissions + faults admitted since daemon start *)
  rejected : int;
  queue_depth : int;  (** admission queue occupancy *)
  queue_cap : int;
  draining : bool;
  waiting : int array;  (** released-unstarted jobs per organization *)
  stats : Kernel.Stats.t;
  job_wait : Obs.Metrics.summary option;
      (** submit-to-start latency histogram, when server metrics are on *)
  estimator : string;  (** live estimator spec (e.g. ["ref"], ["rand:0.1,0.95"]) *)
  degraded : bool;  (** true while overload has switched the estimator *)
  shed : int;  (** feed requests shed by overload protection since boot *)
  ack_ewma_ms : float;  (** smoothed submit-to-ack latency (worst shard) *)
  groups : int;  (** org-group partition size (1 = unsharded) *)
  shards : int;  (** worker domains executing the groups *)
  fsyncs : int;
      (** WAL fsyncs since boot, summed over segments; under group-commit
          this stays well below [accepted] (one fsync acks a batch) *)
}

type drain_report = {
  d_now : int;
  d_psi_scaled : int array;
  d_parts : int array;
  d_stats : Kernel.Stats.t;
  d_schedule : (int * int * int * int * int) list option;
      (** (org, index, start, machine, duration) rows, oldest first *)
}

type error_code =
  | Parse  (** malformed request line *)
  | Bad_request  (** admission rejected (org/size/release/machine/time) *)
  | Backpressure  (** admission queue full — retry later *)
  | Draining  (** daemon is shutting down; no further feeding *)
  | Wal_error  (** durability failure; the submission was NOT accepted *)
  | Unsupported  (** unknown op *)

type response =
  | Submit_ok of { seq : int; org : int; index : int; now : int }
  | Fault_ok of { seq : int; now : int }
  | Endow_ok of { seq : int; now : int }
  | Status_ok of status
  | Psi_ok of { now : int; psi_scaled : int array; parts : int array }
  | Snapshot_ok of { seq : int; path : string }
  | Drain_ok of drain_report
  | Metrics_ok of { metrics : Obs.Json.t }
      (** the merged registry dump ({!Obs.Metrics.to_json} shape: counter
          name to int, gauge to float, histogram to summary object) *)
  | Trace_ok of { events : int; dropped : int; trace : Obs.Json.t }
      (** [trace] is a complete Chrome trace document ([{"traceEvents":
          [...]}]) that {!Obs.Trace.validate} accepts; [dropped] counts
          ring-buffer evictions since tracing started *)
  | Error of { code : error_code; msg : string; retry_after_ms : int option }
      (** [retry_after_ms] is a server hint on [Backpressure]: how long a
          well-behaved client should wait before retrying *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

(** {2 Endowment-event wire encoding}

    Shared by the [endow] request and the WAL's [Endow] record so the
    socket and the log cannot drift. *)

val endow_event_fields : Federation.Event.t -> (string * Obs.Json.t) list
val endow_event_of_json : Obs.Json.t -> (Federation.Event.t, string) result

(** {2 Requests} *)

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result
val request_to_line : request -> string
(** One compact JSON document, newline-terminated. *)

val request_of_line : string -> (request, string) result
(** Parse one line (without requiring the trailing newline) under
    {!wire_limits}. *)

(** {2 Responses} *)

val response_to_json : response -> Obs.Json.t
val response_of_json : Obs.Json.t -> (response, string) result
val response_to_line : response -> string
val response_of_line : string -> (response, string) result
