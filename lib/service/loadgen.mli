(** Load generator: stream a synthetic trace at a daemon over the socket
    and measure what comes back.

    Jobs come from {!Workload.Scenario.submission_stream}, so a daemon
    configured with the matching {!Workload.Scenario.split_and_map}
    endowment accepts every submission — org assignment and FIFO ranks
    line up by construction.  The generator paces submissions at a target
    arrival rate (wall-clock) and records the submit-to-ack round trip in
    an {!Obs.Metrics} histogram (["loadgen.ack_latency_us"],
    microseconds).  Submit-to-start latency is the {e server's}
    ["sim.job_wait"] histogram (simulated time), surfaced through the
    final STATUS response when the daemon runs with [--metrics].

    Submissions go through {!Client.Resilient}: jittered exponential
    backoff over [Backpressure] rejections and transient transport
    errors (reconnecting as needed), with (cid, cseq) stamping so a
    retransmission is never double-applied.  A SIGKILLed-and-restarted
    daemon therefore costs the run some retries, not lost acks.  A
    request whose retry budget runs out counts in [gave_up] and the run
    moves on to the next job.

    {b Multi-connection mode.}  With [connections > 1] the generator
    opens that many sockets, each driven by its own domain.  Jobs are
    assigned by {e org-group} (group [g] to connection [g mod N], under
    the same contiguous balanced partition the server uses when [groups]
    matches its [--groups]): the admission frontier is monotone per
    group, so splitting one group's stream across sockets would race the
    releases.  The target [rate] is divided across connections in
    proportion to their job counts; counters are summed and the latency
    histogram shared (it is domain-safe).

    {b Windowed (open-loop) mode.}  [window > 1] switches a connection
    from the resilient closed loop to a raw pipelined socket keeping up
    to [window] stamped submissions in flight.  One server fsync can
    then cover many acks — this is what makes [--commit-interval] group
    commit measurable.  Semantics become open-loop: [Backpressure]
    answers are counted and the job dropped (not retried); transport
    failures reconnect and retransmit every unacked request with its
    original (cid, cseq) stamp, so crashes still cost retries rather
    than double-applies. *)

type config = {
  addr : Addr.t;
  spec : Workload.Scenario.spec;
  seed : int;
  rate : float;  (** target submissions per wall-clock second; 0 = as fast as possible *)
  count : int;  (** number of submissions to attempt *)
  drain : bool;  (** send [drain] when done (shuts the daemon down) *)
  policy : Retry.policy;  (** retry/backoff budget for every request *)
  timeout_s : float;  (** per-phase socket deadline *)
  connections : int;  (** sockets (one domain each); 1 = the classic single-connection run *)
  groups : int;
      (** org-group partition to mirror when assigning jobs to
          connections; set to the server's [--groups] *)
  window : int;
      (** max unacked submissions in flight per connection; 1 = closed
          loop via {!Client.Resilient}, >1 = pipelined open loop *)
}

type report = {
  submitted : int;  (** distinct jobs attempted *)
  accepted : int;
  rejected : int;  (** protocol-level rejections other than backpressure *)
  backpressured : int;  (** backpressure responses absorbed by retrying *)
  retries : int;  (** re-sends after transient transport errors *)
  reconnects : int;  (** fresh connections made mid-run *)
  gave_up : int;  (** jobs abandoned with the retry budget exhausted *)
  errors : int;  (** transport failures that exhausted the budget *)
  server_shed : int option;
      (** daemon-reported shed count from the final STATUS, when reachable *)
  wall_seconds : float;
  achieved_rate : float;  (** accepted / wall_seconds *)
  ack_latency : Obs.Metrics.summary;  (** submit-to-ack, microseconds *)
  job_wait : Obs.Metrics.summary option;
      (** server-side submit-to-start (simulated time units) *)
}

val run : config -> (report, string) result
(** [Error] only for an empty submission stream; connection failures are
    absorbed by the retry policy and surface as [gave_up]/[errors] in the
    report. *)

val report_to_json : report -> Obs.Json.t
val pp_report : Format.formatter -> report -> unit
